// hbmc — command-line model checker for the accelerated heartbeat
// protocols. Select a protocol variant and parameters, pick a check, and
// get a verdict with a minimal counterexample trace where applicable.
//
// Usage:
//   hbmc --flavor binary --tmin 10 --tmax 10 --check r2 --trace
//   hbmc --flavor expanding --tmin 5 --tmax 10 --check all
//   hbmc --flavor dynamic --fixed --check all
//   hbmc --flavor binary --tmin 2 --tmax 4 --check deadlock
//   hbmc --flavor dynamic --rejoin naive --fixed --check r2 --trace
//
// Flags:
//   --flavor  binary|revised|two-phase|static|expanding|dynamic
//   --tmin N  --tmax N  --participants N
//   --fixed               both Section 6 corrections
//   --receive-priority    Section 6.1 only
//   --corrected-bounds    Section 6.2 only
//   --rejoin naive|graceful   (dynamic)
//   --check r1|r2|r3|all|deadlock
//   --trace               print the counterexample timeline
//   --full-trace          print every state along the counterexample
//   --bitstate LOG2BITS   supertrace search instead of exact (r2/r3)
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "mc/bitstate.hpp"
#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"
#include "trace/trace.hpp"

namespace {

using namespace ahb;

struct CliOptions {
  models::Flavor flavor = models::Flavor::Binary;
  models::BuildOptions build;
  std::string check = "all";
  bool trace = false;
  bool full_trace = false;
  int bitstate = 0;
};

std::optional<models::Flavor> parse_flavor(const std::string& name) {
  using models::Flavor;
  if (name == "binary") return Flavor::Binary;
  if (name == "revised") return Flavor::RevisedBinary;
  if (name == "two-phase") return Flavor::TwoPhase;
  if (name == "static") return Flavor::Static;
  if (name == "expanding") return Flavor::Expanding;
  if (name == "dynamic") return Flavor::Dynamic;
  return std::nullopt;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --flavor F --tmin N --tmax N [--participants N]\n"
               "          [--fixed | --receive-priority | --corrected-bounds]\n"
               "          [--rejoin naive|graceful] [--bitstate LOG2]\n"
               "          --check r1|r2|r3|all|deadlock [--trace|--full-trace]\n",
               argv0);
  return 2;
}

/// Runs one reachability check, printing verdict and optional trace.
/// Returns true iff the requirement HOLDS.
bool run_check(const models::HeartbeatModel& model, const mc::Pred& violation,
               const char* name, const CliOptions& cli) {
  if (cli.bitstate > 0) {
    const auto result =
        mc::reach_bitstate(model.net(), violation, cli.bitstate);
    std::printf("%s: %s  (bitstate: %llu states marked, %.3fs, %zu KiB)\n",
                name,
                result.found ? "VIOLATED"
                             : "no violation found (NOT exhaustive)",
                static_cast<unsigned long long>(result.stats.states),
                result.stats.elapsed.count(),
                result.stats.store_bytes / 1024);
    if (result.found && cli.trace) {
      std::printf("%s",
                  trace::render_timeline(model.net(), result.trace).c_str());
    }
    return !result.found;
  }

  mc::Explorer explorer{model.net()};
  const auto result = explorer.reach(violation);
  std::printf("%s: %s  (%llu states, %.3fs)\n", name,
              result.found      ? "VIOLATED"
              : result.complete ? "holds (exhaustive)"
                                : "inconclusive (hit limits)",
              static_cast<unsigned long long>(result.stats.states),
              result.stats.elapsed.count());
  if (result.found && (cli.trace || cli.full_trace)) {
    std::printf("%s", cli.full_trace
                          ? trace::render_full(model.net(), result.trace)
                                .c_str()
                          : trace::render_timeline(model.net(), result.trace)
                                .c_str());
  }
  return !result.found;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  cli.build.timing = {1, 4};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--flavor") {
      const char* value = next();
      const auto flavor = value ? parse_flavor(value) : std::nullopt;
      if (!flavor) return usage(argv[0]);
      cli.flavor = *flavor;
    } else if (arg == "--tmin") {
      const char* value = next();
      if (!value) return usage(argv[0]);
      cli.build.timing.tmin = std::atoi(value);
    } else if (arg == "--tmax") {
      const char* value = next();
      if (!value) return usage(argv[0]);
      cli.build.timing.tmax = std::atoi(value);
    } else if (arg == "--participants") {
      const char* value = next();
      if (!value) return usage(argv[0]);
      cli.build.participants = std::atoi(value);
    } else if (arg == "--fixed") {
      cli.build.fixed = true;
    } else if (arg == "--receive-priority") {
      cli.build.receive_priority = true;
    } else if (arg == "--corrected-bounds") {
      cli.build.corrected_bounds = true;
    } else if (arg == "--rejoin") {
      const char* value = next();
      if (!value) return usage(argv[0]);
      if (std::strcmp(value, "naive") == 0) {
        cli.build.rejoin = models::BuildOptions::Rejoin::Naive;
      } else if (std::strcmp(value, "graceful") == 0) {
        cli.build.rejoin = models::BuildOptions::Rejoin::Graceful;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--check") {
      const char* value = next();
      if (!value) return usage(argv[0]);
      cli.check = value;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg == "--full-trace") {
      cli.full_trace = true;
    } else if (arg == "--bitstate") {
      const char* value = next();
      if (!value) return usage(argv[0]);
      cli.bitstate = std::atoi(value);
    } else {
      return usage(argv[0]);
    }
  }
  if (!cli.build.timing.valid()) {
    std::fprintf(stderr, "invalid timing: need 0 < tmin <= tmax\n");
    return 2;
  }

  std::printf("model: %s protocol, tmin=%d tmax=%d, n=%d%s%s%s\n",
              models::to_string(cli.flavor), cli.build.timing.tmin,
              cli.build.timing.tmax, cli.build.participants,
              cli.build.use_receive_priority() ? ", receive-priority" : "",
              cli.build.use_corrected_bounds() ? ", corrected-bounds" : "",
              cli.build.rejoin == models::BuildOptions::Rejoin::None
                  ? ""
                  : ", rejoin");

  bool all_hold = true;
  if (cli.check == "deadlock") {
    const auto model = models::HeartbeatModel::build(cli.flavor, cli.build);
    mc::Explorer explorer{model.net()};
    const auto result = explorer.find_deadlock();
    std::printf("deadlock: %s (%llu states)\n",
                result.found ? "REACHABLE" : "none (exhaustive)",
                static_cast<unsigned long long>(result.stats.states));
    if (result.found && (cli.trace || cli.full_trace)) {
      std::printf("%s",
                  trace::render_timeline(model.net(), result.trace).c_str());
    }
    all_hold = !result.found;
  } else if (cli.check == "r1" || cli.check == "all") {
    auto options = cli.build;
    options.r1_monitor = true;
    const auto model = models::HeartbeatModel::build(cli.flavor, options);
    all_hold &= run_check(model, model.r1_violation(), "R1", cli);
  }
  if (cli.check == "r2" || cli.check == "r3" || cli.check == "all") {
    const auto model = models::HeartbeatModel::build(cli.flavor, cli.build);
    if (cli.check != "r3") {
      all_hold &= run_check(model, model.r2_violation_any(), "R2", cli);
    }
    if (cli.check != "r2") {
      all_hold &= run_check(model, model.r3_violation(), "R3", cli);
    }
  }
  return all_hold ? 0 : 1;
}
