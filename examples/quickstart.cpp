// Quickstart: the binary accelerated heartbeat protocol as a crash
// detector between two processes.
//
// A Coordinator (p[0]) and a Participant (p[1]) exchange heartbeats over
// a lossy network. The coordinator waits tmax between beats while the
// peer is healthy; on a missed round it halves its waiting time
// ("accelerates"), and once the wait would drop below tmin it concludes
// the peer (or the channel) is gone and deactivates itself — the
// guarantee the ICDCS'98 paper builds all its protocols around.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "hb/cluster.hpp"

int main() {
  using namespace ahb;

  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Binary;
  config.protocol.tmin = 2;   // round-trip delay bound
  config.protocol.tmax = 10;  // healthy beat period
  config.participants = 1;
  config.loss_probability = 0.02;
  config.seed = 7;

  hb::Cluster cluster{config};
  cluster.on_inactivation([](int node, sim::Time at) {
    std::printf("[t=%5lld] node %d non-voluntarily inactivated\n",
                static_cast<long long>(at), node);
  });

  // Inject a crash of the participant at t = 500.
  const sim::Time crash_at = 500;
  cluster.crash_participant_at(1, crash_at);

  cluster.start();
  cluster.run_until(2000);

  std::printf("\n--- outcome ---\n");
  std::printf("participant status: %s\n",
              to_string(cluster.participant(1).status()));
  std::printf("coordinator status: %s\n",
              to_string(cluster.coordinator().status()));
  const sim::Time detected = cluster.coordinator().inactivated_at();
  std::printf("crash injected at t=%lld, detected at t=%lld "
              "(delay %lld, guaranteed bound %lld)\n",
              static_cast<long long>(crash_at),
              static_cast<long long>(detected),
              static_cast<long long>(detected - crash_at),
              static_cast<long long>(
                  config.protocol.coordinator_detection_bound()));
  std::printf("messages: %llu sent, %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(cluster.network_stats().sent),
              static_cast<unsigned long long>(
                  cluster.network_stats().delivered),
              static_cast<unsigned long long>(cluster.network_stats().lost));
  return 0;
}
