// Cluster membership with the dynamic accelerated heartbeat protocol:
// nodes join a coordinator by beating, participate, and may leave
// gracefully — while a real crash still deactivates the whole network.
//
// Scenario (the kind of group-membership workload the ICDCS'98 paper
// motivates):
//   t=0    five worker nodes start joining
//   t=400  worker 2 leaves gracefully (maintenance)
//   t=800  worker 4 leaves gracefully
//   t=1200 worker 1 crashes hard
//   => the coordinator detects the crash and deactivates; the remaining
//      active workers follow within their deadline.
//
// Build & run:  ./build/examples/cluster_membership
#include <cstdio>

#include "hb/cluster.hpp"

int main() {
  using namespace ahb;

  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Dynamic;
  config.protocol.tmin = 2;
  config.protocol.tmax = 20;
  // Keep the published 3*tmax - tmin participant deadline: the tightened
  // 2*tmax bound of the formal analysis is only exact under *zero* loss —
  // with it, a single lost beat leaves the next one arriving exactly at
  // the deadline (see EXPERIMENTS.md, "loss tolerance trade-off").
  config.protocol.fixed_bounds = false;
  config.participants = 5;
  config.loss_probability = 0.01;
  config.seed = 42;

  hb::Cluster cluster{config};
  cluster.on_inactivation([](int node, sim::Time at) {
    std::printf("[t=%5lld] node %d deactivated non-voluntarily\n",
                static_cast<long long>(at), node);
  });

  cluster.leave_at(2, 400);
  cluster.leave_at(4, 800);
  cluster.crash_participant_at(1, 1200);

  cluster.start();

  // Poll membership as the run progresses.
  for (const sim::Time checkpoint : {200, 600, 1000, 1190}) {
    cluster.run_until(checkpoint);
    const auto members = cluster.coordinator().member_ids();
    std::printf("[t=%5lld] members:", static_cast<long long>(checkpoint));
    for (const int id : members) std::printf(" %d", id);
    std::printf("\n");
  }

  cluster.run_until(3000);

  std::printf("\n--- final statuses ---\n");
  std::printf("coordinator: %s\n", to_string(cluster.coordinator().status()));
  for (int i = 1; i <= config.participants; ++i) {
    std::printf("worker %d:    %s\n", i,
                to_string(cluster.participant(i).status()));
  }
  std::printf(
      "\nGraceful departures (workers 2 and 4) did not disturb the\n"
      "cluster; the hard crash of worker 1 deactivated everyone else,\n"
      "as the protocol guarantees.\n");
  return 0;
}
