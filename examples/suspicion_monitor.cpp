// Suspicion monitoring: using the accelerated heartbeat's halving ladder
// as a graded failure detector instead of the protocol's all-or-nothing
// deactivation.
//
// The coordinator tracks per-member waiting times tm[i]; every halving
// below tmax means one consecutive missed round. The FailureDetector
// facade turns that into suspect/trust queries — here we watch a member
// go silent, become suspected after two missed rounds, and get trusted
// again when its beats resume (an eventually-perfect-detector workflow).
//
// Build & run:  ./build/examples/suspicion_monitor
#include <cstdio>

#include "hb/failure_detector.hpp"

int main() {
  using namespace ahb::hb;

  Config config;
  config.variant = Variant::Static;
  config.tmin = 1;
  config.tmax = 16;

  FailureDetector detector{config, {1, 2, 3}, /*suspect_after_misses=*/2};
  detector.start(0);

  // Drive rounds by hand: member 2 goes silent for rounds 4-6 (say, a
  // long GC pause) and then recovers.
  Time now = 0;
  for (int round = 1; round <= 10 && !detector.down(); ++round) {
    now = detector.next_event_time();
    detector.on_elapsed(now);
    const bool member2_silent = round >= 4 && round <= 6;
    for (const int id : {1, 2, 3}) {
      if (id == 2 && member2_silent) continue;
      detector.on_message(now + 1, Message{id, true});
    }

    std::printf("[t=%4lld] round %2d  misses:", static_cast<long long>(now),
                round);
    for (const int id : {1, 2, 3}) {
      std::printf(" p%d=%d", id, detector.missed_rounds(id));
    }
    const auto suspected = detector.suspected();
    std::printf("  suspected: {");
    for (std::size_t i = 0; i < suspected.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", suspected[i]);
    }
    std::printf("}%s\n", member2_silent ? "   (p2 silent)" : "");
  }

  std::printf(
      "\np2 was suspected after two consecutive silent rounds and trusted\n"
      "again once its beats resumed — without ever tripping the protocol's\n"
      "own all-or-nothing deactivation (coordinator is %s).\n",
      to_string(detector.coordinator().status()));
  return 0;
}
