// Model checking as a library: build a timed-automata model of a
// heartbeat protocol, state a requirement, and either prove it or get a
// minimal counterexample trace — the workflow of the formal analysis,
// driven programmatically.
//
// The example checks requirement R2 ("no spurious deactivation of a
// participant") for the binary protocol at a parameter point where it
// fails (tmin == tmax), prints the shortest counterexample, and then
// shows that the Section 6 correction removes it.
//
// Build & run:  ./build/examples/verify_protocol [tmin] [tmax]
#include <cstdio>
#include <cstdlib>

#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace ahb;

  const int tmin = argc > 1 ? std::atoi(argv[1]) : 10;
  const int tmax = argc > 2 ? std::atoi(argv[2]) : 10;

  models::BuildOptions options;
  options.timing = {tmin, tmax};

  // 1. Build the timed-automata network of the binary protocol:
  //    p[0], p[1], and the lossy bounded-delay channel.
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  std::printf("model: binary protocol, tmin=%d tmax=%d (%zu automata)\n",
              tmin, tmax, model.net().automaton_count());

  // 2. Exhaustively search for a violation of R2: p[1] non-voluntarily
  //    inactivated although no message was lost and p[0] is alive.
  mc::Explorer explorer{model.net()};
  const auto result = explorer.reach(model.r2_violation_any());
  std::printf("explored %llu states in %.3fs\n",
              static_cast<unsigned long long>(result.stats.states),
              result.stats.elapsed.count());

  if (result.found) {
    std::printf("\nR2 VIOLATED - shortest counterexample:\n%s\n",
                trace::render_timeline(model.net(), result.trace).c_str());
  } else {
    std::printf("\nR2 holds (state space exhausted, %s).\n",
                result.complete ? "complete" : "INCOMPLETE");
  }

  // 3. Verify the corrected variant at the same parameters.
  options.fixed = true;
  const auto fixed_model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  mc::Explorer fixed_explorer{fixed_model.net()};
  const auto fixed_result =
      fixed_explorer.reach(fixed_model.r2_violation_any());
  std::printf("with the Section 6 fixes: R2 %s (%llu states)\n",
              fixed_result.found ? "STILL VIOLATED" : "holds",
              static_cast<unsigned long long>(fixed_result.stats.states));
  return fixed_result.found ? 1 : 0;
}
