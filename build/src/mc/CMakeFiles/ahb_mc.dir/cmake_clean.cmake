file(REMOVE_RECURSE
  "CMakeFiles/ahb_mc.dir/bitstate.cpp.o"
  "CMakeFiles/ahb_mc.dir/bitstate.cpp.o.d"
  "CMakeFiles/ahb_mc.dir/explorer.cpp.o"
  "CMakeFiles/ahb_mc.dir/explorer.cpp.o.d"
  "CMakeFiles/ahb_mc.dir/lts.cpp.o"
  "CMakeFiles/ahb_mc.dir/lts.cpp.o.d"
  "CMakeFiles/ahb_mc.dir/ndfs.cpp.o"
  "CMakeFiles/ahb_mc.dir/ndfs.cpp.o.d"
  "CMakeFiles/ahb_mc.dir/store.cpp.o"
  "CMakeFiles/ahb_mc.dir/store.cpp.o.d"
  "libahb_mc.a"
  "libahb_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahb_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
