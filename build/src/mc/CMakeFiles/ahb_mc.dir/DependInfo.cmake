
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/bitstate.cpp" "src/mc/CMakeFiles/ahb_mc.dir/bitstate.cpp.o" "gcc" "src/mc/CMakeFiles/ahb_mc.dir/bitstate.cpp.o.d"
  "/root/repo/src/mc/explorer.cpp" "src/mc/CMakeFiles/ahb_mc.dir/explorer.cpp.o" "gcc" "src/mc/CMakeFiles/ahb_mc.dir/explorer.cpp.o.d"
  "/root/repo/src/mc/lts.cpp" "src/mc/CMakeFiles/ahb_mc.dir/lts.cpp.o" "gcc" "src/mc/CMakeFiles/ahb_mc.dir/lts.cpp.o.d"
  "/root/repo/src/mc/ndfs.cpp" "src/mc/CMakeFiles/ahb_mc.dir/ndfs.cpp.o" "gcc" "src/mc/CMakeFiles/ahb_mc.dir/ndfs.cpp.o.d"
  "/root/repo/src/mc/store.cpp" "src/mc/CMakeFiles/ahb_mc.dir/store.cpp.o" "gcc" "src/mc/CMakeFiles/ahb_mc.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ta/CMakeFiles/ahb_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
