# Empty dependencies file for ahb_mc.
# This may be replaced when dependencies are built.
