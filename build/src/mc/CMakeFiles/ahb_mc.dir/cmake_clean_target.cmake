file(REMOVE_RECURSE
  "libahb_mc.a"
)
