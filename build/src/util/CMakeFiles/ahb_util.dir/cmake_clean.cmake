file(REMOVE_RECURSE
  "CMakeFiles/ahb_util.dir/rng.cpp.o"
  "CMakeFiles/ahb_util.dir/rng.cpp.o.d"
  "CMakeFiles/ahb_util.dir/strings.cpp.o"
  "CMakeFiles/ahb_util.dir/strings.cpp.o.d"
  "libahb_util.a"
  "libahb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
