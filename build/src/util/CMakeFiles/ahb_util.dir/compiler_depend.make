# Empty compiler generated dependencies file for ahb_util.
# This may be replaced when dependencies are built.
