file(REMOVE_RECURSE
  "libahb_util.a"
)
