file(REMOVE_RECURSE
  "CMakeFiles/ahb_sim.dir/simulator.cpp.o"
  "CMakeFiles/ahb_sim.dir/simulator.cpp.o.d"
  "libahb_sim.a"
  "libahb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
