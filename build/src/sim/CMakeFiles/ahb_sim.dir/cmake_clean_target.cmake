file(REMOVE_RECURSE
  "libahb_sim.a"
)
