# Empty dependencies file for ahb_sim.
# This may be replaced when dependencies are built.
