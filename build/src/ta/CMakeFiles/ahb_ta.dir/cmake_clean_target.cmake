file(REMOVE_RECURSE
  "libahb_ta.a"
)
