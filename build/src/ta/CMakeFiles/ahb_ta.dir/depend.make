# Empty dependencies file for ahb_ta.
# This may be replaced when dependencies are built.
