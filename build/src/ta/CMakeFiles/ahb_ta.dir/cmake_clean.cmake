file(REMOVE_RECURSE
  "CMakeFiles/ahb_ta.dir/network.cpp.o"
  "CMakeFiles/ahb_ta.dir/network.cpp.o.d"
  "libahb_ta.a"
  "libahb_ta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahb_ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
