file(REMOVE_RECURSE
  "CMakeFiles/ahb_trace.dir/trace.cpp.o"
  "CMakeFiles/ahb_trace.dir/trace.cpp.o.d"
  "libahb_trace.a"
  "libahb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
