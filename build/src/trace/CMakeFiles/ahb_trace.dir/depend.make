# Empty dependencies file for ahb_trace.
# This may be replaced when dependencies are built.
