file(REMOVE_RECURSE
  "libahb_trace.a"
)
