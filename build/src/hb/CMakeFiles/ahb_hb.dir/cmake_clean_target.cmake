file(REMOVE_RECURSE
  "libahb_hb.a"
)
