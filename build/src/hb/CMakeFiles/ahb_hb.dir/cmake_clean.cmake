file(REMOVE_RECURSE
  "CMakeFiles/ahb_hb.dir/cluster.cpp.o"
  "CMakeFiles/ahb_hb.dir/cluster.cpp.o.d"
  "CMakeFiles/ahb_hb.dir/coordinator.cpp.o"
  "CMakeFiles/ahb_hb.dir/coordinator.cpp.o.d"
  "CMakeFiles/ahb_hb.dir/failure_detector.cpp.o"
  "CMakeFiles/ahb_hb.dir/failure_detector.cpp.o.d"
  "CMakeFiles/ahb_hb.dir/participant.cpp.o"
  "CMakeFiles/ahb_hb.dir/participant.cpp.o.d"
  "CMakeFiles/ahb_hb.dir/plain.cpp.o"
  "CMakeFiles/ahb_hb.dir/plain.cpp.o.d"
  "CMakeFiles/ahb_hb.dir/types.cpp.o"
  "CMakeFiles/ahb_hb.dir/types.cpp.o.d"
  "libahb_hb.a"
  "libahb_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahb_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
