# Empty compiler generated dependencies file for ahb_hb.
# This may be replaced when dependencies are built.
