
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hb/cluster.cpp" "src/hb/CMakeFiles/ahb_hb.dir/cluster.cpp.o" "gcc" "src/hb/CMakeFiles/ahb_hb.dir/cluster.cpp.o.d"
  "/root/repo/src/hb/coordinator.cpp" "src/hb/CMakeFiles/ahb_hb.dir/coordinator.cpp.o" "gcc" "src/hb/CMakeFiles/ahb_hb.dir/coordinator.cpp.o.d"
  "/root/repo/src/hb/failure_detector.cpp" "src/hb/CMakeFiles/ahb_hb.dir/failure_detector.cpp.o" "gcc" "src/hb/CMakeFiles/ahb_hb.dir/failure_detector.cpp.o.d"
  "/root/repo/src/hb/participant.cpp" "src/hb/CMakeFiles/ahb_hb.dir/participant.cpp.o" "gcc" "src/hb/CMakeFiles/ahb_hb.dir/participant.cpp.o.d"
  "/root/repo/src/hb/plain.cpp" "src/hb/CMakeFiles/ahb_hb.dir/plain.cpp.o" "gcc" "src/hb/CMakeFiles/ahb_hb.dir/plain.cpp.o.d"
  "/root/repo/src/hb/types.cpp" "src/hb/CMakeFiles/ahb_hb.dir/types.cpp.o" "gcc" "src/hb/CMakeFiles/ahb_hb.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ahb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
