# Empty compiler generated dependencies file for ahb_models.
# This may be replaced when dependencies are built.
