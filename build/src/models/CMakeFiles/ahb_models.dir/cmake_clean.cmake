file(REMOVE_RECURSE
  "CMakeFiles/ahb_models.dir/heartbeat_model.cpp.o"
  "CMakeFiles/ahb_models.dir/heartbeat_model.cpp.o.d"
  "CMakeFiles/ahb_models.dir/options.cpp.o"
  "CMakeFiles/ahb_models.dir/options.cpp.o.d"
  "CMakeFiles/ahb_models.dir/standalone.cpp.o"
  "CMakeFiles/ahb_models.dir/standalone.cpp.o.d"
  "libahb_models.a"
  "libahb_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ahb_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
