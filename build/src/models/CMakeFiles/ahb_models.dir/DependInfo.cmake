
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/heartbeat_model.cpp" "src/models/CMakeFiles/ahb_models.dir/heartbeat_model.cpp.o" "gcc" "src/models/CMakeFiles/ahb_models.dir/heartbeat_model.cpp.o.d"
  "/root/repo/src/models/options.cpp" "src/models/CMakeFiles/ahb_models.dir/options.cpp.o" "gcc" "src/models/CMakeFiles/ahb_models.dir/options.cpp.o.d"
  "/root/repo/src/models/standalone.cpp" "src/models/CMakeFiles/ahb_models.dir/standalone.cpp.o" "gcc" "src/models/CMakeFiles/ahb_models.dir/standalone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ta/CMakeFiles/ahb_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ahb_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
