file(REMOVE_RECURSE
  "libahb_models.a"
)
