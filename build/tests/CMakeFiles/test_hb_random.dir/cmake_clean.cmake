file(REMOVE_RECURSE
  "CMakeFiles/test_hb_random.dir/hb_random_property_test.cpp.o"
  "CMakeFiles/test_hb_random.dir/hb_random_property_test.cpp.o.d"
  "test_hb_random"
  "test_hb_random.pdb"
  "test_hb_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hb_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
