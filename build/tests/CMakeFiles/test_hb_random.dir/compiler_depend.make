# Empty compiler generated dependencies file for test_hb_random.
# This may be replaced when dependencies are built.
