
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mc_bitstate_test.cpp" "tests/CMakeFiles/test_mc.dir/mc_bitstate_test.cpp.o" "gcc" "tests/CMakeFiles/test_mc.dir/mc_bitstate_test.cpp.o.d"
  "/root/repo/tests/mc_explorer_test.cpp" "tests/CMakeFiles/test_mc.dir/mc_explorer_test.cpp.o" "gcc" "tests/CMakeFiles/test_mc.dir/mc_explorer_test.cpp.o.d"
  "/root/repo/tests/mc_lts_test.cpp" "tests/CMakeFiles/test_mc.dir/mc_lts_test.cpp.o" "gcc" "tests/CMakeFiles/test_mc.dir/mc_lts_test.cpp.o.d"
  "/root/repo/tests/mc_ndfs_test.cpp" "tests/CMakeFiles/test_mc.dir/mc_ndfs_test.cpp.o" "gcc" "tests/CMakeFiles/test_mc.dir/mc_ndfs_test.cpp.o.d"
  "/root/repo/tests/mc_store_test.cpp" "tests/CMakeFiles/test_mc.dir/mc_store_test.cpp.o" "gcc" "tests/CMakeFiles/test_mc.dir/mc_store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/ahb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ahb_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/ta/CMakeFiles/ahb_ta.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/ahb_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ahb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ahb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ahb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
