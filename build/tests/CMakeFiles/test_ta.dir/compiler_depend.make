# Empty compiler generated dependencies file for test_ta.
# This may be replaced when dependencies are built.
