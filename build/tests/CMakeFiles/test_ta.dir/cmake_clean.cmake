file(REMOVE_RECURSE
  "CMakeFiles/test_ta.dir/ta_network_test.cpp.o"
  "CMakeFiles/test_ta.dir/ta_network_test.cpp.o.d"
  "test_ta"
  "test_ta.pdb"
  "test_ta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
