# Empty dependencies file for test_hb_variants.
# This may be replaced when dependencies are built.
