file(REMOVE_RECURSE
  "CMakeFiles/test_hb_variants.dir/hb_variants_test.cpp.o"
  "CMakeFiles/test_hb_variants.dir/hb_variants_test.cpp.o.d"
  "test_hb_variants"
  "test_hb_variants.pdb"
  "test_hb_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hb_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
