# Empty dependencies file for test_rejoin.
# This may be replaced when dependencies are built.
