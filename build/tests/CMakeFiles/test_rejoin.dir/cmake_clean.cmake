file(REMOVE_RECURSE
  "CMakeFiles/test_rejoin.dir/rejoin_test.cpp.o"
  "CMakeFiles/test_rejoin.dir/rejoin_test.cpp.o.d"
  "test_rejoin"
  "test_rejoin.pdb"
  "test_rejoin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
