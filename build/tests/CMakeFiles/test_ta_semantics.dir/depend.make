# Empty dependencies file for test_ta_semantics.
# This may be replaced when dependencies are built.
