file(REMOVE_RECURSE
  "CMakeFiles/test_ta_semantics.dir/ta_semantics_test.cpp.o"
  "CMakeFiles/test_ta_semantics.dir/ta_semantics_test.cpp.o.d"
  "test_ta_semantics"
  "test_ta_semantics.pdb"
  "test_ta_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ta_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
