# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_ta[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_hb[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_rejoin[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_failure_detector[1]_include.cmake")
include("/root/repo/build/tests/test_ta_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_hb_variants[1]_include.cmake")
include("/root/repo/build/tests/test_hb_random[1]_include.cmake")
