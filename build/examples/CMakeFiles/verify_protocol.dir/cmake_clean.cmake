file(REMOVE_RECURSE
  "CMakeFiles/verify_protocol.dir/verify_protocol.cpp.o"
  "CMakeFiles/verify_protocol.dir/verify_protocol.cpp.o.d"
  "verify_protocol"
  "verify_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
