file(REMOVE_RECURSE
  "CMakeFiles/hbmc.dir/hbmc.cpp.o"
  "CMakeFiles/hbmc.dir/hbmc.cpp.o.d"
  "hbmc"
  "hbmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
