# Empty dependencies file for hbmc.
# This may be replaced when dependencies are built.
