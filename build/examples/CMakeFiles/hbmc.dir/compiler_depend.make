# Empty compiler generated dependencies file for hbmc.
# This may be replaced when dependencies are built.
