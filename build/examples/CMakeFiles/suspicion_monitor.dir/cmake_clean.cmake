file(REMOVE_RECURSE
  "CMakeFiles/suspicion_monitor.dir/suspicion_monitor.cpp.o"
  "CMakeFiles/suspicion_monitor.dir/suspicion_monitor.cpp.o.d"
  "suspicion_monitor"
  "suspicion_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suspicion_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
