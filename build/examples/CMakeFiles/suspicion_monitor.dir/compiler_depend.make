# Empty compiler generated dependencies file for suspicion_monitor.
# This may be replaced when dependencies are built.
