# Empty dependencies file for cluster_membership.
# This may be replaced when dependencies are built.
