# Empty dependencies file for bench_fig11_12_r2r3.
# This may be replaced when dependencies are built.
