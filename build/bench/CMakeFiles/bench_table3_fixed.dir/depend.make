# Empty dependencies file for bench_table3_fixed.
# This may be replaced when dependencies are built.
