file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fixed.dir/bench_table3_fixed.cpp.o"
  "CMakeFiles/bench_table3_fixed.dir/bench_table3_fixed.cpp.o.d"
  "bench_table3_fixed"
  "bench_table3_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
