file(REMOVE_RECURSE
  "CMakeFiles/bench_rejoin_extension.dir/bench_rejoin_extension.cpp.o"
  "CMakeFiles/bench_rejoin_extension.dir/bench_rejoin_extension.cpp.o.d"
  "bench_rejoin_extension"
  "bench_rejoin_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rejoin_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
