# Empty compiler generated dependencies file for bench_rejoin_extension.
# This may be replaced when dependencies are built.
