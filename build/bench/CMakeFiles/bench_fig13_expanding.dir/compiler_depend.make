# Empty compiler generated dependencies file for bench_fig13_expanding.
# This may be replaced when dependencies are built.
