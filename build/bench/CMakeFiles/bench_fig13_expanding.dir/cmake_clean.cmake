file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_expanding.dir/bench_fig13_expanding.cpp.o"
  "CMakeFiles/bench_fig13_expanding.dir/bench_fig13_expanding.cpp.o.d"
  "bench_fig13_expanding"
  "bench_fig13_expanding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_expanding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
