file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_2_lts.dir/bench_fig1_2_lts.cpp.o"
  "CMakeFiles/bench_fig1_2_lts.dir/bench_fig1_2_lts.cpp.o.d"
  "bench_fig1_2_lts"
  "bench_fig1_2_lts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_2_lts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
