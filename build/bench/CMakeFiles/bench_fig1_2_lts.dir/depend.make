# Empty dependencies file for bench_fig1_2_lts.
# This may be replaced when dependencies are built.
