# Empty dependencies file for bench_fig10_r1.
# This may be replaced when dependencies are built.
