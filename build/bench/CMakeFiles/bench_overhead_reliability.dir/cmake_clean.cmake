file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_reliability.dir/bench_overhead_reliability.cpp.o"
  "CMakeFiles/bench_overhead_reliability.dir/bench_overhead_reliability.cpp.o.d"
  "bench_overhead_reliability"
  "bench_overhead_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
