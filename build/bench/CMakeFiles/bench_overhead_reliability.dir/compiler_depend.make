# Empty compiler generated dependencies file for bench_overhead_reliability.
# This may be replaced when dependencies are built.
