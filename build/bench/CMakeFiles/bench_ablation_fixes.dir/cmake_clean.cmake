file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fixes.dir/bench_ablation_fixes.cpp.o"
  "CMakeFiles/bench_ablation_fixes.dir/bench_ablation_fixes.cpp.o.d"
  "bench_ablation_fixes"
  "bench_ablation_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
