# Empty compiler generated dependencies file for bench_ablation_fixes.
# This may be replaced when dependencies are built.
