// Overhead/reliability trade-off (simulation): the core motivation of
// the ICDCS'98 paper. A plain heartbeat protocol must pick its period
// and miss-threshold up front:
//   - a slow period with a 1-miss threshold is cheap but a single lost
//     beat falsely deactivates the system;
//   - tolerating k losses multiplies the detection delay by k;
//   - recovering the detection delay back means beating k times faster,
//     multiplying the overhead by k.
// The accelerated protocol instead beats slowly (every tmax) while
// healthy and halves its period only on suspicion, so a false
// deactivation needs ~log2(tmax/tmin) *consecutive* bad rounds — at
// unchanged overhead and with detection still bounded by 3*tmax - tmin.
//
// For each loss probability we report, per protocol: message overhead
// (msgs per tmax time while healthy), the fraction of seeded runs that
// survive a long horizon without any false deactivation, and the
// detection delay after a real crash.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hb/cluster.hpp"
#include "hb/plain.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ahb;

constexpr hb::Time kTmin = 1;
constexpr hb::Time kTmax = 16;
constexpr sim::Time kHorizon = 40000;
constexpr int kRuns = 200;

struct Row {
  std::string name;
  std::string slug;           ///< JSON bench-line identifier
  double msgs_per_tmax = 0;   ///< overhead while healthy
  double survival = 0;        ///< fraction of runs with no false deactivation
  double detect_mean = 0;     ///< delay after an injected crash
  hb::Time detect_max = 0;
  sim::NetworkStats net;      ///< channel counters summed over every run
};

/// Plain fixed-period heartbeat pair: node 1 beats, node 0 detects.
struct PlainOutcome {
  bool falsely_suspected = false;
  hb::Time suspect_delay = 0;  ///< delay after the crash, if crashed
  std::uint64_t sent = 0;
  sim::NetworkStats net;
};

void add_stats(sim::NetworkStats& total, const sim::NetworkStats& one) {
  total.sent += one.sent;
  total.delivered += one.delivered;
  total.lost += one.lost;
  total.blocked += one.blocked;
  total.duplicated += one.duplicated;
  total.reordered += one.reordered;
  total.out_of_spec_delay += one.out_of_spec_delay;
}

PlainOutcome run_plain(hb::Time period, int k, double loss,
                       std::uint64_t seed, sim::Time crash_at) {
  sim::Simulator sim{seed};
  sim::Network<hb::Message> net{
      sim, {.loss_probability = loss, .min_delay = 0, .max_delay = 1}};
  hb::PlainSender sender{1, period};
  hb::PlainDetector detector{period, k};
  PlainOutcome out;

  sim::Simulator::EventId sender_timer = sim::Simulator::kInvalidEvent;
  std::function<void()> arm_sender = [&] {
    sim.cancel(sender_timer);
    const hb::Time when = sender.next_event_time();
    if (when == hb::kNever) return;
    sender_timer = sim.at(when, [&] {
      for (const auto& m : sender.on_elapsed(sim.now()).messages) {
        ++out.sent;
        net.send(1, 0, m.message);
      }
      arm_sender();
    }, 1);
  };
  sim::Simulator::EventId det_timer = sim::Simulator::kInvalidEvent;
  std::function<void()> arm_detector = [&] {
    sim.cancel(det_timer);
    const hb::Time when = detector.next_event_time();
    if (when == hb::kNever) return;
    det_timer = sim.at(when, [&] {
      detector.on_elapsed(sim.now());
      arm_detector();
    }, 1);
  };
  net.attach(0, [&](int from, const hb::Message& m) {
    (void)from;
    detector.on_message(sim.now(), m);
    arm_detector();
  });

  for (const auto& m : sender.start(0).messages) {
    ++out.sent;
    net.send(1, 0, m.message);
  }
  detector.start(0);
  arm_sender();
  arm_detector();
  if (crash_at >= 0) {
    sim.at(crash_at, [&] { sender.crash(sim.now()); });
  }
  sim.run_until(kHorizon);

  if (detector.suspected()) {
    if (crash_at < 0 || detector.suspected_at() < crash_at) {
      out.falsely_suspected = true;
    } else {
      out.suspect_delay = detector.suspected_at() - crash_at;
    }
  }
  out.net = net.stats();
  return out;
}

Row bench_plain(const char* name, const char* slug, hb::Time period, int k,
                double loss) {
  Row row;
  row.name = name;
  row.slug = slug;
  int survived = 0;
  double detect_total = 0;
  int detected = 0;
  std::uint64_t healthy_msgs = 0;
  for (int seed = 1; seed <= kRuns; ++seed) {
    // Survival run (no crash).
    const auto healthy = run_plain(period, k, loss,
                                   static_cast<std::uint64_t>(seed), -1);
    if (!healthy.falsely_suspected) ++survived;
    healthy_msgs += healthy.sent;
    add_stats(row.net, healthy.net);
    // Detection run (crash mid-way), loss-free to isolate the delay.
    const auto crashed = run_plain(period, k, 0.0,
                                   static_cast<std::uint64_t>(seed),
                                   1000 + (seed * 13) % (3 * kTmax));
    add_stats(row.net, crashed.net);
    if (crashed.suspect_delay > 0) {
      ++detected;
      detect_total += static_cast<double>(crashed.suspect_delay);
      row.detect_max = std::max(row.detect_max, crashed.suspect_delay);
    }
  }
  row.survival = static_cast<double>(survived) / kRuns;
  row.msgs_per_tmax = static_cast<double>(healthy_msgs) / kRuns /
                      (static_cast<double>(kHorizon) / kTmax);
  row.detect_mean = detected ? detect_total / detected : 0;
  return row;
}

Row bench_accelerated(const char* name, const char* slug, bool fixed_bounds,
                      double loss) {
  Row row;
  row.name = name;
  row.slug = slug;
  int survived = 0;
  double detect_total = 0;
  int detected = 0;
  std::uint64_t healthy_msgs = 0;
  for (int seed = 1; seed <= kRuns; ++seed) {
    {
      hb::ClusterConfig config;
      config.protocol.variant = hb::Variant::Binary;
      config.protocol.tmin = kTmin;
      config.protocol.tmax = kTmax;
      config.protocol.fixed_bounds = fixed_bounds;
      config.participants = 1;
      config.loss_probability = loss;
      config.seed = static_cast<std::uint64_t>(seed);
      hb::Cluster cluster{config};
      cluster.start();
      cluster.run_until(kHorizon);
      const bool ok = cluster.coordinator().status() == hb::Status::Active &&
                      cluster.participant(1).status() == hb::Status::Active;
      if (ok) ++survived;
      // Count only the coordinator+participant sends (the overhead).
      healthy_msgs += cluster.node_stats(0).sent + cluster.node_stats(1).sent;
      add_stats(row.net, cluster.network_stats());
    }
    {
      hb::ClusterConfig config;
      config.protocol.variant = hb::Variant::Binary;
      config.protocol.tmin = kTmin;
      config.protocol.tmax = kTmax;
      config.protocol.fixed_bounds = fixed_bounds;
      config.participants = 1;
      config.seed = static_cast<std::uint64_t>(seed);
      hb::Cluster cluster{config};
      const sim::Time crash_at = 1000 + (seed * 13) % (3 * kTmax);
      cluster.crash_participant_at(1, crash_at);
      cluster.start();
      cluster.run_until(kHorizon);
      const hb::Time at = cluster.coordinator().inactivated_at();
      if (at != hb::kNever && at > crash_at) {
        ++detected;
        const hb::Time delay = at - crash_at;
        detect_total += static_cast<double>(delay);
        row.detect_max = std::max(row.detect_max, delay);
      }
      add_stats(row.net, cluster.network_stats());
    }
  }
  row.survival = static_cast<double>(survived) / kRuns;
  row.msgs_per_tmax = static_cast<double>(healthy_msgs) / kRuns /
                      (static_cast<double>(kHorizon) / kTmax);
  row.detect_mean = detected ? detect_total / detected : 0;
  return row;
}

void print_row(const Row& r) {
  std::printf("  %-34s %10.2f %9.1f%% %12.1f %9lld\n", r.name.c_str(),
              r.msgs_per_tmax, 100.0 * r.survival, r.detect_mean,
              static_cast<long long>(r.detect_max));
}

/// One JSON line per (protocol, loss) cell, with the channel counters
/// alongside the headline figures.
void emit_row(const Row& r, double loss) {
  std::printf(
      "{\"bench\": \"overhead_reliability/%s_loss%g\", "
      "\"msgs_per_tmax\": %.3f, \"survival\": %.3f, \"detect_mean\": %.1f, "
      "\"detect_max\": %lld, %s}\n",
      r.slug.c_str(), loss, r.msgs_per_tmax, r.survival, r.detect_mean,
      static_cast<long long>(r.detect_max),
      bench::network_stats_fields(r.net).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (args.json) {
    for (const double loss : {0.01, 0.02, 0.05, 0.10}) {
      emit_row(bench_accelerated("accelerated (paper bounds)", "accel_paper",
                                 false, loss),
               loss);
      emit_row(bench_accelerated("accelerated (fixed bounds)", "accel_fixed",
                                 true, loss),
               loss);
      emit_row(
          bench_plain("plain period=tmax, k=1", "plain_k1", kTmax, 1, loss),
          loss);
      emit_row(
          bench_plain("plain period=tmax, k=3", "plain_k3", kTmax, 3, loss),
          loss);
      emit_row(bench_plain("plain period=tmax/4, k=4", "plain_fast_k4",
                           kTmax / 4, 4, loss),
               loss);
    }
    return 0;
  }

  std::printf("== Overhead vs reliability vs detection delay ==\n");
  std::printf("(tmin=%lld, tmax=%lld, horizon=%lld, %d runs per cell;\n"
              " overhead = messages per tmax while healthy;\n"
              " survival = runs with no false deactivation)\n",
              static_cast<long long>(kTmin), static_cast<long long>(kTmax),
              static_cast<long long>(kHorizon), kRuns);

  for (const double loss : {0.01, 0.02, 0.05, 0.10}) {
    std::printf("\n-- loss probability %.0f%% --\n", loss * 100);
    std::printf("  %-34s %10s %10s %12s %9s\n", "protocol", "msgs/tmax",
                "survival", "detect-mean", "max");
    print_row(bench_accelerated("accelerated (paper bounds)", "accel_paper",
                                false, loss));
    print_row(bench_accelerated("accelerated (fixed bounds)", "accel_fixed",
                                true, loss));
    print_row(
        bench_plain("plain period=tmax, k=1", "plain_k1", kTmax, 1, loss));
    print_row(
        bench_plain("plain period=tmax, k=3", "plain_k3", kTmax, 3, loss));
    print_row(bench_plain("plain period=tmax/4, k=4", "plain_fast_k4",
                          kTmax / 4, 4, loss));
  }

  std::printf(
      "\nExpected shape (and what the 1998 design argues):\n"
      " * plain k=1 at the slow period is cheap but dies from any single\n"
      "   loss -> poor survival already at 1-2%% loss;\n"
      " * plain k=3 survives but detects ~3x slower;\n"
      " * plain at 4x rate recovers the delay at 4x the message cost;\n"
      " * the accelerated protocol keeps the slow-period overhead, the\n"
      "   bounded delay, and survives because a false deactivation needs\n"
      "   log2(tmax/tmin)+1 consecutive bad rounds;\n"
      " * the 'fixed bounds' row shows the price of the analysis's\n"
      "   tightened 2*tmax participant deadline: it is exact only under\n"
      "   the zero-loss premise of requirement R2 -- with any loss at\n"
      "   all, one dropped beat is fatal, because the replacement beat is\n"
      "   only *sent* at the instant the tightened deadline expires. In a\n"
      "   lossy deployment keep the published 3*tmax - tmin deadline,\n"
      "   which tolerates exactly one lost beat per window.\n");
  return 0;
}
