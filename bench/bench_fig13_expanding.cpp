// Reproduces Figure 13 of the analysis: the join-phase R2 counterexample
// in the expanding (and dynamic) protocol when 2*tmin >= tmax.
//
// A joiner's request reaches p[0] right after one of p[0]'s timeouts, so
// p[0] does not address the newcomer until its *next* timeout, up to
// tmax later, plus up to tmin delivery delay. The joiner therefore only
// hears back after up to 2*tmax + tmin since start-up, which exceeds its
// 3*tmax - tmin deadline exactly when 2*tmin >= tmax — and it
// inactivates although nothing was lost and everybody is alive.
#include <cstdio>

#include "bench_util.hpp"
#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"
#include "trace/trace.hpp"

namespace {

using namespace ahb;

void show(models::Flavor flavor, int tmin, int tmax, bool fixed, bool json) {
  models::BuildOptions options;
  options.timing = {tmin, tmax};
  options.fixed = fixed;
  const auto model = models::HeartbeatModel::build(flavor, options);
  mc::Explorer explorer{model.net()};
  const auto result = explorer.reach(model.r2_violation_any());

  std::printf("--- %s%s protocol, tmin=%d tmax=%d ---\n",
              fixed ? "fixed " : "", models::to_string(flavor), tmin,
              tmax);
  if (json) {
    std::printf("{\"bench\": \"fig13/%s%s\", \"found\": %s, \"steps\": %zu, "
                "\"states\": %llu}\n",
                models::to_string(flavor), fixed ? "_fixed" : "",
                result.found ? "true" : "false",
                result.found ? result.trace.size() - 1 : 0,
                static_cast<unsigned long long>(result.stats.states));
  }
  if (!result.found) {
    std::printf("R2 violation reachable: no%s\n\n",
                fixed ? " (paper: the corrected join deadline of "
                        "2*tmax + tmin plus receive priority removes the "
                        "counterexample)"
                      : " (unexpected!)");
    return;
  }
  std::printf(
      "R2 violated: the joining process inactivated with no loss, p[0]\n"
      "alive. Shortest witness (%zu steps, %llu states explored):\n",
      result.trace.size() - 1,
      static_cast<unsigned long long>(result.stats.states));
  std::printf("%s\n",
              trace::render_timeline_filtered(
                  model.net(), result.trace,
                  {"join", "beat", "reply", "timeout", "inactivate"})
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  std::printf("== Figure 13: join-phase R2 counterexample (2*tmin >= tmax) ==\n\n");
  show(models::Flavor::Expanding, 5, 10, /*fixed=*/false, args.json);
  show(models::Flavor::Dynamic, 5, 10, /*fixed=*/false, args.json);
  show(models::Flavor::Expanding, 5, 10, /*fixed=*/true, args.json);
  return 0;
}
