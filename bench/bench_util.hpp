// Shared command-line handling for the table/figure reproduction
// binaries: a --threads=N knob for the parallel explorer and a --json
// mode that emits one machine-readable line per measured configuration,
//   {"bench": "...", "states": S, "transitions": T, "seconds": X.XXX,
//    "threads": N}
// so sweep scripts can diff runs without scraping the human tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ahb::bench {

struct BenchArgs {
  bool json = false;     ///< emit JSON lines instead of / alongside tables
  unsigned threads = 0;  ///< SearchLimits::threads (0 = hardware concurrency)
  int participants = 0;  ///< first positional argument, when given
};

/// Parses --json, --threads=N and an optional positional participant
/// count; exits with usage on anything else.
inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      args.json = true;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = static_cast<unsigned>(std::atoi(arg + 10));
    } else if (arg[0] != '-') {
      args.participants = std::atoi(arg);
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--threads=N] [participants]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// One JSON result line on stdout. `bench` names the configuration,
/// e.g. "table1/static_n2_tmin5".
inline void emit_json_line(const std::string& bench, std::uint64_t states,
                           std::uint64_t transitions, double seconds,
                           unsigned threads) {
  std::printf(
      "{\"bench\": \"%s\", \"states\": %llu, \"transitions\": %llu, "
      "\"seconds\": %.3f, \"threads\": %u}\n",
      bench.c_str(), static_cast<unsigned long long>(states),
      static_cast<unsigned long long>(transitions), seconds, threads);
}

}  // namespace ahb::bench
