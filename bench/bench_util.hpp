// Shared command-line handling for the table/figure reproduction
// binaries: a --threads=N knob for the parallel explorer, a
// --compression=none|pack|collapse knob for the state-store encoding,
// --symmetry=none|participants / --por knobs for the reduced searches,
// and a --json mode that emits one machine-readable line per measured
// configuration,
//   {"bench": "...", "states": S, "transitions": T, "seconds": X.XXX,
//    "threads": N, "store_bytes": B, "compression": "none",
//    "symmetry": "none", "por": false, "reduction_factor": 1.00}
// so sweep scripts can diff runs without scraping the human tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include <sys/resource.h>

#include "mc/explorer.hpp"
#include "sim/network.hpp"
#include "ta/codec.hpp"

namespace ahb::bench {

struct BenchArgs {
  bool json = false;     ///< emit JSON lines instead of / alongside tables
  unsigned threads = 0;  ///< SearchLimits::threads (0 = hardware concurrency)
  int participants = 0;  ///< first positional argument, when given
  /// SearchLimits::compression; affects store_bytes only, never verdicts.
  ta::Compression compression = ta::Compression::None;
  /// SearchLimits::symmetry; verdict-preserving orbit quotient.
  ta::Symmetry symmetry = ta::Symmetry::None;
  /// SearchLimits::por; verdict-preserving ample-set reduction.
  bool por = false;
  /// SearchLimits::max_states override; 0 keeps the engine default.
  /// Deep sweeps (n >= 3) need more head-room than the 200M default.
  std::uint64_t max_states = 0;

  bool reduced() const {
    return por || symmetry != ta::Symmetry::None;
  }

  /// The SearchLimits every bench passes to the checker, so the knobs
  /// stay uniform across binaries.
  mc::SearchLimits limits() const {
    mc::SearchLimits l;
    l.threads = threads;
    l.compression = compression;
    l.symmetry = symmetry;
    l.por = por;
    if (max_states != 0) l.max_states = max_states;
    return l;
  }
};

/// Binary-specific flag hook: return true when `arg` was consumed.
/// Lets a bench keep its extra flags while sharing the common parser.
using ExtraFlag = std::function<bool(const char* arg)>;

/// Parses --json, --threads=N, --compression=MODE and an optional
/// positional participant count; exits with usage on anything else.
/// `extra` (if given) gets a shot at unrecognised flags first, and
/// `extra_usage` is appended to the usage line it prints on failure.
inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const ExtraFlag& extra = {},
                                  const char* extra_usage = "") {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      args.json = true;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = static_cast<unsigned>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--compression=", 14) == 0) {
      const char* mode = arg + 14;
      if (std::strcmp(mode, "none") == 0) {
        args.compression = ta::Compression::None;
      } else if (std::strcmp(mode, "pack") == 0) {
        args.compression = ta::Compression::Pack;
      } else if (std::strcmp(mode, "collapse") == 0) {
        args.compression = ta::Compression::Collapse;
      } else {
        std::fprintf(stderr, "unknown --compression mode \"%s\"\n", mode);
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--symmetry=", 11) == 0) {
      const char* mode = arg + 11;
      if (std::strcmp(mode, "none") == 0) {
        args.symmetry = ta::Symmetry::None;
      } else if (std::strcmp(mode, "participants") == 0) {
        args.symmetry = ta::Symmetry::Participants;
      } else {
        std::fprintf(stderr, "unknown --symmetry mode \"%s\"\n", mode);
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--por") == 0) {
      args.por = true;
    } else if (std::strncmp(arg, "--max-states=", 13) == 0) {
      args.max_states = std::strtoull(arg + 13, nullptr, 10);
    } else if (extra && extra(arg)) {
      // consumed by the binary's own flag set
    } else if (arg[0] != '-') {
      args.participants = std::atoi(arg);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--threads=N] "
                   "[--compression=none|pack|collapse] "
                   "[--symmetry=none|participants] [--por] "
                   "[--max-states=N] [participants]%s%s\n",
                   argv[0], *extra_usage ? " " : "", extra_usage);
      std::exit(2);
    }
  }
  return args;
}

/// Interned-state saving observable within a single reduced run: visited
/// states (interned + fused-through transients) per interned state. The
/// symmetry quotient's gain shows up directly in the smaller `states`
/// figure; cross-mode factors are computed by diffing JSON lines.
inline double reduction_factor(std::uint64_t states, std::uint64_t fused) {
  return states == 0
             ? 1.0
             : static_cast<double>(states + fused) /
                   static_cast<double>(states);
}

/// Peak resident set size of this process so far, in bytes (Linux
/// getrusage reports kilobytes). 0 when unavailable.
inline std::size_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

/// One JSON result line on stdout. `bench` names the configuration,
/// e.g. "table1/static_n2_tmin5". `store_bytes` is the state-store
/// footprint of the largest search behind the number (the figure the
/// compression modes exist to shrink); `reduction_factor` is the
/// within-run fusion saving (see reduction_factor() above).
inline void emit_json_line(const std::string& bench, std::uint64_t states,
                           std::uint64_t transitions, double seconds,
                           unsigned threads, std::size_t store_bytes,
                           ta::Compression compression,
                           ta::Symmetry symmetry = ta::Symmetry::None,
                           bool por = false, double reduction = 1.0) {
  std::printf(
      "{\"bench\": \"%s\", \"states\": %llu, \"transitions\": %llu, "
      "\"seconds\": %.3f, \"threads\": %u, \"store_bytes\": %llu, "
      "\"compression\": \"%s\", \"symmetry\": \"%s\", \"por\": %s, "
      "\"reduction_factor\": %.2f}\n",
      bench.c_str(), static_cast<unsigned long long>(states),
      static_cast<unsigned long long>(transitions), seconds, threads,
      static_cast<unsigned long long>(store_bytes),
      ta::to_string(compression), ta::to_string(symmetry),
      por ? "true" : "false", reduction);
}

/// JSON key/value fragment (no braces) with every channel counter, for
/// bench lines whose workload runs over the simulated network — keeps
/// the counter names identical across binaries so sweep scripts can sum
/// them without per-bench schemas.
inline std::string network_stats_fields(const sim::NetworkStats& stats) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "\"sent\": %llu, \"delivered\": %llu, \"lost\": %llu, "
      "\"blocked\": %llu, \"duplicated\": %llu, \"reordered\": %llu, "
      "\"out_of_spec_delay\": %llu",
      static_cast<unsigned long long>(stats.sent),
      static_cast<unsigned long long>(stats.delivered),
      static_cast<unsigned long long>(stats.lost),
      static_cast<unsigned long long>(stats.blocked),
      static_cast<unsigned long long>(stats.duplicated),
      static_cast<unsigned long long>(stats.reordered),
      static_cast<unsigned long long>(stats.out_of_spec_delay));
  return buf;
}

}  // namespace ahb::bench
