// Extension experiment (the source analysis's future work): allowing a
// departed participant of the dynamic protocol to join again.
//
// Model checking the naive extension — rejoin at any moment — uncovers a
// reincarnation hazard even in the fully corrected protocol: a stale
// leave beat still in flight is processed *after* the new incarnation's
// join beat and de-registers it at p[0]; the fresh joiner then starves
// and inactivates spuriously (an R2 violation with no loss and everybody
// alive). Gating the rejoin on the leave beat's delay bound (> tmin
// after departure) removes every counterexample.
#include <cstdio>

#include "bench_util.hpp"
#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"
#include "trace/trace.hpp"
#include "util/strings.hpp"

namespace {

using namespace ahb;
using bench::BenchArgs;
using models::BuildOptions;
using models::Flavor;

void check(BuildOptions::Rejoin mode, const char* name,
           const BenchArgs& args) {
  BuildOptions options;
  options.timing = {4, 4};
  options.fixed = true;  // both Section 6 corrections applied
  options.rejoin = mode;
  const auto model = models::HeartbeatModel::build(Flavor::Dynamic, options);
  mc::Explorer explorer{model.net()};
  const mc::SearchLimits limits = args.limits();
  const auto r2 = explorer.reach(model.r2_violation_any(), limits);
  if (args.json) {
    bench::emit_json_line(
        strprintf("rejoin/%s_r2_%s",
                  mode == BuildOptions::Rejoin::Naive ? "naive" : "graceful",
                  r2.found ? "violated" : "holds"),
        r2.stats.states, r2.stats.transitions, r2.stats.elapsed.count(),
        args.threads, r2.stats.store_bytes, args.compression, args.symmetry,
        args.por, bench::reduction_factor(r2.stats.states, r2.stats.fused));
  }
  std::printf("--- corrected dynamic protocol + %s rejoin (tmin=tmax=4) ---\n",
              name);
  if (!r2.found) {
    std::printf("R2 holds (%llu states explored, complete).\n\n",
                static_cast<unsigned long long>(r2.stats.states));
    return;
  }
  std::printf("R2 VIOLATED (%llu states). Shortest witness:\n%s\n",
              static_cast<unsigned long long>(r2.stats.states),
              trace::render_timeline(model.net(), r2.trace).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = bench::parse_bench_args(argc, argv);
  std::printf("== Rejoin extension: the reincarnation hazard ==\n\n");
  check(BuildOptions::Rejoin::Naive, "naive", args);
  check(BuildOptions::Rejoin::Graceful, "graceful (> tmin after leaving)",
        args);
  std::printf(
      "Reading: the naive witness shows the stale leave beat overtaking\n"
      "the new join registration at p[0] (join processed, then leave),\n"
      "after which p[0] stops addressing the reincarnated process and its\n"
      "join deadline expires. Draining the leave beat first (its delivery\n"
      "is bounded by tmin) restores correctness — the same reasoning that\n"
      "leads production systems to incarnation numbers.\n");
  return 0;
}
