// Guided-replay throughput: records one nonzero-delay crash-cascade
// trace per variant/timing configuration (plus a three-participant
// static run for search depth) and measures how fast the memoized
// guided walk replays them through the models, at thread counts 1 and 8
// (or the single count given via --threads=N).
//
// The memo set lives in a sharded ConcurrentStateStore, so verdicts are
// thread-invariant; the bench asserts every replay matches before it
// reports a number. JSON lines use the shared schema: "states" is the
// memo-set size, "transitions" the expanded node count, "store_bytes"
// the memo store footprint.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hb/cluster.hpp"
#include "proto/conformance.hpp"
#include "proto/rules.hpp"

namespace {

using namespace ahb;

struct Workload {
  std::string name;
  hb::ClusterConfig config;
  std::vector<hb::ProtocolEvent> events;
};

std::vector<Workload> record_workloads() {
  constexpr hb::Variant kVariants[] = {
      hb::Variant::Binary,   hb::Variant::RevisedBinary, hb::Variant::TwoPhase,
      hb::Variant::Static,   hb::Variant::Expanding,     hb::Variant::Dynamic};
  std::vector<Workload> workloads;
  const auto record = [&](hb::Variant variant, int tmin, int tmax,
                          int participants, const std::string& name) {
    hb::ClusterConfig config;
    config.protocol.variant = variant;
    config.protocol.tmin = tmin;
    config.protocol.tmax = tmax;
    config.participants = participants;
    config.min_delay = 0;
    config.max_delay = -1;  // cluster default: tmin / 2
    config.seed = 7;
    hb::Cluster cluster{config};
    proto::TraceRecorder recorder{cluster};
    cluster.crash_participant_at(1, 2 * tmax + 1);
    cluster.start();
    cluster.run_until(9 * tmax);
    workloads.push_back(Workload{name, config, recorder.events()});
  };
  for (const auto variant : kVariants) {
    for (const auto& [tmin, tmax] : {std::pair{4, 10}, std::pair{10, 10}}) {
      const int participants = proto::variant_is_multi(variant) ? 2 : 1;
      char name[64];
      std::snprintf(name, sizeof name, "%s_tmin%d", to_string(variant), tmin);
      record(variant, tmin, tmax, participants, name);
    }
  }
  record(hb::Variant::Static, 4, 10, 3, "static_n3");
  return workloads;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(argc, argv);
  const auto workloads = record_workloads();

  std::vector<unsigned> thread_counts;
  if (args.threads != 0) {
    thread_counts.push_back(args.threads);
  } else {
    thread_counts = {1, 8};
  }

  if (!args.json) {
    std::printf("%-22s %8s %10s %12s %12s %8s\n", "trace", "events",
                "threads", "expanded", "memo", "ms");
  }
  for (const unsigned threads : thread_counts) {
    std::uint64_t total_expanded = 0;
    std::uint64_t total_memo = 0;
    std::size_t total_bytes = 0;
    double total_seconds = 0.0;
    for (const auto& w : workloads) {
      mc::GuidedLimits limits;
      limits.threads = threads;
      const auto begin = std::chrono::steady_clock::now();
      const auto r = proto::replay_cluster_trace(w.config, w.events,
                                                 models::BuildOptions::Rejoin::None,
                                                 limits);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count();
      if (!r.ok) {
        std::fprintf(stderr, "replay of %s failed (%zu/%zu): %s\n",
                     w.name.c_str(), r.matched, r.events,
                     r.diagnostic.c_str());
        return 1;
      }
      total_expanded += r.expanded;
      total_memo += r.memo_states;
      total_bytes += r.memo_bytes;
      total_seconds += seconds;
      if (args.json) {
        bench::emit_json_line("conformance_replay/" + w.name, r.memo_states,
                              r.expanded, seconds, threads, r.memo_bytes,
                              ta::Compression::Collapse);
      } else {
        std::printf("%-22s %8zu %10u %12llu %12zu %8.2f\n", w.name.c_str(),
                    w.events.size(), threads,
                    static_cast<unsigned long long>(r.expanded),
                    r.memo_states, seconds * 1e3);
      }
    }
    if (args.json) {
      bench::emit_json_line("conformance_replay/total", total_memo,
                            total_expanded, total_seconds, threads,
                            total_bytes, ta::Compression::Collapse);
    } else {
      std::printf("%-22s %8s %10u %12llu %12llu %8.2f\n", "total", "-",
                  threads, static_cast<unsigned long long>(total_expanded),
                  static_cast<unsigned long long>(total_memo),
                  total_seconds * 1e3);
    }
  }
  return 0;
}
