// Ablation of the Section 6 corrections: which of the two fixes —
// (a) receive priority over simultaneous timeouts (§6.1) and
// (b) corrected time bounds (§6.2) — removes which counterexample?
//
// The analysis applies both at once; this harness applies them
// independently at the parameter points where each requirement fails:
//
//   * R1 (binary, 2*tmin <= tmax): caused by an understated bound; only
//     the bound correction can remove it — receive priority is useless.
//   * R2/R3 (binary, tmin == tmax): pure simultaneity races; receive
//     priority alone removes them, the bound correction alone does not.
//   * R2 join phase (expanding): at 2*tmin == tmax the deadline
//     coincides with the worst delivery (a race: priority suffices); for
//     2*tmin > tmax the deadline is genuinely too short (bounds needed)
//     and the boundary case still races (priority needed as well).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "models/heartbeat_model.hpp"
#include "util/strings.hpp"

namespace {

using namespace ahb;
using bench::BenchArgs;
using models::BuildOptions;
using models::Flavor;

const char* tf(bool b) { return b ? "T" : "F"; }

void run_point(Flavor flavor, int tmin, int tmax, const char* focus,
               const BenchArgs& args) {
  std::printf("--- %s, tmin=%d tmax=%d (focus: %s) ---\n",
              models::to_string(flavor), tmin, tmax, focus);
  std::printf("  %-28s %4s %4s %4s\n", "fix combination", "R1", "R2", "R3");
  struct Combo {
    const char* name;
    bool priority;
    bool bounds;
  };
  const Combo combos[] = {
      {"none (as published)", false, false},
      {"receive priority only", true, false},
      {"corrected bounds only", false, true},
      {"both (Section 6)", true, true},
  };
  const mc::SearchLimits limits = args.limits();
  for (const auto& combo : combos) {
    BuildOptions options;
    options.timing = {tmin, tmax};
    options.receive_priority = combo.priority;
    options.corrected_bounds = combo.bounds;
    const auto v = models::verify_requirements(flavor, options, limits);
    std::printf("  %-28s %4s %4s %4s\n", combo.name, tf(v.r1), tf(v.r2),
                tf(v.r3));
    if (args.json) {
      bench::emit_json_line(
          strprintf("ablation/%s_tmin%d_prio%d_bounds%d",
                    models::to_string(flavor), tmin, combo.priority ? 1 : 0,
                    combo.bounds ? 1 : 0),
          v.r1_stats.states + v.r2_stats.states + v.r3_stats.states,
          v.r1_stats.transitions + v.r2_stats.transitions +
              v.r3_stats.transitions,
          v.r1_stats.elapsed.count() + v.r2_stats.elapsed.count() +
              v.r3_stats.elapsed.count(),
          args.threads,
          std::max({v.r1_stats.store_bytes, v.r2_stats.store_bytes,
                    v.r3_stats.store_bytes}),
          args.compression, args.symmetry, args.por,
          bench::reduction_factor(
              v.r1_stats.states + v.r2_stats.states + v.r3_stats.states,
              v.r1_stats.fused + v.r2_stats.fused + v.r3_stats.fused));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = bench::parse_bench_args(argc, argv);
  std::printf("== Ablation: which Section 6 fix removes which failure ==\n\n");
  run_point(Flavor::Binary, 1, 10, "R1, understated bound", args);
  run_point(Flavor::Binary, 10, 10, "R2/R3 simultaneity races", args);
  run_point(Flavor::Expanding, 5, 10, "join-phase race (2*tmin == tmax)",
            args);
  run_point(Flavor::Expanding, 9, 10, "join-phase bound (2*tmin > tmax)",
            args);
  std::printf(
      "Reading: R1 flips only with the bound correction (it is a statement\n"
      "about p[0]'s worst-case inactivation time, which no scheduling rule\n"
      "can shorten); every R2/R3 failure flips with receive priority. Note\n"
      "that in this *global* formulation of Section 6.1 (any pending\n"
      "delivery defers any timeout), priority alone even covers the\n"
      "join-phase bound case at 2*tmin > tmax: the joiner's deadline\n"
      "expires exactly while the addressed beat is in flight, so deferring\n"
      "to it saves the joiner, and every remaining violating run needs a\n"
      "loss, which R2 excludes. The source analysis reports priority as\n"
      "necessary-but-not-sufficient for its own (more local) formulation;\n"
      "the bound correction stays necessary for R1 either way.\n");
  return 0;
}
