// Chaos campaign harness: sweeps seeded fault schedules across all
// variants, checks the R1–R3 runtime monitors on every run, and
// delta-debugs any violating schedule to a minimal replayable artifact.
//
//   bench_chaos_campaign [--json] [--runs=N] [--threads=N]
//                        [--participants=N] [--out-of-spec] [--no-shrink]
//                        [--artifacts=DIR] [--replay=FILE] [--formulas]
//                        [--mission] [--ticks=N] [--corrupt=P]
//
// The default (in-spec) campaign keeps every fault inside the channel
// assumptions, so any reported violation is a real protocol bug and the
// process exits nonzero. --out-of-spec runs the negative control:
// delay/drift injection beyond the spec, where the monitors are
// *expected* to fire (exit is nonzero if they stay silent). --replay
// re-executes one serialized schedule and reports its violations.
// --mission runs one long-mission chaos run per variant (--ticks long,
// multi-phase setup/storm/recovery schedule, payload corruption armed
// at --corrupt) and reports integrity counters plus the wall seconds
// each simulated hour (3.6M ticks) costs. --formulas attaches the
// shipped pLTL monitors (r1/r2/r3/s2) next to the hand-written ones and
// reports their verdict counters; the default output is unchanged.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <chrono>

#include "bench_util.hpp"
#include "chaos/campaign.hpp"
#include "chaos/mission.hpp"
#include "chaos/runner.hpp"
#include "rv/pltl/formulas.hpp"
#include "rv/suspicion.hpp"

namespace {

using namespace ahb;

struct Args {
  bool json = false;
  bool out_of_spec = false;
  bool shrink = true;
  bool mission = false;
  bool formulas = false;
  int runs = 30;
  int participants = 2;
  unsigned threads = 1;
  long long ticks = 10'000'000;
  double corrupt = 0.0;
  std::string artifacts_dir;
  std::string replay_file;
};

Args parse_args(int argc, char** argv) {
  Args args;
  const bench::BenchArgs common = bench::parse_bench_args(
      argc, argv,
      [&args](const char* arg) {
        if (std::strcmp(arg, "--out-of-spec") == 0) {
          args.out_of_spec = true;
        } else if (std::strcmp(arg, "--no-shrink") == 0) {
          args.shrink = false;
        } else if (std::strncmp(arg, "--runs=", 7) == 0) {
          args.runs = std::atoi(arg + 7);
        } else if (std::strncmp(arg, "--participants=", 15) == 0) {
          args.participants = std::atoi(arg + 15);
        } else if (std::strncmp(arg, "--artifacts=", 12) == 0) {
          args.artifacts_dir = arg + 12;
        } else if (std::strncmp(arg, "--replay=", 9) == 0) {
          args.replay_file = arg + 9;
        } else if (std::strcmp(arg, "--mission") == 0) {
          args.mission = true;
        } else if (std::strcmp(arg, "--formulas") == 0) {
          args.formulas = true;
        } else if (std::strncmp(arg, "--ticks=", 8) == 0) {
          args.ticks = std::atoll(arg + 8);
        } else if (std::strncmp(arg, "--corrupt=", 10) == 0) {
          args.corrupt = std::atof(arg + 10);
        } else {
          return false;
        }
        return true;
      },
      "[--out-of-spec] [--no-shrink] [--runs=N] [--participants=N] "
      "[--artifacts=DIR] [--replay=FILE] [--formulas] [--mission] "
      "[--ticks=N] [--corrupt=P]");
  args.json = common.json;
  if (common.threads > 0) args.threads = common.threads;
  if (common.participants > 0) args.participants = common.participants;
  return args;
}

int replay(const Args& args) {
  std::ifstream in(args.replay_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.replay_file.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto spec = chaos::parse_run(text.str());
  if (!spec) {
    std::fprintf(stderr, "malformed schedule in %s\n",
                 args.replay_file.c_str());
    return 2;
  }
  const chaos::RunResult result = chaos::run_chaos(*spec);
  for (const auto& violation : result.violations) {
    std::printf("violation R%d node %d at %" PRId64 " (deadline %" PRId64
                "): %s\n",
                violation.requirement, violation.node, violation.at,
                violation.deadline, violation.detail.c_str());
  }
  std::printf("%s replay: %zu violation(s), %s schedule\n",
              args.replay_file.c_str(), result.violations.size(),
              result.out_of_spec ? "out-of-spec" : "in-spec");
  return 0;
}

void write_artifacts(const Args& args, const chaos::CampaignResult& result) {
  std::error_code ec;
  std::filesystem::create_directories(args.artifacts_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", args.artifacts_dir.c_str(),
                 ec.message().c_str());
    return;
  }
  int index = 0;
  for (const auto& violating : result.violating) {
    char path[512];
    std::snprintf(path, sizeof path, "%s/chaos_violation_%03d.jsonl",
                  args.artifacts_dir.c_str(), index++);
    std::ofstream out(path);
    out << violating.artifact;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path);
      continue;
    }
    std::printf("wrote %s (%zu action(s))\n", path,
                violating.shrunk.schedule.actions.size());
  }
}

// Direct measurement of the monitors' per-event cost: record one
// representative faulty run's protocol events, then stream them through
// a fresh monitor stack in a timed loop. The denominator is the sum of
// the sinks' events_seen — the events that got past the interest masks.
double measure_monitor_ns_per_event(int participants) {
  chaos::RunSpec spec;
  spec.variant = chaos::Variant::Dynamic;
  spec.tmin = 4;
  spec.tmax = 10;
  spec.participants = participants;
  spec.seed = 5;
  spec.horizon = 2000;
  spec.schedule.actions = {
      {chaos::FaultKind::CrashParticipant, 100, 1, 0, 0, 0, 0, 0, 0},
  };
  const chaos::RunResult recorded = chaos::run_chaos(spec, nullptr,
                                                     /*record_trace=*/false,
                                                     /*record_events=*/true);
  if (recorded.events.empty()) return 0;

  rv::RequirementMonitor::Config monitor_config;
  monitor_config.variant = spec.variant;
  monitor_config.timing = spec.timing();
  monitor_config.fixed_bounds = spec.fixed_bounds;
  monitor_config.participants = spec.participants;
  rv::SuspicionMonitor::Config suspicion_config;
  suspicion_config.variant = spec.variant;
  suspicion_config.timing = spec.timing();
  suspicion_config.participants = spec.participants;
  const rv::MonitorBounds bounds = rv::MonitorBounds::defaults(
      spec.timing(), spec.variant, spec.fixed_bounds);

  constexpr int kReps = 500;
  std::uint64_t events = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    rv::RequirementMonitor requirements{monitor_config, bounds};
    rv::SuspicionMonitor suspicion{suspicion_config, bounds};
    rv::AvailabilityStats availability{spec.participants};
    rv::SinkChain chain;
    chain.add(&requirements);
    chain.add(&suspicion);
    chain.add(&availability);
    for (const auto& event : recorded.events) chain.emit(event);
    chain.finish(spec.horizon);
    events += requirements.events_seen() + suspicion.events_seen() +
              availability.events_seen();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return events > 0 ? seconds * 1e9 / static_cast<double>(events) : 0;
}

constexpr double kTicksPerSimHour = 3'600'000.0;

// One long mission per variant: multi-phase generated schedule, all
// monitors streaming, corruption armed when requested. Exits nonzero if
// any in-spec mission reports a violation or fails the integrity
// fail-safe check (corrupted payloads must all be rejected).
int run_missions(const Args& args) {
  constexpr chaos::Variant kVariants[] = {
      chaos::Variant::Binary,   chaos::Variant::RevisedBinary,
      chaos::Variant::TwoPhase, chaos::Variant::Static,
      chaos::Variant::Expanding, chaos::Variant::Dynamic,
  };
  int exit_code = 0;
  for (const chaos::Variant variant : kVariants) {
    chaos::MissionOptions options;
    if (args.formulas) options.formulas = rv::pltl::shipped_monitor_specs();
    options.spec.variant = variant;
    options.spec.tmin = 4;
    options.spec.tmax = 10;
    options.spec.participants =
        proto::variant_is_multi(variant) ? args.participants : 1;
    options.spec.seed = 1;
    options.spec.horizon = static_cast<chaos::Time>(args.ticks);
    options.profile.cycles =
        static_cast<int>(std::max<long long>(args.ticks / 1'000'000, 1));
    options.profile.corrupt = args.corrupt;

    const auto start = std::chrono::steady_clock::now();
    const chaos::MissionResult result = chaos::run_mission(options);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double wall_s_per_sim_hour =
        wall_s * kTicksPerSimHour / static_cast<double>(args.ticks);

    const auto& integ = result.integrity;
    const bool clean = result.violations_total == 0 &&
                       result.formula_violations_total == 0 &&
                       integ.fail_safe();
    if (!result.out_of_spec && !clean) exit_code = 1;
    // Extra fields only when --formulas was passed, so the default
    // output stays byte-identical.
    char formula_json[64] = "";
    char formula_text[64] = "";
    if (args.formulas) {
      std::snprintf(formula_json, sizeof formula_json,
                    ", \"formula_violations\": %" PRIu64,
                    result.formula_violations_total);
      std::snprintf(formula_text, sizeof formula_text,
                    ", %" PRIu64 " formula violation(s)",
                    result.formula_violations_total);
    }
    if (args.json) {
      std::printf(
          "{\"bench\": \"chaos/mission\", \"variant\": \"%s\", "
          "\"ticks\": %" PRId64 ", \"violations\": %" PRIu64
          ", \"out_of_spec\": %s, \"corrupted\": %" PRIu64
          ", \"corrupted_delivered\": %" PRIu64 ", \"rejected\": %" PRIu64
          ", \"accepted\": %" PRIu64 ", \"spurious_rejections\": %" PRIu64
          ", \"integrity_high_water\": %zu, \"checkpoints\": %zu%s"
          ", \"fingerprint\": \"%016" PRIx64
          "\", \"wall_s_per_sim_hour\": %.3f}\n",
          proto::to_string(variant), result.spec.horizon,
          result.violations_total, result.out_of_spec ? "true" : "false",
          integ.corrupted, integ.corrupted_delivered, integ.rejected_corrupted,
          integ.accepted, integ.spurious_rejections,
          result.integrity_high_water, result.checkpoints.size(), formula_json,
          result.fingerprint, wall_s_per_sim_hour);
    } else {
      std::printf("mission %-13s %" PRId64 " ticks: %" PRIu64
                  " violation(s)%s, %" PRIu64 " corrupted / %" PRIu64
                  " rejected / %" PRIu64
                  " accepted, fingerprint %016" PRIx64
                  ", %.3f wall s per sim hour\n",
                  proto::to_string(variant), result.spec.horizon,
                  result.violations_total, formula_text, integ.corrupted,
                  integ.rejected_corrupted, integ.accepted, result.fingerprint,
                  wall_s_per_sim_hour);
    }
    for (const auto& violation : result.violations) {
      std::printf("violation R%d node %d at %" PRId64 ": %s\n",
                  violation.requirement, violation.node, violation.at,
                  violation.detail.c_str());
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.replay_file.empty()) return replay(args);
  if (args.mission) return run_missions(args);

  chaos::CampaignOptions options;
  options.runs_per_config = args.runs;
  options.participants = args.participants;
  options.out_of_spec = args.out_of_spec;
  options.threads = args.threads;
  options.shrink = args.shrink;
  if (args.formulas) options.formulas = rv::pltl::shipped_monitor_specs();

  const auto campaign_start = std::chrono::steady_clock::now();
  const chaos::CampaignResult result = chaos::run_campaign(options);
  const double campaign_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    campaign_start)
          .count();
  const double wall_s_per_sim_hour =
      result.sim_ticks > 0 ? campaign_wall_s * kTicksPerSimHour /
                                 static_cast<double>(result.sim_ticks)
                           : 0;
  const char* profile = args.out_of_spec ? "out-of-spec" : "in-spec";
  const double monitor_ns = measure_monitor_ns_per_event(args.participants);
  const auto& avail = result.availability;
  const double detection_mean = avail.detection_mean();

  // Extra fields only when --formulas was passed, so the default output
  // stays byte-identical (and so does the campaign fingerprint: formula
  // verdicts are aggregated apart from the hand-written monitors').
  char formula_json[96] = "";
  if (args.formulas) {
    std::snprintf(formula_json, sizeof formula_json,
                  ", \"formula_violations\": %" PRIu64
                  ", \"formula_violating_runs\": %" PRIu64,
                  result.formula_violations, result.formula_violating_runs);
  }

  if (args.json) {
    std::printf(
        "{\"bench\": \"chaos/%s\", \"runs\": %" PRIu64
        ", \"violating_runs\": %" PRIu64 ", \"sent\": %" PRIu64
        ", \"delivered\": %" PRIu64 ", \"lost\": %" PRIu64
        ", \"blocked\": %" PRIu64 ", \"duplicated\": %" PRIu64
        ", \"reordered\": %" PRIu64 ", \"out_of_spec_delay\": %" PRIu64
        ", \"availability_up_fraction\": %.4f, \"recoveries\": %" PRIu64
        ", \"detections\": %" PRIu64 ", \"detection_mean\": %.1f"
        ", \"detection_max\": %" PRId64 ", \"monitor_ns_per_event\": %.1f"
        ", \"corrupted\": %" PRIu64 ", \"rejected\": %" PRIu64
        ", \"integrity_violations\": %" PRIu64
        ", \"wall_s_per_sim_hour\": %.3f%s"
        ", \"threads\": %u, \"fingerprint\": \"%016" PRIx64 "\"}\n",
        profile, result.runs, result.violating_runs, result.totals.sent,
        result.totals.delivered, result.totals.lost, result.totals.blocked,
        result.totals.duplicated, result.totals.reordered,
        result.totals.out_of_spec_delay, avail.up_fraction(),
        avail.recoveries, avail.detections, detection_mean,
        avail.detection_max, monitor_ns, result.integrity.corrupted,
        result.integrity.rejected_corrupted, result.integrity.violations,
        wall_s_per_sim_hour, formula_json, args.threads, result.fingerprint);
  } else {
    std::printf("chaos campaign (%s): %" PRIu64 " runs, %" PRIu64
                " violating, fingerprint %016" PRIx64 "\n",
                profile, result.runs, result.violating_runs,
                result.fingerprint);
    if (args.formulas) {
      std::printf("formulas: %" PRIu64 " violation(s) across %" PRIu64
                  " run(s)\n",
                  result.formula_violations, result.formula_violating_runs);
    }
    std::printf("availability: %.2f%% up, %" PRIu64 " recoveries, %" PRIu64
                " detections (mean %.1f, max %" PRId64
                " ticks); monitors cost %.1f ns/event\n",
                avail.up_fraction() * 100.0, avail.recoveries,
                avail.detections, detection_mean, avail.detection_max,
                monitor_ns);
  }

  for (const auto& violating : result.violating) {
    const auto& first = violating.violations.front();
    std::printf("violating run: variant=%s tmin=%" PRId64 " tmax=%" PRId64
                " seed=%" PRIu64 " -> R%d node %d at %" PRId64
                " (%zu -> %zu action(s) after shrink)\n",
                proto::to_string(violating.spec.variant), violating.spec.tmin,
                violating.spec.tmax, violating.spec.seed, first.requirement,
                first.node, first.at, violating.spec.schedule.actions.size(),
                violating.shrunk.schedule.actions.size());
    if (args.artifacts_dir.empty()) {
      std::fputs(violating.artifact.c_str(), stdout);
    }
  }
  if (!args.artifacts_dir.empty()) write_artifacts(args, result);

  // In-spec violations are bugs; an out-of-spec campaign that never
  // trips the monitors means the negative control is broken. Attached
  // formulas are held to the same standard as the hand-written
  // monitors: silent in spec, firing out of spec.
  if (!args.out_of_spec) {
    return result.violating_runs == 0 && result.formula_violations == 0 ? 0
                                                                        : 1;
  }
  if (args.formulas && result.formula_violating_runs == 0) return 1;
  return result.violating_runs > 0 ? 0 : 1;
}
