// Reproduces Table 1 of the analysis: verification verdicts of R1/R2/R3
// for the (revised) binary and static accelerated heartbeat protocols,
// with tmax = 10 and tmin in {1, 4, 5, 9, 10}.
//
// Paper (Table 1):      tmin   1  4  5  9  10
//                       R1     F  F  F  T  T
//                       R2     T  T  T  T  F
//                       R3     T  T  T  T  F
//
// The two-phase variant is additionally reported: the source analysis
// model-checks it but omits it from the table (its inactivation
// condition is unspecified in the original paper; see DESIGN.md).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "models/heartbeat_model.hpp"
#include "util/strings.hpp"

namespace {

using ahb::bench::BenchArgs;
using ahb::models::BuildOptions;
using ahb::models::Flavor;
using ahb::models::Timing;
using ahb::models::Verdicts;

/// Closed-form verdicts implied by the counterexample analysis — the
/// shared predicate from the protocol kernel (proto/timing.hpp).
ahb::proto::ExpectedVerdicts paper_expectation(Flavor flavor,
                                               const Timing& t) {
  return ahb::proto::expected_verdicts(flavor, t.to_proto());
}

const char* tf(bool b) { return b ? "T" : "F"; }

void run_flavor(Flavor flavor, int participants, bool compare,
                const BenchArgs& args) {
  const std::vector<int> tmins{1, 4, 5, 9, 10};
  const int tmax = 10;

  std::printf("%s protocol (tmax=%d%s)\n", ahb::models::to_string(flavor),
              tmax,
              participants > 1
                  ? ahb::strprintf(", n=%d", participants).c_str()
                  : "");
  std::printf("  %-6s", "tmin");
  for (int tmin : tmins) std::printf(" %3d", tmin);
  std::printf("   paper\n");

  const ahb::mc::SearchLimits limits = args.limits();
  std::vector<Verdicts> verdicts;
  std::uint64_t total_states = 0;
  double total_seconds = 0;
  for (int tmin : tmins) {
    BuildOptions options;
    options.timing = Timing{tmin, tmax};
    options.participants = participants;
    verdicts.push_back(
        ahb::models::verify_requirements(flavor, options, limits));
    const auto& v = verdicts.back();
    const std::uint64_t states =
        v.r1_stats.states + v.r2_stats.states + v.r3_stats.states;
    const std::uint64_t transitions = v.r1_stats.transitions +
                                      v.r2_stats.transitions +
                                      v.r3_stats.transitions;
    const double seconds = v.r1_stats.elapsed.count() +
                           v.r2_stats.elapsed.count() +
                           v.r3_stats.elapsed.count();
    total_states += states;
    total_seconds += seconds;
    if (args.json) {
      const std::size_t store_bytes =
          std::max({v.r1_stats.store_bytes, v.r2_stats.store_bytes,
                    v.r3_stats.store_bytes});
      const std::uint64_t fused =
          v.r1_stats.fused + v.r2_stats.fused + v.r3_stats.fused;
      ahb::bench::emit_json_line(
          ahb::strprintf("table1/%s_n%d_tmin%d",
                         ahb::models::to_string(flavor), participants,
                         tmin),
          states, transitions, seconds, args.threads, store_bytes,
          args.compression, args.symmetry, args.por,
          ahb::bench::reduction_factor(states, fused));
    }
  }

  bool all_match = true;
  for (int row = 0; row < 3; ++row) {
    std::printf("  %-6s", row == 0 ? "R1" : row == 1 ? "R2" : "R3");
    std::string paper_row;
    for (std::size_t i = 0; i < tmins.size(); ++i) {
      const auto& v = verdicts[i];
      const bool got = row == 0 ? v.r1 : row == 1 ? v.r2 : v.r3;
      std::printf(" %3s", tf(got));
      if (compare) {
        const auto e = paper_expectation(flavor, Timing{tmins[i], tmax});
        const bool want = row == 0 ? e.r1 : row == 1 ? e.r2 : e.r3;
        paper_row += ahb::strprintf(" %3s", tf(want));
        if (got != want) all_match = false;
      }
    }
    if (compare) std::printf("  %s", paper_row.c_str());
    std::printf("\n");
  }
  if (compare) {
    std::printf("  => %s the paper's Table 1 row-for-row\n",
                all_match ? "MATCHES" : "DIFFERS FROM");
  }
  std::printf("  (%llu states explored, %.2fs)\n\n",
              static_cast<unsigned long long>(total_states), total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ahb::bench::parse_bench_args(argc, argv);
  std::printf("== Table 1: (revised) binary and static heartbeat protocols ==\n\n");
  run_flavor(Flavor::Binary, 1, /*compare=*/true, args);
  run_flavor(Flavor::RevisedBinary, 1, /*compare=*/true, args);
  run_flavor(Flavor::Static, 1, /*compare=*/true, args);
  run_flavor(Flavor::Static, 2, /*compare=*/true, args);
  std::printf("-- two-phase variant (not tabulated in the paper; our adopted\n"
              "   inactivation rule: a miss at t == tmin inactivates) --\n\n");
  run_flavor(Flavor::TwoPhase, 1, /*compare=*/false, args);
  return 0;
}
