// Reproduces Figures 11 and 12 of the analysis: the simultaneous-event
// races that violate R2 and R3 in the binary/static protocols when
// tmin == tmax.
//
//  - Fig. 11 (R2): p[0]'s heartbeat is delivered to p[1] exactly when
//    p[1]'s 3*tmax - tmin timeout expires (= 2*tmax when tmin == tmax);
//    if the timeout is processed first, p[1] inactivates although
//    nothing was lost and p[0] is alive.
//  - Fig. 12 (R3): symmetrically, p[1]'s reply reaches p[0] exactly at
//    p[0]'s own timeout; processed second, the round counts as a miss
//    and p[0] inactivates although p[1] is alive.
#include <cstdio>

#include "bench_util.hpp"
#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"
#include "trace/trace.hpp"

namespace {

using namespace ahb;

void show(bool r2, int tmin, int tmax, bool json) {
  models::BuildOptions options;
  options.timing = {tmin, tmax};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  mc::Explorer explorer{model.net()};
  const auto result = explorer.reach(r2 ? model.r2_violation_any()
                                        : model.r3_violation());

  std::printf("--- %s: binary protocol, tmin=%d tmax=%d ---\n",
              r2 ? "Fig. 11 (R2 violation)" : "Fig. 12 (R3 violation)", tmin,
              tmax);
  if (json) {
    std::printf("{\"bench\": \"fig11_12/%s_race\", \"found\": %s, "
                "\"steps\": %zu, \"states\": %llu}\n",
                r2 ? "r2" : "r3", result.found ? "true" : "false",
                result.found ? result.trace.size() - 1 : 0,
                static_cast<unsigned long long>(result.stats.states));
  }
  if (!result.found) {
    std::printf("NO counterexample found (unexpected!)\n\n");
    return;
  }
  std::printf(
      "%s inactivated non-voluntarily with no loss and the peer alive.\n"
      "Shortest witness (%zu steps, %llu states explored):\n",
      r2 ? "p[1]" : "p[0]", result.trace.size() - 1,
      static_cast<unsigned long long>(result.stats.states));
  std::printf("%s\n",
              trace::render_timeline_filtered(
                  model.net(), result.trace,
                  {"beat", "reply", "timeout", "crash", "inactivate"})
                  .c_str());
}

void show_fixed_pass(int tmin, int tmax, bool json) {
  models::BuildOptions options;
  options.timing = {tmin, tmax};
  options.fixed = true;
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  mc::Explorer explorer{model.net()};
  const auto r2 = explorer.reach(model.r2_violation_any());
  const auto r3 = explorer.reach(model.r3_violation());
  std::printf(
      "--- Section 6 fix (receive priority), tmin=%d tmax=%d ---\n"
      "R2 violation reachable: %s   R3 violation reachable: %s\n"
      "(paper: both races disappear once receives precede timeouts)\n",
      tmin, tmax, r2.found ? "yes (unexpected!)" : "no",
      r3.found ? "yes (unexpected!)" : "no");
  if (json) {
    std::printf("{\"bench\": \"fig11_12/fixed\", \"r2_found\": %s, "
                "\"r3_found\": %s}\n",
                r2.found ? "true" : "false", r3.found ? "true" : "false");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  std::printf("== Figures 11-12: R2/R3 races at tmin == tmax ==\n\n");
  show(/*r2=*/true, 10, 10, args.json);
  show(/*r2=*/false, 10, 10, args.json);
  show_fixed_pass(10, 10, args.json);
  return 0;
}
