// Model-checker performance (google-benchmark): state-space sizes and
// exploration throughput for the protocol models — the cost of each
// verification the tables report, plus micro-benchmarks of the
// explorer's building blocks.
#include <benchmark/benchmark.h>

#include "mc/explorer.hpp"
#include "mc/store.hpp"
#include "models/heartbeat_model.hpp"
#include "util/rng.hpp"

namespace {

using namespace ahb;

void BM_ExploreBinary(benchmark::State& state) {
  const int tmin = static_cast<int>(state.range(0));
  models::BuildOptions options;
  options.timing = {tmin, 10};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::Explorer explorer{model.net()};
    const auto stats = explorer.explore_all();
    states = stats.states;
    benchmark::DoNotOptimize(stats.transitions);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreBinary)->Arg(1)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ExploreFlavor(benchmark::State& state) {
  const auto flavor = static_cast<models::Flavor>(state.range(0));
  models::BuildOptions options;
  options.timing = {2, 6};
  options.participants = 1;
  const auto model = models::HeartbeatModel::build(flavor, options);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::Explorer explorer{model.net()};
    states = explorer.explore_all().states;
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetLabel(models::to_string(flavor));
}
BENCHMARK(BM_ExploreFlavor)
    ->Arg(static_cast<int>(models::Flavor::Binary))
    ->Arg(static_cast<int>(models::Flavor::TwoPhase))
    ->Arg(static_cast<int>(models::Flavor::Static))
    ->Arg(static_cast<int>(models::Flavor::Expanding))
    ->Arg(static_cast<int>(models::Flavor::Dynamic))
    ->Unit(benchmark::kMillisecond);

void BM_ExploreStaticParticipants(benchmark::State& state) {
  models::BuildOptions options;
  options.timing = {2, 4};
  options.participants = static_cast<int>(state.range(0));
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Static, options);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::Explorer explorer{model.net()};
    states = explorer.explore_all().states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_ExploreStaticParticipants)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_VerifyAllRequirementsBinary(benchmark::State& state) {
  models::BuildOptions options;
  options.timing = {static_cast<int>(state.range(0)), 10};
  for (auto _ : state) {
    const auto verdicts =
        models::verify_requirements(models::Flavor::Binary, options);
    benchmark::DoNotOptimize(verdicts.r1);
  }
}
BENCHMARK(BM_VerifyAllRequirementsBinary)
    ->Arg(1)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_SuccessorGeneration(benchmark::State& state) {
  models::BuildOptions options;
  options.timing = {2, 10};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  const auto init = model.net().initial_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.net().successors(init));
  }
}
BENCHMARK(BM_SuccessorGeneration);

void BM_StoreIntern(benchmark::State& state) {
  Rng rng{1};
  std::vector<ta::State> states;
  for (int i = 0; i < 100000; ++i) {
    ta::State s(16);
    for (std::size_t j = 0; j < 16; ++j) {
      s[j] = static_cast<ta::Slot>(rng.below(100));
    }
    states.push_back(std::move(s));
  }
  for (auto _ : state) {
    mc::StateStore store{16};
    for (const auto& s : states) benchmark::DoNotOptimize(store.intern(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(states.size()));
}
BENCHMARK(BM_StoreIntern)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
