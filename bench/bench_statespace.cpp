// Model-checker performance (google-benchmark): state-space sizes and
// exploration throughput for the protocol models — the cost of each
// verification the tables report, plus micro-benchmarks of the
// explorer's building blocks.
//
// With --json the binary bypasses google-benchmark and runs the static
// protocol's Table-1 parameter sweep (tmax=10, tmin in {1,4,5,9,10}),
// emitting one JSON line per point plus a total line — the harness the
// compression and reduction acceptance numbers are read from:
//   bench_statespace --json [--threads=N]
//                    [--compression=none|pack|collapse]
//                    [--symmetry=none|participants] [--por] [participants]
// The n=2 sweep visits exactly 33,809,598 states in every compression
// mode at --threads=1 with reductions off; only store_bytes moves.
// (Parallel runs agree with each other but finish the BFS level at the
// early-exit points, interning a few more states — see DESIGN.md
// "Parallel exploration".) With --symmetry=participants/--por the state
// counts shrink; the verdicts are then asserted against the proto
// kernel's closed forms, so a reduction soundness regression fails the
// bench instead of silently reporting a smaller sweep. Every line also
// carries peak_rss_bytes so the BENCH trajectory tracks memory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>

#include "bench_util.hpp"
#include "mc/explorer.hpp"
#include "mc/store.hpp"
#include "models/heartbeat_model.hpp"
#include "proto/timing.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace ahb;

void BM_ExploreBinary(benchmark::State& state) {
  const int tmin = static_cast<int>(state.range(0));
  models::BuildOptions options;
  options.timing = {tmin, 10};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::Explorer explorer{model.net()};
    const auto stats = explorer.explore_all();
    states = stats.states;
    benchmark::DoNotOptimize(stats.transitions);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreBinary)->Arg(1)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ExploreFlavor(benchmark::State& state) {
  const auto flavor = static_cast<models::Flavor>(state.range(0));
  models::BuildOptions options;
  options.timing = {2, 6};
  options.participants = 1;
  const auto model = models::HeartbeatModel::build(flavor, options);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::Explorer explorer{model.net()};
    states = explorer.explore_all().states;
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetLabel(models::to_string(flavor));
}
BENCHMARK(BM_ExploreFlavor)
    ->Arg(static_cast<int>(models::Flavor::Binary))
    ->Arg(static_cast<int>(models::Flavor::TwoPhase))
    ->Arg(static_cast<int>(models::Flavor::Static))
    ->Arg(static_cast<int>(models::Flavor::Expanding))
    ->Arg(static_cast<int>(models::Flavor::Dynamic))
    ->Unit(benchmark::kMillisecond);

void BM_ExploreStaticParticipants(benchmark::State& state) {
  models::BuildOptions options;
  options.timing = {2, 4};
  options.participants = static_cast<int>(state.range(0));
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Static, options);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::Explorer explorer{model.net()};
    states = explorer.explore_all().states;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_ExploreStaticParticipants)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_VerifyAllRequirementsBinary(benchmark::State& state) {
  models::BuildOptions options;
  options.timing = {static_cast<int>(state.range(0)), 10};
  for (auto _ : state) {
    const auto verdicts =
        models::verify_requirements(models::Flavor::Binary, options);
    benchmark::DoNotOptimize(verdicts.r1);
  }
}
BENCHMARK(BM_VerifyAllRequirementsBinary)
    ->Arg(1)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_SuccessorGeneration(benchmark::State& state) {
  models::BuildOptions options;
  options.timing = {2, 10};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  const auto init = model.net().initial_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.net().successors(init));
  }
}
BENCHMARK(BM_SuccessorGeneration);

void BM_StoreIntern(benchmark::State& state) {
  Rng rng{1};
  std::vector<ta::State> states;
  for (int i = 0; i < 100000; ++i) {
    ta::State s(16);
    for (std::size_t j = 0; j < 16; ++j) {
      s[j] = static_cast<ta::Slot>(rng.below(100));
    }
    states.push_back(std::move(s));
  }
  for (auto _ : state) {
    mc::StateStore store{16};
    for (const auto& s : states) benchmark::DoNotOptimize(store.intern(s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(states.size()));
}
BENCHMARK(BM_StoreIntern)->Unit(benchmark::kMillisecond);

/// The --json sweep: verifies R1-R3 of the static protocol at every
/// Table-1 timing point and reports states/bytes per point and in total.
int run_json_sweep(const ahb::bench::BenchArgs& args) {
  const int participants = args.participants > 0 ? args.participants : 2;
  const int tmins[] = {1, 4, 5, 9, 10};
  const int tmax = 10;

  const mc::SearchLimits limits = args.limits();

  std::uint64_t total_states = 0;
  std::uint64_t total_transitions = 0;
  std::uint64_t total_fused = 0;
  double total_seconds = 0;
  std::size_t peak_store_bytes = 0;
  std::string verdict_list;
  for (const int tmin : tmins) {
    models::BuildOptions options;
    options.timing = {tmin, tmax};
    options.participants = participants;
    const auto v =
        models::verify_requirements(models::Flavor::Static, options, limits);
    if (args.reduced()) {
      // Reduced sweeps must reproduce the paper's closed-form verdicts;
      // a mismatch means a reduction soundness bug, not a measurement.
      const auto expected = proto::expected_verdicts(
          models::Flavor::Static, proto::Timing{tmin, tmax});
      AHB_ASSERT(v.r1 == expected.r1 && v.r2 == expected.r2 &&
                 v.r3 == expected.r3);
    }
    const std::uint64_t states =
        v.r1_stats.states + v.r2_stats.states + v.r3_stats.states;
    const std::uint64_t transitions = v.r1_stats.transitions +
                                      v.r2_stats.transitions +
                                      v.r3_stats.transitions;
    const std::uint64_t fused =
        v.r1_stats.fused + v.r2_stats.fused + v.r3_stats.fused;
    const double seconds = v.r1_stats.elapsed.count() +
                           v.r2_stats.elapsed.count() +
                           v.r3_stats.elapsed.count();
    const std::size_t store_bytes =
        std::max({v.r1_stats.store_bytes, v.r2_stats.store_bytes,
                  v.r3_stats.store_bytes});
    total_states += states;
    total_transitions += transitions;
    total_fused += fused;
    total_seconds += seconds;
    peak_store_bytes = std::max(peak_store_bytes, store_bytes);
    const std::string verdicts =
        strprintf("%s%s%s", v.r1 ? "T" : "F", v.r2 ? "T" : "F",
                  v.r3 ? "T" : "F");
    if (!verdict_list.empty()) verdict_list += " ";
    verdict_list += strprintf("tmin%d:%s", tmin, verdicts.c_str());
    std::printf(
        "{\"bench\": \"statespace/static_n%d_tmin%d\", \"states\": %llu, "
        "\"transitions\": %llu, \"seconds\": %.3f, \"threads\": %u, "
        "\"store_bytes\": %llu, \"peak_rss_bytes\": %llu, "
        "\"compression\": \"%s\", \"symmetry\": \"%s\", \"por\": %s, "
        "\"reduction_factor\": %.2f, \"verdicts\": \"%s\"}\n",
        participants, tmin, static_cast<unsigned long long>(states),
        static_cast<unsigned long long>(transitions), seconds, args.threads,
        static_cast<unsigned long long>(store_bytes),
        static_cast<unsigned long long>(ahb::bench::peak_rss_bytes()),
        ta::to_string(args.compression), ta::to_string(args.symmetry),
        args.por ? "true" : "false",
        ahb::bench::reduction_factor(states, fused), verdicts.c_str());
  }
  // store_bytes of the total line is the sweep's peak footprint — the
  // number that must shrink >= 3x under collapse vs none.
  std::printf(
      "{\"bench\": \"statespace/static_n%d_total\", \"states\": %llu, "
      "\"transitions\": %llu, \"seconds\": %.3f, \"threads\": %u, "
      "\"store_bytes\": %llu, \"peak_rss_bytes\": %llu, "
      "\"compression\": \"%s\", \"symmetry\": \"%s\", \"por\": %s, "
      "\"reduction_factor\": %.2f, \"verdicts\": \"%s\"}\n",
      participants, static_cast<unsigned long long>(total_states),
      static_cast<unsigned long long>(total_transitions), total_seconds,
      args.threads, static_cast<unsigned long long>(peak_store_bytes),
      static_cast<unsigned long long>(ahb::bench::peak_rss_bytes()),
      ta::to_string(args.compression), ta::to_string(args.symmetry),
      args.por ? "true" : "false",
      ahb::bench::reduction_factor(total_states, total_fused),
      verdict_list.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_json_sweep(ahb::bench::parse_bench_args(argc, argv));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
