// Verifies the corrected protocols of Section 6 of the analysis: with
// (a) receive-priority over simultaneous timeouts and (b) corrected
// inactivation bounds, every requirement holds for every data set — the
// result the paper reports after applying its fixes ("model-checking
// these fixed models does not result in any counter-example").
//
// The R1 requirement bound itself is corrected per Section 6.2: p[0] is
// guaranteed to self-inactivate within 3*tmax - tmin of the last
// received beat when 2*tmin <= tmax (and within 2*tmax otherwise).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "models/heartbeat_model.hpp"
#include "util/strings.hpp"

namespace {

using ahb::bench::BenchArgs;
using ahb::models::BuildOptions;
using ahb::models::Flavor;
using ahb::models::Timing;

const char* tf(bool b) { return b ? "T" : "F"; }

bool run_flavor(Flavor flavor, int participants, const BenchArgs& args) {
  const std::vector<int> tmins{1, 4, 5, 9, 10};
  const int tmax = 10;

  std::printf("fixed %s protocol (tmax=%d, n=%d)\n",
              ahb::models::to_string(flavor), tmax, participants);
  std::printf("  %-6s", "tmin");
  for (int tmin : tmins) std::printf(" %3d", tmin);
  std::printf("\n");

  bool all_hold = true;
  const ahb::mc::SearchLimits limits = args.limits();
  std::vector<ahb::models::Verdicts> verdicts;
  std::uint64_t total_states = 0;
  double total_seconds = 0;
  for (int tmin : tmins) {
    BuildOptions options;
    options.timing = Timing{tmin, tmax};
    options.participants = participants;
    options.fixed = true;
    verdicts.push_back(
        ahb::models::verify_requirements(flavor, options, limits));
    const auto& v = verdicts.back();
    all_hold = all_hold && v.r1 && v.r2 && v.r3;
    const std::uint64_t states =
        v.r1_stats.states + v.r2_stats.states + v.r3_stats.states;
    const std::uint64_t transitions = v.r1_stats.transitions +
                                      v.r2_stats.transitions +
                                      v.r3_stats.transitions;
    const double seconds = v.r1_stats.elapsed.count() +
                           v.r2_stats.elapsed.count() +
                           v.r3_stats.elapsed.count();
    total_states += states;
    total_seconds += seconds;
    if (args.json) {
      const std::size_t store_bytes =
          std::max({v.r1_stats.store_bytes, v.r2_stats.store_bytes,
                    v.r3_stats.store_bytes});
      const std::uint64_t fused =
          v.r1_stats.fused + v.r2_stats.fused + v.r3_stats.fused;
      ahb::bench::emit_json_line(
          ahb::strprintf("table3/%s_n%d_tmin%d",
                         ahb::models::to_string(flavor), participants, tmin),
          states, transitions, seconds, args.threads, store_bytes,
          args.compression, args.symmetry, args.por,
          ahb::bench::reduction_factor(states, fused));
    }
  }
  for (int row = 0; row < 3; ++row) {
    std::printf("  %-6s", row == 0 ? "R1" : row == 1 ? "R2" : "R3");
    for (const auto& v : verdicts) {
      std::printf(" %3s", tf(row == 0 ? v.r1 : row == 1 ? v.r2 : v.r3));
    }
    std::printf("\n");
  }
  std::printf("  => %s (paper: all requirements hold after the fixes)\n",
              all_hold ? "ALL HOLD" : "VIOLATION REMAINS");
  std::printf("  (%llu states explored, %.2fs)\n\n",
              static_cast<unsigned long long>(total_states), total_seconds);
  return all_hold;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ahb::bench::parse_bench_args(argc, argv);
  const int n = args.participants > 0 ? args.participants : 1;
  std::printf("== Section 6: corrected protocols satisfy R1-R3 ==\n\n");
  bool ok = true;
  ok &= run_flavor(Flavor::Binary, 1, args);
  ok &= run_flavor(Flavor::RevisedBinary, 1, args);
  ok &= run_flavor(Flavor::Static, n, args);
  ok &= run_flavor(Flavor::Expanding, n, args);
  ok &= run_flavor(Flavor::Dynamic, n, args);
  return ok ? 0 : 1;
}
