// Cluster-scale engine benchmark: how many heartbeats per second can
// one coordinator process sustain, and how fast does it detect a crash,
// as the member count climbs 1k -> 10k -> 100k?
//
// Three measurements per size on the scale engine (hb::ScaleCluster):
//   - steady state: lossless rounds of the static protocol; reports
//     beats/sec and ns/beat (the per-beat cost must stay near-constant
//     from 10k to 100k — that is the O(1) timer-wheel claim).
//   - detection latency: one random member crashes mid-run; the
//     coordinator accelerates down the waiting-time ladder and
//     inactivates. Reports p50/p99/max over seeded runs against the
//     analytic bound (3*tmax - tmin, plus the in-flight allowance).
//   - membership churn: an expanding join storm (every member starts
//     unjoined and beats in) and, for the dynamic variant, a staggered
//     leave/rejoin wave riding a steady cluster.
// One legacy hb::Cluster baseline runs at 10k for the speedup ratio;
// at 100k the legacy harness is no longer a reasonable thing to run in
// a benchmark loop — which is the point of the scale engine.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hb/cluster.hpp"
#include "hb/cluster_scale.hpp"
#include "rv/availability.hpp"
#include "rv/monitor.hpp"
#include "rv/suspicion.hpp"

namespace {

using namespace ahb;

constexpr hb::Time kTmin = 4;
constexpr hb::Time kTmax = 10;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

hb::ClusterConfig scale_config(hb::Variant variant, int n,
                               std::uint64_t seed) {
  hb::ClusterConfig config;
  config.protocol.variant = variant;
  config.protocol.tmin = kTmin;
  config.protocol.tmax = kTmax;
  config.participants = n;
  config.max_delay = -1;  // in-spec random delay in [0, tmin/2]
  config.seed = seed;
  return config;
}

struct SteadyResult {
  std::uint64_t rounds = 0;
  std::uint64_t beats = 0;
  double seconds = 0;
  sim::NetworkStats net;
  double beats_per_sec() const {
    return seconds > 0 ? static_cast<double>(beats) / seconds : 0;
  }
  double ns_per_beat() const {
    return beats > 0 ? seconds * 1e9 / static_cast<double>(beats) : 0;
  }
};

// Sized so every configuration moves ~2M beats: the 100k run is ~20
// rounds, the 1k run ~2000 — enough for the rate to stabilise without
// the small sizes dominating wall time.
std::uint64_t steady_rounds(int n) {
  return std::max<std::uint64_t>(20, 2'000'000 / static_cast<unsigned>(n));
}

SteadyResult steady_state_scale(int n) {
  hb::ScaleCluster cluster{scale_config(hb::Variant::Static, n, 42)};
  const auto start = std::chrono::steady_clock::now();
  cluster.start();
  cluster.run_until(static_cast<sim::Time>(steady_rounds(n)) * kTmax + 1);
  SteadyResult r;
  r.seconds = seconds_since(start);
  r.rounds = cluster.stats().rounds;
  r.beats = cluster.stats().beats;
  r.net = cluster.network_stats();
  return r;
}

struct MonitoredResult {
  SteadyResult steady;
  std::uint64_t monitor_events = 0;  ///< sum of the sinks' events_seen
  std::size_t violations = 0;
  double up_fraction = 1.0;
};

// The same steady-state run with the full rv monitor stack attached
// (requirement + suspicion + availability). The delta against the
// plain run is the runtime-verification overhead; a clean run must
// report zero violations and full availability.
MonitoredResult steady_state_scale_monitored(int n) {
  hb::ScaleCluster cluster{scale_config(hb::Variant::Static, n, 42)};

  rv::RequirementMonitor::Config monitor_config;
  monitor_config.variant = hb::Variant::Static;
  monitor_config.timing = proto::Timing{kTmin, kTmax};
  monitor_config.participants = n;
  const auto bounds = rv::MonitorBounds::defaults(monitor_config.timing,
                                                  monitor_config.variant, true);
  rv::RequirementMonitor requirements{monitor_config, bounds};
  requirements.attach(cluster);
  rv::SuspicionMonitor::Config suspicion_config;
  suspicion_config.variant = hb::Variant::Static;
  suspicion_config.timing = monitor_config.timing;
  suspicion_config.participants = n;
  rv::SuspicionMonitor suspicion{suspicion_config, bounds};
  suspicion.attach(cluster);
  rv::AvailabilityStats availability{n};
  cluster.add_sink(&availability);

  const sim::Time horizon =
      static_cast<sim::Time>(steady_rounds(n)) * kTmax + 1;
  const auto start = std::chrono::steady_clock::now();
  cluster.start();
  cluster.run_until(horizon);
  cluster.sinks().finish(horizon);
  MonitoredResult r;
  r.steady.seconds = seconds_since(start);
  r.steady.rounds = cluster.stats().rounds;
  r.steady.beats = cluster.stats().beats;
  r.steady.net = cluster.network_stats();
  r.monitor_events = requirements.events_seen() + suspicion.events_seen() +
                     availability.events_seen();
  r.violations = requirements.violations().size() +
                 suspicion.violations().size();
  r.up_fraction = availability.summary().up_fraction();
  return r;
}

SteadyResult steady_state_legacy(int n, std::uint64_t rounds) {
  hb::Cluster cluster{scale_config(hb::Variant::Static, n, 42)};
  std::uint64_t beats = 0;
  std::uint64_t round_count = 0;
  cluster.on_protocol_event([&](const hb::ProtocolEvent& e) {
    if (e.kind == hb::ProtocolEvent::Kind::CoordinatorBeat) {
      ++round_count;
      beats += e.fanout;
    }
  });
  const auto start = std::chrono::steady_clock::now();
  cluster.start();
  cluster.run_until(static_cast<sim::Time>(rounds) * kTmax + 1);
  SteadyResult r;
  r.seconds = seconds_since(start);
  r.rounds = round_count;
  r.beats = beats;
  r.net = cluster.network_stats();
  return r;
}

struct DetectResult {
  int runs = 0;
  int detected = 0;
  sim::Time p50 = 0;
  sim::Time p99 = 0;
  sim::Time max = 0;
  double seconds = 0;
};

DetectResult detection_latency(int n, int runs) {
  std::vector<sim::Time> delays;
  const auto start = std::chrono::steady_clock::now();
  for (int seed = 1; seed <= runs; ++seed) {
    hb::ScaleCluster cluster{
        scale_config(hb::Variant::Static, n, static_cast<std::uint64_t>(seed))};
    const int victim = 1 + (seed * 7919) % n;
    const sim::Time crash_at = 2 * kTmax + (seed * 37) % (3 * kTmax);
    cluster.crash_participant_at(victim, crash_at);
    cluster.start();
    cluster.run_until(crash_at + 20 * kTmax);
    if (cluster.coordinator_inactivated_at() == hb::kNever) continue;
    delays.push_back(cluster.coordinator_inactivated_at() - crash_at);
  }
  DetectResult r;
  r.seconds = seconds_since(start);
  r.runs = runs;
  r.detected = static_cast<int>(delays.size());
  if (!delays.empty()) {
    std::sort(delays.begin(), delays.end());
    r.p50 = delays[(delays.size() - 1) * 50 / 100];
    r.p99 = delays[(delays.size() - 1) * 99 / 100];
    r.max = delays.back();
  }
  return r;
}

struct JoinStormResult {
  int joined = 0;
  sim::Time sim_time = 0;
  double seconds = 0;
  std::uint64_t replies = 0;
};

// Every member starts unjoined (expanding variant) and join-beats every
// tmin until the coordinator's heartbeat confirms it.
JoinStormResult join_storm(int n) {
  hb::ScaleCluster cluster{scale_config(hb::Variant::Expanding, n, 7)};
  const auto start = std::chrono::steady_clock::now();
  cluster.start();
  sim::Time horizon = 0;
  while (cluster.member_count() < n && horizon < 100 * kTmax) {
    horizon += kTmax;
    cluster.run_until(horizon);
  }
  JoinStormResult r;
  r.seconds = seconds_since(start);
  r.joined = cluster.member_count();
  r.sim_time = horizon;
  r.replies = cluster.stats().replies;
  return r;
}

struct ChurnResult {
  int leaves = 0;
  int members = 0;
  std::uint64_t beats = 0;
  double seconds = 0;
};

// Dynamic variant: everyone joins, then 1% of the cluster leaves at
// staggered instants and gracefully rejoins a few rounds later.
ChurnResult churn_wave(int n) {
  hb::ScaleCluster cluster{scale_config(hb::Variant::Dynamic, n, 11)};
  const int leavers = std::max(1, n / 100);
  const sim::Time settled = 20 * kTmax;
  for (int i = 0; i < leavers; ++i) {
    const int id = 1 + (i * 97) % n;
    const sim::Time leave_at = settled + (i % 10) * kTmax;
    cluster.leave_at(id, leave_at);
    // The leave lands at the reply to the next beat; the rejoin waits
    // out the graceful window with slack so none are dropped as races.
    cluster.rejoin_at(id, leave_at + 6 * kTmax);
  }
  const auto start = std::chrono::steady_clock::now();
  cluster.start();
  cluster.run_until(settled + 40 * kTmax);
  ChurnResult r;
  r.seconds = seconds_since(start);
  r.leaves = leavers;
  r.members = cluster.member_count();
  r.beats = cluster.stats().beats;
  return r;
}

int detection_runs(int n) { return n >= 100'000 ? 10 : n >= 10'000 ? 20 : 50; }

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(argc, argv);
  std::vector<int> sizes{1'000, 10'000, 100'000};
  if (args.participants > 0) sizes = {args.participants};

  if (!args.json) {
    std::printf("== Cluster-scale heartbeat engine (static protocol, "
                "tmin=%lld tmax=%lld, lossless, in-spec delays) ==\n\n",
                static_cast<long long>(kTmin), static_cast<long long>(kTmax));
    std::printf("%9s %8s %12s %14s %10s  %s\n", "n", "rounds", "beats",
                "beats/sec", "ns/beat", "detect p50/p99/max (ticks)");
  }

  double scale_bps_10k = 0;
  for (const int n : sizes) {
    const auto steady = steady_state_scale(n);
    if (n == 10'000) scale_bps_10k = steady.beats_per_sec();
    const auto monitored = steady_state_scale_monitored(n);
    const double overhead_pct =
        steady.beats_per_sec() > 0
            ? (1.0 - monitored.steady.beats_per_sec() / steady.beats_per_sec()) *
                  100.0
            : 0;
    const double monitor_ns_per_event =
        monitored.monitor_events > 0
            ? std::max(0.0, monitored.steady.seconds - steady.seconds) * 1e9 /
                  static_cast<double>(monitored.monitor_events)
            : 0;
    const auto detect = detection_latency(n, detection_runs(n));
    if (args.json) {
      std::printf(
          "{\"bench\": \"cluster_scale/steady_n%d\", \"participants\": %d, "
          "\"rounds\": %llu, \"beats\": %llu, \"seconds\": %.3f, "
          "\"beats_per_sec\": %.0f, \"ns_per_beat\": %.1f, %s}\n",
          n, n, static_cast<unsigned long long>(steady.rounds),
          static_cast<unsigned long long>(steady.beats), steady.seconds,
          steady.beats_per_sec(), steady.ns_per_beat(),
          bench::network_stats_fields(steady.net).c_str());
      std::printf(
          "{\"bench\": \"cluster_scale/steady_monitored_n%d\", "
          "\"participants\": %d, \"rounds\": %llu, \"beats\": %llu, "
          "\"seconds\": %.3f, \"beats_per_sec\": %.0f, \"ns_per_beat\": %.1f, "
          "\"monitor_events\": %llu, \"monitor_ns_per_event\": %.1f, "
          "\"monitor_overhead_pct\": %.1f, \"violations\": %zu, "
          "\"availability_up_fraction\": %.4f}\n",
          n, n, static_cast<unsigned long long>(monitored.steady.rounds),
          static_cast<unsigned long long>(monitored.steady.beats),
          monitored.steady.seconds, monitored.steady.beats_per_sec(),
          monitored.steady.ns_per_beat(),
          static_cast<unsigned long long>(monitored.monitor_events),
          monitor_ns_per_event, overhead_pct, monitored.violations,
          monitored.up_fraction);
      std::printf(
          "{\"bench\": \"cluster_scale/detect_n%d\", \"participants\": %d, "
          "\"runs\": %d, \"detected\": %d, \"p50\": %lld, \"p99\": %lld, "
          "\"max\": %lld, \"seconds\": %.3f}\n",
          n, n, detect.runs, detect.detected,
          static_cast<long long>(detect.p50),
          static_cast<long long>(detect.p99),
          static_cast<long long>(detect.max), detect.seconds);
    } else {
      std::printf("%9d %8llu %12llu %14.0f %10.1f  %lld/%lld/%lld\n", n,
                  static_cast<unsigned long long>(steady.rounds),
                  static_cast<unsigned long long>(steady.beats),
                  steady.beats_per_sec(), steady.ns_per_beat(),
                  static_cast<long long>(detect.p50),
                  static_cast<long long>(detect.p99),
                  static_cast<long long>(detect.max));
      std::printf("%9s %8s %12s %14.0f %10.1f  rv on: %.1f%% overhead, "
                  "%.1f ns/event, %zu violation(s)\n",
                  "", "", "", monitored.steady.beats_per_sec(),
                  monitored.steady.ns_per_beat(), overhead_pct,
                  monitor_ns_per_event, monitored.violations);
    }
  }

  // Legacy baseline at 10k (skipped when a single other size was asked
  // for): same protocol work on the binary-heap simulator and
  // map-routed network.
  if (std::find(sizes.begin(), sizes.end(), 10'000) != sizes.end()) {
    const auto legacy = steady_state_legacy(10'000, 10);
    const double speedup = legacy.beats > 0 && scale_bps_10k > 0
                               ? scale_bps_10k / legacy.beats_per_sec()
                               : 0;
    if (args.json) {
      std::printf(
          "{\"bench\": \"cluster_scale/legacy_n10000\", \"participants\": "
          "10000, \"rounds\": %llu, \"beats\": %llu, \"seconds\": %.3f, "
          "\"beats_per_sec\": %.0f, \"speedup\": %.1f}\n",
          static_cast<unsigned long long>(legacy.rounds),
          static_cast<unsigned long long>(legacy.beats), legacy.seconds,
          legacy.beats_per_sec(), speedup);
    } else {
      std::printf("\nlegacy hb::Cluster at n=10000: %.0f beats/sec "
                  "(scale engine: %.0f, %.1fx)\n",
                  legacy.beats_per_sec(), scale_bps_10k, speedup);
    }
  }

  // Membership churn at the largest measured size.
  const int n = sizes.back();
  const auto storm = join_storm(n);
  const auto churn = churn_wave(n);
  if (args.json) {
    std::printf(
        "{\"bench\": \"cluster_scale/join_storm_n%d\", \"participants\": %d, "
        "\"joined\": %d, \"sim_ticks\": %lld, \"join_replies\": %llu, "
        "\"seconds\": %.3f}\n",
        n, n, storm.joined, static_cast<long long>(storm.sim_time),
        static_cast<unsigned long long>(storm.replies), storm.seconds);
    std::printf(
        "{\"bench\": \"cluster_scale/churn_n%d\", \"participants\": %d, "
        "\"leavers\": %d, \"members_after\": %d, \"beats\": %llu, "
        "\"seconds\": %.3f}\n",
        n, n, churn.leaves, churn.members,
        static_cast<unsigned long long>(churn.beats), churn.seconds);
  } else {
    std::printf("\njoin storm  n=%d: %d joined in %lld sim ticks "
                "(%.3fs wall)\n",
                n, storm.joined, static_cast<long long>(storm.sim_time),
                storm.seconds);
    std::printf("churn wave  n=%d: %d left+rejoined, %d members after "
                "(%.3fs wall)\n",
                n, churn.leaves, churn.members, churn.seconds);
  }
  return 0;
}
