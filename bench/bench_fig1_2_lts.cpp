// Reproduces Figures 1 and 2 of the analysis: the reduced transition
// systems of processes p[0] and p[1] of the binary protocol for
// tmax = 2, tmin = 1.
//
// Each process is composed with a chaos environment (any beat may be
// delivered at any time; every send is accepted), its reachable LTS is
// extracted, environment-only actions are hidden, and the result is
// reduced — exactly the pipeline the paper describes ("after hiding ...
// and reducing modulo weak-trace equivalence"). The DOT renderings are
// printed so the diagrams can be compared visually with the figures.
#include <cstdio>

#include "bench_util.hpp"
#include "mc/lts.hpp"
#include "models/standalone.hpp"
#include "trace/trace.hpp"

namespace {

using namespace ahb;

/// Hides environment bookkeeping: pure-env actions become tau, composite
/// labels keep only the process part.
mc::Lts process_view(const mc::Lts& lts, const std::string& proc) {
  mc::Lts out = lts;
  for (auto& label : out.alphabet) {
    const auto pos = label.find(proc + ".");
    if (pos == std::string::npos) {
      if (label != "tick") label = mc::kTau;
      continue;
    }
    // "p0.send >> env.accept" -> "p0.send"; "env.deliver >> p0.recv" ->
    // "p0.recv".
    std::string trimmed = label.substr(pos);
    const auto sep = trimmed.find(" >> ");
    if (sep != std::string::npos) trimmed = trimmed.substr(0, sep);
    label = trimmed;
  }
  return out;
}

void report(const char* figure, const ta::Network& net,
            const std::string& proc, bool json) {
  const mc::Lts raw = mc::extract_lts(net);
  const mc::Lts view = process_view(raw, proc);
  const mc::Lts reduced = mc::weak_trace_reduce(view);
  const mc::Lts bisim = mc::bisim_reduce(view);

  if (json) {
    std::printf("{\"bench\": \"fig1_2/%s\", \"raw_states\": %d, "
                "\"bisim_states\": %d, \"reduced_states\": %d, "
                "\"reduced_transitions\": %zu}\n",
                proc.c_str(), raw.state_count, bisim.state_count,
                reduced.state_count, reduced.edges.size());
  }
  std::printf("--- %s: process %s with tmax=2, tmin=1 ---\n", figure,
              proc.c_str());
  std::printf("raw reachable LTS:        %d states, %zu transitions\n",
              raw.state_count, raw.edges.size());
  std::printf("strong bisimulation quotient: %d states, %zu transitions\n",
              bisim.state_count, bisim.edges.size());
  std::printf("weak-trace reduction:     %d states, %zu transitions\n",
              reduced.state_count, reduced.edges.size());
  std::printf("\nDOT of the weak-trace-reduced system:\n%s\n",
              trace::to_dot(reduced).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const models::Timing timing{1, 2};
  std::printf("== Figures 1-2: reduced per-process transition systems ==\n\n");
  report("Fig. 1", models::build_standalone_p0(timing), "p0", args.json);
  report("Fig. 2", models::build_standalone_p1(timing), "p1", args.json);
  return 0;
}
