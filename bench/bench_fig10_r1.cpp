// Reproduces Figure 10 of the analysis: counterexamples for requirement
// R1 in the binary protocol when 2*tmin <= tmax.
//
//  - Fig. 10(a) (2*tmin < tmax): p[1] replies once and crashes right
//    after; p[0] restores t = tmax and then needs several halving rounds
//    before inactivating, up to 3*tmax - tmin > 2*tmax after the last
//    received beat.
//  - Fig. 10(b) (2*tmin <= tmax): the minimal variant of the same
//    phenomenon.
//
// The model checker emits the *shortest* violating run, so the trace
// shape (reply, crash, restored round, halving rounds, late
// inactivation or monitor error) matches the figure's narrative.
#include <cstdio>

#include "bench_util.hpp"
#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"
#include "trace/trace.hpp"

namespace {

using namespace ahb;

void show(int tmin, int tmax, const char* figure, const char* slug,
          bool json) {
  models::BuildOptions options;
  options.timing = {tmin, tmax};
  options.r1_monitor = true;
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  const auto& handles = model.handles();
  mc::Explorer explorer{model.net()};
  const auto result = explorer.reach(model.r1_violation());

  std::printf("--- %s: binary protocol, tmin=%d tmax=%d ---\n", figure, tmin,
              tmax);
  if (json) {
    std::printf("{\"bench\": \"fig10/%s\", \"found\": %s, \"steps\": %zu, "
                "\"states\": %llu}\n",
                slug, result.found ? "true" : "false",
                result.found ? result.trace.size() - 1 : 0,
                static_cast<unsigned long long>(result.stats.states));
  }
  if (!result.found) {
    std::printf("NO counterexample found (unexpected!)\n\n");
    return;
  }
  std::printf(
      "R1 violated: p[0] still active more than 2*tmax=%d after its last\n"
      "received beat. Shortest witness (%zu steps, %llu states explored):\n",
      2 * tmax, result.trace.size() - 1,
      static_cast<unsigned long long>(result.stats.states));
  std::printf("%s\n",
              trace::render_timeline_filtered(
                  model.net(), result.trace,
                  {"beat", "reply", "timeout", "crash", "inactivate", "error"})
                  .c_str());

  // The figure's own scenario loses nothing: p[1] replies once and
  // crashes, which restores t = tmax and maximises the halving tail.
  const auto r1 = model.r1_violation();
  const auto no_loss = explorer.reach([&](const ta::StateView& v) {
    return r1(v) && v.var(handles.lost) == 0;
  });
  if (no_loss.found) {
    std::printf(
        "Figure-style witness (no loss; reply then crash):\n%s\n",
        trace::render_timeline_filtered(model.net(), no_loss.trace,
                                        {"beat", "reply", "timeout", "crash",
                                         "inactivate", "error"})
            .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  std::printf("== Figure 10: R1 counterexamples (2*tmin <= tmax) ==\n\n");
  show(1, 10, "Fig. 10(a) analogue (2*tmin < tmax)", "a_tmin1", args.json);
  show(5, 10, "Fig. 10(b) analogue (2*tmin == tmax)", "b_tmin5", args.json);
  std::printf(
      "For 2*tmin > tmax (e.g. tmin=9), R1 holds: the first halving\n"
      "already drops t below tmin, so p[0] inactivates within 2*tmax.\n");
  return 0;
}
