// Detection-delay experiment (simulation): after a participant crashes,
// how long until the coordinator self-deactivates — and symmetrically
// for a coordinator crash? The ICDCS'98 design promises bounded
// detection: the coordinator inactivates within 3*tmax - tmin of its
// last received beat (2*tmax when 2*tmin > tmax), participants within
// 3*tmax - tmin (2*tmax with the corrected bounds) of their last beat.
//
// For every (tmin, tmax) point we run many seeded simulations with a
// crash at a random time and report the measured mean/max detection
// delay against the analytic bound. The shape to observe: measured max
// stays below the bound, and the bound tightens as tmin grows.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hb/cluster.hpp"

namespace {

using namespace ahb;

struct DelayStats {
  double mean = 0;
  hb::Time max = 0;
  int detected = 0;
  int runs = 0;
};

void emit_row_json(const char* detector, hb::Time tmin, bool fixed,
                   const DelayStats& s, long long bound) {
  std::printf(
      "{\"bench\": \"detection_delay/%s_tmin%lld_%s\", \"detected\": %d, "
      "\"runs\": %d, \"mean\": %.1f, \"max\": %lld, \"bound\": %lld}\n",
      detector, static_cast<long long>(tmin), fixed ? "fixed" : "paper",
      s.detected, s.runs, s.mean, static_cast<long long>(s.max), bound);
}

DelayStats participant_crash_sweep(hb::Time tmin, hb::Time tmax,
                                   bool fixed_bounds, int runs) {
  DelayStats stats;
  stats.runs = runs;
  double total = 0;
  for (int seed = 1; seed <= runs; ++seed) {
    hb::ClusterConfig config;
    config.protocol.variant = hb::Variant::Binary;
    config.protocol.tmin = tmin;
    config.protocol.tmax = tmax;
    config.protocol.fixed_bounds = fixed_bounds;
    config.participants = 1;
    config.seed = static_cast<std::uint64_t>(seed);

    hb::Cluster cluster{config};
    // Crash at a pseudo-random phase within a few rounds.
    const sim::Time crash_at = 100 + (seed * 37) % (3 * tmax);
    cluster.crash_participant_at(1, crash_at);
    cluster.start();
    cluster.run_until(crash_at + 20 * tmax);

    const hb::Time at = cluster.coordinator().inactivated_at();
    if (at == hb::kNever) continue;
    const hb::Time delay = at - crash_at;
    ++stats.detected;
    total += static_cast<double>(delay);
    stats.max = std::max(stats.max, delay);
  }
  if (stats.detected > 0) stats.mean = total / stats.detected;
  return stats;
}

DelayStats coordinator_crash_sweep(hb::Time tmin, hb::Time tmax,
                                   bool fixed_bounds, int runs) {
  DelayStats stats;
  stats.runs = runs;
  double total = 0;
  for (int seed = 1; seed <= runs; ++seed) {
    hb::ClusterConfig config;
    config.protocol.variant = hb::Variant::Binary;
    config.protocol.tmin = tmin;
    config.protocol.tmax = tmax;
    config.protocol.fixed_bounds = fixed_bounds;
    config.participants = 1;
    config.seed = static_cast<std::uint64_t>(seed);

    hb::Cluster cluster{config};
    const sim::Time crash_at = 100 + (seed * 41) % (3 * tmax);
    cluster.crash_coordinator_at(crash_at);
    cluster.start();
    cluster.run_until(crash_at + 20 * tmax);

    const hb::Time at = cluster.participant(1).inactivated_at();
    if (at == hb::kNever) continue;
    ++stats.detected;
    const hb::Time delay = at - crash_at;
    total += static_cast<double>(delay);
    stats.max = std::max(stats.max, delay);
  }
  if (stats.detected > 0) stats.mean = total / stats.detected;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  constexpr int kRuns = 300;
  const hb::Time tmax = 16;

  std::printf("== Detection delay after a crash (binary protocol, tmax=%lld,"
              " %d seeded runs per row, loss-free) ==\n\n",
              static_cast<long long>(tmax), kRuns);

  std::printf("-- participant crashes; coordinator detects --\n");
  std::printf("%6s %10s %12s %10s %10s  %s\n", "tmin", "bounds", "detected",
              "mean", "max", "analytic bound");
  for (const hb::Time tmin : {1, 2, 4, 8, 16}) {
    for (const bool fixed : {false, true}) {
      const auto s = participant_crash_sweep(tmin, tmax, fixed, kRuns);
      hb::Config cfg;
      cfg.tmin = tmin;
      cfg.tmax = tmax;
      // A reply already in flight when the crash happens (up to tmin/2
      // one-way delay) can still refresh the coordinator's round, so the
      // bound measured from the *crash time* gets that allowance.
      const long long bound = cfg.coordinator_detection_bound() + tmin / 2;
      std::printf("%6lld %10s %8d/%-3d %10.1f %10lld  <= %lld%s\n",
                  static_cast<long long>(tmin), fixed ? "fixed" : "paper",
                  s.detected, s.runs, s.mean,
                  static_cast<long long>(s.max), bound,
                  s.max <= bound ? "  OK" : "  EXCEEDED");
      if (args.json) emit_row_json("coordinator_detects", tmin, fixed, s, bound);
    }
  }

  std::printf("\n-- coordinator crashes; participant detects --\n");
  std::printf("%6s %10s %12s %10s %10s  %s\n", "tmin", "bounds", "detected",
              "mean", "max", "analytic bound");
  for (const hb::Time tmin : {1, 2, 4, 8, 16}) {
    for (const bool fixed : {false, true}) {
      const auto s = coordinator_crash_sweep(tmin, tmax, fixed, kRuns);
      hb::Config cfg;
      cfg.tmin = tmin;
      cfg.tmax = tmax;
      cfg.fixed_bounds = fixed;
      // Same in-flight allowance: a beat the coordinator sent just
      // before crashing is delivered up to tmin/2 later and legitimately
      // refreshes the participant's deadline.
      const long long bound = cfg.participant_deadline() + tmin / 2;
      std::printf("%6lld %10s %8d/%-3d %10.1f %10lld  <= %lld%s\n",
                  static_cast<long long>(tmin), fixed ? "fixed" : "paper",
                  s.detected, s.runs, s.mean,
                  static_cast<long long>(s.max), bound,
                  s.max <= bound ? "  OK" : "  EXCEEDED");
      if (args.json) emit_row_json("participant_detects", tmin, fixed, s, bound);
    }
  }

  std::printf(
      "\nShape check: every measured max respects its analytic bound (the\n"
      "deadline plus the one-way delay of a message already in flight at\n"
      "the crash); the corrected (\"fixed\") participant bound 2*tmax is\n"
      "visibly tighter than the published 3*tmax - tmin for small tmin.\n");
  return 0;
}
