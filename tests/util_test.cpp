#include <gtest/gtest.h>

#include <set>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ahb {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, Uniform01Bounds) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{5};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng{13};
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Hash, EqualInputsEqualHashes) {
  const std::vector<std::int16_t> a{1, 2, 3};
  const std::vector<std::int16_t> b{1, 2, 3};
  EXPECT_EQ(hash_span(std::span<const std::int16_t>{a}),
            hash_span(std::span<const std::int16_t>{b}));
}

TEST(Hash, SmallPerturbationChangesHash) {
  std::vector<std::int16_t> a{1, 2, 3, 4, 5};
  const auto base = hash_span(std::span<const std::int16_t>{a});
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto mutated = a;
    mutated[i] ^= 1;
    EXPECT_NE(base, hash_span(std::span<const std::int16_t>{mutated}));
  }
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("x=%d y=%s", 3, "ok"), "x=3 y=ok");
  EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, Pad) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");
}

}  // namespace
}  // namespace ahb
