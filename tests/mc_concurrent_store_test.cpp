#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <thread>
#include <vector>

#include "mc/concurrent_store.hpp"

namespace ahb::mc {
namespace {

using ta::Slot;

/// Encodes an integer as a 4-slot state (little-endian base-256 digits),
/// giving well-spread hashes without collisions below 2^32.
std::array<Slot, 4> encode(std::uint32_t n) {
  return {static_cast<Slot>(n & 0xff), static_cast<Slot>((n >> 8) & 0xff),
          static_cast<Slot>((n >> 16) & 0xff),
          static_cast<Slot>((n >> 24) & 0xff)};
}

TEST(ConcurrentStateStore, InternDeduplicates) {
  ConcurrentStateStore store{4};
  const auto a = encode(7);
  auto [i1, fresh1] = store.intern(a);
  auto [i2, fresh2] = store.intern(a);
  EXPECT_TRUE(fresh1);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(i1, i2);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ConcurrentStateStore, RoundTripsSlotsAndParents) {
  ConcurrentStateStore store{4};
  auto [root, _] = store.intern(encode(0));
  EXPECT_EQ(store.parent_of(root), ConcurrentStateStore::kInvalidIndex);
  auto [child, fresh] = store.intern(encode(1), root);
  ASSERT_TRUE(fresh);
  EXPECT_EQ(store.parent_of(child), root);
  const auto raw = store.raw(child);
  const auto want = encode(1);
  ASSERT_EQ(raw.size(), want.size());
  EXPECT_TRUE(std::equal(raw.begin(), raw.end(), want.begin()));
  EXPECT_EQ(store.get(child).slots().size(), 4u);
}

TEST(ConcurrentStateStore, FirstInserterWinsParentLink) {
  ConcurrentStateStore store{4};
  auto [p1, f1] = store.intern(encode(100));
  auto [p2, f2] = store.intern(encode(200));
  ASSERT_TRUE(f1 && f2);
  auto [c, fresh] = store.intern(encode(300), p1);
  ASSERT_TRUE(fresh);
  // A second intern with a different parent is a duplicate; the recorded
  // parent must stay the first one (it is one BFS layer closer).
  auto [c2, fresh2] = store.intern(encode(300), p2);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(c2, c);
  EXPECT_EQ(store.parent_of(c), p1);
}

TEST(ConcurrentStateStore, GrowsAcrossArenaSegmentsAndTableResizes) {
  // Enough states to force several table growths and arena segments in
  // most shards (segment 0 holds 1024 states per shard).
  constexpr std::uint32_t kCount = 50'000;
  ConcurrentStateStore store{4};
  std::vector<std::uint32_t> index(kCount);
  for (std::uint32_t n = 0; n < kCount; ++n) {
    auto [i, fresh] = store.intern(encode(n));
    ASSERT_TRUE(fresh) << n;
    index[n] = i;
  }
  EXPECT_EQ(store.size(), kCount);
  EXPECT_GT(store.memory_bytes(), kCount * 4 * sizeof(Slot));
  for (std::uint32_t n = 0; n < kCount; ++n) {
    const auto raw = store.raw(index[n]);
    const auto want = encode(n);
    ASSERT_TRUE(std::equal(raw.begin(), raw.end(), want.begin())) << n;
    auto [i, fresh] = store.intern(want);
    EXPECT_FALSE(fresh) << n;
    EXPECT_EQ(i, index[n]) << n;
  }
}

TEST(ConcurrentStateStore, ConcurrentInternHammer) {
  // 8 threads intern heavily overlapping ranges: every state is offered
  // by four threads, so the store sees constant duplicate pressure on
  // every shard. Afterwards the store must contain each state exactly
  // once and agree on one index per state across all threads' records.
  constexpr unsigned kThreads = 8;
  constexpr std::uint32_t kStates = 40'000;
  ConcurrentStateStore store{4};

  std::vector<std::vector<std::uint32_t>> seen(
      kThreads, std::vector<std::uint32_t>(kStates));
  std::vector<std::uint64_t> fresh_count(kThreads, 0);
  {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        // Each thread walks the full range from a different start so
        // collisions happen mid-flight, not just at the end.
        for (std::uint32_t k = 0; k < kStates; ++k) {
          const std::uint32_t n =
              (k + t * (kStates / kThreads)) % kStates;
          if (t % 2 == 1 && n % 2 == 0) continue;  // odd threads skip half
          const auto slots = encode(n);
          auto [index, fresh] = store.intern(slots);
          seen[t][n] = index;
          if (fresh) ++fresh_count[t];
        }
      });
    }
    for (auto& th : pool) th.join();
  }

  EXPECT_EQ(store.size(), kStates);
  std::uint64_t total_fresh = 0;
  for (const auto c : fresh_count) total_fresh += c;
  // Exactly one insertion per distinct state, no matter which thread won.
  EXPECT_EQ(total_fresh, kStates);

  for (std::uint32_t n = 0; n < kStates; ++n) {
    auto [index, fresh] = store.intern(encode(n));
    EXPECT_FALSE(fresh) << n;
    for (unsigned t = 0; t < kThreads; ++t) {
      if (t % 2 == 1 && n % 2 == 0) continue;
      EXPECT_EQ(seen[t][n], index) << "thread " << t << " state " << n;
    }
    const auto raw = store.raw(index);
    const auto want = encode(n);
    EXPECT_TRUE(std::equal(raw.begin(), raw.end(), want.begin())) << n;
  }
}

}  // namespace
}  // namespace ahb::mc
