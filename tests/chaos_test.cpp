// Chaos-layer tests: the fault models of sim::Network, per-message ids
// in the protocol-event stream, FaultSchedule serialization, run/
// campaign determinism, the in-spec campaign staying clean, the
// out-of-spec negative control firing + shrinking + replaying, and the
// mutation canary (a loosened monitor bound must silence the expected
// violation — the proof the monitors actually bite).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "chaos/campaign.hpp"
#include "hb/cluster.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace ahb::chaos {
namespace {

// --- sim::Network fault models -------------------------------------------

TEST(Network, DuplicationDeliversSameIdTwice) {
  sim::Simulator sim{7};
  sim::Network<int> net{sim, {.loss_probability = 0.0,
                              .min_delay = 0,
                              .max_delay = 0,
                              .duplicate_probability = 1.0}};
  std::vector<std::uint64_t> delivered;
  net.attach(0, [&](int, const int&, std::uint64_t id) {
    delivered.push_back(id);
  });
  const std::uint64_t id = net.send(1, 0, 42);
  sim.run_until(10);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{id, id}));
  EXPECT_EQ(net.stats().duplicated, 1u);
  EXPECT_EQ(net.stats().delivered, 2u);
  EXPECT_EQ(net.stats().sent, 1u);
}

TEST(Network, ReorderedDeliveryCounted) {
  sim::Simulator sim{7};
  sim::Network<int> net{sim, {.min_delay = 3, .max_delay = 3}};
  std::vector<std::uint64_t> delivered;
  net.attach(0, [&](int, const int&, std::uint64_t id) {
    delivered.push_back(id);
  });
  const std::uint64_t slow = net.send(1, 0, 1);  // delivered at t=3
  net.set_link(1, 0, {.min_delay = 0, .max_delay = 0});
  std::uint64_t fast = 0;
  sim.at(1, [&] { fast = net.send(1, 0, 2); });  // delivered at t=1
  sim.run_until(10);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{fast, slow}));
  EXPECT_EQ(net.stats().reordered, 1u);
}

TEST(Network, BurstLossDropsEverythingWhileBad) {
  sim::Simulator sim{7};
  sim::Network<int> net{
      sim, {.burst = {.p_enter = 1.0, .p_exit = 0.0, .loss = 1.0}}};
  net.attach(0, [&](int, const int&, std::uint64_t) { FAIL(); });
  for (int i = 0; i < 5; ++i) net.send(1, 0, i);
  sim.run_until(10);
  EXPECT_EQ(net.stats().lost, 5u);
  EXPECT_EQ(net.stats().delivered, 0u);
}

TEST(Network, OutOfSpecDelaySamplesCounted) {
  sim::Simulator sim{7};
  sim::Network<int> net{sim, {.min_delay = 2, .max_delay = 2}};
  net.set_spec_max_delay(1);
  net.attach(0, [](int, const int&, std::uint64_t) {});
  net.send(1, 0, 1);
  net.send(1, 0, 2);
  sim.run_until(10);
  EXPECT_EQ(net.stats().out_of_spec_delay, 2u);
  EXPECT_EQ(net.stats().delivered, 2u);
}

// Sends and deliveries of one message share its id, so the two are
// separately identifiable trace events — the groundwork nonzero-delay
// conformance replay needs.
TEST(Cluster, MessageIdsPairSendsWithDeliveries) {
  hb::ClusterConfig config;
  config.protocol = hb::Config{2, 8, proto::Variant::Binary, true};
  config.participants = 1;
  config.seed = 3;
  hb::Cluster cluster{config};
  std::set<std::uint64_t> sent_ids;
  std::vector<std::uint64_t> reply_ids;
  std::vector<std::uint64_t> delivered_to_coordinator;
  cluster.on_protocol_event([&](const hb::ProtocolEvent& event) {
    using Kind = hb::ProtocolEvent::Kind;
    switch (event.kind) {
      case Kind::CoordinatorBeat:
      case Kind::ParticipantReplied:
      case Kind::ParticipantJoinBeat:
        EXPECT_GT(event.msg_id, 0u);
        sent_ids.insert(event.msg_id);
        if (event.kind == Kind::ParticipantReplied) {
          reply_ids.push_back(event.msg_id);
        }
        break;
      case Kind::CoordinatorReceivedBeat:
        delivered_to_coordinator.push_back(event.msg_id);
        break;
      default:
        break;
    }
  });
  cluster.start();
  cluster.run_until(200);
  ASSERT_FALSE(reply_ids.empty());
  ASSERT_FALSE(delivered_to_coordinator.empty());
  // Ids are assigned monotonically at send time.
  for (std::size_t i = 1; i < reply_ids.size(); ++i) {
    EXPECT_LT(reply_ids[i - 1], reply_ids[i]);
  }
  // Every delivery observed at the coordinator is one of the sends.
  for (const std::uint64_t id : delivered_to_coordinator) {
    EXPECT_TRUE(sent_ids.contains(id));
  }
}

// --- FaultSchedule serialization -----------------------------------------

RunSpec sample_spec() {
  RunSpec spec;
  spec.variant = Variant::Dynamic;
  spec.tmin = 2;
  spec.tmax = 8;
  spec.participants = 3;
  spec.seed = 77;
  spec.horizon = 500;
  spec.schedule.actions = {
      {FaultKind::SetBurst, 10, 0, 2, 0.25, 0.5, 0.875, 0, 0},
      {FaultKind::Partition, 20, 1, 2, 0, 0, 0, 0, 0},
      {FaultKind::Heal, 44, 1, 2, 0, 0, 0, 0, 0},
      {FaultKind::CrashParticipant, 60, 1, 0, 0, 0, 0, 0, 0},
      {FaultKind::SetDrift, 70, 2, 0, 0, 0, 0, 3, 2},
  };
  return spec;
}

TEST(FaultSchedule, SerializeParseRoundTrip) {
  const RunSpec spec = sample_spec();
  const auto parsed = parse_run(serialize_run(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
  // Serialization is canonical: a second round trip is byte-identical.
  EXPECT_EQ(serialize_run(*parsed), serialize_run(spec));
}

TEST(FaultSchedule, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_run("").has_value());
  EXPECT_FALSE(parse_run("{\"schedule\": \"other\"}").has_value());
  EXPECT_FALSE(parse_run("{\"schedule\": \"ahb-chaos\", \"variant\": "
                         "\"binary\", \"tmin\": 1}")
                   .has_value());
  std::string text = serialize_run(sample_spec());
  const auto pos = text.find("set-drift");
  text.replace(pos, 9, "no-such-f");
  EXPECT_FALSE(parse_run(text).has_value());
}

TEST(FaultSchedule, OutOfSpecClassification) {
  const proto::Timing timing{4, 16};
  FaultAction action;
  action.kind = FaultKind::SetDelay;
  action.d2 = 2;  // == tmin/2: the round trip still fits in tmin
  EXPECT_FALSE(action.out_of_spec(timing));
  action.d2 = 3;
  EXPECT_TRUE(action.out_of_spec(timing));
  action.kind = FaultKind::SetDrift;
  action.d1 = 2;
  action.d2 = 2;  // identity rate
  EXPECT_FALSE(action.out_of_spec(timing));
  action.d2 = 1;
  EXPECT_TRUE(action.out_of_spec(timing));
  action.kind = FaultKind::SetLoss;
  action.p = 1.0;  // arbitrary loss is within the channel spec
  EXPECT_FALSE(action.out_of_spec(timing));
}

// --- determinism ----------------------------------------------------------

TEST(Determinism, SameSeedSameScheduleAndTrace) {
  RunSpec spec;
  spec.variant = Variant::Dynamic;
  spec.tmin = 2;
  spec.tmax = 4;
  spec.participants = 2;
  spec.seed = 11;
  spec.horizon = campaign_horizon(spec.timing(), spec.variant, true);
  const FaultSchedule once = generate_schedule(spec, false);
  const FaultSchedule twice = generate_schedule(spec, false);
  EXPECT_EQ(once, twice);
  spec.schedule = once;
  const RunResult a = run_chaos(spec, nullptr, true);
  const RunResult b = run_chaos(spec, nullptr, true);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(Determinism, IdentityDriftIsANoop) {
  RunSpec spec;
  spec.variant = Variant::Binary;
  spec.tmin = 1;
  spec.tmax = 16;
  spec.seed = 5;
  spec.horizon = 200;
  const RunResult plain = run_chaos(spec, nullptr, true);
  spec.schedule.actions = {{FaultKind::SetDrift, 30, 1, 0, 0, 0, 0, 1, 1}};
  const RunResult drifted = run_chaos(spec, nullptr, true);
  EXPECT_EQ(plain.trace, drifted.trace);
  EXPECT_TRUE(drifted.violations.empty());
}

TEST(Determinism, CampaignFingerprintInvariantUnderThreads) {
  CampaignOptions options;
  options.runs_per_config = 3;
  options.shrink = false;
  options.threads = 1;
  const CampaignResult one = run_campaign(options);
  options.threads = 8;
  const CampaignResult eight = run_campaign(options);
  EXPECT_EQ(one.runs, eight.runs);
  EXPECT_EQ(one.fingerprint, eight.fingerprint);
  EXPECT_EQ(one.violating_runs, eight.violating_runs);
  EXPECT_EQ(one.totals.sent, eight.totals.sent);
}

TEST(Determinism, CampaignRepeatsAreIdentical) {
  CampaignOptions options;
  options.runs_per_config = 2;
  options.out_of_spec = true;
  options.shrink = false;
  const CampaignResult a = run_campaign(options);
  const CampaignResult b = run_campaign(options);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.violating_runs, b.violating_runs);
  ASSERT_EQ(a.violating.size(), b.violating.size());
  for (std::size_t i = 0; i < a.violating.size(); ++i) {
    EXPECT_EQ(a.violating[i].spec, b.violating[i].spec);
    ASSERT_FALSE(a.violating[i].violations.empty());
    EXPECT_EQ(a.violating[i].violations.front().key(),
              b.violating[i].violations.front().key());
  }
}

// --- campaigns ------------------------------------------------------------

// In-spec faults (loss, bursts, partitions, duplication, crashes,
// leaves, delays within tmin/2) must never trip R1–R3: the corrected
// protocol's guarantees hold under the channel assumptions, so any
// violation here is a real bug. The 1000+-run version of this is the
// acceptance gate run by bench_chaos_campaign.
TEST(Campaign, InSpecRunsAreClean) {
  CampaignOptions options;
  options.runs_per_config = 10;  // 6 variants x 3 timings x 10 = 180 runs
  const CampaignResult result = run_campaign(options);
  EXPECT_EQ(result.runs, 180u);
  EXPECT_EQ(result.violating_runs, 0u) << "in-spec chaos found a protocol bug";
  // The profile actually exercised the fault models…
  EXPECT_GT(result.totals.lost + result.totals.blocked, 0u);
  EXPECT_GT(result.totals.duplicated, 0u);
  // …while staying inside the channel assumptions.
  EXPECT_EQ(result.totals.out_of_spec_delay, 0u);
}

TEST(Campaign, NegativeControlFiresShrinksAndReplays) {
  CampaignOptions options;
  options.runs_per_config = 4;  // 72 runs, every schedule out of spec
  options.out_of_spec = true;
  const CampaignResult result = run_campaign(options);
  EXPECT_GT(result.violating_runs, 0u)
      << "out-of-spec faults never tripped the monitors";
  ASSERT_FALSE(result.violating.empty());
  for (const auto& violating : result.violating) {
    ASSERT_FALSE(violating.violations.empty());
    EXPECT_TRUE(violating.spec.schedule.out_of_spec(violating.spec.timing()));
    // The shrunk schedule is no larger and still out of spec (the
    // violation needs the out-of-spec action to reproduce).
    EXPECT_LE(violating.shrunk.schedule.actions.size(),
              violating.spec.schedule.actions.size());
    EXPECT_FALSE(violating.shrunk.schedule.actions.empty());
    // Replaying the serialized artifact reproduces the identical
    // violation deterministically.
    const auto parsed = parse_run(violating.artifact);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, violating.shrunk);
    const MonitorBounds bounds = MonitorBounds::defaults(
        parsed->timing(), parsed->variant, parsed->fixed_bounds);
    const RunResult replay_a = run_chaos(*parsed, &bounds, true);
    const RunResult replay_b = run_chaos(*parsed, &bounds, true);
    ASSERT_FALSE(replay_a.violations.empty());
    EXPECT_EQ(replay_a.trace, replay_b.trace);
    ASSERT_EQ(replay_a.violations.size(), replay_b.violations.size());
    EXPECT_EQ(replay_a.violations.front().key(),
              replay_b.violations.front().key());
    const auto& target = violating.violations.front();
    EXPECT_TRUE(std::any_of(
        replay_a.violations.begin(), replay_a.violations.end(),
        [&](const Violation& v) {
          return v.requirement == target.requirement && v.node == target.node;
        }));
  }
}

// --- mutation canary ------------------------------------------------------

/// A deterministic out-of-spec reproducer: slow participant clock (rate
/// 1/2) plus a coordinator crash. The drifting participant reaches its
/// local inactivation deadline far too late in global time, missing the
/// R3 bound.
RunSpec drifted_r3_spec() {
  RunSpec spec;
  spec.variant = Variant::Binary;
  spec.tmin = 1;
  spec.tmax = 16;
  spec.participants = 1;
  spec.seed = 9;
  spec.horizon = 400;
  spec.schedule.actions = {
      {FaultKind::SetDrift, 0, 1, 0, 0, 0, 0, 1, 2},
      {FaultKind::CrashCoordinator, 10, 0, 0, 0, 0, 0, 0, 0},
  };
  return spec;
}

TEST(MutationCanary, LoosenedBoundSilencesTheNegativeControl) {
  const RunSpec spec = drifted_r3_spec();
  EXPECT_TRUE(spec.schedule.out_of_spec(spec.timing()));

  // Sound bounds: the drifted run violates R3.
  const RunResult strict = run_chaos(spec);
  ASSERT_FALSE(strict.violations.empty());
  EXPECT_TRUE(std::any_of(strict.violations.begin(), strict.violations.end(),
                          [](const Violation& v) {
                            return v.requirement == 3 && v.node == 1;
                          }));

  // Artificially loosened R3 slack: the same run must stop reporting
  // the violation — the proof the monitor deadline is what bites.
  MonitorBounds loose = MonitorBounds::defaults(
      spec.timing(), spec.variant, spec.fixed_bounds);
  loose.r3_slack += 10 * spec.tmax;
  const RunResult lenient = run_chaos(spec, &loose);
  EXPECT_TRUE(std::none_of(lenient.violations.begin(),
                           lenient.violations.end(), [](const Violation& v) {
                             return v.requirement == 3;
                           }));
}

TEST(MutationCanary, ShrunkReproducerReplaysFromSerializedForm) {
  const RunSpec spec = drifted_r3_spec();
  const RunSpec shrunk = shrink_run(spec);
  ASSERT_FALSE(shrunk.schedule.actions.empty());
  EXPECT_LE(shrunk.schedule.actions.size(), spec.schedule.actions.size());
  const auto parsed = parse_run(serialize_run(shrunk));
  ASSERT_TRUE(parsed.has_value());
  const RunResult replay = run_chaos(*parsed);
  EXPECT_TRUE(std::any_of(replay.violations.begin(), replay.violations.end(),
                          [](const Violation& v) {
                            return v.requirement == 3 && v.node == 1;
                          }));
}

}  // namespace
}  // namespace ahb::chaos
