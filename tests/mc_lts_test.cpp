#include <gtest/gtest.h>

#include <algorithm>

#include "mc/lts.hpp"

namespace ahb::mc {
namespace {

/// Handcrafted LTS builder for reduction tests.
Lts make_lts(int states, int initial,
             std::initializer_list<std::tuple<int, const char*, int>> edges) {
  Lts lts;
  lts.state_count = states;
  lts.initial = initial;
  for (const auto& [src, label, dst] : edges) {
    lts.edges.push_back(Lts::Edge{src, lts.label_id(label), dst});
  }
  return lts;
}

TEST(Lts, LabelIdInternsOnce) {
  Lts lts;
  EXPECT_EQ(lts.label_id("a"), 0);
  EXPECT_EQ(lts.label_id("b"), 1);
  EXPECT_EQ(lts.label_id("a"), 0);
  EXPECT_EQ(lts.alphabet.size(), 2u);
}

TEST(Lts, HideRenamesToTau) {
  auto lts = make_lts(2, 0, {{0, "keep", 1}, {1, "drop", 0}});
  const auto hidden =
      hide(lts, [](const std::string& l) { return l == "drop"; });
  int taus = 0, keeps = 0;
  for (const auto& e : hidden.edges) {
    const auto& label = hidden.alphabet[static_cast<std::size_t>(e.label)];
    if (label == kTau) ++taus;
    if (label == "keep") ++keeps;
  }
  EXPECT_EQ(taus, 1);
  EXPECT_EQ(keeps, 1);
}

TEST(Lts, BisimMergesIdenticalBranches) {
  // Two states with identical future behaviour collapse into one.
  //   0 -a-> 1 -b-> 3
  //   0 -a-> 2 -b-> 3
  const auto lts =
      make_lts(4, 0, {{0, "a", 1}, {0, "a", 2}, {1, "b", 3}, {2, "b", 3}});
  const auto reduced = bisim_reduce(lts);
  EXPECT_EQ(reduced.state_count, 3);  // {0}, {1,2}, {3}
}

TEST(Lts, BisimKeepsDistinguishableStates) {
  //   1 can do b, 2 can do c: not bisimilar.
  const auto lts =
      make_lts(4, 0, {{0, "a", 1}, {0, "a", 2}, {1, "b", 3}, {2, "c", 3}});
  const auto reduced = bisim_reduce(lts);
  EXPECT_EQ(reduced.state_count, 4);
}

TEST(Lts, BisimQuotientPreservesInitial) {
  const auto lts = make_lts(3, 1, {{1, "a", 2}, {2, "a", 1}, {0, "a", 0}});
  const auto reduced = bisim_reduce(lts);
  // From the (reduced) initial state an "a" must still be possible.
  bool has_a_from_init = false;
  for (const auto& e : reduced.edges) {
    if (e.src == reduced.initial) has_a_from_init = true;
  }
  EXPECT_TRUE(has_a_from_init);
}

TEST(Lts, WeakTraceCollapsesTauChains) {
  //   0 -tau-> 1 -tau-> 2 -a-> 3 : weak traces = {eps, a}
  const auto lts =
      make_lts(4, 0, {{0, "tau", 1}, {1, "tau", 2}, {2, "a", 3}});
  const auto reduced = weak_trace_reduce(lts);
  EXPECT_EQ(reduced.state_count, 2);
  ASSERT_EQ(reduced.edges.size(), 1u);
  EXPECT_EQ(reduced.alphabet[static_cast<std::size_t>(reduced.edges[0].label)],
            "a");
}

TEST(Lts, WeakTraceDeterminizesNondeterminism) {
  //   0 -a-> 1 -b-> 3 ; 0 -a-> 2 -c-> 4 : efter "a" both b and c possible.
  const auto lts =
      make_lts(5, 0, {{0, "a", 1}, {0, "a", 2}, {1, "b", 3}, {2, "c", 4}});
  const auto reduced = weak_trace_reduce(lts);
  // Deterministic: exactly one a-edge from the initial state.
  int a_edges = 0;
  for (const auto& e : reduced.edges) {
    if (e.src == reduced.initial &&
        reduced.alphabet[static_cast<std::size_t>(e.label)] == "a") {
      ++a_edges;
    }
  }
  EXPECT_EQ(a_edges, 1);
}

TEST(Lts, WeakTracePreservesTraceSet) {
  // tau-branching: 0 -tau-> 1 -a-> 2 and 0 -b-> 3. Weak traces: a, b.
  const auto lts =
      make_lts(4, 0, {{0, "tau", 1}, {1, "a", 2}, {0, "b", 3}});
  const auto reduced = weak_trace_reduce(lts);
  std::vector<std::string> initial_labels;
  for (const auto& e : reduced.edges) {
    if (e.src == reduced.initial) {
      initial_labels.push_back(
          reduced.alphabet[static_cast<std::size_t>(e.label)]);
    }
  }
  std::sort(initial_labels.begin(), initial_labels.end());
  EXPECT_EQ(initial_labels, (std::vector<std::string>{"a", "b"}));
}

TEST(Lts, OutReturnsOutgoingEdges) {
  const auto lts = make_lts(3, 0, {{0, "a", 1}, {0, "b", 2}, {1, "c", 2}});
  EXPECT_EQ(lts.out(0).size(), 2u);
  EXPECT_EQ(lts.out(1).size(), 1u);
  EXPECT_EQ(lts.out(2).size(), 0u);
}

}  // namespace
}  // namespace ahb::mc
