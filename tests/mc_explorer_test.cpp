#include <gtest/gtest.h>

#include "mc/explorer.hpp"
#include "ta/network.hpp"

namespace ahb::mc {
namespace {

using ta::ChanKind;
using ta::Edge;
using ta::LocKind;
using ta::StateMut;
using ta::StateView;
using ta::SyncDir;

/// Counter automaton: x counts 0..9 via internal steps.
ta::Network counter_net() {
  ta::Network net;
  const auto a = net.add_automaton("counter");
  const auto l = net.add_location(a, "run");
  const auto x = net.add_var("x", 0);
  net.add_edge(a, Edge{.src = l,
                       .dst = l,
                       .guard = [x](const StateView& v) {
                         return v.var(x) < 9;
                       },
                       .effect = [x](StateMut& m) { m.set(x, m.var(x) + 1); },
                       .label = "inc"});
  net.freeze();
  return net;
}

TEST(Explorer, ReachFindsTarget) {
  const auto net = counter_net();
  Explorer ex{net};
  const auto r = ex.reach([](const StateView& v) {
    return v.var(ta::VarId{0}) == 5;
  });
  EXPECT_TRUE(r.found);
  // Shortest path: initial + 5 increments.
  EXPECT_EQ(r.trace.size(), 6u);
  EXPECT_EQ(r.trace.back().state[1], 5);  // slot 1 = the variable
  EXPECT_EQ(r.trace[1].action, "counter.inc");
}

TEST(Explorer, ReachUnreachableIsCompleteNegative) {
  const auto net = counter_net();
  Explorer ex{net};
  const auto r = ex.reach([](const StateView& v) {
    return v.var(ta::VarId{0}) == 42;
  });
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.stats.states, 10u);  // x in 0..9
}

TEST(Explorer, TargetInInitialState) {
  const auto net = counter_net();
  Explorer ex{net};
  const auto r = ex.reach([](const StateView&) { return true; });
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.trace.size(), 1u);
  EXPECT_TRUE(r.trace[0].action.empty());
  // The initial state answers the query exactly; nothing was truncated.
  EXPECT_TRUE(r.complete);
}

TEST(Explorer, MaxStatesLimitMakesSearchIncomplete) {
  const auto net = counter_net();
  Explorer ex{net};
  SearchLimits limits;
  limits.max_states = 3;
  const auto r = ex.reach(
      [](const StateView& v) { return v.var(ta::VarId{0}) == 42; }, limits);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.complete);
  // The cap is checked before interning: the store never overshoots.
  EXPECT_LE(r.stats.states, 3u);
}

TEST(Explorer, MaxStatesNeverExceededInParallelRuns) {
  const auto net = counter_net();
  Explorer ex{net};
  for (unsigned threads : {2u, 4u}) {
    SearchLimits limits;
    limits.max_states = 4;
    limits.threads = threads;
    const auto r = ex.reach(
        [](const StateView& v) { return v.var(ta::VarId{0}) == 42; }, limits);
    EXPECT_FALSE(r.found);
    EXPECT_FALSE(r.complete);
    EXPECT_LE(r.stats.states, 4u) << "threads=" << threads;
  }
}

TEST(Explorer, ParallelReachMatchesSequential) {
  const auto net = counter_net();
  Explorer ex{net};
  const auto target = [](const StateView& v) {
    return v.var(ta::VarId{0}) == 7;
  };
  SearchLimits seq;
  seq.threads = 1;
  const auto r1 = ex.reach(target, seq);
  for (unsigned threads : {2u, 8u}) {
    SearchLimits limits;
    limits.threads = threads;
    const auto rn = ex.reach(target, limits);
    EXPECT_EQ(rn.found, r1.found) << "threads=" << threads;
    EXPECT_EQ(rn.trace.size(), r1.trace.size()) << "threads=" << threads;
    EXPECT_EQ(rn.stats.depth, r1.stats.depth) << "threads=" << threads;
  }
}

TEST(Explorer, DepthLimitStopsBfs) {
  const auto net = counter_net();
  Explorer ex{net};
  SearchLimits limits;
  limits.max_depth = 2;
  const auto r = ex.reach(
      [](const StateView& v) { return v.var(ta::VarId{0}) == 9; }, limits);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.complete);
  EXPECT_LE(r.stats.depth, 2u);
}

TEST(Explorer, FindDeadlockOnDeadEnd) {
  ta::Network net;
  const auto a = net.add_automaton("a");
  const auto c = net.add_clock("c", 5);
  // Invariant caps time at 2 and there is no outgoing edge: timelock.
  net.add_location(a, "trap", LocKind::Normal,
                   [c](const StateView& v) { return v.clk(c) <= 2; });
  net.freeze();
  Explorer ex{net};
  const auto r = ex.find_deadlock();
  EXPECT_TRUE(r.found);
  // Deadlock state: c == 2 (tick to 3 forbidden, no edges).
  EXPECT_EQ(r.trace.back().state[1], 2);
}

TEST(Explorer, NoDeadlockInIdleSystem) {
  ta::Network net;
  const auto a = net.add_automaton("a");
  net.add_location(a, "idle");
  net.add_clock("c", 3);
  net.freeze();
  Explorer ex{net};
  const auto r = ex.find_deadlock();
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.complete);
}

TEST(Explorer, CheckInvariantHolds) {
  const auto net = counter_net();
  Explorer ex{net};
  const auto r = ex.check_invariant([](const StateView& v) {
    return v.var(ta::VarId{0}) <= 9;
  });
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.complete);
}

TEST(Explorer, CheckInvariantViolatedGivesShortestTrace) {
  const auto net = counter_net();
  Explorer ex{net};
  const auto r = ex.check_invariant([](const StateView& v) {
    return v.var(ta::VarId{0}) < 3;
  });
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.trace.size(), 4u);  // init, 1, 2, 3
}

TEST(Explorer, ExploreAllCountsWholeSpace) {
  const auto net = counter_net();
  Explorer ex{net};
  const auto stats = ex.explore_all();
  EXPECT_EQ(stats.states, 10u);
  EXPECT_GT(stats.transitions, 0u);
}

TEST(Explorer, TraceActionsAreConsistent) {
  // Two parallel automata: the trace must interleave labelled actions
  // that actually connect consecutive states.
  ta::Network net;
  const auto ch = net.add_channel("go", ChanKind::Handshake);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "a0");
  const auto a1 = net.add_location(a, "a1");
  net.add_edge(a, Edge{.src = a0, .dst = a1, .chan = ch,
                       .dir = SyncDir::Send, .label = "snd"});
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "b0");
  const auto b1 = net.add_location(b, "b1");
  net.add_edge(b, Edge{.src = b0, .dst = b1, .chan = ch,
                       .dir = SyncDir::Recv, .label = "rcv"});
  net.freeze();
  Explorer ex{net};
  const auto r = ex.reach([&](const StateView& v) {
    return v.loc(ta::AutomatonId{0}) == a1 && v.loc(ta::AutomatonId{1}) == b1;
  });
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[1].action, "a.snd >> b.rcv");
}

}  // namespace
}  // namespace ahb::mc
