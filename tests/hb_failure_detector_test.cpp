#include <gtest/gtest.h>

#include "hb/failure_detector.hpp"

namespace ahb::hb {
namespace {

Config static_config(Time tmin, Time tmax) {
  Config c;
  c.tmin = tmin;
  c.tmax = tmax;
  c.variant = Variant::Static;
  return c;
}

/// Drives the detector round by round; `replies` tells which members
/// answer each round.
struct Harness {
  FailureDetector detector;
  Time now = 0;

  explicit Harness(int members, int suspect_after = 2)
      : detector(static_config(1, 16), ids(members), suspect_after) {
    detector.start(0);
  }

  static std::vector<int> ids(int n) {
    std::vector<int> out;
    for (int i = 1; i <= n; ++i) out.push_back(i);
    return out;
  }

  void round(const std::vector<int>& replies) {
    now = detector.next_event_time();
    detector.on_elapsed(now);
    for (const int id : replies) {
      detector.on_message(now + 1, Message{id, true});
    }
  }
};

TEST(FailureDetector, NoSuspicionWhileEveryoneReplies) {
  Harness h{3};
  for (int r = 0; r < 10; ++r) h.round({1, 2, 3});
  EXPECT_TRUE(h.detector.suspected().empty());
  EXPECT_FALSE(h.detector.suspects(2));
  EXPECT_EQ(h.detector.missed_rounds(2), 0);
}

TEST(FailureDetector, SilentMemberBecomesSuspected) {
  // Misses are accounted when the round *closes* (at the next timeout):
  // after round k is driven, the suspicion state reflects round k-1.
  Harness h{3, /*suspect_after=*/2};
  h.round({1, 2, 3});
  h.round({1, 3});  // member 2 silent in this round...
  h.round({1, 3});  // ...which closes here: 1 recorded miss
  EXPECT_EQ(h.detector.missed_rounds(2), 1);
  EXPECT_FALSE(h.detector.suspects(2));
  h.round({1, 3});  // second silent round closes: 2 recorded misses
  EXPECT_EQ(h.detector.missed_rounds(2), 2);
  EXPECT_TRUE(h.detector.suspects(2));
  EXPECT_EQ(h.detector.suspected(), (std::vector<int>{2}));
  EXPECT_FALSE(h.detector.suspects(1));
}

TEST(FailureDetector, SuspicionIsRevokedOnRecovery) {
  // Eventually-perfect style: a reply restores trust (tm resets to
  // tmax at the close of the round in which the beat arrived).
  Harness h{2, 1};
  h.round({1, 2});
  h.round({1});     // member 2 silent here
  h.round({1, 2});  // miss recorded as the round closes; 2 answers again
  EXPECT_TRUE(h.detector.suspects(2));
  h.round({1, 2});  // the reply round closes: trust restored
  EXPECT_FALSE(h.detector.suspects(2));
  EXPECT_EQ(h.detector.missed_rounds(2), 0);
}

TEST(FailureDetector, DetectorDownSuspectsEveryone) {
  Harness h{2, 3};
  // Nobody ever replies: the coordinator accelerates to inactivation.
  for (int r = 0; r < 10 && !h.detector.down(); ++r) h.round({});
  EXPECT_TRUE(h.detector.down());
  EXPECT_TRUE(h.detector.suspects(1));
  EXPECT_TRUE(h.detector.suspects(2));
}

TEST(FailureDetector, UnknownMemberIsNotSuspected) {
  Harness h{2};
  EXPECT_FALSE(h.detector.suspects(99));
  EXPECT_EQ(h.detector.missed_rounds(99), 0);
}

TEST(FailureDetector, ThresholdOneIsAggressive) {
  Harness h{1, 1};
  h.round({1});
  h.round({});   // silent round...
  h.round({});   // ...closes: one miss suffices at threshold 1
  EXPECT_TRUE(h.detector.suspects(1));
}

TEST(FailureDetector, RejectsTwoPhaseVariant) {
  Config cfg = static_config(1, 16);
  cfg.variant = Variant::TwoPhase;
  EXPECT_DEATH(FailureDetector(cfg, {1}), "precondition");
}

}  // namespace
}  // namespace ahb::hb
