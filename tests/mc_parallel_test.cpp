// Determinism of the parallel layer-synchronous BFS explorer.
//
// The contract (DESIGN.md "Parallel exploration"):
//  - verdicts, BFS depths and counterexample lengths are identical for
//    every thread count, including the sequential path (threads=1);
//  - runs that *complete* (no target hit, no limit) visit exactly the
//    same state set regardless of the thread count, so states and
//    transitions counts match bit-for-bit;
//  - runs that *find* a target stop within the final layer. Parallel
//    runs always finish that layer, so any two thread counts > 1 agree
//    with each other on the counts; the sequential run may stop mid-layer
//    with fewer states, which is why only verdict/depth/length equality
//    is asserted against it.
//
// The sweep mirrors Table 1 of the source analysis: the binary and
// static protocols at tmax = 10, tmin in {1, 4, 5, 9, 10}.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "models/heartbeat_model.hpp"

namespace ahb::models {
namespace {

class ParallelTable1Sweep
    : public ::testing::TestWithParam<std::tuple<Flavor, int>> {};

TEST_P(ParallelTable1Sweep, VerdictsAndCountsAgreeAcrossThreadCounts) {
  const auto [flavor, tmin] = GetParam();
  BuildOptions options;
  options.timing = Timing{tmin, 10};
  options.participants = 1;

  const std::vector<unsigned> thread_counts{1, 2, 8};
  std::vector<Verdicts> runs;
  for (unsigned threads : thread_counts) {
    mc::SearchLimits limits;
    limits.threads = threads;
    runs.push_back(verify_requirements(flavor, options, limits));
  }

  const auto check = [&](auto verdict_of, auto stats_of, const char* name) {
    const Verdicts& seq = runs.front();
    for (std::size_t i = 1; i < runs.size(); ++i) {
      SCOPED_TRACE(std::string{name} + " threads=" +
                   std::to_string(thread_counts[i]));
      EXPECT_EQ(verdict_of(runs[i]), verdict_of(seq));
      EXPECT_EQ(stats_of(runs[i]).depth, stats_of(seq).depth);
      if (verdict_of(seq)) {
        // Requirement holds: the search was exhaustive, so every thread
        // count visits exactly the same state space.
        EXPECT_EQ(stats_of(runs[i]).states, stats_of(seq).states);
        EXPECT_EQ(stats_of(runs[i]).transitions, stats_of(seq).transitions);
      } else if (i >= 2) {
        // Counterexample found: parallel runs finish the final layer, so
        // they agree with each other (compare against the first parallel
        // run, runs[1]).
        EXPECT_EQ(stats_of(runs[i]).states, stats_of(runs[1]).states);
        EXPECT_EQ(stats_of(runs[i]).transitions,
                  stats_of(runs[1]).transitions);
      }
    }
  };
  check([](const Verdicts& v) { return v.r1; },
        [](const Verdicts& v) { return v.r1_stats; }, "R1");
  check([](const Verdicts& v) { return v.r2; },
        [](const Verdicts& v) { return v.r2_stats; }, "R2");
  check([](const Verdicts& v) { return v.r3; },
        [](const Verdicts& v) { return v.r3_stats; }, "R3");
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ParallelTable1Sweep,
    ::testing::Combine(::testing::Values(Flavor::Binary, Flavor::Static),
                       ::testing::Values(1, 4, 5, 9, 10)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) + "_tmin" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ParallelCounterexamples, ShortestTraceLengthIsThreadCountInvariant) {
  // Binary protocol at tmin=1, tmax=10: R1 is violated (2*tmin <= tmax),
  // so the watchdog's Error location is reachable. BFS guarantees the
  // trace is shortest; the parallel explorer must reproduce its length
  // (parent links always point one layer back, and the first layer
  // containing any violation is schedule-independent).
  BuildOptions options;
  options.timing = Timing{1, 10};
  options.participants = 1;
  options.r1_monitor = true;
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  mc::Explorer ex{model.net()};

  mc::SearchLimits seq;
  seq.threads = 1;
  const auto base = ex.reach(model.r1_violation(), seq);
  ASSERT_TRUE(base.found);

  for (unsigned threads : {2u, 8u}) {
    mc::SearchLimits limits;
    limits.threads = threads;
    const auto r = ex.reach(model.r1_violation(), limits);
    ASSERT_TRUE(r.found) << "threads=" << threads;
    EXPECT_EQ(r.trace.size(), base.trace.size()) << "threads=" << threads;
    EXPECT_EQ(r.stats.depth, base.stats.depth) << "threads=" << threads;
    // Every step of the reconstructed trace must carry a valid action
    // label (action_between asserts if states are not connected, but an
    // empty label would mean the lookup silently failed).
    for (std::size_t i = 1; i < r.trace.size(); ++i) {
      EXPECT_FALSE(r.trace[i].action.empty())
          << "threads=" << threads << " step=" << i;
    }
  }
}

TEST(ParallelCounterexamples, R2TraceLengthIsThreadCountInvariant) {
  // Static protocol at tmin=10, tmax=10: R2 is violated (tmin == tmax).
  BuildOptions options;
  options.timing = Timing{10, 10};
  options.participants = 1;
  const auto model = HeartbeatModel::build(Flavor::Static, options);
  mc::Explorer ex{model.net()};

  mc::SearchLimits seq;
  seq.threads = 1;
  const auto base = ex.reach(model.r2_violation_any(), seq);
  ASSERT_TRUE(base.found);

  for (unsigned threads : {2u, 8u}) {
    mc::SearchLimits limits;
    limits.threads = threads;
    const auto r = ex.reach(model.r2_violation_any(), limits);
    ASSERT_TRUE(r.found) << "threads=" << threads;
    EXPECT_EQ(r.trace.size(), base.trace.size()) << "threads=" << threads;
  }
}

TEST(ParallelCounterexamples, ParallelDeadlockSearchAgrees) {
  // Deadlock freedom of the binary protocol: the stop predicate itself
  // generates successors (has_successor), exercising the reentrant
  // stop-scratch path of every worker.
  BuildOptions options;
  options.timing = Timing{4, 10};
  options.participants = 1;
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  mc::Explorer ex{model.net()};

  mc::SearchLimits seq;
  seq.threads = 1;
  const auto base = ex.find_deadlock(seq);

  for (unsigned threads : {2u, 8u}) {
    mc::SearchLimits limits;
    limits.threads = threads;
    const auto r = ex.find_deadlock(limits);
    EXPECT_EQ(r.found, base.found) << "threads=" << threads;
    EXPECT_EQ(r.complete, base.complete) << "threads=" << threads;
    if (!base.found) {
      EXPECT_EQ(r.stats.states, base.stats.states) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ahb::models
