#include <gtest/gtest.h>

#include "mc/bitstate.hpp"
#include "models/heartbeat_model.hpp"
#include "util/rng.hpp"

namespace ahb::mc {
namespace {

TEST(BitstateFilter, FreshThenSeen) {
  BitstateFilter filter{16};
  EXPECT_TRUE(filter.insert(0x1234));
  EXPECT_FALSE(filter.insert(0x1234));
  EXPECT_TRUE(filter.contains(0x1234));
  EXPECT_FALSE(filter.contains(0x9999));
}

TEST(BitstateFilter, LowCollisionRateWhenSized) {
  // 2^20 bits, 10k states: the false-new rate should be tiny.
  BitstateFilter filter{20};
  Rng rng{5};
  int duplicates = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!filter.insert(rng())) ++duplicates;
  }
  EXPECT_LT(duplicates, 10);
}

TEST(BitstateFilter, SaturatesWhenUndersized) {
  // 2^10 bits with 3 probes each saturate after a few hundred states.
  BitstateFilter filter{10};
  Rng rng{5};
  int fresh = 0;
  for (int i = 0; i < 5000; ++i) {
    if (filter.insert(rng())) ++fresh;
  }
  EXPECT_LT(fresh, 1200);  // most insertions collide once saturated
}

TEST(BitstateFilter, MemoryMatchesLog2) {
  BitstateFilter filter{20};
  EXPECT_EQ(filter.bit_count(), 1u << 20);
  EXPECT_EQ(filter.memory_bytes(), (1u << 20) / 8);
}

TEST(ReachBitstate, FindsKnownViolationWithWitness) {
  // The binary protocol's R3 race at tmin == tmax is found by the exact
  // checker; supertrace must find it too (positives are exact) and the
  // witness trace must end in a violating state.
  models::BuildOptions options;
  options.timing = {4, 4};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  const auto pred = model.r3_violation();
  const auto result = reach_bitstate(model.net(), pred, 22);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.complete);
  ASSERT_FALSE(result.trace.empty());
  const ta::StateView v{model.net(), result.trace.back().state};
  EXPECT_TRUE(pred(v));
  // Consecutive trace states are connected by real transitions.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    bool connected = false;
    for (const auto& t : model.net().successors(result.trace[i - 1].state)) {
      if (t.target == result.trace[i].state) connected = true;
    }
    EXPECT_TRUE(connected) << "disconnected at step " << i;
  }
}

TEST(ReachBitstate, NegativeAnswerIsNeverClaimedComplete) {
  models::BuildOptions options;
  options.timing = {1, 4};  // R3 holds here
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  const auto result = reach_bitstate(model.net(), model.r3_violation(), 22);
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.complete);
  EXPECT_GT(result.stats.states, 1000u);
}

TEST(ReachBitstate, MemoryStaysAtFilterSize) {
  models::BuildOptions options;
  options.timing = {1, 6};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  const auto result = reach_bitstate(
      model.net(), [](const ta::StateView&) { return false; }, 20);
  EXPECT_EQ(result.stats.store_bytes, (1u << 20) / 8);
}

TEST(ReachBitstate, TargetInInitialState) {
  models::BuildOptions options;
  options.timing = {1, 4};
  const auto model =
      models::HeartbeatModel::build(models::Flavor::Binary, options);
  const auto result = reach_bitstate(
      model.net(), [](const ta::StateView&) { return true; }, 16);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.trace.size(), 1u);
}

}  // namespace
}  // namespace ahb::mc
