// Tests for the rejoin extension (the source analysis's future work):
// a departed participant of the dynamic protocol may re-enter the join
// phase — at the model level (model-checked) and in the executable
// library (simulated).
#include <gtest/gtest.h>

#include "hb/cluster.hpp"
#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"

namespace ahb {
namespace {

using models::BuildOptions;
using models::Flavor;
using models::HeartbeatModel;

BuildOptions rejoin_options(int tmin, int tmax, bool fixed,
                            BuildOptions::Rejoin mode =
                                BuildOptions::Rejoin::Graceful) {
  BuildOptions options;
  options.timing = {tmin, tmax};
  options.rejoin = mode;
  options.fixed = fixed;
  return options;
}

TEST(RejoinModel, LeaveThenRejoinThenParticipateIsReachable) {
  const auto model =
      HeartbeatModel::build(Flavor::Dynamic, rejoin_options(1, 3, false));
  const auto& h = model.handles();
  mc::Explorer ex{model.net()};
  // A state where the participant is back in full membership (Alive,
  // registered) after having left: left flag cleared, jnd set, and we
  // passed through Left (witnessed by requiring a prior leave is implied
  // by left being cleared only on the rejoin edge; check both phases).
  const auto left_state = ex.reach([&](const ta::StateView& v) {
    return v.loc(h.parts[0].proc) == h.parts[0].l_left;
  });
  ASSERT_TRUE(left_state.found);
  const auto rejoined = ex.reach([&](const ta::StateView& v) {
    return v.loc(h.parts[0].proc) == h.parts[0].l_joining &&
           v.var(h.parts[0].left) == 0 && v.var(h.parts[0].jnd) == 0 &&
           v.clk(h.parts[0].wfb) == 0 && v.loc(h.p0) != h.l_nv;
  });
  EXPECT_TRUE(rejoined.found);
  // ... and all the way back to full membership.
  const auto participating = ex.reach([&](const ta::StateView& v) {
    return v.loc(h.parts[0].proc) == h.parts[0].l_alive &&
           v.var(h.parts[0].left) == 0;
  });
  EXPECT_TRUE(participating.found);
}

TEST(RejoinModel, NoDeadlockWithRejoin) {
  const auto model =
      HeartbeatModel::build(Flavor::Dynamic, rejoin_options(1, 3, false));
  mc::Explorer ex{model.net()};
  const auto r = ex.find_deadlock();
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.complete);
}

TEST(RejoinModel, FixedDynamicWithGracefulRejoinSatisfiesAllRequirements) {
  for (const int tmin : {1, 2, 3, 4}) {
    BuildOptions options = rejoin_options(tmin, 4, true);
    const auto verdicts =
        models::verify_requirements(Flavor::Dynamic, options);
    EXPECT_TRUE(verdicts.r1) << "tmin=" << tmin;
    EXPECT_TRUE(verdicts.r2) << "tmin=" << tmin;
    EXPECT_TRUE(verdicts.r3) << "tmin=" << tmin;
  }
}

TEST(RejoinModel, NaiveRejoinBreaksR2EvenInTheCorrectedProtocol) {
  // The reincarnation hazard: a stale leave beat still in flight is
  // processed after the new incarnation's join beat and de-registers it;
  // the joiner then starves and inactivates spuriously. Model checking
  // finds this even with both Section 6 fixes applied.
  BuildOptions options =
      rejoin_options(4, 4, true, BuildOptions::Rejoin::Naive);
  const auto verdicts = models::verify_requirements(Flavor::Dynamic, options);
  EXPECT_TRUE(verdicts.r1);
  EXPECT_FALSE(verdicts.r2) << "expected the reincarnation hazard";
  EXPECT_TRUE(verdicts.r3);
}

TEST(RejoinModel, GracefulRejoinWaitsOutTheLeaveBeat) {
  // At the same parameter point the graceful variant (rejoin only after
  // the leave's delay bound has drained) is safe.
  BuildOptions options =
      rejoin_options(4, 4, true, BuildOptions::Rejoin::Graceful);
  const auto verdicts = models::verify_requirements(Flavor::Dynamic, options);
  EXPECT_TRUE(verdicts.r2);
}

TEST(RejoinModel, RejoinRegistrationRestartsWaitingTimeFromTmax) {
  // The hb coordinator restarts a re-registered member's waiting time
  // from tmax; the model mirrors that on its join edge. The value is
  // behaviourally dead — the first round close after registration always
  // sees rcvd set (the join beat sets it), and next_wait(received=true)
  // resets tm regardless — so no trace can detect the reset. The state
  // space can: without it, departed-and-rejoined runs drag decayed tm
  // values through otherwise-identical states. The pinned count also
  // guards the stale-join adjudication: since deliver_join lost its
  // l_joining guard (engine semantics: any flag message registers), the
  // reachable set includes stale re-registration runs and their
  // stale_join latch — 229,528 states here, up from 102,765 under the
  // old voiding guard.
  const auto model =
      HeartbeatModel::build(Flavor::Dynamic, rejoin_options(2, 10, false));
  mc::Explorer ex{model.net()};
  const auto stats = ex.explore_all();
  EXPECT_EQ(stats.states, 229528u);
}

TEST(RejoinModel, UnfixedVerdictsMatchDynamicOracle) {
  // Rejoin adds behaviour but must not change the published verdicts:
  // R1 <=> 2*tmin > tmax, R2 <=> 2*tmin < tmax, R3 <=> tmin < tmax.
  for (const int tmin : {1, 2, 4}) {
    BuildOptions options = rejoin_options(tmin, 4, false);
    const auto verdicts =
        models::verify_requirements(Flavor::Dynamic, options);
    EXPECT_EQ(verdicts.r1, 2 * tmin > 4) << "tmin=" << tmin;
    EXPECT_EQ(verdicts.r2, 2 * tmin < 4) << "tmin=" << tmin;
    EXPECT_EQ(verdicts.r3, tmin < 4) << "tmin=" << tmin;
  }
}

TEST(RejoinLibrary, ParticipantRejoinRestartsJoinPhase) {
  hb::Config cfg;
  cfg.variant = hb::Variant::Dynamic;
  cfg.tmin = 2;
  cfg.tmax = 10;
  hb::Participant p{cfg, 3, false};
  p.start(0);
  p.on_message(4, hb::Message{0, true});  // joined
  p.request_leave();
  p.on_message(14, hb::Message{0, true});  // leaves
  ASSERT_EQ(p.status(), hb::Status::Left);

  const auto actions = p.rejoin(100);
  EXPECT_EQ(p.status(), hb::Status::Active);
  EXPECT_FALSE(p.joined());
  // The new incarnation's first join beat follows one join period
  // after the rejoin, like any join-phase entry.
  ASSERT_EQ(actions.messages.size(), 0u);
  EXPECT_EQ(p.next_event_time(), 102);  // first join beat at now + tmin

  p.on_message(105, hb::Message{0, true});
  EXPECT_TRUE(p.joined());
  EXPECT_EQ(p.status(), hb::Status::Active);
}

TEST(RejoinLibrary, ClusterLeaveRejoinRoundTrip) {
  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Dynamic;
  config.protocol.tmin = 2;
  config.protocol.tmax = 10;
  config.participants = 2;
  hb::Cluster cluster{config};
  cluster.leave_at(1, 200);
  cluster.rejoin_at(1, 500);
  cluster.start();

  cluster.run_until(400);
  EXPECT_EQ(cluster.participant(1).status(), hb::Status::Left);
  EXPECT_FALSE(cluster.coordinator().is_member(1));

  cluster.run_until(2000);
  EXPECT_EQ(cluster.participant(1).status(), hb::Status::Active);
  EXPECT_TRUE(cluster.participant(1).joined());
  EXPECT_TRUE(cluster.coordinator().is_member(1));
  EXPECT_EQ(cluster.coordinator().status(), hb::Status::Active);
}

TEST(RejoinLibrary, RejoinBeforeLeaveIsIgnoredByCluster) {
  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Dynamic;
  config.protocol.tmin = 2;
  config.protocol.tmax = 10;
  config.participants = 1;
  hb::Cluster cluster{config};
  cluster.rejoin_at(1, 50);  // participant never left: must be a no-op
  cluster.start();
  cluster.run_until(500);
  EXPECT_EQ(cluster.participant(1).status(), hb::Status::Active);
  EXPECT_EQ(cluster.coordinator().status(), hb::Status::Active);
}

}  // namespace
}  // namespace ahb
