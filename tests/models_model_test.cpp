// Structural and behavioural tests of the protocol models beyond the
// verdict sweeps: monitor behaviour, counterexample trace shapes,
// deadlock-freedom, and liveness (crash leads to network-wide
// deactivation) via accepting-cycle search.
#include <gtest/gtest.h>

#include "mc/explorer.hpp"
#include "mc/lts.hpp"
#include "mc/ndfs.hpp"
#include "models/heartbeat_model.hpp"
#include "models/standalone.hpp"

namespace ahb::models {
namespace {

using mc::Explorer;

TEST(HeartbeatModel, BuildsAllFlavors) {
  for (const Flavor f :
       {Flavor::Binary, Flavor::RevisedBinary, Flavor::TwoPhase,
        Flavor::Static, Flavor::Expanding, Flavor::Dynamic}) {
    BuildOptions options;
    options.timing = {1, 3};
    options.participants = is_multi(f) ? 2 : 1;
    options.r1_monitor = true;
    const auto model = HeartbeatModel::build(f, options);
    EXPECT_TRUE(model.net().frozen());
    EXPECT_EQ(model.handles().parts.size(),
              static_cast<std::size_t>(options.participants));
  }
}

TEST(HeartbeatModel, InitialStateIsAllActive) {
  BuildOptions options;
  options.timing = {2, 4};
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  const auto& h = model.handles();
  const ta::State init = model.net().initial_state();
  const ta::StateView v{model.net(), init};
  EXPECT_EQ(v.var(h.active0), 1);
  EXPECT_EQ(v.var(h.parts[0].active), 1);
  EXPECT_EQ(v.var(h.lost), 0);
  EXPECT_EQ(v.var(h.t), 4);         // starts at tmax
  EXPECT_EQ(v.var(h.parts[0].rcvd0), 1);  // rcvd initially true
}

TEST(HeartbeatModel, BinaryIsDeadlockFree) {
  // The published binary model has no reachable deadlock/timelock: every
  // potentially stuck corner is preempted by an invariant-forced event.
  for (const int tmin : {1, 2, 4}) {
    BuildOptions options;
    options.timing = {tmin, 4};
    const auto model = HeartbeatModel::build(Flavor::Binary, options);
    Explorer ex{model.net()};
    const auto r = ex.find_deadlock();
    EXPECT_FALSE(r.found) << "deadlock at tmin=" << tmin << ":\n";
    EXPECT_TRUE(r.complete);
  }
}

TEST(HeartbeatModel, FixedBinaryIsDeadlockFree) {
  for (const int tmin : {1, 2, 4}) {
    BuildOptions options;
    options.timing = {tmin, 4};
    options.fixed = true;
    const auto model = HeartbeatModel::build(Flavor::Binary, options);
    Explorer ex{model.net()};
    const auto r = ex.find_deadlock();
    EXPECT_FALSE(r.found) << "deadlock at tmin=" << tmin;
  }
}

TEST(HeartbeatModel, CrashOfParticipantLeadsToCoordinatorInactivation) {
  // Liveness via NDFS: there is no infinite run on which p[1] has
  // crashed while p[0] stays active — i.e. a crash always leads to
  // deactivation. This is the 1998 paper's central guarantee, checked
  // directly as a Büchi property rather than through a watchdog bound.
  BuildOptions options;
  options.timing = {2, 4};
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  const auto& h = model.handles();
  const auto result = mc::find_accepting_cycle(
      model.net(), [&](const ta::StateView& v) {
        return v.loc(h.parts[0].proc) == h.parts[0].l_v &&
               v.var(h.active0) == 1;
      });
  EXPECT_FALSE(result.cycle_found);
  EXPECT_TRUE(result.complete);
}

TEST(HeartbeatModel, CrashOfCoordinatorLeadsToParticipantInactivation) {
  BuildOptions options;
  options.timing = {2, 4};
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  const auto& h = model.handles();
  const auto result = mc::find_accepting_cycle(
      model.net(), [&](const ta::StateView& v) {
        return v.loc(h.p0) == h.l_v && v.var(h.parts[0].active) == 1;
      });
  EXPECT_FALSE(result.cycle_found);
  EXPECT_TRUE(result.complete);
}

TEST(HeartbeatModel, HealthyRunCanStayAliveForever) {
  // Sanity for the liveness encoding: with both processes alive a lasso
  // does exist (the protocol runs forever), so the checker is not
  // vacuously passing.
  BuildOptions options;
  options.timing = {2, 4};
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  const auto& h = model.handles();
  const auto result = mc::find_accepting_cycle(
      model.net(), [&](const ta::StateView& v) {
        return v.var(h.active0) == 1 && v.var(h.parts[0].active) == 1;
      });
  EXPECT_TRUE(result.cycle_found);
}

TEST(HeartbeatModel, R1MonitorArmsAndErrors) {
  BuildOptions options;
  options.timing = {1, 4};
  options.r1_monitor = true;
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  const auto& h = model.handles();
  Explorer ex{model.net()};
  // The monitor's error location is reachable (R1 fails for 2*tmin <=
  // tmax) and every such state has p[0] still active.
  const auto r = ex.reach(model.r1_violation());
  ASSERT_TRUE(r.found);
  const ta::StateView v{model.net(), r.trace.back().state};
  EXPECT_EQ(v.var(h.active0), 1);
  EXPECT_GT(v.clk(h.parts[0].mdelay), 2 * 4);
}

TEST(HeartbeatModel, R1ViolationRequiresMonitor) {
  BuildOptions options;
  options.timing = {1, 4};
  options.r1_monitor = false;
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  EXPECT_DEATH((void)model.r1_violation(), "precondition");
}

TEST(HeartbeatModel, R2WitnessHasNoLossAndAliveCoordinator) {
  BuildOptions options;
  options.timing = {4, 4};
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  const auto& h = model.handles();
  Explorer ex{model.net()};
  const auto r = ex.reach(model.r2_violation_any());
  ASSERT_TRUE(r.found);
  const ta::StateView v{model.net(), r.trace.back().state};
  EXPECT_EQ(v.var(h.lost), 0);
  EXPECT_EQ(v.var(h.active0), 1);
  EXPECT_EQ(v.loc(h.parts[0].proc), h.parts[0].l_nv);
}

TEST(HeartbeatModel, R3WitnessLeavesParticipantAlive) {
  BuildOptions options;
  options.timing = {4, 4};
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  const auto& h = model.handles();
  Explorer ex{model.net()};
  const auto r = ex.reach(model.r3_violation());
  ASSERT_TRUE(r.found);
  const ta::StateView v{model.net(), r.trace.back().state};
  EXPECT_EQ(v.var(h.lost), 0);
  EXPECT_EQ(v.loc(h.p0), h.l_nv);
  EXPECT_EQ(v.var(h.parts[0].active), 1);
}

TEST(HeartbeatModel, DynamicLeaveIsNotACrash) {
  // A participant that leaves gracefully must not trigger anyone's
  // non-voluntary inactivation: after a delivered leave, p[0] keeps
  // running. We check that "p[1] left and p[0] still alive much later"
  // is reachable without loss.
  BuildOptions options;
  options.timing = {1, 3};
  const auto model = HeartbeatModel::build(Flavor::Dynamic, options);
  const auto& h = model.handles();
  Explorer ex{model.net()};
  const auto r = ex.reach([&](const ta::StateView& v) {
    return v.loc(h.parts[0].proc) == h.parts[0].l_left &&
           v.var(h.lost) == 0 && v.var(h.active0) == 1 &&
           v.var(h.parts[0].jnd) == 0;  // leave registered at p[0]
  });
  EXPECT_TRUE(r.found);
}

TEST(HeartbeatModel, DynamicLeftParticipantNeverNvInactivates) {
  BuildOptions options;
  options.timing = {1, 3};
  const auto model = HeartbeatModel::build(Flavor::Dynamic, options);
  const auto& h = model.handles();
  Explorer ex{model.net()};
  // Left is a terminal location; NV from Left must be unreachable.
  const auto r = ex.reach([&](const ta::StateView& v) {
    return v.loc(h.parts[0].proc) == h.parts[0].l_nv &&
           v.var(h.parts[0].left) == 1;
  });
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.complete);
}

TEST(HeartbeatModel, JoinRegistrationRequiresDeliveredBeat) {
  // In the expanding protocol, a participant only considers itself
  // joined (leaves the Joining location) after receiving p[0]'s beat,
  // which in turn requires p[0] to have registered it (jnd == 1).
  BuildOptions options;
  options.timing = {1, 3};
  const auto model = HeartbeatModel::build(Flavor::Expanding, options);
  const auto& h = model.handles();
  Explorer ex{model.net()};
  const auto r = ex.reach([&](const ta::StateView& v) {
    return v.loc(h.parts[0].proc) == h.parts[0].l_alive &&
           v.var(h.parts[0].jnd) == 0;
  });
  EXPECT_FALSE(r.found) << "participant joined without registration";
  EXPECT_TRUE(r.complete);
}

TEST(Standalone, P0LtsIsSmallAndDeterministicallyExtractable) {
  const auto net = build_standalone_p0(Timing{1, 2});
  const auto lts1 = mc::extract_lts(net);
  const auto lts2 = mc::extract_lts(net);
  EXPECT_EQ(lts1.state_count, lts2.state_count);
  EXPECT_EQ(lts1.edges.size(), lts2.edges.size());
  EXPECT_GT(lts1.state_count, 0);
  EXPECT_LT(lts1.state_count, 100);
}

TEST(Standalone, P1CanInactivateAfterSilence) {
  const auto net = build_standalone_p1(Timing{1, 2});
  Explorer ex{net};
  // p1's NV location (index 3) is reachable when the environment stays
  // silent for 3*tmax - tmin.
  const auto r = ex.reach([&](const ta::StateView& v) {
    return v.loc(ta::AutomatonId{0}) == 3;
  });
  EXPECT_TRUE(r.found);
}

TEST(Options, BoundHelpers) {
  const Timing t{3, 10};
  EXPECT_EQ(r1_bound(t, false), 20);
  EXPECT_EQ(r1_bound(t, true), 27);  // 2*3 <= 10 -> 3*10-3
  EXPECT_EQ(r1_bound(Timing{9, 10}, true), 20);  // 2*9 > 10 -> 2*10
  EXPECT_EQ(participant_bound(t, false), 27);
  EXPECT_EQ(participant_bound(t, true), 20);
  EXPECT_EQ(join_bound(t, false), 27);
  EXPECT_EQ(join_bound(t, true), 23);
}

TEST(Options, FlavorNames) {
  EXPECT_STREQ(to_string(Flavor::Binary), "binary");
  EXPECT_STREQ(to_string(Flavor::Dynamic), "dynamic");
  EXPECT_TRUE(is_multi(Flavor::Static));
  EXPECT_FALSE(is_multi(Flavor::TwoPhase));
}

}  // namespace
}  // namespace ahb::models
