// Variant-specific end-to-end behaviour of the executable library:
// revised binary start-up, two-phase acceleration, static group
// detection bounds with several members, expanding join timing.
#include <gtest/gtest.h>

#include "hb/cluster.hpp"

namespace ahb::hb {
namespace {

ClusterConfig config_for(Variant v, int participants, Time tmin, Time tmax) {
  ClusterConfig c;
  c.protocol.variant = v;
  c.protocol.tmin = tmin;
  c.protocol.tmax = tmax;
  c.participants = participants;
  return c;
}

TEST(Variants, RevisedBinaryBeatsAtTimeZero) {
  Cluster cluster{config_for(Variant::RevisedBinary, 1, 2, 10)};
  cluster.start();
  cluster.run_until(5);
  // The initial beat went out immediately and the reply already came
  // back: both sides have sent one message within half a round.
  EXPECT_EQ(cluster.node_stats(0).sent, 1u);
  EXPECT_EQ(cluster.node_stats(1).sent, 1u);
}

TEST(Variants, OriginalBinaryWaitsAFullRoundFirst) {
  Cluster cluster{config_for(Variant::Binary, 1, 2, 10)};
  cluster.start();
  cluster.run_until(9);
  EXPECT_EQ(cluster.node_stats(0).sent, 0u);
  cluster.run_until(12);
  EXPECT_EQ(cluster.node_stats(0).sent, 1u);
}

TEST(Variants, RevisedBinaryRunsHealthyForever) {
  Cluster cluster{config_for(Variant::RevisedBinary, 1, 2, 10)};
  cluster.start();
  cluster.run_until(10000);
  EXPECT_EQ(cluster.coordinator().status(), Status::Active);
  EXPECT_EQ(cluster.participant(1).status(), Status::Active);
}

TEST(Variants, TwoPhaseDetectsFasterThanBinaryForSmallTmin) {
  // After a crash, two-phase drops straight to tmin instead of walking
  // the halving ladder, so its detection is at least as fast.
  const auto detect = [](Variant v) {
    Cluster cluster{config_for(v, 1, 1, 16)};
    cluster.crash_participant_at(1, 100);
    cluster.start();
    cluster.run_until(3000);
    return cluster.coordinator().inactivated_at();
  };
  const Time binary_at = detect(Variant::Binary);
  const Time two_phase_at = detect(Variant::TwoPhase);
  ASSERT_NE(binary_at, kNever);
  ASSERT_NE(two_phase_at, kNever);
  EXPECT_LE(two_phase_at, binary_at);
}

TEST(Variants, StaticDetectionIndependentOfGroupSize) {
  // One silent member dooms the group no matter how many healthy
  // members keep replying.
  for (const int n : {1, 3, 6}) {
    Cluster cluster{config_for(Variant::Static, n, 2, 10)};
    cluster.crash_participant_at(n, 200);
    cluster.start();
    cluster.run_until(3000);
    ASSERT_EQ(cluster.coordinator().status(),
              Status::InactiveNonVoluntarily)
        << "n=" << n;
    Config cfg;
    cfg.tmin = 2;
    cfg.tmax = 10;
    EXPECT_LE(cluster.coordinator().inactivated_at(),
              200 + cfg.tmin + cfg.coordinator_detection_bound())
        << "n=" << n;
  }
}

TEST(Variants, ExpandingJoinCompletesWithinTwoRounds) {
  // A joiner beats every tmin from start-up; the coordinator registers
  // it and addresses it at the next timeout, so membership completes
  // within ~2*tmax + tmin.
  Cluster cluster{config_for(Variant::Expanding, 2, 2, 10)};
  cluster.start();
  Config cfg;
  cfg.tmin = 2;
  cfg.tmax = 10;
  cluster.run_until(2 * cfg.tmax + cfg.tmin + 2);
  for (int i = 1; i <= 2; ++i) {
    EXPECT_TRUE(cluster.participant(i).joined()) << i;
  }
}

TEST(Variants, ExpandingJoinersGenerateBoundedJoinTraffic) {
  Cluster cluster{config_for(Variant::Expanding, 1, 2, 10)};
  cluster.start();
  cluster.run_until(1000);
  // Join beats stop once joined: total sends stay near one per round
  // (plus the handful of join beats at the start).
  EXPECT_LT(cluster.node_stats(1).sent, 120u);
  EXPECT_GT(cluster.node_stats(1).sent, 90u);
}

TEST(Variants, DynamicAllMembersLeavingLeavesCoordinatorAlive) {
  Cluster cluster{config_for(Variant::Dynamic, 3, 2, 10)};
  cluster.leave_at(1, 200);
  cluster.leave_at(2, 300);
  cluster.leave_at(3, 400);
  cluster.start();
  cluster.run_until(5000);
  EXPECT_EQ(cluster.coordinator().status(), Status::Active);
  EXPECT_TRUE(cluster.coordinator().member_ids().empty());
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(cluster.participant(i).status(), Status::Left) << i;
  }
}

TEST(Variants, CoordinatorBeatsAccelerateUnderSuspicion) {
  // Observable acceleration: after a crash the coordinator's sends
  // bunch up (shorter rounds) until it gives up.
  Cluster cluster{config_for(Variant::Binary, 1, 1, 16)};
  std::vector<sim::Time> coordinator_sends;
  // Track send times indirectly via node_stats deltas at fine steps.
  cluster.crash_participant_at(1, 100);
  cluster.start();
  std::uint64_t last = 0;
  for (sim::Time t = 0; t <= 300; ++t) {
    cluster.run_until(t);
    const auto sent = cluster.node_stats(0).sent;
    if (sent > last) {
      coordinator_sends.push_back(t);
      last = sent;
    }
  }
  ASSERT_GE(coordinator_sends.size(), 4u);
  // Gaps after the crash shrink monotonically (halving ladder).
  std::vector<sim::Time> gaps;
  for (std::size_t i = 1; i < coordinator_sends.size(); ++i) {
    gaps.push_back(coordinator_sends[i] - coordinator_sends[i - 1]);
  }
  // The final gaps (post-crash) must be strictly smaller than the
  // healthy round length.
  EXPECT_LT(gaps.back(), 16);
}

}  // namespace
}  // namespace ahb::hb
