#include <gtest/gtest.h>

#include "mc/ndfs.hpp"
#include "ta/network.hpp"

namespace ahb::mc {
namespace {

using ta::Edge;
using ta::StateMut;
using ta::StateView;

/// Ring automaton: x cycles 0 -> 1 -> 2 -> 0.
ta::Network ring_net() {
  ta::Network net;
  const auto a = net.add_automaton("ring");
  const auto l = net.add_location(a, "run");
  const auto x = net.add_var("x", 0);
  net.add_edge(a, Edge{.src = l,
                       .dst = l,
                       .effect =
                           [x](StateMut& m) {
                             m.set(x, (m.var(x) + 1) % 3);
                           },
                       .label = "step"});
  net.freeze();
  return net;
}

/// Terminating counter: x goes 0..3 and stops. With `frozen_time` an
/// invariant disables ticks entirely, so the only transitions are the
/// increments and the terminal state is a genuine dead end; without it,
/// every state carries a (clockless) tick self-loop.
ta::Network path_net(bool frozen_time) {
  ta::Network net;
  const auto a = net.add_automaton("path");
  const auto c = net.add_clock("c", 1);
  ta::Guard invariant;
  if (frozen_time) {
    invariant = [c](const StateView& v) { return v.clk(c) <= 0; };
  }
  const auto l = net.add_location(a, "run", ta::LocKind::Normal,
                                  std::move(invariant));
  const auto x = net.add_var("x", 0);
  net.add_edge(a, Edge{.src = l,
                       .dst = l,
                       .guard = [x](const StateView& v) {
                         return v.var(x) < 3;
                       },
                       .effect = [x](StateMut& m) { m.set(x, m.var(x) + 1); },
                       .label = "inc"});
  net.freeze();
  return net;
}

TEST(Ndfs, FindsCycleThroughAcceptingState) {
  const auto net = ring_net();
  const auto r = find_accepting_cycle(net, [](const StateView& v) {
    return v.var(ta::VarId{0}) == 2;
  });
  EXPECT_TRUE(r.cycle_found);
  ASSERT_FALSE(r.lasso.empty());
  // The lasso closes: last state equals the state at stem_length.
  EXPECT_EQ(r.lasso.back().state, r.lasso[r.stem_length].state);
  // Some state on the cycle is accepting.
  bool accepting_on_cycle = false;
  for (std::size_t i = r.stem_length; i < r.lasso.size(); ++i) {
    if (r.lasso[i].state[1] == 2) accepting_on_cycle = true;
  }
  EXPECT_TRUE(accepting_on_cycle);
}

TEST(Ndfs, NoCycleWhenAcceptingStateUnreachable) {
  const auto net = ring_net();
  const auto r = find_accepting_cycle(net, [](const StateView& v) {
    return v.var(ta::VarId{0}) == 7;
  });
  EXPECT_FALSE(r.cycle_found);
  EXPECT_TRUE(r.complete);
}

TEST(Ndfs, TransientAcceptingStateYieldsNoCycle) {
  // With time frozen, x == 1 is visited exactly once on the way to the
  // terminal x == 3 dead end: no cycle at all.
  const auto net = path_net(/*frozen_time=*/true);
  const auto r = find_accepting_cycle(net, [](const StateView& v) {
    return v.var(ta::VarId{0}) == 1;
  });
  EXPECT_FALSE(r.cycle_found);
  EXPECT_TRUE(r.complete);
}

TEST(Ndfs, TickSelfLoopCountsAsCycle) {
  // With free-running time, the saturated-clock tick self-loop at the
  // terminal state is a legitimate lasso ("eventually forever x == 3").
  const auto net = path_net(/*frozen_time=*/false);
  const auto r = find_accepting_cycle(net, [](const StateView& v) {
    return v.var(ta::VarId{0}) == 3;
  });
  EXPECT_TRUE(r.cycle_found);
}

TEST(Ndfs, StatsPopulated) {
  const auto net = ring_net();
  const auto r = find_accepting_cycle(
      net, [](const StateView&) { return false; });
  EXPECT_FALSE(r.cycle_found);
  EXPECT_EQ(r.stats.states, 3u);
  EXPECT_GT(r.stats.transitions, 0u);
}

}  // namespace
}  // namespace ahb::mc
