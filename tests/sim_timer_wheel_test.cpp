// Hierarchical timer wheel (src/sim/timer_wheel.hpp) vs. a naive
// sorted-set oracle.
//
// The wheel's determinism contract — entries fire in exact
// (when, priority, arm-sequence) order, cancels are O(1) no-ops once
// popped — is what lets the cluster-scale engine reproduce the legacy
// simulator's interleavings bit-for-bit, so it is pinned here against
// an oracle that keeps every pending entry in one ordered multiset.
// The deterministic cases target the wheel's structural edges: same
// tick ordering, cancel-in-ready laziness, multi-level cascades, and
// the slot-ring wrap where an entry lands at or behind the current
// slot index of its level.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "sim/timer_wheel.hpp"
#include "util/rng.hpp"

namespace ahb {
namespace {

using Wheel = sim::TimerWheel<int>;
using Time = Wheel::Time;

// Oracle entry: the same (when, priority, seq) key the wheel promises,
// with the payload riding along.
struct OracleEntry {
  Time when;
  int priority;
  std::uint64_t seq;
  int payload;
  bool operator<(const OracleEntry& other) const {
    return std::tie(when, priority, seq) <
           std::tie(other.when, other.priority, other.seq);
  }
};

// Drains both structures to `horizon` and requires identical streams.
void expect_same_drain(Wheel& wheel, std::set<OracleEntry>& oracle,
                       Time horizon) {
  Wheel::Expired expired;
  while (wheel.pop(horizon, expired)) {
    ASSERT_FALSE(oracle.empty()) << "wheel fired more than the oracle";
    const OracleEntry expect = *oracle.begin();
    ASSERT_LE(expect.when, horizon);
    oracle.erase(oracle.begin());
    EXPECT_EQ(expired.when, expect.when);
    EXPECT_EQ(expired.priority, expect.priority);
    EXPECT_EQ(expired.seq, expect.seq);
    EXPECT_EQ(expired.payload, expect.payload);
  }
  if (!oracle.empty()) {
    EXPECT_GT(oracle.begin()->when, horizon)
        << "oracle still due at " << oracle.begin()->when;
  }
  wheel.advance_to(horizon);
  EXPECT_EQ(wheel.now(), horizon);
}

TEST(TimerWheel, FiresInWhenPrioritySeqOrder) {
  Wheel wheel;
  std::set<OracleEntry> oracle;
  // Same instant, mixed priorities, deliberately armed out of order.
  std::uint64_t seq = 1;
  for (const auto& [when, prio] : std::vector<std::pair<Time, int>>{
           {5, 1}, {5, 0}, {3, 1}, {5, 0}, {3, 0}, {7, 0}, {5, 1}}) {
    wheel.arm(when, prio, static_cast<int>(seq));
    oracle.insert({when, prio, seq, static_cast<int>(seq)});
    ++seq;
  }
  expect_same_drain(wheel, oracle, 10);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelUnlinksAndInvalidatesHandles) {
  Wheel wheel;
  const auto a = wheel.arm(10, 0, 1);
  const auto b = wheel.arm(10, 0, 2);
  const auto c = wheel.arm(20, 0, 3);
  EXPECT_TRUE(wheel.cancel(b));
  EXPECT_FALSE(wheel.cancel(b));  // already cancelled
  EXPECT_FALSE(wheel.cancel(Wheel::Handle{}));  // invalid handle no-op

  Wheel::Expired expired;
  ASSERT_TRUE(wheel.pop(30, expired));
  EXPECT_EQ(expired.payload, 1);
  EXPECT_FALSE(wheel.cancel(a));  // already fired
  ASSERT_TRUE(wheel.pop(30, expired));
  EXPECT_EQ(expired.payload, 3);
  EXPECT_FALSE(wheel.pop(30, expired));
  // c's slot was recycled; its stale handle must not cancel anything.
  EXPECT_FALSE(wheel.cancel(c));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelWhileStagedInReadyHeapIsLazy) {
  Wheel wheel;
  wheel.arm(5, 0, 1);
  const auto doomed = wheel.arm(5, 0, 2);
  wheel.arm(5, 0, 3);
  Wheel::Expired expired;
  ASSERT_TRUE(wheel.pop(5, expired));  // advances to tick 5, stages all
  EXPECT_EQ(expired.payload, 1);
  EXPECT_TRUE(wheel.cancel(doomed));  // now Location::Ready: lazy discard
  ASSERT_TRUE(wheel.pop(5, expired));
  EXPECT_EQ(expired.payload, 3);
  EXPECT_FALSE(wheel.pop(5, expired));
}

TEST(TimerWheel, CascadesAcrossLevels) {
  // One entry per level: deltas 1, 64^1+1, 64^2+1, ... exercise every
  // cascade depth, including re-filing through intermediate levels.
  Wheel wheel;
  std::set<OracleEntry> oracle;
  std::uint64_t seq = 1;
  Time span = 1;
  for (int level = 0; level < 6; ++level) {
    const Time when = span + 1;
    wheel.arm(when, 0, level);
    oracle.insert({when, 0, seq++, level});
    span *= 64;
  }
  expect_same_drain(wheel, oracle, Time{64} * 64 * 64 * 64 * 64 + 2);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, SlotRingWrapDoesNotHideEntries) {
  // now = 100 sits in level-1 slot 1 ([64, 128)); when = 4190 has
  // delta 4090 < 64^2, so it files at level 1 — and its slot index
  // (4190 >> 6) & 63 == 1 collides with the current slot, one full
  // ring revolution ahead. The scan must still find and fire it.
  Wheel wheel;
  Wheel::Expired expired;
  wheel.arm(100, 0, 0);
  ASSERT_TRUE(wheel.pop(100, expired));
  ASSERT_EQ(wheel.now(), 100);

  wheel.arm(4190, 0, 42);
  EXPECT_FALSE(wheel.pop(4189, expired));
  ASSERT_TRUE(wheel.pop(4190, expired));
  EXPECT_EQ(expired.when, 4190);
  EXPECT_EQ(expired.payload, 42);
}

TEST(TimerWheel, AdvanceToSkipsEmptySpansAndKeepsLaterEntriesLive) {
  Wheel wheel;
  wheel.arm(1'000'000, 0, 7);
  wheel.advance_to(999'999);  // nothing due: must not fire or lose it
  EXPECT_EQ(wheel.now(), 999'999);
  Wheel::Expired expired;
  ASSERT_TRUE(wheel.pop(1'000'000, expired));
  EXPECT_EQ(expired.when, 1'000'000);
  EXPECT_EQ(expired.payload, 7);
  // Empty wheel: advance is a plain jump.
  wheel.advance_to(Time{50'000'000'000});
  EXPECT_EQ(wheel.now(), Time{50'000'000'000});
}

TEST(TimerWheel, RandomisedAgainstOracle) {
  // Seeded random arm/cancel/rearm/drain campaign. Mixed scales pick
  // deltas from every level (biased small, occasionally huge), pop
  // horizons land mid-slot and on boundaries, and a third of armed
  // entries are cancelled — from the wheel or from the ready heap.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    Rng rng{seed};
    Wheel wheel;
    std::set<OracleEntry> oracle;
    std::vector<std::pair<Wheel::Handle, OracleEntry>> live;
    std::uint64_t seq = 1;
    for (int step = 0; step < 3000; ++step) {
      const auto op = rng.below(10);
      if (op < 6) {  // arm
        Time delta;
        switch (rng.below(4)) {
          case 0: delta = static_cast<Time>(rng.below(4)); break;
          case 1: delta = static_cast<Time>(rng.below(64)); break;
          case 2: delta = static_cast<Time>(rng.below(64 * 64)); break;
          default:
            delta = static_cast<Time>(rng.below(64ull * 64 * 64 * 64));
            break;
        }
        const Time when = wheel.now() + delta;
        const int prio = static_cast<int>(rng.below(2));
        const int payload = static_cast<int>(seq);
        const auto handle = wheel.arm(when, prio, payload);
        const OracleEntry entry{when, prio, seq, payload};
        oracle.insert(entry);
        live.push_back({handle, entry});
        ++seq;
      } else if (op < 8 && !live.empty()) {  // cancel a random live entry
        const auto pick = rng.below(live.size());
        const auto [handle, entry] = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        const bool still = oracle.erase(entry) > 0;
        EXPECT_EQ(wheel.cancel(handle), still);
      } else {  // drain a random horizon ahead
        const Time horizon = wheel.now() + static_cast<Time>(rng.below(300));
        Wheel::Expired expired;
        while (wheel.pop(horizon, expired)) {
          ASSERT_FALSE(oracle.empty());
          const OracleEntry expect = *oracle.begin();
          ASSERT_LE(expect.when, horizon);
          oracle.erase(oracle.begin());
          ASSERT_EQ(expired.when, expect.when);
          ASSERT_EQ(expired.priority, expect.priority);
          ASSERT_EQ(expired.seq, expect.seq);
          ASSERT_EQ(expired.payload, expect.payload);
        }
        if (!oracle.empty()) {
          ASSERT_GT(oracle.begin()->when, horizon);
        }
        wheel.advance_to(horizon);
        ASSERT_EQ(wheel.now(), horizon);
      }
      ASSERT_EQ(wheel.pending(), oracle.size());
    }
    // Final full drain.
    const Time far = wheel.now() + Time{64} * 64 * 64 * 64 * 64;
    std::set<OracleEntry> rest;
    rest.swap(oracle);
    Wheel::Expired expired;
    for (const auto& expect : rest) {
      ASSERT_TRUE(wheel.pop(far, expired));
      ASSERT_EQ(expired.when, expect.when);
      ASSERT_EQ(expired.seq, expect.seq);
    }
    EXPECT_FALSE(wheel.pop(far, expired));
    EXPECT_EQ(wheel.pending(), 0u);
  }
}

}  // namespace
}  // namespace ahb
