// Tests for the runtime-verification layer (src/rv): the event-sink
// plumbing, the suspicion-ladder monitor's negative controls (each
// obligation demonstrably fires), the availability scorer's interval
// arithmetic, and the engine-independence of the requirement monitor
// (identical verdicts on hb::Cluster and hb::ScaleCluster executions).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hb/cluster.hpp"
#include "hb/cluster_scale.hpp"
#include "rv/availability.hpp"
#include "rv/monitor.hpp"
#include "rv/sink_chain.hpp"
#include "rv/suspicion.hpp"

namespace ahb {
namespace {

using Kind = hb::ProtocolEvent::Kind;

hb::ProtocolEvent ev(Kind kind, int node, sim::Time at) {
  return hb::ProtocolEvent{kind, at, node, 0, 0};
}

rv::SuspicionMonitor::Config suspicion_config(proto::Variant variant, int tmin,
                                              int tmax, int participants) {
  rv::SuspicionMonitor::Config config;
  config.variant = variant;
  config.timing = proto::Timing{tmin, tmax};
  config.participants = participants;
  return config;
}

// --- suspicion monitor: negative controls ---------------------------------

TEST(SuspicionMonitor, PacingAndEarliestDetectionFire) {
  // S1 negative control: two round closes tmin/2 apart (a drifting
  // coordinator clock) trip the pacing check, and the member whose
  // suspicion level rises across those rushed rounds trips the
  // earliest-detection check.
  const auto config = suspicion_config(proto::Variant::Binary, 4, 10, 1);
  const auto bounds = rv::MonitorBounds::defaults(config.timing,
                                                  config.variant, true);
  rv::SuspicionMonitor monitor{config, bounds};
  monitor.on_protocol_event(ev(Kind::CoordinatorReceivedBeat, 1, 10));
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 10));
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 12));
  ASSERT_EQ(monitor.violations().size(), 2u);
  EXPECT_EQ(monitor.violations()[0].requirement, 4);
  EXPECT_EQ(monitor.violations()[0].node, 0);  // pacing
  EXPECT_EQ(monitor.violations()[1].requirement, 4);
  EXPECT_EQ(monitor.violations()[1].node, 1);  // level 1 before tmin slack
}

TEST(SuspicionMonitor, InSpecPacingStaysSilent) {
  // Control for the control: closes exactly tmin apart and a level that
  // rises no faster than one per tmin violate nothing.
  const auto config = suspicion_config(proto::Variant::Binary, 4, 10, 1);
  const auto bounds = rv::MonitorBounds::defaults(config.timing,
                                                  config.variant, true);
  rv::SuspicionMonitor monitor{config, bounds};
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 10));
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 14));
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 18));
  EXPECT_EQ(monitor.level(1), 2);
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(SuspicionMonitor, MandatorySuspicionMissedFiresAtFinish) {
  // S2 negative control: a member crashes and the (synthetic)
  // coordinator never closes another round, so the threshold is never
  // reached; the obligation expires at crash + suspicion_detection_bound
  // = 11 + (4 + 3*10) = 45. A later fabricated beat must NOT refresh
  // the armed deadline (that would let forged traffic defer detection).
  const auto config = suspicion_config(proto::Variant::Binary, 4, 10, 1);
  const auto bounds = rv::MonitorBounds::defaults(config.timing,
                                                  config.variant, true);
  rv::SuspicionMonitor monitor{config, bounds};
  monitor.on_protocol_event(ev(Kind::ParticipantCrashed, 1, 11));
  monitor.on_protocol_event(ev(Kind::CoordinatorReceivedBeat, 1, 44));
  monitor.finish(200);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].requirement, 4);
  EXPECT_EQ(monitor.violations()[0].node, 1);
  EXPECT_EQ(monitor.violations()[0].deadline, 45);
}

TEST(SuspicionMonitor, ReachingTheThresholdDischarges) {
  // The coordinator that does count its misses owes nothing: two missed
  // closes reach the threshold (default 2) before the deadline.
  const auto config = suspicion_config(proto::Variant::Binary, 4, 10, 1);
  const auto bounds = rv::MonitorBounds::defaults(config.timing,
                                                  config.variant, true);
  rv::SuspicionMonitor monitor{config, bounds};
  monitor.on_protocol_event(ev(Kind::ParticipantCrashed, 1, 11));
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 20));
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 30));
  monitor.on_protocol_event(ev(Kind::CoordinatorBeat, 0, 40));
  monitor.finish(200);
  EXPECT_EQ(monitor.level(1), 2);
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(SuspicionMonitor, CoordinatorStopDischargesObligations) {
  // Once the coordinator itself stops, no further detection is owed —
  // the all-or-nothing inactivation IS the detection.
  const auto config = suspicion_config(proto::Variant::Binary, 4, 10, 1);
  const auto bounds = rv::MonitorBounds::defaults(config.timing,
                                                  config.variant, true);
  rv::SuspicionMonitor monitor{config, bounds};
  monitor.on_protocol_event(ev(Kind::ParticipantCrashed, 1, 11));
  monitor.on_protocol_event(ev(Kind::CoordinatorInactivated, 0, 30));
  monitor.finish(200);
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(SuspicionMonitor, PublishedLevelMayNotRegressWithoutABeat) {
  // S3 negative control: an external detector publishing 2 then 1 with
  // no intervening registered beat is a monotonicity bug; after a fresh
  // beat the drop to 0 is the expected reset.
  const auto config = suspicion_config(proto::Variant::Binary, 4, 10, 1);
  const auto bounds = rv::MonitorBounds::defaults(config.timing,
                                                  config.variant, true);
  rv::SuspicionMonitor monitor{config, bounds};
  monitor.note_level(1, 2, 50);
  monitor.note_level(1, 1, 60);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].requirement, 4);
  EXPECT_EQ(monitor.violations()[0].node, 1);
  monitor.on_protocol_event(ev(Kind::CoordinatorReceivedBeat, 1, 70));
  monitor.note_level(1, 0, 80);
  EXPECT_EQ(monitor.violations().size(), 1u);
}

// --- availability scorer --------------------------------------------------

TEST(AvailabilityStats, IntervalsRecoveriesAndDetectionSamples) {
  rv::AvailabilityStats stats{2};
  stats.on_protocol_event(ev(Kind::ParticipantCrashed, 1, 100));
  stats.on_protocol_event(ev(Kind::ParticipantRejoined, 1, 350));
  stats.on_protocol_event(ev(Kind::ParticipantLeft, 2, 100));
  stats.on_protocol_event(ev(Kind::CoordinatorReceivedLeave, 2, 130));
  stats.finish(1000);

  EXPECT_EQ(stats.up_time(1), 750);  // [0,100) + [350,1000)
  EXPECT_EQ(stats.down_time(1), 250);
  EXPECT_EQ(stats.recoveries(1), 1u);
  EXPECT_EQ(stats.up_time(2), 100);
  EXPECT_EQ(stats.down_time(2), 900);
  EXPECT_EQ(stats.up_time(0), 1000);  // the coordinator never stopped

  const auto& summary = stats.summary();
  EXPECT_EQ(summary.up_time, 1850);
  EXPECT_EQ(summary.down_time, 1150);
  EXPECT_EQ(summary.recoveries, 1u);
  // One detection sample: the leave beat landed 30 after the departure;
  // bit_width(30) == 5, so it falls in histogram bucket 5.
  EXPECT_EQ(summary.detections, 1u);
  EXPECT_EQ(summary.detection_total, 30);
  EXPECT_EQ(summary.detection_max, 30);
  EXPECT_EQ(summary.detection_hist[5], 1u);
  EXPECT_DOUBLE_EQ(summary.up_fraction(), 1850.0 / 3000.0);
}

TEST(AvailabilityStats, SummariesSumAcrossRuns) {
  rv::AvailabilityStats a{1};
  a.on_protocol_event(ev(Kind::ParticipantCrashed, 1, 10));
  a.finish(100);
  rv::AvailabilityStats b{1};
  b.finish(100);
  rv::AvailabilitySummary total = a.summary();
  total += b.summary();
  EXPECT_EQ(total.up_time, 100 + 10 + 200);  // a: coord 100 + p1 10; b: 200
  EXPECT_EQ(total.down_time, 90);
}

// --- sink chain and interest masks ----------------------------------------

class CountingSink final : public rv::EventSink {
 public:
  explicit CountingSink(std::uint32_t mask) : mask_(mask) {}
  std::uint32_t protocol_interest() const override { return mask_; }
  void on_protocol_event(const hb::ProtocolEvent& event) override {
    ++count_;
    kinds_.push_back(event.kind);
  }
  std::uint64_t count() const { return count_; }
  const std::vector<Kind>& kinds() const { return kinds_; }

 private:
  std::uint32_t mask_;
  std::uint64_t count_ = 0;
  std::vector<Kind> kinds_;
};

TEST(SinkChain, InterestMasksGateDelivery) {
  // A narrow sink sees exactly the CoordinatorBeat subsequence of what
  // a full-interest sink sees, and a zero-interest sink sees nothing —
  // while a legacy lambda observer keeps working beside them.
  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Expanding;
  config.protocol.tmin = 4;
  config.protocol.tmax = 10;
  config.participants = 2;
  hb::Cluster cluster{config};

  CountingSink narrow{rv::protocol_bit(Kind::CoordinatorBeat)};
  CountingSink full{rv::kAllProtocolEvents};
  CountingSink deaf{0};
  cluster.add_sink(&narrow);
  cluster.add_sink(&full);
  cluster.add_sink(&deaf);
  std::uint64_t legacy = 0;
  cluster.on_protocol_event([&](const hb::ProtocolEvent&) { ++legacy; });

  cluster.start();
  cluster.run_until(100);
  cluster.sinks().finish(100);

  ASSERT_GT(full.count(), 0u);
  EXPECT_EQ(legacy, full.count());
  EXPECT_EQ(deaf.count(), 0u);
  const auto beats = static_cast<std::uint64_t>(
      std::count(full.kinds().begin(), full.kinds().end(),
                 Kind::CoordinatorBeat));
  EXPECT_EQ(narrow.count(), beats);
  EXPECT_TRUE(std::all_of(
      narrow.kinds().begin(), narrow.kinds().end(),
      [](Kind kind) { return kind == Kind::CoordinatorBeat; }));
}

// --- engine independence --------------------------------------------------

TEST(MonitorEquivalence, ClusterAndScaleClusterYieldIdenticalVerdicts) {
  // The same out-of-spec configuration (delays up to tmax on a tmin=4
  // protocol — round trips far beyond the channel assumption) must trip
  // the requirement monitor identically on both engines: same
  // violations, same order, same deadlines. This is the monitor-level
  // restatement of the engines' bit-identical-trace contract.
  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Static;
  config.protocol.tmin = 4;
  config.protocol.tmax = 10;
  config.participants = 3;
  config.min_delay = 0;
  config.max_delay = 10;
  config.seed = 11;

  rv::RequirementMonitor::Config monitor_config;
  monitor_config.variant = config.protocol.variant;
  monitor_config.timing = proto::Timing{config.protocol.tmin,
                                        config.protocol.tmax};
  monitor_config.participants = config.participants;
  const auto bounds = rv::MonitorBounds::defaults(
      monitor_config.timing, monitor_config.variant, true);

  hb::Cluster cluster{config};
  rv::RequirementMonitor on_cluster{monitor_config, bounds};
  on_cluster.attach(cluster);
  cluster.start();
  cluster.run_until(400);
  cluster.sinks().finish(400);

  hb::ScaleCluster scale{config};
  rv::RequirementMonitor on_scale{monitor_config, bounds};
  on_scale.attach(scale);
  scale.start();
  scale.run_until(400);
  scale.sinks().finish(400);

  ASSERT_FALSE(on_cluster.violations().empty())
      << "out-of-spec delays never tripped the monitor";
  ASSERT_EQ(on_cluster.violations().size(), on_scale.violations().size());
  for (std::size_t i = 0; i < on_cluster.violations().size(); ++i) {
    EXPECT_EQ(on_cluster.violations()[i].key(),
              on_scale.violations()[i].key());
    EXPECT_EQ(on_cluster.violations()[i].at, on_scale.violations()[i].at);
  }
  EXPECT_EQ(on_cluster.events_seen(), on_scale.events_seen());
}

TEST(MonitorIntegration, InSpecCrashRunStaysCleanWithFullStack) {
  // The full monitor stack on a live in-spec run: one participant
  // crashes, the all-or-nothing coordinator eventually inactivates, the
  // survivors stop on their own deadlines. No monitor may fire, and the
  // availability scorer must see the outage.
  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Expanding;
  config.protocol.tmin = 4;
  config.protocol.tmax = 10;
  config.participants = 3;
  hb::Cluster cluster{config};
  cluster.crash_participant_at(1, 50);

  rv::RequirementMonitor::Config monitor_config;
  monitor_config.variant = config.protocol.variant;
  monitor_config.timing = proto::Timing{config.protocol.tmin,
                                        config.protocol.tmax};
  monitor_config.participants = config.participants;
  const auto bounds = rv::MonitorBounds::defaults(
      monitor_config.timing, monitor_config.variant, true);
  rv::RequirementMonitor requirements{monitor_config, bounds};
  requirements.attach(cluster);

  auto s_config = suspicion_config(config.protocol.variant,
                                   config.protocol.tmin, config.protocol.tmax,
                                   config.participants);
  rv::SuspicionMonitor suspicion{s_config, bounds};
  suspicion.attach(cluster);
  rv::AvailabilityStats availability{config.participants};
  cluster.add_sink(&availability);

  cluster.start();
  cluster.run_until(600);
  cluster.sinks().finish(600);

  EXPECT_TRUE(requirements.violations().empty());
  EXPECT_TRUE(suspicion.violations().empty());
  EXPECT_EQ(availability.summary().recoveries, 0u);
  EXPECT_GT(availability.summary().down_time, 0);
  EXPECT_LT(availability.summary().up_fraction(), 1.0);
  EXPECT_GE(availability.summary().detections, 1u);
}

}  // namespace
}  // namespace ahb
