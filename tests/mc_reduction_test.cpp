// Reduction soundness tests (the acceptance bar of the symmetry + POR
// work): orbit canonicalization must be permutation-invariant, the
// reduced searches must reproduce the verdicts of the full search on
// every variant, counterexample traces must remain genuine runs of the
// unreduced network, and the stores' open-addressing component fast
// path must stay exact under concurrent intern storms (this binary
// carries the "reduction" ctest label the sanitizer presets run).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "mc/concurrent_store.hpp"
#include "mc/explorer.hpp"
#include "mc/ndfs.hpp"
#include "mc/store.hpp"
#include "models/heartbeat_model.hpp"
#include "proto/timing.hpp"
#include "ta/network.hpp"
#include "util/rng.hpp"

namespace ahb {
namespace {

using models::BuildOptions;
using models::Flavor;
using models::HeartbeatModel;

mc::SearchLimits reduced_limits(unsigned threads = 1) {
  mc::SearchLimits limits;
  limits.threads = threads;
  limits.symmetry = ta::Symmetry::Participants;
  limits.por = true;
  return limits;
}

/// Deterministic BFS-order sample of reachable states.
std::vector<ta::State> sample_states(const ta::Network& net,
                                     std::size_t max_states) {
  std::vector<ta::State> states;
  mc::StateStore seen{net.slot_count()};
  std::vector<ta::State> frontier{net.initial_state()};
  seen.intern(frontier.front());
  states.push_back(frontier.front());
  while (!frontier.empty() && states.size() < max_states) {
    std::vector<ta::State> next;
    for (const auto& s : frontier) {
      for (auto& t : net.successors(s)) {
        if (states.size() >= max_states) break;
        if (seen.intern(t.target).second) {
          states.push_back(t.target);
          next.push_back(std::move(t.target));
        }
      }
    }
    frontier = std::move(next);
  }
  return states;
}

TEST(OrbitCanonicalization, PermutationInvarianceOnReachableStates) {
  // The property that makes the quotient sound: every state in an orbit
  // canonicalizes to the same representative. Checked on real reachable
  // states of the static 3-participant model under random block
  // permutations.
  BuildOptions options;
  options.timing = {2, 4};
  options.participants = 3;
  const auto model = HeartbeatModel::build(Flavor::Static, options);
  const auto& codec = model.net().codec();
  ASSERT_TRUE(codec.has_canonicalization());
  ASSERT_EQ(codec.symmetry_block_count(), 3u);

  const auto states = sample_states(model.net(), 4000);
  ASSERT_GE(states.size(), 1000u);

  Rng rng{42};
  std::vector<std::size_t> perm(codec.symmetry_block_count());
  for (int round = 0; round < 300; ++round) {
    const auto& s = states[rng.below(states.size())];
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    // Apply the block permutation: block b's slots move to block
    // perm[b]'s positions (the scalarset group action).
    ta::State permuted = s;
    for (std::size_t b = 0; b < perm.size(); ++b) {
      const auto src = codec.symmetry_block(b);
      const auto dst = codec.symmetry_block(perm[b]);
      for (std::size_t k = 0; k < src.size(); ++k) {
        permuted.slots_mut()[dst[k]] = s.slots()[src[k]];
      }
    }
    ta::State canon_orig = s;
    codec.canonicalize(canon_orig.slots_mut());
    ta::State canon_perm = permuted;
    codec.canonicalize(canon_perm.slots_mut());
    ASSERT_EQ(canon_orig, canon_perm);
    // Idempotence: representatives are fixed points.
    ta::State again = canon_orig;
    codec.canonicalize(again.slots_mut());
    ASSERT_EQ(again, canon_orig);
  }
}

TEST(Reduction, VerdictsMatchFullSearchAcrossVariantsAndTimings) {
  // Every variant, every Table-1 timing class: the reduced search
  // (symmetry + POR) must reproduce the verdicts of the full search —
  // which themselves pin the paper's closed forms — while never
  // interning more states.
  const std::pair<int, int> points[] = {
      {1, 10}, {4, 10}, {5, 10}, {9, 10}, {10, 10}};
  const Flavor flavors[] = {Flavor::Binary,   Flavor::RevisedBinary,
                            Flavor::TwoPhase, Flavor::Static,
                            Flavor::Expanding, Flavor::Dynamic};
  for (const auto flavor : flavors) {
    for (const auto& [tmin, tmax] : points) {
      SCOPED_TRACE(testing::Message() << models::to_string(flavor)
                                      << " tmin=" << tmin);
      BuildOptions options;
      options.timing = {tmin, tmax};
      mc::SearchLimits full;
      full.threads = 1;
      const auto base = models::verify_requirements(flavor, options, full);
      const auto expected = proto::expected_verdicts(
          flavor, proto::Timing{tmin, tmax});
      EXPECT_EQ(base.r1, expected.r1);
      EXPECT_EQ(base.r2, expected.r2);
      EXPECT_EQ(base.r3, expected.r3);
      const auto reduced =
          models::verify_requirements(flavor, options, reduced_limits());
      EXPECT_EQ(reduced.r1, base.r1);
      EXPECT_EQ(reduced.r2, base.r2);
      EXPECT_EQ(reduced.r3, base.r3);
      EXPECT_LE(reduced.r1_stats.states, base.r1_stats.states);
      EXPECT_LE(reduced.r2_stats.states, base.r2_stats.states);
      EXPECT_LE(reduced.r3_stats.states, base.r3_stats.states);
    }
  }
}

TEST(Reduction, TwoParticipantQuotientShrinksAndParallelMatches) {
  // The multi-participant payoff: on the static 2-participant space the
  // quotient must be at least 2x smaller (orbit factor) — in practice
  // more, thanks to dead slots and committed-chain fusion — with
  // identical exhaustive verdicts, and the parallel reduced explorer
  // must agree with the sequential one state-for-state.
  BuildOptions options;
  options.timing = {4, 10};
  options.participants = 2;
  const auto model = HeartbeatModel::build(Flavor::Static, options);

  mc::Explorer explorer{model.net()};
  mc::SearchLimits full;
  full.threads = 1;
  const auto base = explorer.explore_all(full);
  const auto reduced = explorer.explore_all(reduced_limits());
  EXPECT_GE(base.states, reduced.states * 2);
  EXPECT_GT(reduced.fused, 0u);

  const auto parallel = explorer.explore_all(reduced_limits(8));
  EXPECT_EQ(parallel.states, reduced.states);
  EXPECT_EQ(parallel.depth, reduced.depth);
}

TEST(Reduction, CounterexampleTraceIsARealRun) {
  // Reduced-mode counterexamples are replayed forward through the
  // unreduced network: every step must be a genuine transition between
  // genuine states (no canonical representatives leaking out), ending
  // in a state that satisfies the target predicate.
  BuildOptions options;
  options.timing = {10, 10};
  options.participants = 2;
  const auto model = HeartbeatModel::build(Flavor::Static, options);
  const auto& net = model.net();
  const auto pred = model.r2_violation_any();

  mc::Explorer explorer{model.net()};
  const auto result = explorer.reach(pred, reduced_limits());
  ASSERT_TRUE(result.found);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.front().state, net.initial_state());
  EXPECT_TRUE(result.trace.front().action.empty());
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    const auto& step = result.trace[i];
    EXPECT_NE(step.action, "<unreplayed>");
    bool connected = false;
    for (const auto& t : net.successors(result.trace[i - 1].state)) {
      if (t.target == step.state) {
        connected = true;
        break;
      }
    }
    EXPECT_TRUE(connected) << "trace step " << i << " is not a transition";
  }
  EXPECT_TRUE(pred(ta::StateView{net, result.trace.back().state}));
}

TEST(Reduction, AmpleSetFusesCraftedCommittedInterleaving) {
  // Two independent automata stepping through committed locations via
  // invisible edges: the ample pass must collapse the commutative
  // interleaving (fewer interned states, fused transients observed)
  // without changing reachability of the joint goal.
  ta::Network net;
  const auto a = net.add_automaton("a");
  const auto b = net.add_automaton("b");
  const auto va = net.add_var("done_a", 0, 0, 1, a);
  const auto vb = net.add_var("done_b", 0, 0, 1, b);
  const int a0 = net.add_location(a, "A0");
  const int ac = net.add_location(a, "AC", ta::LocKind::Committed);
  const int a1 = net.add_location(a, "A1");
  const int b0 = net.add_location(b, "B0");
  const int bc = net.add_location(b, "BC", ta::LocKind::Committed);
  const int b1 = net.add_location(b, "B1");
  net.add_edge(a, ta::Edge{.src = a0, .dst = ac, .label = "a_go"});
  net.add_edge(a, ta::Edge{.src = ac,
                           .dst = a1,
                           .effect = [va](ta::StateMut& m) { m.set(va, 1); },
                           .label = "a_done",
                           .invisible = true});
  net.add_edge(b, ta::Edge{.src = b0, .dst = bc, .label = "b_go"});
  net.add_edge(b, ta::Edge{.src = bc,
                           .dst = b1,
                           .effect = [vb](ta::StateMut& m) { m.set(vb, 1); },
                           .label = "b_done",
                           .invisible = true});
  net.freeze();

  const mc::Pred goal = [va, vb](const ta::StateView& v) {
    return v.var(va) == 1 && v.var(vb) == 1;
  };
  mc::Explorer explorer{net};
  mc::SearchLimits full;
  full.threads = 1;
  mc::SearchLimits por;
  por.threads = 1;
  por.por = true;

  const auto base_all = explorer.explore_all(full);
  const auto por_all = explorer.explore_all(por);
  EXPECT_LT(por_all.states, base_all.states);
  EXPECT_GT(por_all.fused, 0u);

  const auto base_goal = explorer.reach(goal, full);
  const auto por_goal = explorer.reach(goal, por);
  ASSERT_TRUE(base_goal.found);
  ASSERT_TRUE(por_goal.found);
}

TEST(Reduction, NdfsQuotientAgreesWithFullSearch) {
  // The nested DFS runs on the orbit quotient when symmetry is on; the
  // cycle verdict must match the full product for a
  // permutation-invariant acceptance predicate.
  BuildOptions options;
  options.timing = {2, 4};
  options.participants = 2;
  const auto model = HeartbeatModel::build(Flavor::Static, options);
  const mc::Pred accepting = [](const ta::StateView&) { return true; };
  mc::SearchLimits full;
  full.threads = 1;
  const auto base = mc::find_accepting_cycle(model.net(), accepting, full);
  const auto reduced =
      mc::find_accepting_cycle(model.net(), accepting, reduced_limits());
  EXPECT_EQ(reduced.cycle_found, base.cycle_found);
}

TEST(ConcurrentReduction, FastAndSpillComponentHammerStaysExact) {
  // Collapse components now intern through an inline-u64 open-addressing
  // fast path when their packed key fits 64 bits, and spill to byte
  // keys otherwise. Build one component of each kind and race 8 threads
  // over the same state sample: identity and decode must stay exact.
  ta::Network net;
  const auto wide = net.add_automaton("wide");
  const auto fast = net.add_automaton("fast");
  net.add_location(wide, "W0");
  net.add_location(wide, "W1");
  net.add_location(fast, "F0");
  net.add_location(fast, "F1");
  std::vector<ta::VarId> wide_vars;
  for (int i = 0; i < 14; ++i) {
    wide_vars.push_back(
        net.add_var("w" + std::to_string(i), 0, 0, 31, wide));
  }
  std::vector<ta::VarId> fast_vars;
  for (int i = 0; i < 2; ++i) {
    fast_vars.push_back(
        net.add_var("f" + std::to_string(i), 0, 0, 255, fast));
  }
  net.add_var("shared", 0, 0, 9);
  net.add_clock("clk", 7);
  // Self-loop edges keep the network well-formed; the test only
  // exercises the stores.
  net.add_edge(wide, ta::Edge{.src = 0, .dst = 0, .label = "noop"});
  net.add_edge(fast, ta::Edge{.src = 0, .dst = 0, .label = "noop"});
  net.freeze();
  const auto& codec = net.codec();
  ASSERT_EQ(codec.component_count(), 2u);
  EXPECT_GT(codec.component(0).key_bits, 64u);   // 1 + 14*5 = 71 bits
  EXPECT_LE(codec.component(1).key_bits, 64u);   // 1 + 2*8 = 17 bits

  // Random (not necessarily reachable) in-range states; the stores only
  // depend on the declared layout.
  Rng rng{7};
  std::vector<ta::State> states;
  std::set<std::vector<ta::Slot>> unique;
  const std::size_t slot_count = net.slot_count();
  while (states.size() < 20000) {
    ta::State s(slot_count);
    auto slots = s.slots_mut();
    slots[0] = static_cast<ta::Slot>(rng.below(2));
    slots[1] = static_cast<ta::Slot>(rng.below(2));
    std::size_t slot = 2;
    for (std::size_t i = 0; i < 14; ++i) {
      slots[slot++] = static_cast<ta::Slot>(rng.below(32));
    }
    for (std::size_t i = 0; i < 2; ++i) {
      slots[slot++] = static_cast<ta::Slot>(rng.below(256));
    }
    slots[slot++] = static_cast<ta::Slot>(rng.below(10));
    slots[slot++] = static_cast<ta::Slot>(rng.below(8));
    if (unique.insert(std::vector<ta::Slot>(slots.begin(), slots.end()))
            .second) {
      states.push_back(std::move(s));
    }
  }

  // Sequential reference.
  mc::StateStore seq{codec, ta::Compression::Collapse};
  for (const auto& s : states) {
    const auto [index, inserted] = seq.intern(s);
    ASSERT_TRUE(inserted);
    ta::State back;
    seq.load(index, back);
    ASSERT_EQ(back, s);
  }
  ASSERT_EQ(seq.size(), states.size());

  // Concurrent storm: each worker inserts the whole sample in a
  // different order so fast-path probes collide across shards.
  mc::ConcurrentStateStore store{codec, ta::Compression::Collapse};
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const std::size_t n = states.size();
      const std::size_t start = (static_cast<std::size_t>(w) * 977) % n;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = (start + k * (w + 1)) % n;
        store.intern(states[i].slots());
      }
    });
  }
  for (auto& t : workers) t.join();
  ASSERT_EQ(store.size(), states.size());
  for (const auto& s : states) {
    const auto [index, inserted] = store.intern(s.slots());
    ASSERT_FALSE(inserted);
    ta::State back;
    store.load(index, back);
    ASSERT_EQ(back, s);
  }
}

}  // namespace
}  // namespace ahb
