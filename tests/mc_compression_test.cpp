// Compression invariance and concurrency tests (the acceptance bar of
// the compressed-store work): every verification result — verdicts,
// state counts, transition counts, depths, counterexample traces — must
// be identical across {none, pack, collapse} x {1, 8} threads, and the
// collapse-mode ConcurrentStateStore must stay exact under concurrent
// intern storms (this binary carries the "compression" ctest label the
// sanitizer presets run).
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "mc/concurrent_store.hpp"
#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"
#include "util/rng.hpp"

namespace ahb {
namespace {

using models::BuildOptions;
using models::Flavor;
using models::HeartbeatModel;

constexpr ta::Compression kModes[] = {
    ta::Compression::None, ta::Compression::Pack, ta::Compression::Collapse};

TEST(CompressionDeterminism, VerdictsAndCountsMatchAcrossModesAndThreads) {
  // Table-1 points for the fast flavors. Verdicts must agree everywhere.
  // State counts and depths are compared against an uncompressed
  // baseline *per thread count*: when a requirement fails, the
  // sequential search stops at the first hit mid-level while the
  // parallel search finishes the BFS level (that is what makes its
  // shortest counterexample deterministic), so the two legitimately
  // intern slightly different totals — a pre-existing explorer property,
  // orthogonal to compression. Within a thread count, {none, pack,
  // collapse} must be indistinguishable.
  const std::pair<int, int> points[] = {
      {1, 10}, {4, 10}, {5, 10}, {9, 10}, {10, 10}};
  const Flavor flavors[] = {Flavor::Binary, Flavor::RevisedBinary,
                            Flavor::TwoPhase, Flavor::Static};
  for (const auto flavor : flavors) {
    for (const auto& [tmin, tmax] : points) {
      SCOPED_TRACE(testing::Message() << models::to_string(flavor)
                                      << " tmin=" << tmin);
      BuildOptions options;
      options.timing = {tmin, tmax};
      std::optional<models::Verdicts> sequential;
      for (const unsigned threads : {1u, 8u}) {
        mc::SearchLimits base_limits;
        base_limits.threads = threads;
        const auto base =
            models::verify_requirements(flavor, options, base_limits);
        if (!sequential.has_value()) {
          sequential = base;
        } else {
          // Verdicts (unlike early-exit counts) are thread-invariant.
          EXPECT_EQ(base.r1, sequential->r1);
          EXPECT_EQ(base.r2, sequential->r2);
          EXPECT_EQ(base.r3, sequential->r3);
        }
        for (const auto mode : kModes) {
          if (mode == ta::Compression::None) continue;
          SCOPED_TRACE(testing::Message()
                       << ta::to_string(mode) << " threads=" << threads);
          mc::SearchLimits limits;
          limits.threads = threads;
          limits.compression = mode;
          const auto v = models::verify_requirements(flavor, options, limits);
          EXPECT_EQ(v.r1, base.r1);
          EXPECT_EQ(v.r2, base.r2);
          EXPECT_EQ(v.r3, base.r3);
          EXPECT_EQ(v.r1_stats.states, base.r1_stats.states);
          EXPECT_EQ(v.r2_stats.states, base.r2_stats.states);
          EXPECT_EQ(v.r3_stats.states, base.r3_stats.states);
          EXPECT_EQ(v.r1_stats.depth, base.r1_stats.depth);
          EXPECT_EQ(v.r2_stats.depth, base.r2_stats.depth);
          EXPECT_EQ(v.r3_stats.depth, base.r3_stats.depth);
        }
      }
    }
  }
}

TEST(CompressionDeterminism, CounterexampleTracesMatchAcrossModes) {
  // At tmin == tmax R2 fails for the binary protocol: the shortest
  // counterexample (length and action labels) must be identical in every
  // mode and thread count, since trace reconstruction decodes states
  // back out of the compressed store.
  BuildOptions options;
  options.timing = {10, 10};
  const auto model = HeartbeatModel::build(Flavor::Binary, options);
  mc::Explorer explorer{model.net()};
  mc::SearchLimits base_limits;
  base_limits.threads = 1;
  const auto base = explorer.reach(model.r2_violation_any(), base_limits);
  ASSERT_TRUE(base.found);
  ASSERT_FALSE(base.trace.empty());
  for (const auto mode : kModes) {
    for (const unsigned threads : {1u, 8u}) {
      SCOPED_TRACE(testing::Message()
                   << ta::to_string(mode) << " threads=" << threads);
      mc::SearchLimits limits;
      limits.threads = threads;
      limits.compression = mode;
      const auto r = explorer.reach(model.r2_violation_any(), limits);
      ASSERT_TRUE(r.found);
      ASSERT_EQ(r.trace.size(), base.trace.size());
      for (std::size_t i = 0; i < r.trace.size(); ++i) {
        EXPECT_EQ(r.trace[i].action, base.trace[i].action);
        EXPECT_EQ(r.trace[i].state, base.trace[i].state);
      }
    }
  }
}

TEST(CompressionDeterminism, StoreBytesShrinkUnderCompression) {
  // The point of the exercise: the same exploration, smaller store.
  BuildOptions options;
  options.timing = {4, 10};
  options.participants = 2;
  const auto model = HeartbeatModel::build(Flavor::Static, options);
  std::size_t bytes[3] = {};
  std::uint64_t states[3] = {};
  for (int m = 0; m < 3; ++m) {
    mc::Explorer explorer{model.net()};
    mc::SearchLimits limits;
    limits.threads = 1;
    limits.compression = kModes[m];
    const auto stats = explorer.explore_all(limits);
    bytes[m] = stats.store_bytes;
    states[m] = stats.states;
  }
  EXPECT_EQ(states[0], states[1]);
  EXPECT_EQ(states[0], states[2]);
  EXPECT_LT(bytes[1], bytes[0]);
  EXPECT_LT(bytes[2], bytes[0]);
  // The acceptance bar (>= 3x on the static n=2 sweep) is measured by
  // bench_statespace --json; here we pin a conservative 2x so the test
  // stays robust to small models.
  EXPECT_LT(bytes[2] * 2, bytes[0]);
}

TEST(ConcurrentStoreCompression, CollapseHammerStaysExact) {
  // Intern storm: 8 threads race the same reachable-state sample (each
  // in a different order) into one collapse-mode store. Every state must
  // end up interned exactly once, agree with the sequential store on
  // identity, and decode back bit-for-bit. Run under TSan via the tsan
  // preset ("compression" label).
  BuildOptions options;
  options.timing = {4, 10};
  options.participants = 2;
  const auto model = HeartbeatModel::build(Flavor::Static, options);
  const auto& net = model.net();
  const auto& codec = net.codec();

  // Deterministic BFS-order sample of the first ~40k reachable states.
  std::vector<ta::State> states;
  {
    mc::StateStore seen{codec, ta::Compression::None};
    std::vector<ta::State> frontier{net.initial_state()};
    seen.intern(frontier.front());
    states.push_back(frontier.front());
    while (!frontier.empty() && states.size() < 40000) {
      std::vector<ta::State> next;
      for (const auto& s : frontier) {
        for (auto& t : net.successors(s)) {
          if (states.size() >= 40000) break;
          if (seen.intern(t.target).second) {
            states.push_back(t.target);
            next.push_back(std::move(t.target));
          }
        }
      }
      frontier = std::move(next);
    }
  }
  ASSERT_GE(states.size(), 10000u);

  mc::ConcurrentStateStore store{codec, ta::Compression::Collapse};
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng{static_cast<std::uint64_t>(w) * 977 + 13};
      // Each worker walks the sample from a different offset and stride
      // so insertions collide across shards and components.
      const std::size_t n = states.size();
      const std::size_t start = rng() % n;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = (start + k * (w + 1)) % n;
        store.intern(states[i].slots());
      }
    });
  }
  for (auto& t : workers) t.join();

  ASSERT_EQ(store.size(), states.size());
  // Identity and decode agree with a sequential collapse store interning
  // in the same (BFS) order as discovery.
  ta::State out{codec.slot_count()};
  std::set<std::uint32_t> indices;
  for (const auto& s : states) {
    const auto [index, fresh] = store.intern(s.slots());
    EXPECT_FALSE(fresh);
    EXPECT_TRUE(indices.insert(index).second);
    store.load(index, out);
    EXPECT_EQ(out, s);
  }
  EXPECT_EQ(store.size(), states.size());
}

}  // namespace
}  // namespace ahb
