#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace ahb::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, FifoAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(7, [&order, i] { order.push_back(i); });
  }
  sim.run_until(7);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, HorizonStopsExecution) {
  Simulator sim;
  int fired = 0;
  sim.at(5, [&] { ++fired; });
  sim.at(15, [&] { ++fired; });
  sim.run_until(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.at(5, [&] { ++fired; });
  sim.at(6, [&] { ++fired; });
  sim.cancel(id);
  sim.run_until(10);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelInvalidIsNoop) {
  Simulator sim;
  sim.cancel(Simulator::kInvalidEvent);
  sim.cancel(12345);  // never scheduled: lazily ignored
  sim.at(1, [] {});
  EXPECT_EQ(sim.run_until(5), 1u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<Time> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.after(10, tick);
  };
  sim.at(0, tick);
  sim.run_until(1000);
  EXPECT_EQ(times, (std::vector<Time>{0, 10, 20, 30}));
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] { ++fired; });
  sim.at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step(10));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step(10));
  EXPECT_FALSE(sim.step(10));
  EXPECT_EQ(fired, 2);
}

struct Msg {
  int payload = 0;
};

TEST(Network, DeliversWithinDelayBounds) {
  Simulator sim{42};
  Network<Msg> net{sim, {.loss_probability = 0.0, .min_delay = 2, .max_delay = 5}};
  std::vector<Time> arrivals;
  net.attach(1, [&](int from, const Msg& m) {
    EXPECT_EQ(from, 0);
    EXPECT_EQ(m.payload, 7);
    arrivals.push_back(sim.now());
  });
  for (int i = 0; i < 50; ++i) net.send(0, 1, Msg{7});
  sim.run_until(100);
  ASSERT_EQ(arrivals.size(), 50u);
  for (const Time t : arrivals) {
    EXPECT_GE(t, 2);
    EXPECT_LE(t, 5);
  }
  EXPECT_EQ(net.stats().delivered, 50u);
  EXPECT_EQ(net.stats().lost, 0u);
}

TEST(Network, LossRateRoughlyCalibrated) {
  Simulator sim{7};
  Network<Msg> net{sim, {.loss_probability = 0.25, .min_delay = 0, .max_delay = 1}};
  int received = 0;
  net.attach(1, [&](int, const Msg&) { ++received; });
  const int total = 10000;
  for (int i = 0; i < total; ++i) net.send(0, 1, Msg{});
  sim.run_until(10);
  const double loss = 1.0 - static_cast<double>(received) / total;
  EXPECT_NEAR(loss, 0.25, 0.03);
  EXPECT_EQ(net.stats().sent, static_cast<std::uint64_t>(total));
  EXPECT_EQ(net.stats().delivered + net.stats().lost,
            static_cast<std::uint64_t>(total));
}

TEST(Network, DeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    Simulator sim{seed};
    Network<Msg> net{sim, {.loss_probability = 0.5, .min_delay = 0, .max_delay = 3}};
    std::vector<Time> arrivals;
    net.attach(1, [&](int, const Msg&) { arrivals.push_back(sim.now()); });
    for (int i = 0; i < 100; ++i) net.send(0, 1, Msg{i});
    sim.run_until(10);
    return arrivals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Network, LinkOverrideApplies) {
  Simulator sim{1};
  Network<Msg> net{sim, {.loss_probability = 0.0, .min_delay = 0, .max_delay = 0}};
  net.set_link(0, 1, {.loss_probability = 1.0, .min_delay = 0, .max_delay = 0});
  int received_1 = 0, received_2 = 0;
  net.attach(1, [&](int, const Msg&) { ++received_1; });
  net.attach(2, [&](int, const Msg&) { ++received_2; });
  for (int i = 0; i < 20; ++i) {
    net.send(0, 1, Msg{});
    net.send(0, 2, Msg{});
  }
  sim.run_until(5);
  EXPECT_EQ(received_1, 0);  // overridden link loses everything
  EXPECT_EQ(received_2, 20);
}

TEST(Network, LinkDownBlocksSilently) {
  Simulator sim{1};
  Network<Msg> net{sim, {}};
  int received = 0;
  net.attach(1, [&](int, const Msg&) { ++received; });
  net.set_link_up(0, 1, false);
  net.send(0, 1, Msg{});
  sim.run_until(5);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().blocked, 1u);
  net.set_link_up(0, 1, true);
  net.send(0, 1, Msg{});
  sim.run_until(10);
  EXPECT_EQ(received, 1);
}

TEST(Network, IsolatedNodeNeitherSendsNorReceives) {
  Simulator sim{1};
  Network<Msg> net{sim, {}};
  int received = 0;
  net.attach(1, [&](int, const Msg&) { ++received; });
  net.isolate(0);
  net.send(0, 1, Msg{});  // isolated sender
  net.send(2, 1, Msg{});  // unrelated sender still works
  sim.run_until(5);
  EXPECT_EQ(received, 1);
}

TEST(Network, InFlightMessageDroppedWhenReceiverIsolatedMeanwhile) {
  Simulator sim{1};
  Network<Msg> net{sim, {.loss_probability = 0.0, .min_delay = 3, .max_delay = 3}};
  int received = 0;
  net.attach(1, [&](int, const Msg&) { ++received; });
  net.send(0, 1, Msg{});
  sim.at(1, [&] { net.isolate(1); });
  sim.run_until(10);
  EXPECT_EQ(received, 0);
}

}  // namespace
}  // namespace ahb::sim
