// Whole-system integration tests: coordinator + participants on the
// lossy discrete-event network.
#include <gtest/gtest.h>

#include "hb/cluster.hpp"

namespace ahb::hb {
namespace {

ClusterConfig make_cluster(Variant v, int participants, Time tmin = 2,
                           Time tmax = 10) {
  ClusterConfig c;
  c.protocol.variant = v;
  c.protocol.tmin = tmin;
  c.protocol.tmax = tmax;
  c.participants = participants;
  return c;
}

TEST(Cluster, HealthyBinaryStaysActive) {
  Cluster cluster{make_cluster(Variant::Binary, 1)};
  cluster.start();
  cluster.run_until(10000);
  EXPECT_EQ(cluster.coordinator().status(), Status::Active);
  EXPECT_EQ(cluster.participant(1).status(), Status::Active);
  // Steady state: one beat per round in each direction, ~1000 rounds.
  EXPECT_NEAR(static_cast<double>(cluster.node_stats(0).sent), 1000, 10);
  EXPECT_NEAR(static_cast<double>(cluster.node_stats(1).sent), 1000, 10);
}

TEST(Cluster, HealthyStaticStaysActive) {
  Cluster cluster{make_cluster(Variant::Static, 4)};
  cluster.start();
  cluster.run_until(5000);
  EXPECT_EQ(cluster.coordinator().status(), Status::Active);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(cluster.participant(i).status(), Status::Active) << i;
  }
}

TEST(Cluster, ParticipantCrashDeactivatesEveryone) {
  Cluster cluster{make_cluster(Variant::Binary, 1)};
  cluster.crash_participant_at(1, 500);
  cluster.start();
  cluster.run_until(5000);
  EXPECT_EQ(cluster.coordinator().status(),
            Status::InactiveNonVoluntarily);
  EXPECT_TRUE(cluster.all_inactive());
  // Detection within the corrected bound after the crash (plus one
  // round that may already be in flight).
  const Time bound = cluster.coordinator().config()
                         .coordinator_detection_bound();
  EXPECT_LE(cluster.coordinator().inactivated_at(), 500 + bound + 10);
}

TEST(Cluster, CoordinatorCrashDeactivatesParticipants) {
  Cluster cluster{make_cluster(Variant::Static, 3)};
  cluster.crash_coordinator_at(777);
  cluster.start();
  cluster.run_until(5000);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(cluster.participant(i).status(),
              Status::InactiveNonVoluntarily);
    // p[i] inactivates within 3*tmax - tmin of its last beat.
    EXPECT_LE(cluster.participant(i).inactivated_at(),
              777 + 3 * 10 - 2 + 10);
  }
}

TEST(Cluster, ExpandingParticipantsJoin) {
  Cluster cluster{make_cluster(Variant::Expanding, 3)};
  cluster.start();
  cluster.run_until(200);
  EXPECT_EQ(cluster.coordinator().member_ids().size(), 3u);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(cluster.participant(i).joined()) << i;
    EXPECT_EQ(cluster.participant(i).status(), Status::Active);
  }
}

TEST(Cluster, DynamicLeaveIsGraceful) {
  Cluster cluster{make_cluster(Variant::Dynamic, 2)};
  cluster.leave_at(1, 300);
  cluster.start();
  cluster.run_until(5000);
  EXPECT_EQ(cluster.participant(1).status(), Status::Left);
  // The rest of the network keeps running.
  EXPECT_EQ(cluster.coordinator().status(), Status::Active);
  EXPECT_EQ(cluster.participant(2).status(), Status::Active);
  EXPECT_FALSE(cluster.coordinator().is_member(1));
  EXPECT_TRUE(cluster.coordinator().is_member(2));
}

TEST(Cluster, InactivationCallbackFires) {
  Cluster cluster{make_cluster(Variant::Binary, 1)};
  std::vector<std::pair<int, sim::Time>> events;
  cluster.on_inactivation([&](int id, sim::Time at) {
    events.emplace_back(id, at);
  });
  cluster.crash_participant_at(1, 100);
  cluster.start();
  cluster.run_until(2000);
  ASSERT_EQ(events.size(), 1u);  // only p0 decides; p1 crashed
  EXPECT_EQ(events[0].first, 0);
  EXPECT_EQ(events[0].second, cluster.coordinator().inactivated_at());
}

TEST(Cluster, SurvivesModerateLossLongRun) {
  // With 5% loss, a false inactivation needs several *consecutive*
  // misses; the accelerated protocol should survive a long run.
  auto cfg = make_cluster(Variant::Binary, 1, 1, 16);
  cfg.loss_probability = 0.05;
  cfg.seed = 12345;
  Cluster cluster{cfg};
  cluster.start();
  cluster.run_until(50000);
  EXPECT_EQ(cluster.coordinator().status(), Status::Active);
  EXPECT_EQ(cluster.participant(1).status(), Status::Active);
  EXPECT_GT(cluster.network_stats().lost, 0u);
}

TEST(Cluster, DeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    auto cfg = make_cluster(Variant::Static, 2, 2, 8);
    cfg.loss_probability = 0.2;
    cfg.seed = seed;
    Cluster cluster{cfg};
    cluster.start();
    cluster.run_until(3000);
    return std::tuple{cluster.network_stats().sent,
                      cluster.network_stats().delivered,
                      cluster.coordinator().status()};
  };
  EXPECT_EQ(run(9), run(9));
}

class CrashDetectionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrashDetectionSweep, DetectionWithinBound) {
  // Property: for any seed and crash time, once a participant crashes
  // the coordinator inactivates, and it does so within the analysis
  // bound of its last received beat (here conservatively: crash time +
  // one full round + detection bound).
  const auto [seed, crash_at] = GetParam();
  auto cfg = make_cluster(Variant::Binary, 1, 2, 10);
  cfg.seed = static_cast<std::uint64_t>(seed);
  Cluster cluster{cfg};
  cluster.crash_participant_at(1, crash_at);
  cluster.start();
  cluster.run_until(crash_at + 1000);
  ASSERT_EQ(cluster.coordinator().status(), Status::InactiveNonVoluntarily);
  const Time bound =
      cluster.coordinator().config().coordinator_detection_bound();
  // The last beat the coordinator received was sent at most one round
  // trip before the crash.
  EXPECT_LE(cluster.coordinator().inactivated_at(),
            crash_at + cfg.protocol.tmin + bound);
  EXPECT_GT(cluster.coordinator().inactivated_at(), crash_at);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTimes, CrashDetectionSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(50, 123, 997)));

}  // namespace
}  // namespace ahb::hb
