// Engine-vs-model trace conformance (src/proto/conformance.hpp).
//
// Every test records the protocol-event trace of a simulated hb::Cluster
// run and asks the guided walk whether the timed-automata model of the
// same variant and timing can reproduce it. Deterministic scenarios
// cover all six variants at the five (tmin, tmax) points of Tables 1
// and 2; a seeded property test adds random loss and crash times; and
// the mutation canaries prove the harness actually fails when a shared
// protocol constant drifts — without that, a green conformance suite
// would mean nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>

#include "chaos/runner.hpp"
#include "hb/cluster.hpp"
#include "proto/conformance.hpp"
#include "proto/rules.hpp"

namespace ahb {
namespace {

using proto::TraceRecorder;

// The (tmin, tmax) points of Tables 1 and 2: R1/R2/R3 flip across them.
constexpr std::pair<int, int> kTimingPoints[] = {
    {1, 10}, {4, 10}, {5, 10}, {9, 10}, {10, 10}};

constexpr hb::Variant kAllVariants[] = {
    hb::Variant::Binary,   hb::Variant::RevisedBinary, hb::Variant::TwoPhase,
    hb::Variant::Static,   hb::Variant::Expanding,     hb::Variant::Dynamic};

// Zero network delay: deliveries are observed at their send instant.
// The original conformance scenarios run like this; the nonzero-delay
// scenarios below override the delay range.
hb::ClusterConfig conformance_config(hb::Variant variant, int tmin,
                                     int tmax) {
  hb::ClusterConfig config;
  config.protocol.variant = variant;
  config.protocol.tmin = tmin;
  config.protocol.tmax = tmax;
  config.participants = proto::variant_is_multi(variant) ? 2 : 1;
  config.min_delay = 0;
  config.max_delay = 0;
  config.seed = 1;
  return config;
}

// In-spec nonzero delay: each message rides a random one-way delay in
// [0, tmin/2] (the channel assumption's bound), so sends and deliveries
// are distinct trace instants — the regime the message-identity matcher
// exists for.
hb::ClusterConfig delayed_config(hb::Variant variant, int tmin, int tmax) {
  auto config = conformance_config(variant, tmin, tmax);
  config.max_delay = -1;  // Cluster default: tmin / 2
  config.seed = 7;
  return config;
}

TEST(Conformance, ParticipantCrashCascadeReplaysForEveryVariant) {
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      const auto config = conformance_config(variant, tmin, tmax);
      hb::Cluster cluster{config};
      TraceRecorder recorder{cluster};
      // A few healthy rounds, then p[1] dies: the coordinator misses it,
      // accelerates down the waiting-time ladder and inactivates; any
      // remaining participant then starves and inactivates too.
      cluster.crash_participant_at(1, 2 * tmax + 1);
      cluster.start();
      cluster.run_until(9 * tmax);
      ASSERT_FALSE(recorder.events().empty());
      const auto r = proto::replay_cluster_trace(config, recorder.events());
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

TEST(Conformance, CoordinatorCrashStarvationReplaysForEveryVariant) {
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      const auto config = conformance_config(variant, tmin, tmax);
      hb::Cluster cluster{config};
      TraceRecorder recorder{cluster};
      // The coordinator dies mid-run: beats stop and every participant
      // must non-voluntarily inactivate at its deadline.
      cluster.crash_coordinator_at(2 * tmax + 1);
      cluster.start();
      cluster.run_until(8 * tmax);
      ASSERT_FALSE(recorder.events().empty());
      const auto r = proto::replay_cluster_trace(config, recorder.events());
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

TEST(Conformance, DynamicLeaveAndGracefulRejoinReplays) {
  for (const auto& [tmin, tmax] : kTimingPoints) {
    SCOPED_TRACE(testing::Message() << "tmin=" << tmin << " tmax=" << tmax);
    const auto config =
        conformance_config(hb::Variant::Dynamic, tmin, tmax);
    hb::Cluster cluster{config};
    TraceRecorder recorder{cluster};
    // p[1] departs gracefully, waits out the leave beat, re-enters the
    // join phase and participates again; finally the coordinator dies.
    cluster.leave_at(1, 2 * tmax + 1);
    cluster.rejoin_at(1, 4 * tmax + 1);
    cluster.crash_coordinator_at(7 * tmax + 1);
    cluster.start();
    cluster.run_until(12 * tmax);
    ASSERT_FALSE(recorder.events().empty());
    const auto saw = [&](hb::ProtocolEvent::Kind kind) {
      for (const auto& e : recorder.events()) {
        if (e.kind == kind) return true;
      }
      return false;
    };
    // At tmin == tmax the join deadline (3*tmax - tmin) coincides with
    // the second round and the participants NV-inactivate while still
    // joining — the run ends before the scheduled leave. The trace must
    // replay either way; the leave/rejoin markers exist only otherwise.
    ASSERT_EQ(saw(hb::ProtocolEvent::Kind::ParticipantLeft), tmin < tmax);
    ASSERT_EQ(saw(hb::ProtocolEvent::Kind::ParticipantRejoined),
              tmin < tmax);
    const auto r = proto::replay_cluster_trace(
        config, recorder.events(), models::BuildOptions::Rejoin::Graceful);
    EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                      << r.diagnostic;
  }
}

TEST(Conformance, DynamicLossRejoinOverlapReplays) {
  // The ROADMAP divergence scenario: p[1]'s waiting time tm[1] decays at
  // p[0] under loss (its replies are dropped), p[1] then leaves with the
  // decayed tm[1] on the books, gracefully rejoins, and runs into a
  // second loss window right after re-registration. The model now
  // restarts the rejoiner's tm from tmax on the join edge, exactly like
  // the hb coordinator; this scenario covers that path end to end. (The
  // reset itself is trace-invisible — the join beat sets rcvd, which
  // masks tm at the next round close — so the regression detector for
  // it is the state-count pin in rejoin_test.cpp, and this test pins
  // that decayed rounds, leave, rejoin and overlapping loss replay.)
  const auto config = conformance_config(hb::Variant::Dynamic, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  cluster.leave_at(1, 38);   // leaves with the next beat, at t=40
  cluster.rejoin_at(1, 46);  // graceful: > tmin after the t=40 leave
  cluster.start();
  cluster.run_until(25);    // healthy joined rounds close at 10, 20, 30
  cluster.fail_link(1, 0);  // p[1]'s t=30 reply vanishes: tm[1] decays
  cluster.run_until(35);    //   (the decayed t=40..45 round is recorded)
  cluster.restore_link(1, 0);  // up again so the leave beat gets through
  cluster.run_until(51);       // leave at 40, rejoin registers at t=50
  cluster.fail_link(1, 0);     // loss overlapping the re-registration:
  cluster.run_until(75);       //   p[1] starves p[0], which inactivates
  cluster.restore_link(1, 0);
  cluster.run_until(120);
  ASSERT_FALSE(recorder.events().empty());
  const auto saw = [&](hb::ProtocolEvent::Kind kind) {
    for (const auto& e : recorder.events()) {
      if (e.kind == kind) return true;
    }
    return false;
  };
  ASSERT_TRUE(saw(hb::ProtocolEvent::Kind::ParticipantLeft));
  ASSERT_TRUE(saw(hb::ProtocolEvent::Kind::ParticipantRejoined));
  const auto r = proto::replay_cluster_trace(
      config, recorder.events(), models::BuildOptions::Rejoin::Graceful);
  EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                    << r.diagnostic;
}

TEST(Conformance, RandomLossAndCrashTracesReplay) {
  // Seeded property test: under random loss and crash times, every trace
  // the engines can produce must still be a trace of the model. Loss is
  // never recorded directly — the guided walk has to infer each lost
  // message from the deliveries that did not happen.
  std::mt19937_64 rng{20260805u};
  for (const auto variant : kAllVariants) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto [tmin, tmax] =
          kTimingPoints[rng() % std::size(kTimingPoints)];
      auto config = conformance_config(variant, tmin, tmax);
      config.loss_probability = 0.2;
      config.seed = rng();
      SCOPED_TRACE(testing::Message()
                   << to_string(variant) << " tmin=" << tmin << " tmax="
                   << tmax << " seed=" << config.seed << " rep=" << rep);
      hb::Cluster cluster{config};
      TraceRecorder recorder{cluster};
      const auto crash_time = [&] {
        return static_cast<sim::Time>(1 + rng() % (4 * tmax));
      };
      if (rng() % 2 == 0) cluster.crash_participant_at(1, crash_time());
      if (rng() % 2 == 0) cluster.crash_coordinator_at(crash_time());
      cluster.start();
      cluster.run_until(6 * tmax);
      const auto r = proto::replay_cluster_trace(config, recorder.events());
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

// ---- mutation canaries ----

TEST(ConformanceCanary, PerturbedTimingConstantIsRejected) {
  const auto config = conformance_config(hb::Variant::Binary, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  cluster.crash_participant_at(1, 21);
  cluster.start();
  cluster.run_until(90);
  ASSERT_FALSE(recorder.events().empty());
  ASSERT_TRUE(proto::replay_cluster_trace(config, recorder.events()).ok);

  // The same trace against a model whose tmax drifted by one: the
  // model's rounds come at the wrong instants, so no run matches.
  auto options = proto::model_options_for(config);
  options.timing.tmax = 9;
  const auto r = proto::replay_through_model(config.protocol.variant,
                                             options, recorder.events());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.diagnostic.empty());
}

TEST(ConformanceCanary, PerturbedDeadlineLawIsRejected) {
  // Recorded under the published participant deadline (3*tmax - tmin),
  // replayed against a model using the corrected one (2*tmax): the
  // model is forced to inactivate p[1] earlier than the recorded NV
  // event, an observable mismatch.
  const auto config = conformance_config(hb::Variant::Binary, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  cluster.crash_coordinator_at(21);
  cluster.start();
  cluster.run_until(80);
  ASSERT_FALSE(recorder.events().empty());
  ASSERT_TRUE(proto::replay_cluster_trace(config, recorder.events()).ok);

  auto options = proto::model_options_for(config);
  options.corrected_bounds = true;
  const auto r = proto::replay_through_model(config.protocol.variant,
                                             options, recorder.events());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.diagnostic.empty());
}

// ---- nonzero-delay scenarios ----

TEST(ConformanceDelay, PureDelayCrashCascadeReplaysForEveryVariant) {
  // Every message rides its own random in-spec delay, so deliveries land
  // strictly after their sends and concurrent same-payload messages are
  // routine — the trace shape only message identity replays correctly.
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : {std::pair{4, 10}, std::pair{10, 10}}) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      const auto config = delayed_config(variant, tmin, tmax);
      hb::Cluster cluster{config};
      TraceRecorder recorder{cluster};
      cluster.crash_participant_at(1, 2 * tmax + 1);
      cluster.start();
      cluster.run_until(9 * tmax);
      ASSERT_FALSE(recorder.events().empty());
      const auto r = proto::replay_cluster_trace(config, recorder.events());
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

TEST(ConformanceDelay, DelayAndLinkLossDecayReplays) {
  // Delay plus loss: p[1]'s replies vanish for a window, the waiting
  // time decays, then the link heals. The replayer must infer each lost
  // message from the delivery that never came — with the loss edges of
  // messages the future does deliver forbidden while in flight.
  for (const auto& [tmin, tmax] : {std::pair{4, 10}, std::pair{9, 10}}) {
    SCOPED_TRACE(testing::Message() << "tmin=" << tmin << " tmax=" << tmax);
    const auto config = delayed_config(hb::Variant::Static, tmin, tmax);
    hb::Cluster cluster{config};
    TraceRecorder recorder{cluster};
    cluster.start();
    cluster.run_until(2 * tmax + 5);
    cluster.fail_link(1, 0);  // p[1]'s replies are lost: tm[1] decays
    cluster.run_until(4 * tmax + 5);
    cluster.restore_link(1, 0);
    cluster.run_until(8 * tmax);
    ASSERT_FALSE(recorder.events().empty());
    const auto r = proto::replay_cluster_trace(config, recorder.events());
    EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                      << r.diagnostic;
  }
}

TEST(ConformanceDelay, DelayAndDuplicationReplays) {
  // Every beat is duplicated and every delivery is one tick late: the
  // participant answers both copies, so the trace holds duplicate beat
  // deliveries and echo replies. Identity folds each onto its original.
  const auto config = conformance_config(hb::Variant::Binary, 4, 10);
  hb::Cluster cluster{config};
  using Params = sim::Network<hb::Message>::LinkParams;
  cluster.network().set_link(
      0, 1, Params{.min_delay = 1, .max_delay = 1, .duplicate_probability = 1.0});
  cluster.network().set_link(1, 0, Params{.min_delay = 1, .max_delay = 1});
  TraceRecorder recorder{cluster};
  cluster.start();
  cluster.run_until(60);
  ASSERT_FALSE(recorder.events().empty());
  ASSERT_GT(cluster.network_stats().duplicated, 0u);
  const auto r = proto::replay_cluster_trace(config, recorder.events());
  EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                    << r.diagnostic;

  // The pre-identity matcher sees the duplicate beat delivery and the
  // echo reply as events the model must reproduce — which it cannot, a
  // single-slot channel delivers once. The old matcher rejects a trace
  // the engines legitimately produced; that wrong verdict is the
  // regression this test pins.
  const auto payload = proto::replay_cluster_trace(
      config, recorder.events(), models::BuildOptions::Rejoin::None, {},
      proto::ObservationMode::PayloadOnly);
  EXPECT_FALSE(payload.ok);
}

TEST(ConformanceDelay, RandomDelayLossAndDuplicationTracesReplay) {
  // Seeded property sweep across all six variants at two Table-1 timing
  // points, under two fault mixes: random in-spec delays with loss, and
  // constant delay (tmin/2) with loss plus duplication. Every trace the
  // engines produce here must replay — sends pair with their own
  // deliveries, duplicates fold onto their originals, losses are
  // inferred from the deliveries that never came.
  //
  // The loss mix turns faults on from t=1, deliberately *inside* the
  // join phase: since the stale-join adjudication (the model registers
  // any flag message, like the engine — see the adjudication pins
  // below) the join phase is no longer a divergence zone, and this
  // sweep is the regression detector for that. One restriction
  // remains: duplication rides the constant-delay mix, where both
  // copies land at the same instant — a later copy would extend the
  // engine participant's deadline, which the deliver-once model cannot
  // do (divergence (a) in DESIGN.md), so the duplication mix also
  // waits out the join phase to keep its copies benign folds.
  struct Mix {
    double loss;
    double duplication;
    bool constant_delay;
  };
  constexpr Mix kMixes[] = {{0.15, 0.0, false}, {0.15, 0.25, true}};
  std::mt19937_64 rng{20260806u};
  for (const auto& mix : kMixes) {
    for (const auto variant : kAllVariants) {
      for (const auto& [tmin, tmax] : {std::pair{4, 10}, std::pair{10, 10}}) {
        auto config = delayed_config(variant, tmin, tmax);
        if (mix.constant_delay) config.min_delay = tmin / 2;
        config.seed = rng();
        SCOPED_TRACE(testing::Message()
                     << to_string(variant) << " tmin=" << tmin << " tmax="
                     << tmax << " seed=" << config.seed
                     << " dup=" << mix.duplication);
        hb::Cluster cluster{config};
        TraceRecorder recorder{cluster};
        if (rng() % 2 == 0) {
          cluster.crash_participant_at(
              1, static_cast<sim::Time>(3 * tmax + 1 + rng() % (3 * tmax)));
        }
        cluster.start();
        cluster.run_until(mix.duplication > 0 ? 3 * tmax : 1);
        cluster.network().default_params().loss_probability = mix.loss;
        cluster.network().default_params().duplicate_probability =
            mix.duplication;
        cluster.run_until(8 * tmax);
        const auto r = proto::replay_cluster_trace(config, recorder.events());
        EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events
                          << ": " << r.diagnostic;
      }
    }
  }
}

TEST(ConformanceDelay, ParallelReplayVerdictsAreThreadInvariant) {
  // The guided walk memoizes on a sharded concurrent store; accepting
  // and rejecting replays must return the same verdict and the same
  // matched prefix at every thread count.
  const auto config = delayed_config(hb::Variant::Dynamic, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  cluster.crash_participant_at(1, 21);
  cluster.start();
  cluster.run_until(90);
  ASSERT_FALSE(recorder.events().empty());

  auto perturbed = proto::model_options_for(config);
  perturbed.timing.tmax = 9;

  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    mc::GuidedLimits limits;
    limits.threads = threads;
    const auto ok_r =
        proto::replay_cluster_trace(config, recorder.events(),
                                    models::BuildOptions::Rejoin::None, limits);
    EXPECT_TRUE(ok_r.ok) << ok_r.diagnostic;
    EXPECT_EQ(ok_r.matched, recorder.events().size());
    const auto bad_r = proto::replay_through_model(
        config.protocol.variant, perturbed, recorder.events(), limits);
    EXPECT_FALSE(bad_r.ok);
    EXPECT_FALSE(bad_r.diagnostic.empty());
  }
}

// ---- stale-join adjudication pins (resolved divergence (b)) ----

TEST(ConformanceIdentity, StaleJoinRescueReplays) {
  // The conflation scenario: p[1]'s second join beat is still in flight
  // when the first heartbeat arrives, so p[1] joins and replies — and the
  // reply is lost. The engine's coordinator counts the stale join beat as
  // the round's beat (any true-flag message sets rcvd), so the round
  // keeps its tmax pace although the real reply vanished.
  //
  // This used to be a pinned divergence: the model voided a join beat
  // delivered to a joined sender and the identity replay rejected the
  // trace. The divergence was adjudicated for the engine — a coordinator
  // cannot tell a stale join from a fresh one, so "register any flag
  // message" is the only implementable semantics. The model now delivers
  // stale joins too (latching `stale_join` for the R3 analysis), and the
  // same trace must replay cleanly under full message identity.
  const auto config = conformance_config(hb::Variant::Expanding, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  using Params = sim::Network<hb::Message>::LinkParams;
  cluster.start();
  cluster.run_until(7);  // join beat 1 (t=4) delivered instantly
  // Join beat 2 (t=8) rides a 3-tick delay: it lands at t=11, after the
  // t=10 heartbeat has made p[1] a member.
  cluster.network().set_link(1, 0, Params{.min_delay = 3, .max_delay = 3});
  cluster.run_until(8);
  cluster.network().set_link(1, 0, Params{.min_delay = 0, .max_delay = 0});
  cluster.fail_link(1, 0);  // the t=10 reply is lost
  cluster.run_until(10);
  cluster.restore_link(1, 0);
  cluster.run_until(45);
  ASSERT_FALSE(recorder.events().empty());
  const auto saw_rescue = [&] {
    for (const auto& e : recorder.events()) {
      if (e.kind == hb::ProtocolEvent::Kind::CoordinatorReceivedBeat &&
          e.at == 11) {
        return true;
      }
    }
    return false;
  }();
  ASSERT_TRUE(saw_rescue);

  const auto r = proto::replay_cluster_trace(config, recorder.events());
  EXPECT_TRUE(r.ok) << r.diagnostic;
  EXPECT_EQ(r.matched, recorder.events().size());

  // Payload-only matching accepts too — with the divergence adjudicated
  // the weaker matcher no longer hides anything here.
  const auto payload = proto::replay_cluster_trace(
      config, recorder.events(), models::BuildOptions::Rejoin::None, {},
      proto::ObservationMode::PayloadOnly);
  EXPECT_TRUE(payload.ok) << payload.diagnostic;
}

TEST(ConformanceIdentity, StaleJoinAfterCrashRegistersGhostAndReplays) {
  // In-spec pin for the adjudication's sharpest edge: a join beat is in
  // flight when its sender crashes. The engine's coordinator registers
  // the dead node on delivery (a ghost member) and paces rounds as if it
  // were alive until the ladder dries out. The model mirrors this via
  // `deliver_join_stale`, so the recorded trace replays under full
  // message identity.
  const auto config = conformance_config(hb::Variant::Expanding, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  using Params = sim::Network<hb::Message>::LinkParams;
  cluster.network().set_link(1, 0, Params{.min_delay = 2, .max_delay = 2});
  cluster.crash_participant_at(1, 5);
  cluster.start();
  // Join beat at t=4 arrives at t=6 — one tick after the crash.
  cluster.run_until(60);
  ASSERT_FALSE(recorder.events().empty());
  const auto ghost_registered = [&] {
    for (const auto& e : recorder.events()) {
      if (e.kind == hb::ProtocolEvent::Kind::CoordinatorReceivedBeat &&
          e.at == 6) {
        return true;
      }
    }
    return false;
  }();
  ASSERT_TRUE(ghost_registered);

  const auto r = proto::replay_cluster_trace(config, recorder.events());
  EXPECT_TRUE(r.ok) << r.diagnostic;
  EXPECT_EQ(r.matched, recorder.events().size());
}

// ---- canonical equal-timestamp ordering (satellite pin) ----

TEST(ConformanceOrder, SendHopsBeforeOtherNodesDeliveryAtEqualTime) {
  using Kind = hb::ProtocolEvent::Kind;
  const auto ev = [](Kind kind, int node, sim::Time at) {
    return hb::ProtocolEvent{kind, at, node, 0, 0};
  };

  // Independent nodes: p[1]'s send hops before p[2]'s delivery.
  {
    const hb::ProtocolEvent in[] = {ev(Kind::ParticipantReceivedBeat, 2, 5),
                                    ev(Kind::ParticipantReplied, 1, 5)};
    const auto out = proto::canonical_event_order(in);
    EXPECT_EQ(out[0].kind, Kind::ParticipantReplied);
    EXPECT_EQ(out[1].kind, Kind::ParticipantReceivedBeat);
  }
  // Same node: the delivery causes the send; order is causal, kept.
  {
    const hb::ProtocolEvent in[] = {ev(Kind::ParticipantReceivedBeat, 1, 5),
                                    ev(Kind::ParticipantReplied, 1, 5)};
    const auto out = proto::canonical_event_order(in);
    EXPECT_EQ(out[0].kind, Kind::ParticipantReceivedBeat);
  }
  // A delivery *to* the coordinator and the coordinator's beat share the
  // actor (node 0 receives; node field holds the sender): kept.
  {
    const hb::ProtocolEvent in[] = {ev(Kind::CoordinatorReceivedBeat, 1, 5),
                                    ev(Kind::CoordinatorBeat, 0, 5)};
    const auto out = proto::canonical_event_order(in);
    EXPECT_EQ(out[0].kind, Kind::CoordinatorReceivedBeat);
  }
  // Internal events are barriers; earlier timestamps are never crossed.
  {
    const hb::ProtocolEvent in[] = {ev(Kind::ParticipantCrashed, 2, 5),
                                    ev(Kind::ParticipantReplied, 1, 5),
                                    ev(Kind::ParticipantReceivedBeat, 2, 6),
                                    ev(Kind::ParticipantReplied, 2, 6)};
    const auto out = proto::canonical_event_order(in);
    EXPECT_EQ(out[0].kind, Kind::ParticipantCrashed);
    EXPECT_EQ(out[2].kind, Kind::ParticipantReceivedBeat);
  }
  // The two recorder orders of an independent same-instant pair yield
  // identical observation streams — verdicts cannot depend on simulator
  // queue internals.
  {
    const hb::ProtocolEvent a[] = {ev(Kind::ParticipantReceivedBeat, 2, 5),
                                   ev(Kind::ParticipantReplied, 1, 5)};
    const hb::ProtocolEvent b[] = {ev(Kind::ParticipantReplied, 1, 5),
                                   ev(Kind::ParticipantReceivedBeat, 2, 5)};
    const auto oa = proto::to_observations(a);
    const auto ob = proto::to_observations(b);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].any_of, ob[i].any_of);
      EXPECT_EQ(oa[i].at, ob[i].at);
    }
  }
}

// ---- shrunk chaos artifact fed back through the replayer ----

TEST(ConformanceChaos, ShrunkOutOfSpecArtifactIsRejectedByTheModel) {
  // A shrunk reproducer from `bench_chaos_campaign --out-of-spec
  // --artifacts=...`: one surviving action injects a one-way delay of up
  // to 5 on the reply link of a tmin == 3 protocol (spec bound: 1). The
  // run violates R1 at runtime; replaying its recorded trace must show
  // the model rejecting it — out-of-spec executions are not traces of
  // the model, and now the replayer can literally consume the artifact.
  const std::string artifact =
      "{\"schedule\": \"ahb-chaos\", \"variant\": \"binary\", \"tmin\": 3, "
      "\"tmax\": 3, \"fixed_bounds\": true, \"receive_priority\": true, "
      "\"participants\": 1, \"seed\": 120, \"horizon\": 48}\n"
      "{\"kind\": \"set-delay\", \"at\": 2, \"a\": 0, \"b\": 1, \"p\": 0, "
      "\"q\": 0, \"r\": 0, \"d1\": 0, \"d2\": 5}\n";
  const auto spec = chaos::parse_run(artifact);
  ASSERT_TRUE(spec.has_value());
  ASSERT_TRUE(spec->schedule.out_of_spec(spec->timing()));

  const auto run = chaos::run_chaos(*spec, nullptr, false, true);
  ASSERT_FALSE(run.violations.empty());
  ASSERT_FALSE(run.events.empty());
  const auto r = proto::replay_cluster_trace(chaos::cluster_config_for(*spec),
                                             run.events);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.diagnostic.empty());

  // Control: the same spec with the out-of-spec injection dropped stays
  // within the channel assumption — no violations, and the trace replays.
  auto clamped = *spec;
  clamped.schedule.actions.clear();
  const auto clean = chaos::run_chaos(clamped, nullptr, false, true);
  EXPECT_TRUE(clean.violations.empty());
  ASSERT_FALSE(clean.events.empty());
  const auto cr = proto::replay_cluster_trace(
      chaos::cluster_config_for(clamped), clean.events);
  EXPECT_TRUE(cr.ok) << "matched " << cr.matched << "/" << cr.events << ": "
                     << cr.diagnostic;
}

}  // namespace
}  // namespace ahb
