// Engine-vs-model trace conformance (src/proto/conformance.hpp).
//
// Every test records the protocol-event trace of a simulated hb::Cluster
// run and asks the guided walk whether the timed-automata model of the
// same variant and timing can reproduce it. Deterministic scenarios
// cover all six variants at the five (tmin, tmax) points of Tables 1
// and 2; a seeded property test adds random loss and crash times; and
// the mutation canaries prove the harness actually fails when a shared
// protocol constant drifts — without that, a green conformance suite
// would mean nothing.
#include <gtest/gtest.h>

#include <random>
#include <utility>

#include "hb/cluster.hpp"
#include "proto/conformance.hpp"
#include "proto/rules.hpp"

namespace ahb {
namespace {

using proto::TraceRecorder;

// The (tmin, tmax) points of Tables 1 and 2: R1/R2/R3 flip across them.
constexpr std::pair<int, int> kTimingPoints[] = {
    {1, 10}, {4, 10}, {5, 10}, {9, 10}, {10, 10}};

constexpr hb::Variant kAllVariants[] = {
    hb::Variant::Binary,   hb::Variant::RevisedBinary, hb::Variant::TwoPhase,
    hb::Variant::Static,   hb::Variant::Expanding,     hb::Variant::Dynamic};

// Zero network delay so deliveries are observed at their send instant
// (the recording assumption of the conformance layer).
hb::ClusterConfig conformance_config(hb::Variant variant, int tmin,
                                     int tmax) {
  hb::ClusterConfig config;
  config.protocol.variant = variant;
  config.protocol.tmin = tmin;
  config.protocol.tmax = tmax;
  config.participants = proto::variant_is_multi(variant) ? 2 : 1;
  config.min_delay = 0;
  config.max_delay = 0;
  config.seed = 1;
  return config;
}

TEST(Conformance, ParticipantCrashCascadeReplaysForEveryVariant) {
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      const auto config = conformance_config(variant, tmin, tmax);
      hb::Cluster cluster{config};
      TraceRecorder recorder{cluster};
      // A few healthy rounds, then p[1] dies: the coordinator misses it,
      // accelerates down the waiting-time ladder and inactivates; any
      // remaining participant then starves and inactivates too.
      cluster.crash_participant_at(1, 2 * tmax + 1);
      cluster.start();
      cluster.run_until(9 * tmax);
      ASSERT_FALSE(recorder.events().empty());
      const auto r = proto::replay_cluster_trace(config, recorder.events());
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

TEST(Conformance, CoordinatorCrashStarvationReplaysForEveryVariant) {
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      const auto config = conformance_config(variant, tmin, tmax);
      hb::Cluster cluster{config};
      TraceRecorder recorder{cluster};
      // The coordinator dies mid-run: beats stop and every participant
      // must non-voluntarily inactivate at its deadline.
      cluster.crash_coordinator_at(2 * tmax + 1);
      cluster.start();
      cluster.run_until(8 * tmax);
      ASSERT_FALSE(recorder.events().empty());
      const auto r = proto::replay_cluster_trace(config, recorder.events());
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

TEST(Conformance, DynamicLeaveAndGracefulRejoinReplays) {
  for (const auto& [tmin, tmax] : kTimingPoints) {
    SCOPED_TRACE(testing::Message() << "tmin=" << tmin << " tmax=" << tmax);
    const auto config =
        conformance_config(hb::Variant::Dynamic, tmin, tmax);
    hb::Cluster cluster{config};
    TraceRecorder recorder{cluster};
    // p[1] departs gracefully, waits out the leave beat, re-enters the
    // join phase and participates again; finally the coordinator dies.
    cluster.leave_at(1, 2 * tmax + 1);
    cluster.rejoin_at(1, 4 * tmax + 1);
    cluster.crash_coordinator_at(7 * tmax + 1);
    cluster.start();
    cluster.run_until(12 * tmax);
    ASSERT_FALSE(recorder.events().empty());
    const auto saw = [&](hb::ProtocolEvent::Kind kind) {
      for (const auto& e : recorder.events()) {
        if (e.kind == kind) return true;
      }
      return false;
    };
    // At tmin == tmax the join deadline (3*tmax - tmin) coincides with
    // the second round and the participants NV-inactivate while still
    // joining — the run ends before the scheduled leave. The trace must
    // replay either way; the leave/rejoin markers exist only otherwise.
    ASSERT_EQ(saw(hb::ProtocolEvent::Kind::ParticipantLeft), tmin < tmax);
    ASSERT_EQ(saw(hb::ProtocolEvent::Kind::ParticipantRejoined),
              tmin < tmax);
    const auto r = proto::replay_cluster_trace(
        config, recorder.events(), models::BuildOptions::Rejoin::Graceful);
    EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                      << r.diagnostic;
  }
}

TEST(Conformance, DynamicLossRejoinOverlapReplays) {
  // The ROADMAP divergence scenario: p[1]'s waiting time tm[1] decays at
  // p[0] under loss (its replies are dropped), p[1] then leaves with the
  // decayed tm[1] on the books, gracefully rejoins, and runs into a
  // second loss window right after re-registration. The model now
  // restarts the rejoiner's tm from tmax on the join edge, exactly like
  // the hb coordinator; this scenario covers that path end to end. (The
  // reset itself is trace-invisible — the join beat sets rcvd, which
  // masks tm at the next round close — so the regression detector for
  // it is the state-count pin in rejoin_test.cpp, and this test pins
  // that decayed rounds, leave, rejoin and overlapping loss replay.)
  const auto config = conformance_config(hb::Variant::Dynamic, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  cluster.leave_at(1, 38);   // leaves with the next beat, at t=40
  cluster.rejoin_at(1, 46);  // graceful: > tmin after the t=40 leave
  cluster.start();
  cluster.run_until(25);    // healthy joined rounds close at 10, 20, 30
  cluster.fail_link(1, 0);  // p[1]'s t=30 reply vanishes: tm[1] decays
  cluster.run_until(35);    //   (the decayed t=40..45 round is recorded)
  cluster.restore_link(1, 0);  // up again so the leave beat gets through
  cluster.run_until(51);       // leave at 40, rejoin registers at t=50
  cluster.fail_link(1, 0);     // loss overlapping the re-registration:
  cluster.run_until(75);       //   p[1] starves p[0], which inactivates
  cluster.restore_link(1, 0);
  cluster.run_until(120);
  ASSERT_FALSE(recorder.events().empty());
  const auto saw = [&](hb::ProtocolEvent::Kind kind) {
    for (const auto& e : recorder.events()) {
      if (e.kind == kind) return true;
    }
    return false;
  };
  ASSERT_TRUE(saw(hb::ProtocolEvent::Kind::ParticipantLeft));
  ASSERT_TRUE(saw(hb::ProtocolEvent::Kind::ParticipantRejoined));
  const auto r = proto::replay_cluster_trace(
      config, recorder.events(), models::BuildOptions::Rejoin::Graceful);
  EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                    << r.diagnostic;
}

TEST(Conformance, RandomLossAndCrashTracesReplay) {
  // Seeded property test: under random loss and crash times, every trace
  // the engines can produce must still be a trace of the model. Loss is
  // never recorded directly — the guided walk has to infer each lost
  // message from the deliveries that did not happen.
  std::mt19937_64 rng{20260805u};
  for (const auto variant : kAllVariants) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto [tmin, tmax] =
          kTimingPoints[rng() % std::size(kTimingPoints)];
      auto config = conformance_config(variant, tmin, tmax);
      config.loss_probability = 0.2;
      config.seed = rng();
      SCOPED_TRACE(testing::Message()
                   << to_string(variant) << " tmin=" << tmin << " tmax="
                   << tmax << " seed=" << config.seed << " rep=" << rep);
      hb::Cluster cluster{config};
      TraceRecorder recorder{cluster};
      const auto crash_time = [&] {
        return static_cast<sim::Time>(1 + rng() % (4 * tmax));
      };
      if (rng() % 2 == 0) cluster.crash_participant_at(1, crash_time());
      if (rng() % 2 == 0) cluster.crash_coordinator_at(crash_time());
      cluster.start();
      cluster.run_until(6 * tmax);
      const auto r = proto::replay_cluster_trace(config, recorder.events());
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

// ---- mutation canaries ----

TEST(ConformanceCanary, PerturbedTimingConstantIsRejected) {
  const auto config = conformance_config(hb::Variant::Binary, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  cluster.crash_participant_at(1, 21);
  cluster.start();
  cluster.run_until(90);
  ASSERT_FALSE(recorder.events().empty());
  ASSERT_TRUE(proto::replay_cluster_trace(config, recorder.events()).ok);

  // The same trace against a model whose tmax drifted by one: the
  // model's rounds come at the wrong instants, so no run matches.
  auto options = proto::model_options_for(config);
  options.timing.tmax = 9;
  const auto r = proto::replay_through_model(config.protocol.variant,
                                             options, recorder.events());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.diagnostic.empty());
}

TEST(ConformanceCanary, PerturbedDeadlineLawIsRejected) {
  // Recorded under the published participant deadline (3*tmax - tmin),
  // replayed against a model using the corrected one (2*tmax): the
  // model is forced to inactivate p[1] earlier than the recorded NV
  // event, an observable mismatch.
  const auto config = conformance_config(hb::Variant::Binary, 4, 10);
  hb::Cluster cluster{config};
  TraceRecorder recorder{cluster};
  cluster.crash_coordinator_at(21);
  cluster.start();
  cluster.run_until(80);
  ASSERT_FALSE(recorder.events().empty());
  ASSERT_TRUE(proto::replay_cluster_trace(config, recorder.events()).ok);

  auto options = proto::model_options_for(config);
  options.corrected_bounds = true;
  const auto r = proto::replay_through_model(config.protocol.variant,
                                             options, recorder.events());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.diagnostic.empty());
}

}  // namespace
}  // namespace ahb
