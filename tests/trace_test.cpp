#include <gtest/gtest.h>

#include "mc/explorer.hpp"
#include "mc/lts.hpp"
#include "ta/network.hpp"
#include "trace/trace.hpp"

namespace ahb::trace {
namespace {

using ta::Edge;
using ta::StateMut;
using ta::StateView;

/// One automaton, one clock: fires "go" at c == 2, then idles.
ta::Network timed_net() {
  ta::Network net;
  const auto a = net.add_automaton("a");
  const auto c = net.add_clock("c", 5);
  const auto l0 = net.add_location(a, "wait", ta::LocKind::Normal,
                                   [c](const StateView& v) {
                                     return v.clk(c) <= 2;
                                   });
  const auto l1 = net.add_location(a, "done");
  net.add_edge(a, Edge{.src = l0,
                       .dst = l1,
                       .guard = [c](const StateView& v) {
                         return v.clk(c) == 2;
                       },
                       .label = "go"});
  net.freeze();
  return net;
}

std::vector<mc::TraceStep> reach_done(const ta::Network& net) {
  mc::Explorer ex{net};
  const auto r = ex.reach([](const StateView& v) {
    return v.loc(ta::AutomatonId{0}) == 1;
  });
  EXPECT_TRUE(r.found);
  return r.trace;
}

TEST(Trace, TimelineFoldsTicksIntoTimestamps) {
  const auto net = timed_net();
  const auto trace = reach_done(net);
  const auto text = render_timeline(net, trace);
  // The action fires at model time 2 and ticks are not listed.
  EXPECT_NE(text.find("t=2    a.go"), std::string::npos);
  EXPECT_EQ(text.find("tick"), std::string::npos);
  EXPECT_NE(text.find("a@done"), std::string::npos);
}

TEST(Trace, FullRenderListsEveryStep) {
  const auto net = timed_net();
  const auto trace = reach_done(net);
  const auto text = render_full(net, trace);
  EXPECT_NE(text.find("=== initial state ==="), std::string::npos);
  EXPECT_NE(text.find("step 3: a.go"), std::string::npos);  // 2 ticks + go
  EXPECT_NE(text.find("c="), std::string::npos);
}

TEST(Trace, FilteredTimelineKeepsOnlyMatches) {
  const auto net = timed_net();
  const auto trace = reach_done(net);
  EXPECT_NE(render_timeline_filtered(net, trace, {"go"}).find("a.go"),
            std::string::npos);
  EXPECT_EQ(render_timeline_filtered(net, trace, {"nothing"}).find("a.go"),
            std::string::npos);
  // Empty filter keeps everything.
  EXPECT_NE(render_timeline_filtered(net, trace, {}).find("a.go"),
            std::string::npos);
}

TEST(Trace, DotContainsStatesAndLabels) {
  mc::Lts lts;
  lts.state_count = 2;
  lts.initial = 0;
  lts.edges.push_back(mc::Lts::Edge{0, lts.label_id("hop"), 1});
  const auto dot = to_dot(lts);
  EXPECT_NE(dot.find("digraph lts"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1 [label=\"hop\"]"), std::string::npos);
  EXPECT_NE(dot.find("init -> s0"), std::string::npos);
}

}  // namespace
}  // namespace ahb::trace
