// Deeper semantic tests of the timed-automata engine: effect visibility
// and ordering, committed-sync interaction, broadcast alternatives, and
// layout/introspection behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "ta/network.hpp"

namespace ahb::ta {
namespace {

TEST(Semantics, ReceiversSeeSenderEffects) {
  // UPPAAL semantics: the sender's update runs before the receivers',
  // and receivers observe it.
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Broadcast);
  const auto x = net.add_var("x", 0);
  const auto y = net.add_var("y", 0);

  const auto a = net.add_automaton("sender");
  const auto a0 = net.add_location(a, "l");
  net.add_edge(a, Edge{.src = a0,
                       .dst = a0,
                       .chan = ch,
                       .dir = SyncDir::Send,
                       .effect = [x](StateMut& m) { m.set(x, 41); },
                       .label = "snd"});
  const auto b = net.add_automaton("receiver");
  const auto b0 = net.add_location(b, "l");
  net.add_edge(b, Edge{.src = b0,
                       .dst = b0,
                       .chan = ch,
                       .dir = SyncDir::Recv,
                       .effect =
                           [x, y](StateMut& m) { m.set(y, m.var(x) + 1); },
                       .label = "rcv"});
  net.freeze();

  for (const auto& t : net.successors(net.initial_state())) {
    if (t.kind != Transition::Kind::Broadcast) continue;
    const StateView v{net, t.target};
    EXPECT_EQ(v.var(x), 41);
    EXPECT_EQ(v.var(y), 42);
    return;
  }
  FAIL() << "broadcast not generated";
}

TEST(Semantics, ReceiverEffectsRunInAutomatonOrder) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Broadcast);
  const auto trace = net.add_var("trace", 0);

  const auto sender = net.add_automaton("s");
  const auto s0 = net.add_location(sender, "l");
  net.add_edge(sender, Edge{.src = s0,
                            .dst = s0,
                            .chan = ch,
                            .dir = SyncDir::Send,
                            .label = "snd"});
  // Two receivers appending their digit: final value must be 12 (first
  // automaton added runs first).
  for (int digit = 1; digit <= 2; ++digit) {
    const auto r = net.add_automaton("r" + std::to_string(digit));
    const auto r0 = net.add_location(r, "l");
    net.add_edge(r, Edge{.src = r0,
                         .dst = r0,
                         .chan = ch,
                         .dir = SyncDir::Recv,
                         .effect =
                             [trace, digit](StateMut& m) {
                               m.set(trace, m.var(trace) * 10 + digit);
                             },
                         .label = "rcv"});
  }
  net.freeze();

  for (const auto& t : net.successors(net.initial_state())) {
    if (t.kind != Transition::Kind::Broadcast) continue;
    EXPECT_EQ(StateView(net, t.target).var(trace), 12);
    return;
  }
  FAIL() << "broadcast not generated";
}

TEST(Semantics, CommittedBlocksUnrelatedSyncs) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Handshake);
  // a is committed with only an internal resolution edge.
  const auto a = net.add_automaton("a");
  const auto ac = net.add_location(a, "c", LocKind::Committed);
  const auto a1 = net.add_location(a, "done");
  net.add_edge(a, Edge{.src = ac, .dst = a1, .label = "resolve"});
  // b and c could handshake, but neither is committed.
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "l");
  net.add_edge(b, Edge{.src = b0, .dst = b0, .chan = ch,
                       .dir = SyncDir::Send, .label = "snd"});
  const auto c = net.add_automaton("c");
  const auto c0 = net.add_location(c, "l");
  net.add_edge(c, Edge{.src = c0, .dst = c0, .chan = ch,
                       .dir = SyncDir::Recv, .label = "rcv"});
  net.freeze();

  const auto succ = net.successors(net.initial_state());
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(net.label_of(succ[0]), "a.resolve");
}

TEST(Semantics, CommittedParticipantEnablesSync) {
  // A sync is allowed while committed automata exist iff one of its
  // edges leaves a committed location.
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Handshake);
  const auto a = net.add_automaton("a");
  const auto ac = net.add_location(a, "c", LocKind::Committed);
  const auto a1 = net.add_location(a, "done");
  net.add_edge(a, Edge{.src = ac, .dst = a1, .chan = ch,
                       .dir = SyncDir::Send, .label = "snd"});
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "l");
  net.add_edge(b, Edge{.src = b0, .dst = b0, .chan = ch,
                       .dir = SyncDir::Recv, .label = "rcv"});
  net.freeze();

  const auto succ = net.successors(net.initial_state());
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0].kind, Transition::Kind::Sync);
}

TEST(Semantics, BroadcastAlternativesBranchPerReceiverEdge) {
  // A receiver with two enabled receive edges contributes two broadcast
  // alternatives.
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Broadcast);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "l");
  net.add_edge(a, Edge{.src = a0, .dst = a0, .chan = ch,
                       .dir = SyncDir::Send, .label = "snd"});
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "l0");
  const auto b1 = net.add_location(b, "l1");
  const auto b2 = net.add_location(b, "l2");
  net.add_edge(b, Edge{.src = b0, .dst = b1, .chan = ch,
                       .dir = SyncDir::Recv, .label = "to1"});
  net.add_edge(b, Edge{.src = b0, .dst = b2, .chan = ch,
                       .dir = SyncDir::Recv, .label = "to2"});
  net.freeze();

  int broadcasts = 0;
  std::vector<Slot> b_locations;
  for (const auto& t : net.successors(net.initial_state())) {
    if (t.kind != Transition::Kind::Broadcast) continue;
    ++broadcasts;
    b_locations.push_back(StateView(net, t.target).loc(AutomatonId{1}));
  }
  EXPECT_EQ(broadcasts, 2);
  std::sort(b_locations.begin(), b_locations.end());
  EXPECT_EQ(b_locations, (std::vector<Slot>{static_cast<Slot>(b1),
                                            static_cast<Slot>(b2)}));
}

TEST(Semantics, SenderGuardBlocksWholeBroadcast) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Broadcast);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "l");
  net.add_edge(a, Edge{.src = a0,
                       .dst = a0,
                       .chan = ch,
                       .dir = SyncDir::Send,
                       .guard = [](const StateView&) { return false; },
                       .label = "snd"});
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "l");
  net.add_edge(b, Edge{.src = b0, .dst = b0, .chan = ch,
                       .dir = SyncDir::Recv, .label = "rcv"});
  net.freeze();

  for (const auto& t : net.successors(net.initial_state())) {
    EXPECT_NE(t.kind, Transition::Kind::Broadcast);
  }
}

TEST(Semantics, InvariantOnOtherAutomatonVariableIsRespected) {
  // Invariants may read shared variables: shrinking the bound via a
  // discrete transition must immediately constrain time.
  Network net;
  const auto limit = net.add_var("limit", 5);
  const auto c = net.add_clock("c", 10);
  const auto a = net.add_automaton("holder");
  net.add_location(a, "l", LocKind::Normal,
                   [limit, c](const StateView& v) {
                     return v.clk(c) <= v.var(limit);
                   });
  const auto b = net.add_automaton("shrinker");
  const auto b0 = net.add_location(b, "l0");
  const auto b1 = net.add_location(b, "l1");
  net.add_edge(b, Edge{.src = b0,
                       .dst = b1,
                       .guard = [c](const StateView& v) {
                         return v.clk(c) == 3;
                       },
                       .effect = [limit](StateMut& m) { m.set(limit, 3); },
                       .label = "shrink"});
  net.freeze();

  // Tick to c == 3, shrink the limit, then no tick may follow.
  State s = net.initial_state();
  for (int i = 0; i < 3; ++i) {
    const auto succ = net.successors(s);
    const auto tick = std::find_if(succ.begin(), succ.end(), [](const auto& t) {
      return t.kind == Transition::Kind::Tick;
    });
    ASSERT_NE(tick, succ.end());
    s = tick->target;
  }
  const auto succ = net.successors(s);
  const auto shrink =
      std::find_if(succ.begin(), succ.end(), [&](const auto& t) {
        return t.kind == Transition::Kind::Internal;
      });
  ASSERT_NE(shrink, succ.end());
  const State after = shrink->target;
  EXPECT_FALSE(net.tick_enabled(after));
}

TEST(Semantics, MultipleClocksTickTogether) {
  Network net;
  const auto a = net.add_automaton("a");
  net.add_location(a, "l");
  const auto c1 = net.add_clock("c1", 10);
  const auto c2 = net.add_clock("c2", 3);
  net.freeze();

  State s = net.initial_state();
  for (int i = 0; i < 6; ++i) s = net.successors(s)[0].target;
  const StateView v{net, s};
  EXPECT_EQ(v.clk(c1), 6);
  EXPECT_EQ(v.clk(c2), 3);  // saturated at its own cap
}

}  // namespace
}  // namespace ahb::ta
