// StateCodec property tests: the compressed encodings (pack and
// collapse, see ta/codec.hpp) must be exact — every reachable state
// encodes and decodes back to itself, and the packed hash is a function
// of the state value alone. The states come from a BFS prefix of a real
// protocol model so the sampled vectors exercise genuine slot ranges,
// not synthetic ones.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mc/store.hpp"
#include "models/heartbeat_model.hpp"
#include "ta/codec.hpp"
#include "util/hash.hpp"

namespace ahb {
namespace {

using models::BuildOptions;
using models::Flavor;
using models::HeartbeatModel;

HeartbeatModel build_model(Flavor flavor, int participants, int tmin,
                           int tmax) {
  BuildOptions options;
  options.timing = {tmin, tmax};
  options.participants = participants;
  return HeartbeatModel::build(flavor, options);
}

/// Collects the first `limit` distinct reachable states in BFS order —
/// a deterministic sample that sweeps the genuine slot ranges (early
/// layers pin the narrow values, later layers the decayed clocks and
/// waiting times).
std::vector<ta::State> sample_reachable(const ta::Network& net,
                                        std::size_t limit) {
  std::set<std::vector<ta::Slot>> seen;
  std::vector<ta::State> states;
  std::size_t next = 0;
  states.push_back(net.initial_state());
  seen.insert({states[0].slots().begin(), states[0].slots().end()});
  while (next < states.size() && states.size() < limit) {
    const ta::State state = states[next++];
    for (auto& t : net.successors(state)) {
      if (states.size() >= limit) break;
      if (seen.insert({t.target.slots().begin(), t.target.slots().end()})
              .second) {
        states.push_back(std::move(t.target));
      }
    }
  }
  return states;
}

TEST(StateCodec, PackRoundTripsEveryReachableState) {
  for (const auto flavor :
       {Flavor::Binary, Flavor::TwoPhase, Flavor::Static, Flavor::Dynamic}) {
    const auto model = build_model(flavor, 2, 4, 10);
    const auto& codec = model.net().codec();
    const auto states = sample_reachable(model.net(), 3000);
    ASSERT_GT(states.size(), 100u);
    std::vector<std::byte> packed(codec.packed_bytes());
    std::vector<std::byte> packed2(codec.packed_bytes());
    ta::State decoded{codec.slot_count()};
    for (const auto& s : states) {
      codec.pack(s.slots(), packed.data());
      codec.unpack(packed.data(), decoded.slots_mut());
      ASSERT_EQ(decoded, s);
      // The hash is a function of the value: re-encoding the decoded
      // vector gives the identical image and hash.
      codec.pack(decoded.slots(), packed2.data());
      ASSERT_EQ(packed, packed2);
      ASSERT_EQ(codec.packed_hash(s.slots(), packed2),
                hash_bytes({packed.data(), packed.size()}));
    }
  }
}

TEST(StateCodec, CollapseRootRoundTripsViaComponents) {
  const auto model = build_model(Flavor::Static, 2, 4, 10);
  const auto& codec = model.net().codec();
  const auto states = sample_reachable(model.net(), 3000);
  ASSERT_GT(states.size(), 100u);
  ASSERT_GT(codec.component_count(), 0u);
  for (const auto& s : states) {
    for (std::size_t c = 0; c < codec.component_count(); ++c) {
      const auto& comp = codec.component(c);
      if (comp.key_bytes == 0) continue;
      std::vector<std::byte> key(comp.key_bytes);
      codec.pack_component(c, s.slots(), key.data());
      ta::State decoded{codec.slot_count()};
      codec.unpack_component(c, key.data(), decoded.slots_mut());
      for (const std::uint32_t slot : comp.slots) {
        ASSERT_EQ(decoded.slots()[slot], s.slots()[slot]);
      }
    }
  }
}

TEST(StateCodec, CompressedStoresRoundTripAndAgreeOnIdentity) {
  // The store-level property behind count invariance: for any sampled
  // state multiset, all three encodings intern to the same set of
  // indices (same order, same novelty) and decode back to the original.
  for (const auto flavor : {Flavor::RevisedBinary, Flavor::Dynamic}) {
    const auto model = build_model(flavor, 2, 4, 10);
    const auto& codec = model.net().codec();
    const auto states = sample_reachable(model.net(), 3000);
    mc::StateStore none{codec, ta::Compression::None};
    mc::StateStore pack{codec, ta::Compression::Pack};
    mc::StateStore collapse{codec, ta::Compression::Collapse};
    for (const auto& s : states) {
      const auto [ni, nfresh] = none.intern(s);
      const auto [pi, pfresh] = pack.intern(s);
      const auto [ci, cfresh] = collapse.intern(s);
      ASSERT_EQ(ni, pi);
      ASSERT_EQ(ni, ci);
      ASSERT_EQ(nfresh, pfresh);
      ASSERT_EQ(nfresh, cfresh);
    }
    ASSERT_EQ(none.size(), pack.size());
    ASSERT_EQ(none.size(), collapse.size());
    ta::State out{codec.slot_count()};
    for (std::uint32_t i = 0; i < none.size(); ++i) {
      pack.load(i, out);
      ASSERT_EQ(out, none.get(i));
      collapse.load(i, out);
      ASSERT_EQ(out, none.get(i));
      ASSERT_EQ(collapse.find(out), i);
    }
  }
}

TEST(StateCodec, WidthsComeFromDeclaredRanges) {
  // A hand-built network with annotated ranges: constant slots take no
  // bits, narrow ranges take their exact width, and negative minima
  // rebase.
  ta::Network net;
  const auto a = net.add_automaton("a");
  const auto l0 = net.add_location(a, "only");
  net.set_initial(a, l0);
  net.add_var("flag", 0, 0, 1);
  net.add_var("constant", 3, 3, 3);
  net.add_var("signed_range", 0, -3, 4, a);
  net.add_clock("clk", 5);
  net.add_edge(a, ta::Edge{.src = l0, .dst = l0, .label = "spin"});
  net.freeze();
  const auto& codec = net.codec();
  ASSERT_EQ(codec.slot_count(), 5u);
  EXPECT_EQ(codec.field(0).width, 0);  // single location
  EXPECT_EQ(codec.field(1).width, 1);  // flag in [0,1]
  EXPECT_EQ(codec.field(2).width, 0);  // constant
  EXPECT_EQ(codec.field(3).width, 3);  // [-3,4]: 8 values
  EXPECT_EQ(codec.field(3).base, -3);
  EXPECT_EQ(codec.field(4).width, 3);  // clock capped at 5: 6 values
  // 1 + 0 + 3 + 3 bits = 7 bits -> one byte.
  EXPECT_EQ(codec.packed_bytes(), 1u);
  ta::State s = net.initial_state();
  s.slots_mut()[3] = -3;
  std::byte b{};
  codec.pack(s.slots(), &b);
  ta::State decoded{codec.slot_count()};
  codec.unpack(&b, decoded.slots_mut());
  EXPECT_EQ(decoded, s);
}

}  // namespace
}  // namespace ahb
