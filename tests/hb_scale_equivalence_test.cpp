// ScaleCluster-vs-Cluster equivalence (src/hb/cluster_scale.hpp).
//
// The cluster-scale engine claims bit-for-bit the same behaviour as the
// legacy harness: same ClusterConfig, same fault schedule, same seeded
// RNG stream => the identical ProtocolEvent sequence (kinds, times,
// node ids, message ids, fan-outs). These tests pin that claim on small
// clusters across all six variants and the Table-1 timing points, under
// zero delay, in-spec random delay, and random loss — and then close
// the loop by replaying a scale-engine trace through the conformance
// layer, which only knows the legacy harness existed.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "hb/cluster.hpp"
#include "hb/cluster_scale.hpp"
#include "proto/conformance.hpp"
#include "proto/rules.hpp"

namespace ahb {
namespace {

constexpr std::pair<int, int> kTimingPoints[] = {
    {1, 10}, {4, 10}, {5, 10}, {9, 10}, {10, 10}};

constexpr hb::Variant kAllVariants[] = {
    hb::Variant::Binary,   hb::Variant::RevisedBinary, hb::Variant::TwoPhase,
    hb::Variant::Static,   hb::Variant::Expanding,     hb::Variant::Dynamic};

// One injected fault, applied identically to either engine.
struct Fault {
  enum class Kind { CrashCoordinator, CrashParticipant, Leave, Rejoin };
  Kind kind{};
  int node = 0;
  sim::Time when = 0;
};

struct Scenario {
  hb::ClusterConfig config;
  std::vector<Fault> faults;
  sim::Time horizon = 0;
};

template <typename Engine>
void inject(Engine& engine, const Fault& fault) {
  switch (fault.kind) {
    case Fault::Kind::CrashCoordinator:
      engine.crash_coordinator_at(fault.when);
      break;
    case Fault::Kind::CrashParticipant:
      engine.crash_participant_at(fault.node, fault.when);
      break;
    case Fault::Kind::Leave:
      engine.leave_at(fault.node, fault.when);
      break;
    case Fault::Kind::Rejoin:
      engine.rejoin_at(fault.node, fault.when);
      break;
  }
}

template <typename Engine>
std::vector<hb::ProtocolEvent> run_trace(const Scenario& scenario) {
  Engine engine{scenario.config};
  std::vector<hb::ProtocolEvent> events;
  engine.on_protocol_event(
      [&](const hb::ProtocolEvent& e) { events.push_back(e); });
  for (const auto& fault : scenario.faults) inject(engine, fault);
  engine.start();
  engine.run_until(scenario.horizon);
  return events;
}

const char* kind_name(hb::ProtocolEvent::Kind kind) {
  using Kind = hb::ProtocolEvent::Kind;
  switch (kind) {
    case Kind::CoordinatorBeat: return "CoordinatorBeat";
    case Kind::CoordinatorReceivedBeat: return "CoordinatorReceivedBeat";
    case Kind::CoordinatorReceivedLeave: return "CoordinatorReceivedLeave";
    case Kind::CoordinatorInactivated: return "CoordinatorInactivated";
    case Kind::CoordinatorCrashed: return "CoordinatorCrashed";
    case Kind::ParticipantReceivedBeat: return "ParticipantReceivedBeat";
    case Kind::ParticipantReplied: return "ParticipantReplied";
    case Kind::ParticipantJoinBeat: return "ParticipantJoinBeat";
    case Kind::ParticipantLeft: return "ParticipantLeft";
    case Kind::ParticipantInactivated: return "ParticipantInactivated";
    case Kind::ParticipantCrashed: return "ParticipantCrashed";
    case Kind::ParticipantRejoined: return "ParticipantRejoined";
  }
  return "?";
}

// Runs the scenario on both engines and requires identical event
// streams and identical aggregate transport statistics.
void expect_equivalent(const Scenario& scenario) {
  const auto legacy = run_trace<hb::Cluster>(scenario);
  const auto scale = run_trace<hb::ScaleCluster>(scenario);
  ASSERT_FALSE(legacy.empty());
  ASSERT_EQ(legacy.size(), scale.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const auto& a = legacy[i];
    const auto& b = scale[i];
    ASSERT_TRUE(a.kind == b.kind && a.at == b.at && a.node == b.node &&
                a.msg_id == b.msg_id && a.fanout == b.fanout)
        << "event " << i << ": legacy {" << kind_name(a.kind) << " at=" << a.at
        << " node=" << a.node << " msg=" << a.msg_id << " fanout=" << a.fanout
        << "} scale {" << kind_name(b.kind) << " at=" << b.at
        << " node=" << b.node << " msg=" << b.msg_id << " fanout=" << b.fanout
        << "}";
  }

  // Same messages on the wire, not just the same observable events.
  hb::Cluster lc{scenario.config};
  hb::ScaleCluster sc{scenario.config};
  for (const auto& fault : scenario.faults) {
    inject(lc, fault);
    inject(sc, fault);
  }
  lc.start();
  sc.start();
  lc.run_until(scenario.horizon);
  sc.run_until(scenario.horizon);
  const auto& ln = lc.network_stats();
  const auto& sn = sc.network_stats();
  EXPECT_EQ(ln.sent, sn.sent);
  EXPECT_EQ(ln.delivered, sn.delivered);
  EXPECT_EQ(ln.lost, sn.lost);
  EXPECT_EQ(ln.reordered, sn.reordered);
  EXPECT_EQ(ln.out_of_spec_delay, sn.out_of_spec_delay);
  EXPECT_EQ(ln.corrupted, sn.corrupted);
  EXPECT_EQ(ln.rejected, sn.rejected);
  EXPECT_EQ(lc.all_inactive(), sc.all_inactive());
  EXPECT_EQ(lc.coordinator().status(), sc.coordinator_status());
  EXPECT_EQ(lc.coordinator().inactivated_at(), sc.coordinator_inactivated_at());
  for (int id = 1; id <= scenario.config.participants; ++id) {
    EXPECT_EQ(lc.participant(id).status(), sc.participant_status(id))
        << "participant " << id;
    EXPECT_EQ(lc.participant(id).inactivated_at(),
              sc.participant_inactivated_at(id))
        << "participant " << id;
  }
}

hb::ClusterConfig base_config(hb::Variant variant, int tmin, int tmax) {
  hb::ClusterConfig config;
  config.protocol.variant = variant;
  config.protocol.tmin = tmin;
  config.protocol.tmax = tmax;
  config.participants = proto::variant_is_multi(variant) ? 2 : 1;
  config.min_delay = 0;
  config.max_delay = 0;
  config.seed = 1;
  return config;
}

TEST(ScaleEquivalence, ParticipantCrashCascadeMatchesForEveryVariant) {
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      Scenario scenario;
      scenario.config = base_config(variant, tmin, tmax);
      scenario.faults = {{Fault::Kind::CrashParticipant, 1, 2 * tmax + 1}};
      scenario.horizon = 9 * tmax;
      expect_equivalent(scenario);
    }
  }
}

TEST(ScaleEquivalence, CoordinatorCrashStarvationMatchesForEveryVariant) {
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      Scenario scenario;
      scenario.config = base_config(variant, tmin, tmax);
      scenario.faults = {{Fault::Kind::CrashCoordinator, 0, 2 * tmax + 1}};
      scenario.horizon = 8 * tmax;
      expect_equivalent(scenario);
    }
  }
}

TEST(ScaleEquivalence, RandomDelayMatchesForEveryVariant) {
  // In-spec random delays: every message id rides its own delay draw,
  // so this exercises the shared RNG-consumption order and the
  // same-instant (priority, schedule-order) tiebreak on both engines.
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      Scenario scenario;
      scenario.config = base_config(variant, tmin, tmax);
      scenario.config.participants =
          proto::variant_is_multi(variant) ? 4 : 1;
      scenario.config.max_delay = -1;  // default: tmin / 2
      scenario.config.seed = 7;
      scenario.faults = {{Fault::Kind::CrashParticipant, 1, 3 * tmax + 1}};
      scenario.horizon = 12 * tmax;
      expect_equivalent(scenario);
    }
  }
}

TEST(ScaleEquivalence, RandomLossMatchesAcrossSeeds) {
  // Lossy runs accelerate the waiting-time ladder at random rounds; any
  // divergence in loss-draw order between the engines shows up as a
  // different trace within a few rounds.
  for (const auto variant :
       {hb::Variant::Static, hb::Variant::Expanding, hb::Variant::Dynamic}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SCOPED_TRACE(testing::Message()
                   << to_string(variant) << " seed=" << seed);
      Scenario scenario;
      scenario.config = base_config(variant, 4, 10);
      scenario.config.participants = 3;
      scenario.config.loss_probability = 0.2;
      scenario.config.max_delay = -1;
      scenario.config.seed = seed;
      scenario.horizon = 40 * 10;
      expect_equivalent(scenario);
    }
  }
}

TEST(ScaleEquivalence, PayloadCorruptionMatchesAcrossSeeds) {
  // Armed corruption draws an extra Bernoulli (and, on a hit, a bit
  // index) per send, and every rejected image destroys a message mid-
  // round; identical event streams prove both engines consume the
  // corruption draws in the same order and validate at the same
  // boundary.
  for (const auto variant :
       {hb::Variant::Binary, hb::Variant::Static, hb::Variant::Dynamic}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SCOPED_TRACE(testing::Message()
                   << to_string(variant) << " seed=" << seed);
      Scenario scenario;
      scenario.config = base_config(variant, 4, 10);
      scenario.config.participants =
          proto::variant_is_multi(variant) ? 3 : 1;
      scenario.config.corrupt_probability = 0.05;
      scenario.config.max_delay = -1;
      scenario.config.seed = seed;
      scenario.horizon = 40 * 10;
      expect_equivalent(scenario);
    }
  }
}

TEST(ScaleEquivalence, ReceivePriorityOffMatches) {
  // With receive_priority disabled, timers win same-instant races; the
  // tiebreak flips to (priority=1 deliveries vs priority=... ) — the
  // exact legacy inversion must reproduce.
  for (const auto variant : {hb::Variant::Static, hb::Variant::TwoPhase}) {
    Scenario scenario;
    scenario.config = base_config(variant, 5, 10);
    scenario.config.participants = 3;
    scenario.config.receive_priority = false;
    scenario.config.max_delay = -1;
    scenario.config.seed = 11;
    scenario.faults = {{Fault::Kind::CrashParticipant, 2, 3 * 10 + 1}};
    scenario.horizon = 10 * 10;
    expect_equivalent(scenario);
  }
}

TEST(ScaleEquivalence, DynamicLeaveAndRejoinMatches) {
  for (const auto& [tmin, tmax] : kTimingPoints) {
    SCOPED_TRACE(testing::Message() << "tmin=" << tmin << " tmax=" << tmax);
    Scenario scenario;
    scenario.config = base_config(hb::Variant::Dynamic, tmin, tmax);
    scenario.config.participants = 3;
    scenario.faults = {{Fault::Kind::Leave, 1, 2 * tmax + 1},
                       {Fault::Kind::Rejoin, 1, 4 * tmax + 1},
                       {Fault::Kind::CrashCoordinator, 0, 7 * tmax + 1}};
    scenario.horizon = 12 * tmax;
    expect_equivalent(scenario);
  }
}

TEST(ScaleEquivalence, ScaleTraceReplaysThroughConformance) {
  // The conformance layer was written against the legacy harness; a
  // green replay of a ScaleCluster trace certifies the fast engine
  // against the timed-automata model with no scale-specific code.
  for (const auto variant : kAllVariants) {
    for (const auto& [tmin, tmax] : kTimingPoints) {
      SCOPED_TRACE(testing::Message() << to_string(variant) << " tmin="
                                      << tmin << " tmax=" << tmax);
      Scenario scenario;
      scenario.config = base_config(variant, tmin, tmax);
      scenario.faults = {{Fault::Kind::CrashParticipant, 1, 2 * tmax + 1}};
      scenario.horizon = 9 * tmax;
      const auto events = run_trace<hb::ScaleCluster>(scenario);
      ASSERT_FALSE(events.empty());
      const auto r = proto::replay_cluster_trace(scenario.config, events);
      EXPECT_TRUE(r.ok) << "matched " << r.matched << "/" << r.events << ": "
                        << r.diagnostic;
    }
  }
}

TEST(ScaleEquivalence, MidSizedRunKeepsAggregateBooks) {
  // Beyond the legacy harness's comfort zone the streams can no longer
  // be compared event-by-event in reasonable time; pin the scale
  // engine's own invariants instead: conservation of messages and a
  // full member table over a long healthy run.
  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Static;
  config.protocol.tmin = 4;
  config.protocol.tmax = 10;
  config.participants = 512;
  config.max_delay = -1;
  config.seed = 3;
  hb::ScaleCluster cluster{config};
  cluster.start();
  cluster.run_until(200 * 10);
  const auto& n = cluster.network_stats();
  // At the horizon only the last round's messages may still be in
  // flight; everything else must be accounted for.
  EXPECT_LE(n.delivered + n.lost, n.sent);
  EXPECT_LE(n.sent - n.delivered - n.lost,
            static_cast<std::uint64_t>(2 * config.participants));
  EXPECT_GT(n.delivered, 0u);
  EXPECT_EQ(n.lost, 0u);
  EXPECT_EQ(cluster.coordinator_status(), hb::Status::Active);
  EXPECT_EQ(cluster.member_count(), 512);
  EXPECT_GT(cluster.stats().rounds, 100u);
  EXPECT_EQ(cluster.stats().beats + cluster.stats().replies, n.sent);
}

TEST(ScaleEquivalence, MidSizedLossyRunInactivatesLikeTheProtocolSays) {
  // With 512 members at 1% i.i.d. loss some member misses consecutive
  // rounds almost immediately, so the accelerated ladder must drive
  // the coordinator to non-voluntary inactivation — at scale, loss
  // detection IS the protocol's steady state, not an error.
  hb::ClusterConfig config;
  config.protocol.variant = hb::Variant::Static;
  config.protocol.tmin = 4;
  config.protocol.tmax = 10;
  config.participants = 512;
  config.loss_probability = 0.01;
  config.max_delay = -1;
  config.seed = 3;
  hb::ScaleCluster cluster{config};
  cluster.start();
  cluster.run_until(200 * 10);
  EXPECT_EQ(cluster.coordinator_status(), hb::Status::InactiveNonVoluntarily);
  EXPECT_GT(cluster.network_stats().lost, 0u);
  EXPECT_TRUE(cluster.all_inactive());
}

}  // namespace
}  // namespace ahb
