// The past-time-LTL toolchain (src/rv/pltl + models/formula_check):
// parser round-trips and rejection, per-operator streaming semantics,
// a differential fuzz of the streaming evaluator against a naive
// full-history reference, shipped-formula/hand-monitor verdict
// equivalence on chaos runs and the conformance corpus, fingerprint
// invariance when formulas ride along with campaigns and missions, and
// the model backend's Table-1 verdicts via reachability and NDFS.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/mission.hpp"
#include "chaos/runner.hpp"
#include "hb/cluster.hpp"
#include "mc/ndfs.hpp"
#include "models/formula_check.hpp"
#include "models/heartbeat_model.hpp"
#include "rv/availability.hpp"
#include "rv/monitor.hpp"
#include "rv/pltl/eval.hpp"
#include "rv/pltl/formulas.hpp"
#include "rv/pltl/pltl.hpp"
#include "rv/suspicion.hpp"

namespace ahb {
namespace {

namespace pltl = rv::pltl;
using hb::ProtocolEvent;
using PKind = ProtocolEvent::Kind;
using CKind = sim::ChannelEvent::Kind;

ProtocolEvent pev(PKind kind, int node, sim::Time at) {
  return ProtocolEvent{kind, at, node, 0, 0};
}

sim::ChannelEvent cev(CKind kind, sim::Time at) {
  sim::ChannelEvent event{};
  event.kind = kind;
  event.at = at;
  return event;
}

pltl::BindParams binary_params(int tmin = 4, int tmax = 10) {
  pltl::BindParams params;
  params.variant = proto::Variant::Binary;
  params.timing = proto::Timing{tmin, tmax};
  params.fixed_bounds = true;
  params.participants = 1;
  return params;
}

std::unique_ptr<pltl::FormulaMonitor> monitor_for(
    const std::string& text, const pltl::BindParams& params) {
  auto made = pltl::make_monitor({"test", text, 9}, params);
  EXPECT_TRUE(made.ok()) << made.error;
  return std::move(made.monitor);
}

// --- parser ---------------------------------------------------------------

TEST(PltlParser, ShippedFormulasRoundTrip) {
  ASSERT_FALSE(pltl::shipped_formulas().empty());
  for (const auto& shipped : pltl::shipped_formulas()) {
    SCOPED_TRACE(std::string{shipped.name});
    const auto parsed = pltl::parse(shipped.text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const std::string printed = pltl::print(*parsed.formula);
    const auto reparsed = pltl::parse(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << "\n" << reparsed.error;
    EXPECT_TRUE(pltl::equal(*parsed.formula, *reparsed.formula)) << printed;
  }
}

TEST(PltlParser, PrecedenceAndAliases) {
  // `within` is sugar for a bounded `once`.
  const auto within = pltl::parse("within[<= 3] beat");
  const auto once = pltl::parse("once[<= 3] beat");
  ASSERT_TRUE(within.ok() && once.ok());
  EXPECT_TRUE(pltl::equal(*within.formula, *once.formula));
  EXPECT_EQ(pltl::print(*within.formula), pltl::print(*once.formula));

  // Implication is right-associative, && binds tighter than ||, word
  // aliases parse like the symbols.
  const auto pairs = std::vector<std::pair<std::string, std::string>>{
      {"beat -> leave -> reply", "beat -> (leave -> reply)"},
      {"beat && leave || reply", "(beat && leave) || reply"},
      {"beat and leave or not reply", "(beat && leave) || (!reply)"},
      {"beat since leave && reply", "(beat since leave) && reply"},
  };
  for (const auto& [a, b] : pairs) {
    SCOPED_TRACE(a);
    const auto pa = pltl::parse(a);
    const auto pb = pltl::parse(b);
    ASSERT_TRUE(pa.ok() && pb.ok());
    EXPECT_TRUE(pltl::equal(*pa.formula, *pb.formula));
  }
}

TEST(PltlParser, MalformedInputsRejected) {
  const char* bad[] = {
      "",
      "beat &&",
      "(beat",
      "beat)",
      "once[<= ] beat",
      "once[>= 2] beat",      // once takes upper bounds only
      "holds[<= 3] coord_live",  // holds takes lower bounds only
      "within beat",          // within requires a bound
      "no_such_atom",
      "stopped",              // fluent requires an argument
      "coord_live(1)",        // and this one forbids it
      "forall tmin: beat",    // parameter names are not variables
      "forall p beat",        // missing colon
      "beat extra",           // trailing input
      "once[<= 99999999999999999999] beat",  // literal overflow
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    const auto parsed = pltl::parse(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_FALSE(parsed.error.empty());
    EXPECT_LE(parsed.error_at, std::string_view{text}.size());
  }
  // Channel atoms parse with an argument but are rejected at compile
  // time (the wire events carry no participant identity).
  const auto made = pltl::make_monitor({"bad", "sent(1)", 9}, binary_params());
  EXPECT_FALSE(made.ok());
  EXPECT_FALSE(made.error.empty());
}

// --- streaming evaluator: operator semantics ------------------------------

TEST(PltlEval, InitIsTrueOnlyAtTheInitialPosition) {
  const auto m = monitor_for("init", binary_params());
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 1));
  EXPECT_FALSE(m->value());
  EXPECT_EQ(m->violations_total(), 1u);
}

TEST(PltlEval, PreviouslyLagsByOnePosition) {
  const auto m = monitor_for("previously beat", binary_params());
  EXPECT_FALSE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 1));
  EXPECT_FALSE(m->value());  // beat is *now*, not previously
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 2));
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 3));
  EXPECT_FALSE(m->value());
}

TEST(PltlEval, BoundedOnceExpires) {
  const auto m = monitor_for("within[<= 4] beat", binary_params());
  EXPECT_FALSE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 2));
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 6));
  EXPECT_TRUE(m->value());  // 6 - 2 <= 4
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 7));
  EXPECT_FALSE(m->value());  // 7 - 2 > 4
  EXPECT_GE(m->violations_total(), 1u);
}

TEST(PltlEval, UnboundedOnceLatches) {
  const auto m = monitor_for("once p_crash", binary_params());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 1));
  EXPECT_FALSE(m->value());
  m->on_protocol_event(pev(PKind::ParticipantCrashed, 1, 5));
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 100));
  EXPECT_TRUE(m->value());
}

TEST(PltlEval, HistoricallyFallsOnFirstFailure) {
  const auto m = monitor_for("historically !p_crash", binary_params());
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 1));
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::ParticipantCrashed, 1, 2));
  EXPECT_FALSE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 3));
  EXPECT_FALSE(m->value());  // sticky
  EXPECT_EQ(m->violations_total(), 1u);  // edge-triggered: counted once
}

TEST(PltlEval, SinceHoldsUntilLhsBreaks) {
  // "no crash since a beat": true from a beat onward while !p_crash.
  const auto m = monitor_for("(!p_crash) since beat", binary_params());
  EXPECT_FALSE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 1));
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 2));
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::ParticipantCrashed, 1, 3));
  EXPECT_FALSE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 4));
  EXPECT_TRUE(m->value());  // fresh witness
}

TEST(PltlEval, BeforeExcludesTheCurrentPosition) {
  const auto m = monitor_for("before[<= 2] beat", binary_params());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 5));
  EXPECT_FALSE(m->value());  // the witness must be strictly earlier
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 6));
  EXPECT_TRUE(m->value());
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 9));
  EXPECT_FALSE(m->value());
}

TEST(PltlEval, HoldsMeasuresTheCurrentTrueStretch) {
  // coord_stopped turns true at the inactivation and stays; the stretch
  // is anchored there.
  const auto m = monitor_for("holds[> 3] coord_stopped", binary_params());
  m->on_protocol_event(pev(PKind::CoordinatorInactivated, 0, 2));
  EXPECT_FALSE(m->value());  // stretch length 0
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 4));
  EXPECT_FALSE(m->value());  // 4 - 2 = 2
  m->on_protocol_event(pev(PKind::ParticipantLeft, 1, 6));
  EXPECT_TRUE(m->value());  // 6 - 2 = 4 > 3
}

TEST(PltlEval, FinishChecksTheHorizonWithoutCommitting) {
  const auto m = monitor_for("within[<= 4] beat", binary_params());
  m->on_protocol_event(pev(PKind::CoordinatorBeat, 0, 2));
  EXPECT_TRUE(m->value());
  EXPECT_EQ(m->violations_total(), 1u);  // initial fall at position 0
  m->finish(100);
  EXPECT_EQ(m->violations_total(), 2u);  // deadline long expired
}

TEST(PltlEval, QuantifierExpandsOverParticipants) {
  auto params = binary_params();
  params.variant = proto::Variant::Static;
  params.participants = 2;
  const auto m = monitor_for("forall p: once c_recv_beat(p)", params);
  m->on_protocol_event(pev(PKind::CoordinatorReceivedBeat, 1, 1));
  EXPECT_FALSE(m->value());
  m->on_protocol_event(pev(PKind::CoordinatorReceivedBeat, 2, 2));
  EXPECT_TRUE(m->value());
}

// --- satellite: zero-event availability stays finite ----------------------

TEST(Availability, ZeroEventSummaryIsFinite) {
  rv::AvailabilityStats stats(2);
  stats.finish(0);
  const auto& summary = stats.summary();
  EXPECT_EQ(summary.up_fraction(), 1.0);
  EXPECT_EQ(summary.detection_mean(), 0.0);
  EXPECT_TRUE(std::isfinite(summary.up_fraction()));
  EXPECT_TRUE(std::isfinite(summary.detection_mean()));
}

// --- satellite: detaching a sink mid-run ----------------------------------

TEST(SinkChain, DetachMidRunThenDestroyIsSafe) {
  chaos::RunSpec spec;
  spec.variant = proto::Variant::Dynamic;
  spec.tmin = 4;
  spec.tmax = 10;
  spec.participants = 2;
  spec.horizon = 400;
  hb::Cluster cluster(chaos::cluster_config_for(spec));

  auto made = pltl::make_monitor({"r1", std::string{pltl::find_shipped("r1")->text}, 1},
                                 pltl::BindParams{spec.variant, spec.timing(),
                                                  true, spec.participants, 2});
  ASSERT_TRUE(made.ok()) << made.error;
  cluster.add_sink(made.monitor.get());
  cluster.start();
  cluster.run_until(100);
  EXPECT_GT(made.monitor->events_seen(), 0u);

  // Detach and destroy the monitor with the run still going: the chain
  // must not retain a dangling pointer (ASan-covered via the rv label).
  cluster.remove_sink(made.monitor.get());
  const auto seen = made.monitor->events_seen();
  made.monitor.reset();
  cluster.run_until(spec.horizon);
  EXPECT_GT(cluster.network_stats().delivered, 0u);
  (void)seen;
}

// --- satellite: S2 obligation is discharged on a graceful leave -----------

TEST(Suspicion, GracefulLeaveDischargesS2AndFormulaAgrees) {
  const auto params = binary_params();
  rv::SuspicionMonitor::Config config;
  config.variant = params.variant;
  config.timing = params.timing;
  config.participants = 1;
  const auto bounds =
      rv::MonitorBounds::defaults(params.timing, params.variant, true);

  const std::string s2_text{pltl::find_shipped("s2")->text};
  const std::vector<ProtocolEvent> graceful = {
      pev(PKind::CoordinatorReceivedBeat, 1, 10),
      pev(PKind::ParticipantLeft, 1, 20),
      pev(PKind::CoordinatorReceivedLeave, 1, 22),
  };
  const std::vector<ProtocolEvent> crashed = {
      pev(PKind::CoordinatorReceivedBeat, 1, 10),
      pev(PKind::ParticipantCrashed, 1, 20),
  };

  const auto s2_fired = [&](const std::vector<ProtocolEvent>& events,
                            bool use_formula) {
    if (use_formula) {
      auto made = pltl::make_monitor({"s2", s2_text, 4}, params);
      EXPECT_TRUE(made.ok()) << made.error;
      for (const auto& event : events) made.monitor->on_protocol_event(event);
      made.monitor->finish(400);
      return made.monitor->violations_total() > 0;
    }
    rv::SuspicionMonitor monitor{config, bounds};
    for (const auto& event : events) monitor.on_protocol_event(event);
    monitor.finish(400);
    return std::any_of(
        monitor.violations().begin(), monitor.violations().end(),
        [](const rv::Violation& v) {
          return v.detail.find("never reached suspicion threshold") !=
                 std::string::npos;
        });
  };

  // Negative control: the leave discharges the obligation on both paths.
  EXPECT_FALSE(s2_fired(graceful, /*use_formula=*/false));
  EXPECT_FALSE(s2_fired(graceful, /*use_formula=*/true));
  // Positive control: a crash with no further rounds fires on both.
  EXPECT_TRUE(s2_fired(crashed, /*use_formula=*/false));
  EXPECT_TRUE(s2_fired(crashed, /*use_formula=*/true));
}

// --- differential fuzz: streaming vs full-history reference ---------------

// The reference evaluates the *AST* (not the compiled form) over the
// full list of committed positions, with environment-based quantifier
// expansion and declarative (exists/forall) definitions of the past
// operators — an independent path from the compiler's postorder
// instructions and incremental per-operator state.
struct RefPos {
  sim::Time at = 0;
  bool init = false;
  bool has_pe = false;
  ProtocolEvent pe{};
  bool has_ce = false;
  sim::ChannelEvent ce{};
  pltl::FluentTracker fluents;
};

struct EventAtom {
  const char* name;
  bool protocol;
  int kind;
};

constexpr EventAtom kRefEventAtoms[] = {
    {"beat", true, static_cast<int>(PKind::CoordinatorBeat)},
    {"c_recv_beat", true, static_cast<int>(PKind::CoordinatorReceivedBeat)},
    {"c_recv_leave", true, static_cast<int>(PKind::CoordinatorReceivedLeave)},
    {"c_inactive", true, static_cast<int>(PKind::CoordinatorInactivated)},
    {"c_crash", true, static_cast<int>(PKind::CoordinatorCrashed)},
    {"p_recv_beat", true, static_cast<int>(PKind::ParticipantReceivedBeat)},
    {"reply", true, static_cast<int>(PKind::ParticipantReplied)},
    {"join_beat", true, static_cast<int>(PKind::ParticipantJoinBeat)},
    {"leave", true, static_cast<int>(PKind::ParticipantLeft)},
    {"p_inactive", true, static_cast<int>(PKind::ParticipantInactivated)},
    {"p_crash", true, static_cast<int>(PKind::ParticipantCrashed)},
    {"rejoin", true, static_cast<int>(PKind::ParticipantRejoined)},
    {"sent", false, static_cast<int>(CKind::Sent)},
    {"delivered", false, static_cast<int>(CKind::Delivered)},
    {"lost", false, static_cast<int>(CKind::Lost)},
    {"blocked", false, static_cast<int>(CKind::Blocked)},
    {"duplicated", false, static_cast<int>(CKind::Duplicated)},
    {"corrupted", false, static_cast<int>(CKind::Corrupted)},
    {"rejected", false, static_cast<int>(CKind::Rejected)},
};

using Env = std::map<std::string, int>;

sim::Time ref_bexpr(const pltl::BoundExpr& e, const pltl::BindParams& params) {
  switch (e.kind) {
    case pltl::BoundExpr::Kind::Num: return e.num;
    case pltl::BoundExpr::Kind::Param: return params.param(e.param);
    case pltl::BoundExpr::Kind::Add:
      return ref_bexpr(*e.lhs, params) + ref_bexpr(*e.rhs, params);
    case pltl::BoundExpr::Kind::Sub:
      return ref_bexpr(*e.lhs, params) - ref_bexpr(*e.rhs, params);
    case pltl::BoundExpr::Kind::Mul:
      return ref_bexpr(*e.lhs, params) * ref_bexpr(*e.rhs, params);
  }
  ADD_FAILURE() << "bad bound expr";
  return 0;
}

bool ref_cmp(sim::Time d, pltl::Cmp cmp, sim::Time k) {
  switch (cmp) {
    case pltl::Cmp::Le: return d <= k;
    case pltl::Cmp::Lt: return d < k;
    case pltl::Cmp::Gt: return d > k;
    case pltl::Cmp::Ge: return d >= k;
  }
  return false;
}

int ref_arg(const pltl::Node& n, const Env& env) {
  if (n.arg == pltl::Node::Arg::Num) return n.arg_num;
  if (n.arg == pltl::Node::Arg::Var) {
    const auto it = env.find(n.arg_var);
    EXPECT_NE(it, env.end()) << "unbound " << n.arg_var;
    return it == env.end() ? -1 : it->second;
  }
  return -1;
}

bool ref_eval(const pltl::Node& n, int i, const std::vector<RefPos>& pos,
              const pltl::BindParams& params, const Env& env) {
  using K = pltl::Node::Kind;
  const auto sub = [&](const pltl::Node& c, int j) {
    return ref_eval(c, j, pos, params, env);
  };
  switch (n.kind) {
    case K::True: return true;
    case K::False: return false;
    case K::Init: return pos[static_cast<std::size_t>(i)].init;
    case K::Event: {
      const RefPos& p = pos[static_cast<std::size_t>(i)];
      for (const auto& atom : kRefEventAtoms) {
        if (n.name != atom.name) continue;
        if (atom.protocol) {
          if (!p.has_pe || static_cast<int>(p.pe.kind) != atom.kind) {
            return false;
          }
          const int want = ref_arg(n, env);
          return want < 0 || p.pe.node == want;
        }
        return p.has_ce && static_cast<int>(p.ce.kind) == atom.kind;
      }
      ADD_FAILURE() << "unknown event atom " << n.name;
      return false;
    }
    case K::Fluent: {
      const auto& fl = pos[static_cast<std::size_t>(i)].fluents;
      if (n.name == "coord_live") return fl.coordinator_live();
      if (n.name == "coord_stopped") return !fl.coordinator_live();
      if (n.name == "all_stopped") return fl.all_stopped();
      if (n.name == "any_registered") return fl.any_registered();
      const int node = ref_arg(n, env);
      if (n.name == "stopped") return fl.stopped(node);
      if (n.name == "alive") return !fl.stopped(node);
      if (n.name == "member" || n.name == "registered") {
        return fl.member(node);
      }
      ADD_FAILURE() << "unknown fluent " << n.name;
      return false;
    }
    case K::Not: return !sub(*n.lhs, i);
    case K::And: return sub(*n.lhs, i) && sub(*n.rhs, i);
    case K::Or: return sub(*n.lhs, i) || sub(*n.rhs, i);
    case K::Implies: return !sub(*n.lhs, i) || sub(*n.rhs, i);
    case K::Iff: return sub(*n.lhs, i) == sub(*n.rhs, i);
    case K::Previously: return i > 0 && sub(*n.lhs, i - 1);
    case K::Historically:
      for (int j = 0; j <= i; ++j) {
        if (!sub(*n.lhs, j)) return false;
      }
      return true;
    case K::Since:
      // exists j <= i: rhs(j) and lhs holds on (j, i].
      for (int j = i; j >= 0; --j) {
        if (sub(*n.rhs, j)) return true;
        if (!sub(*n.lhs, j)) return false;
      }
      return false;
    case K::Once: {
      if (n.bound == nullptr) {
        for (int j = 0; j <= i; ++j) {
          if (sub(*n.lhs, j)) return true;
        }
        return false;
      }
      const sim::Time k = ref_bexpr(*n.bound->expr, params);
      if (sub(*n.lhs, i)) return true;
      const sim::Time now = pos[static_cast<std::size_t>(i)].at;
      for (int j = 0; j < i; ++j) {
        if (sub(*n.lhs, j) &&
            ref_cmp(now - pos[static_cast<std::size_t>(j)].at,
                    n.bound->cmp, k)) {
          return true;
        }
      }
      return false;
    }
    case K::Before: {
      const sim::Time k = ref_bexpr(*n.bound->expr, params);
      const sim::Time now = pos[static_cast<std::size_t>(i)].at;
      for (int j = 0; j < i; ++j) {
        if (sub(*n.lhs, j) &&
            ref_cmp(now - pos[static_cast<std::size_t>(j)].at,
                    n.bound->cmp, k)) {
          return true;
        }
      }
      return false;
    }
    case K::Holds: {
      if (!sub(*n.lhs, i)) return false;
      int anchor = i;
      while (anchor > 0 && sub(*n.lhs, anchor - 1)) --anchor;
      const sim::Time k = ref_bexpr(*n.bound->expr, params);
      return ref_cmp(pos[static_cast<std::size_t>(i)].at -
                         pos[static_cast<std::size_t>(anchor)].at,
                     n.bound->cmp, k);
    }
    case K::Forall:
    case K::Exists: {
      Env inner = env;
      for (int id = 1; id <= params.participants; ++id) {
        inner[n.name] = id;
        const bool v = ref_eval(*n.lhs, i, pos, params, inner);
        if (n.kind == K::Forall && !v) return false;
        if (n.kind == K::Exists && v) return true;
      }
      return n.kind == K::Forall;
    }
  }
  ADD_FAILURE() << "bad node kind";
  return false;
}

// Random formula source: emits text (exercising the parser on the way
// in) with every operator, literal and parameterised bounds, and
// quantified participant arguments.
struct FormulaGen {
  std::mt19937_64& rng;
  int participants;

  int pick(int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); }

  std::string bound_expr() {
    switch (pick(4)) {
      case 0: return std::to_string(pick(10));
      case 1: return "tmin";
      case 2: return "tmax";
      default: return "tmin + " + std::to_string(pick(4));
    }
  }

  std::string atom(const std::vector<std::string>& vars) {
    switch (pick(6)) {
      case 0: {  // protocol event, maybe with an argument
        const auto& a = kRefEventAtoms[pick(12)];
        std::string s = a.name;
        const int kind = pick(3);
        if (kind == 1) s += "(" + std::to_string(1 + pick(participants)) + ")";
        if (kind == 2 && !vars.empty()) {
          s += "(" + vars[static_cast<std::size_t>(pick(
                         static_cast<int>(vars.size())))] + ")";
        }
        return s;
      }
      case 1:  // channel event
        return kRefEventAtoms[12 + pick(7)].name;
      case 2: {  // no-arg fluent
        const char* f[] = {"coord_live", "coord_stopped", "all_stopped",
                           "any_registered"};
        return f[pick(4)];
      }
      case 3: {  // arg fluent
        const char* f[] = {"stopped", "alive", "member", "registered"};
        std::string s = f[pick(4)];
        if (!vars.empty() && pick(2) == 0) {
          s += "(" + vars[static_cast<std::size_t>(pick(
                         static_cast<int>(vars.size())))] + ")";
        } else {
          s += "(" + std::to_string(1 + pick(participants)) + ")";
        }
        return s;
      }
      case 4:
        return pick(2) == 0 ? "true" : "false";
      default:
        return "init";
    }
  }

  std::string gen(int depth, std::vector<std::string>& vars) {
    if (depth <= 0 || pick(4) == 0) return atom(vars);
    switch (pick(10)) {
      case 0: return "!(" + gen(depth - 1, vars) + ")";
      case 1: return "previously (" + gen(depth - 1, vars) + ")";
      case 2: return "historically (" + gen(depth - 1, vars) + ")";
      case 3: {
        const char* cmp = pick(2) == 0 ? "<=" : "<";
        const char* op = pick(2) == 0 ? "once" : "within";
        return std::string{op} + "[" + cmp + " " + bound_expr() + "] (" +
               gen(depth - 1, vars) + ")";
      }
      case 4:
        if (pick(2) == 0) return "once (" + gen(depth - 1, vars) + ")";
        return "before[<= " + bound_expr() + "] (" + gen(depth - 1, vars) +
               ")";
      case 5: {
        const char* cmp = pick(2) == 0 ? ">" : ">=";
        return std::string{"holds["} + cmp + " " + bound_expr() + "] (" +
               gen(depth - 1, vars) + ")";
      }
      case 6:
        return "(" + gen(depth - 1, vars) + ") since (" +
               gen(depth - 1, vars) + ")";
      case 7: {
        const char* op[] = {"&&", "||", "->", "<->"};
        return "(" + gen(depth - 1, vars) + ") " + op[pick(4)] + " (" +
               gen(depth - 1, vars) + ")";
      }
      default: {
        if (std::find(vars.begin(), vars.end(), "p") != vars.end() &&
            std::find(vars.begin(), vars.end(), "q") != vars.end()) {
          return atom(vars);
        }
        const std::string var =
            std::find(vars.begin(), vars.end(), "p") == vars.end() ? "p" : "q";
        vars.push_back(var);
        std::string body = gen(depth - 1, vars);
        vars.pop_back();
        return std::string{pick(2) == 0 ? "forall " : "exists "} + var +
               ": (" + body + ")";
      }
    }
  }
};

TEST(PltlFuzz, StreamingMatchesFullHistoryReference) {
  std::mt19937_64 rng{20260807};
  pltl::BindParams params;
  params.variant = proto::Variant::Dynamic;
  params.timing = proto::Timing{4, 10};
  params.fixed_bounds = true;
  params.participants = 3;

  int formulas_checked = 0;
  for (int iter = 0; iter < 400; ++iter) {
    FormulaGen gen{rng, params.participants};
    std::vector<std::string> vars;
    const std::string text = gen.gen(4, vars);
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + text);

    const auto parsed = pltl::parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;

    // Printer round-trip on every generated formula.
    const auto reparsed = pltl::parse(pltl::print(*parsed.formula));
    ASSERT_TRUE(reparsed.ok()) << pltl::print(*parsed.formula);
    ASSERT_TRUE(pltl::equal(*parsed.formula, *reparsed.formula));

    auto made = pltl::make_monitor({"fuzz", text, 9}, params);
    ASSERT_TRUE(made.ok()) << made.error;
    auto& monitor = *made.monitor;

    // Random trace; reference positions mirror the two-pass discipline:
    // position 0 is the initial commit, each event is one committed
    // position with post-event fluents.
    std::vector<RefPos> pos;
    RefPos initial;
    initial.init = true;
    initial.fluents = pltl::FluentTracker(params.variant, params.participants);
    pos.push_back(initial);

    sim::Time now = 0;
    const int events = 40;
    for (int e = 0; e < events; ++e) {
      now += static_cast<sim::Time>(rng() % 4);
      RefPos p;
      p.at = now;
      p.fluents = pos.back().fluents;
      if (rng() % 10 < 7) {
        const auto kind = static_cast<PKind>(rng() % 12);
        const int node = static_cast<int>(rng() % 4);  // 0..participants
        p.has_pe = true;
        p.pe = pev(kind, node, now);
        p.fluents.apply(p.pe);
        monitor.on_protocol_event(p.pe);
      } else {
        const auto kind = static_cast<CKind>(rng() % 7);
        p.has_ce = true;
        p.ce = cev(kind, now);
        monitor.on_channel_event(p.ce);
      }
      pos.push_back(p);

      const int i = static_cast<int>(pos.size()) - 1;
      const bool expect = ref_eval(*parsed.formula, i, pos, params, {});
      ASSERT_EQ(monitor.value(), expect)
          << "position " << i << " at t=" << now;
    }
    // And the initial position, once per formula.
    ASSERT_EQ(ref_eval(*parsed.formula, 0, pos, params, {}),
              [&] {
                auto fresh = pltl::make_monitor({"fuzz", text, 9}, params);
                return fresh.monitor->value();
              }());
    ++formulas_checked;
  }
  EXPECT_EQ(formulas_checked, 400);
}

// --- shipped formulas vs hand-written monitors on chaos runs --------------

struct VerdictPair {
  bool r1 = false, r2 = false, r3 = false, s2 = false;
};

VerdictPair monitor_verdicts(const chaos::RunResult& run) {
  VerdictPair v;
  for (const auto& violation : run.violations) {
    if (violation.requirement == 1) v.r1 = true;
    if (violation.requirement == 2) v.r2 = true;
    if (violation.requirement == 3) v.r3 = true;
    if (violation.requirement == 4 &&
        violation.detail.find("never reached suspicion threshold") !=
            std::string::npos) {
      v.s2 = true;
    }
  }
  return v;
}

VerdictPair formula_verdicts(const chaos::RunResult& run) {
  VerdictPair v;
  for (const auto& violation : run.formula_violations) {
    if (violation.requirement == 1) v.r1 = true;
    if (violation.requirement == 2) v.r2 = true;
    if (violation.requirement == 3) v.r3 = true;
    if (violation.requirement == 4) v.s2 = true;
  }
  return v;
}

void expect_verdicts_match(const chaos::RunSpec& spec) {
  const auto formulas = pltl::shipped_monitor_specs();
  const chaos::RunResult run =
      chaos::run_chaos(spec, nullptr, false, false, &formulas);
  const VerdictPair mon = monitor_verdicts(run);
  const VerdictPair fml = formula_verdicts(run);
  EXPECT_EQ(mon.r1, fml.r1) << "R1 verdict diverged";
  EXPECT_EQ(mon.r2, fml.r2) << "R2 verdict diverged";
  EXPECT_EQ(mon.r3, fml.r3) << "R3 verdict diverged";
  EXPECT_EQ(mon.s2, fml.s2) << "S2 verdict diverged";
}

TEST(PltlEquivalence, ShippedFormulasMatchMonitorsOnSeededRuns) {
  constexpr proto::Variant kVariants[] = {
      proto::Variant::Binary,   proto::Variant::RevisedBinary,
      proto::Variant::TwoPhase, proto::Variant::Static,
      proto::Variant::Expanding, proto::Variant::Dynamic};
  for (const auto variant : kVariants) {
    for (const bool out_of_spec : {false, true}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        chaos::RunSpec spec;
        spec.variant = variant;
        spec.tmin = 4;
        spec.tmax = 10;
        spec.participants = proto::variant_is_multi(variant) ? 3 : 1;
        spec.seed = seed;
        spec.horizon =
            chaos::campaign_horizon(spec.timing(), variant, spec.fixed_bounds);
        spec.schedule = chaos::generate_schedule(spec, out_of_spec);
        SCOPED_TRACE(std::string{to_string(variant)} +
                     (out_of_spec ? " oos" : " ok") + " seed " +
                     std::to_string(seed));
        expect_verdicts_match(spec);
      }
    }
  }
}

TEST(PltlEquivalence, ShippedFormulasMatchMonitorsOnTheCorpus) {
  namespace fs = std::filesystem;
  const fs::path root{AHB_CORPUS_DIR};
  ASSERT_TRUE(fs::exists(root));
  int artifacts = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".jsonl") {
      continue;
    }
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in{entry.path()};
    std::ostringstream slurped;
    slurped << in.rdbuf();
    const auto spec = chaos::parse_run(slurped.str());
    ASSERT_TRUE(spec.has_value());
    expect_verdicts_match(*spec);
    ++artifacts;
  }
  EXPECT_GT(artifacts, 0);
}

// --- campaigns and missions: formulas ride along without perturbing -------

TEST(PltlEquivalence, CampaignFingerprintInvariantUnderFormulas) {
  chaos::CampaignOptions options;
  options.runs_per_config = 2;
  options.shrink = false;
  const chaos::CampaignResult plain = chaos::run_campaign(options);
  options.formulas = pltl::shipped_monitor_specs();
  const chaos::CampaignResult with = chaos::run_campaign(options);
  EXPECT_EQ(plain.fingerprint, with.fingerprint);
  EXPECT_EQ(plain.runs, with.runs);
  EXPECT_EQ(plain.violating_runs, with.violating_runs);
  EXPECT_EQ(with.formula_violations, 0u)
      << "in-spec campaign tripped a shipped formula";
  EXPECT_EQ(with.formula_violating_runs, 0u);
}

TEST(PltlEquivalence, OutOfSpecCampaignTripsFormulasAlongsideMonitors) {
  chaos::CampaignOptions options;
  options.runs_per_config = 2;
  options.out_of_spec = true;
  options.shrink = false;
  const chaos::CampaignResult plain = chaos::run_campaign(options);
  options.formulas = pltl::shipped_monitor_specs();
  const chaos::CampaignResult with = chaos::run_campaign(options);
  EXPECT_EQ(plain.fingerprint, with.fingerprint);
  EXPECT_EQ(plain.violating_runs, with.violating_runs);
  EXPECT_GT(with.formula_violating_runs, 0u)
      << "out-of-spec faults never tripped a formula";
}

TEST(PltlEquivalence, TenMillionTickMissionCleanWithFormulasAttached) {
  chaos::MissionOptions options;
  options.spec.variant = proto::Variant::Dynamic;
  options.spec.tmin = 4;
  options.spec.tmax = 10;
  options.spec.participants = 3;
  options.spec.seed = 1;
  options.spec.horizon = 10'000'000;
  options.profile.cycles = 10;
  const chaos::MissionResult plain = chaos::run_mission(options);
  options.formulas = pltl::shipped_monitor_specs();
  const chaos::MissionResult with = chaos::run_mission(options);
  EXPECT_EQ(plain.fingerprint, with.fingerprint)
      << "attaching formulas perturbed the mission";
  EXPECT_EQ(with.violations_total, 0u);
  EXPECT_EQ(with.formula_violations_total, 0u)
      << (with.formula_violations.empty()
              ? std::string{}
              : with.formula_violations.front().detail);
}

// --- model backend: the same formula text, checked exhaustively -----------

TEST(PltlModel, R1WatchdogFormulaReproducesTable1Verdicts) {
  const auto shipped = pltl::find_shipped("r1_watchdog");
  ASSERT_NE(shipped, nullptr);
  struct Point {
    int tmin, tmax;
    bool fixed;
  };
  for (const Point point : {Point{2, 10, false}, Point{6, 10, false},
                            Point{2, 10, true}}) {
    SCOPED_TRACE("tmin=" + std::to_string(point.tmin) +
                 " tmax=" + std::to_string(point.tmax) +
                 (point.fixed ? " fixed" : ""));
    models::BuildOptions options;
    options.timing = {point.tmin, point.tmax};
    options.fixed = point.fixed;
    const bool expect_r1 =
        point.fixed
            ? proto::expected_verdicts_fixed(proto::Variant::Binary,
                                             options.timing.to_proto())
                  .r1
            : proto::expected_verdicts(proto::Variant::Binary,
                                       options.timing.to_proto())
                  .r1;

    auto formula_model = models::build_formula_model(
        models::Flavor::Binary, options, shipped->text);
    ASSERT_TRUE(formula_model.ok()) << formula_model.error;

    // Way 1 of the exhaustive pair: reachability of a violating state.
    mc::Explorer explorer(formula_model.model->net());
    const auto reach = explorer.reach(formula_model.violation);
    ASSERT_TRUE(reach.found || reach.complete);
    EXPECT_EQ(reach.found, !expect_r1);

    // Way 2: NDFS accepting cycle through the latched violation.
    const auto cycle = mc::find_accepting_cycle(formula_model.model->net(),
                                                formula_model.accepting);
    ASSERT_TRUE(cycle.cycle_found || cycle.complete);
    EXPECT_EQ(cycle.cycle_found, !expect_r1);

    // Cross-check against the hand-built watchdog verdict.
    options.r1_monitor = true;
    const auto verdicts =
        models::verify_requirements(models::Flavor::Binary, options);
    EXPECT_EQ(verdicts.r1, expect_r1);
  }
}

TEST(PltlModel, MultiFlavorWatchdogVerdict) {
  const auto shipped = pltl::find_shipped("r1_watchdog");
  ASSERT_NE(shipped, nullptr);
  models::BuildOptions options;
  options.timing = {2, 4};
  options.participants = 2;
  const bool expect_r1 =
      proto::expected_verdicts(proto::Variant::Static,
                               options.timing.to_proto())
          .r1;
  auto formula_model = models::build_formula_model(models::Flavor::Static,
                                                   options, shipped->text);
  ASSERT_TRUE(formula_model.ok()) << formula_model.error;
  mc::Explorer explorer(formula_model.model->net());
  const auto reach = explorer.reach(formula_model.violation);
  ASSERT_TRUE(reach.found || reach.complete);
  EXPECT_EQ(reach.found, !expect_r1);
}

TEST(PltlModel, UnsupportedFragmentIsRejectedWithDiagnostics) {
  models::BuildOptions options;
  options.timing = {4, 10};
  const char* unsupported[] = {
      "historically beat",        // unbounded-history operator
      "once c_recv_beat",         // unbounded once
      "c_recv_beat",              // bare event atom at the root
      "alive(1)",                 // participant fluent
      "within[<= 4] coord_live",  // once over a state predicate
      "within[<= 4] (c_recv_beat && init)",  // conjunction of atoms
      "not a formula ((",         // parse error surfaces too
  };
  for (const char* text : unsupported) {
    SCOPED_TRACE(text);
    const auto result =
        models::build_formula_model(models::Flavor::Binary, options, text);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.error.empty());
  }
  // And the supported fragment builds even when stated with quantifiers
  // (the compiler expands them before the lowering sees the formula).
  options.participants = 2;
  const auto quantified = models::build_formula_model(
      models::Flavor::Static, options,
      "forall p: coord_live -> within[<= r1_bound] (c_recv_beat(p) || init)");
  EXPECT_TRUE(quantified.ok()) << quantified.error;
}

}  // namespace
}  // namespace ahb
