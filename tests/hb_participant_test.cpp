#include <gtest/gtest.h>

#include "hb/participant.hpp"
#include "hb/plain.hpp"

namespace ahb::hb {
namespace {

Config make_config(Time tmin, Time tmax, Variant v, bool fixed = false) {
  Config c;
  c.tmin = tmin;
  c.tmax = tmax;
  c.variant = v;
  c.fixed_bounds = fixed;
  return c;
}

TEST(Participant, JoinedParticipantEchoesBeats) {
  Participant p{make_config(1, 10, Variant::Binary), 1, true};
  p.start(0);
  EXPECT_EQ(p.next_event_time(), 29);  // 3*tmax - tmin
  const auto actions = p.on_message(5, Message{0, true});
  ASSERT_EQ(actions.messages.size(), 1u);
  EXPECT_EQ(actions.messages[0].to, 0);
  EXPECT_TRUE(actions.messages[0].message.flag);
  EXPECT_EQ(p.next_event_time(), 5 + 29);  // deadline refreshed
}

TEST(Participant, FixedBoundsTightenDeadline) {
  Participant p{make_config(1, 10, Variant::Binary, true), 1, true};
  p.start(0);
  EXPECT_EQ(p.next_event_time(), 20);  // corrected 2*tmax
}

TEST(Participant, InactivatesAtDeadline) {
  Participant p{make_config(1, 10, Variant::Binary), 1, true};
  p.start(0);
  const auto actions = p.on_elapsed(29);
  EXPECT_TRUE(actions.inactivated);
  EXPECT_EQ(p.status(), Status::InactiveNonVoluntarily);
  EXPECT_EQ(p.inactivated_at(), 29);
}

TEST(Participant, StaleTimerIgnored) {
  Participant p{make_config(1, 10, Variant::Binary), 1, true};
  p.start(0);
  EXPECT_FALSE(p.on_elapsed(10).inactivated);
  EXPECT_EQ(p.status(), Status::Active);
}

TEST(Participant, ExpandingSendsJoinBeatsEveryTmin) {
  Participant p{make_config(3, 10, Variant::Expanding), 4, false};
  auto actions = p.start(0);
  // The first join beat goes out one join period after start-up (the
  // model's Fig. 6 timing), not at time zero.
  ASSERT_EQ(actions.messages.size(), 0u);
  EXPECT_EQ(p.next_event_time(), 3);

  actions = p.on_elapsed(3);
  ASSERT_EQ(actions.messages.size(), 1u);  // first join beat
  EXPECT_EQ(actions.messages[0].message.sender, 4);
  actions = p.on_elapsed(6);
  ASSERT_EQ(actions.messages.size(), 1u);
  EXPECT_FALSE(p.joined());
}

TEST(Participant, JoinCompletesOnFirstBeat) {
  Participant p{make_config(3, 10, Variant::Expanding), 4, false};
  p.start(0);
  const auto actions = p.on_message(5, Message{0, true});
  EXPECT_TRUE(p.joined());
  ASSERT_EQ(actions.messages.size(), 1u);  // reply to the beat
  // No more join beats are scheduled; the deadline rules.
  EXPECT_EQ(p.next_event_time(), 5 + 27);  // participant deadline
}

TEST(Participant, JoinPhaseDeadlineApplies) {
  Participant p{make_config(3, 10, Variant::Expanding), 4, false};
  p.start(0);
  // Join deadline is 3*tmax - tmin = 27 from start-up.
  Time now = 0;
  while (p.status() == Status::Active) {
    now = p.next_event_time();
    p.on_elapsed(now);
  }
  EXPECT_EQ(p.status(), Status::InactiveNonVoluntarily);
  EXPECT_EQ(p.inactivated_at(), 27);
}

TEST(Participant, FixedJoinDeadlineIsLonger) {
  Participant p{make_config(3, 10, Variant::Expanding, true), 4, false};
  p.start(0);
  Time now = 0;
  while (p.status() == Status::Active) {
    now = p.next_event_time();
    p.on_elapsed(now);
  }
  EXPECT_EQ(p.inactivated_at(), 23);  // 2*tmax + tmin
}

TEST(Participant, DynamicLeaveAnnouncedOnNextBeat) {
  Participant p{make_config(1, 10, Variant::Dynamic), 2, false};
  p.start(0);
  p.on_message(3, Message{0, true});  // joined
  p.request_leave();
  const auto actions = p.on_message(13, Message{0, true});
  ASSERT_EQ(actions.messages.size(), 1u);
  EXPECT_FALSE(actions.messages[0].message.flag);  // leave beat
  EXPECT_EQ(p.status(), Status::Left);
  EXPECT_EQ(p.next_event_time(), kNever);
}

TEST(Participant, LeaveAckIgnored) {
  Participant p{make_config(1, 10, Variant::Dynamic), 2, false};
  p.start(0);
  p.on_message(3, Message{0, true});
  const auto actions = p.on_message(5, Message{0, false});
  EXPECT_TRUE(actions.messages.empty());
  EXPECT_EQ(p.status(), Status::Active);
}

TEST(Participant, CrashStopsEverything) {
  Participant p{make_config(1, 10, Variant::Binary), 1, true};
  p.start(0);
  p.crash(5);
  EXPECT_EQ(p.status(), Status::CrashedVoluntarily);
  EXPECT_TRUE(p.on_message(6, Message{0, true}).messages.empty());
  EXPECT_FALSE(p.on_elapsed(40).inactivated);
  EXPECT_EQ(p.next_event_time(), kNever);
}

TEST(PlainSender, BeatsAtFixedPeriod) {
  PlainSender sender{1, 10};
  auto actions = sender.start(0);
  EXPECT_EQ(actions.messages.size(), 1u);
  EXPECT_EQ(sender.next_event_time(), 10);
  actions = sender.on_elapsed(10);
  EXPECT_EQ(actions.messages.size(), 1u);
  EXPECT_EQ(sender.next_event_time(), 20);
}

TEST(PlainSender, CrashSilences) {
  PlainSender sender{1, 10};
  sender.start(0);
  sender.crash(5);
  EXPECT_TRUE(sender.on_elapsed(10).messages.empty());
  EXPECT_EQ(sender.next_event_time(), kNever);
}

TEST(PlainDetector, SuspectsAfterKMisses) {
  PlainDetector det{10, 3};
  det.start(0);
  EXPECT_EQ(det.next_event_time(), 30);
  det.on_message(8, Message{1, true});
  EXPECT_EQ(det.next_event_time(), 38);
  EXPECT_FALSE(det.on_elapsed(30).inactivated);
  const auto actions = det.on_elapsed(38);
  EXPECT_TRUE(actions.inactivated);
  EXPECT_TRUE(det.suspected());
  EXPECT_EQ(det.suspected_at(), 38);
}

TEST(PlainDetector, BeatAlwaysResets) {
  PlainDetector det{10, 1};
  det.start(0);
  for (Time t = 5; t <= 95; t += 5) {
    det.on_message(t, Message{1, true});
    EXPECT_FALSE(det.on_elapsed(t).inactivated);
  }
  EXPECT_FALSE(det.suspected());
}

}  // namespace
}  // namespace ahb::hb
