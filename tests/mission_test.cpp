// Long-mission tests (chaos/mission.hpp): in-spec 10^7-tick missions
// staying clean on every variant with bounded monitor memory, the
// payload-integrity fail-safe under armed corruption, checkpoint
// determinism across cadences, spec replayability, the multi-phase
// generator lifting the legacy 4-action cap, serialization of the new
// fault kinds, and the guard canaries: disabled wire validation must
// trip the integrity monitor plus at least one R1–R3 requirement, a
// clock wrap must be unobservable under the modular-clock guard and
// fatal without it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/mission.hpp"
#include "chaos/runner.hpp"
#include "proto/rules.hpp"

namespace ahb::chaos {
namespace {

constexpr Variant kAllVariants[] = {
    Variant::Binary,   Variant::RevisedBinary, Variant::TwoPhase,
    Variant::Static,   Variant::Expanding,     Variant::Dynamic};

RunSpec mission_spec(Variant variant, Time horizon) {
  RunSpec spec;
  spec.variant = variant;
  spec.tmin = 4;
  spec.tmax = 10;
  spec.participants = proto::variant_is_multi(variant) ? 3 : 1;
  spec.seed = 1;
  spec.horizon = horizon;
  return spec;
}

// --- long missions --------------------------------------------------------

TEST(Mission, InSpecTenMillionTickMissionIsCleanOnEveryVariant) {
  for (const auto variant : kAllVariants) {
    SCOPED_TRACE(to_string(variant));
    MissionOptions options;
    options.spec = mission_spec(variant, 10'000'000);
    options.profile.cycles = 10;
    const MissionResult result = run_mission(options);
    EXPECT_FALSE(result.out_of_spec);
    EXPECT_EQ(result.violations_total, 0u)
        << (result.violations.empty() ? std::string{}
                                      : result.violations.front().detail);
    EXPECT_TRUE(result.integrity.fail_safe());
    EXPECT_EQ(result.checkpoints.size(), 10u);
    EXPECT_GT(result.net_stats.sent, 0u);
    // Bounded-memory witness: the integrity tracking set never grows
    // past a handful of in-flight ids, whatever the horizon.
    EXPECT_LE(result.integrity_high_water, 64u);
  }
}

TEST(Mission, CorruptionArmedMissionNeverAcceptsACorruptedPayload) {
  for (const auto variant : kAllVariants) {
    SCOPED_TRACE(to_string(variant));
    MissionOptions options;
    options.spec = mission_spec(variant, 2'000'000);
    options.profile.cycles = 2;
    options.profile.corrupt = 0.02;
    const MissionResult result = run_mission(options);
    // Corruption under wire validation is in-spec message destruction:
    // the mission stays clean and every corrupted delivery bounces off
    // the receive boundary.
    EXPECT_FALSE(result.out_of_spec);
    EXPECT_EQ(result.violations_total, 0u);
    EXPECT_GT(result.integrity.corrupted, 0u);
    EXPECT_EQ(result.integrity.accepted, 0u);
    EXPECT_EQ(result.integrity.spurious_rejections, 0u);
    EXPECT_EQ(result.integrity.corrupted_delivered,
              result.integrity.rejected_corrupted);
    EXPECT_TRUE(result.integrity.fail_safe());
    EXPECT_EQ(result.net_stats.rejected, result.integrity.rejected_corrupted);
    EXPECT_LE(result.integrity_high_water, 64u);
  }
}

// --- checkpoint determinism ----------------------------------------------

TEST(Mission, RepeatedMissionsFingerprintIdentically) {
  MissionOptions options;
  options.spec = mission_spec(Variant::Dynamic, 2'000'000);
  options.profile.cycles = 2;
  options.profile.corrupt = 0.02;
  const MissionResult a = run_mission(options);
  const MissionResult b = run_mission(options);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.violations_total, b.violations_total);
  EXPECT_EQ(a.net_stats.sent, b.net_stats.sent);
}

TEST(Mission, CheckpointDigestsAgreeAtCoincidingInstants) {
  // The digest stream is a property of the execution, not of the
  // chunking that drove it: a 250k cadence and a 500k cadence must
  // agree at every shared instant.
  MissionOptions coarse;
  coarse.spec = mission_spec(Variant::Static, 2'000'000);
  coarse.profile.cycles = 2;
  coarse.checkpoint_interval = 500'000;
  MissionOptions fine = coarse;
  fine.checkpoint_interval = 250'000;
  const MissionResult a = run_mission(coarse);
  const MissionResult b = run_mission(fine);
  ASSERT_EQ(a.checkpoints.size(), 4u);
  ASSERT_EQ(b.checkpoints.size(), 8u);
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i].at, b.checkpoints[2 * i + 1].at);
    EXPECT_EQ(a.checkpoints[i].state, b.checkpoints[2 * i + 1].state);
  }
}

TEST(Mission, GeneratedMissionReplaysFromItsSerializedSpec) {
  MissionOptions options;
  options.spec = mission_spec(Variant::Expanding, 1'000'000);
  options.profile.cycles = 2;
  options.profile.corrupt = 0.05;
  const MissionResult original = run_mission(options);

  const std::string artifact = serialize_run(original.spec);
  const auto parsed = parse_run(artifact);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original.spec);

  MissionOptions replay;
  replay.spec = *parsed;
  replay.generate = false;
  const MissionResult replayed = run_mission(replay);
  EXPECT_EQ(replayed.fingerprint, original.fingerprint);
  EXPECT_EQ(replayed.violations_total, original.violations_total);
  EXPECT_EQ(replayed.integrity.corrupted, original.integrity.corrupted);
}

// --- schedule generation --------------------------------------------------

TEST(Mission, ProfileGeneratorLiftsTheLegacyFourActionCap) {
  RunSpec spec = mission_spec(Variant::Dynamic, 1'000'000);
  // The legacy generator is capped at 4 actions (5 with the guaranteed
  // out-of-spec control) — the profile path schedules full cycles.
  EXPECT_LE(generate_schedule(spec, false).actions.size(), 4u);
  EXPECT_LE(generate_schedule(spec, true).actions.size(), 5u);
  ScheduleProfile profile;
  profile.cycles = 4;
  const FaultSchedule schedule = generate_schedule(spec, profile);
  EXPECT_GT(schedule.actions.size(), 4u);
  // Actions are emitted in schedule order.
  for (std::size_t i = 1; i < schedule.actions.size(); ++i) {
    EXPECT_LE(schedule.actions[i - 1].at, schedule.actions[i].at);
  }
}

TEST(Mission, NewFaultKindsSerializeRoundTrip) {
  RunSpec spec = mission_spec(Variant::Dynamic, 4'000);
  spec.schedule.actions = {
      {FaultKind::CorruptPayload, 10, 1, 0, 0.25, 0, 0, 0, 0},
      {FaultKind::SetClockOffset, 20, 2, 0, 0, 0, 0, -40, 0},
      {FaultKind::WrapClock, 30, 0, 0, 0, 0, 0, 64, 0},
      {FaultKind::AsymmetricStorm, 40, 1, 3, 0.9, 0.1, 0.95, 25, 0},
      {FaultKind::ChurnStorm, 60, 1, 3, 0, 0, 0, 8, 30},
  };
  const auto parsed = parse_run(serialize_run(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
}

TEST(Mission, GuardFlagsSerializeOnlyWhenDisabled) {
  // Default-guard specs serialize byte-identically to the legacy
  // header — the standing corpus and the pinned campaign fingerprints
  // depend on it.
  RunSpec spec = mission_spec(Variant::Binary, 1'000);
  EXPECT_EQ(serialize_run(spec).find("wire_validation"), std::string::npos);
  EXPECT_EQ(serialize_run(spec).find("clock_guard"), std::string::npos);

  spec.wire_validation = false;
  spec.clock_guard = false;
  const auto parsed = parse_run(serialize_run(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->wire_validation);
  EXPECT_FALSE(parsed->clock_guard);
  EXPECT_EQ(*parsed, spec);
}

// --- guard canaries -------------------------------------------------------

RunSpec corruption_canary_spec(bool wire_validation) {
  // Full-rate single-bit corruption on both directions of the one star
  // link. With validation the corrupted images are destroyed at the
  // boundary (in-spec); without it they reach the engines.
  RunSpec spec = mission_spec(Variant::Binary, 600);
  spec.participants = 1;
  spec.seed = 5;
  spec.wire_validation = wire_validation;
  spec.schedule.actions = {
      {FaultKind::CorruptPayload, 1, 0, 1, 1.0, 0, 0, 0, 0},
      {FaultKind::CorruptPayload, 1, 1, 0, 1.0, 0, 0, 0, 0},
  };
  return spec;
}

TEST(MutationCanary, DisabledWireValidationTripsIntegrityAndRequirements) {
  const RunSpec spec = corruption_canary_spec(false);
  EXPECT_TRUE(spec.out_of_spec());
  const RunResult result = run_chaos(spec);
  EXPECT_TRUE(result.out_of_spec);
  // Corrupted payloads were accepted — the integrity monitor must say
  // so, and the garbage the engines acted on must break R1–R3 too.
  EXPECT_GT(result.integrity.accepted, 0u);
  bool integrity_fired = false;
  bool requirement_fired = false;
  for (const auto& violation : result.violations) {
    integrity_fired |= violation.requirement == 5;
    requirement_fired |= violation.requirement >= 1 && violation.requirement <= 3;
  }
  EXPECT_TRUE(integrity_fired);
  EXPECT_TRUE(requirement_fired);
  EXPECT_FALSE(result.integrity.fail_safe());
}

TEST(MutationCanary, WireValidationTurnsCorruptionIntoCleanDestruction) {
  const RunSpec spec = corruption_canary_spec(true);
  EXPECT_FALSE(spec.out_of_spec());
  const RunResult result = run_chaos(spec);
  EXPECT_FALSE(result.out_of_spec);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().detail;
  EXPECT_GT(result.integrity.corrupted, 0u);
  EXPECT_EQ(result.integrity.accepted, 0u);
  EXPECT_EQ(result.integrity.corrupted_delivered,
            result.integrity.rejected_corrupted);
  EXPECT_TRUE(result.integrity.fail_safe());
}

RunSpec wrap_spec(bool clock_guard, bool with_wrap) {
  RunSpec spec = mission_spec(Variant::Static, 800);
  spec.seed = 3;
  spec.clock_guard = clock_guard;
  if (with_wrap) {
    // Coordinator's register repositioned 64 ticks before 2^64 at t=50:
    // the wrap crossing lands mid-mission.
    spec.schedule.actions = {{FaultKind::WrapClock, 50, 0, 0, 0, 0, 0, 64, 0}};
  }
  return spec;
}

TEST(MutationCanary, ClockWrapIsUnobservableUnderTheModularGuard) {
  const RunSpec wrapped = wrap_spec(true, true);
  EXPECT_FALSE(wrapped.out_of_spec());
  const RunResult a = run_chaos(wrapped, nullptr, true);
  const RunResult b = run_chaos(wrap_spec(true, false), nullptr, true);
  EXPECT_TRUE(a.violations.empty()) << a.violations.front().detail;
  // Byte-identical trace with and without the wrap: under modular time
  // the absolute register position carries no information.
  EXPECT_EQ(a.trace, b.trace);
}

TEST(MutationCanary, ClockWrapWithoutTheGuardViolates) {
  const RunSpec spec = wrap_spec(false, true);
  EXPECT_TRUE(spec.out_of_spec());
  const RunResult result = run_chaos(spec);
  EXPECT_TRUE(result.out_of_spec);
  EXPECT_FALSE(result.violations.empty());
}

}  // namespace
}  // namespace ahb::chaos
