#include <gtest/gtest.h>

#include "hb/coordinator.hpp"

namespace ahb::hb {
namespace {

Config binary_config(Time tmin, Time tmax, Variant v = Variant::Binary) {
  Config c;
  c.tmin = tmin;
  c.tmax = tmax;
  c.variant = v;
  return c;
}

TEST(Coordinator, StartArmsFirstRoundWithoutBeating) {
  Coordinator coord{binary_config(1, 10), {1}};
  const auto actions = coord.start(0);
  EXPECT_TRUE(actions.messages.empty());  // original binary waits first
  EXPECT_EQ(coord.next_event_time(), 10);
}

TEST(Coordinator, RevisedStartBeatsImmediately) {
  Coordinator coord{binary_config(1, 10, Variant::RevisedBinary), {1}};
  const auto actions = coord.start(0);
  ASSERT_EQ(actions.messages.size(), 1u);
  EXPECT_EQ(actions.messages[0].to, 1);
  EXPECT_EQ(actions.messages[0].message.sender, 0);
}

TEST(Coordinator, FirstRoundCountsAsReceived) {
  // rcvd starts true, so the first timeout keeps t = tmax and beats.
  Coordinator coord{binary_config(1, 10), {1}};
  coord.start(0);
  const auto actions = coord.on_elapsed(10);
  ASSERT_EQ(actions.messages.size(), 1u);
  EXPECT_EQ(coord.current_wait(), 10);
  EXPECT_EQ(coord.next_event_time(), 20);
}

TEST(Coordinator, MissedRoundHalvesWait) {
  Coordinator coord{binary_config(1, 10), {1}};
  coord.start(0);
  coord.on_elapsed(10);  // round 1, rcvd (initial) -> t=10
  coord.on_elapsed(20);  // miss -> t=5
  EXPECT_EQ(coord.current_wait(), 5);
  EXPECT_EQ(coord.next_event_time(), 25);
  coord.on_elapsed(25);  // miss -> t=2
  EXPECT_EQ(coord.current_wait(), 2);
}

TEST(Coordinator, ReceivedBeatRestoresTmax) {
  Coordinator coord{binary_config(1, 10), {1}};
  coord.start(0);
  coord.on_elapsed(10);
  coord.on_elapsed(20);  // miss -> t=5
  coord.on_message(22, Message{1, true});
  coord.on_elapsed(25);
  EXPECT_EQ(coord.current_wait(), 10);
}

TEST(Coordinator, InactivatesWhenWaitDropsBelowTmin) {
  Coordinator coord{binary_config(4, 10), {1}};
  coord.start(0);
  coord.on_elapsed(10);              // t=10 (initial rcvd)
  coord.on_elapsed(20);              // miss -> t=5
  const auto actions = coord.on_elapsed(25);  // miss -> 2 < tmin
  EXPECT_TRUE(actions.inactivated);
  EXPECT_EQ(coord.status(), Status::InactiveNonVoluntarily);
  EXPECT_EQ(coord.inactivated_at(), 25);
  EXPECT_EQ(coord.next_event_time(), kNever);
}

TEST(Coordinator, DetectionWithinPaperBound) {
  // After the last received beat, self-inactivation happens within
  // 3*tmax - tmin when 2*tmin <= tmax (the corrected R1 bound).
  for (const Time tmin : {1, 2, 3, 5}) {
    Config cfg = binary_config(tmin, 10);
    Coordinator coord{cfg, {1}};
    coord.start(0);
    coord.on_message(5, Message{1, true});  // last beat at t=5
    Time now = coord.next_event_time();
    while (coord.status() == Status::Active) {
      coord.on_elapsed(now);
      now = coord.next_event_time();
      if (now == kNever) break;
    }
    ASSERT_EQ(coord.status(), Status::InactiveNonVoluntarily);
    EXPECT_LE(coord.inactivated_at() - 5, cfg.coordinator_detection_bound())
        << "tmin=" << tmin;
  }
}

TEST(Coordinator, TwoPhaseDropsStraightToTmin) {
  Coordinator coord{binary_config(2, 10, Variant::TwoPhase), {1}};
  coord.start(0);
  coord.on_elapsed(10);  // initial rcvd -> 10
  coord.on_elapsed(20);  // miss -> tmin = 2
  EXPECT_EQ(coord.current_wait(), 2);
  const auto actions = coord.on_elapsed(22);  // second miss at tmin -> NV
  EXPECT_TRUE(actions.inactivated);
}

TEST(Coordinator, StaticTracksMembersIndependently) {
  Config cfg = binary_config(1, 10, Variant::Static);
  Coordinator coord{cfg, {1, 2, 3}};
  coord.start(0);
  auto actions = coord.on_elapsed(10);
  EXPECT_EQ(actions.messages.size(), 3u);  // broadcast to all members
  // Only member 2 replies.
  coord.on_message(12, Message{2, true});
  coord.on_elapsed(20);
  // t = min over members: members 1,3 halved to 5, member 2 at 10.
  EXPECT_EQ(coord.current_wait(), 5);
}

TEST(Coordinator, CrashSilencesEverything) {
  Coordinator coord{binary_config(1, 10), {1}};
  coord.start(0);
  coord.crash(3);
  EXPECT_EQ(coord.status(), Status::CrashedVoluntarily);
  EXPECT_EQ(coord.next_event_time(), kNever);
  EXPECT_TRUE(coord.on_elapsed(10).messages.empty());
  EXPECT_TRUE(coord.on_message(11, Message{1, true}).messages.empty());
}

TEST(Coordinator, ExpandingStartsEmptyAndRegistersJoiners) {
  Config cfg = binary_config(1, 10, Variant::Expanding);
  Coordinator coord{cfg, {}};
  coord.start(0);
  EXPECT_TRUE(coord.member_ids().empty());
  // A beat never inactivates an empty coordinator.
  auto actions = coord.on_elapsed(10);
  EXPECT_FALSE(actions.inactivated);
  EXPECT_TRUE(actions.messages.empty());  // no members to address

  coord.on_message(12, Message{5, true});
  EXPECT_TRUE(coord.is_member(5));
  actions = coord.on_elapsed(20);
  ASSERT_EQ(actions.messages.size(), 1u);
  EXPECT_EQ(actions.messages[0].to, 5);
}

TEST(Coordinator, StaticIgnoresUnknownSenders) {
  Coordinator coord{binary_config(1, 10, Variant::Static), {1, 2}};
  coord.start(0);
  coord.on_message(5, Message{9, true});
  EXPECT_FALSE(coord.is_member(9));
}

TEST(Coordinator, DynamicLeaveRemovesMemberAndAcks) {
  Config cfg = binary_config(1, 10, Variant::Dynamic);
  Coordinator coord{cfg, {}};
  coord.start(0);
  coord.on_message(3, Message{7, true});
  EXPECT_TRUE(coord.is_member(7));
  const auto actions = coord.on_message(5, Message{7, false});
  EXPECT_FALSE(coord.is_member(7));
  ASSERT_EQ(actions.messages.size(), 1u);  // leave acknowledgement
  EXPECT_EQ(actions.messages[0].to, 7);
  EXPECT_FALSE(actions.messages[0].message.flag);
  // Departure must not inactivate the coordinator.
  EXPECT_FALSE(coord.on_elapsed(10).inactivated);
  EXPECT_FALSE(coord.on_elapsed(20).inactivated);
}

TEST(Coordinator, StaleTimerIsIgnored) {
  Coordinator coord{binary_config(1, 10), {1}};
  coord.start(0);
  const auto actions = coord.on_elapsed(4);  // before the deadline
  EXPECT_TRUE(actions.messages.empty());
  EXPECT_EQ(coord.next_event_time(), 10);
}

}  // namespace
}  // namespace ahb::hb
