#include <gtest/gtest.h>

#include "mc/store.hpp"
#include "util/rng.hpp"

namespace ahb::mc {
namespace {

ta::State make_state(std::initializer_list<int> values) {
  ta::State s(values.size());
  std::size_t i = 0;
  for (int v : values) s[i++] = static_cast<ta::Slot>(v);
  return s;
}

TEST(StateStore, InternReturnsStableIndices) {
  StateStore store{3};
  const auto [i0, new0] = store.intern(make_state({1, 2, 3}));
  const auto [i1, new1] = store.intern(make_state({4, 5, 6}));
  const auto [i2, new2] = store.intern(make_state({1, 2, 3}));
  EXPECT_TRUE(new0);
  EXPECT_TRUE(new1);
  EXPECT_FALSE(new2);
  EXPECT_EQ(i0, i2);
  EXPECT_NE(i0, i1);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStore, GetRoundTrips) {
  StateStore store{4};
  const auto s = make_state({7, -3, 0, 127});
  const auto [index, _] = store.intern(s);
  EXPECT_EQ(store.get(index), s);
}

TEST(StateStore, FindMissingReturnsInvalid) {
  StateStore store{2};
  store.intern(make_state({1, 1}));
  EXPECT_EQ(store.find(make_state({2, 2})), StateStore::kInvalidIndex);
  EXPECT_NE(store.find(make_state({1, 1})), StateStore::kInvalidIndex);
}

TEST(StateStore, SurvivesTableGrowth) {
  StateStore store{2};
  Rng rng{99};
  std::vector<ta::State> states;
  for (int i = 0; i < 20000; ++i) {
    states.push_back(make_state({static_cast<int>(i % 999),
                                 static_cast<int>(i / 999)}));
    store.intern(states.back());
  }
  EXPECT_EQ(store.size(), 20000u);
  // Every state is still findable and round-trips after many rehashes.
  for (std::size_t i = 0; i < states.size(); i += 117) {
    const auto index = store.find(states[i]);
    ASSERT_NE(index, StateStore::kInvalidIndex);
    EXPECT_EQ(store.get(index), states[i]);
  }
}

TEST(StateStore, RawSpanMatches) {
  StateStore store{3};
  const auto [index, _] = store.intern(make_state({9, 8, 7}));
  const auto raw = store.raw(index);
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0], 9);
  EXPECT_EQ(raw[1], 8);
  EXPECT_EQ(raw[2], 7);
}

TEST(StateStore, MemoryGrowsWithContent) {
  StateStore store{8};
  const auto before = store.memory_bytes();
  for (int i = 0; i < 1000; ++i) {
    store.intern(make_state({i, 0, 0, 0, 0, 0, 0, 0}));
  }
  EXPECT_GT(store.memory_bytes(), before);
}

}  // namespace
}  // namespace ahb::mc
