// Failure-injection tests: the protocol's guarantee covers channel
// failure as well as process crashes ("either the respective process
// has failed or the communication medium is down") — when a link goes
// down permanently, both sides must deactivate within their bounds.
#include <gtest/gtest.h>

#include "hb/cluster.hpp"

namespace ahb::hb {
namespace {

ClusterConfig base_config(Variant v, int participants) {
  ClusterConfig c;
  c.protocol.variant = v;
  c.protocol.tmin = 2;
  c.protocol.tmax = 10;
  c.participants = participants;
  return c;
}

/// Helper running a binary cluster whose only link dies at `down_at`.
struct LinkDownOutcome {
  Status coordinator;
  Status participant;
  sim::Time coord_at;
  sim::Time part_at;
};

LinkDownOutcome run_link_down(bool both_directions, sim::Time down_at,
                              std::uint64_t seed) {
  auto cfg = base_config(Variant::Binary, 1);
  cfg.seed = seed;
  Cluster cluster{cfg};
  // Fault injection: flip the link(s) down at `down_at`.
  cluster.simulator().at(down_at, [&cluster, both_directions] {
    cluster.fail_link(0, 1);
    if (both_directions) cluster.fail_link(1, 0);
  });
  cluster.start();
  cluster.run_until(down_at + 1000);
  return LinkDownOutcome{
      cluster.coordinator().status(), cluster.participant(1).status(),
      cluster.coordinator().inactivated_at(),
      cluster.participant(1).inactivated_at()};
}

TEST(FailureInjection, FullLinkFailureDeactivatesEverybodyWithinBounds) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const sim::Time down_at = 305;
    const auto outcome = run_link_down(true, down_at, seed);
    EXPECT_EQ(outcome.coordinator, Status::InactiveNonVoluntarily);
    EXPECT_EQ(outcome.participant, Status::InactiveNonVoluntarily);
    // Coordinator: within its detection bound of the last beat; the last
    // beat was received at most one round-trip before the cut.
    Config cfg;
    cfg.tmin = 2;
    cfg.tmax = 10;
    EXPECT_LE(outcome.coord_at,
              down_at + cfg.tmin + cfg.coordinator_detection_bound());
    EXPECT_LE(outcome.part_at,
              down_at + cfg.tmin + cfg.participant_deadline());
  }
}

TEST(FailureInjection, ReverseDirectionFailureAloneStillDeactivates) {
  // Only replies are lost: the coordinator stops hearing back and
  // accelerates into inactivation; the participant then starves too.
  const auto outcome = run_link_down(false, 305, 7);
  // Forward link up: p1 keeps hearing beats until p0 dies.
  EXPECT_EQ(outcome.coordinator, Status::InactiveNonVoluntarily);
  EXPECT_EQ(outcome.participant, Status::InactiveNonVoluntarily);
  EXPECT_LT(outcome.coord_at, outcome.part_at);
}

TEST(FailureInjection, TransientLinkFlapIsSurvivable) {
  // A short outage (less than one acceleration ladder) must not kill
  // anything: the protocol recovers once beats flow again.
  auto cfg = base_config(Variant::Binary, 1);
  cfg.protocol.tmin = 1;
  cfg.protocol.tmax = 16;
  Cluster cluster{cfg};
  cluster.simulator().at(300, [&cluster] { cluster.fail_link(0, 1); });
  cluster.simulator().at(316, [&cluster] { cluster.restore_link(0, 1); });
  cluster.start();
  cluster.run_until(5000);
  EXPECT_EQ(cluster.coordinator().status(), Status::Active);
  EXPECT_EQ(cluster.participant(1).status(), Status::Active);
}

TEST(FailureInjection, StaticSingleMemberLinkFailureKillsWholeNetwork) {
  // Losing connectivity to ONE member of a static group deactivates the
  // coordinator (its tm[i] keeps halving) and therefore everyone: group
  // liveness in the 1998 design is all-or-nothing by construction.
  auto cfg = base_config(Variant::Static, 3);
  Cluster cluster{cfg};
  cluster.simulator().at(300, [&cluster] {
    cluster.fail_link(0, 2);
    cluster.fail_link(2, 0);
  });
  cluster.start();
  cluster.run_until(5000);
  EXPECT_EQ(cluster.coordinator().status(), Status::InactiveNonVoluntarily);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(cluster.participant(i).status(),
              Status::InactiveNonVoluntarily)
        << i;
  }
}

}  // namespace
}  // namespace ahb::hb
