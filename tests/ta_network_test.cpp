#include <gtest/gtest.h>

#include <algorithm>

#include "ta/network.hpp"

namespace ahb::ta {
namespace {

/// Counts successors of the initial state by kind.
struct Kinds {
  int ticks = 0;
  int internals = 0;
  int syncs = 0;
  int broadcasts = 0;
};

Kinds kinds_of(const Network& net, const State& s) {
  Kinds k;
  for (const auto& t : net.successors(s)) {
    switch (t.kind) {
      case Transition::Kind::Tick: ++k.ticks; break;
      case Transition::Kind::Internal: ++k.internals; break;
      case Transition::Kind::Sync: ++k.syncs; break;
      case Transition::Kind::Broadcast: ++k.broadcasts; break;
    }
  }
  return k;
}

TEST(Network, TickAdvancesClocksUpToCap) {
  Network net;
  const auto a = net.add_automaton("a");
  net.add_location(a, "idle");
  const auto c = net.add_clock("c", 3);
  net.freeze();

  State s = net.initial_state();
  for (int expected = 1; expected <= 5; ++expected) {
    auto succ = net.successors(s);
    ASSERT_EQ(succ.size(), 1u);
    EXPECT_EQ(succ[0].kind, Transition::Kind::Tick);
    s = succ[0].target;
    EXPECT_EQ(StateView(net, s).clk(c), std::min(expected, 3));
  }
}

TEST(Network, InvariantBlocksTick) {
  Network net;
  const auto a = net.add_automaton("a");
  const auto c = net.add_clock("c", 10);
  net.add_location(a, "bounded", LocKind::Normal,
                   [c](const StateView& v) { return v.clk(c) <= 2; });
  net.freeze();

  State s = net.initial_state();
  s = net.successors(s)[0].target;  // c=1
  s = net.successors(s)[0].target;  // c=2
  EXPECT_TRUE(net.successors(s).empty());  // tick to 3 would break invariant
}

TEST(Network, UrgentLocationFreezesTime) {
  Network net;
  const auto a = net.add_automaton("a");
  net.add_location(a, "urgent", LocKind::Urgent);
  const auto b = net.add_automaton("b");
  net.add_location(b, "idle");
  net.add_clock("c", 5);
  net.freeze();
  EXPECT_TRUE(net.successors(net.initial_state()).empty());
}

TEST(Network, InternalEdgeFiresWhenGuardHolds) {
  Network net;
  const auto a = net.add_automaton("a");
  const auto l0 = net.add_location(a, "l0");
  const auto l1 = net.add_location(a, "l1");
  const auto x = net.add_var("x", 0);
  net.add_edge(a, Edge{.src = l0,
                       .dst = l1,
                       .guard = [x](const StateView& v) {
                         return v.var(x) == 0;
                       },
                       .effect = [x](StateMut& m) { m.set(x, 7); },
                       .label = "go"});
  net.freeze();

  // The internal edge plus a (state-preserving, clockless) tick.
  const auto k = kinds_of(net, net.initial_state());
  EXPECT_EQ(k.internals, 1);
  EXPECT_EQ(k.ticks, 1);
  const auto succ = net.successors(net.initial_state());
  const auto it = std::find_if(succ.begin(), succ.end(), [](const auto& t) {
    return t.kind == Transition::Kind::Internal;
  });
  ASSERT_NE(it, succ.end());
  EXPECT_EQ(StateView(net, it->target).var(x), 7);
}

TEST(Network, GuardFalseDisablesEdge) {
  Network net;
  const auto a = net.add_automaton("a");
  const auto l0 = net.add_location(a, "l0");
  const auto l1 = net.add_location(a, "l1");
  net.add_edge(a, Edge{.src = l0,
                       .dst = l1,
                       .guard = [](const StateView&) { return false; },
                       .label = "never"});
  net.add_clock("c", 2);
  net.freeze();
  const auto k = kinds_of(net, net.initial_state());
  EXPECT_EQ(k.internals, 0);
  EXPECT_EQ(k.ticks, 1);
}

TEST(Network, HandshakePairsSenderAndReceiver) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Handshake);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "a0");
  const auto a1 = net.add_location(a, "a1");
  net.add_edge(a, Edge{.src = a0,
                       .dst = a1,
                       .chan = ch,
                       .dir = SyncDir::Send,
                       .label = "snd"});
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "b0");
  const auto b1 = net.add_location(b, "b1");
  const auto x = net.add_var("x", 0);
  net.add_edge(b, Edge{.src = b0,
                       .dst = b1,
                       .chan = ch,
                       .dir = SyncDir::Recv,
                       .effect = [x](StateMut& m) { m.set(x, 1); },
                       .label = "rcv"});
  net.freeze();

  const auto succ = net.successors(net.initial_state());
  const auto it = std::find_if(succ.begin(), succ.end(), [](const auto& t) {
    return t.kind == Transition::Kind::Sync;
  });
  ASSERT_NE(it, succ.end());
  const StateView v{net, it->target};
  EXPECT_EQ(v.loc(AutomatonId{0}), a1);
  EXPECT_EQ(v.loc(AutomatonId{1}), b1);
  EXPECT_EQ(v.var(x), 1);
}

TEST(Network, HandshakeBlocksWithoutReceiver) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Handshake);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "a0");
  const auto a1 = net.add_location(a, "a1");
  net.add_edge(a, Edge{.src = a0,
                       .dst = a1,
                       .chan = ch,
                       .dir = SyncDir::Send,
                       .label = "snd"});
  net.add_clock("c", 2);
  net.freeze();
  const auto k = kinds_of(net, net.initial_state());
  EXPECT_EQ(k.syncs, 0);
  EXPECT_EQ(k.ticks, 1);
}

TEST(Network, BroadcastReachesAllEnabledReceivers) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Broadcast);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "a0");
  const auto a1 = net.add_location(a, "a1");
  net.add_edge(a, Edge{.src = a0,
                       .dst = a1,
                       .chan = ch,
                       .dir = SyncDir::Send,
                       .label = "snd"});
  const auto x = net.add_var("x", 0);
  for (int i = 0; i < 3; ++i) {
    const auto b = net.add_automaton("b" + std::to_string(i));
    const auto b0 = net.add_location(b, "b0");
    const auto b1 = net.add_location(b, "b1");
    Edge e{.src = b0,
           .dst = b1,
           .chan = ch,
           .dir = SyncDir::Recv,
           .effect = [x](StateMut& m) { m.set(x, m.var(x) + 1); },
           .label = "rcv"};
    if (i == 2) {
      // Receiver 2 is disabled; the broadcast must proceed without it.
      e.guard = [](const StateView&) { return false; };
    }
    net.add_edge(b, std::move(e));
  }
  net.freeze();

  const auto succ = net.successors(net.initial_state());
  const auto it = std::find_if(succ.begin(), succ.end(), [](const auto& t) {
    return t.kind == Transition::Kind::Broadcast;
  });
  ASSERT_NE(it, succ.end());
  EXPECT_EQ(it->receivers.size(), 2u);
  EXPECT_EQ(StateView(net, it->target).var(x), 2);
}

TEST(Network, BroadcastFiresWithZeroReceivers) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Broadcast);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "a0");
  const auto a1 = net.add_location(a, "a1");
  net.add_edge(a, Edge{.src = a0,
                       .dst = a1,
                       .chan = ch,
                       .dir = SyncDir::Send,
                       .label = "snd"});
  net.freeze();
  const auto k = kinds_of(net, net.initial_state());
  EXPECT_EQ(k.broadcasts, 1);
}

TEST(Network, CommittedLocationRestrictsInterleaving) {
  Network net;
  // Automaton a sits in a committed location with an outgoing edge;
  // automaton b has an independent internal edge that must be blocked.
  const auto a = net.add_automaton("a");
  const auto ac = net.add_location(a, "committed", LocKind::Committed);
  const auto a1 = net.add_location(a, "done");
  net.add_edge(a, Edge{.src = ac, .dst = a1, .label = "resolve"});
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "b0");
  const auto b1 = net.add_location(b, "b1");
  net.add_edge(b, Edge{.src = b0, .dst = b1, .label = "independent"});
  net.add_clock("c", 2);
  net.freeze();

  const auto succ = net.successors(net.initial_state());
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(net.label_of(succ[0]), "a.resolve");

  // After resolving, both b's edge and the tick become available.
  const auto k = kinds_of(net, succ[0].target);
  EXPECT_EQ(k.internals, 1);
  EXPECT_EQ(k.ticks, 1);
}

TEST(Network, TargetInvariantBlocksDiscreteTransition) {
  Network net;
  const auto a = net.add_automaton("a");
  const auto c = net.add_clock("c", 10);
  const auto l0 = net.add_location(a, "l0");
  const auto l1 = net.add_location(a, "l1", LocKind::Normal,
                                   [c](const StateView& v) {
                                     return v.clk(c) <= 1;
                                   });
  net.add_edge(a, Edge{.src = l0, .dst = l1, .label = "enter"});
  net.freeze();

  State s = net.initial_state();
  // c == 0: entering l1 is allowed.
  auto k = kinds_of(net, s);
  EXPECT_EQ(k.internals, 1);
  // Advance to c == 2: entering l1 would violate its invariant.
  s = net.successors(s)[1].target;  // pick the tick (internal listed first)
  s = *[&]() -> std::optional<State> {
    for (const auto& t : net.successors(s)) {
      if (t.kind == Transition::Kind::Tick) return t.target;
    }
    return std::nullopt;
  }();
  k = kinds_of(net, s);
  EXPECT_EQ(k.internals, 0);
}

TEST(Network, EdgePriorityMasksLowerPriority) {
  Network net;
  const auto a = net.add_automaton("a");
  const auto l0 = net.add_location(a, "l0");
  const auto l1 = net.add_location(a, "hi");
  const auto l2 = net.add_location(a, "lo");
  net.add_edge(a, Edge{.src = l0, .dst = l1, .label = "hi", .priority = 1});
  net.add_edge(a, Edge{.src = l0, .dst = l2, .label = "lo", .priority = 0});
  net.freeze();

  // Priorities filter discrete transitions only; the (clockless) tick
  // remains available.
  std::vector<std::string> labels;
  for (const auto& t : net.successors(net.initial_state())) {
    labels.push_back(net.label_of(t));
  }
  EXPECT_NE(std::find(labels.begin(), labels.end(), "a.hi"), labels.end());
  EXPECT_EQ(std::find(labels.begin(), labels.end(), "a.lo"), labels.end());
}

TEST(Network, ClockSaturationKeepsStateSpaceFinite) {
  Network net;
  const auto a = net.add_automaton("a");
  net.add_location(a, "idle");
  net.add_clock("c", 4);
  net.freeze();

  State s = net.initial_state();
  for (int i = 0; i < 10; ++i) s = net.successors(s)[0].target;
  // Saturated: ticking further returns the identical state.
  const auto succ = net.successors(s);
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0].target, s);
}

TEST(Network, DescribeMentionsLocationsVarsClocks) {
  Network net;
  const auto a = net.add_automaton("proc");
  net.add_location(a, "start");
  net.add_var("flag", 1);
  net.add_clock("timer", 5);
  net.freeze();
  const auto text = net.describe(net.initial_state());
  EXPECT_NE(text.find("proc@start"), std::string::npos);
  EXPECT_NE(text.find("flag=1"), std::string::npos);
  EXPECT_NE(text.find("timer=0"), std::string::npos);
}

TEST(Network, LabelOfSyncMentionsBothParties) {
  Network net;
  const auto ch = net.add_channel("ch", ChanKind::Handshake);
  const auto a = net.add_automaton("a");
  const auto a0 = net.add_location(a, "a0");
  net.add_edge(a, Edge{.src = a0, .dst = a0, .chan = ch,
                       .dir = SyncDir::Send, .label = "snd"});
  const auto b = net.add_automaton("b");
  const auto b0 = net.add_location(b, "b0");
  net.add_edge(b, Edge{.src = b0, .dst = b0, .chan = ch,
                       .dir = SyncDir::Recv, .label = "rcv"});
  net.freeze();
  const auto succ = net.successors(net.initial_state());
  ASSERT_FALSE(succ.empty());
  EXPECT_EQ(net.label_of(succ[0]), "a.snd >> b.rcv");
}

}  // namespace
}  // namespace ahb::ta
