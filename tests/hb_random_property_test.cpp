// Randomized end-to-end properties: the DES analogue of the formal
// requirements, asserted over many random schedules/seeds.
//
//   (R2/R3 analogue) nobody inactivates non-voluntarily unless a message
//   was actually lost or somebody crashed;
//   (R1/liveness analogue) once somebody crashes, the whole network is
//   inactive within the analytic bounds;
//   determinism: identical seeds give identical histories.
#include <gtest/gtest.h>

#include "hb/cluster.hpp"
#include "util/rng.hpp"

namespace ahb::hb {
namespace {

struct Scenario {
  Variant variant;
  int participants;
  Time tmin, tmax;
  double loss;
};

class RandomRuns : public ::testing::TestWithParam<int> {};

TEST_P(RandomRuns, NoSpuriousInactivationWithoutLossOrCrash) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng{seed};
  const Scenario scenarios[] = {
      {Variant::Binary, 1, 2, 10, 0.0},
      {Variant::Static, 3, 2, 12, 0.0},
      {Variant::Expanding, 2, 3, 12, 0.0},
      {Variant::Dynamic, 2, 2, 10, 0.0},
  };
  const auto& sc = scenarios[rng.below(4)];

  ClusterConfig config;
  config.protocol.variant = sc.variant;
  config.protocol.tmin = sc.tmin;
  config.protocol.tmax = sc.tmax;
  config.participants = sc.participants;
  config.loss_probability = sc.loss;
  config.seed = seed;

  Cluster cluster{config};
  // Random graceful leaves are allowed (they must not kill anyone).
  if (sc.variant == Variant::Dynamic && rng.chance(0.5)) {
    cluster.leave_at(1, static_cast<sim::Time>(100 + rng.below(400)));
  }
  cluster.start();
  cluster.run_until(static_cast<sim::Time>(2000 + rng.below(3000)));

  ASSERT_EQ(cluster.network_stats().lost, 0u);
  EXPECT_NE(cluster.coordinator().status(),
            Status::InactiveNonVoluntarily);
  for (int i = 1; i <= sc.participants; ++i) {
    EXPECT_NE(cluster.participant(i).status(),
              Status::InactiveNonVoluntarily)
        << to_string(sc.variant) << " participant " << i;
  }
}

TEST_P(RandomRuns, CrashDeactivatesWholeNetworkWithinBounds) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng{seed ^ 0xabcdef};
  ClusterConfig config;
  config.protocol.variant = rng.chance(0.5) ? Variant::Binary
                                            : Variant::Static;
  config.protocol.tmin = static_cast<Time>(1 + rng.below(4));
  config.protocol.tmax = static_cast<Time>(8 + rng.below(9));
  config.participants =
      config.protocol.variant == Variant::Binary
          ? 1
          : static_cast<int>(1 + rng.below(4));
  config.seed = seed;

  Cluster cluster{config};
  const int victim = static_cast<int>(1 + rng.below(
                         static_cast<std::uint64_t>(config.participants)));
  const auto crash_at = static_cast<sim::Time>(50 + rng.below(200));
  cluster.crash_participant_at(victim, crash_at);
  cluster.start();

  const Config& cfg = config.protocol;
  // Coordinator detects within its bound (+ one in-flight delivery);
  // then everyone else within the participant deadline of the
  // coordinator's death.
  const sim::Time all_dead_by = crash_at + cfg.tmin +
                                cfg.coordinator_detection_bound() +
                                cfg.participant_deadline() + cfg.tmin;
  cluster.run_until(all_dead_by + 1);
  EXPECT_TRUE(cluster.all_inactive())
      << to_string(cfg.variant) << " tmin=" << cfg.tmin
      << " tmax=" << cfg.tmax << " n=" << config.participants
      << " victim=" << victim << " crash_at=" << crash_at;
  EXPECT_LE(cluster.coordinator().inactivated_at(),
            crash_at + cfg.tmin + cfg.coordinator_detection_bound());
}

TEST_P(RandomRuns, IdenticalSeedsGiveIdenticalHistories) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto run = [&] {
    ClusterConfig config;
    config.protocol.variant = Variant::Static;
    config.protocol.tmin = 2;
    config.protocol.tmax = 9;
    config.participants = 2;
    config.loss_probability = 0.15;
    config.seed = seed;
    Cluster cluster{config};
    cluster.start();
    cluster.run_until(4000);
    return std::tuple{
        cluster.network_stats().sent,     cluster.network_stats().delivered,
        cluster.network_stats().lost,     cluster.coordinator().status(),
        cluster.coordinator().inactivated_at(),
        cluster.participant(1).status(),  cluster.participant(2).status(),
    };
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRuns,
                         ::testing::Range(1, 26));  // 25 seeds x 3 properties

}  // namespace
}  // namespace ahb::hb
