// The standing conformance-regression corpus (tests/corpus/): shrunk
// out-of-spec artifacts and their clamped in-spec controls, committed
// as versioned JSONL RunSpecs and replayed here on every build.
//
// Contract per artifact, keyed by filename prefix:
//   oos_*  — parses, classifies out of spec, reproduces at least one
//            monitor violation, and its recorded trace is REJECTED by
//            the timed-automata conformance model.
//   ok_*   — parses, classifies in spec, runs clean, and its trace is
//            ACCEPTED by the model.
// Anything else in the corpus directory fails the suite: the corpus is
// append-only and every file in it must carry its expectation.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/runner.hpp"
#include "proto/conformance.hpp"

namespace ahb::chaos {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  const fs::path root{AHB_CORPUS_DIR};
  if (!fs::exists(root)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CorpusReplay, CorpusIsPresentAndCoversBothExpectations) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty()) << "no corpus artifacts under " << AHB_CORPUS_DIR;
  bool has_oos = false;
  bool has_ok = false;
  for (const auto& file : files) {
    const std::string name = file.filename().string();
    has_oos |= name.starts_with("oos_");
    has_ok |= name.starts_with("ok_");
  }
  EXPECT_TRUE(has_oos);
  EXPECT_TRUE(has_ok);
}

TEST(CorpusReplay, EveryArtifactParsesAndMeetsItsExpectation) {
  for (const auto& file : corpus_files()) {
    const std::string name = file.filename().string();
    SCOPED_TRACE(name);
    const auto spec = parse_run(slurp(file));
    ASSERT_TRUE(spec.has_value()) << "artifact does not parse";

    const bool expect_violation = name.starts_with("oos_");
    ASSERT_TRUE(expect_violation || name.starts_with("ok_"))
        << "corpus artifacts must be named oos_* or ok_*";
    EXPECT_EQ(spec->out_of_spec(), expect_violation);

    const RunResult run = run_chaos(*spec, nullptr, false, true);
    ASSERT_FALSE(run.events.empty());
    const auto replay =
        proto::replay_cluster_trace(cluster_config_for(*spec), run.events);
    if (expect_violation) {
      EXPECT_FALSE(run.violations.empty())
          << "out-of-spec artifact no longer reproduces a violation";
      EXPECT_FALSE(replay.ok)
          << "model accepted an out-of-spec trace: matched " << replay.matched
          << "/" << replay.events;
    } else {
      EXPECT_TRUE(run.violations.empty())
          << run.violations.front().detail;
      EXPECT_TRUE(replay.ok)
          << "model rejected an in-spec trace: matched " << replay.matched
          << "/" << replay.events << ": " << replay.diagnostic;
    }
  }
}

}  // namespace
}  // namespace ahb::chaos
