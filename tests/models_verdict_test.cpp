// Property sweeps: model-checked verdicts for R1/R2/R3 must match the
// closed-form conditions implied by the paper's counterexample analysis,
// at every point of the (tmin, tmax) grid — not just the five data sets
// of Tables 1 and 2:
//
//   binary/revised/static:  R1 <=> 2*tmin > tmax,
//                           R2 <=> tmin < tmax,  R3 <=> tmin < tmax
//   expanding/dynamic:      R1 <=> 2*tmin > tmax,
//                           R2 <=> 2*tmin < tmax, R3 <=> tmin < tmax
//   two-phase:              R1 <=> tmin == tmax (the drop to tmin always
//                           costs an extra tmin beyond 2*tmax otherwise),
//                           R2/R3 as binary
//   fixed variants:         everything holds everywhere.
#include <gtest/gtest.h>

#include "models/heartbeat_model.hpp"

namespace ahb::models {
namespace {

// The closed-form verdict predicates are the shared kernel's
// (proto::expected_verdicts): the model checker must agree with them at
// every grid point.
proto::ExpectedVerdicts expected_verdicts(Flavor flavor, const Timing& t) {
  return proto::expected_verdicts(flavor, t.to_proto());
}

class VerdictSweep
    : public ::testing::TestWithParam<std::tuple<Flavor, int>> {};

TEST_P(VerdictSweep, MatchesCounterexampleAnalysis) {
  const auto [flavor, tmin] = GetParam();
  const Timing timing{tmin, 6};
  BuildOptions options;
  options.timing = timing;
  options.participants = 1;

  const Verdicts got = verify_requirements(flavor, options);
  const auto want = expected_verdicts(flavor, timing);
  EXPECT_EQ(got.r1, want.r1) << "R1 at tmin=" << tmin;
  EXPECT_EQ(got.r2, want.r2) << "R2 at tmin=" << tmin;
  EXPECT_EQ(got.r3, want.r3) << "R3 at tmin=" << tmin;
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, VerdictSweep,
    ::testing::Combine(::testing::Values(Flavor::Binary, Flavor::RevisedBinary,
                                         Flavor::TwoPhase, Flavor::Static,
                                         Flavor::Expanding, Flavor::Dynamic),
                       ::testing::Values(1, 2, 3, 4, 5, 6)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) + "_tmin" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class FixedSweep : public ::testing::TestWithParam<std::tuple<Flavor, int>> {};

TEST_P(FixedSweep, CorrectedProtocolsSatisfyEverything) {
  const auto [flavor, tmin] = GetParam();
  BuildOptions options;
  options.timing = Timing{tmin, 6};
  options.participants = 1;
  options.fixed = true;

  const Verdicts got = verify_requirements(flavor, options);
  EXPECT_TRUE(got.r1) << "R1 at tmin=" << tmin;
  EXPECT_TRUE(got.r2) << "R2 at tmin=" << tmin;
  EXPECT_TRUE(got.r3) << "R3 at tmin=" << tmin;
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, FixedSweep,
    ::testing::Combine(::testing::Values(Flavor::Binary, Flavor::RevisedBinary,
                                         Flavor::Static, Flavor::Expanding,
                                         Flavor::Dynamic),
                       ::testing::Values(1, 2, 3, 4, 5, 6)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) + "_tmin" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// A different tmax exercises different halving chains (odd values take
// the floor path: 7 -> 3 -> 1).
class OddTmaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(OddTmaxSweep, BinaryOracleHoldsForTmax7) {
  const int tmin = GetParam();
  const Timing timing{tmin, 7};
  BuildOptions options;
  options.timing = timing;
  const Verdicts got = verify_requirements(Flavor::Binary, options);
  const auto want = expected_verdicts(Flavor::Binary, timing);
  EXPECT_EQ(got.r1, want.r1);
  EXPECT_EQ(got.r2, want.r2);
  EXPECT_EQ(got.r3, want.r3);
}

INSTANTIATE_TEST_SUITE_P(Tmins, OddTmaxSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(VerdictMulti, StaticWithTwoParticipantsMatchesOracle) {
  for (const int tmin : {1, 2, 4}) {
    BuildOptions options;
    options.timing = Timing{tmin, 4};
    options.participants = 2;
    const Verdicts got = verify_requirements(Flavor::Static, options);
    const auto want = expected_verdicts(Flavor::Static, options.timing);
    EXPECT_EQ(got.r1, want.r1) << "tmin=" << tmin;
    EXPECT_EQ(got.r2, want.r2) << "tmin=" << tmin;
    EXPECT_EQ(got.r3, want.r3) << "tmin=" << tmin;
  }
}

TEST(VerdictMulti, ExpandingWithTwoParticipantsMatchesOracle) {
  for (const int tmin : {1, 2, 4}) {
    BuildOptions options;
    options.timing = Timing{tmin, 4};
    options.participants = 2;
    const Verdicts got = verify_requirements(Flavor::Expanding, options);
    const auto want = expected_verdicts(Flavor::Expanding, options.timing);
    EXPECT_EQ(got.r1, want.r1) << "tmin=" << tmin;
    EXPECT_EQ(got.r2, want.r2) << "tmin=" << tmin;
    EXPECT_EQ(got.r3, want.r3) << "tmin=" << tmin;
  }
}

}  // namespace
}  // namespace ahb::models
