// Flat, word-packed bitset over dense small-integer ids.
//
// The cluster-scale engine keeps per-participant booleans (joined,
// beat-received-this-round, leave-requested) as bitsets so a round
// boundary over 100k members is a word scan, not a map walk; the
// simulation transport uses one for O(1) node-isolation checks. Unlike
// std::vector<bool> it exposes the words, so callers can batch-clear
// with one memset-like loop and iterate set bits with countr_zero.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace ahb {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t bits) { resize(bits); }

  /// Grows/shrinks to hold `bits` bits; new bits start cleared.
  void resize(std::size_t bits) {
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
    trim_last_word();
  }

  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    AHB_EXPECTS(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void set(std::size_t i) {
    AHB_EXPECTS(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) {
    AHB_EXPECTS(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::size_t i, bool value) { value ? set(i) : reset(i); }

  /// Clears every bit (one linear word pass — the batched round reset).
  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  bool any() const {
    for (const auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// First set bit at or after `from`, or size() when none.
  std::size_t find_next(std::size_t from) const {
    if (from >= bits_) return bits_;
    std::size_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        return (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      }
      if (++wi == words_.size()) return bits_;
      w = words_[wi];
    }
  }

  /// Word view for batched scans (e.g. joined & ~received per word).
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t wi) const { return words_[wi]; }

 private:
  void trim_last_word() {
    if (bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (bits_ % 64)) - 1;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ahb
