// Lightweight contract checks in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations are programming errors, not recoverable conditions, so they
// abort with a diagnostic rather than throwing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ahb {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace ahb

#define AHB_EXPECTS(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::ahb::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define AHB_ENSURES(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::ahb::contract_failure("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define AHB_ASSERT(cond)                                               \
  do {                                                                 \
    if (!(cond)) ::ahb::contract_failure("assertion", #cond, __FILE__, __LINE__); \
  } while (false)

// Marks a state that is unreachable if the program logic is correct.
#define AHB_UNREACHABLE(msg) \
  ::ahb::contract_failure("unreachable", msg, __FILE__, __LINE__)
