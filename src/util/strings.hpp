// Small string helpers shared by trace printing and benchmark tables.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ahb {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strprintf(const char* fmt, ...);

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Left-pads (right-aligns) `s` to `width` with spaces.
std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads (left-aligns) `s` to `width` with spaces.
std::string pad_right(std::string_view s, std::size_t width);

}  // namespace ahb
