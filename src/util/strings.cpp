#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

#include "util/contracts.hpp"

namespace ahb {

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  AHB_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  // +1: vsnprintf writes the terminator; std::string owns capacity for it.
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string(width - s.size(), ' ') + std::string{s};
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string{s} + std::string(width - s.size(), ' ');
}

}  // namespace ahb
