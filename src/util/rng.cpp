#include "util/rng.hpp"

namespace ahb {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro state must not be all-zero; splitmix64 guarantees a good spread
  // even for seed == 0.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  AHB_EXPECTS(bound > 0);
  // Lemire's method: multiply into a 128-bit product; reject the small
  // biased region at the bottom.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  AHB_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace ahb
