// Deterministic, seedable pseudo-random number generation.
//
// Simulation experiments must be reproducible run-to-run and across
// platforms, so we implement splitmix64 (for seeding) and xoshiro256++
// (for the stream) instead of relying on implementation-defined
// std::default_random_engine behaviour.
#pragma once

#include <array>
#include <cstdint>

#include "util/contracts.hpp"

namespace ahb {

/// splitmix64: used to expand a single 64-bit seed into a full state.
/// Advances `state` and returns the next value.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state deterministically from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value. Satisfies UniformRandomBitGenerator.
  std::uint64_t operator()() noexcept;

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace ahb
