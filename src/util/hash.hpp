// Stable byte-sequence hashing for the model checker's state store.
//
// std::hash over containers is not provided by the standard library and
// its scalar specializations are implementation-defined; the explorer
// needs a fast, well-mixed, deterministic hash over packed state bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace ahb {

/// FNV-1a-then-finalize hash over a byte span.
///
/// FNV-1a alone has weak avalanche in the low bits; the splitmix64
/// finalizer fixes that, which matters because the state store masks the
/// hash down to a power-of-two table size.
inline std::uint64_t hash_bytes(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Convenience overload for trivially-copyable element arrays.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::uint64_t hash_span(std::span<const T> values) noexcept {
  return hash_bytes(std::as_bytes(values));
}

/// Combines two hashes (boost::hash_combine style, 64-bit constant).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace ahb
