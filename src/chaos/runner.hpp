// Executes one chaos run: builds a Cluster from a RunSpec, applies the
// fault schedule at its prescribed instants, monitors R1–R3, and
// returns the verdicts plus the observables that make runs comparable
// (the serialized protocol-event trace and the network counters).
// Everything is derived from the spec alone, so two executions of the
// same spec are byte-identical — the property the campaign determinism
// tests and the shrinker's replay check both rest on.
#pragma once

#include <string>
#include <vector>

#include "chaos/fault_schedule.hpp"
#include "chaos/monitor.hpp"
#include "hb/cluster.hpp"
#include "rv/availability.hpp"
#include "rv/integrity.hpp"
#include "rv/pltl/eval.hpp"

namespace ahb::chaos {

struct RunResult {
  /// R1–R3 violations first (in detection order), then suspicion-
  /// ladder (requirement 4) and payload-integrity (requirement 5)
  /// violations.
  std::vector<Violation> violations;
  /// Availability score of the run (rv::AvailabilityStats).
  rv::AvailabilitySummary availability;
  /// Payload-integrity counters (rv::IntegrityMonitor).
  rv::IntegritySummary integrity;
  sim::NetworkStats net_stats;
  /// The schedule stepped outside the channel/clock assumptions, so
  /// violations are expected rather than bugs.
  bool out_of_spec = false;
  bool all_inactive = false;
  /// One line per protocol event ("at kind node msg_id"), recorded only
  /// when requested — the byte-comparable execution fingerprint.
  std::string trace;
  /// The raw protocol-event trace (recorded only when requested) — the
  /// input replay_cluster_trace needs to feed a chaos run through the
  /// conformance layer.
  std::vector<hb::ProtocolEvent> events;
  /// Violations reported by attached pLTL formula monitors, kept apart
  /// from `violations` so formulas ride along without perturbing the
  /// campaign's violating-run bookkeeping or the shrinker.
  std::vector<Violation> formula_violations;
};

/// Runs `spec` to its horizon with the full rv monitor stack attached
/// (requirement + suspicion + availability). `bounds` overrides the
/// monitor deadlines (nullptr = the proto/timing.hpp defaults — the
/// only sound setting; overriding exists for the mutation-canary
/// tests and applies to the suspicion bounds carried in MonitorBounds
/// too). `record_trace` fills RunResult::trace, `record_events` fills
/// RunResult::events.
/// `formulas` (optional) compiles each pLTL spec against this run's
/// timing/variant and attaches the resulting monitors next to the
/// hand-written stack; their verdicts land in
/// RunResult::formula_violations. Every spec must compile (contract).
RunResult run_chaos(const RunSpec& spec, const MonitorBounds* bounds = nullptr,
                    bool record_trace = false, bool record_events = false,
                    const std::vector<rv::pltl::FormulaSpec>* formulas = nullptr);

/// The cluster configuration a chaos run executes under (exposed so the
/// conformance layer can replay a recorded chaos trace through the model
/// built for exactly this configuration).
hb::ClusterConfig cluster_config_for(const RunSpec& spec);

/// Schedules every action of `spec.schedule` on `cluster` (before
/// start(), in schedule order — same-instant actions fire FIFO exactly
/// as listed). Exposed so the mission runner applies schedules to its
/// own long-lived clusters through the one shared interpreter.
void schedule_actions(hb::Cluster& cluster, const RunSpec& spec);

}  // namespace ahb::chaos
