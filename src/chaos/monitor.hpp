// Runtime requirement monitors for chaos runs.
//
// The model-checking layer proves R1–R3 over *all* executions of the
// timed-automata models; this monitor checks the *executable* hb
// engines against the same requirements on one live execution, fed by
// the Cluster protocol-event stream and the Network channel-event
// stream. The deadlines come from the closed-form slack laws in
// proto/timing.hpp, which are sound for any fault sequence inside the
// channel/clock assumptions — so under in-spec faults every violation
// is a genuine protocol bug, while out-of-spec faults (delays breaking
// the tmin round trip, drifting clocks) are expected to trip the
// monitor and serve as its negative control.
//
// The three obligations, in monitor form:
//   R1  once every participant has stopped (crashed, left, or
//       inactivated) while the coordinator still has a registered
//       member, the coordinator must NV-inactivate within
//       r1_detection_slack.
//   R2  every NV-inactivation must be *explained* by a fault — a
//       channel loss/block, a crash, a leave, or an earlier
//       NV-inactivation — within the preceding r2_explanation_window;
//       an unexplained one is a premature detection.
//   R3  once the coordinator stops, every live participant must stop
//       within r3_detection_slack (re-anchored if it rejoins later).
#pragma once

#include <string>
#include <vector>

#include "hb/cluster.hpp"
#include "sim/network.hpp"

namespace ahb::chaos {

using Time = sim::Time;

/// The monitor deadlines. Defaults come from proto/timing.hpp; tests
/// loosen individual bounds to prove the monitor actually bites (the
/// mutation canary: a loosened bound must silence the negative
/// control).
struct MonitorBounds {
  Time r1_slack = 0;
  Time r2_window = 0;
  Time r3_slack = 0;

  static MonitorBounds defaults(const proto::Timing& timing,
                                proto::Variant variant, bool fixed_bounds);
};

struct Violation {
  int requirement = 0;  ///< 1, 2 or 3
  int node = 0;         ///< 0 = coordinator
  Time at = 0;          ///< when the violation was established
  Time deadline = 0;    ///< the missed deadline (R1/R3) or the premature
                        ///< inactivation instant (R2)
  std::string detail;

  /// Stable identity for shrinking: two runs reproduce "the same"
  /// violation when requirement, node and deadline all match.
  std::string key() const;
};

class RequirementMonitor {
 public:
  struct Config {
    proto::Variant variant = proto::Variant::Binary;
    proto::Timing timing;
    bool fixed_bounds = true;
    int participants = 1;
  };

  RequirementMonitor(const Config& config, const MonitorBounds& bounds);

  /// Convenience: subscribes to both event streams of the cluster.
  /// Events must arrive in nondecreasing time order (the simulator's
  /// synchronous callbacks guarantee this).
  void attach(hb::Cluster& cluster);

  void on_protocol_event(const hb::ProtocolEvent& event);
  void on_channel_event(const sim::ChannelEvent& event);

  /// Settles pending deadlines at the end of a run: obligations whose
  /// deadline lies strictly before `horizon` and were never discharged
  /// become violations; later deadlines are undetermined (campaigns
  /// leave a settle margin before the horizon so this stays empty).
  void finish(Time horizon);

  const std::vector<Violation>& violations() const { return violations_; }

 private:
  void check_deadlines(Time now);
  void update_r1(Time now);
  bool coordinator_live() const { return coordinator_stopped_at_ == hb::kNever; }
  void stop_participant(int id, Time at);

  Config config_;
  MonitorBounds bounds_;
  Time coordinator_stopped_at_ = hb::kNever;
  std::vector<Time> stopped_at_;    ///< per participant; kNever = live
  std::vector<bool> registered_;    ///< coordinator-side membership estimate
  std::vector<Time> r3_deadline_;   ///< per participant; kNever = no obligation
  Time r1_deadline_ = hb::kNever;
  bool r1_fired_ = false;
  Time last_explanation_;
  std::vector<Violation> violations_;
};

}  // namespace ahb::chaos
