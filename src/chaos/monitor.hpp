// Deprecated forwarding header: the runtime requirement monitors moved
// to the standalone runtime-verification library (src/rv), where they
// attach to either heartbeat engine through the rv::EventSink
// interface. Include rv/monitor.hpp directly in new code; the aliases
// below keep existing chaos-layer callers compiling unchanged.
#pragma once

#include "rv/monitor.hpp"

namespace ahb::chaos {

using Time = sim::Time;

using MonitorBounds = rv::MonitorBounds;
using Violation = rv::Violation;
using RequirementMonitor = rv::RequirementMonitor;

}  // namespace ahb::chaos
