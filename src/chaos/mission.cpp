#include "chaos/mission.hpp"

#include <algorithm>

#include "chaos/monitor.hpp"
#include "rv/suspicion.hpp"
#include "util/contracts.hpp"

namespace ahb::chaos {

namespace {

void fnv_u64(std::uint64_t& hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xFF;
    hash *= 1099511628211ULL;
  }
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

/// The checkpoint digest: every protocol-visible piece of cluster state
/// plus the network counters. Two executions of the same spec agree on
/// this at every instant, whatever chunking drove them there.
std::uint64_t state_digest(const hb::Cluster& cluster) {
  std::uint64_t hash = kFnvOffset;
  fnv_u64(hash, static_cast<std::uint64_t>(
                    static_cast<int>(cluster.coordinator().status())));
  fnv_u64(hash, static_cast<std::uint64_t>(cluster.coordinator().current_wait()));
  fnv_u64(hash,
          static_cast<std::uint64_t>(cluster.coordinator().inactivated_at()));
  for (int i = 1; i <= cluster.participant_count(); ++i) {
    const auto& p = cluster.participant(i);
    fnv_u64(hash, static_cast<std::uint64_t>(static_cast<int>(p.status())));
    fnv_u64(hash, static_cast<std::uint64_t>(p.joined()));
    fnv_u64(hash, static_cast<std::uint64_t>(p.inactivated_at()));
  }
  const auto& net = cluster.network_stats();
  fnv_u64(hash, net.sent);
  fnv_u64(hash, net.delivered);
  fnv_u64(hash, net.lost);
  fnv_u64(hash, net.duplicated);
  fnv_u64(hash, net.corrupted);
  fnv_u64(hash, net.rejected);
  return hash;
}

/// Copies at most `room` violations and returns how many there were.
std::uint64_t take_capped(std::vector<Violation>& out,
                          const std::vector<Violation>& in, std::size_t cap) {
  const std::size_t room = cap > out.size() ? cap - out.size() : 0;
  out.insert(out.end(), in.begin(),
             in.begin() + static_cast<std::ptrdiff_t>(
                              std::min(room, in.size())));
  return in.size();
}

}  // namespace

MissionResult run_mission(const MissionOptions& options) {
  MissionResult result;
  result.spec = options.spec;
  if (options.generate) {
    result.spec.schedule = generate_schedule(options.spec, options.profile);
  }
  const RunSpec& spec = result.spec;
  AHB_EXPECTS(spec.participants >= 1);
  AHB_EXPECTS(spec.timing().valid());
  AHB_EXPECTS(spec.horizon > 0);
  result.out_of_spec = spec.out_of_spec();

  hb::Cluster cluster(cluster_config_for(spec));

  const MonitorBounds bounds =
      MonitorBounds::defaults(spec.timing(), spec.variant, spec.fixed_bounds);
  RequirementMonitor::Config monitor_config{spec.variant, spec.timing(),
                                            spec.fixed_bounds,
                                            spec.participants};
  RequirementMonitor monitor(monitor_config, bounds);
  rv::SuspicionMonitor::Config suspicion_config;
  suspicion_config.variant = spec.variant;
  suspicion_config.timing = spec.timing();
  suspicion_config.participants = spec.participants;
  rv::SuspicionMonitor suspicion(suspicion_config, bounds);
  rv::AvailabilityStats availability(spec.participants);
  rv::IntegrityMonitor::Config integrity_config;
  integrity_config.prune_window = options.integrity_prune_window > 0
                                      ? options.integrity_prune_window
                                      : 8 * spec.tmax;
  integrity_config.max_recorded = options.max_recorded_violations;
  rv::IntegrityMonitor integrity(integrity_config);

  monitor.attach(cluster);
  suspicion.attach(cluster);
  cluster.add_sink(&availability);
  integrity.attach(cluster);

  std::vector<std::unique_ptr<rv::pltl::FormulaMonitor>> formula_monitors;
  {
    rv::pltl::BindParams params{spec.variant, spec.timing(), spec.fixed_bounds,
                                spec.participants, 2};
    for (const auto& formula_spec : options.formulas) {
      auto made = rv::pltl::make_monitor(formula_spec, params);
      AHB_EXPECTS(made.ok());
      made.monitor->set_max_recorded(options.max_recorded_violations);
      cluster.add_sink(made.monitor.get());
      formula_monitors.push_back(std::move(made.monitor));
    }
  }

  schedule_actions(cluster, spec);
  cluster.start();

  // The chunked drive: run_until is re-entrant on the same cluster, so
  // the mission streams through in checkpoint_interval slices with
  // nothing buffered between them — memory stays flat at any horizon.
  const Time interval = std::max<Time>(options.checkpoint_interval, 1);
  std::uint64_t fingerprint = kFnvOffset;
  for (Time t = interval; ; t += interval) {
    const Time stop = std::min(t, spec.horizon);
    cluster.run_until(stop);
    MissionCheckpoint checkpoint;
    checkpoint.at = stop;
    checkpoint.state = state_digest(cluster);
    fnv_u64(fingerprint, static_cast<std::uint64_t>(checkpoint.at));
    fnv_u64(fingerprint, checkpoint.state);
    result.checkpoints.push_back(checkpoint);
    if (stop == spec.horizon) break;
  }
  cluster.sinks().finish(spec.horizon);
  result.fingerprint = fingerprint;

  const std::size_t cap = options.max_recorded_violations;
  result.violations_total +=
      take_capped(result.violations, monitor.violations(), cap);
  result.violations_total +=
      take_capped(result.violations, suspicion.violations(), cap);
  result.violations_total +=
      take_capped(result.violations, integrity.violations(), cap);
  result.violations_total +=
      integrity.summary().violations - integrity.violations().size();
  for (const auto& formula_monitor : formula_monitors) {
    take_capped(result.formula_violations, formula_monitor->violations(), cap);
    result.formula_violations_total += formula_monitor->violations_total();
  }
  result.availability = availability.summary();
  result.integrity = integrity.summary();
  result.net_stats = cluster.network_stats();
  result.all_inactive = cluster.all_inactive();
  result.integrity_high_water = integrity.max_tracked();
  result.events_seen = monitor.events_seen() + integrity.events_seen();
  return result;
}

}  // namespace ahb::chaos
