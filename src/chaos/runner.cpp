#include "chaos/runner.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "rv/suspicion.hpp"
#include "util/contracts.hpp"

namespace ahb::chaos {

namespace {

const char* kind_name(hb::ProtocolEvent::Kind kind) {
  using Kind = hb::ProtocolEvent::Kind;
  switch (kind) {
    case Kind::CoordinatorBeat: return "beat";
    case Kind::CoordinatorReceivedBeat: return "c-recv-beat";
    case Kind::CoordinatorReceivedLeave: return "c-recv-leave";
    case Kind::CoordinatorInactivated: return "c-inactive";
    case Kind::CoordinatorCrashed: return "c-crash";
    case Kind::ParticipantReceivedBeat: return "p-recv-beat";
    case Kind::ParticipantReplied: return "reply";
    case Kind::ParticipantJoinBeat: return "join-beat";
    case Kind::ParticipantLeft: return "leave";
    case Kind::ParticipantInactivated: return "p-inactive";
    case Kind::ParticipantCrashed: return "p-crash";
    case Kind::ParticipantRejoined: return "rejoin";
  }
  return "?";
}

bool valid_node(const RunSpec& spec, int id) {
  return id >= 0 && id <= spec.participants;
}

bool valid_participant(const RunSpec& spec, int id) {
  return id >= 1 && id <= spec.participants;
}

void apply_link_change(hb::Cluster& cluster, const FaultAction& action) {
  auto& net = cluster.network();
  auto params = net.link_params(action.a, action.b);
  switch (action.kind) {
    case FaultKind::SetLoss:
      params.loss_probability = std::clamp(action.p, 0.0, 1.0);
      break;
    case FaultKind::SetBurst:
      params.burst.p_enter = std::clamp(action.p, 0.0, 1.0);
      params.burst.p_exit = std::clamp(action.q, 0.0, 1.0);
      params.burst.loss = std::clamp(action.r, 0.0, 1.0);
      break;
    case FaultKind::SetDelay:
      params.min_delay = std::max<Time>(action.d1, 0);
      params.max_delay = std::max(params.min_delay, action.d2);
      break;
    case FaultKind::SetDuplication:
      params.duplicate_probability = std::clamp(action.p, 0.0, 1.0);
      break;
    case FaultKind::CorruptPayload:
      params.corrupt_probability = std::clamp(action.p, 0.0, 1.0);
      break;
    default:
      return;
  }
  net.set_link(action.a, action.b, params);
}

/// One directed half of an asymmetric storm: burst (p,q,r) on the
/// uplink (member -> coordinator, d2 == 0) or downlink of every member
/// in [lo, hi], reverting to burst-off when the storm ends.
void apply_storm(hb::Cluster& cluster, const FaultAction& action, int lo,
                 int hi, bool start) {
  auto& net = cluster.network();
  for (int i = lo; i <= hi; ++i) {
    const int from = action.d2 == 0 ? i : 0;
    const int to = action.d2 == 0 ? 0 : i;
    auto params = net.link_params(from, to);
    params.burst.p_enter = start ? std::clamp(action.p, 0.0, 1.0) : 0.0;
    params.burst.p_exit = start ? std::clamp(action.q, 0.0, 1.0) : 1.0;
    params.burst.loss = start ? std::clamp(action.r, 0.0, 1.0) : 0.0;
    net.set_link(from, to, params);
  }
}

/// Schedules one action. Malformed operands (node ids outside the
/// cluster, non-positive drift rates) make the action a no-op rather
/// than an abort: shrunk and hand-edited schedules must stay safe to
/// replay.
void schedule_action(hb::Cluster& cluster, const RunSpec& spec,
                     const FaultAction& action) {
  auto& sim = cluster.simulator();
  switch (action.kind) {
    case FaultKind::SetLoss:
    case FaultKind::SetBurst:
    case FaultKind::SetDelay:
    case FaultKind::SetDuplication:
    case FaultKind::CorruptPayload:
      if (!valid_node(spec, action.a) || !valid_node(spec, action.b)) return;
      sim.at(action.at,
             [&cluster, action] { apply_link_change(cluster, action); });
      break;
    case FaultKind::LinkDown:
    case FaultKind::LinkUp:
      if (!valid_node(spec, action.a) || !valid_node(spec, action.b)) return;
      sim.at(action.at, [&cluster, action] {
        cluster.network().set_link_up(action.a, action.b,
                                      action.kind == FaultKind::LinkUp);
      });
      break;
    case FaultKind::Partition:
    case FaultKind::Heal: {
      const int lo = std::max(action.a, 1);
      const int hi = std::min(action.b, spec.participants);
      if (lo > hi) return;
      sim.at(action.at, [&cluster, action, lo, hi] {
        const bool up = action.kind == FaultKind::Heal;
        for (int i = lo; i <= hi; ++i) {
          cluster.network().set_link_up(0, i, up);
          cluster.network().set_link_up(i, 0, up);
        }
      });
      break;
    }
    case FaultKind::CrashParticipant:
      if (!valid_participant(spec, action.a)) return;
      cluster.crash_participant_at(action.a, action.at);
      break;
    case FaultKind::CrashCoordinator:
      cluster.crash_coordinator_at(action.at);
      break;
    case FaultKind::Leave:
      if (!valid_participant(spec, action.a)) return;
      cluster.leave_at(action.a, action.at);
      break;
    case FaultKind::Rejoin:
      if (!valid_participant(spec, action.a)) return;
      cluster.rejoin_at(action.a, action.at);
      break;
    case FaultKind::SetDrift:
      if (!valid_node(spec, action.a) || action.d1 <= 0 || action.d2 <= 0) {
        return;
      }
      sim.at(action.at, [&cluster, action] {
        cluster.set_drift(action.a, action.d1, action.d2);
      });
      break;
    case FaultKind::SetClockOffset:
      if (!valid_node(spec, action.a) || action.d1 == 0) return;
      cluster.corrupt_clock_at(action.a, action.at, action.d1);
      break;
    case FaultKind::WrapClock:
      if (!valid_node(spec, action.a) || action.d1 < 0) return;
      cluster.wrap_clock_at(action.a, action.at,
                            static_cast<std::uint64_t>(action.d1));
      break;
    case FaultKind::AsymmetricStorm: {
      const int lo = std::max(action.a, 1);
      const int hi = std::min(action.b, spec.participants);
      if (lo > hi || action.d1 <= 0) return;
      sim.at(action.at, [&cluster, action, lo, hi] {
        apply_storm(cluster, action, lo, hi, true);
      });
      sim.at(action.at + action.d1, [&cluster, action, lo, hi] {
        apply_storm(cluster, action, lo, hi, false);
      });
      break;
    }
    case FaultKind::ChurnStorm: {
      const int lo = std::max(action.a, 1);
      const int hi = std::min(action.b, spec.participants);
      if (lo > hi || action.d1 < 0 || action.d2 < 0) return;
      for (int i = lo; i <= hi; ++i) {
        const Time leave = action.at + static_cast<Time>(i - lo) * action.d1;
        cluster.leave_at(i, leave);
        if (action.d2 > 0) cluster.rejoin_at(i, leave + action.d2);
      }
      break;
    }
  }
}

}  // namespace

void schedule_actions(hb::Cluster& cluster, const RunSpec& spec) {
  for (const auto& action : spec.schedule.actions) {
    schedule_action(cluster, spec, action);
  }
}

hb::ClusterConfig cluster_config_for(const RunSpec& spec) {
  hb::ClusterConfig config;
  config.protocol = hb::Config{spec.tmin, spec.tmax, spec.variant,
                               spec.fixed_bounds};
  config.participants = spec.participants;
  config.seed = spec.seed;
  config.receive_priority = spec.receive_priority;
  config.wire_validation = spec.wire_validation;
  config.clock_guard = spec.clock_guard;
  return config;
}

RunResult run_chaos(const RunSpec& spec, const MonitorBounds* bounds,
                    bool record_trace, bool record_events,
                    const std::vector<rv::pltl::FormulaSpec>* formulas) {
  AHB_EXPECTS(spec.participants >= 1);
  AHB_EXPECTS(spec.timing().valid());
  AHB_EXPECTS(spec.horizon > 0);

  hb::Cluster cluster(cluster_config_for(spec));

  const MonitorBounds monitor_bounds =
      bounds != nullptr ? *bounds
                        : MonitorBounds::defaults(spec.timing(), spec.variant,
                                                  spec.fixed_bounds);
  RequirementMonitor::Config monitor_config{spec.variant, spec.timing(),
                                            spec.fixed_bounds,
                                            spec.participants};
  RequirementMonitor monitor(monitor_config, monitor_bounds);
  rv::SuspicionMonitor::Config suspicion_config;
  suspicion_config.variant = spec.variant;
  suspicion_config.timing = spec.timing();
  suspicion_config.participants = spec.participants;
  rv::SuspicionMonitor suspicion(suspicion_config, monitor_bounds);
  rv::AvailabilityStats availability(spec.participants);
  rv::IntegrityMonitor integrity;

  // The whole monitor stack rides the sink chain; the trace/event
  // recorder is the legacy callback adapter, which the cluster
  // registered first.
  monitor.attach(cluster);
  suspicion.attach(cluster);
  cluster.add_sink(&availability);
  integrity.attach(cluster);

  // Compiled formula monitors ride the same chain; they read the event
  // stream without touching it, so traces (and campaign fingerprints)
  // are identical with or without them.
  std::vector<std::unique_ptr<rv::pltl::FormulaMonitor>> formula_monitors;
  if (formulas != nullptr) {
    rv::pltl::BindParams params{spec.variant, spec.timing(), spec.fixed_bounds,
                                spec.participants, 2};
    for (const auto& formula_spec : *formulas) {
      auto made = rv::pltl::make_monitor(formula_spec, params);
      if (!made.ok()) {
        std::fprintf(stderr, "run_chaos: %s\n", made.error.c_str());
      }
      AHB_EXPECTS(made.ok());
      cluster.add_sink(made.monitor.get());
      formula_monitors.push_back(std::move(made.monitor));
    }
  }

  RunResult result;
  result.out_of_spec = spec.out_of_spec();

  if (record_trace || record_events) {
    cluster.on_protocol_event([&](const hb::ProtocolEvent& event) {
      if (record_events) result.events.push_back(event);
      if (record_trace) {
        char line[96];
        std::snprintf(line, sizeof line, "%" PRId64 " %s %d %" PRIu64 "\n",
                      event.at, kind_name(event.kind), event.node,
                      event.msg_id);
        result.trace += line;
      }
    });
  }

  schedule_actions(cluster, spec);

  cluster.start();
  cluster.run_until(spec.horizon);
  cluster.sinks().finish(spec.horizon);

  result.violations = monitor.violations();
  result.violations.insert(result.violations.end(),
                           suspicion.violations().begin(),
                           suspicion.violations().end());
  result.violations.insert(result.violations.end(),
                           integrity.violations().begin(),
                           integrity.violations().end());
  for (const auto& formula_monitor : formula_monitors) {
    result.formula_violations.insert(result.formula_violations.end(),
                                     formula_monitor->violations().begin(),
                                     formula_monitor->violations().end());
  }
  result.availability = availability.summary();
  result.integrity = integrity.summary();
  result.net_stats = cluster.network_stats();
  result.all_inactive = cluster.all_inactive();
  return result;
}

}  // namespace ahb::chaos
