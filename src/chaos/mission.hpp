// Long-mission chaos campaigns: one run, tens of millions of ticks,
// streamed through the bounded-memory monitor stack in checkpointed
// chunks.
//
// A mission is still just a RunSpec — same schedule format, same
// replayability — but executed with the infrastructure a 10^7-tick run
// needs and a short campaign doesn't: a multi-phase generated schedule
// (setup -> storm -> recovery cycles, chaos/campaign.hpp's
// ScheduleProfile), periodic checkpoint fingerprints over the cluster's
// full protocol state (the thread- and chunk-size-invariant determinism
// witness), a time-pruned IntegrityMonitor, and capped violation
// recording so an out-of-spec mission reports counts rather than an
// unbounded list.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/runner.hpp"

namespace ahb::chaos {

struct MissionOptions {
  /// The run header. When `generate` is set, spec.schedule is replaced
  /// by generate_schedule(spec, profile) — the result lands in
  /// MissionResult::spec, so every mission stays spec-replayable.
  RunSpec spec;
  ScheduleProfile profile;
  bool generate = true;
  /// Checkpoint cadence. The fingerprint stream is invariant under the
  /// cadence a replay uses *between* matching instants, so two missions
  /// agree wherever their checkpoint instants coincide.
  Time checkpoint_interval = 1'000'000;
  /// Violations stored verbatim per monitor; the rest only count.
  std::size_t max_recorded_violations = 16;
  /// IntegrityMonitor prune window; 0 derives a safe default (8 tmax,
  /// far past any delivery or duplicate of a corrupted send).
  Time integrity_prune_window = 0;
  /// pLTL formulas attached next to the hand-written monitors. A
  /// formula monitor's memory is O(subformulas) regardless of horizon,
  /// so formulas are mission-safe; their verdicts land in
  /// MissionResult::formula_violations (recorded up to
  /// max_recorded_violations) and never affect the checkpoint
  /// fingerprints.
  std::vector<rv::pltl::FormulaSpec> formulas;
};

struct MissionCheckpoint {
  Time at = 0;
  /// FNV-1a over the cluster's protocol state and network counters.
  std::uint64_t state = 0;
};

struct MissionResult {
  /// The fully-resolved, serializable spec the mission executed.
  RunSpec spec;
  /// First max_recorded_violations violations, in detection order per
  /// monitor (R1–R3, then suspicion, then integrity).
  std::vector<Violation> violations;
  std::uint64_t violations_total = 0;
  /// From MissionOptions::formulas, kept apart from the hand-written
  /// monitors' verdicts (capped like `violations`; the total counts).
  std::vector<Violation> formula_violations;
  std::uint64_t formula_violations_total = 0;
  rv::AvailabilitySummary availability;
  rv::IntegritySummary integrity;
  sim::NetworkStats net_stats;
  bool out_of_spec = false;
  bool all_inactive = false;
  std::vector<MissionCheckpoint> checkpoints;
  /// FNV-1a fold of the checkpoint stream — the mission fingerprint.
  std::uint64_t fingerprint = 0;
  /// IntegrityMonitor's tracked-set high water (bounded-memory check).
  std::size_t integrity_high_water = 0;
  std::uint64_t events_seen = 0;
};

MissionResult run_mission(const MissionOptions& options);

}  // namespace ahb::chaos
