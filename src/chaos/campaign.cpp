#include "chaos/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <string_view>
#include <thread>

#include "proto/timing.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace ahb::chaos {

namespace {

constexpr Variant kAllVariants[] = {
    Variant::Binary,   Variant::RevisedBinary, Variant::TwoPhase,
    Variant::Static,   Variant::Expanding,     Variant::Dynamic,
};

/// Timing shapes covering the interesting regimes: deep halving ladder,
/// shallow ladder, and tmin == tmax (where the join race and the
/// two-phase double-miss live).
constexpr proto::Timing kDefaultTimings[] = {{1, 16}, {2, 4}, {3, 3}};

Time settle_margin(const proto::Timing& timing, Variant variant,
                   bool fixed_bounds) {
  return proto::r1_detection_slack(timing, variant) +
         proto::r3_detection_slack(timing, variant, fixed_bounds) +
         2 * timing.tmax;
}

Time rnd_time(Rng& rng, Time lo, Time hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<Time>(rng.below(static_cast<std::uint64_t>(hi - lo) + 1));
}

/// All traffic flows over the coordinator star, so faults target a
/// directed link between node 0 and a random participant.
void pick_link(Rng& rng, int participants, int& from, int& to) {
  const int peer = 1 + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(participants)));
  if (rng.below(2) == 0) {
    from = 0;
    to = peer;
  } else {
    from = peer;
    to = 0;
  }
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void add_stats(sim::NetworkStats& total, const sim::NetworkStats& one) {
  total.sent += one.sent;
  total.delivered += one.delivered;
  total.lost += one.lost;
  total.blocked += one.blocked;
  total.duplicated += one.duplicated;
  total.reordered += one.reordered;
  total.out_of_spec_delay += one.out_of_spec_delay;
}

FaultAction out_of_spec_action(Rng& rng, const RunSpec& spec, Time lo,
                               Time hi) {
  FaultAction action;
  action.at = rnd_time(rng, lo, hi);
  if (rng.below(2) == 0) {
    // One-way delays whose round trip exceeds tmin.
    action.kind = FaultKind::SetDelay;
    pick_link(rng, spec.participants, action.a, action.b);
    action.d1 = 0;
    action.d2 = spec.tmin / 2 + 1 +
                static_cast<Time>(rng.below(
                    static_cast<std::uint64_t>(spec.tmin) + 1));
  } else {
    action.kind = FaultKind::SetDrift;
    action.a = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(spec.participants) + 1));
    constexpr std::int64_t kRates[][2] = {{1, 2}, {2, 1}, {2, 3}, {3, 2}};
    const auto& rate = kRates[rng.below(4)];
    action.d1 = rate[0];
    action.d2 = rate[1];
  }
  return action;
}

}  // namespace

Time campaign_horizon(const proto::Timing& timing, Variant variant,
                      bool fixed_bounds) {
  return 8 * timing.tmax + settle_margin(timing, variant, fixed_bounds);
}

FaultSchedule generate_schedule(const RunSpec& spec, bool out_of_spec_profile) {
  // The generator stream is independent of the simulation stream (which
  // Rng(spec.seed) drives inside the cluster) but fully determined by
  // the run header, so a schedule never needs to be stored to be
  // reproduced.
  std::uint64_t mix = spec.seed;
  mix = mix * 0x9e3779b97f4a7c15ULL +
        (static_cast<std::uint64_t>(spec.variant) + 1);
  mix ^= static_cast<std::uint64_t>(spec.tmin) << 40;
  mix ^= static_cast<std::uint64_t>(spec.tmax) << 20;
  if (out_of_spec_profile) mix ^= 0x5bd1e995U;
  Rng rng(mix);

  const Time settle =
      settle_margin(spec.timing(), spec.variant, spec.fixed_bounds);
  const Time active_end = std::max<Time>(spec.horizon - settle, 1);
  const bool leaves = proto::variant_leaves(spec.variant);

  FaultSchedule schedule;
  const int count = 1 + static_cast<int>(rng.below(4));
  for (int k = 0; k < count; ++k) {
    FaultAction action;
    action.at = rnd_time(rng, 1, active_end);
    const std::uint64_t roll = rng.below(100);
    if (roll < 20) {
      action.kind = FaultKind::SetLoss;
      pick_link(rng, spec.participants, action.a, action.b);
      action.p = rng.uniform01();
    } else if (roll < 35) {
      action.kind = FaultKind::SetBurst;
      pick_link(rng, spec.participants, action.a, action.b);
      action.p = 0.05 + 0.4 * rng.uniform01();   // p_enter
      action.q = 0.1 + 0.6 * rng.uniform01();    // p_exit
      action.r = 0.5 + 0.5 * rng.uniform01();    // burst loss
    } else if (roll < 45) {
      action.kind = FaultKind::SetDuplication;
      pick_link(rng, spec.participants, action.a, action.b);
      action.p = rng.uniform01();
    } else if (roll < 55) {
      action.kind = FaultKind::LinkDown;
      pick_link(rng, spec.participants, action.a, action.b);
      FaultAction up = action;
      up.kind = FaultKind::LinkUp;
      up.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 3 * spec.tmax),
                             active_end);
      schedule.actions.push_back(up);
    } else if (roll < 65) {
      action.kind = FaultKind::Partition;
      action.a = 1;
      action.b = 1 + static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(spec.participants)));
      FaultAction heal = action;
      heal.kind = FaultKind::Heal;
      heal.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 3 * spec.tmax),
                               active_end);
      schedule.actions.push_back(heal);
    } else if (roll < 80) {
      action.kind = FaultKind::CrashParticipant;
      action.a = 1 + static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(spec.participants)));
    } else if (roll < 88) {
      action.kind = FaultKind::CrashCoordinator;
    } else if (roll < 94 && leaves) {
      action.kind = FaultKind::Leave;
      action.a = 1 + static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(spec.participants)));
      if (rng.below(2) == 0) {
        FaultAction rejoin = action;
        rejoin.kind = FaultKind::Rejoin;
        rejoin.at = std::min<Time>(
            action.at + 2 * spec.tmin + 1 + rnd_time(rng, 0, 3 * spec.tmax),
            active_end);
        schedule.actions.push_back(rejoin);
      }
    } else if (roll < 94) {
      // Non-leaving variant: spend the leave slot on another crash.
      action.kind = FaultKind::CrashParticipant;
      action.a = 1 + static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(spec.participants)));
    } else {
      // In-spec delay: one-way bound stays within tmin/2.
      action.kind = FaultKind::SetDelay;
      pick_link(rng, spec.participants, action.a, action.b);
      action.d1 = 0;
      action.d2 = static_cast<Time>(rng.below(
          static_cast<std::uint64_t>(spec.tmin / 2) + 1));
    }
    schedule.actions.push_back(action);
  }

  if (out_of_spec_profile && !schedule.out_of_spec(spec.timing())) {
    schedule.actions.push_back(out_of_spec_action(rng, spec, 1, active_end));
  }

  std::stable_sort(schedule.actions.begin(), schedule.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

RunSpec shrink_run(const RunSpec& spec, const MonitorBounds* bounds) {
  const RunResult full = run_chaos(spec, bounds);
  if (full.violations.empty()) return spec;
  const int requirement = full.violations.front().requirement;
  const int node = full.violations.front().node;
  const auto reproduces = [&](const std::vector<FaultAction>& actions) {
    RunSpec candidate = spec;
    candidate.schedule.actions = actions;
    const RunResult result = run_chaos(candidate, bounds);
    return std::any_of(result.violations.begin(), result.violations.end(),
                       [&](const Violation& v) {
                         return v.requirement == requirement && v.node == node;
                       });
  };

  std::vector<FaultAction> actions = spec.schedule.actions;
  if (reproduces({})) {
    actions.clear();
  } else {
    // Zeller's ddmin over the action list: try dropping ever-finer
    // chunks; the result is 1-minimal (no single action can go).
    std::size_t granularity = 2;
    while (actions.size() >= 2) {
      const std::size_t chunk =
          (actions.size() + granularity - 1) / granularity;
      bool reduced = false;
      for (std::size_t start = 0; start < actions.size() && !reduced;
           start += chunk) {
        std::vector<FaultAction> complement;
        complement.reserve(actions.size());
        for (std::size_t i = 0; i < actions.size(); ++i) {
          if (i < start || i >= start + chunk) complement.push_back(actions[i]);
        }
        if (!complement.empty() && reproduces(complement)) {
          actions = std::move(complement);
          granularity = std::max<std::size_t>(granularity - 1, 2);
          reduced = true;
        }
      }
      if (!reduced) {
        if (granularity >= actions.size()) break;
        granularity = std::min(actions.size(), granularity * 2);
      }
    }
  }

  RunSpec out = spec;
  out.schedule.actions = std::move(actions);
  return out;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  AHB_EXPECTS(options.participants >= 1);
  AHB_EXPECTS(options.runs_per_config >= 1);

  const std::vector<Variant> variants =
      options.variants.empty()
          ? std::vector<Variant>(std::begin(kAllVariants),
                                 std::end(kAllVariants))
          : options.variants;
  const std::vector<proto::Timing> timings =
      options.timings.empty()
          ? std::vector<proto::Timing>(std::begin(kDefaultTimings),
                                       std::end(kDefaultTimings))
          : options.timings;

  std::vector<RunSpec> specs;
  for (const Variant variant : variants) {
    for (const proto::Timing& timing : timings) {
      for (int run = 0; run < options.runs_per_config; ++run) {
        RunSpec spec;
        spec.variant = variant;
        spec.tmin = timing.tmin;
        spec.tmax = timing.tmax;
        spec.fixed_bounds = options.fixed_bounds;
        spec.receive_priority = options.receive_priority;
        spec.participants =
            proto::variant_is_multi(variant) ? options.participants : 1;
        spec.seed = options.base_seed + static_cast<std::uint64_t>(run);
        spec.horizon =
            campaign_horizon(timing, variant, options.fixed_bounds);
        spec.schedule = generate_schedule(spec, options.out_of_spec);
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto bounds_for = [&options](const RunSpec& spec) {
    MonitorBounds bounds = MonitorBounds::defaults(spec.timing(), spec.variant,
                                                   spec.fixed_bounds);
    bounds.r1_slack += options.extra_r1_slack;
    bounds.r2_window += options.extra_r2_window;
    bounds.r3_slack += options.extra_r3_slack;
    return bounds;
  };

  struct Slot {
    RunResult result;
    std::uint64_t hash = 0;
  };
  std::vector<Slot> slots(specs.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < specs.size();
         i = next.fetch_add(1)) {
      const MonitorBounds bounds = bounds_for(specs[i]);
      slots[i].result = run_chaos(specs[i], &bounds, options.fingerprint);
      if (options.fingerprint) {
        slots[i].hash =
            fnv1a(serialize_run(specs[i]) + slots[i].result.trace);
        slots[i].result.trace.clear();
      }
    }
  };

  const unsigned thread_count = std::max(1u, options.threads);
  if (thread_count == 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }

  // Aggregation is sequential and in run order, so the result is
  // invariant under the worker-thread count.
  CampaignResult result;
  std::uint64_t fingerprint = 1469598103934665603ULL;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ++result.runs;
    add_stats(result.totals, slots[i].result.net_stats);
    result.availability += slots[i].result.availability;
    fingerprint = (fingerprint ^ slots[i].hash) * 1099511628211ULL;
    if (slots[i].result.violations.empty()) continue;
    ++result.violating_runs;
    ViolatingRun violating;
    violating.spec = specs[i];
    violating.violations = slots[i].result.violations;
    violating.shrunk = specs[i];
    if (options.shrink) {
      const MonitorBounds bounds = bounds_for(specs[i]);
      violating.shrunk = shrink_run(specs[i], &bounds);
    }
    violating.artifact = serialize_run(violating.shrunk);
    result.violating.push_back(std::move(violating));
  }
  result.fingerprint = fingerprint;
  return result;
}

}  // namespace ahb::chaos
