#include "chaos/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <string_view>
#include <thread>

#include "proto/timing.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace ahb::chaos {

namespace {

constexpr Variant kAllVariants[] = {
    Variant::Binary,   Variant::RevisedBinary, Variant::TwoPhase,
    Variant::Static,   Variant::Expanding,     Variant::Dynamic,
};

/// Timing shapes covering the interesting regimes: deep halving ladder,
/// shallow ladder, and tmin == tmax (where the join race and the
/// two-phase double-miss live).
constexpr proto::Timing kDefaultTimings[] = {{1, 16}, {2, 4}, {3, 3}};

Time settle_margin(const proto::Timing& timing, Variant variant,
                   bool fixed_bounds) {
  return proto::r1_detection_slack(timing, variant) +
         proto::r3_detection_slack(timing, variant, fixed_bounds) +
         2 * timing.tmax;
}

Time rnd_time(Rng& rng, Time lo, Time hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<Time>(rng.below(static_cast<std::uint64_t>(hi - lo) + 1));
}

/// All traffic flows over the coordinator star, so faults target a
/// directed link between node 0 and a random participant.
void pick_link(Rng& rng, int participants, int& from, int& to) {
  const int peer = 1 + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(participants)));
  if (rng.below(2) == 0) {
    from = 0;
    to = peer;
  } else {
    from = peer;
    to = 0;
  }
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void add_stats(sim::NetworkStats& total, const sim::NetworkStats& one) {
  total.sent += one.sent;
  total.delivered += one.delivered;
  total.lost += one.lost;
  total.blocked += one.blocked;
  total.duplicated += one.duplicated;
  total.reordered += one.reordered;
  total.out_of_spec_delay += one.out_of_spec_delay;
  total.corrupted += one.corrupted;
  total.rejected += one.rejected;
}

FaultAction out_of_spec_action(Rng& rng, const RunSpec& spec, Time lo,
                               Time hi) {
  FaultAction action;
  action.at = rnd_time(rng, lo, hi);
  if (rng.below(2) == 0) {
    // One-way delays whose round trip exceeds tmin.
    action.kind = FaultKind::SetDelay;
    pick_link(rng, spec.participants, action.a, action.b);
    action.d1 = 0;
    action.d2 = spec.tmin / 2 + 1 +
                static_cast<Time>(rng.below(
                    static_cast<std::uint64_t>(spec.tmin) + 1));
  } else {
    action.kind = FaultKind::SetDrift;
    action.a = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(spec.participants) + 1));
    constexpr std::int64_t kRates[][2] = {{1, 2}, {2, 1}, {2, 3}, {3, 2}};
    const auto& rate = kRates[rng.below(4)];
    action.d1 = rate[0];
    action.d2 = rate[1];
  }
  return action;
}

/// One action of the legacy mixed profile, drawn into [lo, hi]. The
/// draw sequence is exactly the pre-refactor generator body, so the
/// bool-profile overload of generate_schedule keeps every historical
/// seed's schedule byte for byte.
void push_mixed_action(Rng& rng, const RunSpec& spec, Time lo, Time hi,
                       bool leaves, FaultSchedule& schedule) {
  FaultAction action;
  action.at = rnd_time(rng, lo, hi);
  const std::uint64_t roll = rng.below(100);
  if (roll < 20) {
    action.kind = FaultKind::SetLoss;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = rng.uniform01();
  } else if (roll < 35) {
    action.kind = FaultKind::SetBurst;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = 0.05 + 0.4 * rng.uniform01();   // p_enter
    action.q = 0.1 + 0.6 * rng.uniform01();    // p_exit
    action.r = 0.5 + 0.5 * rng.uniform01();    // burst loss
  } else if (roll < 45) {
    action.kind = FaultKind::SetDuplication;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = rng.uniform01();
  } else if (roll < 55) {
    action.kind = FaultKind::LinkDown;
    pick_link(rng, spec.participants, action.a, action.b);
    FaultAction up = action;
    up.kind = FaultKind::LinkUp;
    up.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 3 * spec.tmax),
                           hi);
    schedule.actions.push_back(up);
  } else if (roll < 65) {
    action.kind = FaultKind::Partition;
    action.a = 1;
    action.b = 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(spec.participants)));
    FaultAction heal = action;
    heal.kind = FaultKind::Heal;
    heal.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 3 * spec.tmax),
                             hi);
    schedule.actions.push_back(heal);
  } else if (roll < 80) {
    action.kind = FaultKind::CrashParticipant;
    action.a = 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(spec.participants)));
  } else if (roll < 88) {
    action.kind = FaultKind::CrashCoordinator;
  } else if (roll < 94 && leaves) {
    action.kind = FaultKind::Leave;
    action.a = 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(spec.participants)));
    if (rng.below(2) == 0) {
      FaultAction rejoin = action;
      rejoin.kind = FaultKind::Rejoin;
      rejoin.at = std::min<Time>(
          action.at + 2 * spec.tmin + 1 + rnd_time(rng, 0, 3 * spec.tmax),
          hi);
      schedule.actions.push_back(rejoin);
    }
  } else if (roll < 94) {
    // Non-leaving variant: spend the leave slot on another crash.
    action.kind = FaultKind::CrashParticipant;
    action.a = 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(spec.participants)));
  } else {
    // In-spec delay: one-way bound stays within tmin/2.
    action.kind = FaultKind::SetDelay;
    pick_link(rng, spec.participants, action.a, action.b);
    action.d1 = 0;
    action.d2 = static_cast<Time>(rng.below(
        static_cast<std::uint64_t>(spec.tmin / 2) + 1));
  }
  schedule.actions.push_back(action);
}

/// One action of the setup mix: gentle channel-parameter weather only,
/// so a multi-cycle mission's cluster is still fully alive when the
/// storm hits (the legacy mixed profile's crashes are permanent and
/// would leave later cycles running on a dead cluster).
void push_setup_action(Rng& rng, const RunSpec& spec, Time lo, Time hi,
                       FaultSchedule& schedule) {
  FaultAction action;
  action.at = rnd_time(rng, lo, hi);
  const std::uint64_t roll = rng.below(4);
  if (roll == 0) {
    // Sustained loss of any rate eventually exhausts the acceleration
    // ladder, so even gentle loss auto-reverts after a few rounds.
    action.kind = FaultKind::SetLoss;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = 0.3 * rng.uniform01();
    FaultAction reset = action;
    reset.p = 0.0;
    reset.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 4 * spec.tmax),
                              hi);
    schedule.actions.push_back(reset);
  } else if (roll == 1) {
    action.kind = FaultKind::SetDuplication;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = rng.uniform01();
  } else if (roll == 2) {
    action.kind = FaultKind::SetBurst;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = 0.05 + 0.2 * rng.uniform01();
    action.q = 0.3 + 0.5 * rng.uniform01();
    action.r = 0.5 + 0.4 * rng.uniform01();
    FaultAction reset = action;
    reset.p = 0.0;
    reset.q = 1.0;
    reset.r = 0.0;
    reset.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 4 * spec.tmax),
                              hi);
    schedule.actions.push_back(reset);
  } else {
    action.kind = FaultKind::SetDelay;
    pick_link(rng, spec.participants, action.a, action.b);
    action.d1 = 0;
    action.d2 = static_cast<Time>(rng.below(
        static_cast<std::uint64_t>(spec.tmin / 2) + 1));
  }
  schedule.actions.push_back(action);
}

/// One action of the storm mix: survivable heavy weather (no permanent
/// crashes — long missions must outlive every cycle).
void push_storm_action(Rng& rng, const RunSpec& spec,
                       const ScheduleProfile& profile, Time lo, Time hi,
                       FaultSchedule& schedule) {
  const bool leaves = proto::variant_leaves(spec.variant);
  FaultAction action;
  action.at = rnd_time(rng, lo, hi);
  const std::uint64_t roll = rng.below(100);
  if (roll < 25) {
    // Asymmetric burst storm on one direction of the whole star; the
    // action self-reverts at at + d1, always inside the phase.
    // Kept short: the accelerated ladder inactivates after a couple of
    // silent rounds, so a storm much longer than tmax is a death
    // sentence and the rest of the mission would be dead air.
    action.kind = FaultKind::AsymmetricStorm;
    action.a = 1;
    action.b = spec.participants;
    action.p = 0.1 + 0.5 * rng.uniform01();  // p_enter
    action.q = 0.1 + 0.6 * rng.uniform01();  // p_exit
    action.r = 0.6 + 0.4 * rng.uniform01();  // burst loss
    action.d1 = 1 + rnd_time(rng, 0, 2 * spec.tmax);
    action.d2 = static_cast<Time>(rng.below(2));
  } else if (roll < 45 && leaves) {
    // Churn wave: a staggered leave front with rejoins trailing it.
    action.kind = FaultKind::ChurnStorm;
    action.a = 1;
    action.b = 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(spec.participants)));
    action.d1 = rnd_time(rng, 0, 2 * spec.tmax);
    action.d2 = 2 * spec.tmin + 1 + rnd_time(rng, 0, 3 * spec.tmax);
  } else if (roll < 45) {
    // Non-leaving variant: spend the churn slot on a loss spike
    // (auto-reverting, same lifetime logic as the storms).
    action.kind = FaultKind::SetLoss;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = 0.3 + 0.6 * rng.uniform01();
    FaultAction reset = action;
    reset.p = 0.0;
    reset.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 2 * spec.tmax),
                              hi);
    schedule.actions.push_back(reset);
  } else if (roll < 60) {
    action.kind = FaultKind::Partition;
    action.a = 1;
    action.b = 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(spec.participants)));
    FaultAction heal = action;
    heal.kind = FaultKind::Heal;
    heal.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 2 * spec.tmax),
                             hi);
    schedule.actions.push_back(heal);
  } else if (roll < 75) {
    action.kind = FaultKind::SetLoss;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = 0.3 + 0.6 * rng.uniform01();
    FaultAction reset = action;
    reset.p = 0.0;
    reset.at = std::min<Time>(action.at + 1 + rnd_time(rng, 0, 2 * spec.tmax),
                              hi);
    schedule.actions.push_back(reset);
  } else if (roll < 90 && profile.corrupt > 0) {
    action.kind = FaultKind::CorruptPayload;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = profile.corrupt;
  } else if (roll < 90) {
    action.kind = FaultKind::SetBurst;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = 0.05 + 0.4 * rng.uniform01();
    action.q = 0.1 + 0.6 * rng.uniform01();
    action.r = 0.5 + 0.5 * rng.uniform01();
  } else if (profile.clock_faults) {
    if (rng.below(2) == 0) {
      action.kind = FaultKind::SetClockOffset;
      action.a = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(spec.participants) + 1));
      action.d1 = 1 + rnd_time(rng, 0, 4 * spec.tmax);
      if (rng.below(2) == 0) action.d1 = -action.d1;
    } else {
      action.kind = FaultKind::WrapClock;
      action.a = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(spec.participants) + 1));
      action.d1 = rnd_time(rng, 0, 4 * spec.tmax);
    }
  } else {
    action.kind = FaultKind::SetDuplication;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = rng.uniform01();
  }
  schedule.actions.push_back(action);
}

/// Deterministic cleanup opening a recovery phase: heal the star and
/// reset loss, burst and corruption on every directed link, so an
/// in-spec mission is back on a quiet channel before the next cycle.
void push_recovery_cleanup(const RunSpec& spec, Time at,
                           FaultSchedule& schedule) {
  FaultAction heal;
  heal.kind = FaultKind::Heal;
  heal.at = at;
  heal.a = 1;
  heal.b = spec.participants;
  schedule.actions.push_back(heal);
  for (int i = 1; i <= spec.participants; ++i) {
    for (const bool up : {true, false}) {
      const int from = up ? i : 0;
      const int to = up ? 0 : i;
      FaultAction reset;
      reset.at = at;
      reset.a = from;
      reset.b = to;
      reset.kind = FaultKind::SetLoss;
      schedule.actions.push_back(reset);
      reset.kind = FaultKind::SetBurst;
      reset.q = 1.0;  // p_enter = loss = 0, exit immediately
      schedule.actions.push_back(reset);
      reset.q = 0.0;
      reset.kind = FaultKind::CorruptPayload;
      schedule.actions.push_back(reset);
    }
  }
}

/// One action of the gentle recovery mix.
void push_recovery_action(Rng& rng, const RunSpec& spec, Time lo, Time hi,
                          FaultSchedule& schedule) {
  FaultAction action;
  action.at = rnd_time(rng, lo, hi);
  if (rng.below(2) == 0) {
    action.kind = FaultKind::SetLoss;
    pick_link(rng, spec.participants, action.a, action.b);
    action.p = 0.1 * rng.uniform01();
  } else {
    action.kind = FaultKind::SetDelay;
    pick_link(rng, spec.participants, action.a, action.b);
    action.d1 = 0;
    action.d2 = static_cast<Time>(rng.below(
        static_cast<std::uint64_t>(spec.tmin / 2) + 1));
  }
  schedule.actions.push_back(action);
}

}  // namespace

Time campaign_horizon(const proto::Timing& timing, Variant variant,
                      bool fixed_bounds) {
  return 8 * timing.tmax + settle_margin(timing, variant, fixed_bounds);
}

FaultSchedule generate_schedule(const RunSpec& spec, bool out_of_spec_profile) {
  // The generator stream is independent of the simulation stream (which
  // Rng(spec.seed) drives inside the cluster) but fully determined by
  // the run header, so a schedule never needs to be stored to be
  // reproduced.
  std::uint64_t mix = spec.seed;
  mix = mix * 0x9e3779b97f4a7c15ULL +
        (static_cast<std::uint64_t>(spec.variant) + 1);
  mix ^= static_cast<std::uint64_t>(spec.tmin) << 40;
  mix ^= static_cast<std::uint64_t>(spec.tmax) << 20;
  if (out_of_spec_profile) mix ^= 0x5bd1e995U;
  Rng rng(mix);

  const Time settle =
      settle_margin(spec.timing(), spec.variant, spec.fixed_bounds);
  const Time active_end = std::max<Time>(spec.horizon - settle, 1);
  const bool leaves = proto::variant_leaves(spec.variant);

  FaultSchedule schedule;
  const int count = 1 + static_cast<int>(rng.below(4));
  for (int k = 0; k < count; ++k) {
    push_mixed_action(rng, spec, 1, active_end, leaves, schedule);
  }

  if (out_of_spec_profile && !schedule.out_of_spec(spec.timing())) {
    schedule.actions.push_back(out_of_spec_action(rng, spec, 1, active_end));
  }

  std::stable_sort(schedule.actions.begin(), schedule.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

FaultSchedule generate_schedule(const RunSpec& spec,
                                const ScheduleProfile& profile) {
  // A distinct stream salt keeps profile schedules independent of the
  // legacy generator's at the same seed.
  std::uint64_t mix = spec.seed;
  mix = mix * 0x9e3779b97f4a7c15ULL +
        (static_cast<std::uint64_t>(spec.variant) + 1);
  mix ^= static_cast<std::uint64_t>(spec.tmin) << 40;
  mix ^= static_cast<std::uint64_t>(spec.tmax) << 20;
  mix ^= 0x4d15510eULL;
  Rng rng(mix);

  const Time settle =
      settle_margin(spec.timing(), spec.variant, spec.fixed_bounds);
  const Time active_end = std::max<Time>(spec.horizon - settle, 1);
  const int cycles = std::max(profile.cycles, 1);
  const Time cycle_len = std::max<Time>(active_end / cycles, 4);

  FaultSchedule schedule;
  for (int c = 0; c < cycles; ++c) {
    const Time c0 = 1 + static_cast<Time>(c) * cycle_len;
    if (c0 > active_end) break;
    const Time setup_end = std::min(c0 + cycle_len / 4, active_end);
    const Time storm_end = std::min(c0 + (3 * cycle_len) / 4, active_end);
    const Time cycle_end = std::min(c0 + cycle_len - 1, active_end);

    // Armed corruption runs through setup and storm of every cycle
    // deterministically (the recovery cleanup disarms it), so even a
    // mission whose cluster dies in its first storm exercises the wire
    // validation while the protocol is still alive.
    if (profile.corrupt > 0) {
      for (int i = 1; i <= spec.participants; ++i) {
        for (const bool up : {true, false}) {
          FaultAction arm;
          arm.kind = FaultKind::CorruptPayload;
          arm.at = c0;
          arm.a = up ? i : 0;
          arm.b = up ? 0 : i;
          arm.p = profile.corrupt;
          schedule.actions.push_back(arm);
        }
      }
    }
    const int setup = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                              std::max(profile.setup_budget, 1))));
    for (int k = 0; k < setup; ++k) {
      push_setup_action(rng, spec, c0, setup_end, schedule);
    }
    const int storm = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                              std::max(profile.storm_budget, 1))));
    for (int k = 0; k < storm; ++k) {
      push_storm_action(rng, spec, profile, setup_end + 1, storm_end, schedule);
    }
    push_recovery_cleanup(spec, storm_end + 1, schedule);
    if (profile.recovery_budget > 0) {
      const int recovery =
          static_cast<int>(rng.below(
              static_cast<std::uint64_t>(profile.recovery_budget) + 1));
      for (int k = 0; k < recovery; ++k) {
        push_recovery_action(rng, spec, storm_end + 1, cycle_end, schedule);
      }
    }
  }

  if (profile.out_of_spec && !schedule.out_of_spec(spec.timing())) {
    schedule.actions.push_back(out_of_spec_action(rng, spec, 1, active_end));
  }

  std::stable_sort(schedule.actions.begin(), schedule.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

RunSpec shrink_run(const RunSpec& spec, const MonitorBounds* bounds) {
  const RunResult full = run_chaos(spec, bounds);
  if (full.violations.empty()) return spec;
  const int requirement = full.violations.front().requirement;
  const int node = full.violations.front().node;
  const auto reproduces = [&](const std::vector<FaultAction>& actions) {
    RunSpec candidate = spec;
    candidate.schedule.actions = actions;
    const RunResult result = run_chaos(candidate, bounds);
    return std::any_of(result.violations.begin(), result.violations.end(),
                       [&](const Violation& v) {
                         return v.requirement == requirement && v.node == node;
                       });
  };

  std::vector<FaultAction> actions = spec.schedule.actions;
  if (reproduces({})) {
    actions.clear();
  } else {
    // Zeller's ddmin over the action list: try dropping ever-finer
    // chunks; the result is 1-minimal (no single action can go).
    std::size_t granularity = 2;
    while (actions.size() >= 2) {
      const std::size_t chunk =
          (actions.size() + granularity - 1) / granularity;
      bool reduced = false;
      for (std::size_t start = 0; start < actions.size() && !reduced;
           start += chunk) {
        std::vector<FaultAction> complement;
        complement.reserve(actions.size());
        for (std::size_t i = 0; i < actions.size(); ++i) {
          if (i < start || i >= start + chunk) complement.push_back(actions[i]);
        }
        if (!complement.empty() && reproduces(complement)) {
          actions = std::move(complement);
          granularity = std::max<std::size_t>(granularity - 1, 2);
          reduced = true;
        }
      }
      if (!reduced) {
        if (granularity >= actions.size()) break;
        granularity = std::min(actions.size(), granularity * 2);
      }
    }
  }

  RunSpec out = spec;
  out.schedule.actions = std::move(actions);
  return out;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  AHB_EXPECTS(options.participants >= 1);
  AHB_EXPECTS(options.runs_per_config >= 1);

  const std::vector<Variant> variants =
      options.variants.empty()
          ? std::vector<Variant>(std::begin(kAllVariants),
                                 std::end(kAllVariants))
          : options.variants;
  const std::vector<proto::Timing> timings =
      options.timings.empty()
          ? std::vector<proto::Timing>(std::begin(kDefaultTimings),
                                       std::end(kDefaultTimings))
          : options.timings;

  std::vector<RunSpec> specs;
  for (const Variant variant : variants) {
    for (const proto::Timing& timing : timings) {
      for (int run = 0; run < options.runs_per_config; ++run) {
        RunSpec spec;
        spec.variant = variant;
        spec.tmin = timing.tmin;
        spec.tmax = timing.tmax;
        spec.fixed_bounds = options.fixed_bounds;
        spec.receive_priority = options.receive_priority;
        spec.participants =
            proto::variant_is_multi(variant) ? options.participants : 1;
        spec.seed = options.base_seed + static_cast<std::uint64_t>(run);
        spec.horizon =
            campaign_horizon(timing, variant, options.fixed_bounds);
        spec.schedule = generate_schedule(spec, options.out_of_spec);
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto bounds_for = [&options](const RunSpec& spec) {
    MonitorBounds bounds = MonitorBounds::defaults(spec.timing(), spec.variant,
                                                   spec.fixed_bounds);
    bounds.r1_slack += options.extra_r1_slack;
    bounds.r2_window += options.extra_r2_window;
    bounds.r3_slack += options.extra_r3_slack;
    return bounds;
  };

  struct Slot {
    RunResult result;
    std::uint64_t hash = 0;
  };
  std::vector<Slot> slots(specs.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < specs.size();
         i = next.fetch_add(1)) {
      const MonitorBounds bounds = bounds_for(specs[i]);
      slots[i].result =
          run_chaos(specs[i], &bounds, options.fingerprint, false,
                    options.formulas.empty() ? nullptr : &options.formulas);
      if (options.fingerprint) {
        slots[i].hash =
            fnv1a(serialize_run(specs[i]) + slots[i].result.trace);
        slots[i].result.trace.clear();
      }
    }
  };

  const unsigned thread_count = std::max(1u, options.threads);
  if (thread_count == 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }

  // Aggregation is sequential and in run order, so the result is
  // invariant under the worker-thread count.
  CampaignResult result;
  std::uint64_t fingerprint = 1469598103934665603ULL;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ++result.runs;
    result.sim_ticks += static_cast<std::uint64_t>(specs[i].horizon);
    add_stats(result.totals, slots[i].result.net_stats);
    result.availability += slots[i].result.availability;
    result.integrity += slots[i].result.integrity;
    if (!slots[i].result.formula_violations.empty()) {
      ++result.formula_violating_runs;
      result.formula_violations += slots[i].result.formula_violations.size();
    }
    fingerprint = (fingerprint ^ slots[i].hash) * 1099511628211ULL;
    if (slots[i].result.violations.empty()) continue;
    ++result.violating_runs;
    ViolatingRun violating;
    violating.spec = specs[i];
    violating.violations = slots[i].result.violations;
    violating.shrunk = specs[i];
    if (options.shrink) {
      const MonitorBounds bounds = bounds_for(specs[i]);
      violating.shrunk = shrink_run(specs[i], &bounds);
    }
    violating.artifact = serialize_run(violating.shrunk);
    result.violating.push_back(std::move(violating));
  }
  result.fingerprint = fingerprint;
  return result;
}

}  // namespace ahb::chaos
