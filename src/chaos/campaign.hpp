// Chaos campaigns: seeded sweeps of fault schedules across variants ×
// timings × seeds, with delta-debugging of any violating schedule down
// to a minimal replayable artifact.
//
// A campaign is deterministic end to end: schedules are generated from
// the run seed alone, runs are executed from their RunSpec alone, and
// the per-run results land in preallocated slots — so the aggregate
// result (including the execution fingerprint) is identical for any
// worker-thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/runner.hpp"

namespace ahb::chaos {

struct CampaignOptions {
  /// Variants to sweep; empty = all six.
  std::vector<Variant> variants;
  /// Timings to sweep; empty = a default mix of tmin/tmax shapes.
  std::vector<proto::Timing> timings;
  /// Participants for the multi variants (binary flavors always run 1).
  int participants = 2;
  /// Seeded runs per (variant, timing) cell.
  int runs_per_config = 30;
  std::uint64_t base_seed = 1;
  /// In-spec profile: loss/bursts/partitions/duplication/crashes/leaves
  /// only. Out-of-spec adds delay injection beyond tmin/2 and clock
  /// drift, and guarantees at least one such action per schedule (the
  /// negative control).
  bool out_of_spec = false;
  bool fixed_bounds = true;
  bool receive_priority = true;
  unsigned threads = 1;
  /// Delta-debug every violating schedule to a 1-minimal one.
  bool shrink = true;
  /// Record per-run traces and fold them into `fingerprint`.
  bool fingerprint = true;
  /// Mutation-canary knobs: added on top of the proto/timing.hpp
  /// defaults. Loosening a bound must silence the negative control —
  /// the test that proves the monitor bites.
  Time extra_r1_slack = 0;
  Time extra_r2_window = 0;
  Time extra_r3_slack = 0;
  /// pLTL formulas compiled per run (against that run's variant/timing)
  /// and attached next to the hand-written monitors. Their verdicts are
  /// aggregated separately (formula_violations below), so attaching
  /// formulas never changes violating-run counts, shrinking, or the
  /// campaign fingerprint.
  std::vector<rv::pltl::FormulaSpec> formulas;
};

struct ViolatingRun {
  RunSpec spec;                       ///< the full generated run
  std::vector<Violation> violations;  ///< as reported on the full run
  RunSpec shrunk;                     ///< 1-minimal reproducer (== spec if
                                      ///< shrinking was disabled)
  std::string artifact;               ///< serialize_run(shrunk)
};

struct CampaignResult {
  std::uint64_t runs = 0;
  std::uint64_t violating_runs = 0;
  /// Summed horizons of every run — the campaign's simulated ticks
  /// (the denominator of wall-time-per-simulated-hour reporting).
  std::uint64_t sim_ticks = 0;
  sim::NetworkStats totals;  ///< summed over every run
  /// Availability score summed over every run (rv::AvailabilityStats):
  /// node up/down time, recoveries, detection-latency histogram.
  rv::AvailabilitySummary availability;
  /// Payload-integrity counters summed over every run.
  rv::IntegritySummary integrity;
  std::vector<ViolatingRun> violating;
  /// Totals over the attached pLTL formula monitors (0 when
  /// CampaignOptions::formulas is empty).
  std::uint64_t formula_violations = 0;
  std::uint64_t formula_violating_runs = 0;
  /// FNV-1a over every run's serialized spec + protocol trace, folded
  /// in run order; byte-equal across repeats and thread counts.
  std::uint64_t fingerprint = 0;
};

/// Deterministic schedule generation for `spec` (whose seed, variant,
/// timing and horizon select the faults). Exposed for tests.
FaultSchedule generate_schedule(const RunSpec& spec, bool out_of_spec_profile);

/// Multi-phase generation profile: the active window splits into
/// `cycles` equal cycles, each a setup (first quarter) -> storm (middle
/// half) -> recovery (last quarter) sequence with its own action
/// budget. Storms draw from the heavy mix (asymmetric burst storms,
/// churn waves, partitions, loss spikes, payload corruption when
/// armed); every recovery opens with a deterministic cleanup (heal +
/// loss/burst/corruption reset on every star link) so an in-spec
/// mission returns to a quiet channel before the next cycle. This
/// lifts the legacy generator's 4-action cap: the bool-profile
/// overload above keeps its original stream byte for byte, missions
/// use this one.
struct ScheduleProfile {
  int cycles = 1;
  int setup_budget = 2;     ///< max actions per setup phase (min 1)
  int storm_budget = 4;     ///< max actions per storm phase (min 1)
  int recovery_budget = 2;  ///< max actions per recovery phase (min 0)
  /// > 0 arms CorruptPayload storms with this per-message probability.
  double corrupt = 0.0;
  /// Storms may inject clock faults (SetClockOffset is out of spec;
  /// WrapClock is in spec only under the modular-clock guard).
  bool clock_faults = false;
  /// Also guarantee one legacy out-of-spec action (delay/drift).
  bool out_of_spec = false;
};

FaultSchedule generate_schedule(const RunSpec& spec,
                                const ScheduleProfile& profile);

/// The horizon a generated run needs: an active fault window followed
/// by a settle margin long enough that every monitor deadline armed in
/// the window lies before the horizon (no undetermined obligations).
Time campaign_horizon(const proto::Timing& timing, Variant variant,
                      bool fixed_bounds);

/// Delta-debugs `spec`'s schedule to a 1-minimal action list that still
/// reproduces a violation with the same requirement and node as the
/// first violation of the full run. `bounds` must match the bounds the
/// violation was found under.
RunSpec shrink_run(const RunSpec& spec, const MonitorBounds* bounds = nullptr);

CampaignResult run_campaign(const CampaignOptions& options);

}  // namespace ahb::chaos
