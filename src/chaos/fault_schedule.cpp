#include "chaos/fault_schedule.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ahb::chaos {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::SetLoss, "set-loss"},
    {FaultKind::SetBurst, "set-burst"},
    {FaultKind::SetDelay, "set-delay"},
    {FaultKind::SetDuplication, "set-duplication"},
    {FaultKind::LinkDown, "link-down"},
    {FaultKind::LinkUp, "link-up"},
    {FaultKind::Partition, "partition"},
    {FaultKind::Heal, "heal"},
    {FaultKind::CrashParticipant, "crash-participant"},
    {FaultKind::CrashCoordinator, "crash-coordinator"},
    {FaultKind::Leave, "leave"},
    {FaultKind::Rejoin, "rejoin"},
    {FaultKind::SetDrift, "set-drift"},
    {FaultKind::CorruptPayload, "corrupt-payload"},
    {FaultKind::SetClockOffset, "set-clock-offset"},
    {FaultKind::WrapClock, "wrap-clock"},
    {FaultKind::AsymmetricStorm, "asymmetric-storm"},
    {FaultKind::ChurnStorm, "churn-storm"},
};

constexpr Variant kVariants[] = {
    Variant::Binary,   Variant::RevisedBinary, Variant::TwoPhase,
    Variant::Static,   Variant::Expanding,     Variant::Dynamic,
};

// --- minimal flat-JSON field scanner -------------------------------------
//
// The schedule format is flat JSON objects with known keys, so a full
// JSON parser would be dead weight; `find_field` locates `"key":` and
// returns a pointer to the start of its value token.

const char* find_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  const char* value = line.c_str() + pos + needle.size();
  while (*value == ' ') ++value;
  return value;
}

bool read_int(const std::string& line, const char* key, std::int64_t& out) {
  const char* value = find_field(line, key);
  if (value == nullptr) return false;
  char* end = nullptr;
  out = std::strtoll(value, &end, 10);
  return end != value;
}

bool read_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const char* value = find_field(line, key);
  if (value == nullptr) return false;
  char* end = nullptr;
  out = std::strtoull(value, &end, 10);
  return end != value;
}

bool read_double(const std::string& line, const char* key, double& out) {
  const char* value = find_field(line, key);
  if (value == nullptr) return false;
  char* end = nullptr;
  out = std::strtod(value, &end);
  return end != value;
}

bool read_bool(const std::string& line, const char* key, bool& out) {
  const char* value = find_field(line, key);
  if (value == nullptr) return false;
  if (std::strncmp(value, "true", 4) == 0) {
    out = true;
    return true;
  }
  if (std::strncmp(value, "false", 5) == 0) {
    out = false;
    return true;
  }
  return false;
}

bool read_string(const std::string& line, const char* key, std::string& out) {
  const char* value = find_field(line, key);
  if (value == nullptr || *value != '"') return false;
  const char* end = std::strchr(value + 1, '"');
  if (end == nullptr) return false;
  out.assign(value + 1, end);
  return true;
}

std::string format_action(const FaultAction& action) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"kind\": \"%s\", \"at\": %" PRId64
                ", \"a\": %d, \"b\": %d, \"p\": %.17g, \"q\": %.17g, "
                "\"r\": %.17g, \"d1\": %" PRId64 ", \"d2\": %" PRId64 "}",
                to_string(action.kind), action.at, action.a, action.b,
                action.p, action.q, action.r, action.d1, action.d2);
  return buf;
}

}  // namespace

const char* to_string(FaultKind kind) {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_string(const std::string& name) {
  for (const auto& entry : kKindNames) {
    if (name == entry.name) return entry.kind;
  }
  return std::nullopt;
}

std::optional<Variant> variant_from_string(const std::string& name) {
  for (const Variant v : kVariants) {
    if (name == proto::to_string(v)) return v;
  }
  return std::nullopt;
}

bool FaultAction::out_of_spec(const proto::Timing& timing) const {
  switch (kind) {
    case FaultKind::SetDelay:
      return d2 > timing.tmin / 2;
    case FaultKind::SetDrift:
      return d1 != d2;
    case FaultKind::SetClockOffset:
      // Any register jump breaks the rate-1 clock assumption; the
      // guard only makes the *reaction* fail-safe (fence), it cannot
      // make the resulting inactivation an explained one.
      return d1 != 0;
    default:
      return false;
  }
}

bool FaultSchedule::out_of_spec(const proto::Timing& timing) const {
  for (const auto& action : actions) {
    if (action.out_of_spec(timing)) return true;
  }
  return false;
}

bool RunSpec::out_of_spec() const {
  for (const auto& action : schedule.actions) {
    switch (action.kind) {
      case FaultKind::CorruptPayload:
        // With validation the receiver turns corruption into message
        // destruction (in spec); without it, corrupted payloads reach
        // the engine.
        if (!wire_validation && action.p > 0) return true;
        break;
      case FaultKind::WrapClock:
        // The wrap preserves ages, so only the guard-off ordered
        // comparison misreads it.
        if (!clock_guard) return true;
        break;
      default:
        if (action.out_of_spec(timing())) return true;
        break;
    }
  }
  return false;
}

std::string serialize_run(const RunSpec& spec) {
  // The guard fields are emitted only when off so every pre-existing
  // artifact — and its campaign fingerprint — stays byte-identical.
  char guards[96] = "";
  if (!spec.wire_validation || !spec.clock_guard) {
    std::snprintf(guards, sizeof guards,
                  ", \"wire_validation\": %s, \"clock_guard\": %s",
                  spec.wire_validation ? "true" : "false",
                  spec.clock_guard ? "true" : "false");
  }
  char header[400];
  std::snprintf(header, sizeof header,
                "{\"schedule\": \"ahb-chaos\", \"variant\": \"%s\", "
                "\"tmin\": %" PRId64 ", \"tmax\": %" PRId64
                ", \"fixed_bounds\": %s, \"receive_priority\": %s, "
                "\"participants\": %d, \"seed\": %" PRIu64
                ", \"horizon\": %" PRId64 "%s}",
                proto::to_string(spec.variant), spec.tmin, spec.tmax,
                spec.fixed_bounds ? "true" : "false",
                spec.receive_priority ? "true" : "false", spec.participants,
                spec.seed, spec.horizon, guards);
  std::string out = header;
  out += '\n';
  for (const auto& action : spec.schedule.actions) {
    out += format_action(action);
    out += '\n';
  }
  return out;
}

std::optional<RunSpec> parse_run(const std::string& text) {
  RunSpec spec;
  std::size_t pos = 0;
  bool header_seen = false;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    if (!header_seen) {
      std::string magic;
      if (!read_string(line, "schedule", magic) || magic != "ahb-chaos") {
        return std::nullopt;
      }
      std::string variant_name;
      std::int64_t participants = 0;
      if (!read_string(line, "variant", variant_name) ||
          !read_int(line, "tmin", spec.tmin) ||
          !read_int(line, "tmax", spec.tmax) ||
          !read_bool(line, "fixed_bounds", spec.fixed_bounds) ||
          !read_bool(line, "receive_priority", spec.receive_priority) ||
          !read_int(line, "participants", participants) ||
          !read_u64(line, "seed", spec.seed) ||
          !read_int(line, "horizon", spec.horizon)) {
        return std::nullopt;
      }
      // Optional guard fields (absent in pre-corruption artifacts).
      read_bool(line, "wire_validation", spec.wire_validation);
      read_bool(line, "clock_guard", spec.clock_guard);
      const auto variant = variant_from_string(variant_name);
      if (!variant || participants < 1 || !spec.timing().valid()) {
        return std::nullopt;
      }
      spec.variant = *variant;
      spec.participants = static_cast<int>(participants);
      header_seen = true;
      continue;
    }

    FaultAction action;
    std::string kind_name;
    std::int64_t a = 0;
    std::int64_t b = 0;
    if (!read_string(line, "kind", kind_name) ||
        !read_int(line, "at", action.at) || !read_int(line, "a", a) ||
        !read_int(line, "b", b) || !read_double(line, "p", action.p) ||
        !read_double(line, "q", action.q) ||
        !read_double(line, "r", action.r) ||
        !read_int(line, "d1", action.d1) ||
        !read_int(line, "d2", action.d2)) {
      return std::nullopt;
    }
    const auto kind = fault_kind_from_string(kind_name);
    if (!kind) return std::nullopt;
    action.kind = *kind;
    action.a = static_cast<int>(a);
    action.b = static_cast<int>(b);
    spec.schedule.actions.push_back(action);
  }
  if (!header_seen) return std::nullopt;
  return spec;
}

}  // namespace ahb::chaos
