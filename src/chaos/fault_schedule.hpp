// Declarative fault schedules: the single replayable description of a
// chaos run.
//
// A FaultSchedule is an ordered list of timed fault actions (network
// degradation, partitions, crashes, leaves, clock drift) applied to a
// Cluster at absolute simulation times. Together with the RunSpec
// header (variant, timing, seed, horizon) it fully determines an
// execution: the simulator, the network and the schedule are all
// seeded, so replaying a serialized schedule reproduces the run — and
// any monitor violation — byte for byte. Serialization is JSON lines
// (one header line, one line per action) to keep shrunk counterexample
// artifacts diffable and greppable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hb/types.hpp"
#include "sim/simulator.hpp"

namespace ahb::chaos {

using Time = sim::Time;
using Variant = proto::Variant;

/// The fault taxonomy. Node/link operands: `a`/`b` are node ids (0 is
/// the coordinator); link actions affect the directed link a -> b.
enum class FaultKind {
  SetLoss,          ///< a->b: i.i.d. loss probability := p
  SetBurst,         ///< a->b: Gilbert–Elliott burst (p_enter=p, p_exit=q, loss=r)
  SetDelay,         ///< a->b: one-way delay range := [d1, d2]
  SetDuplication,   ///< a->b: duplication probability := p
  LinkDown,         ///< a->b: drop everything (silent link failure)
  LinkUp,           ///< a->b: undo LinkDown
  Partition,        ///< participants a..b cut off from the coordinator
  Heal,             ///< undo Partition of a..b
  CrashParticipant, ///< participant a crashes
  CrashCoordinator, ///< the coordinator crashes
  Leave,            ///< participant a leaves gracefully (dynamic variant)
  Rejoin,           ///< participant a re-enters the join phase
  SetDrift,         ///< node a's clock rate := d1/d2 local units per global
  CorruptPayload,   ///< a->b: in-flight bit-flip probability := p
  SetClockOffset,   ///< node a's hardware clock register jumps by d1 ticks
  WrapClock,        ///< node a's register repositioned d1 ticks before 2^64
  AsymmetricStorm,  ///< burst (p,q,r) on one direction only for members
                    ///< a..b — d2 = 0 uplinks, 1 downlinks — for d1 ticks
  ChurnStorm,       ///< members a..b leave in a wave staggered d1 apart,
                    ///< each rejoining d2 after its leave (d2 = 0: no rejoin)
};

const char* to_string(FaultKind kind);
std::optional<FaultKind> fault_kind_from_string(const std::string& name);

std::optional<Variant> variant_from_string(const std::string& name);

/// One timed fault action. Which operands are meaningful depends on
/// the kind (see FaultKind); unused operands stay zero so serialized
/// actions compare bytewise.
struct FaultAction {
  FaultKind kind{};
  Time at = 0;
  int a = 0;
  int b = 0;
  double p = 0.0;
  double q = 0.0;
  double r = 0.0;
  Time d1 = 0;
  Time d2 = 0;

  friend bool operator==(const FaultAction&, const FaultAction&) = default;

  /// True when this action steps outside the protocol's channel/clock
  /// assumptions at the given timing: a one-way delay bound above
  /// tmin/2 (breaking the round-trip <= tmin premise), a clock rate
  /// other than 1, or a clock-register jump. Everything else — loss,
  /// bursts, partitions, duplication, crashes, leaves, churn,
  /// asymmetric storms, payload corruption (the boundary validation
  /// turns it into message destruction) — is within spec, so any
  /// monitor violation under it is a genuine protocol bug. Some kinds
  /// are guard-dependent (a WrapClock is harmless only under the
  /// modular-clock guard): RunSpec::out_of_spec() accounts for the
  /// run's guard configuration, this per-action form assumes guards on.
  bool out_of_spec(const proto::Timing& timing) const;
};

struct FaultSchedule {
  std::vector<FaultAction> actions;

  bool out_of_spec(const proto::Timing& timing) const;

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;
};

/// Everything needed to reproduce one chaos run.
struct RunSpec {
  Variant variant = Variant::Binary;
  Time tmin = 1;
  Time tmax = 16;
  /// Corrected protocol (Section 6 fixes). The in-spec campaigns run
  /// with both fixes on, where R1–R3 hold at every valid timing.
  bool fixed_bounds = true;
  bool receive_priority = true;
  int participants = 1;
  std::uint64_t seed = 1;
  Time horizon = 1000;
  /// Receiver guards. Both default on (the fail-safe configuration);
  /// turning one off is itself an out-of-spec experiment — the mutation
  /// canaries that prove the monitors would catch a missing guard.
  bool wire_validation = true;
  bool clock_guard = true;
  FaultSchedule schedule;

  proto::Timing timing() const { return proto::Timing{tmin, tmax}; }

  /// Schedule out-of-spec accounting for *this run's* guard
  /// configuration: payload corruption is in spec only under wire
  /// validation, a clock wrap only under the modular-clock guard.
  bool out_of_spec() const;

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

/// JSONL round-trip. The first line is the RunSpec header, each further
/// line one action; parse returns nullopt on any malformed line.
std::string serialize_run(const RunSpec& spec);
std::optional<RunSpec> parse_run(const std::string& text);

}  // namespace ahb::chaos
