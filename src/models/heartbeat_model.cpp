#include "models/heartbeat_model.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace ahb::models {

using ta::ChanId;
using ta::ChanKind;
using ta::ClockId;
using ta::Edge;
using ta::LocKind;
using ta::StateMut;
using ta::StateView;
using ta::SyncDir;
using ta::VarId;

namespace {

using Handles = HeartbeatModel::Handles;

/// New waiting time for one participant after a round. Delegates to the
/// shared acceleration law in proto/timing.hpp (reset to tmax on a
/// received beat, accelerate on a miss; the two-phase miss at tmin
/// yields proto::kInactivateWait, which forces the inactivation branch).
int next_waiting_time(bool received, int current, const Timing& timing,
                      Flavor flavor) {
  return static_cast<int>(
      proto::next_wait(received, current, timing.to_proto(), flavor));
}

/// Fixed-variant receive priority (Section 6.1): "before processing
/// timeouts, it has to be checked whether the communication channels
/// offer messages that have to be delivered". True iff any channel holds
/// an undelivered round-trip message — a beat towards some p[i], or a
/// reply or leave towards p[0]. Join beats deliberately don't count
/// here: in-spec round-trip traffic can never span a deadline
/// (round-trip delay <= tmin <= the waiting time), so gating on "in
/// flight" is exact for these channels — but a join beat is
/// unsynchronised with p[0]'s round and may legitimately still be in
/// flight when the timer fires, exactly as the engine's timer fires
/// regardless of in-flight messages. Joins gate p[0]'s timeout only in
/// the forced case below.
bool any_delivery_pending(const StateView& v, const Handles* h) {
  for (const auto& p : h->parts) {
    const auto loc = v.loc(p.ch);
    if (loc == p.ch_t0 || loc == p.ch_t1) return true;
    if (p.ch_t1f >= 0 && loc == p.ch_t1f) return true;
  }
  return false;
}

/// A pending join beat whose delay clock has hit the channel bound must
/// resolve at this very instant (the transit invariant forbids waiting
/// longer), so under receive priority its delivery precedes a
/// same-instant timeout of p[0] — the engine processes a message
/// arriving at time T before p[0]'s timer callback at T. A join that
/// may still arrive later does not gate the timeout: ordering the close
/// before such a delivery corresponds to an engine run where the join
/// simply arrives after the close.
bool forced_join_pending(const StateView& v, const Handles* h) {
  if (h->jch_bound < 0) return false;
  for (const auto& p : h->parts) {
    if (p.jch.value < 0) continue;
    if (v.loc(p.jch) == p.jch_t && v.clk(p.jdelay) == h->jch_bound) {
      return true;
    }
  }
  return false;
}

/// Builder for all protocol flavors. Channels are modelled per Figure 5:
/// one round-trip automaton per participant enforcing the tmin bound on
/// the total round-trip delay, with nondeterministic loss that latches
/// the global `lost` flag. Deliveries are broadcast channels so that the
/// watchdog monitors can observe them without perturbing the protocol.
///
/// The builder fills a caller-owned Network and Handles; guards capture
/// a pointer to those Handles (heap-allocated by HeartbeatModel::build,
/// so the pointer stays valid across moves of the model).
class Builder {
 public:
  Builder(Flavor flavor, const BuildOptions& options, ta::Network& net,
          Handles& handles)
      : flavor_(flavor),
        options_(options),
        timing_(options.timing),
        net_(net),
        h_(handles) {
    AHB_EXPECTS(timing_.valid());
    AHB_EXPECTS(!is_multi(flavor) || options.participants >= 1);
  }

  void build() {
    const int n = is_multi(flavor_) ? options_.participants : 1;
    // Shared flag (no owning automaton): lives in the collapse root.
    h_.lost = net_.add_var("lost", 0, 0, 1);
    if (has_join_phase()) {
      h_.stale_join = net_.add_var("stale_join", 0, 0, 1);
    }

    // Channel declarations first: edges reference them from every side.
    if (is_multi(flavor_)) {
      bcast0_ = net_.add_channel("bcast0", ChanKind::Broadcast);
    } else {
      to_ch_ = net_.add_channel("to_ch", ChanKind::Handshake);
    }
    for (int i = 1; i <= n; ++i) {
      deliver_p_.push_back(
          net_.add_channel(strprintf("deliver_p%d", i), ChanKind::Broadcast));
      reply_true_.push_back(
          net_.add_channel(strprintf("reply%d", i), ChanKind::Handshake));
      deliver_p0_true_.push_back(net_.add_channel(
          strprintf("deliver_p0_from%d", i), ChanKind::Broadcast));
      if (leaves()) {
        reply_false_.push_back(net_.add_channel(
            strprintf("reply_false%d", i), ChanKind::Handshake));
        deliver_p0_false_.push_back(net_.add_channel(
            strprintf("deliver_p0_false_from%d", i), ChanKind::Broadcast));
      }
      if (has_join_phase()) {
        join_send_.push_back(net_.add_channel(strprintf("join_send%d", i),
                                              ChanKind::Handshake));
        // Join-beat deliveries get their own broadcast channel so the
        // p[0] receive edge is a distinguishable action: a replayed
        // trace with message identity can tell a delivered join beat
        // from a delivered reply even though both carry the same
        // payload on the wire.
        deliver_p0_join_.push_back(net_.add_channel(
            strprintf("deliver_p0_join_from%d", i), ChanKind::Broadcast));
      }
    }

    h_.parts.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto& p = h_.parts[static_cast<std::size_t>(i)];
      p.ch_deliver_beat = deliver_p0_true_[static_cast<std::size_t>(i)];
      if (leaves()) {
        p.ch_deliver_leave = deliver_p0_false_[static_cast<std::size_t>(i)];
      }
      if (has_join_phase()) {
        p.ch_deliver_join = deliver_p0_join_[static_cast<std::size_t>(i)];
      }
    }
    build_p0(n);
    for (int i = 0; i < n; ++i) build_participant(i);
    for (int i = 0; i < n; ++i) build_channel(i);
    if (has_join_phase()) {
      for (int i = 0; i < n; ++i) build_join_channel(i);
    }
    if (options_.r1_monitor) {
      for (int i = 0; i < n; ++i) build_monitor(i);
    }

    // Instrument hooks see the finished protocol (including watchdogs)
    // but run before reductions are declared and the network freezes,
    // so observer automata they add can still declare locations, clocks
    // and edges. They stay outside every symmetry block by design.
    if (instrument_ != nullptr && *instrument_) (*instrument_)(net_, h_);

    declare_reductions(n);
    net_.freeze();
  }

  void set_instrument(const HeartbeatModel::Instrument* instrument) {
    instrument_ = instrument;
  }

 private:
  // Variant-dependent structure, all answered by the shared rule table.
  bool has_join_phase() const { return proto::variant_joins(flavor_); }
  bool leaves() const { return proto::variant_leaves(flavor_); }
  bool initial_beat() const {
    return proto::rules_for(flavor_).initial_beat;
  }

  void build_p0(int n) {
    auto& h = h_;
    h.p0 = net_.add_automaton("p0");
    // All of p[0]'s bookkeeping is declared as owned by p0, so the
    // collapse codec folds it into p0's component; waiting times range
    // over [0, tmax] (kInactivateWait == 0 included).
    h.active0 = net_.add_var("active0", 1, 0, 1, h.p0);
    h.t = net_.add_var("t", timing_.tmax, 0, timing_.tmax, h.p0);
    h.waiting = net_.add_clock("waiting", timing_.tmax + 1);
    for (int i = 0; i < n; ++i) {
      auto& p = h.parts[static_cast<std::size_t>(i)];
      p.rcvd0 = net_.add_var(strprintf("rcvd%d", i + 1), 1, 0, 1, h.p0);
      if (is_multi(flavor_)) {
        p.tm = net_.add_var(strprintf("tm%d", i + 1), timing_.tmax, 0,
                            timing_.tmax, h.p0);
      }
      if (has_join_phase()) {
        p.jnd = net_.add_var(strprintf("jnd%d", i + 1), 0, 0, 1, h.p0);
      }
    }

    const VarId active0 = h.active0;
    const VarId t_var = h.t;
    const ClockId waiting = h.waiting;
    const Timing timing = timing_;
    const Handles* hp = &h_;

    // Locations. `Alive` has the invariant waiting <= t.
    h.l_alive = net_.add_location(
        h.p0, "Alive", LocKind::Normal,
        [t_var, waiting](const StateView& v) {
          return v.clk(waiting) <= v.var(t_var);
        });
    h.l_timeout = net_.add_location(h.p0, "TimeOut", LocKind::Committed);
    h.l_v = net_.add_location(h.p0, "VInactivated");
    h.l_nv = net_.add_location(h.p0, "NVInactivated");
    if (initial_beat()) {
      h.l_init = net_.add_location(h.p0, "Init", LocKind::Urgent);
      net_.set_initial(h.p0, h.l_init);
    }

    // Voluntary crash, possible at any time while alive.
    net_.add_edge(h.p0, Edge{.src = h.l_alive,
                             .dst = h.l_v,
                             .effect = [active0](StateMut& m) {
                               m.set(active0, 0);
                             },
                             .label = "crash"});

    // Beat receipt. One receive edge per participant; broadcast
    // deliveries reach p[0] and the monitors simultaneously.
    for (int i = 0; i < n; ++i) {
      auto& p = h.parts[static_cast<std::size_t>(i)];
      const VarId rcvd0 = p.rcvd0;
      const VarId jnd = p.jnd;
      const VarId tm = p.tm;
      const bool join = has_join_phase();
      const int tmax = timing_.tmax;
      net_.add_edge(h.p0,
                    Edge{.src = h.l_alive,
                         .dst = h.l_alive,
                         .chan = deliver_p0_true_[static_cast<std::size_t>(i)],
                         .dir = SyncDir::Recv,
                         .effect =
                             [rcvd0, jnd, tm, join, tmax](StateMut& m) {
                               // Registration of a (re)joining process
                               // starts its waiting time from tmax again,
                               // exactly like the hb coordinator does —
                               // without this, a process that left with a
                               // decayed tm[i] and later rejoined would
                               // inherit the stale value.
                               if (join && m.var(jnd) == 0) m.set(tm, tmax);
                               m.set(rcvd0, 1);
                               if (join) m.set(jnd, 1);
                             },
                         .label = strprintf("recv_beat_from_p%d", i + 1)});
      if (join) {
        // Same registration effect, distinct action: the beat arrived
        // over the join channel rather than as a round-trip reply.
        net_.add_edge(
            h.p0,
            Edge{.src = h.l_alive,
                 .dst = h.l_alive,
                 .chan = deliver_p0_join_[static_cast<std::size_t>(i)],
                 .dir = SyncDir::Recv,
                 .effect =
                     [rcvd0, jnd, tm, tmax](StateMut& m) {
                       if (m.var(jnd) == 0) m.set(tm, tmax);
                       m.set(rcvd0, 1);
                       m.set(jnd, 1);
                     },
                 .label = strprintf("recv_join_from_p%d", i + 1)});
      }
      if (leaves()) {
        net_.add_edge(
            h.p0,
            Edge{.src = h.l_alive,
                 .dst = h.l_alive,
                 .chan = deliver_p0_false_[static_cast<std::size_t>(i)],
                 .dir = SyncDir::Recv,
                 .effect =
                     [rcvd0, jnd](StateMut& m) {
                       m.set(jnd, 0);
                       m.set(rcvd0, 0);
                     },
                 .label = strprintf("recv_leave_from_p%d", i + 1)});
      }
    }

    // Timeout: enter the committed decision location. With the Section 6
    // fix, pending deliveries towards p[0] take precedence.
    {
      ta::Guard guard;
      if (options_.use_receive_priority()) {
        guard = [t_var, waiting, hp](const StateView& v) {
          return v.clk(waiting) == v.var(t_var) &&
                 !any_delivery_pending(v, hp) && !forced_join_pending(v, hp);
        };
      } else {
        guard = [t_var, waiting](const StateView& v) {
          return v.clk(waiting) == v.var(t_var);
        };
      }
      net_.add_edge(h.p0, Edge{.src = h.l_alive,
                               .dst = h.l_timeout,
                               .guard = std::move(guard),
                               .label = "timeout"});
    }

    // The round computation shared by the continue/inactivate guards:
    // the minimum next waiting time across participating processes.
    std::vector<VarId> rcvds, tms, jnds;
    for (const auto& p : h.parts) {
      rcvds.push_back(p.rcvd0);
      tms.push_back(p.tm);
      jnds.push_back(p.jnd);
    }
    const bool multi = is_multi(flavor_);
    const bool join = has_join_phase();
    const Flavor flavor = flavor_;
    const auto min_next = [multi, join, flavor, rcvds, tms, jnds, t_var,
                           timing](const StateView& v) {
      if (!multi) {
        return next_waiting_time(v.var(rcvds[0]) != 0, v.var(t_var), timing,
                                 flavor);
      }
      int min_t = timing.tmax;
      for (std::size_t i = 0; i < rcvds.size(); ++i) {
        if (join && v.var(jnds[i]) == 0) continue;
        min_t =
            std::min(min_t, next_waiting_time(v.var(rcvds[i]) != 0,
                                              v.var(tms[i]), timing, flavor));
      }
      return min_t;
    };

    // Continue: send/broadcast the next beat and start the next round.
    {
      Edge e;
      e.src = h.l_timeout;
      e.dst = h.l_alive;
      if (multi) {
        e.chan = bcast0_;
        e.label = "broadcast_beat";
      } else {
        e.chan = to_ch_;
        e.label = "send_beat";
      }
      e.dir = SyncDir::Send;
      e.guard = [min_next, timing](const StateView& v) {
        return !proto::wait_inactivates(min_next(v), timing.to_proto());
      };
      e.effect = [multi, join, flavor, rcvds, tms, jnds, t_var, waiting,
                  timing](StateMut& m) {
        int min_t = timing.tmax;
        if (multi) {
          for (std::size_t i = 0; i < rcvds.size(); ++i) {
            if (join && m.var(jnds[i]) == 0) {
              m.set(rcvds[i], 0);
              continue;
            }
            const int next = next_waiting_time(m.var(rcvds[i]) != 0,
                                               m.var(tms[i]), timing, flavor);
            m.set(tms[i], next);
            m.set(rcvds[i], 0);
            min_t = std::min(min_t, next);
          }
        } else {
          min_t = next_waiting_time(m.var(rcvds[0]) != 0, m.var(t_var), timing,
                                    flavor);
          m.set(rcvds[0], 0);
        }
        m.set(t_var, min_t);
        m.reset(waiting);
      };
      net_.add_edge(h.p0, std::move(e));
    }

    // Non-voluntary inactivation: the next waiting time fell below tmin.
    net_.add_edge(h.p0, Edge{.src = h.l_timeout,
                             .dst = h.l_nv,
                             .guard =
                                 [min_next, timing](const StateView& v) {
                                   return proto::wait_inactivates(
                                       min_next(v), timing.to_proto());
                                 },
                             .effect =
                                 [active0](StateMut& m) { m.set(active0, 0); },
                             .label = "nv_inactivate"});

    // Revised binary: an immediate first beat before the first wait.
    if (initial_beat()) {
      const VarId rcvd0 = h.parts[0].rcvd0;
      net_.add_edge(h.p0, Edge{.src = h.l_init,
                               .dst = h.l_alive,
                               .chan = to_ch_,
                               .dir = SyncDir::Send,
                               .effect =
                                   [rcvd0, waiting](StateMut& m) {
                                     m.set(rcvd0, 0);
                                     m.reset(waiting);
                                   },
                               .label = "initial_beat"});
    }
  }

  void build_participant(int i) {
    auto& p = h_.parts[static_cast<std::size_t>(i)];
    const auto idx = static_cast<std::size_t>(i);
    p.proc = net_.add_automaton(strprintf("p%d", i + 1));
    p.active = net_.add_var(strprintf("active%d", i + 1), 1, 0, 1, p.proc);

    const int joined_bound = participant_bound(timing_, options_.use_corrected_bounds());
    const int joining_bound = join_bound(timing_, options_.use_corrected_bounds());
    const int wfb_cap = std::max(joined_bound, joining_bound) + 1;
    p.wfb = net_.add_clock(strprintf("wfb%d", i + 1), wfb_cap);

    const ClockId wfb = p.wfb;
    const VarId active = p.active;
    const Handles* hp = &h_;
    if (leaves()) {
      p.left = net_.add_var(strprintf("left%d", i + 1), 0, 0, 1, p.proc);
    }

    // Locations.
    p.l_alive = net_.add_location(
        p.proc, "Alive", LocKind::Normal,
        [wfb, joined_bound](const StateView& v) {
          return v.clk(wfb) <= joined_bound;
        });
    p.l_rcvd = net_.add_location(p.proc, "Rcvd", LocKind::Committed);
    p.l_v = net_.add_location(p.proc, "VInactivated");
    p.l_nv = net_.add_location(p.proc, "NVInactivated");

    // With the Section 6 fix, a pending delivery towards p[i] takes
    // precedence over the inactivation timeout.
    const auto deadline_guard = [this, hp, wfb](int bound) {
      ta::Guard guard;
      if (options_.use_receive_priority()) {
        guard = [hp, wfb, bound](const StateView& v) {
          return v.clk(wfb) == bound && !any_delivery_pending(v, hp);
        };
      } else {
        guard = [wfb, bound](const StateView& v) {
          return v.clk(wfb) == bound;
        };
      }
      return guard;
    };

    if (has_join_phase()) {
      const int jperiod =
          static_cast<int>(proto::join_beat_period(timing_.to_proto()));
      p.wtj = net_.add_clock(strprintf("wtj%d", i + 1), jperiod + 1);
      const ClockId wtj = p.wtj;
      p.l_joining = net_.add_location(
          p.proc, "Joining", LocKind::Normal,
          [wfb, wtj, joining_bound, jperiod](const StateView& v) {
            return v.clk(wfb) <= joining_bound && v.clk(wtj) <= jperiod;
          });
      net_.set_initial(p.proc, p.l_joining);

      // Join beats every join period until joined; per Fig. 6 the
      // *first* join beat is also sent one period after start-up (not
      // at time zero), which is what allows a join request to reach
      // p[0] right after one of its timeouts (the Fig. 13 scenario).
      net_.add_edge(p.proc, Edge{.src = p.l_joining,
                                 .dst = p.l_joining,
                                 .chan = join_send_[idx],
                                 .dir = SyncDir::Send,
                                 .guard =
                                     [wtj, jperiod](const StateView& v) {
                                       return v.clk(wtj) == jperiod;
                                     },
                                 .effect =
                                     [wtj](StateMut& m) { m.reset(wtj); },
                                 .label = "join_beat"});
      // Receiving p[0]'s beat completes the join; the reply is sent from
      // the committed Rcvd location like any other beat.
      net_.add_edge(p.proc, Edge{.src = p.l_joining,
                                 .dst = p.l_rcvd,
                                 .chan = deliver_p_[idx],
                                 .dir = SyncDir::Recv,
                                 .label = "recv_first_beat"});
      // Join-phase deadline.
      net_.add_edge(p.proc, Edge{.src = p.l_joining,
                                 .dst = p.l_nv,
                                 .guard = deadline_guard(joining_bound),
                                 .effect =
                                     [active](StateMut& m) {
                                       m.set(active, 0);
                                     },
                                 .label = "nv_inactivate_joining"});
      // Crash while joining.
      net_.add_edge(p.proc, Edge{.src = p.l_joining,
                                 .dst = p.l_v,
                                 .effect =
                                     [active](StateMut& m) {
                                       m.set(active, 0);
                                     },
                                 .label = "crash_joining"});
    }

    // Beat receipt when participating.
    net_.add_edge(p.proc, Edge{.src = p.l_alive,
                               .dst = p.l_rcvd,
                               .chan = deliver_p_[idx],
                               .dir = SyncDir::Recv,
                               .label = "recv_beat"});
    // Immediate reply from the committed location. The reply and leave
    // edges (both sides of the handshake) are POR-invisible: they write
    // only p[i]'s own wfb/wtj/left, which no other automaton and no
    // predicate reads, and the locations they move through are never
    // tested by a predicate (Rcvd/Alive/Left are not the NV sinks).
    // Receive-priority guards read the channel locations they change,
    // but those guards sit on non-committed sources, which cannot fire
    // before the committed Rcvd location is vacated — so deferring them
    // past the reply is exactly the engine's instantaneous-reply order.
    net_.add_edge(p.proc, Edge{.src = p.l_rcvd,
                               .dst = p.l_alive,
                               .chan = reply_true_[idx],
                               .dir = SyncDir::Send,
                               .effect = [wfb](StateMut& m) { m.reset(wfb); },
                               .label = "send_reply",
                               .invisible = true});
    if (leaves()) {
      // Alternatively, reply with a leave beat and depart gracefully.
      p.l_left = net_.add_location(p.proc, "Left");
      const VarId left = p.left;
      // The leave reply also restarts wtj, which then measures the time
      // since departure (used by the graceful-rejoin guard below).
      const ClockId wtj_leave = p.wtj;
      net_.add_edge(p.proc, Edge{.src = p.l_rcvd,
                                 .dst = p.l_left,
                                 .chan = reply_false_[idx],
                                 .dir = SyncDir::Send,
                                 .effect =
                                     [left, wtj_leave](StateMut& m) {
                                       m.set(left, 1);
                                       m.reset(wtj_leave);
                                     },
                                 .label = "send_leave",
                                 .invisible = true});
      if (options_.rejoin != BuildOptions::Rejoin::None) {
        // Future-work extension: a departed process may decide to
        // participate again; it restarts the join phase from scratch.
        // The graceful variant first lets the in-flight leave beat
        // drain (its delivery is bounded by tmin).
        const ClockId wtj = p.wtj;
        // wtj measures time since the leave beat; the earliest safe
        // rejoin offset is proto::earliest_rejoin relative to it.
        const int drain = static_cast<int>(
            proto::earliest_rejoin(0, timing_.to_proto()));
        ta::Guard guard;
        if (options_.rejoin == BuildOptions::Rejoin::Graceful) {
          guard = [wtj, drain](const StateView& v) {
            return v.clk(wtj) >= drain;
          };
        }
        net_.add_edge(p.proc, Edge{.src = p.l_left,
                                   .dst = p.l_joining,
                                   .guard = std::move(guard),
                                   .effect =
                                       [left, wfb, wtj](StateMut& m) {
                                         m.set(left, 0);
                                         m.reset(wfb);
                                         m.reset(wtj);
                                       },
                                   .label = "rejoin"});
      }
    }
    // Crash while alive.
    net_.add_edge(p.proc, Edge{.src = p.l_alive,
                               .dst = p.l_v,
                               .effect =
                                   [active](StateMut& m) { m.set(active, 0); },
                               .label = "crash"});
    // Deadline while participating.
    net_.add_edge(p.proc, Edge{.src = p.l_alive,
                               .dst = p.l_nv,
                               .guard = deadline_guard(joined_bound),
                               .effect =
                                   [active](StateMut& m) { m.set(active, 0); },
                               .label = "nv_inactivate"});
  }

  void build_channel(int i) {
    auto& p = h_.parts[static_cast<std::size_t>(i)];
    const auto idx = static_cast<std::size_t>(i);
    p.ch = net_.add_automaton(strprintf("ch%d", i + 1));
    p.delay = net_.add_clock(strprintf("delay%d", i + 1), timing_.tmin + 1);

    const ClockId delay = p.delay;
    const int tmin = timing_.tmin;
    const VarId lost = h_.lost;
    const VarId active = p.active;

    const auto bounded = [delay, tmin](const StateView& v) {
      return v.clk(delay) <= tmin;
    };

    p.ch_idle = net_.add_location(p.ch, "Idle");
    p.ch_t0 =
        net_.add_location(p.ch, "BeatInTransit", LocKind::Normal, bounded);
    p.ch_w1 =
        net_.add_location(p.ch, "AwaitingReply", LocKind::Normal, bounded);
    p.ch_t1 =
        net_.add_location(p.ch, "ReplyInTransit", LocKind::Normal, bounded);
    if (leaves()) {
      p.ch_t1f =
          net_.add_location(p.ch, "LeaveInTransit", LocKind::Normal, bounded);
    }

    // Accept p[0]'s beat. Multi flavors receive the broadcast; in the
    // expanding/dynamic flavors only channels of registered (joined)
    // participants carry the beat, since p[0] addresses its heartbeat to
    // its joined list (this is what makes the Fig. 13 scenario possible).
    {
      Edge e;
      e.src = p.ch_idle;
      e.dst = p.ch_t0;
      e.dir = SyncDir::Recv;
      e.label = "accept_beat";
      e.effect = [delay](StateMut& m) { m.reset(delay); };
      if (is_multi(flavor_)) {
        e.chan = bcast0_;
        if (has_join_phase()) {
          const VarId jnd = p.jnd;
          e.guard = [jnd](const StateView& v) { return v.var(jnd) == 1; };
        }
      } else {
        e.chan = to_ch_;
      }
      net_.add_edge(p.ch, std::move(e));
    }

    // First leg: lose or deliver to p[i].
    net_.add_edge(p.ch, Edge{.src = p.ch_t0,
                             .dst = p.ch_idle,
                             .effect = [lost](StateMut& m) { m.set(lost, 1); },
                             .label = "lose_beat"});
    net_.add_edge(p.ch, Edge{.src = p.ch_t0,
                             .dst = p.ch_w1,
                             .chan = deliver_p_[idx],
                             .dir = SyncDir::Send,
                             .label = "deliver_beat"});

    // Awaiting the reply; if p[i] is no longer participating (crashed,
    // inactivated, or departed) no reply will ever come, so the channel
    // gives up waiting.
    const Handles* hp = &h_;
    net_.add_edge(p.ch, Edge{.src = p.ch_w1,
                             .dst = p.ch_t1,
                             .chan = reply_true_[idx],
                             .dir = SyncDir::Recv,
                             .label = "accept_reply",
                             .invisible = true});
    net_.add_edge(p.ch, Edge{.src = p.ch_w1,
                             .dst = p.ch_idle,
                             .guard =
                                 [active, hp, idx](const StateView& v) {
                                   const auto& part = hp->parts[idx];
                                   if (v.var(active) == 0) return true;
                                   const auto loc = v.loc(part.proc);
                                   if (part.l_left >= 0 && loc == part.l_left) {
                                     return true;
                                   }
                                   // A beat that was delivered while the
                                   // process had departed will never be
                                   // answered, even if the process has
                                   // meanwhile re-entered the join phase.
                                   return part.l_joining >= 0 &&
                                          loc == part.l_joining;
                                 },
                             .label = "abort_wait"});
    if (leaves()) {
      net_.add_edge(p.ch, Edge{.src = p.ch_w1,
                               .dst = p.ch_t1f,
                               .chan = reply_false_[idx],
                               .dir = SyncDir::Recv,
                               .label = "accept_leave",
                               .invisible = true});
      net_.add_edge(p.ch,
                    Edge{.src = p.ch_t1f,
                         .dst = p.ch_idle,
                         .effect = [lost](StateMut& m) { m.set(lost, 1); },
                         .label = "lose_leave"});
      net_.add_edge(p.ch, Edge{.src = p.ch_t1f,
                               .dst = p.ch_idle,
                               .chan = deliver_p0_false_[idx],
                               .dir = SyncDir::Send,
                               .label = "deliver_leave"});
    }

    // Second leg: lose or deliver the reply to p[0].
    net_.add_edge(p.ch, Edge{.src = p.ch_t1,
                             .dst = p.ch_idle,
                             .effect = [lost](StateMut& m) { m.set(lost, 1); },
                             .label = "lose_reply"});
    net_.add_edge(p.ch, Edge{.src = p.ch_t1,
                             .dst = p.ch_idle,
                             .chan = deliver_p0_true_[idx],
                             .dir = SyncDir::Send,
                             .label = "deliver_reply"});
  }

  void build_join_channel(int i) {
    auto& p = h_.parts[static_cast<std::size_t>(i)];
    const auto idx = static_cast<std::size_t>(i);
    p.jch = net_.add_automaton(strprintf("jch%d", i + 1));
    // The channel assumption budgets tmin per message exchange; the
    // published R2 counterexamples need the full budget on this one-way
    // leg (a join sent tmin before a round close, arriving at it).
    const int jbound = timing_.tmin;
    h_.jch_bound = jbound;
    p.jdelay = net_.add_clock(strprintf("jdelay%d", i + 1), jbound + 1);

    const ClockId jdelay = p.jdelay;
    const VarId lost = h_.lost;

    p.jch_idle = net_.add_location(p.jch, "Idle");
    p.jch_t = net_.add_location(p.jch, "JoinInTransit", LocKind::Normal,
                                [jdelay, jbound](const StateView& v) {
                                  return v.clk(jdelay) <= jbound;
                                });

    net_.add_edge(p.jch, Edge{.src = p.jch_idle,
                              .dst = p.jch_t,
                              .chan = join_send_[idx],
                              .dir = SyncDir::Recv,
                              .effect =
                                  [jdelay](StateMut& m) { m.reset(jdelay); },
                              .label = "accept_join"});
    net_.add_edge(p.jch, Edge{.src = p.jch_t,
                              .dst = p.jch_idle,
                              .effect = [lost](StateMut& m) { m.set(lost, 1); },
                              .label = "lose_join"});
    // A join beat still in flight once p[i] left the join phase is
    // delivered like any other flag message: the engine coordinator
    // registers `rcvd` for whatever arrives, so the model must too
    // (the old guard `loc == l_joining` on the delivery voided stale
    // joins and made engine traces with a post-join delivery
    // unreplayable — see DESIGN.md, resolved divergence (b)). The
    // stale delivery latches `stale_join`, which the R3 predicate
    // conditions on: the paper's analysis assumes a quiet join channel
    // after joining, so runs outside that assumption don't witness a
    // violation (the role `lost` plays for channel loss). `void_join`
    // stays as pure channel freedom: the message may also vanish
    // silently without raising `lost`, which keeps the lost==0
    // verification slice an over-approximation of the engine's
    // perfect-channel runs.
    const Handles* hp = &h_;
    const VarId stale = h_.stale_join;
    net_.add_edge(p.jch, Edge{.src = p.jch_t,
                              .dst = p.jch_idle,
                              .chan = deliver_p0_join_[idx],
                              .dir = SyncDir::Send,
                              .guard =
                                  [hp, idx](const StateView& v) {
                                    const auto& part = hp->parts[idx];
                                    return v.loc(part.proc) == part.l_joining;
                                  },
                              .label = "deliver_join"});
    net_.add_edge(p.jch, Edge{.src = p.jch_t,
                              .dst = p.jch_idle,
                              .chan = deliver_p0_join_[idx],
                              .dir = SyncDir::Send,
                              .guard =
                                  [hp, idx](const StateView& v) {
                                    const auto& part = hp->parts[idx];
                                    return v.loc(part.proc) != part.l_joining;
                                  },
                              .effect =
                                  [stale](StateMut& m) { m.set(stale, 1); },
                              .label = "deliver_join_stale"});
    net_.add_edge(p.jch, Edge{.src = p.jch_t,
                              .dst = p.jch_idle,
                              .guard =
                                  [hp, idx](const StateView& v) {
                                    const auto& part = hp->parts[idx];
                                    return v.loc(part.proc) != part.l_joining;
                                  },
                              .label = "void_join"});
  }

  void build_monitor(int i) {
    auto& p = h_.parts[static_cast<std::size_t>(i)];
    const auto idx = static_cast<std::size_t>(i);
    p.mon = net_.add_automaton(strprintf("mon%d", i + 1));
    const int bound = r1_bound(timing_, options_.use_corrected_bounds());
    p.mdelay = net_.add_clock(strprintf("mdelay%d", i + 1), bound + 1);

    const ClockId mdelay = p.mdelay;
    const VarId active0 = h_.active0;

    p.mon_wait = net_.add_location(p.mon, "Waiting");
    p.mon_armed = net_.add_location(p.mon, "Armed");
    p.mon_error = net_.add_location(p.mon, "ErrorR1");

    // Binary and static participants are expected from the start; in the
    // expanding/dynamic flavors the watchdog arms on the first beat that
    // actually reaches p[0] (and disarms on a delivered leave beat).
    if (!has_join_phase()) net_.set_initial(p.mon, p.mon_armed);

    net_.add_edge(p.mon, Edge{.src = p.mon_wait,
                              .dst = p.mon_armed,
                              .chan = deliver_p0_true_[idx],
                              .dir = SyncDir::Recv,
                              .effect =
                                  [mdelay](StateMut& m) { m.reset(mdelay); },
                              .label = "arm"});
    net_.add_edge(p.mon, Edge{.src = p.mon_armed,
                              .dst = p.mon_armed,
                              .chan = deliver_p0_true_[idx],
                              .dir = SyncDir::Recv,
                              .effect =
                                  [mdelay](StateMut& m) { m.reset(mdelay); },
                              .label = "observe_beat"});
    if (has_join_phase()) {
      // Join-beat deliveries moved to their own channel; the watchdog
      // still treats them as beats reaching p[0] (R1's clock is about
      // p[0] hearing *something*, not about which channel carried it).
      net_.add_edge(p.mon, Edge{.src = p.mon_wait,
                                .dst = p.mon_armed,
                                .chan = deliver_p0_join_[idx],
                                .dir = SyncDir::Recv,
                                .effect =
                                    [mdelay](StateMut& m) { m.reset(mdelay); },
                                .label = "arm"});
      net_.add_edge(p.mon, Edge{.src = p.mon_armed,
                                .dst = p.mon_armed,
                                .chan = deliver_p0_join_[idx],
                                .dir = SyncDir::Recv,
                                .effect =
                                    [mdelay](StateMut& m) { m.reset(mdelay); },
                                .label = "observe_beat"});
    }
    if (leaves()) {
      net_.add_edge(p.mon, Edge{.src = p.mon_armed,
                                .dst = p.mon_wait,
                                .chan = deliver_p0_false_[idx],
                                .dir = SyncDir::Recv,
                                .label = "disarm_on_leave"});
    }
    net_.add_edge(p.mon, Edge{.src = p.mon_armed,
                              .dst = p.mon_error,
                              .guard =
                                  [mdelay, active0, bound](const StateView& v) {
                                    return v.var(active0) == 1 &&
                                           v.clk(mdelay) > bound;
                                  },
                              .label = "error_r1"});
  }

  /// Reduction declarations, consumed only when a search opts in via
  /// SearchLimits::symmetry; the default semantics and state counts are
  /// untouched. Soundness rests on two facts about this builder:
  /// every participant is built by the same code (so the blocks are
  /// congruent), and every shared guard (min_next,
  /// any_delivery_pending, forced_join_pending) and every verification
  /// predicate (r1, r2_violation_any, r3) quantifies symmetrically over
  /// the participants. r2_violation(i) for a fixed i is the one
  /// asymmetric predicate in this file; it must not be combined with
  /// Symmetry::Participants.
  void declare_reductions(int n) {
    // Full symmetry (scalarset) over the participants: everything a
    // participant owns travels in its block — its process, channel,
    // join-channel and monitor automata, its clocks, and p[0]'s
    // per-participant bookkeeping (rcvd/tm/jnd) — so permuting blocks
    // is exactly renaming participants. With n == 1 the single block is
    // ignored at freeze (no symmetry to exploit).
    for (int i = 0; i < n; ++i) {
      const auto& p = h_.parts[static_cast<std::size_t>(i)];
      ta::Network::SymmetryMember m;
      m.automata.push_back(p.proc);
      m.automata.push_back(p.ch);
      if (has_join_phase()) m.automata.push_back(p.jch);
      if (options_.r1_monitor) m.automata.push_back(p.mon);
      m.vars.push_back(p.active);
      m.vars.push_back(p.rcvd0);
      if (is_multi(flavor_)) m.vars.push_back(p.tm);
      if (has_join_phase()) m.vars.push_back(p.jnd);
      if (leaves()) m.vars.push_back(p.left);
      m.clocks.push_back(p.wfb);
      m.clocks.push_back(p.delay);
      if (has_join_phase()) {
        m.clocks.push_back(p.wtj);
        m.clocks.push_back(p.jdelay);
      }
      if (options_.r1_monitor) m.clocks.push_back(p.mdelay);
      net_.add_symmetry_block(std::move(m));
    }

    // Dead-slot rules: each slot below is rewritten on every path from
    // the given location to its next read, so canonicalization may zero
    // it there without changing any guard or predicate outcome.
    for (const auto& p : h_.parts) {
      // wfb is read only by the Alive/Joining invariants and deadline
      // guards; send_reply and rejoin reset it before re-entry.
      net_.declare_dead_clock(p.proc, p.l_rcvd, p.wfb);
      net_.declare_dead_clock(p.proc, p.l_v, p.wfb);
      net_.declare_dead_clock(p.proc, p.l_nv, p.wfb);
      if (p.l_left >= 0) net_.declare_dead_clock(p.proc, p.l_left, p.wfb);
      if (has_join_phase()) {
        // wtj is read only by the Joining invariant, the join_beat
        // guard and the Left rejoin guard; send_leave and rejoin reset
        // it on the way into those locations.
        net_.declare_dead_clock(p.proc, p.l_alive, p.wtj);
        net_.declare_dead_clock(p.proc, p.l_rcvd, p.wtj);
        net_.declare_dead_clock(p.proc, p.l_v, p.wtj);
        net_.declare_dead_clock(p.proc, p.l_nv, p.wtj);
        if (p.l_left >= 0 && options_.rejoin == BuildOptions::Rejoin::None) {
          net_.declare_dead_clock(p.proc, p.l_left, p.wtj);
        }
      }
      // Channel delay clocks are reset by every accept edge.
      net_.declare_dead_clock(p.ch, p.ch_idle, p.delay);
      if (has_join_phase()) {
        net_.declare_dead_clock(p.jch, p.jch_idle, p.jdelay);
      }
      if (options_.r1_monitor) {
        // mdelay is reset by arm; ErrorR1 is a sink location.
        net_.declare_dead_clock(p.mon, p.mon_wait, p.mdelay);
        net_.declare_dead_clock(p.mon, p.mon_error, p.mdelay);
      }
    }
    // Once p[0] is inactivated its round bookkeeping is unreachable: no
    // edge leaves V/NV, and the predicates read only active0, lost,
    // stale_join and the participants' active/jnd flags.
    for (const int loc : {h_.l_v, h_.l_nv}) {
      net_.declare_dead_clock(h_.p0, loc, h_.waiting);
      net_.declare_dead_var(h_.p0, loc, h_.t, 0);
      for (const auto& p : h_.parts) {
        net_.declare_dead_var(h_.p0, loc, p.rcvd0, 0);
        if (is_multi(flavor_)) net_.declare_dead_var(h_.p0, loc, p.tm, 0);
      }
    }
  }

  Flavor flavor_;
  BuildOptions options_;
  Timing timing_;
  ta::Network& net_;
  Handles& h_;

  ChanId bcast0_{};
  ChanId to_ch_{};
  std::vector<ChanId> deliver_p_;
  std::vector<ChanId> reply_true_;
  std::vector<ChanId> reply_false_;
  std::vector<ChanId> deliver_p0_true_;
  std::vector<ChanId> deliver_p0_false_;
  std::vector<ChanId> join_send_;
  std::vector<ChanId> deliver_p0_join_;
  const HeartbeatModel::Instrument* instrument_ = nullptr;
};

}  // namespace

HeartbeatModel HeartbeatModel::build(Flavor flavor,
                                     const BuildOptions& options) {
  HeartbeatModel model;
  model.handles_ = std::make_unique<Handles>();
  model.flavor_ = flavor;
  model.options_ = options;
  Builder builder{flavor, options, model.net_, *model.handles_};
  builder.build();
  return model;
}

HeartbeatModel HeartbeatModel::build(Flavor flavor, const BuildOptions& options,
                                     const Instrument& instrument) {
  HeartbeatModel model;
  model.handles_ = std::make_unique<Handles>();
  model.flavor_ = flavor;
  model.options_ = options;
  Builder builder{flavor, options, model.net_, *model.handles_};
  builder.set_instrument(&instrument);
  builder.build();
  return model;
}

mc::Pred HeartbeatModel::r1_violation() const {
  AHB_EXPECTS(options_.r1_monitor);
  std::vector<std::pair<ta::AutomatonId, int>> errors;
  for (const auto& p : handles_->parts) {
    errors.emplace_back(p.mon, p.mon_error);
  }
  return [errors](const StateView& v) {
    return std::any_of(errors.begin(), errors.end(), [&](const auto& e) {
      return v.loc(e.first) == e.second;
    });
  };
}

namespace {

/// Participant j does not legitimise someone else's inactivation if it
/// is still alive (it may have left gracefully) or if p[0] never
/// registered it as joined.
bool participant_ok(const StateView& v,
                    const HeartbeatModel::Participant& p) {
  if (v.var(p.active) == 1) return true;
  if (p.jnd.value >= 0 && v.var(p.jnd) == 0) return true;
  return false;
}

}  // namespace

mc::Pred HeartbeatModel::r2_violation(int i) const {
  AHB_EXPECTS(i >= 0 && i < static_cast<int>(handles_->parts.size()));
  const Handles* h = handles_.get();
  return [h, i](const StateView& v) {
    const auto& target = h->parts[static_cast<std::size_t>(i)];
    if (v.loc(target.proc) != target.l_nv) return false;
    if (v.var(h->lost) != 0) return false;
    if (v.var(h->active0) != 1) return false;
    for (std::size_t j = 0; j < h->parts.size(); ++j) {
      if (static_cast<int>(j) == i) continue;
      if (!participant_ok(v, h->parts[j])) return false;
    }
    return true;
  };
}

mc::Pred HeartbeatModel::r2_violation_any() const {
  std::vector<mc::Pred> per_part;
  for (int i = 0; i < static_cast<int>(handles_->parts.size()); ++i) {
    per_part.push_back(r2_violation(i));
  }
  return [per_part](const StateView& v) {
    return std::any_of(per_part.begin(), per_part.end(),
                       [&](const auto& p) { return p(v); });
  };
}

mc::Pred HeartbeatModel::r3_violation() const {
  const Handles* h = handles_.get();
  return [h](const StateView& v) {
    if (v.loc(h->p0) != h->l_nv) return false;
    if (v.var(h->lost) != 0) return false;
    // A delivered stale join re-registers a departed member and can
    // legitimately drag the ladder dry (engine semantics); the paper's
    // R3 claim assumes that never happens, so such runs are excused.
    if (h->stale_join.value >= 0 && v.var(h->stale_join) != 0) return false;
    for (const auto& p : h->parts) {
      if (!participant_ok(v, p)) return false;
    }
    return true;
  };
}

Verdicts verify_requirements(Flavor flavor, BuildOptions options,
                             const mc::SearchLimits& limits) {
  Verdicts out;
  {
    BuildOptions with_monitor = options;
    with_monitor.r1_monitor = true;
    const HeartbeatModel model = HeartbeatModel::build(flavor, with_monitor);
    mc::Explorer explorer{model.net()};
    const auto result = explorer.reach(model.r1_violation(), limits);
    AHB_ASSERT(result.found || result.complete);
    out.r1 = !result.found;
    out.r1_stats = result.stats;
  }
  {
    BuildOptions plain = options;
    plain.r1_monitor = false;
    const HeartbeatModel model = HeartbeatModel::build(flavor, plain);
    mc::Explorer explorer{model.net()};
    const auto r2 = explorer.reach(model.r2_violation_any(), limits);
    AHB_ASSERT(r2.found || r2.complete);
    out.r2 = !r2.found;
    out.r2_stats = r2.stats;
    const auto r3 = explorer.reach(model.r3_violation(), limits);
    AHB_ASSERT(r3.found || r3.complete);
    out.r3 = !r3.found;
    out.r3_stats = r3.stats;
  }
  return out;
}

}  // namespace ahb::models
