// Standalone process views: p[0] or p[1] of the binary protocol composed
// with a "chaos" environment that accepts every send and may deliver a
// beat at any moment. Their reachable transition systems are the
// analogue of the per-process diagrams of the source analysis
// (Figures 1 and 2: the reduced transition systems of p[0] and p[1] for
// tmax = 2, tmin = 1).
#pragma once

#include "models/options.hpp"
#include "ta/network.hpp"

namespace ahb::models {

/// p[0] of the binary protocol + chaos environment.
/// Environment edges are labelled with an "env." prefix so callers can
/// hide them before reduction.
ta::Network build_standalone_p0(const Timing& timing);

/// p[1] of the binary protocol + chaos environment.
ta::Network build_standalone_p1(const Timing& timing);

}  // namespace ahb::models
