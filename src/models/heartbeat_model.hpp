// Timed-automata models of the accelerated heartbeat protocols,
// mirroring the UPPAAL models of the source analysis (Figures 3-9):
// p[0], the participants p[i], the lossy bounded-delay channel automata,
// and the R1 watchdog monitors. The class also constructs the state
// predicates used to check requirements R1-R3 as reachability of latched
// violations.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mc/explorer.hpp"
#include "models/options.hpp"
#include "ta/network.hpp"

namespace ahb::models {

class HeartbeatModel {
 public:
  /// Per-participant handles into the network. For the binary flavors
  /// there is exactly one participant (p[1]).
  struct Participant {
    // process p[i]
    ta::AutomatonId proc;
    int l_joining = -1;  ///< expanding/dynamic only
    int l_alive = -1;
    int l_rcvd = -1;
    int l_v = -1;
    int l_nv = -1;
    int l_left = -1;  ///< dynamic only
    ta::VarId active;
    ta::ClockId wfb;     ///< waiting-for-beat clock
    ta::ClockId wtj{};   ///< waiting-to-join clock (expanding/dynamic)
    ta::VarId left{};    ///< dynamic: set when the leave beat is sent

    // round-trip channel p[0] -> p[i] -> p[0]
    ta::AutomatonId ch;
    int ch_idle = -1;
    int ch_t0 = -1;   ///< beat in flight towards p[i]
    int ch_w1 = -1;   ///< waiting for p[i]'s reply
    int ch_t1 = -1;   ///< reply in flight towards p[0]
    int ch_t1f = -1;  ///< leave beat in flight towards p[0] (dynamic)
    ta::ClockId delay;

    // join channel p[i] -> p[0] (expanding/dynamic)
    ta::AutomatonId jch;
    int jch_idle = -1;
    int jch_t = -1;
    ta::ClockId jdelay{};

    // p[0]-side per-participant bookkeeping
    ta::VarId rcvd0;  ///< rcvd[i]: beat received this round
    ta::VarId tm{};   ///< tm[i]: per-participant waiting time (multi)
    ta::VarId jnd{};  ///< jnd[i]: registered as joined (expanding/dynamic)

    // R1 watchdog monitor (only when BuildOptions::r1_monitor)
    ta::AutomatonId mon;
    int mon_wait = -1;   ///< disarmed (expanding/dynamic start here)
    int mon_armed = -1;
    int mon_error = -1;
    ta::ClockId mdelay{};

    // Delivery channels towards p[0], exposed so instrument hooks
    // (models/formula_check.hpp) can attach observer automata to the
    // events the runtime layer reports as CoordinatorReceivedBeat /
    // CoordinatorReceivedLeave. Invalid (-1) where the flavor has no
    // such channel.
    ta::ChanId ch_deliver_beat{};   ///< reply-beat deliveries to p[0]
    ta::ChanId ch_deliver_join{};   ///< join-beat deliveries (expanding/dynamic)
    ta::ChanId ch_deliver_leave{};  ///< leave-beat deliveries (dynamic)
  };

  struct Handles {
    ta::AutomatonId p0;
    int l_init = -1;  ///< revised binary / initial send location
    int l_alive = -1;
    int l_timeout = -1;
    int l_v = -1;
    int l_nv = -1;
    ta::VarId active0;
    ta::VarId t;  ///< current waiting time of p[0]
    ta::ClockId waiting;
    ta::VarId lost;  ///< latched: some message was lost
    /// Latched: a join beat was delivered after its sender had already
    /// left the join phase (expanding/dynamic only, else -1). The
    /// engine's coordinator registers any flag message, so the model
    /// delivers stale joins too; the paper's R3 analysis assumes the
    /// join channel is quiet after joining, so `r3_violation` only
    /// counts runs where this stayed 0 (the same role `lost` plays for
    /// the channel-loss assumption).
    ta::VarId stale_join{};
    /// Upper bound of the join channels' delay clocks (expanding/
    /// dynamic only, else -1). The receive-priority timeout guard needs
    /// it: a pending join whose clock has hit the bound must resolve at
    /// this instant, so its delivery precedes a same-instant timeout.
    int jch_bound = -1;
    std::vector<Participant> parts;
  };

  /// Instrument hook: runs after the protocol (and, when enabled, the
  /// R1 watchdogs) is fully built but before reduction declarations and
  /// freeze, so it may add observer automata that synchronise on the
  /// broadcast delivery channels. Observers added here are NOT part of
  /// the symmetry blocks — an instrumented model must be explored with
  /// reductions off (default SearchLimits).
  using Instrument = std::function<void(ta::Network&, Handles&)>;

  static HeartbeatModel build(Flavor flavor, const BuildOptions& options);
  static HeartbeatModel build(Flavor flavor, const BuildOptions& options,
                              const Instrument& instrument);

  const ta::Network& net() const { return net_; }
  const Handles& handles() const { return *handles_; }
  Flavor flavor() const { return flavor_; }
  const BuildOptions& options() const { return options_; }

  // ---- requirement predicates (violation = reachable state) ----

  /// R1 violated: some watchdog monitor reached its Error location.
  /// Requires the model to have been built with r1_monitor.
  mc::Pred r1_violation() const;

  /// R2 violated for participant `i`: p[i] non-voluntarily inactivated
  /// although no message was lost, p[0] is still active, and every other
  /// participant is either alive or was never registered as joined.
  mc::Pred r2_violation(int i) const;

  /// R2 violated for any participant.
  mc::Pred r2_violation_any() const;

  /// R3 violated: p[0] non-voluntarily inactivated although no message
  /// was lost, no stale join beat was delivered, and every participant
  /// is alive or never joined.
  mc::Pred r3_violation() const;

 private:
  HeartbeatModel() = default;

  // Handles live on the heap: guards inside the network capture a
  // pointer to them, and the heap allocation keeps that pointer stable
  // when the model is moved. Predicates returned by the r*_violation
  // methods must not outlive the model.
  ta::Network net_;
  std::unique_ptr<Handles> handles_;
  Flavor flavor_ = Flavor::Binary;
  BuildOptions options_;
};

/// Verdicts for one protocol/parameter combination, as reported in
/// Tables 1 and 2 of the source analysis: true means the requirement
/// holds (T), false that a counterexample exists (F).
struct Verdicts {
  bool r1 = false;
  bool r2 = false;
  bool r3 = false;
  mc::SearchStats r1_stats;
  mc::SearchStats r2_stats;
  mc::SearchStats r3_stats;
};

/// Model-checks R1, R2 and R3 for the given protocol and options.
/// Builds the model twice: with watchdog monitors for R1, without them
/// for R2/R3 (they would only enlarge the state space).
Verdicts verify_requirements(Flavor flavor, BuildOptions options,
                             const mc::SearchLimits& limits = {});

}  // namespace ahb::models
