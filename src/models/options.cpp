#include "models/options.hpp"

namespace ahb::models {

std::string to_string(Flavor f) {
  switch (f) {
    case Flavor::Binary: return "binary";
    case Flavor::RevisedBinary: return "revised-binary";
    case Flavor::TwoPhase: return "two-phase";
    case Flavor::Static: return "static";
    case Flavor::Expanding: return "expanding";
    case Flavor::Dynamic: return "dynamic";
  }
  AHB_UNREACHABLE("invalid Flavor");
}

}  // namespace ahb::models
