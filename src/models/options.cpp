#include "models/options.hpp"
