#include "models/standalone.hpp"

namespace ahb::models {

using ta::ChanKind;
using ta::Edge;
using ta::LocKind;
using ta::StateMut;
using ta::StateView;
using ta::SyncDir;

ta::Network build_standalone_p0(const Timing& timing) {
  ta::Network net;
  const auto send_chan = net.add_channel("snd", ChanKind::Handshake);
  const auto recv_chan = net.add_channel("rcv", ChanKind::Broadcast);

  const auto p0 = net.add_automaton("p0");
  const auto t = net.add_var("t", timing.tmax, 0, timing.tmax, p0);
  const auto rcvd = net.add_var("rcvd", 1, 0, 1, p0);
  const auto waiting = net.add_clock("waiting", timing.tmax + 1);

  const auto alive = net.add_location(
      p0, "Alive", LocKind::Normal,
      [t, waiting](const StateView& v) { return v.clk(waiting) <= v.var(t); });
  const auto timeout = net.add_location(p0, "TimeOut", LocKind::Committed);
  const auto v_inact = net.add_location(p0, "VInactivated");
  const auto nv_inact = net.add_location(p0, "NVInactivated");

  const Timing tm = timing;
  const auto next_t = [rcvd, t, tm](const StateView& v) {
    return static_cast<int>(proto::next_wait(v.var(rcvd) != 0, v.var(t),
                                             tm.to_proto(), Flavor::Binary));
  };

  net.add_edge(p0, Edge{.src = alive,
                        .dst = alive,
                        .chan = recv_chan,
                        .dir = SyncDir::Recv,
                        .effect = [rcvd](StateMut& m) { m.set(rcvd, 1); },
                        .label = "recv_beat"});
  net.add_edge(p0, Edge{.src = alive, .dst = v_inact, .label = "crash"});
  net.add_edge(p0, Edge{.src = alive,
                        .dst = timeout,
                        .guard =
                            [t, waiting](const StateView& v) {
                              return v.clk(waiting) == v.var(t);
                            },
                        .label = "timeout"});
  net.add_edge(p0, Edge{.src = timeout,
                        .dst = alive,
                        .chan = send_chan,
                        .dir = SyncDir::Send,
                        .guard =
                            [next_t, tm](const StateView& v) {
                              return next_t(v) >= tm.tmin;
                            },
                        .effect =
                            [t, rcvd, waiting, tm](StateMut& m) {
                              const int nt = static_cast<int>(proto::next_wait(
                                  m.var(rcvd) != 0, m.var(t), tm.to_proto(),
                                  Flavor::Binary));
                              m.set(t, nt);
                              m.set(rcvd, 0);
                              m.reset(waiting);
                            },
                        .label = "send_beat"});
  net.add_edge(p0, Edge{.src = timeout,
                        .dst = nv_inact,
                        .guard =
                            [next_t, tm](const StateView& v) {
                              return next_t(v) < tm.tmin;
                            },
                        .label = "nv_inactivate"});

  // Chaos environment: accepts sends, delivers beats at will.
  const auto env = net.add_automaton("env");
  const auto e0 = net.add_location(env, "E");
  net.add_edge(env, Edge{.src = e0,
                         .dst = e0,
                         .chan = send_chan,
                         .dir = SyncDir::Recv,
                         .label = "accept"});
  net.add_edge(env, Edge{.src = e0,
                         .dst = e0,
                         .chan = recv_chan,
                         .dir = SyncDir::Send,
                         .label = "deliver"});

  net.freeze();
  return net;
}

ta::Network build_standalone_p1(const Timing& timing) {
  ta::Network net;
  const auto deliver_chan = net.add_channel("dlv", ChanKind::Broadcast);
  const auto reply_chan = net.add_channel("rpl", ChanKind::Handshake);

  const auto p1 = net.add_automaton("p1");
  const int bound = participant_bound(timing, /*fixed=*/false);
  const auto wfb = net.add_clock("wfb", bound + 1);

  const auto alive = net.add_location(
      p1, "Alive", LocKind::Normal,
      [wfb, bound](const StateView& v) { return v.clk(wfb) <= bound; });
  const auto rcvd = net.add_location(p1, "Rcvd", LocKind::Committed);
  const auto v_inact = net.add_location(p1, "VInactivated");
  const auto nv_inact = net.add_location(p1, "NVInactivated");

  net.add_edge(p1, Edge{.src = alive,
                        .dst = rcvd,
                        .chan = deliver_chan,
                        .dir = SyncDir::Recv,
                        .label = "recv_beat"});
  net.add_edge(p1, Edge{.src = rcvd,
                        .dst = alive,
                        .chan = reply_chan,
                        .dir = SyncDir::Send,
                        .effect = [wfb](StateMut& m) { m.reset(wfb); },
                        .label = "send_reply"});
  net.add_edge(p1, Edge{.src = alive, .dst = v_inact, .label = "crash"});
  net.add_edge(p1, Edge{.src = alive,
                        .dst = nv_inact,
                        .guard =
                            [wfb, bound](const StateView& v) {
                              return v.clk(wfb) == bound;
                            },
                        .label = "nv_inactivate"});

  const auto env = net.add_automaton("env");
  const auto e0 = net.add_location(env, "E");
  net.add_edge(env, Edge{.src = e0,
                         .dst = e0,
                         .chan = deliver_chan,
                         .dir = SyncDir::Send,
                         .label = "deliver"});
  net.add_edge(env, Edge{.src = e0,
                         .dst = e0,
                         .chan = reply_chan,
                         .dir = SyncDir::Recv,
                         .label = "accept"});

  net.freeze();
  return net;
}

}  // namespace ahb::models
