// Configuration of the heartbeat protocol models.
#pragma once

#include <string>

#include "util/contracts.hpp"

namespace ahb::models {

/// The protocol variants of Gouda & McGuire (ICDCS'98), plus the revised
/// binary variant of McGuire & Gouda (2004).
enum class Flavor {
  Binary,
  RevisedBinary,
  TwoPhase,
  Static,
  Expanding,
  Dynamic,
};

std::string to_string(Flavor f);

/// True for the flavors with n participants and a broadcasting p[0].
constexpr bool is_multi(Flavor f) {
  return f == Flavor::Static || f == Flavor::Expanding || f == Flavor::Dynamic;
}

struct Timing {
  int tmin = 1;   ///< lower bound on waiting times; also the upper bound
                  ///< on the round-trip channel delay
  int tmax = 10;  ///< upper bound on waiting times

  constexpr bool valid() const { return 0 < tmin && tmin <= tmax; }
};

struct BuildOptions {
  Timing timing{};
  int participants = 1;  ///< number of p[i] processes (multi flavors)
  /// Apply both Section 6 corrections (shorthand for setting the two
  /// individual flags below).
  bool fixed = false;
  /// Section 6.1 fix only: receives take precedence over simultaneous
  /// timeouts (pending channel deliveries are processed before any
  /// timeout fires).
  bool receive_priority = false;
  /// Section 6.2 fix only: corrected inactivation bounds — p[i] times
  /// out after 2*tmax (joined) / 2*tmax + tmin (join phase), and the R1
  /// bound on p[0] becomes 3*tmax - tmin when 2*tmin <= tmax.
  bool corrected_bounds = false;
  /// Build the R1 watchdog monitors (Fig. 9). They enlarge the state
  /// space, so only enable them when checking R1.
  bool r1_monitor = false;
  /// Dynamic flavor extension (the source analysis names it as future
  /// work): may a participant that left re-enter the join phase?
  ///  - Naive: rejoin at any moment. Model checking shows this breaks R2
  ///    even in the corrected protocol: a stale leave beat still in
  ///    flight is processed *after* the new incarnation's join beat and
  ///    de-registers it (the classic reincarnation hazard).
  ///  - Graceful: rejoin only after the leave message's delay bound has
  ///    drained (> tmin after the leave was sent); verified correct.
  enum class Rejoin { None, Naive, Graceful };
  Rejoin rejoin = Rejoin::None;

  constexpr bool use_receive_priority() const {
    return fixed || receive_priority;
  }
  constexpr bool use_corrected_bounds() const {
    return fixed || corrected_bounds;
  }
};

/// The detection bound R1 demands of p[0]: the as-published requirement
/// is 2*tmax; the corrected requirement (Section 6.2) is 3*tmax - tmin
/// whenever 2*tmin <= tmax.
constexpr int r1_bound(const Timing& t, bool fixed) {
  if (!fixed) return 2 * t.tmax;
  return 2 * t.tmin > t.tmax ? 2 * t.tmax : 3 * t.tmax - t.tmin;
}

/// p[i]'s inactivation deadline once participating: as published
/// 3*tmax - tmin; corrected (tightened) to 2*tmax.
constexpr int participant_bound(const Timing& t, bool fixed) {
  return fixed ? 2 * t.tmax : 3 * t.tmax - t.tmin;
}

/// Deadline of the join phase (expanding/dynamic): as published
/// 3*tmax - tmin; corrected to 2*tmax + tmin.
constexpr int join_bound(const Timing& t, bool fixed) {
  return fixed ? 2 * t.tmax + t.tmin : 3 * t.tmax - t.tmin;
}

}  // namespace ahb::models
