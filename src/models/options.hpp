// Configuration of the heartbeat protocol models.
//
// The variant taxonomy and every timing law come from the shared
// protocol kernel in `src/proto` — the same kernel the executable
// engines in `src/hb` use — so the two layers cannot silently diverge.
// This header keeps thin int-typed wrappers because the model checker's
// variables and clocks are ints.
#pragma once

#include <string>

#include "proto/rules.hpp"
#include "proto/timing.hpp"
#include "util/contracts.hpp"

namespace ahb::models {

/// The protocol variants of Gouda & McGuire (ICDCS'98), plus the revised
/// binary variant of McGuire & Gouda (2004). Shared with the hb engine
/// layer (`hb::Variant` is the same type).
using Flavor = proto::Variant;

using proto::to_string;

/// True for the flavors with n participants and a broadcasting p[0].
constexpr bool is_multi(Flavor f) { return proto::variant_is_multi(f); }

struct Timing {
  int tmin = 1;   ///< lower bound on waiting times; also the upper bound
                  ///< on the round-trip channel delay
  int tmax = 10;  ///< upper bound on waiting times

  constexpr proto::Timing to_proto() const {
    return proto::Timing{tmin, tmax};
  }

  constexpr bool valid() const { return to_proto().valid(); }
};

struct BuildOptions {
  Timing timing{};
  int participants = 1;  ///< number of p[i] processes (multi flavors)
  /// Apply both Section 6 corrections (shorthand for setting the two
  /// individual flags below).
  bool fixed = false;
  /// Section 6.1 fix only: receives take precedence over simultaneous
  /// timeouts (pending channel deliveries are processed before any
  /// timeout fires).
  bool receive_priority = false;
  /// Section 6.2 fix only: corrected inactivation bounds for p[i]
  /// (joined and join phase) and the relaxed R1 bound on p[0]; the
  /// formulas live in proto/timing.hpp.
  bool corrected_bounds = false;
  /// Build the R1 watchdog monitors (Fig. 9). They enlarge the state
  /// space, so only enable them when checking R1.
  bool r1_monitor = false;
  /// Dynamic flavor extension (the source analysis names it as future
  /// work): may a participant that left re-enter the join phase?
  ///  - Naive: rejoin at any moment. Model checking shows this breaks R2
  ///    even in the corrected protocol: a stale leave beat still in
  ///    flight is processed *after* the new incarnation's join beat and
  ///    de-registers it (the classic reincarnation hazard).
  ///  - Graceful: rejoin only after the leave message's delay bound has
  ///    drained (> tmin after the leave was sent); verified correct.
  enum class Rejoin { None, Naive, Graceful };
  Rejoin rejoin = Rejoin::None;

  constexpr bool use_receive_priority() const {
    return fixed || receive_priority;
  }
  constexpr bool use_corrected_bounds() const {
    return fixed || corrected_bounds;
  }
};

/// The detection bound R1 demands of p[0] (proto::r1_bound, int-typed
/// for the checker's clocks).
constexpr int r1_bound(const Timing& t, bool fixed) {
  return static_cast<int>(proto::r1_bound(t.to_proto(), fixed));
}

/// p[i]'s inactivation deadline once participating
/// (proto::participant_deadline).
constexpr int participant_bound(const Timing& t, bool fixed) {
  return static_cast<int>(proto::participant_deadline(t.to_proto(), fixed));
}

/// Deadline of the join phase, expanding/dynamic (proto::join_deadline).
constexpr int join_bound(const Timing& t, bool fixed) {
  return static_cast<int>(proto::join_deadline(t.to_proto(), fixed));
}

}  // namespace ahb::models
