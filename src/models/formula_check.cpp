#include "models/formula_check.hpp"

#include <algorithm>
#include <vector>

#include "hb/protocol_event.hpp"
#include "hb/types.hpp"
#include "rv/pltl/eval.hpp"
#include "ta/network.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace ahb::models {

namespace {

namespace pltl = ahb::rv::pltl;

/// One node of the lowered state predicate; `a`/`b` index earlier
/// entries of Lowered::pnodes (the vector is in postorder).
struct PNode {
  enum class Kind : std::uint8_t { Const, Coord, Obs, Not, And, Or, Iff };
  Kind kind = Kind::Const;
  bool cval = false;  ///< Const: value; Coord: required active0 value
  int a = -1;
  int b = -1;
  int obs = -1;  ///< Obs: index into Lowered::observers
};

/// A `within[<= k]` over a disjunction of c_recv_beat atoms and `init`,
/// realised as a watchdog-style observer automaton. The request fields
/// are filled by the analyzer; the handle fields by the instrument hook
/// while the model builds.
struct Observer {
  // request
  bool any = false;        ///< listen to every participant's deliveries
  std::vector<int> nodes;  ///< otherwise: these 1-based participant ids
  bool has_init = false;   ///< `init` in the disjunction: start armed
  int bound = 0;
  pltl::Cmp cmp = pltl::Cmp::Le;
  // handles
  ta::AutomatonId aut{};
  int armed = -1;
  ta::ClockId clk{};
};

/// Everything the final predicates close over. Heap-allocated and
/// shared between the instrument hook, `violation` and `accepting`, so
/// the handles written during build are visible to the predicates.
struct Lowered {
  std::vector<PNode> pnodes;
  std::vector<Observer> observers;
  int root = -1;
  ta::VarId active0{};
  ta::AutomatonId latch{};
  int latch_bad = -1;
};

bool eval_pnode(const Lowered& low, int idx, const ta::StateView& v) {
  const PNode& pn = low.pnodes[static_cast<std::size_t>(idx)];
  switch (pn.kind) {
    case PNode::Kind::Const:
      return pn.cval;
    case PNode::Kind::Coord:
      return (v.var(low.active0) == 1) == pn.cval;
    case PNode::Kind::Obs: {
      const Observer& ob = low.observers[static_cast<std::size_t>(pn.obs)];
      if (v.loc(ob.aut) != ob.armed) return false;
      const int clk = v.clk(ob.clk);
      return ob.cmp == pltl::Cmp::Lt ? clk < ob.bound : clk <= ob.bound;
    }
    case PNode::Kind::Not:
      return !eval_pnode(low, pn.a, v);
    case PNode::Kind::And:
      return eval_pnode(low, pn.a, v) && eval_pnode(low, pn.b, v);
    case PNode::Kind::Or:
      return eval_pnode(low, pn.a, v) || eval_pnode(low, pn.b, v);
    case PNode::Kind::Iff:
      return eval_pnode(low, pn.a, v) == eval_pnode(low, pn.b, v);
  }
  AHB_UNREACHABLE("exhaustive switch");
}

/// The event-atom side of the analysis: a disjunction of c_recv_beat
/// atoms and `init`, meaningful only as the operand of a bounded once.
struct EventSet {
  bool any = false;
  std::vector<int> nodes;
  bool has_init = false;
};

constexpr const char* kFragmentHint =
    " (the model backend lowers boolean connectives, coord_live/"
    "coord_stopped, and within[<= k] over disjunctions of c_recv_beat "
    "and init)";

/// Walks the compiled postorder instruction array and produces the
/// PNode tree + observer requests, or a diagnostic. Working on the
/// compiled form (not the AST) means quantifiers arrive pre-expanded
/// and every bound is already a concrete tick count.
struct Analyzer {
  const std::vector<pltl::Instr>& instrs;
  Lowered& low;
  std::string error;

  std::vector<int> pidx;                ///< per instr: PNode index or -1
  std::vector<int> eidx;                ///< per instr: EventSet index or -1
  std::vector<EventSet> esets;

  bool fail(std::string msg) {
    if (error.empty()) error = std::move(msg);
    return false;
  }

  int add_pnode(PNode pn) {
    low.pnodes.push_back(pn);
    return static_cast<int>(low.pnodes.size()) - 1;
  }

  int add_eset(EventSet es) {
    esets.push_back(std::move(es));
    return static_cast<int>(esets.size()) - 1;
  }

  bool pred_operand(int instr_index) {
    if (pidx[static_cast<std::size_t>(instr_index)] >= 0) return true;
    return fail(std::string("event atoms and init may only appear inside a "
                            "within/once[...] disjunction") +
                kFragmentHint);
  }

  bool binary_pred(std::size_t i, PNode::Kind kind, bool negate_a) {
    const pltl::Instr& ins = instrs[i];
    if (!pred_operand(ins.a) || !pred_operand(ins.b)) return false;
    int a = pidx[static_cast<std::size_t>(ins.a)];
    const int b = pidx[static_cast<std::size_t>(ins.b)];
    if (negate_a) a = add_pnode({.kind = PNode::Kind::Not, .a = a});
    pidx[i] = add_pnode({.kind = kind, .a = a, .b = b});
    return true;
  }

  bool visit(std::size_t i) {
    using K = pltl::Node::Kind;
    const pltl::Instr& ins = instrs[i];
    switch (ins.op) {
      case K::True:
      case K::False:
        pidx[i] = add_pnode({.kind = PNode::Kind::Const,
                             .cval = ins.op == K::True});
        return true;
      case K::Init:
        eidx[i] = add_eset({.has_init = true});
        return true;
      case K::Event: {
        const auto beat_bit =
            1u << static_cast<int>(
                hb::ProtocolEvent::Kind::CoordinatorReceivedBeat);
        if (ins.protocol_bits != beat_bit || ins.channel_bits != 0) {
          return fail(std::string("unsupported event atom for the model "
                                  "backend: only c_recv_beat deliveries are "
                                  "observable on the model's channels") +
                      kFragmentHint);
        }
        EventSet es;
        if (ins.node < 0) {
          es.any = true;
        } else {
          es.nodes.push_back(ins.node);
        }
        eidx[i] = add_eset(std::move(es));
        return true;
      }
      case K::Fluent:
        if (ins.fluent == pltl::Fluent::CoordLive ||
            ins.fluent == pltl::Fluent::CoordStopped) {
          pidx[i] = add_pnode({.kind = PNode::Kind::Coord,
                               .cval = ins.fluent == pltl::Fluent::CoordLive});
          return true;
        }
        return fail(std::string("unsupported fluent for the model backend: "
                                "only coord_live/coord_stopped map onto "
                                "model state") +
                    kFragmentHint);
      case K::Not:
        if (!pred_operand(ins.a)) return false;
        pidx[i] = add_pnode({.kind = PNode::Kind::Not,
                             .a = pidx[static_cast<std::size_t>(ins.a)]});
        return true;
      case K::And:
        return binary_pred(i, PNode::Kind::And, /*negate_a=*/false);
      case K::Implies:
        return binary_pred(i, PNode::Kind::Or, /*negate_a=*/true);
      case K::Iff:
        return binary_pred(i, PNode::Kind::Iff, /*negate_a=*/false);
      case K::Or: {
        const int ea = eidx[static_cast<std::size_t>(ins.a)];
        const int eb = eidx[static_cast<std::size_t>(ins.b)];
        if (ea >= 0 && eb >= 0) {
          EventSet merged = esets[static_cast<std::size_t>(ea)];
          const EventSet& rhs = esets[static_cast<std::size_t>(eb)];
          merged.any = merged.any || rhs.any;
          merged.has_init = merged.has_init || rhs.has_init;
          merged.nodes.insert(merged.nodes.end(), rhs.nodes.begin(),
                              rhs.nodes.end());
          eidx[i] = add_eset(std::move(merged));
          return true;
        }
        if (ea >= 0 || eb >= 0) {
          return fail(std::string("cannot mix event atoms and state "
                                  "predicates in one disjunction; split the "
                                  "formula") +
                      kFragmentHint);
        }
        return binary_pred(i, PNode::Kind::Or, /*negate_a=*/false);
      }
      case K::Once: {
        if (ins.bound == hb::kNever) {
          return fail(std::string("unbounded once is not supported by the "
                                  "model backend; state the deadline with "
                                  "within[<= k]") +
                      kFragmentHint);
        }
        const int ea = eidx[static_cast<std::size_t>(ins.a)];
        if (ea < 0) {
          return fail(std::string("within/once in the model backend must "
                                  "range over c_recv_beat/init atoms") +
                      kFragmentHint);
        }
        // Clocks are int-typed slots; keep caps far inside Slot range.
        if (ins.bound > 8192) {
          return fail("within bound too large to model-check (resolved to " +
                      std::to_string(ins.bound) + " ticks, cap is 8192)");
        }
        const EventSet& es = esets[static_cast<std::size_t>(ea)];
        Observer ob;
        ob.any = es.any;
        ob.nodes = es.nodes;
        ob.has_init = es.has_init;
        ob.bound = static_cast<int>(ins.bound);
        ob.cmp = ins.cmp;
        low.observers.push_back(std::move(ob));
        pidx[i] = add_pnode(
            {.kind = PNode::Kind::Obs,
             .obs = static_cast<int>(low.observers.size()) - 1});
        return true;
      }
      case K::Previously:
      case K::Historically:
      case K::Since:
      case K::Before:
      case K::Holds:
        return fail(std::string("unbounded-history operator is not "
                                "supported by the model backend") +
                    kFragmentHint);
      case K::Forall:
      case K::Exists:
        break;  // expanded by compile(); unreachable below
    }
    AHB_UNREACHABLE("quantifiers are expanded at compile time");
  }

  bool run() {
    pidx.assign(instrs.size(), -1);
    eidx.assign(instrs.size(), -1);
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (!visit(i)) return false;
    }
    const int root = pidx.back();
    if (root < 0) {
      return fail(std::string("the formula's root is a bare event "
                              "disjunction; wrap it in within[...]") +
                  kFragmentHint);
    }
    low.root = root;
    return true;
  }
};

}  // namespace

FormulaModel build_formula_model(Flavor flavor, const BuildOptions& options,
                                 std::string_view formula_text) {
  FormulaModel result;

  auto parsed = pltl::parse(formula_text);
  if (!parsed.ok()) {
    result.error = "parse error at offset " +
                   std::to_string(parsed.error_at) + ": " + parsed.error;
    return result;
  }

  const int n = is_multi(flavor) ? options.participants : 1;
  pltl::BindParams params;
  params.variant = flavor;
  params.timing = options.timing.to_proto();
  params.fixed_bounds = options.use_corrected_bounds();
  params.participants = n;
  auto compiled = pltl::compile(*parsed.formula, params);
  if (!compiled.ok()) {
    result.error = "compile error: " + compiled.error;
    return result;
  }

  auto low = std::make_shared<Lowered>();
  Analyzer analyzer{compiled.compiled.instrs, *low};
  if (!analyzer.run()) {
    result.error = "lowering error: " + analyzer.error;
    return result;
  }

  HeartbeatModel::Instrument instrument = [low](ta::Network& net,
                                                HeartbeatModel::Handles& h) {
    low->active0 = h.active0;
    for (std::size_t k = 0; k < low->observers.size(); ++k) {
      Observer& ob = low->observers[k];
      const int id = static_cast<int>(k) + 1;
      ob.aut = net.add_automaton(strprintf("pltl_obs%d", id));
      ob.clk = net.add_clock(strprintf("pltl_obs%d_clk", id), ob.bound + 1);
      // With `init` in the disjunction the observer is born armed with
      // its clock at 0 (time 0 counts as a witness); otherwise it waits
      // for the first matching delivery, exactly like the join-flavor
      // watchdogs.
      int wait = -1;
      if (!ob.has_init) wait = net.add_location(ob.aut, "Waiting");
      ob.armed = net.add_location(ob.aut, "Armed");
      const ta::ClockId clk = ob.clk;
      const auto listen = [&](ta::ChanId chan) {
        if (chan.value < 0) return;
        if (wait >= 0) {
          net.add_edge(ob.aut,
                       ta::Edge{.src = wait,
                                .dst = ob.armed,
                                .chan = chan,
                                .dir = ta::SyncDir::Recv,
                                .effect =
                                    [clk](ta::StateMut& m) { m.reset(clk); },
                                .label = "pltl_arm"});
        }
        net.add_edge(ob.aut,
                     ta::Edge{.src = ob.armed,
                              .dst = ob.armed,
                              .chan = chan,
                              .dir = ta::SyncDir::Recv,
                              .effect =
                                  [clk](ta::StateMut& m) { m.reset(clk); },
                              .label = "pltl_observe"});
      };
      for (std::size_t pi = 0; pi < h.parts.size(); ++pi) {
        const int node = static_cast<int>(pi) + 1;
        if (!ob.any && std::find(ob.nodes.begin(), ob.nodes.end(), node) ==
                           ob.nodes.end()) {
          continue;
        }
        // CoordinatorReceivedBeat covers reply and join deliveries,
        // mirroring the runtime event and the R1 watchdog.
        listen(h.parts[pi].ch_deliver_beat);
        listen(h.parts[pi].ch_deliver_join);
      }
    }

    low->latch = net.add_automaton("pltl_latch");
    const int ok = net.add_location(low->latch, "Ok");
    low->latch_bad = net.add_location(low->latch, "Bad");
    const std::shared_ptr<const Lowered> shared = low;
    net.add_edge(low->latch,
                 ta::Edge{.src = ok,
                          .dst = low->latch_bad,
                          .guard =
                              [shared](const ta::StateView& v) {
                                return !eval_pnode(*shared, shared->root, v);
                              },
                          .label = "pltl_violate"});
    // The absorbing Bad location carries an always-enabled self-loop so
    // every violating run extends to an accepting cycle: NDFS finds a
    // cycle iff a violation is reachable.
    net.add_edge(low->latch, ta::Edge{.src = low->latch_bad,
                                      .dst = low->latch_bad,
                                      .label = "pltl_stay_bad"});
  };

  result.model = std::make_unique<HeartbeatModel>(
      HeartbeatModel::build(flavor, options, instrument));
  const std::shared_ptr<const Lowered> shared = low;
  result.violation = [shared](const ta::StateView& v) {
    return !eval_pnode(*shared, shared->root, v);
  };
  result.accepting = [shared](const ta::StateView& v) {
    return v.loc(shared->latch) == shared->latch_bad;
  };
  return result;
}

}  // namespace ahb::models
