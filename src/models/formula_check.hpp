// Backend 2 of the pLTL toolchain: lower a past-time-LTL formula onto
// the timed-automata model, so the same requirement text the runtime
// monitors check (src/rv/pltl) can also be verified exhaustively by the
// mc explorer and the NDFS accepting-cycle search.
//
// The lowering compiles the formula with the shared rv::pltl compiler
// (quantifiers expanded, bounds resolved against the model's timing),
// then maps the supported fragment onto history variables:
//  - `coord_live` / `coord_stopped` read the model's active0 flag,
//  - `within[<= k] (c_recv_beat [(i)] || init)` becomes an observer
//    automaton that resets a clock on every matching delivery to p[0]
//    (the exact idiom of the hand-built R1 watchdog, Fig. 9),
//  - boolean connectives become a state predicate over those pieces,
//  - a latch automaton (Ok -> Bad on a violating state, Bad absorbing
//    with a self-loop) turns the safety property into Büchi acceptance:
//    `accepting` marks exactly the runs that violated the formula.
//
// Everything outside that fragment (unbounded past operators, event
// atoms outside a within-disjunction, participant fluents) is rejected
// with a diagnostic rather than lowered approximately: a formula model
// either means exactly what the streaming monitor means, or it refuses
// to build.
//
// Instrumented models add automata outside the declared symmetry
// blocks; explore them with default SearchLimits (no symmetry, no POR).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "mc/explorer.hpp"
#include "models/heartbeat_model.hpp"

namespace ahb::models {

struct FormulaModel {
  /// The instrumented model; null when the formula failed to parse,
  /// compile, or fit the lowerable fragment (see `error`).
  std::unique_ptr<HeartbeatModel> model;
  /// True on states whose current formula value is false — feed to
  /// Explorer::reach for the safety verdict.
  mc::Pred violation;
  /// True once the latch has recorded a violation — feed to
  /// mc::find_accepting_cycle; a cycle exists iff a violation is
  /// reachable (the Bad location is absorbing and admits a self-loop).
  mc::Pred accepting;
  std::string error;

  bool ok() const { return model != nullptr; }
};

/// Builds the model for `flavor`/`options` with the formula's observers
/// and latch instrumented in. The formula's named bound parameters
/// (r1_bound, tmax, ...) resolve against `options` exactly as the
/// runtime monitors resolve them against a RunSpec.
FormulaModel build_formula_model(Flavor flavor, const BuildOptions& options,
                                 std::string_view formula_text);

}  // namespace ahb::models
