// Nested depth-first search for accepting cycles (repeated
// reachability). The source paper reduces its liveness requirements to
// timed reachability via watchdog monitors; this module additionally
// lets us state them directly as Büchi-style properties — e.g. "there is
// no infinite run along which p[1] has crashed but p[0] stays active" —
// and verify that the protocol (and especially the fixed variants)
// satisfies them without a hand-built watchdog bound.
#pragma once

#include "mc/explorer.hpp"

namespace ahb::mc {

struct LivenessResult {
  bool cycle_found = false;
  bool complete = false;  ///< search exhausted without hitting limits
  /// Lasso witness when found: states 0..stem_length form the stem; the
  /// remaining steps form the cycle, which closes back to the state at
  /// index stem_length.
  std::vector<TraceStep> lasso;
  std::size_t stem_length = 0;
  SearchStats stats;
};

/// Courcoubetis-Vardi-Wolper-Yannakakis nested DFS: searches for a cycle
/// through a state satisfying `accepting` that is reachable from the
/// initial state.
///
/// Reductions: `limits.symmetry` is honored — the search runs on the
/// orbit quotient, which preserves the existence of accepting cycles
/// for permutation-invariant `accepting` (a quotient lasso unrolls to a
/// real lasso and vice versa); the witness lasso renders canonical
/// representatives. `limits.por` is intentionally ignored: the nested
/// search expands every state fully, so the POR cycle proviso is
/// trivially satisfied and liveness verdicts stay sound.
LivenessResult find_accepting_cycle(const ta::Network& net,
                                    const Pred& accepting,
                                    const SearchLimits& limits = {});

}  // namespace ahb::mc
