#include "mc/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <deque>
#include <thread>

#include "util/contracts.hpp"

namespace ahb::mc {

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return std::min(requested, 256u);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

bool lex_less(std::span<const ta::Slot> a, std::span<const ta::Slot> b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// Committed-chain fusion bound: a chain longer than this interns an
// intermediate canonical state, which both bounds the recursion and acts
// as the POR cycle proviso (a committed cycle re-enters the store and
// terminates through duplicate detection).
constexpr std::uint32_t kFusionDepthCap = 64;

}  // namespace

Explorer::Explorer(const ta::Network& net) : net_(&net) {
  AHB_EXPECTS(net.frozen());
}

SearchResult Explorer::run(const StopFn& stop, const SearchLimits& limits) {
  const unsigned threads = resolve_threads(limits.threads);
  const bool reduced =
      limits.por || (limits.symmetry == ta::Symmetry::Participants &&
                     net_->codec().has_canonicalization());
  if (reduced) {
    if (threads == 1) return run_sequential_reduced(stop, limits);
    return run_parallel_reduced(stop, limits, threads);
  }
  if (threads == 1) return run_sequential(stop, limits);
  return run_parallel(stop, limits, threads);
}

SearchResult Explorer::run_sequential(const StopFn& stop,
                                      const SearchLimits& limits) {
  const auto start_time = std::chrono::steady_clock::now();
  Core core{StateStore{net_->codec(), limits.compression}, {}, 0, 0};

  SearchResult result;
  const auto finish = [&](bool complete) {
    result.complete = complete;
    result.stats.states = core.store.size();
    result.stats.transitions = core.transitions;
    result.stats.depth = core.depth;
    result.stats.store_bytes = core.store.memory_bytes();
    result.stats.elapsed = std::chrono::steady_clock::now() - start_time;
    return result;
  };

  ta::SuccessorScratch scratch;       // drives the enumeration
  ta::SuccessorScratch stop_scratch;  // available to the stop predicate
  ta::State state_buf;
  ta::State test_buf;

  const ta::State init = net_->initial_state();
  auto [init_index, inserted] = core.store.intern(init);
  AHB_ASSERT(inserted);
  core.parent.push_back(StateStore::kInvalidIndex);

  if (stop(init, stop_scratch)) {
    result.found = true;
    result.trace = rebuild_trace(core, init_index);
    // The initial state already answers the query: nothing beyond it was
    // asked for, so the trivial search is complete, not truncated.
    return finish(true);
  }

  // BFS layer by layer so `depth` is exact and depth limits are honest.
  enum class Outcome { kRunning, kFound, kLimit };
  std::deque<std::uint32_t> frontier{init_index};
  while (!frontier.empty()) {
    if (limits.max_depth != 0 && core.depth >= limits.max_depth) {
      return finish(false);
    }
    ++core.depth;
    std::deque<std::uint32_t> next_frontier;
    for (const std::uint32_t index : frontier) {
      core.store.load(index, state_buf);
      Outcome outcome = Outcome::kRunning;
      std::uint32_t found_index = 0;
      net_->for_each_successor(
          state_buf, scratch, [&](const ta::SuccessorView& v) {
            ++core.transitions;
            // Checked before interning so the store never exceeds
            // limits.max_states, no matter the remaining fan-out.
            if (core.store.size() >= limits.max_states) {
              outcome = Outcome::kLimit;
              return false;
            }
            auto [child, is_new] = core.store.intern(v.target);
            if (!is_new) return true;
            core.parent.push_back(index);
            test_buf.assign(v.target);
            if (stop(test_buf, stop_scratch)) {
              outcome = Outcome::kFound;
              found_index = child;
              return false;
            }
            next_frontier.push_back(child);
            return true;
          });
      if (outcome == Outcome::kFound) {
        result.found = true;
        result.trace = rebuild_trace(core, found_index);
        return finish(false);
      }
      if (outcome == Outcome::kLimit) return finish(false);
    }
    frontier = std::move(next_frontier);
  }
  return finish(true);
}

SearchResult Explorer::run_parallel(const StopFn& stop,
                                    const SearchLimits& limits,
                                    unsigned threads) {
  const auto start_time = std::chrono::steady_clock::now();
  ConcurrentStateStore store{net_->codec(), limits.compression};
  std::uint64_t depth = 0;
  std::uint64_t transitions = 0;

  SearchResult result;
  const auto finish = [&](bool complete) {
    result.complete = complete;
    result.stats.states = store.size();
    result.stats.transitions = transitions;
    result.stats.depth = depth;
    result.stats.store_bytes = store.memory_bytes();
    result.stats.elapsed = std::chrono::steady_clock::now() - start_time;
    return result;
  };

  // Per-worker state: scratches, reusable state buffers, the next-layer
  // indices it discovered, and its best (lexicographically smallest)
  // target hit of the current layer.
  struct Worker {
    ta::SuccessorScratch scratch;
    ta::SuccessorScratch stop_scratch;
    ta::State state_buf;
    ta::State test_buf;
    std::vector<std::uint32_t> next;
    std::uint64_t transitions = 0;
    bool found = false;
    std::uint32_t found_index = 0;
    ta::State found_state;
  };
  std::vector<Worker> workers(threads);

  const ta::State init = net_->initial_state();
  auto [init_index, inserted] =
      store.intern(init, ConcurrentStateStore::kInvalidIndex);
  AHB_ASSERT(inserted);

  if (stop(init, workers[0].stop_scratch)) {
    result.found = true;
    result.trace = rebuild_trace(store, init_index);
    return finish(true);
  }

  // Layer-synchronous BFS. Each layer, workers claim frontier chunks via
  // an atomic cursor, expand them through the allocation-free successor
  // API, and intern children (with parent links) into the sharded store.
  // A layer always runs to completion — target hits never abort it — so
  // the set of states discovered per layer, and with it every verdict,
  // depth and counterexample length, is independent of scheduling.
  std::vector<std::uint32_t> frontier{init_index};
  std::vector<std::uint32_t> next_frontier;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> limit_hit{false};
  std::atomic<bool> done{false};
  std::size_t chunk = 1;
  std::barrier<> sync(static_cast<std::ptrdiff_t>(threads));

  const auto expand = [&](Worker& w) {
    while (!limit_hit.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= frontier.size()) return;
      const std::size_t end = std::min(begin + chunk, frontier.size());
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t index = frontier[i];
        // Frontier states were published before the previous layer
        // barrier, so the lock-free decode is ordered.
        store.load(index, w.state_buf);
        net_->for_each_successor(
            w.state_buf, w.scratch, [&](const ta::SuccessorView& v) {
              ++w.transitions;
              if (store.size() >= limits.max_states) {
                limit_hit.store(true, std::memory_order_relaxed);
                return false;
              }
              auto [child, is_new] = store.intern(v.target, index);
              if (!is_new) return true;
              w.test_buf.assign(v.target);
              if (stop(w.test_buf, w.stop_scratch)) {
                // Which worker sees which target depends on scheduling;
                // the per-layer lexicographic minimum does not.
                if (!w.found || lex_less(v.target, w.found_state.slots())) {
                  w.found = true;
                  w.found_index = child;
                  w.found_state.assign(v.target);
                }
                return true;  // finish the layer regardless
              }
              w.next.push_back(child);
              return true;
            });
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (true) {
        sync.arrive_and_wait();  // layer start (or shutdown)
        if (done.load(std::memory_order_relaxed)) return;
        expand(workers[t]);
        sync.arrive_and_wait();  // layer end
      }
    });
  }

  bool complete = false;
  bool found = false;
  std::uint32_t found_index = 0;
  while (true) {
    if (limit_hit.load(std::memory_order_relaxed)) break;
    if (frontier.empty()) {
      complete = true;
      break;
    }
    if (limits.max_depth != 0 && depth >= limits.max_depth) break;
    ++depth;
    cursor.store(0, std::memory_order_relaxed);
    chunk = std::clamp<std::size_t>(
        frontier.size() / (static_cast<std::size_t>(threads) * 8), 1, 1024);
    sync.arrive_and_wait();  // release the layer
    expand(workers[0]);
    sync.arrive_and_wait();  // wait for stragglers

    const Worker* best = nullptr;
    for (const auto& w : workers) {
      if (!w.found) continue;
      if (best == nullptr ||
          lex_less(w.found_state.slots(), best->found_state.slots())) {
        best = &w;
      }
    }
    if (best != nullptr) {
      found = true;
      found_index = best->found_index;
      break;
    }
    next_frontier.clear();
    for (auto& w : workers) {
      next_frontier.insert(next_frontier.end(), w.next.begin(), w.next.end());
      w.next.clear();
    }
    frontier.swap(next_frontier);
  }

  done.store(true, std::memory_order_relaxed);
  sync.arrive_and_wait();  // let the pool observe `done` and exit
  for (auto& t : pool) t.join();
  for (const auto& w : workers) transitions += w.transitions;

  if (found) {
    result.found = true;
    result.trace = rebuild_trace(store, found_index);
    return finish(false);
  }
  return finish(complete);
}

SearchResult Explorer::run_sequential_reduced(const StopFn& stop,
                                              const SearchLimits& limits) {
  const auto start_time = std::chrono::steady_clock::now();
  Core core{StateStore{net_->codec(), limits.compression}, {}, 0, 0};
  const ta::StateCodec& codec = net_->codec();
  const bool canon = limits.symmetry == ta::Symmetry::Participants &&
                     codec.has_canonicalization();
  const bool por = limits.por;
  std::uint64_t fused = 0;

  SearchResult result;
  const auto finish = [&](bool complete) {
    result.complete = complete;
    result.stats.states = core.store.size();
    result.stats.transitions = core.transitions;
    result.stats.depth = core.depth;
    result.stats.fused = fused;
    result.stats.store_bytes = core.store.memory_bytes();
    result.stats.elapsed = std::chrono::steady_clock::now() - start_time;
    return result;
  };

  ta::SuccessorScratch scratch;
  ta::SuccessorScratch stop_scratch;
  ta::State state_buf;
  ta::State test_buf;
  ta::State cur_fused;
  // Fused-transient worklist: a swap-out stack of reusable State
  // buffers, so committed-chain expansion allocates only on high-water
  // growth.
  std::vector<ta::State> pending_states;
  std::vector<std::uint32_t> pending_depths;
  std::size_t pending_top = 0;
  const auto push_pending = [&](std::span<const ta::Slot> target,
                                std::uint32_t depth) {
    if (pending_top < pending_states.size()) {
      pending_states[pending_top].assign(target);
      pending_depths[pending_top] = depth;
    } else {
      pending_states.emplace_back(target);
      pending_depths.push_back(depth);
    }
    ++pending_top;
  };

  const ta::State init = net_->initial_state();
  test_buf.assign(init.slots());
  if (canon) codec.canonicalize(test_buf.slots_mut());
  auto [init_index, inserted] = core.store.intern(test_buf);
  AHB_ASSERT(inserted);
  core.parent.push_back(StateStore::kInvalidIndex);

  if (stop(init, stop_scratch)) {
    result.found = true;
    result.trace.push_back(TraceStep{"", init});
    return finish(true);
  }

  enum class Outcome { kRunning, kFound, kLimit };
  std::deque<std::uint32_t> frontier{init_index};
  while (!frontier.empty()) {
    if (limits.max_depth != 0 && core.depth >= limits.max_depth) {
      return finish(false);
    }
    ++core.depth;
    std::deque<std::uint32_t> next_frontier;
    for (const std::uint32_t index : frontier) {
      core.store.load(index, state_buf);
      Outcome outcome = Outcome::kRunning;
      std::uint32_t found_index = 0;
      bool found_transient = false;
      ta::State found_canon;

      const auto on_target = [&](std::span<const ta::Slot> target,
                                 std::uint32_t fuse_depth) -> bool {
        ++core.transitions;
        if (core.store.size() >= limits.max_states) {
          outcome = Outcome::kLimit;
          return false;
        }
        test_buf.assign(target);
        if (por && fuse_depth < kFusionDepthCap &&
            net_->committed_location_active(test_buf)) {
          // Transient: evaluate the predicate (fusion must not skip
          // error states), then expand through it without interning.
          if (stop(test_buf, stop_scratch)) {
            outcome = Outcome::kFound;
            found_transient = true;
            found_canon.assign(target);
            if (canon) codec.canonicalize(found_canon.slots_mut());
            return false;
          }
          ++fused;
          push_pending(target, fuse_depth + 1);
          return true;
        }
        if (canon) codec.canonicalize(test_buf.slots_mut());
        auto [child, is_new] = core.store.intern(test_buf);
        if (!is_new) return true;
        core.parent.push_back(index);
        if (stop(test_buf, stop_scratch)) {
          outcome = Outcome::kFound;
          found_index = child;
          return false;
        }
        next_frontier.push_back(child);
        return true;
      };
      const auto expand_one = [&](const ta::State& s, std::uint32_t depth) {
        if (por) {
          net_->for_each_successor_reduced(
              s, scratch, [&](const ta::SuccessorView& v) {
                return on_target(v.target, depth);
              });
        } else {
          net_->for_each_successor(
              s, scratch, [&](const ta::SuccessorView& v) {
                return on_target(v.target, depth);
              });
        }
      };

      pending_top = 0;
      expand_one(state_buf, 0);
      while (outcome == Outcome::kRunning && pending_top > 0) {
        // Swap the item out of its slot: its own expansion pushes new
        // pending entries into the slot just vacated.
        --pending_top;
        std::swap(cur_fused, pending_states[pending_top]);
        const std::uint32_t depth = pending_depths[pending_top];
        expand_one(cur_fused, depth);
      }

      if (outcome == Outcome::kFound) {
        result.found = true;
        std::vector<ta::State> chain;
        for (std::uint32_t i = found_transient ? index : found_index;
             i != StateStore::kInvalidIndex; i = core.parent[i]) {
          chain.push_back(core.store.get(i));
        }
        std::reverse(chain.begin(), chain.end());
        if (found_transient) chain.push_back(std::move(found_canon));
        result.trace = rebuild_trace_replay(chain, canon, por);
        return finish(false);
      }
      if (outcome == Outcome::kLimit) return finish(false);
    }
    frontier = std::move(next_frontier);
  }
  return finish(true);
}

SearchResult Explorer::run_parallel_reduced(const StopFn& stop,
                                            const SearchLimits& limits,
                                            unsigned threads) {
  const auto start_time = std::chrono::steady_clock::now();
  ConcurrentStateStore store{net_->codec(), limits.compression};
  const ta::StateCodec& codec = net_->codec();
  const bool canon = limits.symmetry == ta::Symmetry::Participants &&
                     codec.has_canonicalization();
  const bool por = limits.por;
  std::uint64_t depth = 0;
  std::uint64_t transitions = 0;
  std::uint64_t fused = 0;

  SearchResult result;
  const auto finish = [&](bool complete) {
    result.complete = complete;
    result.stats.states = store.size();
    result.stats.transitions = transitions;
    result.stats.depth = depth;
    result.stats.fused = fused;
    result.stats.store_bytes = store.memory_bytes();
    result.stats.elapsed = std::chrono::steady_clock::now() - start_time;
    return result;
  };

  // Per-worker state mirrors the unreduced parallel loop plus the fused
  // worklist and the canonical image of its best target hit. Which
  // worker finds which hit depends on scheduling; the per-layer
  // lexicographic minimum over canonical images does not, so verdicts,
  // state counts and depths stay thread-count-invariant (the replayed
  // trace path through a fused gap may differ between runs).
  struct Worker {
    ta::SuccessorScratch scratch;
    ta::SuccessorScratch stop_scratch;
    ta::State state_buf;
    ta::State test_buf;
    ta::State cur_fused;
    std::vector<ta::State> pending_states;
    std::vector<std::uint32_t> pending_depths;
    std::size_t pending_top = 0;
    std::vector<std::uint32_t> next;
    std::uint64_t transitions = 0;
    std::uint64_t fused = 0;
    bool found = false;
    bool found_transient = false;
    std::uint32_t found_index = 0;   ///< interned hit
    std::uint32_t found_parent = 0;  ///< stored ancestor of a transient hit
    ta::State found_canon;           ///< canonical image of the hit
  };
  std::vector<Worker> workers(threads);

  const ta::State init = net_->initial_state();
  workers[0].test_buf.assign(init.slots());
  if (canon) codec.canonicalize(workers[0].test_buf.slots_mut());
  auto [init_index, inserted] =
      store.intern(workers[0].test_buf, ConcurrentStateStore::kInvalidIndex);
  AHB_ASSERT(inserted);

  if (stop(init, workers[0].stop_scratch)) {
    result.found = true;
    result.trace.push_back(TraceStep{"", init});
    return finish(true);
  }

  std::vector<std::uint32_t> frontier{init_index};
  std::vector<std::uint32_t> next_frontier;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> limit_hit{false};
  std::atomic<bool> done{false};
  std::size_t chunk = 1;
  std::barrier<> sync(static_cast<std::ptrdiff_t>(threads));

  const auto expand = [&](Worker& w) {
    const auto record_hit = [&](const ta::State& hit_canon, bool transient,
                                std::uint32_t hit_index,
                                std::uint32_t parent_index) {
      if (!w.found || lex_less(hit_canon.slots(), w.found_canon.slots())) {
        w.found = true;
        w.found_transient = transient;
        w.found_index = hit_index;
        w.found_parent = parent_index;
        w.found_canon.assign(hit_canon.slots());
      }
    };
    const auto push_pending = [&](std::span<const ta::Slot> target,
                                  std::uint32_t fuse_depth) {
      if (w.pending_top < w.pending_states.size()) {
        w.pending_states[w.pending_top].assign(target);
        w.pending_depths[w.pending_top] = fuse_depth;
      } else {
        w.pending_states.emplace_back(target);
        w.pending_depths.push_back(fuse_depth);
      }
      ++w.pending_top;
    };
    ta::State hit_scratch;
    while (!limit_hit.load(std::memory_order_relaxed)) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= frontier.size()) return;
      const std::size_t end = std::min(begin + chunk, frontier.size());
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t index = frontier[i];
        store.load(index, w.state_buf);

        const auto on_target = [&](std::span<const ta::Slot> target,
                                   std::uint32_t fuse_depth) -> bool {
          ++w.transitions;
          if (store.size() >= limits.max_states) {
            limit_hit.store(true, std::memory_order_relaxed);
            return false;
          }
          w.test_buf.assign(target);
          if (por && fuse_depth < kFusionDepthCap &&
              net_->committed_location_active(w.test_buf)) {
            if (stop(w.test_buf, w.stop_scratch)) {
              hit_scratch.assign(target);
              if (canon) codec.canonicalize(hit_scratch.slots_mut());
              record_hit(hit_scratch, /*transient=*/true, 0, index);
              return true;  // finish the layer regardless
            }
            ++w.fused;
            push_pending(target, fuse_depth + 1);
            return true;
          }
          if (canon) codec.canonicalize(w.test_buf.slots_mut());
          auto [child, is_new] = store.intern(w.test_buf, index);
          if (!is_new) return true;
          if (stop(w.test_buf, w.stop_scratch)) {
            record_hit(w.test_buf, /*transient=*/false, child, index);
            return true;  // finish the layer regardless
          }
          w.next.push_back(child);
          return true;
        };
        const auto expand_one = [&](const ta::State& s, std::uint32_t d) {
          if (por) {
            net_->for_each_successor_reduced(
                s, w.scratch, [&](const ta::SuccessorView& v) {
                  return on_target(v.target, d);
                });
          } else {
            net_->for_each_successor(
                s, w.scratch, [&](const ta::SuccessorView& v) {
                  return on_target(v.target, d);
                });
          }
        };

        w.pending_top = 0;
        expand_one(w.state_buf, 0);
        while (!limit_hit.load(std::memory_order_relaxed) &&
               w.pending_top > 0) {
          --w.pending_top;
          std::swap(w.cur_fused, w.pending_states[w.pending_top]);
          expand_one(w.cur_fused, w.pending_depths[w.pending_top]);
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (true) {
        sync.arrive_and_wait();  // layer start (or shutdown)
        if (done.load(std::memory_order_relaxed)) return;
        expand(workers[t]);
        sync.arrive_and_wait();  // layer end
      }
    });
  }

  bool complete = false;
  const Worker* best = nullptr;
  while (true) {
    if (limit_hit.load(std::memory_order_relaxed)) break;
    if (frontier.empty()) {
      complete = true;
      break;
    }
    if (limits.max_depth != 0 && depth >= limits.max_depth) break;
    ++depth;
    cursor.store(0, std::memory_order_relaxed);
    chunk = std::clamp<std::size_t>(
        frontier.size() / (static_cast<std::size_t>(threads) * 8), 1, 1024);
    sync.arrive_and_wait();  // release the layer
    expand(workers[0]);
    sync.arrive_and_wait();  // wait for stragglers

    for (const auto& w : workers) {
      if (!w.found) continue;
      if (best == nullptr ||
          lex_less(w.found_canon.slots(), best->found_canon.slots())) {
        best = &w;
      }
    }
    if (best != nullptr) break;
    next_frontier.clear();
    for (auto& w : workers) {
      next_frontier.insert(next_frontier.end(), w.next.begin(), w.next.end());
      w.next.clear();
    }
    frontier.swap(next_frontier);
  }

  done.store(true, std::memory_order_relaxed);
  sync.arrive_and_wait();  // let the pool observe `done` and exit
  for (auto& t : pool) t.join();
  for (const auto& w : workers) {
    transitions += w.transitions;
    fused += w.fused;
  }

  if (best != nullptr) {
    result.found = true;
    std::vector<ta::State> chain;
    for (std::uint32_t i =
             best->found_transient ? best->found_parent : best->found_index;
         i != ConcurrentStateStore::kInvalidIndex; i = store.parent_of(i)) {
      chain.push_back(store.get(i));
    }
    std::reverse(chain.begin(), chain.end());
    if (best->found_transient) chain.push_back(best->found_canon);
    result.trace = rebuild_trace_replay(chain, canon, por);
    return finish(false);
  }
  return finish(complete);
}

SearchResult Explorer::reach(const Pred& target, const SearchLimits& limits) {
  AHB_EXPECTS(target != nullptr);
  return run(
      [&](const ta::State& s, ta::SuccessorScratch&) {
        return target(ta::StateView{*net_, s});
      },
      limits);
}

SearchResult Explorer::find_deadlock(const SearchLimits& limits) {
  return run(
      [&](const ta::State& s, ta::SuccessorScratch& scratch) {
        return !net_->has_successor(s, scratch);
      },
      limits);
}

SearchStats Explorer::explore_all(const SearchLimits& limits) {
  return run([](const ta::State&, ta::SuccessorScratch&) { return false; },
             limits)
      .stats;
}

SearchResult Explorer::check_invariant(const Pred& invariant,
                                       const SearchLimits& limits) {
  AHB_EXPECTS(invariant != nullptr);
  SearchResult r = run(
      [&](const ta::State& s, ta::SuccessorScratch&) {
        return !invariant(ta::StateView{*net_, s});
      },
      limits);
  return r;
}

std::vector<TraceStep> Explorer::rebuild_trace(
    const Core& core, std::uint32_t target_index) const {
  // Walk parent links back to the root, then recompute the action labels
  // forward. Labels are not stored during the search (that would cost a
  // string per state); re-deriving them along the single counterexample
  // path is cheap.
  std::vector<std::uint32_t> path;
  for (std::uint32_t i = target_index; i != StateStore::kInvalidIndex;
       i = core.parent[i]) {
    path.push_back(i);
  }
  std::reverse(path.begin(), path.end());

  ta::SuccessorScratch scratch;
  std::vector<TraceStep> trace;
  trace.reserve(path.size());
  trace.push_back(TraceStep{"", core.store.get(path.front())});
  for (std::size_t i = 1; i < path.size(); ++i) {
    // Decode both endpoints: compressed stores have no raw() spans.
    const ta::State parent_state = core.store.get(path[i - 1]);
    ta::State step_state = core.store.get(path[i]);
    std::string action =
        net_->action_between(parent_state, step_state.slots(), scratch);
    trace.push_back(TraceStep{std::move(action), std::move(step_state)});
  }
  return trace;
}

std::vector<TraceStep> Explorer::rebuild_trace(
    const ConcurrentStateStore& store, std::uint32_t target_index) const {
  // Same walk as the sequential variant, over the sharded store's parent
  // links. Every parent was recorded at intern time from the previous
  // BFS layer, so the path length always equals the target's layer.
  std::vector<std::uint32_t> path;
  for (std::uint32_t i = target_index;
       i != ConcurrentStateStore::kInvalidIndex; i = store.parent_of(i)) {
    path.push_back(i);
  }
  std::reverse(path.begin(), path.end());

  ta::SuccessorScratch scratch;
  std::vector<TraceStep> trace;
  trace.reserve(path.size());
  trace.push_back(TraceStep{"", store.get(path.front())});
  for (std::size_t i = 1; i < path.size(); ++i) {
    const ta::State parent_state = store.get(path[i - 1]);
    ta::State step_state = store.get(path[i]);
    std::string action =
        net_->action_between(parent_state, step_state.slots(), scratch);
    trace.push_back(TraceStep{std::move(action), std::move(step_state)});
  }
  return trace;
}

std::vector<TraceStep> Explorer::rebuild_trace_replay(
    const std::vector<ta::State>& canonical_chain, bool canon,
    bool por) const {
  std::vector<TraceStep> trace;
  if (canonical_chain.empty()) return trace;
  const ta::StateCodec& codec = net_->codec();
  ta::State canon_buf;
  const auto matches = [&](const ta::State& real, const ta::State& image) {
    canon_buf.assign(real.slots());
    if (canon) codec.canonicalize(canon_buf.slots_mut());
    return std::ranges::equal(canon_buf.slots(), image.slots());
  };

  // Replay starts from the *real* initial state, whose canonical image
  // is canonical_chain[0]; every appended state is then a real
  // successor, so participant ids in the rendered trace are genuine.
  trace.push_back(TraceStep{"", net_->initial_state()});

  // Per stored step, a bounded DFS over real successors: match directly
  // first (shortest extension), then descend through transient states —
  // fusion only ever skipped transients, so gaps close within the
  // fusion depth cap. This is the cold counterexample path; the
  // allocating successors() API keeps it simple.
  const std::uint32_t budget0 = 1 + (por ? kFusionDepthCap : 0);
  const auto extend = [&](auto&& self, const ta::State& from,
                          const ta::State& image,
                          std::uint32_t budget) -> bool {
    if (budget == 0) return false;
    const std::vector<ta::Transition> succs = net_->successors(from);
    for (const auto& t : succs) {
      if (matches(t.target, image)) {
        trace.push_back(TraceStep{net_->label_of(t), t.target});
        return true;
      }
    }
    if (!por) return false;
    for (const auto& t : succs) {
      if (!net_->committed_location_active(t.target)) continue;
      trace.push_back(TraceStep{net_->label_of(t), t.target});
      if (self(self, t.target, image, budget - 1)) return true;
      trace.pop_back();
    }
    return false;
  };

  for (std::size_t i = 1; i < canonical_chain.size(); ++i) {
    // Copy: extend() grows `trace`, which would invalidate a reference
    // into it.
    const ta::State cur = trace.back().state;
    if (!extend(extend, cur, canonical_chain[i], budget0)) {
      // Unreachable when the model honors the equivariance contract;
      // keep the canonical image so a broken trace stays inspectable.
      trace.push_back(TraceStep{"<unreplayed>", canonical_chain[i]});
    }
  }
  return trace;
}

}  // namespace ahb::mc
