#include "mc/explorer.hpp"

#include <algorithm>
#include <deque>

#include "util/contracts.hpp"

namespace ahb::mc {

Explorer::Explorer(const ta::Network& net) : net_(&net) {
  AHB_EXPECTS(net.frozen());
}

SearchResult Explorer::run(const std::function<bool(const ta::State&)>& stop,
                           const SearchLimits& limits) {
  const auto start_time = std::chrono::steady_clock::now();
  Core core{StateStore{net_->slot_count()}, {}, 0, 0};

  SearchResult result;
  const auto finish = [&](bool complete) {
    result.complete = complete;
    result.stats.states = core.store.size();
    result.stats.transitions = core.transitions;
    result.stats.depth = core.depth;
    result.stats.store_bytes = core.store.memory_bytes();
    result.stats.elapsed = std::chrono::steady_clock::now() - start_time;
    return result;
  };

  const ta::State init = net_->initial_state();
  auto [init_index, inserted] = core.store.intern(init);
  AHB_ASSERT(inserted);
  core.parent.push_back(StateStore::kInvalidIndex);

  if (stop(init)) {
    result.found = true;
    result.trace = rebuild_trace(core, init_index);
    return finish(false);
  }

  // BFS layer by layer so `depth` is exact and depth limits are honest.
  std::deque<std::uint32_t> frontier{init_index};
  while (!frontier.empty()) {
    if (limits.max_depth != 0 && core.depth >= limits.max_depth) {
      return finish(false);
    }
    ++core.depth;
    std::deque<std::uint32_t> next_frontier;
    for (const std::uint32_t index : frontier) {
      const ta::State state = core.store.get(index);
      for (const auto& t : net_->successors(state)) {
        ++core.transitions;
        auto [child, is_new] = core.store.intern(t.target);
        if (!is_new) continue;
        core.parent.push_back(index);
        if (stop(t.target)) {
          result.found = true;
          result.trace = rebuild_trace(core, child);
          return finish(false);
        }
        if (core.store.size() >= limits.max_states) {
          return finish(false);
        }
        next_frontier.push_back(child);
      }
    }
    frontier = std::move(next_frontier);
  }
  return finish(true);
}

SearchResult Explorer::reach(const Pred& target, const SearchLimits& limits) {
  AHB_EXPECTS(target != nullptr);
  return run(
      [&](const ta::State& s) {
        return target(ta::StateView{*net_, s});
      },
      limits);
}

SearchResult Explorer::find_deadlock(const SearchLimits& limits) {
  return run(
      [&](const ta::State& s) { return net_->successors(s).empty(); },
      limits);
}

SearchStats Explorer::explore_all(const SearchLimits& limits) {
  return run([](const ta::State&) { return false; }, limits).stats;
}

SearchResult Explorer::check_invariant(const Pred& invariant,
                                       const SearchLimits& limits) {
  AHB_EXPECTS(invariant != nullptr);
  SearchResult r = run(
      [&](const ta::State& s) {
        return !invariant(ta::StateView{*net_, s});
      },
      limits);
  return r;
}

std::vector<TraceStep> Explorer::rebuild_trace(
    const Core& core, std::uint32_t target_index) const {
  // Walk parent links back to the root, then recompute the action labels
  // forward. Labels are not stored during the search (that would cost a
  // string per state); re-deriving them along the single counterexample
  // path is cheap.
  std::vector<std::uint32_t> path;
  for (std::uint32_t i = target_index; i != StateStore::kInvalidIndex;
       i = core.parent[i]) {
    path.push_back(i);
  }
  std::reverse(path.begin(), path.end());

  std::vector<TraceStep> trace;
  trace.reserve(path.size());
  trace.push_back(TraceStep{"", core.store.get(path.front())});
  for (std::size_t i = 1; i < path.size(); ++i) {
    const ta::State parent_state = core.store.get(path[i - 1]);
    const ta::State child_state = core.store.get(path[i]);
    std::string action = "<unknown>";
    for (const auto& t : net_->successors(parent_state)) {
      if (t.target == child_state) {
        action = net_->label_of(t);
        break;
      }
    }
    trace.push_back(TraceStep{std::move(action), child_state});
  }
  return trace;
}

}  // namespace ahb::mc
