#include "mc/lts.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "mc/store.hpp"
#include "util/contracts.hpp"

namespace ahb::mc {

int Lts::label_id(const std::string& name) {
  for (std::size_t i = 0; i < alphabet.size(); ++i) {
    if (alphabet[i] == name) return static_cast<int>(i);
  }
  alphabet.push_back(name);
  return static_cast<int>(alphabet.size()) - 1;
}

std::vector<Lts::Edge> Lts::out(int s) const {
  std::vector<Edge> result;
  for (const auto& e : edges) {
    if (e.src == s) result.push_back(e);
  }
  return result;
}

Lts extract_lts(const ta::Network& net, std::size_t max_states) {
  AHB_EXPECTS(net.frozen());
  Lts lts;
  StateStore store{net.slot_count()};
  ta::SuccessorScratch scratch;
  ta::State state_buf;

  const ta::State init = net.initial_state();
  auto [init_index, inserted] = store.intern(init);
  AHB_ASSERT(inserted);
  lts.initial = static_cast<int>(init_index);

  std::deque<std::uint32_t> frontier{init_index};
  while (!frontier.empty()) {
    const std::uint32_t index = frontier.front();
    frontier.pop_front();
    state_buf.assign(store.raw(index));
    net.for_each_successor(state_buf, scratch, [&](const ta::SuccessorView& v) {
      auto [child, is_new] = store.intern(v.target);
      AHB_ASSERT(store.size() <= max_states);
      lts.edges.push_back(Lts::Edge{static_cast<int>(index),
                                    lts.label_id(net.label_of(v)),
                                    static_cast<int>(child)});
      if (is_new) frontier.push_back(child);
    });
  }
  lts.state_count = static_cast<int>(store.size());
  return lts;
}

Lts hide(const Lts& lts,
         const std::function<bool(const std::string&)>& is_hidden) {
  Lts out;
  out.initial = lts.initial;
  out.state_count = lts.state_count;
  const int tau = out.label_id(kTau);
  std::vector<int> remap(lts.alphabet.size(), tau);
  for (std::size_t i = 0; i < lts.alphabet.size(); ++i) {
    if (!is_hidden(lts.alphabet[i])) {
      remap[i] = out.label_id(lts.alphabet[i]);
    }
  }
  out.edges.reserve(lts.edges.size());
  for (const auto& e : lts.edges) {
    out.edges.push_back(
        Lts::Edge{e.src, remap[static_cast<std::size_t>(e.label)], e.dst});
  }
  return out;
}

namespace {

/// Builds an adjacency index: per state, its sorted (label, dst) pairs.
std::vector<std::vector<std::pair<int, int>>> adjacency(const Lts& lts) {
  std::vector<std::vector<std::pair<int, int>>> adj(
      static_cast<std::size_t>(lts.state_count));
  for (const auto& e : lts.edges) {
    adj[static_cast<std::size_t>(e.src)].emplace_back(e.label, e.dst);
  }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return adj;
}

/// Rebuilds a quotient LTS from a state->block assignment.
Lts quotient(const Lts& lts, const std::vector<int>& block, int block_count) {
  Lts out;
  out.alphabet = lts.alphabet;
  out.state_count = block_count;
  out.initial = block[static_cast<std::size_t>(lts.initial)];
  std::set<std::tuple<int, int, int>> seen;
  for (const auto& e : lts.edges) {
    const int bs = block[static_cast<std::size_t>(e.src)];
    const int bd = block[static_cast<std::size_t>(e.dst)];
    if (seen.insert({bs, e.label, bd}).second) {
      out.edges.push_back(Lts::Edge{bs, e.label, bd});
    }
  }
  return out;
}

}  // namespace

Lts bisim_reduce(const Lts& lts) {
  if (lts.state_count == 0) return lts;
  const auto adj = adjacency(lts);

  // Kanellakis-Smolka style refinement on signatures: a state's signature
  // is its set of (label, target-block) pairs; refine until stable.
  std::vector<int> block(static_cast<std::size_t>(lts.state_count), 0);
  int block_count = 1;
  while (true) {
    std::map<std::pair<int, std::set<std::pair<int, int>>>, int> signature_ids;
    std::vector<int> next(block.size());
    for (std::size_t s = 0; s < block.size(); ++s) {
      std::set<std::pair<int, int>> sig;
      for (const auto& [label, dst] : adj[s]) {
        sig.insert({label, block[static_cast<std::size_t>(dst)]});
      }
      auto key = std::make_pair(block[s], std::move(sig));
      auto [it, inserted] = signature_ids.try_emplace(
          std::move(key), static_cast<int>(signature_ids.size()));
      next[s] = it->second;
    }
    const int next_count = static_cast<int>(signature_ids.size());
    const bool stable = next_count == block_count;
    block = std::move(next);
    block_count = next_count;
    if (stable) break;
  }
  return quotient(lts, block, block_count);
}

namespace {

/// tau-closure of a set of states (in-place fixpoint).
std::set<int> tau_closure(
    const std::vector<std::vector<std::pair<int, int>>>& adj, int tau,
    std::set<int> states) {
  std::deque<int> work(states.begin(), states.end());
  while (!work.empty()) {
    const int s = work.front();
    work.pop_front();
    for (const auto& [label, dst] : adj[static_cast<std::size_t>(s)]) {
      if (label == tau && states.insert(dst).second) work.push_back(dst);
    }
  }
  return states;
}

}  // namespace

Lts weak_trace_reduce(const Lts& lts) {
  Lts visible = lts;
  int tau = -1;
  for (std::size_t i = 0; i < visible.alphabet.size(); ++i) {
    if (visible.alphabet[i] == kTau) tau = static_cast<int>(i);
  }
  const auto adj = adjacency(visible);

  // Subset construction over visible labels.
  std::map<std::set<int>, int> ids;
  std::vector<std::set<int>> sets;
  const auto intern = [&](std::set<int> s) {
    auto [it, inserted] = ids.try_emplace(s, static_cast<int>(sets.size()));
    if (inserted) sets.push_back(std::move(s));
    return it->second;
  };

  Lts det;
  det.alphabet = visible.alphabet;
  det.initial = intern(tau_closure(adj, tau, {visible.initial}));
  std::deque<int> work{det.initial};
  std::set<int> processed;
  while (!work.empty()) {
    const int id = work.front();
    work.pop_front();
    if (!processed.insert(id).second) continue;
    // Group successor sets by visible label.
    std::map<int, std::set<int>> moves;
    for (const int s : sets[static_cast<std::size_t>(id)]) {
      for (const auto& [label, dst] : adj[static_cast<std::size_t>(s)]) {
        if (label != tau) moves[label].insert(dst);
      }
    }
    for (auto& [label, targets] : moves) {
      const int dst = intern(tau_closure(adj, tau, std::move(targets)));
      det.edges.push_back(Lts::Edge{id, label, dst});
      if (!processed.contains(dst)) work.push_back(dst);
    }
  }
  det.state_count = static_cast<int>(sets.size());

  // The determinized LTS has no tau edges left, so strong bisimulation
  // minimization coincides with Moore minimization here.
  return bisim_reduce(det);
}

}  // namespace ahb::mc
