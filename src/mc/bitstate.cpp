#include "mc/bitstate.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace ahb::mc {

BitstateFilter::BitstateFilter(int log2_bits, int hashes_per_state)
    : k_(hashes_per_state) {
  AHB_EXPECTS(log2_bits >= 10 && log2_bits <= 40);
  AHB_EXPECTS(hashes_per_state >= 1 && hashes_per_state <= 8);
  const std::uint64_t bit_total = 1ULL << log2_bits;
  bits_.assign(static_cast<std::size_t>(bit_total / 64), 0);
  mask_ = bit_total - 1;
}

namespace {

/// Derives the i-th probe position via splitmix-style remixing, which
/// decorrelates the k probes of one state.
std::uint64_t probe(std::uint64_t hash, int i) {
  std::uint64_t state = hash + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

}  // namespace

bool BitstateFilter::insert(std::uint64_t state_hash) {
  bool fresh = false;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = probe(state_hash, i) & mask_;
    std::uint64_t& word = bits_[static_cast<std::size_t>(bit / 64)];
    const std::uint64_t flag = 1ULL << (bit % 64);
    if ((word & flag) == 0) {
      word |= flag;
      fresh = true;
    }
  }
  if (fresh) ++inserted_;
  return fresh;
}

bool BitstateFilter::contains(std::uint64_t state_hash) const {
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = probe(state_hash, i) & mask_;
    const std::uint64_t word = bits_[static_cast<std::size_t>(bit / 64)];
    if ((word & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

BitstateResult reach_bitstate(const ta::Network& net, const Pred& target,
                              int log2_bits, const SearchLimits& limits) {
  AHB_EXPECTS(net.frozen());
  AHB_EXPECTS(target != nullptr);
  const auto start_time = std::chrono::steady_clock::now();
  const std::uint64_t max_depth =
      limits.max_depth != 0 ? limits.max_depth : 1'000'000;

  // With compression requested, hash the codec's bit-packed image instead
  // of the raw slot vector. Both are injective, so either is a valid
  // filter key; the packed image mixes every slot's entropy into fewer
  // bytes, which measurably lowers the double-hash collision rate on
  // models whose slots are mostly narrow booleans. None keeps the
  // historical raw-vector hash bit-for-bit.
  const ta::StateCodec* codec = limits.compression != ta::Compression::None
                                    ? &net.codec()
                                    : nullptr;
  std::vector<std::byte> packed(codec != nullptr ? codec->packed_bytes() : 0);
  const auto state_hash = [&](const ta::State& s) {
    return codec != nullptr ? codec->packed_hash(s.slots(), packed) : s.hash();
  };

  BitstateFilter filter{log2_bits};
  std::uint64_t transitions = 0;
  std::uint64_t deepest = 0;

  struct Frame {
    ta::State state;
    std::vector<ta::Transition> successors;
    std::size_t next = 0;
  };

  BitstateResult result;
  const auto finish = [&] {
    result.stats.states = filter.inserted();
    result.stats.transitions = transitions;
    result.stats.depth = deepest;
    result.stats.store_bytes = filter.memory_bytes();
    result.stats.elapsed = std::chrono::steady_clock::now() - start_time;
    return result;
  };
  const auto build_trace = [&](const std::vector<Frame>& stack) {
    result.trace.clear();
    for (std::size_t i = 0; i < stack.size(); ++i) {
      std::string action;
      if (i > 0) {
        const auto& prev = stack[i - 1];
        // The transition taken from the previous frame is the one just
        // before its `next` cursor.
        action = net.label_of(prev.successors[prev.next - 1]);
      }
      result.trace.push_back(TraceStep{std::move(action), stack[i].state});
    }
  };

  std::vector<Frame> stack;
  {
    ta::State init = net.initial_state();
    filter.insert(state_hash(init));
    if (target(ta::StateView{net, init})) {
      result.found = true;
      stack.push_back(Frame{std::move(init), {}, 0});
      build_trace(stack);
      return finish();
    }
    auto successors = net.successors(init);
    stack.push_back(Frame{std::move(init), std::move(successors), 0});
  }

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next >= top.successors.size()) {
      stack.pop_back();
      continue;
    }
    ta::Transition& t = top.successors[top.next++];
    ++transitions;
    if (filter.inserted() >= limits.max_states) return finish();
    if (!filter.insert(state_hash(t.target))) continue;  // probably visited

    if (target(ta::StateView{net, t.target})) {
      result.found = true;
      stack.push_back(Frame{std::move(t.target), {}, 0});
      build_trace(stack);
      return finish();
    }
    if (stack.size() >= max_depth) continue;  // depth-bounded
    auto successors = net.successors(t.target);
    stack.push_back(Frame{std::move(t.target), std::move(successors), 0});
    deepest = std::max<std::uint64_t>(deepest, stack.size());
  }
  return finish();
}

}  // namespace ahb::mc
