#include "mc/concurrent_store.hpp"

#include <cstring>

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace ahb::mc {

namespace {
// Small per-shard start: with 64 shards even tiny models pay little, and
// big runs grow each shard geometrically like StateStore does.
constexpr std::size_t kInitialTableSize = 1u << 8;
}  // namespace

ConcurrentStateStore::ConcurrentStateStore(std::size_t stride)
    : stride_(stride) {
  AHB_EXPECTS(stride > 0);
  for (auto& shard : shards_) {
    shard.table.assign(kInitialTableSize, kInvalidIndex);
  }
}

const ta::Slot* ConcurrentStateStore::slots_of(const Shard& shard,
                                               std::uint32_t offset) const {
  const auto [seg, within] = segment_of(offset);
  return shard.segments[static_cast<std::size_t>(seg)].get() +
         static_cast<std::size_t>(within) * stride_;
}

std::uint32_t ConcurrentStateStore::probe(const Shard& shard,
                                          std::span<const ta::Slot> slots,
                                          std::uint64_t hash,
                                          bool& found) const {
  const std::size_t mask = shard.table.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (true) {
    const std::uint32_t entry = shard.table[i];
    if (entry == kInvalidIndex) {
      found = false;
      return static_cast<std::uint32_t>(i);
    }
    if (shard.hashes[entry] == hash &&
        std::memcmp(slots_of(shard, entry), slots.data(),
                    stride_ * sizeof(ta::Slot)) == 0) {
      found = true;
      return static_cast<std::uint32_t>(i);
    }
    i = (i + 1) & mask;
  }
}

void ConcurrentStateStore::grow_table(Shard& shard) {
  std::vector<std::uint32_t> old = std::move(shard.table);
  shard.table.assign(old.size() * 2, kInvalidIndex);
  const std::size_t mask = shard.table.size() - 1;
  for (std::uint32_t entry : old) {
    if (entry == kInvalidIndex) continue;
    std::size_t i = static_cast<std::size_t>(shard.hashes[entry]) & mask;
    while (shard.table[i] != kInvalidIndex) i = (i + 1) & mask;
    shard.table[i] = entry;
  }
}

std::pair<std::uint32_t, bool> ConcurrentStateStore::intern(
    std::span<const ta::Slot> slots, std::uint32_t parent) {
  AHB_EXPECTS(slots.size() == stride_);
  const std::uint64_t hash = hash_span(slots);
  // Top bits pick the shard; probe() uses the low bits, so shard siblings
  // still spread over the whole table.
  const auto shard_id =
      static_cast<std::uint32_t>(hash >> (64 - kShardBits));
  Shard& shard = shards_[shard_id];

  std::uint32_t offset;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    bool found = false;
    const std::uint32_t slot = probe(shard, slots, hash, found);
    if (found) {
      return {(shard_id << kOffsetBits) | shard.table[slot], false};
    }

    AHB_ASSERT(shard.count < kMaxPerShard);
    offset = shard.count;
    const auto [seg, within] = segment_of(offset);
    auto& segment = shard.segments[static_cast<std::size_t>(seg)];
    if (!segment) {
      const std::size_t cap =
          seg == 0 ? kSeg0States : (1u << (kSeg0Bits + seg - 1));
      segment = std::make_unique<ta::Slot[]>(cap * stride_);
      shard.arena_slots += cap * stride_;
    }
    std::memcpy(segment.get() + static_cast<std::size_t>(within) * stride_,
                slots.data(), stride_ * sizeof(ta::Slot));
    shard.hashes.push_back(hash);
    shard.parents.push_back(parent);
    shard.table[slot] = offset;
    ++shard.count;
    if (static_cast<std::size_t>(shard.count) * 10 >=
        shard.table.size() * 7) {
      grow_table(shard);
    }
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  return {(shard_id << kOffsetBits) | offset, true};
}

std::span<const ta::Slot> ConcurrentStateStore::raw(
    std::uint32_t index) const {
  const std::uint32_t shard_id = index >> kOffsetBits;
  const std::uint32_t offset = index & kMaxPerShard;
  return {slots_of(shards_[shard_id], offset), stride_};
}

ta::State ConcurrentStateStore::get(std::uint32_t index) const {
  return ta::State{raw(index)};
}

std::uint32_t ConcurrentStateStore::parent_of(std::uint32_t index) const {
  const std::uint32_t shard_id = index >> kOffsetBits;
  const std::uint32_t offset = index & kMaxPerShard;
  return shards_[shard_id].parents[offset];
}

std::size_t ConcurrentStateStore::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : shards_) {
    bytes += shard.arena_slots * sizeof(ta::Slot) +
             shard.hashes.capacity() * sizeof(std::uint64_t) +
             shard.parents.capacity() * sizeof(std::uint32_t) +
             shard.table.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace ahb::mc
