#include "mc/concurrent_store.hpp"

#include <cstring>

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace ahb::mc {

namespace {
// Small per-shard start: with 64 shards even tiny models pay little, and
// big runs grow each shard geometrically like StateStore does.
constexpr std::size_t kInitialTableSize = 1u << 8;
constexpr std::size_t kInitialCompTableSize = 1u << 6;

/// Full-avalanche mix (splitmix64 finalizer) for inline keys; see the
/// StateStore twin for why a multiply-only mix is not enough here.
inline std::uint64_t mix_key(std::uint64_t key) {
  std::uint64_t h = key;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

// Reusable per-thread encode/decode buffers. Sizes differ between store
// instances, so every use resizes first (a no-op when unchanged).
thread_local std::vector<std::byte> tl_packed;
thread_local std::vector<std::byte> tl_entry;
thread_local std::vector<std::byte> tl_key;
thread_local std::vector<std::uint32_t> tl_indices;
}  // namespace

const std::byte* ConcurrentStateStore::Arena::entry(
    std::uint32_t offset, std::size_t entry_bytes) const {
  const auto [seg, within] = segment_of(offset);
  return segments[static_cast<std::size_t>(seg)].get() +
         static_cast<std::size_t>(within) * entry_bytes;
}

std::byte* ConcurrentStateStore::Arena::ensure(std::uint32_t offset,
                                               std::size_t entry_bytes) {
  const auto [seg, within] = segment_of(offset);
  auto& segment = segments[static_cast<std::size_t>(seg)];
  if (!segment) {
    const std::size_t cap =
        seg == 0 ? kSeg0Entries : (1u << (kSeg0Bits + seg - 1));
    segment = std::make_unique<std::byte[]>(cap * entry_bytes);
    allocated_bytes += cap * entry_bytes;
  }
  return segment.get() + static_cast<std::size_t>(within) * entry_bytes;
}

ConcurrentStateStore::ConcurrentStateStore(std::size_t stride)
    : stride_(stride), entry_bytes_(stride * sizeof(ta::Slot)) {
  AHB_EXPECTS(stride > 0);
  for (auto& shard : shards_) {
    shard.table.assign(kInitialTableSize, kInvalidIndex);
  }
}

ConcurrentStateStore::ConcurrentStateStore(const ta::StateCodec& codec,
                                           ta::Compression mode)
    : codec_(&codec), mode_(mode), stride_(codec.slot_count()) {
  AHB_EXPECTS(stride_ > 0);
  switch (mode_) {
    case ta::Compression::None:
      codec_ = nullptr;  // byte-identical to the stride-only constructor
      entry_bytes_ = stride_ * sizeof(ta::Slot);
      break;
    case ta::Compression::Pack:
      entry_bytes_ = codec.packed_bytes();
      break;
    case ta::Compression::Collapse:
      root_fast_ = codec.root_bits() <= 64;
      entry_bytes_ = root_fast_ ? sizeof(std::uint64_t) : codec.root_bytes();
      break;
  }
  for (auto& shard : shards_) {
    shard.table.assign(kInitialTableSize, kInvalidIndex);
    if (mode_ == ta::Compression::Collapse) {
      shard.comps.resize(codec.component_count());
      for (std::size_t c = 0; c < codec.component_count(); ++c) {
        if (codec.component(c).index_bits == 0) continue;
        if (codec.component(c).key_bits <= 64) {
          shard.comps[c].fast_table.assign(kInitialCompTableSize,
                                           CompShard::FastSlot{});
        } else {
          shard.comps[c].table.assign(kInitialCompTableSize, kInvalidIndex);
        }
      }
    }
  }
}

std::uint32_t ConcurrentStateStore::probe(const Shard& shard,
                                          std::span<const std::byte> entry,
                                          std::uint64_t hash,
                                          bool& found) const {
  const std::size_t mask = shard.table.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  const bool check_hash = mode_ == ta::Compression::None;
  while (true) {
    const std::uint32_t stored = shard.table[i];
    if (stored == kInvalidIndex) {
      found = false;
      return static_cast<std::uint32_t>(i);
    }
    if ((!check_hash || shard.hashes[stored] == hash) &&
        std::memcmp(shard.arena.entry(stored, entry_bytes_), entry.data(),
                    entry_bytes_) == 0) {
      found = true;
      return static_cast<std::uint32_t>(i);
    }
    i = (i + 1) & mask;
  }
}

std::uint64_t ConcurrentStateStore::entry_hash(const std::byte* entry) const {
  if (!root_fast_) return hash_bytes({entry, entry_bytes_});
  std::uint64_t key;
  std::memcpy(&key, entry, sizeof key);
  return mix_key(key);
}

void ConcurrentStateStore::grow_table(Shard& shard) {
  std::vector<std::uint32_t> old = std::move(shard.table);
  shard.table.assign(old.size() * 2, kInvalidIndex);
  const std::size_t mask = shard.table.size() - 1;
  for (std::uint32_t entry : old) {
    if (entry == kInvalidIndex) continue;
    const std::uint64_t hash =
        mode_ == ta::Compression::None
            ? shard.hashes[entry]
            : entry_hash(shard.arena.entry(entry, entry_bytes_));
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (shard.table[i] != kInvalidIndex) i = (i + 1) & mask;
    shard.table[i] = entry;
  }
}

std::uint32_t ConcurrentStateStore::comp_intern(
    Shard& shard, std::size_t c, std::span<const std::byte> key) {
  CompShard& comp = shard.comps[c];
  const std::size_t key_bytes = codec_->component(c).key_bytes;
  const std::uint64_t hash = hash_bytes(key);
  const std::size_t mask = comp.table.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (true) {
    const std::uint32_t entry = comp.table[i];
    if (entry == kInvalidIndex) break;
    if (std::memcmp(comp.keys.entry(entry, key_bytes), key.data(),
                    key_bytes) == 0) {
      return entry;
    }
    i = (i + 1) & mask;
  }
  AHB_ASSERT(comp.count < kMaxPerShard);
  const auto index = comp.count;
  std::memcpy(comp.keys.ensure(index, key_bytes), key.data(), key_bytes);
  comp.table[i] = index;
  ++comp.count;
  if (static_cast<std::size_t>(comp.count) * 10 >= comp.table.size() * 7) {
    std::vector<std::uint32_t> old = std::move(comp.table);
    comp.table.assign(old.size() * 2, kInvalidIndex);
    const std::size_t grown_mask = comp.table.size() - 1;
    for (std::uint32_t entry : old) {
      if (entry == kInvalidIndex) continue;
      std::size_t j = static_cast<std::size_t>(hash_bytes(
                          {comp.keys.entry(entry, key_bytes), key_bytes})) &
                      grown_mask;
      while (comp.table[j] != kInvalidIndex) j = (j + 1) & grown_mask;
      comp.table[j] = entry;
    }
  }
  return index;
}

std::uint32_t ConcurrentStateStore::comp_intern_fast(Shard& shard,
                                                     std::size_t c,
                                                     std::uint64_t key) {
  CompShard& comp = shard.comps[c];
  const std::size_t mask = comp.fast_table.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix_key(key)) & mask;
  while (true) {
    const CompShard::FastSlot& slot = comp.fast_table[i];
    if (slot.index == kInvalidIndex) break;
    if (slot.key == key) return slot.index;
    i = (i + 1) & mask;
  }
  AHB_ASSERT(comp.count < kMaxPerShard);
  const auto index = comp.count;
  // Published keys must be readable lock-free, so they live in the
  // never-moving arena as 8-byte entries; the probe table may reallocate
  // (it is only touched under the shard lock).
  std::memcpy(comp.keys.ensure(index, sizeof(std::uint64_t)), &key,
              sizeof(std::uint64_t));
  comp.fast_table[i] = CompShard::FastSlot{key, index};
  ++comp.count;
  if (static_cast<std::size_t>(comp.count) * 10 >=
      comp.fast_table.size() * 7) {
    std::vector<CompShard::FastSlot> old = std::move(comp.fast_table);
    comp.fast_table.assign(old.size() * 2, CompShard::FastSlot{});
    const std::size_t grown_mask = comp.fast_table.size() - 1;
    for (const auto& slot : old) {
      if (slot.index == kInvalidIndex) continue;
      std::size_t j = static_cast<std::size_t>(mix_key(slot.key)) & grown_mask;
      while (comp.fast_table[j].index != kInvalidIndex) {
        j = (j + 1) & grown_mask;
      }
      comp.fast_table[j] = slot;
    }
  }
  return index;
}

std::uint64_t ConcurrentStateStore::encode_entry_locked(
    Shard& shard, std::span<const ta::Slot> slots,
    std::span<const std::byte> packed, std::vector<std::byte>& entry,
    std::vector<std::uint32_t>& indices, std::vector<std::byte>& key) {
  if (mode_ == ta::Compression::Pack) {
    entry.assign(packed.begin(), packed.end());
    return hash_bytes(packed);
  }
  indices.resize(codec_->component_count());
  for (std::size_t c = 0; c < codec_->component_count(); ++c) {
    const auto& comp = codec_->component(c);
    if (comp.index_bits == 0) {
      indices[c] = 0;
      continue;
    }
    if (comp.key_bits <= 64) {
      indices[c] =
          comp_intern_fast(shard, c, codec_->pack_component_key(c, slots));
      continue;
    }
    key.resize(comp.key_bytes);
    codec_->pack_component(c, slots, key.data());
    indices[c] = comp_intern(shard, c, {key.data(), comp.key_bytes});
  }
  entry.resize(entry_bytes_);
  if (root_fast_) {
    const std::uint64_t root_key = codec_->pack_root_key(indices, slots);
    std::memcpy(entry.data(), &root_key, sizeof root_key);
    return mix_key(root_key);
  }
  codec_->pack_root(indices, slots, entry.data());
  return hash_bytes({entry.data(), entry_bytes_});
}

std::pair<std::uint32_t, bool> ConcurrentStateStore::intern(
    std::span<const ta::Slot> slots, std::uint32_t parent) {
  AHB_EXPECTS(slots.size() == stride_);
  // Shard selection must be independent of shard-local encoding, so it
  // hashes an injective shard-independent image: the raw slot bytes for
  // None and Collapse (Collapse used to pay a full bit-pack here just
  // for the shard hash — a measurable part of its wall-time overhead),
  // or the bit-packed image for Pack, where packing doubles as the
  // entry encoding.
  std::uint64_t shard_hash;
  if (mode_ == ta::Compression::Pack) {
    tl_packed.resize(codec_->packed_bytes());
    shard_hash = codec_->packed_hash(slots, tl_packed);
  } else {
    shard_hash = hash_span(slots);
  }
  const auto shard_id =
      static_cast<std::uint32_t>(shard_hash >> (64 - kShardBits));
  Shard& shard = shards_[shard_id];

  std::uint32_t offset;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::span<const std::byte> entry;
    std::uint64_t probe_hash;
    if (mode_ == ta::Compression::None) {
      entry = std::as_bytes(slots);
      probe_hash = shard_hash;
    } else if (mode_ == ta::Compression::Pack) {
      entry = std::span<const std::byte>{tl_packed};
      probe_hash = shard_hash;
    } else {
      probe_hash =
          encode_entry_locked(shard, slots, tl_packed, tl_entry, tl_indices,
                              tl_key);
      entry = std::span<const std::byte>{tl_entry.data(), entry_bytes_};
    }

    bool found = false;
    const std::uint32_t slot = probe(shard, entry, probe_hash, found);
    if (found) {
      return {(shard_id << kOffsetBits) | shard.table[slot], false};
    }

    AHB_ASSERT(shard.count < kMaxPerShard);
    offset = shard.count;
    std::memcpy(shard.arena.ensure(offset, entry_bytes_), entry.data(),
                entry_bytes_);
    if (mode_ == ta::Compression::None) shard.hashes.push_back(shard_hash);
    shard.parents.push_back(parent);
    shard.table[slot] = offset;
    ++shard.count;
    if (static_cast<std::size_t>(shard.count) * 10 >=
        shard.table.size() * 7) {
      grow_table(shard);
    }
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  return {(shard_id << kOffsetBits) | offset, true};
}

std::span<const ta::Slot> ConcurrentStateStore::raw(
    std::uint32_t index) const {
  AHB_EXPECTS(mode_ == ta::Compression::None);
  const std::uint32_t shard_id = index >> kOffsetBits;
  const std::uint32_t offset = index & kMaxPerShard;
  return {reinterpret_cast<const ta::Slot*>(
              shards_[shard_id].arena.entry(offset, entry_bytes_)),
          stride_};
}

ta::State ConcurrentStateStore::get(std::uint32_t index) const {
  ta::State s(stride_);
  load(index, s);
  return s;
}

void ConcurrentStateStore::load(std::uint32_t index, ta::State& out) const {
  const std::uint32_t shard_id = index >> kOffsetBits;
  const std::uint32_t offset = index & kMaxPerShard;
  const Shard& shard = shards_[shard_id];
  const std::byte* entry = shard.arena.entry(offset, entry_bytes_);
  if (out.size() != stride_) out = ta::State(stride_);
  switch (mode_) {
    case ta::Compression::None: {
      out.assign({reinterpret_cast<const ta::Slot*>(entry), stride_});
      return;
    }
    case ta::Compression::Pack: {
      codec_->unpack(entry, out.slots_mut());
      return;
    }
    case ta::Compression::Collapse: {
      tl_indices.resize(codec_->component_count());
      if (root_fast_) {
        std::uint64_t root_key;
        std::memcpy(&root_key, entry, sizeof root_key);
        codec_->unpack_root_key(root_key, tl_indices, out.slots_mut());
      } else {
        codec_->unpack_root(entry, tl_indices, out.slots_mut());
      }
      for (std::size_t c = 0; c < codec_->component_count(); ++c) {
        const auto& comp = codec_->component(c);
        if (comp.index_bits != 0 && comp.key_bits <= 64) {
          std::uint64_t fast_key;
          std::memcpy(&fast_key,
                      shard.comps[c].keys.entry(tl_indices[c],
                                                sizeof(std::uint64_t)),
                      sizeof(std::uint64_t));
          codec_->unpack_component_key(c, fast_key, out.slots_mut());
          continue;
        }
        // Constant components store nothing: all member fields are
        // zero-width, so the decode never dereferences the key pointer.
        const std::byte* key =
            comp.index_bits == 0
                ? nullptr
                : shard.comps[c].keys.entry(tl_indices[c], comp.key_bytes);
        codec_->unpack_component(c, key, out.slots_mut());
      }
      return;
    }
  }
}

std::uint32_t ConcurrentStateStore::parent_of(std::uint32_t index) const {
  const std::uint32_t shard_id = index >> kOffsetBits;
  const std::uint32_t offset = index & kMaxPerShard;
  return shards_[shard_id].parents[offset];
}

std::size_t ConcurrentStateStore::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : shards_) {
    bytes += shard.arena.allocated_bytes +
             shard.hashes.capacity() * sizeof(std::uint64_t) +
             shard.parents.capacity() * sizeof(std::uint32_t) +
             shard.table.capacity() * sizeof(std::uint32_t);
    for (const auto& comp : shard.comps) {
      bytes += comp.keys.allocated_bytes +
               comp.table.capacity() * sizeof(std::uint32_t) +
               comp.fast_table.capacity() * sizeof(CompShard::FastSlot);
    }
  }
  return bytes;
}

}  // namespace ahb::mc
