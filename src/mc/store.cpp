#include "mc/store.hpp"

#include <algorithm>
#include <cstring>

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace ahb::mc {

namespace {
constexpr std::size_t kInitialTableSize = 1u << 12;
// Component tables start small: even large sweeps see only hundreds of
// distinct local sub-vectors per automaton.
constexpr std::size_t kInitialCompTableSize = 1u << 6;

/// Full-avalanche mix (splitmix64 finalizer) for inline keys. The
/// stores mask the *low* hash bits down to the table size, and the keys
/// are structured bit-concatenations, so a cheap multiply-only mix
/// clusters probe chains once the table outgrows the cache.
inline std::uint64_t mix_key(std::uint64_t key) {
  std::uint64_t h = key;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}
}  // namespace

StateStore::StateStore(std::size_t stride) : stride_(stride) {
  AHB_EXPECTS(stride > 0);
  table_.assign(kInitialTableSize, kInvalidIndex);
}

StateStore::StateStore(const ta::StateCodec& codec, ta::Compression mode)
    : codec_(&codec), mode_(mode), stride_(codec.slot_count()) {
  AHB_EXPECTS(stride_ > 0);
  table_.assign(kInitialTableSize, kInvalidIndex);
  if (mode_ == ta::Compression::None) {
    codec_ = nullptr;  // byte-identical to the stride-only constructor
    return;
  }
  entry_bytes_ = mode_ == ta::Compression::Pack ? codec.packed_bytes()
                                                : codec.root_bytes();
  if (mode_ == ta::Compression::Collapse && codec.root_bits() <= 64) {
    root_fast_ = true;
    entry_bytes_ = sizeof(std::uint64_t);
  }
  entry_scratch_.resize(std::max({codec.packed_bytes(), codec.root_bytes(),
                                  sizeof(std::uint64_t)}));
  if (mode_ == ta::Compression::Collapse) {
    comps_.resize(codec.component_count());
    index_scratch_.resize(codec.component_count());
    std::size_t max_key = 0;
    for (std::size_t c = 0; c < codec.component_count(); ++c) {
      if (codec.component(c).index_bits == 0) continue;
      if (codec.component(c).key_bits <= 64) {
        comps_[c].fast_table.assign(kInitialCompTableSize,
                                    CompTable::FastSlot{});
      } else {
        comps_[c].table.assign(kInitialCompTableSize, kInvalidIndex);
        max_key = std::max(max_key, codec.component(c).key_bytes);
      }
    }
    key_scratch_.resize(max_key);
  }
}

// ---- None-mode probing (raw slots + stored hashes) ----

std::uint32_t StateStore::probe(std::span<const ta::Slot> slots,
                                std::uint64_t hash, bool& found) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (true) {
    const std::uint32_t entry = table_[i];
    if (entry == kInvalidIndex) {
      found = false;
      return static_cast<std::uint32_t>(i);
    }
    if (hashes_[entry] == hash) {
      const ta::Slot* stored = arena_.data() + entry * stride_;
      if (std::memcmp(stored, slots.data(), stride_ * sizeof(ta::Slot)) == 0) {
        found = true;
        return static_cast<std::uint32_t>(i);
      }
    }
    i = (i + 1) & mask;
  }
}

// ---- compressed-mode probing (short encoded entries, no stored
// hashes: the memcmp is cheap and dropping the hash array is a large
// part of the footprint win) ----

std::uint32_t StateStore::probe_bytes(std::span<const std::byte> key,
                                      std::uint64_t hash, bool& found) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (true) {
    const std::uint32_t entry = table_[i];
    if (entry == kInvalidIndex) {
      found = false;
      return static_cast<std::uint32_t>(i);
    }
    if (std::memcmp(entry_of(entry), key.data(), entry_bytes_) == 0) {
      found = true;
      return static_cast<std::uint32_t>(i);
    }
    i = (i + 1) & mask;
  }
}

std::uint64_t StateStore::entry_hash(const std::byte* entry) const {
  if (!root_fast_) return hash_bytes({entry, entry_bytes_});
  std::uint64_t key;
  std::memcpy(&key, entry, sizeof key);
  return mix_key(key);
}

void StateStore::grow_table() {
  std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kInvalidIndex);
  const std::size_t mask = table_.size() - 1;
  for (std::uint32_t entry : old) {
    if (entry == kInvalidIndex) continue;
    const std::uint64_t hash = mode_ == ta::Compression::None
                                   ? hashes_[entry]
                                   : entry_hash(entry_of(entry));
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (table_[i] != kInvalidIndex) i = (i + 1) & mask;
    table_[i] = entry;
  }
}

// ---- component tables (Collapse) ----

std::uint32_t StateStore::comp_intern(std::size_t c,
                                      std::span<const std::byte> key) {
  CompTable& comp = comps_[c];
  const std::size_t key_bytes = codec_->component(c).key_bytes;
  const std::uint64_t hash = hash_bytes(key);
  const std::size_t mask = comp.table.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (true) {
    const std::uint32_t entry = comp.table[i];
    if (entry == kInvalidIndex) break;
    if (std::memcmp(comp.keys.data() + entry * key_bytes, key.data(),
                    key_bytes) == 0) {
      return entry;
    }
    i = (i + 1) & mask;
  }
  const auto index = comp.count;
  comp.keys.insert(comp.keys.end(), key.begin(), key.end());
  comp.table[i] = index;
  ++comp.count;
  if (static_cast<std::size_t>(comp.count) * 10 >= comp.table.size() * 7) {
    std::vector<std::uint32_t> old = std::move(comp.table);
    comp.table.assign(old.size() * 2, kInvalidIndex);
    const std::size_t grown_mask = comp.table.size() - 1;
    for (std::uint32_t entry : old) {
      if (entry == kInvalidIndex) continue;
      std::size_t j = static_cast<std::size_t>(hash_bytes(
                          {comp.keys.data() + entry * key_bytes, key_bytes})) &
                      grown_mask;
      while (comp.table[j] != kInvalidIndex) j = (j + 1) & grown_mask;
      comp.table[j] = entry;
    }
  }
  return index;
}

std::uint32_t StateStore::comp_intern_fast(std::size_t c, std::uint64_t key) {
  CompTable& comp = comps_[c];
  const std::size_t mask = comp.fast_table.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix_key(key)) & mask;
  while (true) {
    const CompTable::FastSlot& slot = comp.fast_table[i];
    if (slot.index == kInvalidIndex) break;
    if (slot.key == key) return slot.index;
    i = (i + 1) & mask;
  }
  const auto index = comp.count;
  comp.fast_table[i] = CompTable::FastSlot{key, index};
  comp.fast_keys.push_back(key);
  ++comp.count;
  if (static_cast<std::size_t>(comp.count) * 10 >=
      comp.fast_table.size() * 7) {
    std::vector<CompTable::FastSlot> old = std::move(comp.fast_table);
    comp.fast_table.assign(old.size() * 2, CompTable::FastSlot{});
    const std::size_t grown_mask = comp.fast_table.size() - 1;
    for (const auto& slot : old) {
      if (slot.index == kInvalidIndex) continue;
      std::size_t j = static_cast<std::size_t>(mix_key(slot.key)) & grown_mask;
      while (comp.fast_table[j].index != kInvalidIndex) {
        j = (j + 1) & grown_mask;
      }
      comp.fast_table[j] = slot;
    }
  }
  return index;
}

std::uint32_t StateStore::comp_find_fast(std::size_t c,
                                         std::uint64_t key) const {
  const CompTable& comp = comps_[c];
  const std::size_t mask = comp.fast_table.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix_key(key)) & mask;
  while (true) {
    const CompTable::FastSlot& slot = comp.fast_table[i];
    if (slot.index == kInvalidIndex) return kInvalidIndex;
    if (slot.key == key) return slot.index;
    i = (i + 1) & mask;
  }
}

std::uint32_t StateStore::comp_find(std::size_t c,
                                    std::span<const std::byte> key) const {
  const CompTable& comp = comps_[c];
  const std::size_t key_bytes = codec_->component(c).key_bytes;
  const std::size_t mask = comp.table.size() - 1;
  std::size_t i =
      static_cast<std::size_t>(hash_bytes(key)) & mask;
  while (true) {
    const std::uint32_t entry = comp.table[i];
    if (entry == kInvalidIndex) return kInvalidIndex;
    if (std::memcmp(comp.keys.data() + entry * key_bytes, key.data(),
                    key_bytes) == 0) {
      return entry;
    }
    i = (i + 1) & mask;
  }
}

bool StateStore::encode_entry(std::span<const ta::Slot> slots,
                              bool insert_components,
                              std::uint64_t& hash) const {
  if (mode_ == ta::Compression::Pack) {
    codec_->pack(slots, entry_scratch_.data());
    hash = hash_bytes({entry_scratch_.data(), entry_bytes_});
    return true;
  }
  for (std::size_t c = 0; c < codec_->component_count(); ++c) {
    if (codec_->component(c).index_bits == 0) {
      index_scratch_[c] = 0;
      continue;
    }
    if (codec_->component(c).key_bits <= 64) {
      const std::uint64_t key = codec_->pack_component_key(c, slots);
      if (insert_components) {
        // comp_intern mutates the component tables; intern() is the only
        // caller that reaches here, find() passes insert_components=false.
        index_scratch_[c] =
            const_cast<StateStore*>(this)->comp_intern_fast(c, key);
      } else {
        const std::uint32_t idx = comp_find_fast(c, key);
        if (idx == kInvalidIndex) return false;
        index_scratch_[c] = idx;
      }
      continue;
    }
    codec_->pack_component(c, slots, key_scratch_.data());
    const std::span<const std::byte> key{key_scratch_.data(),
                                         codec_->component(c).key_bytes};
    if (insert_components) {
      index_scratch_[c] = const_cast<StateStore*>(this)->comp_intern(c, key);
    } else {
      const std::uint32_t idx = comp_find(c, key);
      if (idx == kInvalidIndex) return false;
      index_scratch_[c] = idx;
    }
  }
  if (root_fast_) {
    const std::uint64_t key = codec_->pack_root_key(index_scratch_, slots);
    std::memcpy(entry_scratch_.data(), &key, sizeof key);
    hash = mix_key(key);
    return true;
  }
  codec_->pack_root(index_scratch_, slots, entry_scratch_.data());
  hash = hash_bytes({entry_scratch_.data(), entry_bytes_});
  return true;
}

// ---- public API ----

std::pair<std::uint32_t, bool> StateStore::intern(const ta::State& s) {
  return intern(s.slots());
}

std::pair<std::uint32_t, bool> StateStore::intern(
    std::span<const ta::Slot> slots) {
  AHB_EXPECTS(slots.size() == stride_);
  if (mode_ == ta::Compression::None) {
    const std::uint64_t hash = hash_span(slots);
    bool found = false;
    std::uint32_t slot = probe(slots, hash, found);
    if (found) return {table_[slot], false};

    const auto index = static_cast<std::uint32_t>(count_);
    arena_.insert(arena_.end(), slots.begin(), slots.end());
    hashes_.push_back(hash);
    table_[slot] = index;
    ++count_;
    if (count_ * 10 >= table_.size() * 7) grow_table();
    return {index, true};
  }

  std::uint64_t hash = 0;
  encode_entry(slots, /*insert_components=*/true, hash);
  bool found = false;
  const std::uint32_t slot = probe_bytes(
      {entry_scratch_.data(), entry_bytes_}, hash, found);
  if (found) return {table_[slot], false};

  const auto index = static_cast<std::uint32_t>(count_);
  bytes_.insert(bytes_.end(), entry_scratch_.begin(),
                entry_scratch_.begin() + static_cast<std::ptrdiff_t>(
                                             entry_bytes_));
  table_[slot] = index;
  ++count_;
  if (count_ * 10 >= table_.size() * 7) grow_table();
  return {index, true};
}

std::uint32_t StateStore::find(const ta::State& s) const {
  AHB_EXPECTS(s.size() == stride_);
  bool found = false;
  if (mode_ == ta::Compression::None) {
    const std::uint32_t slot = probe(s.slots(), s.hash(), found);
    return found ? table_[slot] : kInvalidIndex;
  }
  std::uint64_t hash = 0;
  if (!encode_entry(s.slots(), /*insert_components=*/false, hash)) {
    return kInvalidIndex;
  }
  const std::uint32_t slot =
      probe_bytes({entry_scratch_.data(), entry_bytes_}, hash, found);
  return found ? table_[slot] : kInvalidIndex;
}

ta::State StateStore::get(std::uint32_t index) const {
  ta::State s(stride_);
  load(index, s);
  return s;
}

void StateStore::load(std::uint32_t index, ta::State& out) const {
  AHB_EXPECTS(index < count_);
  if (out.size() != stride_) out = ta::State(stride_);
  switch (mode_) {
    case ta::Compression::None: {
      out.assign({arena_.data() + index * stride_, stride_});
      return;
    }
    case ta::Compression::Pack: {
      codec_->unpack(entry_of(index), out.slots_mut());
      return;
    }
    case ta::Compression::Collapse: {
      if (root_fast_) {
        std::uint64_t key;
        std::memcpy(&key, entry_of(index), sizeof key);
        codec_->unpack_root_key(key, index_scratch_, out.slots_mut());
      } else {
        codec_->unpack_root(entry_of(index), index_scratch_, out.slots_mut());
      }
      for (std::size_t c = 0; c < codec_->component_count(); ++c) {
        const auto& comp = codec_->component(c);
        if (comp.index_bits != 0 && comp.key_bits <= 64) {
          codec_->unpack_component_key(c, comps_[c].fast_keys[index_scratch_[c]],
                                       out.slots_mut());
          continue;
        }
        // Constant components store nothing: all member fields are
        // zero-width, so the decode never dereferences the key pointer.
        const std::byte* key =
            comp.index_bits == 0
                ? nullptr
                : comps_[c].keys.data() + index_scratch_[c] * comp.key_bytes;
        codec_->unpack_component(c, key, out.slots_mut());
      }
      return;
    }
  }
}

std::span<const ta::Slot> StateStore::raw(std::uint32_t index) const {
  AHB_EXPECTS(mode_ == ta::Compression::None);
  AHB_EXPECTS(index < count_);
  return {arena_.data() + index * stride_, stride_};
}

std::size_t StateStore::memory_bytes() const {
  std::size_t bytes = arena_.capacity() * sizeof(ta::Slot) +
                      hashes_.capacity() * sizeof(std::uint64_t) +
                      bytes_.capacity() +
                      table_.capacity() * sizeof(std::uint32_t);
  for (const auto& comp : comps_) {
    bytes += comp.keys.capacity() +
             comp.table.capacity() * sizeof(std::uint32_t) +
             comp.fast_table.capacity() * sizeof(CompTable::FastSlot) +
             comp.fast_keys.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace ahb::mc
