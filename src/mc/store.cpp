#include "mc/store.hpp"

#include <cstring>

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace ahb::mc {

namespace {
constexpr std::size_t kInitialTableSize = 1u << 12;
}

StateStore::StateStore(std::size_t stride) : stride_(stride) {
  AHB_EXPECTS(stride > 0);
  table_.assign(kInitialTableSize, kInvalidIndex);
}

std::uint32_t StateStore::probe(std::span<const ta::Slot> slots,
                                std::uint64_t hash, bool& found) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (true) {
    const std::uint32_t entry = table_[i];
    if (entry == kInvalidIndex) {
      found = false;
      return static_cast<std::uint32_t>(i);
    }
    if (hashes_[entry] == hash) {
      const ta::Slot* stored = arena_.data() + entry * stride_;
      if (std::memcmp(stored, slots.data(), stride_ * sizeof(ta::Slot)) == 0) {
        found = true;
        return static_cast<std::uint32_t>(i);
      }
    }
    i = (i + 1) & mask;
  }
}

void StateStore::grow_table() {
  std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kInvalidIndex);
  const std::size_t mask = table_.size() - 1;
  for (std::uint32_t entry : old) {
    if (entry == kInvalidIndex) continue;
    std::size_t i = static_cast<std::size_t>(hashes_[entry]) & mask;
    while (table_[i] != kInvalidIndex) i = (i + 1) & mask;
    table_[i] = entry;
  }
}

std::pair<std::uint32_t, bool> StateStore::intern(const ta::State& s) {
  return intern(s.slots());
}

std::pair<std::uint32_t, bool> StateStore::intern(
    std::span<const ta::Slot> slots) {
  AHB_EXPECTS(slots.size() == stride_);
  const std::uint64_t hash = hash_span(slots);
  bool found = false;
  std::uint32_t slot = probe(slots, hash, found);
  if (found) return {table_[slot], false};

  const auto index = static_cast<std::uint32_t>(count_);
  arena_.insert(arena_.end(), slots.begin(), slots.end());
  hashes_.push_back(hash);
  table_[slot] = index;
  ++count_;

  if (count_ * 10 >= table_.size() * 7) {
    grow_table();
  }
  return {index, true};
}

std::uint32_t StateStore::find(const ta::State& s) const {
  AHB_EXPECTS(s.size() == stride_);
  bool found = false;
  const std::uint32_t slot = probe(s.slots(), s.hash(), found);
  return found ? table_[slot] : kInvalidIndex;
}

ta::State StateStore::get(std::uint32_t index) const {
  AHB_EXPECTS(index < count_);
  ta::State s(stride_);
  const ta::Slot* stored = arena_.data() + index * stride_;
  for (std::size_t i = 0; i < stride_; ++i) s[i] = stored[i];
  return s;
}

std::span<const ta::Slot> StateStore::raw(std::uint32_t index) const {
  AHB_EXPECTS(index < count_);
  return {arena_.data() + index * stride_, stride_};
}

std::size_t StateStore::memory_bytes() const {
  return arena_.capacity() * sizeof(ta::Slot) +
         hashes_.capacity() * sizeof(std::uint64_t) +
         table_.capacity() * sizeof(std::uint32_t);
}

}  // namespace ahb::mc
