// Compact interned storage for explored states.
//
// States are fixed-stride slot vectors, so the store keeps one contiguous
// arena (index * entry size) plus an open-addressing hash table mapping
// state bytes to indices. This matters: proving a requirement *holds*
// means exhausting the reachable state space.
//
// Three encodings (ta::Compression), fixed at construction:
//  - None: raw Slot vectors + a per-entry 64-bit hash, byte-identical to
//    the historical store (raw() spans stay available).
//  - Pack: each state bit-packed by the network's StateCodec; entries
//    shrink from stride*16 bits to the sum of the actual slot widths.
//  - Collapse: each automaton's local sub-vector is interned once in a
//    per-component table and the arena keeps only the tuple of component
//    indices plus the packed residue (clocks, shared variables).
// Compressed modes drop the per-entry hash array as well — probes
// memcmp the (short) encoded entries and table growth rehashes them —
// which is where much of the footprint reduction comes from.
//
// Identity is preserved in every mode: two slot vectors intern to the
// same index iff they are equal, so state counts, verdicts and trace
// lengths are invariant under compression.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ta/codec.hpp"
#include "ta/state.hpp"

namespace ahb::mc {

class StateStore {
 public:
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  /// Uncompressed store over raw slot vectors (Compression::None).
  explicit StateStore(std::size_t stride);

  /// Codec-backed store; `codec` must outlive the store (it lives in the
  /// frozen Network). Compression::None behaves exactly like the
  /// stride-only constructor.
  StateStore(const ta::StateCodec& codec, ta::Compression mode);

  /// Interns `s`; returns its index and whether it was newly inserted.
  std::pair<std::uint32_t, bool> intern(const ta::State& s);

  /// Allocation-free variant: interns a raw slot span (e.g. a
  /// SuccessorView target) without constructing a State.
  std::pair<std::uint32_t, bool> intern(std::span<const ta::Slot> slots);

  /// Index of `s` if present, kInvalidIndex otherwise. Never inserts
  /// (in Collapse mode a state whose components are unknown is absent).
  std::uint32_t find(const ta::State& s) const;

  /// Reconstructs a State value from an index.
  ta::State get(std::uint32_t index) const;

  /// Decodes an interned state into `out` (resized if needed). The
  /// compression-agnostic way to read states back; hot loops reuse
  /// `out`'s buffer.
  void load(std::uint32_t index, ta::State& out) const;

  /// Borrowed slot span of an interned state. Only available in
  /// Compression::None, where states are stored unencoded.
  std::span<const ta::Slot> raw(std::uint32_t index) const;

  std::size_t size() const { return count_; }
  std::size_t stride() const { return stride_; }
  ta::Compression compression() const { return mode_; }

  /// Approximate heap footprint in bytes (arena + table + hashes +
  /// component tables).
  std::size_t memory_bytes() const;

 private:
  /// Per-component intern table (Collapse mode). Components whose packed
  /// key fits 64 bits (all of them in the heartbeat models) use the fast
  /// path: the key is stored inline in the probe slot, so a lookup is one
  /// multiply-shift hash plus uint64 compares — no byte packing, no
  /// memcmp, no second cache line. Wider components spill to the byte
  /// path (packed keys of key_bytes each, open addressing over hashes).
  struct CompTable {
    struct FastSlot {
      std::uint64_t key = 0;
      std::uint32_t index = kInvalidIndex;  ///< kInvalidIndex = empty
    };
    std::vector<FastSlot> fast_table;       ///< fast path: probe slots
    std::vector<std::uint64_t> fast_keys;   ///< fast path: key by index
    std::vector<std::byte> keys;            ///< spill path: key by index
    std::vector<std::uint32_t> table;       ///< spill path: probe slots
    std::uint32_t count = 0;
  };

  void grow_table();
  /// Table hash of an encoded entry (compressed modes): the inline-key
  /// mix when the root takes the fast path, the byte hash otherwise.
  std::uint64_t entry_hash(const std::byte* entry) const;
  std::uint32_t probe(std::span<const ta::Slot> slots, std::uint64_t hash,
                      bool& found) const;
  std::uint32_t probe_bytes(std::span<const std::byte> key,
                            std::uint64_t hash, bool& found) const;
  std::uint32_t comp_intern(std::size_t c, std::span<const std::byte> key);
  std::uint32_t comp_find(std::size_t c, std::span<const std::byte> key) const;
  std::uint32_t comp_intern_fast(std::size_t c, std::uint64_t key);
  std::uint32_t comp_find_fast(std::size_t c, std::uint64_t key) const;

  /// Encodes `slots` into entry_scratch_ per mode_, interning components
  /// (Collapse). With `insert_components` false, unknown components make
  /// it return false instead. Also yields the table hash of the entry.
  bool encode_entry(std::span<const ta::Slot> slots, bool insert_components,
                    std::uint64_t& hash) const;

  const std::byte* entry_of(std::uint32_t index) const {
    return bytes_.data() + static_cast<std::size_t>(index) * entry_bytes_;
  }

  const ta::StateCodec* codec_ = nullptr;
  ta::Compression mode_ = ta::Compression::None;
  std::size_t stride_;
  std::size_t entry_bytes_ = 0;  ///< bytes per state in `bytes_`
  /// Collapse roots of <= 64 bits are stored as inline uint64 keys
  /// (entry_bytes_ == 8): packing is shift/or arithmetic and the table
  /// hash is a multiply-shift mix instead of a byte-wise pass — this is
  /// what keeps collapse wall-time within ~1.1x of the raw store.
  bool root_fast_ = false;

  std::vector<ta::Slot> arena_;        // None: raw slots, index * stride
  std::vector<std::uint64_t> hashes_;  // None: per interned state
  std::vector<std::byte> bytes_;       // Pack/Collapse: encoded entries
  std::vector<CompTable> comps_;       // Collapse: per-component tables
  std::vector<std::uint32_t> table_;   // open addressing, power-of-two size
  std::size_t count_ = 0;

  // Reusable encode buffers; mutable so find() (which must not insert)
  // can share the encode path. The store is single-threaded by contract.
  mutable std::vector<std::byte> entry_scratch_;
  mutable std::vector<std::byte> key_scratch_;
  mutable std::vector<std::uint32_t> index_scratch_;
};

}  // namespace ahb::mc
