// Compact interned storage for explored states.
//
// States are fixed-stride slot vectors, so the store keeps one contiguous
// arena (index * stride) plus an open-addressing hash table mapping state
// bytes to indices. This keeps per-state overhead to stride*sizeof(Slot)
// + 12 bytes, which matters: proving a requirement *holds* means
// exhausting the reachable state space.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ta/state.hpp"

namespace ahb::mc {

class StateStore {
 public:
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  explicit StateStore(std::size_t stride);

  /// Interns `s`; returns its index and whether it was newly inserted.
  std::pair<std::uint32_t, bool> intern(const ta::State& s);

  /// Allocation-free variant: interns a raw slot span (e.g. a
  /// SuccessorView target) without constructing a State.
  std::pair<std::uint32_t, bool> intern(std::span<const ta::Slot> slots);

  /// Index of `s` if present, kInvalidIndex otherwise.
  std::uint32_t find(const ta::State& s) const;

  /// Reconstructs a State value from an index.
  ta::State get(std::uint32_t index) const;

  std::span<const ta::Slot> raw(std::uint32_t index) const;

  std::size_t size() const { return count_; }
  std::size_t stride() const { return stride_; }

  /// Approximate heap footprint in bytes (arena + table + hashes).
  std::size_t memory_bytes() const;

 private:
  void grow_table();
  std::uint32_t probe(std::span<const ta::Slot> slots, std::uint64_t hash,
                      bool& found) const;

  std::size_t stride_;
  std::vector<ta::Slot> arena_;
  std::vector<std::uint64_t> hashes_;  // per interned state
  std::vector<std::uint32_t> table_;   // open addressing, power-of-two size
  std::size_t count_ = 0;
};

}  // namespace ahb::mc
