#include "mc/guided.hpp"

#include <deque>
#include <unordered_set>

#include "mc/store.hpp"
#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace ahb::mc {

namespace {

/// A search node: model state, elapsed ticks, observations consumed.
struct Node {
  ta::State state;
  std::int64_t time = 0;
  std::size_t next_obs = 0;
};

/// Exact memo key: the state is interned in a collapse-compressed
/// StateStore, so the 32-bit index substitutes for the full slot vector
/// and equality on NodeKey is equality on (state, time, obs index) —
/// no hash-collision pruning.
struct NodeKey {
  std::uint32_t state_index = 0;
  std::int64_t time = 0;
  std::uint32_t next_obs = 0;

  bool operator==(const NodeKey&) const = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const noexcept {
    std::uint64_t h = hash_combine(k.state_index,
                                   static_cast<std::uint64_t>(k.time));
    h = hash_combine(h, k.next_obs);
    return static_cast<std::size_t>(h);
  }
};

bool matches(const GuidedObservation& o, const std::string& label) {
  for (const auto& needle : o.any_of) {
    if (label.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

GuidedResult guided_replay(
    const ta::Network& net, std::span<const GuidedObservation> obs,
    const std::function<bool(const std::string&)>& is_observable,
    const GuidedLimits& limits) {
  AHB_EXPECTS(net.frozen());
  AHB_EXPECTS(is_observable != nullptr);
  for (std::size_t i = 1; i < obs.size(); ++i) {
    AHB_EXPECTS(obs[i - 1].at <= obs[i].at);
  }

  GuidedResult result;
  if (obs.empty()) {
    result.ok = true;
    return result;
  }

  // Depth-first search over (state, time, observation index), memoized:
  // a node reached twice explores the identical subtree, so revisits are
  // pruned. The memo key is exact — states are interned through the
  // network's collapse codec, so two triples compare equal iff they are
  // the same node. (Earlier revisions pruned on a bare 64-bit hash of
  // the triple; a collision there silently drops a distinct node, which
  // for a membership checker can turn a true "this trace is a trace of
  // the model" into a spurious rejection.)
  StateStore memo_store{net.codec(), ta::Compression::Collapse};
  std::unordered_set<NodeKey, NodeKeyHash> seen;
  std::deque<Node> stack;
  stack.push_back(Node{net.initial_state(), 0, 0});

  ta::SuccessorScratch scratch;
  std::int64_t best_time = 0;

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();

    if (node.next_obs > result.matched) {
      result.matched = node.next_obs;
      best_time = node.time;
    }
    if (node.next_obs == obs.size()) {
      result.ok = true;
      return result;
    }
    const NodeKey key{memo_store.intern(node.state).first, node.time,
                      static_cast<std::uint32_t>(node.next_obs)};
    if (!seen.insert(key).second) {
      continue;
    }
    if (++result.expanded > limits.max_nodes) {
      result.diagnostic = strprintf(
          "search limit of %llu nodes exceeded after matching %zu/%zu "
          "observations",
          static_cast<unsigned long long>(limits.max_nodes), result.matched,
          obs.size());
      return result;
    }

    const GuidedObservation& pending = obs[node.next_obs];
    net.for_each_successor(
        node.state, scratch, [&](const ta::SuccessorView& v) {
          if (v.kind == ta::Transition::Kind::Tick) {
            // Time may advance, but never past the pending observation.
            if (node.time + 1 <= pending.at) {
              stack.push_back(Node{ta::State{v.target}, node.time + 1,
                                   node.next_obs});
            }
            return;
          }
          const std::string label = net.label_of(v);
          if (is_observable(label)) {
            if (node.time == pending.at && matches(pending, label)) {
              stack.push_back(Node{ta::State{v.target}, node.time,
                                   node.next_obs + 1});
            }
            // An unmatched observable may not fire: the implementation
            // did not produce it here.
            return;
          }
          stack.push_back(
              Node{ta::State{v.target}, node.time, node.next_obs});
        });
  }

  result.diagnostic = strprintf(
      "no model run matches observation %zu/%zu (\"%s\" at t=%lld); deepest "
      "run reached t=%lld",
      result.matched + 1, obs.size(),
      result.matched < obs.size() ? obs[result.matched].describe.c_str()
                                  : "?",
      static_cast<long long>(result.matched < obs.size()
                                 ? obs[result.matched].at
                                 : 0),
      static_cast<long long>(best_time));
  return result;
}

}  // namespace ahb::mc
