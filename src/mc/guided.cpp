#include "mc/guided.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "mc/concurrent_store.hpp"
#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace ahb::mc {

namespace {

/// Exact memo key: the state is interned in a collapse-compressed
/// ConcurrentStateStore, so the 32-bit index substitutes for the full
/// slot vector and equality on NodeKey is equality on (state, time,
/// obs index) — no hash-collision pruning. The work queue holds these
/// keys directly; workers decode the state back out of the store.
struct NodeKey {
  std::uint32_t state_index = 0;
  std::int64_t time = 0;
  std::uint32_t next_obs = 0;

  bool operator==(const NodeKey&) const = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const noexcept {
    std::uint64_t h = hash_combine(k.state_index,
                                   static_cast<std::uint64_t>(k.time));
    h = hash_combine(h, k.next_obs);
    return static_cast<std::size_t>(h);
  }
};

bool matches(const GuidedObservation& o, const std::string& label) {
  for (const auto& needle : o.any_of) {
    if (label.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool forbidden_while_pending(const GuidedObservation& o,
                             const std::string& label) {
  for (const auto& needle : o.forbidden_silent) {
    if (label.find(needle) != std::string::npos) return true;
  }
  return false;
}

int count_occurrences(const std::string& s, const std::string& needle) {
  int n = 0;
  for (auto pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// The seen-set companion of the state store: (state, time, obs) triples
/// already scheduled, sharded to keep lock hold times short.
class SeenSet {
 public:
  bool insert(const NodeKey& key) {
    const std::size_t shard = NodeKeyHash{}(key) & (kShards - 1);
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    return shards_[shard].keys.insert(key).second;
  }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    std::mutex mutex;
    std::unordered_set<NodeKey, NodeKeyHash> keys;
  };
  Shard shards_[kShards];
};

/// Everything the worker threads share. The queue mutex doubles as the
/// publication point for store indices: a key is pushed only after its
/// state was interned, so a popping worker can always decode it.
struct SearchShared {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<NodeKey> queue;
  int busy = 0;
  /// Atomic because expansion loops poll it without the queue mutex;
  /// all writes happen under the mutex before a notify.
  std::atomic<bool> done{false};
  bool success = false;
  bool limit_hit = false;

  std::atomic<std::uint64_t> expanded{0};

  // Deterministic failure diagnostics: lexicographic max over all seen
  // nodes of (observations matched, time reached). On failure the full
  // reachable node set is explored, so the maximum is thread-invariant.
  std::mutex progress_mutex;
  std::size_t matched = 0;
  std::int64_t best_time = 0;
};

/// Validates the id bookkeeping of the observation stream and collects
/// the ids that are never delivered. Returns false (with a diagnostic)
/// if a Deliver observation consumes an id that is not in flight.
bool track_in_flight(std::span<const GuidedObservation> obs,
                     GuidedResult& result) {
  std::unordered_map<std::uint64_t, std::uint32_t> in_flight;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const auto& o = obs[i];
    if (o.msg_id == 0) continue;
    if (o.type == GuidedObservation::Type::Send) {
      for (std::uint32_t f = 0; f < o.fanout; ++f) {
        ++in_flight[o.msg_id + f];
      }
    } else if (o.type == GuidedObservation::Type::Deliver) {
      auto it = in_flight.find(o.msg_id);
      if (it == in_flight.end() || it->second == 0) {
        result.diagnostic = strprintf(
            "observation %zu (\"%s\" at t=%lld) delivers message id %llu "
            "which is not in flight (unsent or already delivered)",
            i + 1, o.describe.c_str(), static_cast<long long>(o.at),
            static_cast<unsigned long long>(o.msg_id));
        return false;
      }
      if (--it->second == 0) in_flight.erase(it);
    }
  }
  for (const auto& [id, count] : in_flight) {
    for (std::uint32_t c = 0; c < count; ++c) result.lost_ids.push_back(id);
  }
  std::sort(result.lost_ids.begin(), result.lost_ids.end());
  return true;
}

class GuidedSearch {
 public:
  GuidedSearch(const ta::Network& net, std::span<const GuidedObservation> obs,
               const std::function<bool(const std::string&)>& is_observable,
               const GuidedLimits& limits)
      : net_(net),
        obs_(obs),
        is_observable_(is_observable),
        limits_(limits),
        memo_store_(net.codec(), ta::Compression::Collapse) {}

  void run(GuidedResult& result) {
    enqueue_initial();

    const unsigned threads = std::max(1u, limits_.threads);
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i) {
      pool.emplace_back([this] { worker(); });
    }
    worker();
    for (auto& t : pool) t.join();

    result.ok = shared_.success;
    result.expanded = shared_.expanded.load(std::memory_order_relaxed);
    result.memo_states = memo_store_.size();
    result.memo_bytes = memo_store_.memory_bytes();
    result.matched = shared_.success ? obs_.size() : shared_.matched;
    if (shared_.success) return;
    if (shared_.limit_hit) {
      result.diagnostic = strprintf(
          "search limit of %llu nodes exceeded after matching %zu/%zu "
          "observations",
          static_cast<unsigned long long>(limits_.max_nodes), result.matched,
          obs_.size());
      return;
    }
    result.diagnostic = strprintf(
        "no model run matches observation %zu/%zu (\"%s\" at t=%lld); "
        "deepest run reached t=%lld",
        result.matched + 1, obs_.size(),
        result.matched < obs_.size() ? obs_[result.matched].describe.c_str()
                                     : "?",
        static_cast<long long>(
            result.matched < obs_.size() ? obs_[result.matched].at : 0),
        static_cast<long long>(shared_.best_time));
  }

 private:
  void enqueue_initial() {
    const ta::State initial = net_.initial_state();
    const NodeKey key{memo_store_.intern(initial).first, 0, 0};
    seen_.insert(key);
    std::lock_guard<std::mutex> lock(shared_.mutex);
    shared_.queue.push_back(key);
  }

  /// Interns a candidate node; if it is new, records progress, detects
  /// full matches and schedules the node. Called from successor
  /// expansion with the queue mutex *not* held.
  void offer(std::span<const ta::Slot> target, std::int64_t time,
             std::size_t next_obs) {
    const NodeKey key{memo_store_.intern(target).first, time,
                      static_cast<std::uint32_t>(next_obs)};
    if (!seen_.insert(key)) return;
    {
      std::lock_guard<std::mutex> lock(shared_.progress_mutex);
      if (next_obs > shared_.matched ||
          (next_obs == shared_.matched && time > shared_.best_time)) {
        shared_.matched = next_obs;
        shared_.best_time = time;
      }
    }
    std::lock_guard<std::mutex> lock(shared_.mutex);
    if (next_obs == obs_.size()) {
      shared_.done = true;
      shared_.success = true;
      shared_.cv.notify_all();
      return;
    }
    shared_.queue.push_back(key);
    shared_.cv.notify_one();
  }

  void worker() {
    ta::State state;
    ta::SuccessorScratch scratch;
    for (;;) {
      NodeKey key;
      {
        std::unique_lock<std::mutex> lock(shared_.mutex);
        shared_.cv.wait(lock, [this] {
          return shared_.done || !shared_.queue.empty() || shared_.busy == 0;
        });
        if (shared_.done || shared_.queue.empty()) {
          // Either a verdict was reached or no work is left anywhere
          // (queue empty and nobody expanding): exploration exhausted.
          if (shared_.done || shared_.busy == 0) {
            shared_.cv.notify_all();
            return;
          }
          continue;
        }
        key = shared_.queue.back();
        shared_.queue.pop_back();
        ++shared_.busy;
      }

      if (shared_.expanded.fetch_add(1, std::memory_order_relaxed) + 1 >
          limits_.max_nodes) {
        std::lock_guard<std::mutex> lock(shared_.mutex);
        shared_.done = true;
        shared_.limit_hit = true;
        --shared_.busy;
        shared_.cv.notify_all();
        return;
      }

      memo_store_.load(key.state_index, state);
      expand(state, key.time, key.next_obs, scratch);

      {
        std::lock_guard<std::mutex> lock(shared_.mutex);
        --shared_.busy;
        if (shared_.busy == 0 && shared_.queue.empty()) {
          shared_.cv.notify_all();
        }
      }
    }
  }

  void expand(const ta::State& state, std::int64_t time, std::size_t next_obs,
              ta::SuccessorScratch& scratch) {
    const GuidedObservation& pending = obs_[next_obs];
    net_.for_each_successor(state, scratch, [&](const ta::SuccessorView& v) {
      if (shared_.done) return;
      if (v.kind == ta::Transition::Kind::Tick) {
        // Time may advance, but never past the pending observation.
        if (time + 1 <= pending.at) offer(v.target, time + 1, next_obs);
        return;
      }
      const std::string label = net_.label_of(v);
      if (is_observable_(label)) {
        if (time == pending.at && matches(pending, label) &&
            (pending.count_needle.empty() ||
             count_occurrences(label, pending.count_needle) ==
                 pending.expected_count)) {
          offer(v.target, time, next_obs + 1);
        }
        // An unmatched observable may not fire: the implementation did
        // not produce it here.
        return;
      }
      // Silent transitions interleave freely — except the loss edges of
      // messages the recorded future still delivers: losing one of those
      // would let the model re-use a distinct in-flight message with the
      // same payload for the upcoming delivery.
      if (forbidden_while_pending(pending, label)) return;
      offer(v.target, time, next_obs);
    });
  }

  const ta::Network& net_;
  std::span<const GuidedObservation> obs_;
  const std::function<bool(const std::string&)>& is_observable_;
  GuidedLimits limits_;
  ConcurrentStateStore memo_store_;
  SeenSet seen_;
  SearchShared shared_;
};

}  // namespace

GuidedResult guided_replay(
    const ta::Network& net, std::span<const GuidedObservation> obs,
    const std::function<bool(const std::string&)>& is_observable,
    const GuidedLimits& limits) {
  AHB_EXPECTS(net.frozen());
  AHB_EXPECTS(is_observable != nullptr);
  for (std::size_t i = 1; i < obs.size(); ++i) {
    AHB_EXPECTS(obs[i - 1].at <= obs[i].at);
  }

  GuidedResult result;
  // The in-flight id multiset is a deterministic function of the
  // observation prefix, so it is checked once up front: a malformed
  // stream (delivery of an id that is not in flight) is rejected before
  // any search, and the never-delivered ids become explicit loss facts.
  if (!track_in_flight(obs, result)) return result;
  if (obs.empty()) {
    result.ok = true;
    return result;
  }

  GuidedSearch search(net, obs, is_observable, limits);
  search.run(result);
  return result;
}

}  // namespace ahb::mc
