#include "mc/guided.hpp"

#include <deque>
#include <unordered_set>

#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace ahb::mc {

namespace {

/// A search node: model state, elapsed ticks, observations consumed.
struct Node {
  ta::State state;
  std::int64_t time = 0;
  std::size_t next_obs = 0;
};

std::uint64_t node_key_hash(const ta::State& s, std::int64_t time,
                            std::size_t next_obs) {
  std::uint64_t h = s.hash();
  h = hash_combine(h, static_cast<std::uint64_t>(time));
  h = hash_combine(h, static_cast<std::uint64_t>(next_obs));
  return h;
}

bool matches(const GuidedObservation& o, const std::string& label) {
  for (const auto& needle : o.any_of) {
    if (label.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

GuidedResult guided_replay(
    const ta::Network& net, std::span<const GuidedObservation> obs,
    const std::function<bool(const std::string&)>& is_observable,
    const GuidedLimits& limits) {
  AHB_EXPECTS(net.frozen());
  AHB_EXPECTS(is_observable != nullptr);
  for (std::size_t i = 1; i < obs.size(); ++i) {
    AHB_EXPECTS(obs[i - 1].at <= obs[i].at);
  }

  GuidedResult result;
  if (obs.empty()) {
    result.ok = true;
    return result;
  }

  // Depth-first search over (state, time, observation index), memoized:
  // a node reached twice explores the identical subtree, so revisits are
  // pruned on a hash of the triple. (Hash collisions would prune a
  // distinct node — with 64-bit hashes over these small state vectors
  // that is the bitstate trade-off, acceptable for a checker that only
  // ever answers "found a witness run" positively.)
  std::unordered_set<std::uint64_t> seen;
  std::deque<Node> stack;
  stack.push_back(Node{net.initial_state(), 0, 0});

  ta::SuccessorScratch scratch;
  std::int64_t best_time = 0;

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();

    if (node.next_obs > result.matched) {
      result.matched = node.next_obs;
      best_time = node.time;
    }
    if (node.next_obs == obs.size()) {
      result.ok = true;
      return result;
    }
    if (!seen.insert(node_key_hash(node.state, node.time, node.next_obs))
             .second) {
      continue;
    }
    if (++result.expanded > limits.max_nodes) {
      result.diagnostic = strprintf(
          "search limit of %llu nodes exceeded after matching %zu/%zu "
          "observations",
          static_cast<unsigned long long>(limits.max_nodes), result.matched,
          obs.size());
      return result;
    }

    const GuidedObservation& pending = obs[node.next_obs];
    net.for_each_successor(
        node.state, scratch, [&](const ta::SuccessorView& v) {
          if (v.kind == ta::Transition::Kind::Tick) {
            // Time may advance, but never past the pending observation.
            if (node.time + 1 <= pending.at) {
              stack.push_back(Node{ta::State{v.target}, node.time + 1,
                                   node.next_obs});
            }
            return;
          }
          const std::string label = net.label_of(v);
          if (is_observable(label)) {
            if (node.time == pending.at && matches(pending, label)) {
              stack.push_back(Node{ta::State{v.target}, node.time,
                                   node.next_obs + 1});
            }
            // An unmatched observable may not fire: the implementation
            // did not produce it here.
            return;
          }
          stack.push_back(
              Node{ta::State{v.target}, node.time, node.next_obs});
        });
  }

  result.diagnostic = strprintf(
      "no model run matches observation %zu/%zu (\"%s\" at t=%lld); deepest "
      "run reached t=%lld",
      result.matched + 1, obs.size(),
      result.matched < obs.size() ? obs[result.matched].describe.c_str()
                                  : "?",
      static_cast<long long>(result.matched < obs.size()
                                 ? obs[result.matched].at
                                 : 0),
      static_cast<long long>(best_time));
  return result;
}

}  // namespace ahb::mc
