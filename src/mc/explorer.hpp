// Explicit-state reachability checking over timed-automata networks.
//
// This is the UPPAAL/CADP stand-in: breadth-first exploration of the
// digitized transition system with interned states, shortest
// counterexample reconstruction, deadlock detection and exhaustive
// exploration statistics. All the requirements checked in this
// repository (R1-R3 of the heartbeat analysis) are reachability
// properties of latched error conditions, exactly as in the source
// paper's UPPAAL formulation.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mc/concurrent_store.hpp"
#include "mc/store.hpp"
#include "ta/network.hpp"

namespace ahb::mc {

/// State predicate, e.g. "monitor is in ErrorR1 and active[0] holds".
using Pred = std::function<bool(const ta::StateView&)>;

struct SearchLimits {
  std::uint64_t max_states = 200'000'000;
  std::uint64_t max_depth = 0;  ///< 0 means unlimited (BFS layers)
  /// Worker threads for the BFS: 0 = hardware concurrency, 1 = the
  /// sequential path (bit-for-bit the classic explorer), N = N workers
  /// over a sharded ConcurrentStateStore. Verdicts, depths and
  /// counterexample lengths are identical for every thread count; see
  /// DESIGN.md "Parallel exploration" for what is (and is not)
  /// deterministic about the statistics.
  unsigned threads = 0;
  /// Store encoding: None is byte-identical to the historical stores,
  /// Pack bit-packs each state, Collapse additionally interns each
  /// automaton's local sub-vector (SPIN COLLAPSE). State identity is
  /// preserved, so verdicts, state counts, depths and counterexample
  /// lengths are the same in every mode; only store_bytes changes.
  ta::Compression compression = ta::Compression::None;
  /// Orbit canonicalization: Participants interns one representative
  /// per orbit of the network's declared participant symmetry (plus
  /// dead-slot reduction). Sound for permutation-invariant predicates;
  /// verdicts are preserved while states/transitions shrink by up to
  /// the orbit sizes. No-op when the network declared no symmetry.
  ta::Symmetry symmetry = ta::Symmetry::None;
  /// Ample-set partial-order reduction + committed-chain fusion:
  /// committed (transient) states are expanded through without being
  /// interned — the target predicate is still evaluated on every one of
  /// them — and at committed states only an ample automaton's invisible
  /// records are followed. A fusion depth cap acts as the cycle
  /// proviso: chains longer than the cap intern an intermediate state,
  /// so committed cycles cannot be silently skipped.
  bool por = false;
};

struct SearchStats {
  std::uint64_t states = 0;       ///< distinct states interned
  std::uint64_t transitions = 0;  ///< transitions generated
  std::uint64_t depth = 0;        ///< deepest BFS layer reached
  std::uint64_t fused = 0;        ///< transient states expanded through
                                  ///< without interning (por only)
  std::size_t store_bytes = 0;
  std::chrono::duration<double> elapsed{};
};

/// One step of a counterexample: the action taken to enter `state`
/// (empty for the initial state) plus the state itself.
struct TraceStep {
  std::string action;
  ta::State state;
};

struct SearchResult {
  bool found = false;     ///< target predicate reached
  bool complete = false;  ///< full state space explored (trustworthy "not found")
  std::vector<TraceStep> trace;  ///< initial state ... target, when found
  SearchStats stats;
};

class Explorer {
 public:
  explicit Explorer(const ta::Network& net);

  /// BFS for a state satisfying `target`. Returns the shortest trace when
  /// found. `result.complete` is true iff the search exhausted the state
  /// space without hitting a limit, which makes a negative answer a
  /// verification result rather than a timeout.
  SearchResult reach(const Pred& target, const SearchLimits& limits = {});

  /// BFS for a deadlocked state: no discrete successor and no delay.
  SearchResult find_deadlock(const SearchLimits& limits = {});

  /// Explores the whole state space (or up to the limits) without a
  /// target; used for state-space measurements.
  SearchStats explore_all(const SearchLimits& limits = {});

  /// Checks that `invariant` holds in every reachable state; on failure
  /// returns the shortest trace to a violating state.
  SearchResult check_invariant(const Pred& invariant,
                               const SearchLimits& limits = {});

 private:
  struct Core {
    StateStore store;
    std::vector<std::uint32_t> parent;
    std::uint64_t transitions = 0;
    std::uint64_t depth = 0;
  };

  /// The per-discovered-state target test. The scratch argument is a
  /// buffer distinct from the one driving the enumeration, so predicates
  /// may themselves generate successors (the deadlock test does).
  using StopFn =
      std::function<bool(const ta::State&, ta::SuccessorScratch&)>;

  /// Shared BFS entry: dispatches to the sequential or the parallel
  /// layer-synchronous loop depending on `limits.threads`, and to the
  /// reduced variants when symmetry or POR is requested. The unreduced
  /// paths are untouched by reduction support, so default-flag runs
  /// stay bit-for-bit identical to the historical explorer.
  SearchResult run(const StopFn& stop, const SearchLimits& limits);
  SearchResult run_sequential(const StopFn& stop, const SearchLimits& limits);
  SearchResult run_parallel(const StopFn& stop, const SearchLimits& limits,
                            unsigned threads);
  SearchResult run_sequential_reduced(const StopFn& stop,
                                      const SearchLimits& limits);
  SearchResult run_parallel_reduced(const StopFn& stop,
                                    const SearchLimits& limits,
                                    unsigned threads);

  std::vector<TraceStep> rebuild_trace(const Core& core,
                                       std::uint32_t target_index) const;
  std::vector<TraceStep> rebuild_trace(const ConcurrentStateStore& store,
                                       std::uint32_t target_index) const;

  /// Reduced-mode counterexamples: the store holds canonical orbit
  /// representatives with fused gaps, so the real trace is recovered by
  /// forward replay from the real initial state — per stored step, a
  /// bounded DFS over real successors (descending only through
  /// transient states) finds a real path whose endpoint canonicalizes
  /// to the stored image. The rendered states carry genuine participant
  /// ids throughout.
  std::vector<TraceStep> rebuild_trace_replay(
      const std::vector<ta::State>& canonical_chain, bool canon,
      bool por) const;

  const ta::Network* net_;
};

}  // namespace ahb::mc
