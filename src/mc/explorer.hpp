// Explicit-state reachability checking over timed-automata networks.
//
// This is the UPPAAL/CADP stand-in: breadth-first exploration of the
// digitized transition system with interned states, shortest
// counterexample reconstruction, deadlock detection and exhaustive
// exploration statistics. All the requirements checked in this
// repository (R1-R3 of the heartbeat analysis) are reachability
// properties of latched error conditions, exactly as in the source
// paper's UPPAAL formulation.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mc/concurrent_store.hpp"
#include "mc/store.hpp"
#include "ta/network.hpp"

namespace ahb::mc {

/// State predicate, e.g. "monitor is in ErrorR1 and active[0] holds".
using Pred = std::function<bool(const ta::StateView&)>;

struct SearchLimits {
  std::uint64_t max_states = 200'000'000;
  std::uint64_t max_depth = 0;  ///< 0 means unlimited (BFS layers)
  /// Worker threads for the BFS: 0 = hardware concurrency, 1 = the
  /// sequential path (bit-for-bit the classic explorer), N = N workers
  /// over a sharded ConcurrentStateStore. Verdicts, depths and
  /// counterexample lengths are identical for every thread count; see
  /// DESIGN.md "Parallel exploration" for what is (and is not)
  /// deterministic about the statistics.
  unsigned threads = 0;
  /// Store encoding: None is byte-identical to the historical stores,
  /// Pack bit-packs each state, Collapse additionally interns each
  /// automaton's local sub-vector (SPIN COLLAPSE). State identity is
  /// preserved, so verdicts, state counts, depths and counterexample
  /// lengths are the same in every mode; only store_bytes changes.
  ta::Compression compression = ta::Compression::None;
};

struct SearchStats {
  std::uint64_t states = 0;       ///< distinct states interned
  std::uint64_t transitions = 0;  ///< transitions generated
  std::uint64_t depth = 0;        ///< deepest BFS layer reached
  std::size_t store_bytes = 0;
  std::chrono::duration<double> elapsed{};
};

/// One step of a counterexample: the action taken to enter `state`
/// (empty for the initial state) plus the state itself.
struct TraceStep {
  std::string action;
  ta::State state;
};

struct SearchResult {
  bool found = false;     ///< target predicate reached
  bool complete = false;  ///< full state space explored (trustworthy "not found")
  std::vector<TraceStep> trace;  ///< initial state ... target, when found
  SearchStats stats;
};

class Explorer {
 public:
  explicit Explorer(const ta::Network& net);

  /// BFS for a state satisfying `target`. Returns the shortest trace when
  /// found. `result.complete` is true iff the search exhausted the state
  /// space without hitting a limit, which makes a negative answer a
  /// verification result rather than a timeout.
  SearchResult reach(const Pred& target, const SearchLimits& limits = {});

  /// BFS for a deadlocked state: no discrete successor and no delay.
  SearchResult find_deadlock(const SearchLimits& limits = {});

  /// Explores the whole state space (or up to the limits) without a
  /// target; used for state-space measurements.
  SearchStats explore_all(const SearchLimits& limits = {});

  /// Checks that `invariant` holds in every reachable state; on failure
  /// returns the shortest trace to a violating state.
  SearchResult check_invariant(const Pred& invariant,
                               const SearchLimits& limits = {});

 private:
  struct Core {
    StateStore store;
    std::vector<std::uint32_t> parent;
    std::uint64_t transitions = 0;
    std::uint64_t depth = 0;
  };

  /// The per-discovered-state target test. The scratch argument is a
  /// buffer distinct from the one driving the enumeration, so predicates
  /// may themselves generate successors (the deadlock test does).
  using StopFn =
      std::function<bool(const ta::State&, ta::SuccessorScratch&)>;

  /// Shared BFS entry: dispatches to the sequential or the parallel
  /// layer-synchronous loop depending on `limits.threads`.
  SearchResult run(const StopFn& stop, const SearchLimits& limits);
  SearchResult run_sequential(const StopFn& stop, const SearchLimits& limits);
  SearchResult run_parallel(const StopFn& stop, const SearchLimits& limits,
                            unsigned threads);

  std::vector<TraceStep> rebuild_trace(const Core& core,
                                       std::uint32_t target_index) const;
  std::vector<TraceStep> rebuild_trace(const ConcurrentStateStore& store,
                                       std::uint32_t target_index) const;

  const ta::Network* net_;
};

}  // namespace ahb::mc
