// Sharded, thread-safe interned storage for parallel state-space
// exploration.
//
// The store splits the open-addressing intern table of StateStore into
// 64 shards selected by the top bits of the state hash (the table probe
// uses the low bits, so the two are independent). Each shard owns a
// striped mutex, its own hash table, and a segmented byte arena whose
// segments never move once allocated — concurrent readers may therefore
// decode states of *earlier BFS layers* without locking while other
// threads intern new states into the same shard. A global 32-bit index
// encodes [shard:6][offset:26], preserving StateStore's compact
// index-addressed layout (and its memory_bytes() accounting) at a cost
// of 6 bits of per-shard capacity.
//
// Compression (ta::Compression, fixed at construction) mirrors
// StateStore: None stores raw slot bytes plus per-entry hashes
// (byte-identical to the PR-1 store), Pack stores the codec's bit-packed
// image, Collapse stores component-index roots with *per-shard*
// component tables. Shard selection hashes a shard-independent injective
// image of the state before any shard-local encoding: the raw slot bytes
// for None and Collapse, the codec's bit-packed image for Pack (where it
// doubles as the stored entry). Collapse roots are then encoded and
// probed under the shard lock against that shard's own component tables,
// whose key arenas are segmented and never move — so lock-free decode of
// published states follows the exact same discipline as the state arena
// itself.
//
// Parent links for shortest-counterexample reconstruction are recorded
// at intern time, under the same shard lock as the insertion: the first
// thread to intern a state wins, so every parent pointer refers to a
// state of the previous BFS layer and trace lengths stay deterministic.
//
// Thread-safety contract:
//  - intern() may be called concurrently from any number of threads.
//  - raw()/get()/load()/parent_of() may be called concurrently with
//    intern() only for indices published before a synchronization point
//    (the explorer's per-layer barrier provides it).
//  - size() is an atomic running count, safe anywhere.
//  - memory_bytes() must only be called while no intern() is in flight.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ta/codec.hpp"
#include "ta/state.hpp"

namespace ahb::mc {

class ConcurrentStateStore {
 public:
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;
  static constexpr int kShardBits = 6;
  static constexpr std::uint32_t kShardCount = 1u << kShardBits;
  static constexpr int kOffsetBits = 32 - kShardBits;
  /// One below 2^26 so no valid index collides with kInvalidIndex.
  static constexpr std::uint32_t kMaxPerShard = (1u << kOffsetBits) - 1;

  /// Uncompressed store over raw slot vectors (Compression::None).
  explicit ConcurrentStateStore(std::size_t stride);

  /// Codec-backed store; `codec` must outlive the store. None behaves
  /// exactly like the stride-only constructor.
  ConcurrentStateStore(const ta::StateCodec& codec, ta::Compression mode);

  /// Interns `slots`; returns the global index and whether this call
  /// inserted it. For new states, `parent` is recorded as the BFS
  /// predecessor (first inserter wins).
  std::pair<std::uint32_t, bool> intern(std::span<const ta::Slot> slots,
                                        std::uint32_t parent = kInvalidIndex);
  std::pair<std::uint32_t, bool> intern(const ta::State& s,
                                        std::uint32_t parent = kInvalidIndex) {
    return intern(s.slots(), parent);
  }

  /// Raw slot span of an interned state. Only available in
  /// Compression::None; safe concurrently with intern() for indices
  /// published before a synchronization point.
  std::span<const ta::Slot> raw(std::uint32_t index) const;

  /// Reconstructs a State value from a global index.
  ta::State get(std::uint32_t index) const;

  /// Decodes an interned state into `out` (resized if needed). Same
  /// publication contract as raw().
  void load(std::uint32_t index, ta::State& out) const;

  /// BFS predecessor recorded when `index` was interned.
  std::uint32_t parent_of(std::uint32_t index) const;

  /// Number of interned states (atomic running count).
  std::size_t size() const { return total_.load(std::memory_order_relaxed); }
  std::size_t stride() const { return stride_; }
  ta::Compression compression() const { return mode_; }

  /// Approximate heap footprint in bytes (arenas + tables + hashes +
  /// parents + component tables). Only valid while no intern() is in
  /// flight.
  std::size_t memory_bytes() const;

 private:
  // Segmented arena: segment 0 holds kSeg0Entries entries; segment k >= 1
  // holds 2^(kSeg0Bits + k - 1), i.e. capacity doubles and the total
  // allocation stays within 2x of what is used. Offsets decompose with
  // one bit-width computation and segments never reallocate.
  static constexpr int kSeg0Bits = 10;
  static constexpr std::uint32_t kSeg0Entries = 1u << kSeg0Bits;
  static constexpr int kMaxSegments = kOffsetBits - kSeg0Bits + 1;

  /// Fixed-size-entry segmented byte arena (never-moving segments).
  struct Arena {
    std::array<std::unique_ptr<std::byte[]>, kMaxSegments> segments;
    std::size_t allocated_bytes = 0;

    const std::byte* entry(std::uint32_t offset,
                           std::size_t entry_bytes) const;
    /// Returns the slot for `offset`, allocating its segment if needed.
    std::byte* ensure(std::uint32_t offset, std::size_t entry_bytes);
  };

  /// Per-shard component intern table (Collapse): guarded by the shard
  /// mutex for writes; key reads of published entries are lock-free.
  /// Components with a <= 64-bit packed key use the fast path: probe
  /// slots hold the key inline (one multiply-shift hash, uint64
  /// compares) and `keys` stores 8-byte entries so published keys still
  /// decode lock-free out of the never-moving arena. Wider components
  /// keep the byte path (key_bytes-sized entries, hashed probes).
  struct CompShard {
    struct FastSlot {
      std::uint64_t key = 0;
      std::uint32_t index = kInvalidIndex;  ///< kInvalidIndex = empty
    };
    Arena keys;  ///< entry size: 8 (fast path) or key_bytes (spill)
    std::vector<FastSlot> fast_table;   ///< fast path, guarded by mu
    std::vector<std::uint32_t> table;   ///< spill path, guarded by mu
    std::uint32_t count = 0;
  };

  struct alignas(64) Shard {
    std::mutex mu;
    Arena arena;                         // entry_bytes_-sized states
    std::vector<std::uint64_t> hashes;   // None mode only, guarded by mu
    std::vector<std::uint32_t> parents;  // per state, guarded by mu
    std::vector<std::uint32_t> table;    // open addressing, power of two
    std::vector<CompShard> comps;        // Collapse mode only
    std::uint32_t count = 0;
  };

  static std::pair<int, std::uint32_t> segment_of(std::uint32_t offset) {
    if (offset < kSeg0Entries) return {0, offset};
    const int b = 31 - std::countl_zero(offset);
    return {b - kSeg0Bits + 1, offset - (1u << b)};
  }

  std::uint32_t probe(const Shard& shard, std::span<const std::byte> entry,
                      std::uint64_t hash, bool& found) const;
  /// Table hash of an encoded entry (compressed modes): the inline-key
  /// mix when the root takes the fast path, the byte hash otherwise.
  std::uint64_t entry_hash(const std::byte* entry) const;
  void grow_table(Shard& shard);
  std::uint32_t comp_intern(Shard& shard, std::size_t c,
                            std::span<const std::byte> key);
  std::uint32_t comp_intern_fast(Shard& shard, std::size_t c,
                                 std::uint64_t key);

  /// Encodes `slots` into the caller's buffers per mode_. Must hold the
  /// shard lock in Collapse mode (interns components).
  std::uint64_t encode_entry_locked(Shard& shard,
                                    std::span<const ta::Slot> slots,
                                    std::span<const std::byte> packed,
                                    std::vector<std::byte>& entry,
                                    std::vector<std::uint32_t>& indices,
                                    std::vector<std::byte>& key);

  const ta::StateCodec* codec_ = nullptr;
  ta::Compression mode_ = ta::Compression::None;
  std::size_t stride_;
  std::size_t entry_bytes_ = 0;  ///< bytes per state entry in the arenas
  /// Collapse roots of <= 64 bits are stored as inline uint64 entries
  /// (entry_bytes_ == 8): shift/or packing and a multiply-shift table
  /// hash replace the bit-window memcpys and byte-wise hashing. Mirrors
  /// StateStore::root_fast_.
  bool root_fast_ = false;
  std::atomic<std::size_t> total_{0};
  std::array<Shard, kShardCount> shards_;
};

}  // namespace ahb::mc
