// SPIN-style supertrace search: depth-first exploration with a lossy
// bitstate visited filter instead of an exact state store. Memory drops
// from tens of bytes per state to a few *bits*, at the price of
// completeness: hash collisions silently prune unexplored states, so a
// negative answer is only a high-coverage heuristic. Positive answers
// (a violation was found) are exact, and the witness trace comes
// straight off the DFS stack.
//
// Use it for instances whose exact state space does not fit in memory
// (e.g. the dynamic protocol with several participants).
#pragma once

#include <cstdint>
#include <vector>

#include "mc/explorer.hpp"

namespace ahb::mc {

/// Double-hashed Bloom-style membership filter over state hashes.
class BitstateFilter {
 public:
  /// `log2_bits` in [10, 40]: the filter holds 2^log2_bits bits.
  /// `hashes_per_state` is the classic k parameter (SPIN uses 2-3).
  explicit BitstateFilter(int log2_bits, int hashes_per_state = 3);

  /// Marks the state; returns true iff it was (probably) new.
  bool insert(std::uint64_t state_hash);

  /// True iff the state was (possibly) seen before.
  bool contains(std::uint64_t state_hash) const;

  std::size_t bit_count() const { return bits_.size() * 64; }
  std::size_t memory_bytes() const { return bits_.size() * 8; }
  std::uint64_t inserted() const { return inserted_; }

 private:
  std::vector<std::uint64_t> bits_;
  std::uint64_t mask_;
  int k_;
  std::uint64_t inserted_ = 0;
};

struct BitstateResult {
  bool found = false;
  /// Always false: bitstate search can never certify full coverage.
  bool complete = false;
  std::vector<TraceStep> trace;  ///< DFS path to the target when found
  SearchStats stats;
};

/// Depth-first search for a state satisfying `target`, using a bitstate
/// filter of 2^log2_bits bits. `limits.max_depth` bounds the DFS stack
/// (0 means a generous default of 1,000,000).
BitstateResult reach_bitstate(const ta::Network& net, const Pred& target,
                              int log2_bits,
                              const SearchLimits& limits = {});

}  // namespace ahb::mc
