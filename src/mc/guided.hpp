// Guided trace replay: drive a timed-automata network along a sequence
// of timed observations.
//
// A guided walk answers "is this timed event trace a trace of the
// model?" — the membership question behind runtime conformance checking
// (the proto/conformance layer records traces from the executable hb
// engines and replays them here). The observations partition the
// model's transitions: *observable* transitions must match the next
// pending observation exactly at its timestamp, *silent* transitions
// (internal choices such as channel loss or committed bookkeeping
// steps) may interleave freely, and unit ticks advance time but never
// past the next observation's timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ta/network.hpp"

namespace ahb::mc {

/// One timed observation. Matches a transition whose label (as produced
/// by Network::label_of) contains any of the `any_of` substrings, taken
/// exactly when the model's tick count equals `at`.
struct GuidedObservation {
  std::int64_t at = 0;
  std::vector<std::string> any_of;
  /// Human-readable description used in failure diagnostics.
  std::string describe;
};

struct GuidedResult {
  bool ok = false;
  /// Furthest observation index any explored run reached (== size() on
  /// success).
  std::size_t matched = 0;
  /// Nodes expanded by the search (diagnostics/limit accounting).
  std::uint64_t expanded = 0;
  /// On failure: which observation could not be matched, and why.
  std::string diagnostic;
};

struct GuidedLimits {
  /// Cap on distinct (state, time, observation-index) search nodes.
  std::uint64_t max_nodes = 2'000'000;
};

/// Searches for a run of `net` whose observable transitions reproduce
/// `obs` in order at the given tick times. `is_observable` classifies
/// transition labels; tick transitions are handled internally and must
/// not be classified as observable. Observations must be sorted by
/// non-decreasing `at`.
GuidedResult guided_replay(
    const ta::Network& net, std::span<const GuidedObservation> obs,
    const std::function<bool(const std::string&)>& is_observable,
    const GuidedLimits& limits = {});

}  // namespace ahb::mc
