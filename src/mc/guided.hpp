// Guided trace replay: drive a timed-automata network along a sequence
// of timed observations.
//
// A guided walk answers "is this timed event trace a trace of the
// model?" — the membership question behind runtime conformance checking
// (the proto/conformance layer records traces from the executable hb
// engines and replays them here). The observations partition the
// model's transitions: *observable* transitions must match the next
// pending observation exactly at its timestamp, *silent* transitions
// (internal choices such as channel loss or committed bookkeeping
// steps) may interleave freely, and unit ticks advance time but never
// past the next observation's timestamp.
//
// Observations carry message identity: a Send observation puts its
// message ids in flight, a Deliver observation consumes one, and the
// replayer tracks the in-flight id multiset across the trace. Ids that
// are sent but never delivered are reported as explicit loss facts
// (GuidedResult::lost_ids) instead of being inferred, and a Deliver of
// an id that is not in flight (duplicate or unsent) rejects the trace
// up front. While a pending observation's message is in flight, its
// `forbidden_silent` labels (the model's loss edges for that very
// message) may not fire — this is what keeps two identical-payload
// in-flight messages from being conflated.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ta/network.hpp"

namespace ahb::mc {

/// One timed observation. Matches a transition whose label (as produced
/// by Network::label_of) contains any of the `any_of` substrings, taken
/// exactly when the model's tick count equals `at`.
struct GuidedObservation {
  /// Internal events (crashes, inactivations, rejoins) carry no message;
  /// Send puts ids [msg_id, msg_id + fanout) in flight; Deliver consumes
  /// its msg_id.
  enum class Type { Internal, Send, Deliver };

  std::int64_t at = 0;
  Type type = Type::Internal;
  /// Network message id (Send: first id of the fan-out; Deliver: the
  /// delivered id). 0 = no message attached.
  std::uint64_t msg_id = 0;
  /// Send only: number of consecutive ids the event fanned out as (a
  /// coordinator round beat is one event, one id per member).
  std::uint32_t fanout = 1;
  std::vector<std::string> any_of;
  /// When non-empty, the matched label must contain exactly
  /// `expected_count` occurrences of this fragment (used to check that a
  /// model broadcast reaches as many channels as the engine's fan-out).
  std::string count_needle;
  int expected_count = -1;
  /// Silent labels that may not fire while this observation is pending
  /// (the loss edges of messages that the recorded future delivers).
  std::vector<std::string> forbidden_silent;
  /// Human-readable description used in failure diagnostics.
  std::string describe;
};

struct GuidedResult {
  bool ok = false;
  /// Furthest observation index any explored run reached (== size() on
  /// success).
  std::size_t matched = 0;
  /// Nodes expanded by the search (diagnostics/limit accounting).
  std::uint64_t expanded = 0;
  /// Distinct (state, time, obs) triples interned in the memo set.
  std::size_t memo_states = 0;
  /// Bytes held by the memo set's compressed state store.
  std::size_t memo_bytes = 0;
  /// Message ids still in flight after the whole trace: sent (or fanned
  /// out) but never observed delivered. Loss as an explicit fact.
  std::vector<std::uint64_t> lost_ids;
  /// On failure: which observation could not be matched, and why.
  std::string diagnostic;
};

struct GuidedLimits {
  /// Cap on distinct (state, time, observation-index) search nodes.
  std::uint64_t max_nodes = 2'000'000;
  /// Worker threads for the memoized search. The memo set lives in a
  /// sharded ConcurrentStateStore, so any thread count returns the same
  /// match/fail verdict (and the same `matched` on failure, where the
  /// full reachable node set is explored).
  unsigned threads = 1;
};

/// Searches for a run of `net` whose observable transitions reproduce
/// `obs` in order at the given tick times. `is_observable` classifies
/// transition labels; tick transitions are handled internally and must
/// not be classified as observable. Observations must be sorted by
/// non-decreasing `at`.
GuidedResult guided_replay(
    const ta::Network& net, std::span<const GuidedObservation> obs,
    const std::function<bool(const std::string&)>& is_observable,
    const GuidedLimits& limits = {});

}  // namespace ahb::mc
