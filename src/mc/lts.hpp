// Labelled transition systems extracted from networks, plus the
// reductions the source paper applies before drawing its process
// diagrams: strong-bisimulation minimization and weak-trace reduction
// (tau-closure determinization followed by Moore minimization). Used to
// regenerate Figures 1 and 2 (the reduced transition systems of p[0] and
// p[1] for tmax=2, tmin=1).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ta/network.hpp"

namespace ahb::mc {

struct Lts {
  struct Edge {
    int src = 0;
    int label = 0;  ///< index into `alphabet`
    int dst = 0;
    friend bool operator==(const Edge&, const Edge&) = default;
  };

  int initial = 0;
  int state_count = 0;
  std::vector<std::string> alphabet;
  std::vector<Edge> edges;

  /// Label index of `name`, inserting it if new.
  int label_id(const std::string& name);

  /// Outgoing edges of `s` (linear scan; LTSs here are small).
  std::vector<Edge> out(int s) const;
};

/// The canonical invisible-action label.
inline constexpr const char* kTau = "tau";

/// Explores the network exhaustively and returns its global LTS.
/// `max_states` guards against accidentally extracting a huge space.
Lts extract_lts(const ta::Network& net, std::size_t max_states = 1'000'000);

/// Renames every label for which `is_hidden` returns true to tau.
Lts hide(const Lts& lts, const std::function<bool(const std::string&)>& is_hidden);

/// Strong-bisimulation quotient (Kanellakis-Smolka partition refinement).
Lts bisim_reduce(const Lts& lts);

/// Weak-trace reduction: tau-closure subset construction to a
/// deterministic LTS over visible labels, then Moore minimization.
/// The result has the same set of weak (tau-abstracted) traces.
Lts weak_trace_reduce(const Lts& lts);

}  // namespace ahb::mc
