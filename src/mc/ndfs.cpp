#include "mc/ndfs.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ahb::mc {

namespace {

enum Color : std::uint8_t { kWhite = 0, kCyan = 1, kBlue = 2 };

struct Frame {
  std::uint32_t index;
  std::vector<std::uint32_t> children;
  std::size_t next = 0;
};

}  // namespace

LivenessResult find_accepting_cycle(const ta::Network& net,
                                    const Pred& accepting,
                                    const SearchLimits& limits) {
  AHB_EXPECTS(net.frozen());
  AHB_EXPECTS(accepting != nullptr);
  const auto start_time = std::chrono::steady_clock::now();

  StateStore store{net.slot_count()};
  std::vector<std::uint8_t> color;
  std::vector<bool> red;
  std::uint64_t transitions = 0;
  ta::SuccessorScratch scratch;
  ta::State state_buf;
  ta::State canon_buf;
  const ta::StateCodec& codec = net.codec();
  const bool canon = limits.symmetry == ta::Symmetry::Participants &&
                     codec.has_canonicalization();

  const auto is_accepting = [&](std::uint32_t index) {
    const ta::State s = store.get(index);
    return accepting(ta::StateView{net, s});
  };

  const auto expand = [&](std::uint32_t index) {
    std::vector<std::uint32_t> children;
    state_buf.assign(store.raw(index));
    net.for_each_successor(state_buf, scratch, [&](const ta::SuccessorView& v) {
      ++transitions;
      std::uint32_t child;
      if (canon) {
        canon_buf.assign(v.target);
        codec.canonicalize(canon_buf.slots_mut());
        child = store.intern(canon_buf).first;
      } else {
        child = store.intern(v.target).first;
      }
      if (color.size() < store.size()) {
        color.resize(store.size(), kWhite);
        red.resize(store.size(), false);
      }
      children.push_back(child);
    });
    return children;
  };

  LivenessResult result;
  const auto finish = [&](bool complete) {
    result.complete = complete;
    result.stats.states = store.size();
    result.stats.transitions = transitions;
    result.stats.store_bytes = store.memory_bytes();
    result.stats.elapsed = std::chrono::steady_clock::now() - start_time;
    return result;
  };

  const auto build_lasso = [&](const std::vector<Frame>& blue_stack,
                               const std::vector<Frame>& red_stack,
                               std::uint32_t closing) {
    // Stem: blue stack up to (and including) the closing state; cycle:
    // the rest of the blue stack, then the red path, closing back.
    std::vector<std::uint32_t> path;
    std::size_t close_pos = 0;
    for (std::size_t i = 0; i < blue_stack.size(); ++i) {
      path.push_back(blue_stack[i].index);
      if (blue_stack[i].index == closing) close_pos = i;
    }
    // Red stack starts at the seed, which equals the blue stack top;
    // skip that duplicate.
    for (std::size_t i = 1; i < red_stack.size(); ++i) {
      path.push_back(red_stack[i].index);
    }
    path.push_back(closing);

    result.cycle_found = true;
    result.stem_length = close_pos;
    result.lasso.clear();
    for (std::size_t i = 0; i < path.size(); ++i) {
      const ta::State s = store.get(path[i]);
      std::string action;
      if (i > 0) {
        const ta::State prev = store.get(path[i - 1]);
        if (!canon) {
          action = net.action_between(prev, s.slots(), scratch);
        } else {
          // Quotient edges connect canonical representatives: the label
          // belongs to whichever real successor canonicalizes onto the
          // stored child.
          action = "<unknown>";
          net.for_each_successor(
              prev, scratch, [&](const ta::SuccessorView& v) {
                canon_buf.assign(v.target);
                codec.canonicalize(canon_buf.slots_mut());
                if (std::ranges::equal(canon_buf.slots(), s.slots())) {
                  action = net.label_of(v);
                  return false;
                }
                return true;
              });
        }
      }
      result.lasso.push_back(TraceStep{std::move(action), s});
    }
  };

  ta::State init = net.initial_state();
  if (canon) codec.canonicalize(init.slots_mut());
  auto [init_index, inserted] = store.intern(init);
  AHB_ASSERT(inserted);
  color.resize(store.size(), kWhite);
  red.resize(store.size(), false);

  std::vector<Frame> blue_stack;
  blue_stack.push_back(Frame{init_index, expand(init_index), 0});
  color[init_index] = kCyan;

  while (!blue_stack.empty()) {
    if (store.size() >= limits.max_states) return finish(false);
    Frame& top = blue_stack.back();
    if (top.next < top.children.size()) {
      const std::uint32_t child = top.children[top.next++];
      if (color[child] == kCyan &&
          (is_accepting(top.index) || is_accepting(child))) {
        // Early cycle through the blue stack itself.
        std::vector<Frame> trivial_red;
        trivial_red.push_back(Frame{top.index, {}, 0});
        build_lasso(blue_stack, trivial_red, child);
        return finish(false);
      }
      if (color[child] == kWhite) {
        color[child] = kCyan;
        blue_stack.push_back(Frame{child, expand(child), 0});
      }
      continue;
    }

    // Postorder: run the red search from accepting states.
    if (is_accepting(top.index) && !red[top.index]) {
      std::vector<Frame> red_stack;
      red_stack.push_back(Frame{top.index, expand(top.index), 0});
      red[top.index] = true;
      while (!red_stack.empty()) {
        Frame& rtop = red_stack.back();
        if (rtop.next < rtop.children.size()) {
          const std::uint32_t child = rtop.children[rtop.next++];
          if (color[child] == kCyan) {
            build_lasso(blue_stack, red_stack, child);
            return finish(false);
          }
          if (!red[child]) {
            red[child] = true;
            red_stack.push_back(Frame{child, expand(child), 0});
          }
          continue;
        }
        red_stack.pop_back();
      }
    }
    color[top.index] = kBlue;
    blue_stack.pop_back();
  }
  return finish(true);
}

}  // namespace ahb::mc
