#include "ta/network.hpp"

#include <algorithm>
#include <span>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace ahb::ta {

AutomatonId Network::add_automaton(std::string name) {
  AHB_EXPECTS(!frozen_);
  automata_.push_back(Automaton{.name = std::move(name)});
  return AutomatonId{static_cast<int>(automata_.size()) - 1};
}

int Network::add_location(AutomatonId a, std::string name, LocKind kind,
                          Guard invariant) {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(a.value >= 0 &&
              a.value < static_cast<int>(automata_.size()));
  auto& locs = automata_[static_cast<std::size_t>(a.value)].locations;
  locs.push_back(
      Location{std::move(name), kind, std::move(invariant)});
  return static_cast<int>(locs.size()) - 1;
}

void Network::set_initial(AutomatonId a, int loc_index) {
  AHB_EXPECTS(!frozen_);
  auto& automaton = automata_[static_cast<std::size_t>(a.value)];
  AHB_EXPECTS(loc_index >= 0 &&
              loc_index < static_cast<int>(automaton.locations.size()));
  automaton.initial = loc_index;
}

VarId Network::add_var(std::string name, int init) {
  AHB_EXPECTS(!frozen_);
  vars_.push_back(VarDecl{.name = std::move(name),
                          .init = static_cast<Slot>(init)});
  return VarId{static_cast<int>(vars_.size()) - 1};
}

VarId Network::add_var(std::string name, int init, int min, int max,
                       AutomatonId owner) {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(min <= init && init <= max);
  AHB_EXPECTS(owner.value < static_cast<int>(automata_.size()));
  vars_.push_back(VarDecl{.name = std::move(name),
                          .init = static_cast<Slot>(init),
                          .min = static_cast<Slot>(min),
                          .max = static_cast<Slot>(max),
                          .owner = owner.value < 0 ? -1 : owner.value});
  return VarId{static_cast<int>(vars_.size()) - 1};
}

ClockId Network::add_clock(std::string name, int cap) {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(cap > 0);
  clocks_.push_back(ClockDecl{std::move(name), static_cast<Slot>(cap)});
  return ClockId{static_cast<int>(clocks_.size()) - 1};
}

ChanId Network::add_channel(std::string name, ChanKind kind) {
  AHB_EXPECTS(!frozen_);
  chans_.push_back(ChanDecl{std::move(name), kind});
  return ChanId{static_cast<int>(chans_.size()) - 1};
}

void Network::add_edge(AutomatonId a, Edge edge) {
  AHB_EXPECTS(!frozen_);
  auto& automaton = automata_[static_cast<std::size_t>(a.value)];
  AHB_EXPECTS(edge.src >= 0 &&
              edge.src < static_cast<int>(automaton.locations.size()));
  AHB_EXPECTS(edge.dst >= 0 &&
              edge.dst < static_cast<int>(automaton.locations.size()));
  if (edge.dir == SyncDir::None) {
    AHB_EXPECTS(edge.chan.value < 0);
  } else {
    AHB_EXPECTS(edge.chan.value >= 0 &&
                edge.chan.value < static_cast<int>(chans_.size()));
  }
  automaton.edges.push_back(std::move(edge));
}

void Network::add_symmetry_block(SymmetryMember member) {
  AHB_EXPECTS(!frozen_);
  if (!symmetry_blocks_.empty()) {
    const auto& first = symmetry_blocks_.front();
    AHB_EXPECTS(member.automata.size() == first.automata.size());
    AHB_EXPECTS(member.vars.size() == first.vars.size());
    AHB_EXPECTS(member.clocks.size() == first.clocks.size());
  }
  for (const auto a : member.automata) {
    AHB_EXPECTS(a.value >= 0 && a.value < static_cast<int>(automata_.size()));
  }
  for (const auto v : member.vars) {
    AHB_EXPECTS(v.value >= 0 && v.value < static_cast<int>(vars_.size()));
  }
  for (const auto c : member.clocks) {
    AHB_EXPECTS(c.value >= 0 && c.value < static_cast<int>(clocks_.size()));
  }
  symmetry_blocks_.push_back(std::move(member));
}

void Network::declare_dead_var(AutomatonId a, int loc_index, VarId v,
                               int value) {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(a.value >= 0 && a.value < static_cast<int>(automata_.size()));
  AHB_EXPECTS(v.value >= 0 && v.value < static_cast<int>(vars_.size()));
  const auto& automaton = automata_[static_cast<std::size_t>(a.value)];
  AHB_EXPECTS(loc_index >= 0 &&
              loc_index < static_cast<int>(automaton.locations.size()));
  dead_decls_.push_back(
      DeadDecl{static_cast<std::uint32_t>(loc_slot(a.value)),
               static_cast<Slot>(loc_index),
               static_cast<std::uint32_t>(var_slot(v.value)),
               static_cast<Slot>(value)});
}

void Network::declare_dead_clock(AutomatonId a, int loc_index, ClockId c) {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(a.value >= 0 && a.value < static_cast<int>(automata_.size()));
  AHB_EXPECTS(c.value >= 0 && c.value < static_cast<int>(clocks_.size()));
  const auto& automaton = automata_[static_cast<std::size_t>(a.value)];
  AHB_EXPECTS(loc_index >= 0 &&
              loc_index < static_cast<int>(automaton.locations.size()));
  dead_decls_.push_back(
      DeadDecl{static_cast<std::uint32_t>(loc_slot(a.value)),
               static_cast<Slot>(loc_index),
               static_cast<std::uint32_t>(clock_slot(c.value)), 0});
}

void Network::freeze() {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(!automata_.empty());
  for (const auto& a : automata_) {
    AHB_EXPECTS(!a.locations.empty());
  }
  slot_count_ = automata_.size() + vars_.size() + clocks_.size();
  StateCodec::Builder builder;
  for (const auto& a : automata_) {
    builder.add_location_slot(static_cast<int>(a.locations.size()));
  }
  for (const auto& v : vars_) {
    builder.add_var_slot(v.min, v.max, v.owner);
  }
  for (const auto& c : clocks_) {
    builder.add_clock_slot(c.cap);
  }
  codec_ = std::move(builder).build();
  if (symmetry_blocks_.size() >= 2) {
    const std::size_t stride = symmetry_blocks_.front().automata.size() +
                               symmetry_blocks_.front().vars.size() +
                               symmetry_blocks_.front().clocks.size();
    std::vector<std::uint32_t> block_slots;
    block_slots.reserve(stride * symmetry_blocks_.size());
    for (const auto& b : symmetry_blocks_) {
      for (const auto a : b.automata) {
        block_slots.push_back(static_cast<std::uint32_t>(loc_slot(a.value)));
      }
      for (const auto v : b.vars) {
        block_slots.push_back(static_cast<std::uint32_t>(var_slot(v.value)));
      }
      for (const auto c : b.clocks) {
        block_slots.push_back(static_cast<std::uint32_t>(clock_slot(c.value)));
      }
    }
    codec_.set_symmetry(stride, std::move(block_slots));
  }
  for (const auto& d : dead_decls_) {
    codec_.add_dead_rule(d.loc_slot, d.loc_value, d.target_slot, d.value);
  }
  frozen_ = true;
  // The initial state must satisfy every invariant, otherwise the model
  // is ill-formed and exploration would start from an impossible state.
  AHB_ENSURES(invariants_hold(initial_state()));
}

State Network::initial_state() const {
  AHB_EXPECTS(frozen_);
  State s(slot_count_);
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    s[loc_slot(static_cast<int>(i))] = static_cast<Slot>(automata_[i].initial);
  }
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    s[var_slot(static_cast<int>(i))] = vars_[i].init;
  }
  // Clocks start at zero, which the State constructor already ensures.
  return s;
}

bool Network::invariants_hold(const State& s) const {
  StateView view{*this, s};
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto& a = automata_[i];
    const auto loc = static_cast<std::size_t>(s[loc_slot(static_cast<int>(i))]);
    const auto& inv = a.locations[loc].invariant;
    if (inv && !inv(view)) return false;
  }
  return true;
}

bool Network::edge_guard_holds(const StateView& v, int automaton,
                               const Edge& e) const {
  if (v.state()[loc_slot(automaton)] != e.src) return false;
  return !e.guard || e.guard(v);
}

bool Network::apply_discrete_into(const State& s,
                                  std::span<const Transition::Part> parts,
                                  State& out) const {
  out.assign(s.slots());
  StateMut mut{*this, out};
  for (const auto& part : parts) {
    const auto& automaton = automata_[static_cast<std::size_t>(part.automaton)];
    const auto& edge = automaton.edges[static_cast<std::size_t>(part.edge)];
    if (edge.effect) edge.effect(mut);
    out[loc_slot(part.automaton)] = static_cast<Slot>(edge.dst);
  }
  return invariants_hold(out);
}

bool Network::committed_location_active(const State& s) const {
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto loc = static_cast<std::size_t>(s[loc_slot(static_cast<int>(i))]);
    if (automata_[i].locations[loc].kind == LocKind::Committed) return true;
  }
  return false;
}

bool Network::tick_enabled(const State& s) const {
  // Urgent/committed locations freeze time.
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto loc = static_cast<std::size_t>(s[loc_slot(static_cast<int>(i))]);
    if (automata_[i].locations[loc].kind != LocKind::Normal) return false;
  }
  State next = s;
  for (std::size_t c = 0; c < clocks_.size(); ++c) {
    auto& slot = next[clock_slot(static_cast<int>(c))];
    if (slot < clocks_[c].cap) ++slot;
  }
  return invariants_hold(next);
}

namespace {

/// Appends the scratch candidate state + parts as one discrete record.
void commit_record(SuccessorScratch& scratch, Transition::Kind kind,
                   std::span<const Transition::Part> parts, int priority) {
  SuccessorScratch::Record rec;
  rec.kind = kind;
  rec.parts_begin = static_cast<std::uint32_t>(scratch.parts.size());
  rec.parts_count = static_cast<std::uint32_t>(parts.size());
  rec.target_begin = static_cast<std::uint32_t>(scratch.targets.size());
  rec.priority = priority;
  scratch.parts.insert(scratch.parts.end(), parts.begin(), parts.end());
  scratch.targets.insert(scratch.targets.end(),
                         scratch.candidate.slots().begin(),
                         scratch.candidate.slots().end());
  scratch.records.push_back(rec);
}

}  // namespace

bool Network::collect_discrete_into(const State& s, bool committed_active,
                                    SuccessorScratch& scratch,
                                    bool first_only) const {
  StateView view{*this, s};
  const auto committed_src = [&](int automaton, const Edge& e) {
    const auto& a = automata_[static_cast<std::size_t>(automaton)];
    return a.locations[static_cast<std::size_t>(e.src)].kind ==
           LocKind::Committed;
  };

  // Internal edges.
  for (int ai = 0; ai < static_cast<int>(automata_.size()); ++ai) {
    const auto& a = automata_[static_cast<std::size_t>(ai)];
    for (int ei = 0; ei < static_cast<int>(a.edges.size()); ++ei) {
      const auto& e = a.edges[static_cast<std::size_t>(ei)];
      if (e.dir != SyncDir::None) continue;
      if (committed_active && !committed_src(ai, e)) continue;
      if (!edge_guard_holds(view, ai, e)) continue;
      const Transition::Part part{ai, ei};
      if (apply_discrete_into(s, std::span{&part, 1}, scratch.candidate)) {
        commit_record(scratch, Transition::Kind::Internal, std::span{&part, 1},
                      e.priority);
        if (first_only) return true;
      }
    }
  }

  // Synchronizations: iterate over send edges, match receive edges.
  for (int ai = 0; ai < static_cast<int>(automata_.size()); ++ai) {
    const auto& a = automata_[static_cast<std::size_t>(ai)];
    for (int ei = 0; ei < static_cast<int>(a.edges.size()); ++ei) {
      const auto& send = a.edges[static_cast<std::size_t>(ei)];
      if (send.dir != SyncDir::Send) continue;
      if (!edge_guard_holds(view, ai, send)) continue;
      const auto& chan = chans_[static_cast<std::size_t>(send.chan.value)];

      if (chan.kind == ChanKind::Handshake) {
        for (int bi = 0; bi < static_cast<int>(automata_.size()); ++bi) {
          if (bi == ai) continue;
          const auto& b = automata_[static_cast<std::size_t>(bi)];
          for (int fi = 0; fi < static_cast<int>(b.edges.size()); ++fi) {
            const auto& recv = b.edges[static_cast<std::size_t>(fi)];
            if (recv.dir != SyncDir::Recv || recv.chan != send.chan) continue;
            if (!edge_guard_holds(view, bi, recv)) continue;
            if (committed_active && !committed_src(ai, send) &&
                !committed_src(bi, recv)) {
              continue;
            }
            const Transition::Part parts[] = {{ai, ei}, {bi, fi}};
            if (apply_discrete_into(s, parts, scratch.candidate)) {
              commit_record(scratch, Transition::Kind::Sync, parts,
                            send.priority);
              if (first_only) return true;
            }
          }
        }
      } else {
        // Broadcast: every automaton with at least one enabled receive
        // edge participates; automata with several enabled receive edges
        // contribute one alternative each (cartesian product). The
        // option groups live flattened in scratch.bcast_enabled, with
        // scratch.bcast_offsets marking group boundaries.
        scratch.bcast_enabled.clear();
        scratch.bcast_offsets.assign(1, 0);
        for (int bi = 0; bi < static_cast<int>(automata_.size()); ++bi) {
          if (bi == ai) continue;
          const auto& b = automata_[static_cast<std::size_t>(bi)];
          bool any = false;
          for (int fi = 0; fi < static_cast<int>(b.edges.size()); ++fi) {
            const auto& recv = b.edges[static_cast<std::size_t>(fi)];
            if (recv.dir != SyncDir::Recv || recv.chan != send.chan) continue;
            if (edge_guard_holds(view, bi, recv)) {
              scratch.bcast_enabled.push_back({bi, fi});
              any = true;
            }
          }
          if (any) {
            scratch.bcast_offsets.push_back(
                static_cast<std::uint32_t>(scratch.bcast_enabled.size()));
          }
        }

        const std::size_t groups = scratch.bcast_offsets.size() - 1;
        scratch.bcast_pick.assign(groups, 0);
        while (true) {
          scratch.bcast_parts.clear();
          scratch.bcast_parts.push_back({ai, ei});
          for (std::size_t i = 0; i < groups; ++i) {
            scratch.bcast_parts.push_back(
                scratch.bcast_enabled[scratch.bcast_offsets[i] +
                                      scratch.bcast_pick[i]]);
          }
          const auto& bparts = scratch.bcast_parts;
          const bool committed_ok =
              !committed_active ||
              std::any_of(bparts.begin(), bparts.end(), [&](const auto& p) {
                const auto& e = automata_[static_cast<std::size_t>(p.automaton)]
                                    .edges[static_cast<std::size_t>(p.edge)];
                return committed_src(p.automaton, e);
              });
          if (committed_ok &&
              apply_discrete_into(s, bparts, scratch.candidate)) {
            commit_record(scratch, Transition::Kind::Broadcast, bparts,
                          send.priority);
            if (first_only) return true;
          }
          // Advance the mixed-radix counter over receive alternatives.
          std::size_t i = 0;
          for (; i < groups; ++i) {
            const std::size_t width =
                scratch.bcast_offsets[i + 1] - scratch.bcast_offsets[i];
            if (++scratch.bcast_pick[i] < width) break;
            scratch.bcast_pick[i] = 0;
          }
          if (i == groups) break;
        }
      }
    }
  }
  return !scratch.records.empty();
}

int Network::select_ample(const SuccessorScratch& scratch, int max_priority,
                          bool have_nonzero) const {
  // The ample candidate must lead every record it participates in with
  // only invisible edges, and those records must share no automaton
  // with the remaining records (so the pruned interleavings commute
  // into the kept ones). Bitmask bookkeeping caps at 64 automata; the
  // heartbeat networks stay far below that.
  if (automata_.size() > 64) return -1;
  const auto surviving = [&](const SuccessorScratch::Record& rec) {
    return !have_nonzero || rec.priority >= max_priority;
  };
  const auto involves = [&](const SuccessorScratch::Record& rec, int a) {
    for (std::uint32_t i = 0; i < rec.parts_count; ++i) {
      if (scratch.parts[rec.parts_begin + i].automaton == a) return true;
    }
    return false;
  };
  // Candidate automata, in ascending order for determinism.
  std::uint64_t candidates = 0;
  for (const auto& rec : scratch.records) {
    if (!surviving(rec)) continue;
    for (std::uint32_t i = 0; i < rec.parts_count; ++i) {
      candidates |= std::uint64_t{1}
                    << scratch.parts[rec.parts_begin + i].automaton;
    }
  }
  for (int a = 0; a < static_cast<int>(automata_.size()); ++a) {
    if ((candidates & (std::uint64_t{1} << a)) == 0) continue;
    bool ok = true;
    bool has_other = false;
    std::uint64_t in_mask = 0;
    std::uint64_t out_mask = 0;
    for (const auto& rec : scratch.records) {
      if (!surviving(rec)) continue;
      std::uint64_t mask = 0;
      bool all_invisible = true;
      for (std::uint32_t i = 0; i < rec.parts_count; ++i) {
        const auto& part = scratch.parts[rec.parts_begin + i];
        mask |= std::uint64_t{1} << part.automaton;
        const auto& edge = automata_[static_cast<std::size_t>(part.automaton)]
                               .edges[static_cast<std::size_t>(part.edge)];
        all_invisible = all_invisible && edge.invisible;
      }
      if (involves(rec, a)) {
        if (!all_invisible) {
          ok = false;
          break;
        }
        in_mask |= mask;
      } else {
        has_other = true;
        out_mask |= mask;
      }
    }
    if (ok && has_other && (in_mask & out_mask) == 0) return a;
  }
  return -1;
}

void Network::for_each_successor_impl(const State& s,
                                      SuccessorScratch& scratch,
                                      bool (*f)(void*, const SuccessorView&),
                                      void* ctx, bool reduced) const {
  AHB_EXPECTS(frozen_);
  AHB_EXPECTS(s.size() == slot_count_);
  scratch.targets.clear();
  scratch.parts.clear();
  scratch.records.clear();

  const bool committed_active = committed_location_active(s);
  collect_discrete_into(s, committed_active, scratch,
                        /*first_only=*/false);

  // Priority filtering: only maximal-priority discrete transitions may
  // fire. Delay is never affected by priorities.
  int max_priority = 0;
  bool have_nonzero = false;
  for (const auto& rec : scratch.records) {
    if (rec.priority != 0) have_nonzero = true;
    max_priority = std::max(max_priority, rec.priority);
  }

  // Ample-set reduction, only attempted at committed states: time is
  // frozen there (no tick to account for) and committed chains are
  // transient, so the caller's fusion depth bound doubles as the cycle
  // proviso.
  const int ample = reduced && committed_active && scratch.records.size() >= 2
                        ? select_ample(scratch, max_priority, have_nonzero)
                        : -1;

  for (const auto& rec : scratch.records) {
    if (have_nonzero && rec.priority < max_priority) continue;
    if (ample >= 0) {
      bool in_ample = false;
      for (std::uint32_t i = 0; i < rec.parts_count; ++i) {
        if (scratch.parts[rec.parts_begin + i].automaton == ample) {
          in_ample = true;
          break;
        }
      }
      if (!in_ample) continue;
    }
    SuccessorView v;
    v.target = std::span<const Slot>{scratch.targets}.subspan(rec.target_begin,
                                                              slot_count_);
    v.kind = rec.kind;
    v.sender = scratch.parts[rec.parts_begin];
    v.receivers = std::span<const Transition::Part>{scratch.parts}.subspan(
        rec.parts_begin + 1, rec.parts_count - 1);
    if (!f(ctx, v)) return;
  }

  // The tick reuses the candidate buffer: the discrete records above
  // already hold copies of their targets in the arena. Urgent and
  // committed locations freeze time.
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto loc = static_cast<std::size_t>(s[loc_slot(static_cast<int>(i))]);
    if (automata_[i].locations[loc].kind != LocKind::Normal) return;
  }
  scratch.candidate.assign(s.slots());
  for (std::size_t c = 0; c < clocks_.size(); ++c) {
    auto& slot = scratch.candidate[clock_slot(static_cast<int>(c))];
    if (slot < clocks_[c].cap) ++slot;
  }
  if (!invariants_hold(scratch.candidate)) return;
  SuccessorView tick;
  tick.target = scratch.candidate.slots();
  tick.kind = Transition::Kind::Tick;
  f(ctx, tick);
}

std::vector<Transition> Network::successors(const State& s) const {
  AHB_EXPECTS(frozen_);
  std::vector<Transition> out;
  SuccessorScratch scratch;
  for_each_successor(s, scratch, [&](const SuccessorView& v) {
    Transition t;
    t.target = ta::State{v.target};
    t.kind = v.kind;
    t.sender = v.sender;
    t.receivers.assign(v.receivers.begin(), v.receivers.end());
    out.push_back(std::move(t));
  });
  return out;
}

bool Network::has_successor(const State& s) const {
  SuccessorScratch scratch;
  return has_successor(s, scratch);
}

bool Network::has_successor(const State& s, SuccessorScratch& scratch) const {
  AHB_EXPECTS(frozen_);
  AHB_EXPECTS(s.size() == slot_count_);
  // Priority filtering never empties a non-empty discrete set and the
  // tick is unaffected by priorities, so deadlock-freedom is exactly
  // "some discrete candidate applies, or the tick is enabled" — which
  // allows an early exit on the first applicable candidate.
  scratch.targets.clear();
  scratch.parts.clear();
  scratch.records.clear();
  if (collect_discrete_into(s, committed_location_active(s), scratch,
                            /*first_only=*/true)) {
    return true;
  }
  return tick_enabled(s);
}

std::string Network::action_between(const State& from,
                                    std::span<const Slot> to,
                                    SuccessorScratch& scratch) const {
  std::string action = "<unknown>";
  for_each_successor(from, scratch, [&](const SuccessorView& v) {
    if (std::ranges::equal(v.target, to)) {
      action = label_of(v);
      return false;
    }
    return true;
  });
  return action;
}

const std::string& Network::automaton_name(AutomatonId a) const {
  return automata_[static_cast<std::size_t>(a.value)].name;
}

const std::string& Network::location_name(AutomatonId a, int loc_index) const {
  return automata_[static_cast<std::size_t>(a.value)]
      .locations[static_cast<std::size_t>(loc_index)]
      .name;
}

const std::string& Network::var_name(VarId v) const {
  return vars_[static_cast<std::size_t>(v.value)].name;
}

const std::string& Network::clock_name(ClockId c) const {
  return clocks_[static_cast<std::size_t>(c.value)].name;
}

LocKind Network::location_kind(AutomatonId a, int loc_index) const {
  return automata_[static_cast<std::size_t>(a.value)]
      .locations[static_cast<std::size_t>(loc_index)]
      .kind;
}

std::string Network::label_of(const Transition& t) const {
  if (t.kind == Transition::Kind::Tick) return "tick";
  const auto part_label = [&](const Transition::Part& p) {
    const auto& a = automata_[static_cast<std::size_t>(p.automaton)];
    const auto& e = a.edges[static_cast<std::size_t>(p.edge)];
    return a.name + "." + (e.label.empty() ? "<unlabeled>" : e.label);
  };
  std::string out = part_label(t.sender);
  for (const auto& r : t.receivers) out += " >> " + part_label(r);
  return out;
}

std::string Network::label_of(const SuccessorView& v) const {
  if (v.kind == Transition::Kind::Tick) return "tick";
  const auto part_label = [&](const Transition::Part& p) {
    const auto& a = automata_[static_cast<std::size_t>(p.automaton)];
    const auto& e = a.edges[static_cast<std::size_t>(p.edge)];
    return a.name + "." + (e.label.empty() ? "<unlabeled>" : e.label);
  };
  std::string out = part_label(v.sender);
  for (const auto& r : v.receivers) out += " >> " + part_label(r);
  return out;
}

std::string Network::describe(const State& s) const {
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto& a = automata_[i];
    parts.push_back(a.name + "@" +
                    a.locations[static_cast<std::size_t>(
                                    s[loc_slot(static_cast<int>(i))])]
                        .name);
  }
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    parts.push_back(strprintf("%s=%d", vars_[i].name.c_str(),
                              s[var_slot(static_cast<int>(i))]));
  }
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    parts.push_back(strprintf("%s=%d", clocks_[i].name.c_str(),
                              s[clock_slot(static_cast<int>(i))]));
  }
  return join(parts, "\n");
}

std::string Network::describe_brief(const State& s) const {
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto& a = automata_[i];
    parts.push_back(a.name + "@" +
                    a.locations[static_cast<std::size_t>(
                                    s[loc_slot(static_cast<int>(i))])]
                        .name);
  }
  return join(parts, " ");
}

}  // namespace ahb::ta
