#include "ta/network.hpp"

#include <algorithm>
#include <span>

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace ahb::ta {

AutomatonId Network::add_automaton(std::string name) {
  AHB_EXPECTS(!frozen_);
  automata_.push_back(Automaton{.name = std::move(name)});
  return AutomatonId{static_cast<int>(automata_.size()) - 1};
}

int Network::add_location(AutomatonId a, std::string name, LocKind kind,
                          Guard invariant) {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(a.value >= 0 &&
              a.value < static_cast<int>(automata_.size()));
  auto& locs = automata_[static_cast<std::size_t>(a.value)].locations;
  locs.push_back(
      Location{std::move(name), kind, std::move(invariant)});
  return static_cast<int>(locs.size()) - 1;
}

void Network::set_initial(AutomatonId a, int loc_index) {
  AHB_EXPECTS(!frozen_);
  auto& automaton = automata_[static_cast<std::size_t>(a.value)];
  AHB_EXPECTS(loc_index >= 0 &&
              loc_index < static_cast<int>(automaton.locations.size()));
  automaton.initial = loc_index;
}

VarId Network::add_var(std::string name, int init) {
  AHB_EXPECTS(!frozen_);
  vars_.push_back(VarDecl{std::move(name), static_cast<Slot>(init)});
  return VarId{static_cast<int>(vars_.size()) - 1};
}

ClockId Network::add_clock(std::string name, int cap) {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(cap > 0);
  clocks_.push_back(ClockDecl{std::move(name), static_cast<Slot>(cap)});
  return ClockId{static_cast<int>(clocks_.size()) - 1};
}

ChanId Network::add_channel(std::string name, ChanKind kind) {
  AHB_EXPECTS(!frozen_);
  chans_.push_back(ChanDecl{std::move(name), kind});
  return ChanId{static_cast<int>(chans_.size()) - 1};
}

void Network::add_edge(AutomatonId a, Edge edge) {
  AHB_EXPECTS(!frozen_);
  auto& automaton = automata_[static_cast<std::size_t>(a.value)];
  AHB_EXPECTS(edge.src >= 0 &&
              edge.src < static_cast<int>(automaton.locations.size()));
  AHB_EXPECTS(edge.dst >= 0 &&
              edge.dst < static_cast<int>(automaton.locations.size()));
  if (edge.dir == SyncDir::None) {
    AHB_EXPECTS(edge.chan.value < 0);
  } else {
    AHB_EXPECTS(edge.chan.value >= 0 &&
                edge.chan.value < static_cast<int>(chans_.size()));
  }
  automaton.edges.push_back(std::move(edge));
}

void Network::freeze() {
  AHB_EXPECTS(!frozen_);
  AHB_EXPECTS(!automata_.empty());
  for (const auto& a : automata_) {
    AHB_EXPECTS(!a.locations.empty());
  }
  slot_count_ = automata_.size() + vars_.size() + clocks_.size();
  frozen_ = true;
  // The initial state must satisfy every invariant, otherwise the model
  // is ill-formed and exploration would start from an impossible state.
  AHB_ENSURES(invariants_hold(initial_state()));
}

State Network::initial_state() const {
  AHB_EXPECTS(frozen_);
  State s(slot_count_);
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    s[loc_slot(static_cast<int>(i))] = static_cast<Slot>(automata_[i].initial);
  }
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    s[var_slot(static_cast<int>(i))] = vars_[i].init;
  }
  // Clocks start at zero, which the State constructor already ensures.
  return s;
}

bool Network::invariants_hold(const State& s) const {
  StateView view{*this, s};
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto& a = automata_[i];
    const auto loc = static_cast<std::size_t>(s[loc_slot(static_cast<int>(i))]);
    const auto& inv = a.locations[loc].invariant;
    if (inv && !inv(view)) return false;
  }
  return true;
}

bool Network::edge_guard_holds(const StateView& v, int automaton,
                               const Edge& e) const {
  if (v.state()[loc_slot(automaton)] != e.src) return false;
  return !e.guard || e.guard(v);
}

std::optional<State> Network::apply_discrete(
    const State& s, std::span<const Transition::Part> parts) const {
  State next = s;
  StateMut mut{*this, next};
  for (const auto& part : parts) {
    const auto& automaton = automata_[static_cast<std::size_t>(part.automaton)];
    const auto& edge = automaton.edges[static_cast<std::size_t>(part.edge)];
    if (edge.effect) edge.effect(mut);
    next[loc_slot(part.automaton)] = static_cast<Slot>(edge.dst);
  }
  if (!invariants_hold(next)) return std::nullopt;
  return next;
}

bool Network::tick_enabled(const State& s) const {
  // Urgent/committed locations freeze time.
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto loc = static_cast<std::size_t>(s[loc_slot(static_cast<int>(i))]);
    if (automata_[i].locations[loc].kind != LocKind::Normal) return false;
  }
  State next = s;
  for (std::size_t c = 0; c < clocks_.size(); ++c) {
    auto& slot = next[clock_slot(static_cast<int>(c))];
    if (slot < clocks_[c].cap) ++slot;
  }
  return invariants_hold(next);
}

void Network::collect_discrete(const State& s, bool committed_active,
                               std::vector<Transition>& out) const {
  StateView view{*this, s};
  const auto committed_src = [&](int automaton, const Edge& e) {
    const auto& a = automata_[static_cast<std::size_t>(automaton)];
    return a.locations[static_cast<std::size_t>(e.src)].kind ==
           LocKind::Committed;
  };

  // Internal edges.
  for (int ai = 0; ai < static_cast<int>(automata_.size()); ++ai) {
    const auto& a = automata_[static_cast<std::size_t>(ai)];
    for (int ei = 0; ei < static_cast<int>(a.edges.size()); ++ei) {
      const auto& e = a.edges[static_cast<std::size_t>(ei)];
      if (e.dir != SyncDir::None) continue;
      if (committed_active && !committed_src(ai, e)) continue;
      if (!edge_guard_holds(view, ai, e)) continue;
      const Transition::Part part{ai, ei};
      if (auto next = apply_discrete(s, std::span{&part, 1})) {
        Transition t;
        t.target = std::move(*next);
        t.kind = Transition::Kind::Internal;
        t.sender = part;
        out.push_back(std::move(t));
      }
    }
  }

  // Synchronizations: iterate over send edges, match receive edges.
  for (int ai = 0; ai < static_cast<int>(automata_.size()); ++ai) {
    const auto& a = automata_[static_cast<std::size_t>(ai)];
    for (int ei = 0; ei < static_cast<int>(a.edges.size()); ++ei) {
      const auto& send = a.edges[static_cast<std::size_t>(ei)];
      if (send.dir != SyncDir::Send) continue;
      if (!edge_guard_holds(view, ai, send)) continue;
      const auto& chan = chans_[static_cast<std::size_t>(send.chan.value)];

      if (chan.kind == ChanKind::Handshake) {
        for (int bi = 0; bi < static_cast<int>(automata_.size()); ++bi) {
          if (bi == ai) continue;
          const auto& b = automata_[static_cast<std::size_t>(bi)];
          for (int fi = 0; fi < static_cast<int>(b.edges.size()); ++fi) {
            const auto& recv = b.edges[static_cast<std::size_t>(fi)];
            if (recv.dir != SyncDir::Recv || recv.chan != send.chan) continue;
            if (!edge_guard_holds(view, bi, recv)) continue;
            if (committed_active && !committed_src(ai, send) &&
                !committed_src(bi, recv)) {
              continue;
            }
            const Transition::Part parts[] = {{ai, ei}, {bi, fi}};
            if (auto next = apply_discrete(s, parts)) {
              Transition t;
              t.target = std::move(*next);
              t.kind = Transition::Kind::Sync;
              t.sender = parts[0];
              t.receivers = {parts[1]};
              out.push_back(std::move(t));
            }
          }
        }
      } else {
        // Broadcast: every automaton with at least one enabled receive
        // edge participates; automata with several enabled receive edges
        // contribute one alternative each (cartesian product).
        std::vector<std::vector<Transition::Part>> options;
        for (int bi = 0; bi < static_cast<int>(automata_.size()); ++bi) {
          if (bi == ai) continue;
          const auto& b = automata_[static_cast<std::size_t>(bi)];
          std::vector<Transition::Part> enabled;
          for (int fi = 0; fi < static_cast<int>(b.edges.size()); ++fi) {
            const auto& recv = b.edges[static_cast<std::size_t>(fi)];
            if (recv.dir != SyncDir::Recv || recv.chan != send.chan) continue;
            if (edge_guard_holds(view, bi, recv)) enabled.push_back({bi, fi});
          }
          if (!enabled.empty()) options.push_back(std::move(enabled));
        }

        std::vector<std::size_t> pick(options.size(), 0);
        while (true) {
          std::vector<Transition::Part> parts;
          parts.reserve(options.size() + 1);
          parts.push_back({ai, ei});
          for (std::size_t i = 0; i < options.size(); ++i) {
            parts.push_back(options[i][pick[i]]);
          }
          const bool committed_ok =
              !committed_active ||
              std::any_of(parts.begin(), parts.end(), [&](const auto& p) {
                const auto& e = automata_[static_cast<std::size_t>(p.automaton)]
                                    .edges[static_cast<std::size_t>(p.edge)];
                return committed_src(p.automaton, e);
              });
          if (committed_ok) {
            if (auto next = apply_discrete(s, parts)) {
              Transition t;
              t.target = std::move(*next);
              t.kind = Transition::Kind::Broadcast;
              t.sender = parts[0];
              t.receivers.assign(parts.begin() + 1, parts.end());
              out.push_back(std::move(t));
            }
          }
          // Advance the mixed-radix counter over receive alternatives.
          std::size_t i = 0;
          for (; i < options.size(); ++i) {
            if (++pick[i] < options[i].size()) break;
            pick[i] = 0;
          }
          if (i == options.size()) break;
        }
      }
    }
  }
}

std::vector<Transition> Network::successors(const State& s) const {
  AHB_EXPECTS(frozen_);
  bool committed_active = false;
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto loc = static_cast<std::size_t>(s[loc_slot(static_cast<int>(i))]);
    if (automata_[i].locations[loc].kind == LocKind::Committed) {
      committed_active = true;
      break;
    }
  }

  std::vector<Transition> out;
  collect_discrete(s, committed_active, out);

  // Priority filtering: only maximal-priority discrete transitions may
  // fire. Delay is never affected by priorities.
  int max_priority = 0;
  bool have_nonzero = false;
  for (const auto& t : out) {
    const auto& e = automata_[static_cast<std::size_t>(t.sender.automaton)]
                        .edges[static_cast<std::size_t>(t.sender.edge)];
    if (e.priority != 0) have_nonzero = true;
    max_priority = std::max(max_priority, e.priority);
  }
  if (have_nonzero) {
    std::erase_if(out, [&](const Transition& t) {
      const auto& e = automata_[static_cast<std::size_t>(t.sender.automaton)]
                          .edges[static_cast<std::size_t>(t.sender.edge)];
      return e.priority < max_priority;
    });
  }

  if (tick_enabled(s)) {
    Transition tick;
    tick.kind = Transition::Kind::Tick;
    tick.target = s;
    for (std::size_t c = 0; c < clocks_.size(); ++c) {
      auto& slot = tick.target[clock_slot(static_cast<int>(c))];
      if (slot < clocks_[c].cap) ++slot;
    }
    out.push_back(std::move(tick));
  }
  return out;
}

const std::string& Network::automaton_name(AutomatonId a) const {
  return automata_[static_cast<std::size_t>(a.value)].name;
}

const std::string& Network::location_name(AutomatonId a, int loc_index) const {
  return automata_[static_cast<std::size_t>(a.value)]
      .locations[static_cast<std::size_t>(loc_index)]
      .name;
}

const std::string& Network::var_name(VarId v) const {
  return vars_[static_cast<std::size_t>(v.value)].name;
}

const std::string& Network::clock_name(ClockId c) const {
  return clocks_[static_cast<std::size_t>(c.value)].name;
}

LocKind Network::location_kind(AutomatonId a, int loc_index) const {
  return automata_[static_cast<std::size_t>(a.value)]
      .locations[static_cast<std::size_t>(loc_index)]
      .kind;
}

std::string Network::label_of(const Transition& t) const {
  if (t.kind == Transition::Kind::Tick) return "tick";
  const auto part_label = [&](const Transition::Part& p) {
    const auto& a = automata_[static_cast<std::size_t>(p.automaton)];
    const auto& e = a.edges[static_cast<std::size_t>(p.edge)];
    return a.name + "." + (e.label.empty() ? "<unlabeled>" : e.label);
  };
  std::string out = part_label(t.sender);
  for (const auto& r : t.receivers) out += " >> " + part_label(r);
  return out;
}

std::string Network::describe(const State& s) const {
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto& a = automata_[i];
    parts.push_back(a.name + "@" +
                    a.locations[static_cast<std::size_t>(
                                    s[loc_slot(static_cast<int>(i))])]
                        .name);
  }
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    parts.push_back(strprintf("%s=%d", vars_[i].name.c_str(),
                              s[var_slot(static_cast<int>(i))]));
  }
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    parts.push_back(strprintf("%s=%d", clocks_[i].name.c_str(),
                              s[clock_slot(static_cast<int>(i))]));
  }
  return join(parts, "\n");
}

std::string Network::describe_brief(const State& s) const {
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < automata_.size(); ++i) {
    const auto& a = automata_[i];
    parts.push_back(a.name + "@" +
                    a.locations[static_cast<std::size_t>(
                                    s[loc_slot(static_cast<int>(i))])]
                        .name);
  }
  return join(parts, " ");
}

}  // namespace ahb::ta
