// Compressed state encodings for the explorer's stores (SPIN-style).
//
// A frozen Network knows the exact value range of every slot: location
// slots range over [0, #locations-1], clocks saturate at their cap, and
// variables carry a declared range (defaulting to the full Slot range
// when unannotated). The StateCodec derives two encodings from that
// metadata:
//
//  - Pack: every slot bit-packed to its actual width (booleans 1 bit,
//    clocks ceil(log2(cap+1)) bits) instead of 16. Injective, fixed
//    stride, order-preserving per slot.
//  - Collapse (after SPIN's COLLAPSE mode): each automaton's local
//    sub-vector — its location slot plus the variables declared as owned
//    by it — is interned once in a small per-component table; the global
//    store keeps only the tuple of component indices plus the bit-packed
//    residue (clocks and unowned variables). Component index fields are
//    sized by the product of the member ranges, capped at 32 bits: for
//    small automata the index is no wider than the packed members, and
//    for large ones (many owned variables) the 32-bit cap is where
//    collapse beats plain packing.
//
// Both encodings are deterministic functions of the frozen layout, so
// state identity — and therefore reachable-state counts, verdicts and
// counterexample lengths — is invariant under compression.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ta/ids.hpp"

namespace ahb::ta {

/// Store encoding selected via mc::SearchLimits::compression.
enum class Compression : std::uint8_t { None, Pack, Collapse };

const char* to_string(Compression mode);

/// Orbit canonicalization selected via mc::SearchLimits::symmetry.
/// `Participants` sorts the network's declared symmetric participant
/// blocks (and resets declared dead slots) before interning, so each
/// orbit of the participant-permutation group is represented once.
/// Requires the model's predicates to be permutation-invariant.
enum class Symmetry : std::uint8_t { None, Participants };

const char* to_string(Symmetry mode);

class StateCodec {
 public:
  /// Bit-field of one slot. width == 0 means the slot is constant
  /// (single-valued range): it occupies no bits and decodes to `base`.
  struct Field {
    Slot base = 0;           ///< minimum representable value
    std::uint8_t width = 0;  ///< bits used; values encode as value-base
  };

  /// One COLLAPSE component: an automaton's location slot plus its
  /// owned variables, interned as a packed key of `key_bytes` bytes.
  /// Components with key_bits <= 64 take the stores' inline fast path
  /// (pack_component_key), wider ones spill to byte-array keys.
  struct Component {
    std::vector<std::uint32_t> slots;  ///< member slot indices, ascending
    std::size_t key_bytes = 0;         ///< packed size of the member slots
    std::size_t key_bits = 0;          ///< total member field width
    std::uint8_t index_bits = 0;       ///< root index field width (0 =>
                                       ///< single-valued, nothing stored)
  };

  /// Incrementally describes the frozen slot layout, in slot order
  /// (locations, then variables, then clocks). Used by Network::freeze.
  class Builder {
   public:
    void add_location_slot(int location_count);
    /// owner < 0 leaves the variable in the root residue (shared).
    void add_var_slot(int min, int max, int owner);
    void add_clock_slot(int cap);
    StateCodec build() &&;

   private:
    struct SlotDecl {
      Slot min = 0;
      Slot max = 0;
      int owner = -1;  ///< owning automaton for location/owned-var slots
    };
    std::vector<SlotDecl> decls_;
    std::size_t location_slots_ = 0;
    bool vars_started_ = false;
  };

  StateCodec() = default;

  std::size_t slot_count() const { return fields_.size(); }
  const Field& field(std::size_t slot) const { return fields_[slot]; }

  // ---- full-state bit-packing (Pack mode; also the canonical hash
  // image for sharding/filters in every compressed mode) ----

  std::size_t packed_bytes() const { return packed_bytes_; }

  /// Packs `slots` into `out[0..packed_bytes)`. Zero-fills trailing
  /// slack bits, so packed images are memcmp- and hash-comparable.
  /// Aborts if any slot is outside its declared range.
  void pack(std::span<const Slot> slots, std::byte* out) const;
  void unpack(const std::byte* in, std::span<Slot> out) const;

  /// hash_bytes of the packed image; `scratch` must hold at least
  /// packed_bytes() bytes. Injectivity of pack() makes this an exact
  /// stand-in for hashing the raw slot vector.
  std::uint64_t packed_hash(std::span<const Slot> slots,
                            std::span<std::byte> scratch) const;

  // ---- COLLAPSE partition (Collapse mode) ----

  std::size_t component_count() const { return components_.size(); }
  const Component& component(std::size_t c) const { return components_[c]; }

  void pack_component(std::size_t c, std::span<const Slot> state,
                      std::byte* out) const;
  void unpack_component(std::size_t c, const std::byte* in,
                        std::span<Slot> state) const;

  /// Inline component key for the stores' open-addressing fast path.
  /// Only valid when component(c).key_bits <= 64; injective over the
  /// member slots, so a uint64 compare replaces the byte-array memcmp.
  std::uint64_t pack_component_key(std::size_t c,
                                   std::span<const Slot> state) const;
  void unpack_component_key(std::size_t c, std::uint64_t key,
                            std::span<Slot> state) const;

  /// Collapse root: one index field per non-constant component, then the
  /// bit-packed residue slots (clocks and unowned variables).
  std::size_t root_bytes() const { return root_bytes_; }
  std::size_t root_bits() const { return root_bits_; }
  const std::vector<std::uint32_t>& residue_slots() const {
    return residue_slots_;
  }

  /// `indices[c]` is ignored for components with index_bits == 0.
  void pack_root(std::span<const std::uint32_t> indices,
                 std::span<const Slot> state, std::byte* out) const;
  /// Fills `indices` (0 for constant components) and the residue slots
  /// of `state`; component member slots are left untouched.
  void unpack_root(const std::byte* in, std::span<std::uint32_t> indices,
                   std::span<Slot> state) const;

  /// Inline root key for the stores' open-addressing fast path. Only
  /// valid when root_bits() <= 64 (true for the heartbeat models up to
  /// several participants); injective over (indices, residue slots), so
  /// interning a state is pure shift/or arithmetic plus uint64 compares
  /// — no bit-window memcpys, no byte-wise hash.
  std::uint64_t pack_root_key(std::span<const std::uint32_t> indices,
                              std::span<const Slot> state) const;
  void unpack_root_key(std::uint64_t key, std::span<std::uint32_t> indices,
                       std::span<Slot> state) const;

  // ---- orbit canonicalization (Symmetry::Participants) ----
  //
  // The network declares, at freeze() time, a list of congruent
  // symmetric blocks (one per participant: its automata's location
  // slots, owned variables and clocks, all in the same role order) plus
  // dead-slot rules (slots whose value is unreadable while an automaton
  // occupies a given location). canonicalize() first resets dead slots
  // to their rule value, then sorts the blocks into lexicographic
  // order, yielding one representative per orbit of the product of the
  // participant-permutation group with the dead-value groups. Sound for
  // exploration whenever the model is equivariant (congruent blocks,
  // permutation-invariant shared guards/predicates) and the dead rules
  // are true deadness (value never read before being rewritten).

  /// Declares the symmetric blocks: `block_slots` holds `block_count`
  /// consecutive groups of `stride` slot indices; position k of every
  /// block must have an identical Field (congruence is asserted).
  void set_symmetry(std::size_t stride,
                    std::vector<std::uint32_t> block_slots);

  /// Declares `target_slot` dead (reset to `value`) whenever the
  /// automaton whose location lives in `loc_slot` occupies `loc_value`.
  void add_dead_rule(std::uint32_t loc_slot, Slot loc_value,
                     std::uint32_t target_slot, Slot value);

  /// True iff canonicalize() is not the identity (symmetry blocks or
  /// dead rules were declared).
  bool has_canonicalization() const {
    return sym_stride_ != 0 || !dead_rules_.empty();
  }

  std::size_t symmetry_stride() const { return sym_stride_; }
  std::size_t symmetry_block_count() const {
    return sym_stride_ == 0 ? 0 : sym_slots_.size() / sym_stride_;
  }
  /// Slot indices of block `b`, length symmetry_stride().
  std::span<const std::uint32_t> symmetry_block(std::size_t b) const {
    return std::span<const std::uint32_t>{sym_slots_}.subspan(
        b * sym_stride_, sym_stride_);
  }

  /// Rewrites `state` in place to its orbit representative: dead-slot
  /// reset, then lexicographic block sort. Idempotent; a no-op when
  /// nothing was declared.
  void canonicalize(std::span<Slot> state) const;

 private:
  friend class Builder;

  struct DeadAction {
    std::uint32_t slot = 0;
    Slot value = 0;
  };

  std::vector<Field> fields_;
  std::vector<Component> components_;
  std::vector<std::uint32_t> residue_slots_;
  std::size_t packed_bits_ = 0;
  std::size_t packed_bytes_ = 0;
  std::size_t root_bits_ = 0;
  std::size_t root_bytes_ = 0;

  // Canonicalization metadata (empty unless the network declared it).
  std::size_t sym_stride_ = 0;
  std::vector<std::uint32_t> sym_slots_;  ///< block-major, blocks*stride
  /// dead_rules_[loc_slot][loc_value] -> actions; outer vectors sized
  /// on demand, so undeclared (slot, value) pairs cost one bounds check.
  std::vector<std::vector<std::vector<DeadAction>>> dead_rules_;
};

}  // namespace ahb::ta
