// Discrete-time timed-automata networks (the UPPAAL stand-in).
//
// Semantics (digitized): time advances in unit ticks that increment every
// clock simultaneously; discrete transitions are instantaneous. A tick is
// enabled iff no automaton occupies an urgent or committed location and
// every location invariant still holds after the increment. Clocks
// saturate at a per-clock cap (one above the largest constant they are
// compared against), which keeps the state space finite without changing
// the truth of any guard.
//
// Digitization is sound and complete for the reachability properties
// checked in this repository because all upper-bound guards and
// invariants in the models are closed (<=, ==) with integer constants
// (Henzinger/Manna/Pnueli); the only strict comparisons are lower bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "ta/codec.hpp"
#include "ta/ids.hpp"
#include "ta/state.hpp"

namespace ahb::ta {

class Network;

/// Read-only view of a state, resolved through the network layout.
/// Guards and invariants receive one of these.
class StateView {
 public:
  StateView(const Network& net, const State& state)
      : net_(&net), state_(&state) {}
  // A view must not outlive its state; binding a temporary is an error.
  StateView(const Network&, State&&) = delete;

  Slot loc(AutomatonId a) const;
  Slot var(VarId v) const;
  Slot clk(ClockId c) const;

  /// True iff automaton `a` currently occupies location index `loc`.
  bool in(AutomatonId a, int loc_index) const { return loc(a) == loc_index; }

  const Network& network() const { return *net_; }
  const State& state() const { return *state_; }

 private:
  const Network* net_;
  const State* state_;
};

/// Mutable access used by edge effects. Effects may update variables and
/// reset clocks; location changes are applied by the engine itself.
class StateMut {
 public:
  StateMut(const Network& net, State& state) : net_(&net), state_(&state) {}

  Slot var(VarId v) const;
  Slot clk(ClockId c) const;
  Slot loc(AutomatonId a) const;

  void set(VarId v, int value);
  void reset(ClockId c);

 private:
  const Network* net_;
  State* state_;
};

using Guard = std::function<bool(const StateView&)>;
using Effect = std::function<void(StateMut&)>;

struct Edge {
  int src = -1;
  int dst = -1;
  ChanId chan{};            ///< invalid (-1) for internal edges
  SyncDir dir = SyncDir::None;
  Guard guard;              ///< null means "true"
  Effect effect;            ///< null means "no effect"
  std::string label;        ///< action name used in counterexample traces
  int priority = 0;         ///< among enabled discrete transitions, only
                            ///< those of maximal priority may fire
  /// Partial-order-reduction contract: the edge's effect writes only
  /// slots that no other automaton's guard, invariant or effect reads,
  /// and no verification predicate depends on those slots or on the
  /// participating locations. Declaring an edge invisible when this
  /// does not hold makes the ample reduction unsound.
  bool invisible = false;
};

/// One discrete or delay step of the network.
struct Transition {
  enum class Kind : std::uint8_t { Tick, Internal, Sync, Broadcast };

  struct Part {
    int automaton = -1;
    int edge = -1;  ///< index into that automaton's edge list

    friend bool operator==(const Part&, const Part&) = default;
  };

  State target;
  Kind kind = Kind::Tick;
  Part sender{};                ///< the internal edge for Kind::Internal
  std::vector<Part> receivers;  ///< one for Sync, zero or more for Broadcast
};

/// Borrowed view of one successor, handed to for_each_successor
/// callbacks. `target` (and the receiver span) point into the
/// SuccessorScratch and are valid only for the duration of the callback;
/// copy them (e.g. by interning) to keep them.
struct SuccessorView {
  std::span<const Slot> target;
  Transition::Kind kind = Transition::Kind::Tick;
  Transition::Part sender{};
  std::span<const Transition::Part> receivers;
};

/// Reusable per-caller (per-worker) buffers for successor generation.
/// One scratch must not be shared between concurrent callers, and a
/// callback running inside for_each_successor must not re-enter the
/// generator with the same scratch (use a second scratch instead).
///
/// All members are implementation details of Network::for_each_successor;
/// callers only default-construct and reuse the object.
struct SuccessorScratch {
  std::vector<Slot> targets;             ///< packed candidate target states
  std::vector<Transition::Part> parts;   ///< sender+receivers, packed
  struct Record {
    Transition::Kind kind;
    std::uint32_t parts_begin = 0;  ///< into `parts`; first part = sender
    std::uint32_t parts_count = 0;
    std::uint32_t target_begin = 0;  ///< into `targets`
    int priority = 0;
  };
  std::vector<Record> records;
  State candidate;  ///< working buffer for effect application

  // Broadcast enumeration buffers (flattened receive-option groups plus
  // the mixed-radix counter over them).
  std::vector<Transition::Part> bcast_enabled;
  std::vector<std::uint32_t> bcast_offsets;
  std::vector<std::size_t> bcast_pick;
  std::vector<Transition::Part> bcast_parts;
};

/// A network of timed automata over shared variables, clocks and channels.
///
/// Usage: construct, add automata/locations/edges/variables/clocks/
/// channels, then freeze(); afterwards only the semantic queries
/// (initial_state, successors, ...) may be used.
class Network {
 public:
  Network() = default;

  // ---- construction (before freeze) ----

  AutomatonId add_automaton(std::string name);

  /// Adds a location; returns its index within the automaton.
  /// The first location added is the initial one unless set_initial is
  /// called. `invariant` is evaluated on candidate states (after ticks
  /// and after discrete transitions); a null invariant is "true".
  int add_location(AutomatonId a, std::string name,
                   LocKind kind = LocKind::Normal, Guard invariant = nullptr);

  void set_initial(AutomatonId a, int loc_index);

  VarId add_var(std::string name, int init);

  /// Declares the variable's reachable range [min, max] — used by the
  /// state codec to bit-pack the slot — and optionally the automaton
  /// whose COLLAPSE component the variable belongs to (an invalid id
  /// leaves it shared, i.e. stored in the collapse root). The range is
  /// a contract: the codec aborts on out-of-range values, so declare a
  /// superset when in doubt. The two-argument overload keeps the full
  /// Slot range and no owner.
  VarId add_var(std::string name, int init, int min, int max,
                AutomatonId owner = AutomatonId{});

  ClockId add_clock(std::string name, int cap);
  ChanId add_channel(std::string name, ChanKind kind);

  void add_edge(AutomatonId a, Edge edge);

  // ---- reduction declarations (before freeze) ----

  /// One symmetric participant: the automata, variables and clocks that
  /// make up its block, in a fixed role order shared by every block.
  struct SymmetryMember {
    std::vector<AutomatonId> automata;
    std::vector<VarId> vars;
    std::vector<ClockId> clocks;
  };

  /// Declares one block of the full-symmetry (scalarset) group. All
  /// blocks must be congruent: same member counts in the same role
  /// order, with identical location counts / ranges / caps position by
  /// position (checked at freeze). Soundness contract: the model must
  /// be equivariant under permuting the blocks — congruent edge
  /// structure and permutation-invariant shared guards and predicates.
  void add_symmetry_block(SymmetryMember member);

  /// Declares that `v` is never read while automaton `a` occupies
  /// location `loc_index` before being rewritten, so canonicalization
  /// may reset it to `value` there (dead-variable reduction).
  void declare_dead_var(AutomatonId a, int loc_index, VarId v, int value);

  /// Same for a clock; dead clocks reset to 0.
  void declare_dead_clock(AutomatonId a, int loc_index, ClockId c);

  /// Validates the model and fixes the state layout. Must be called
  /// exactly once, before any semantic query.
  void freeze();

  // ---- semantics (after freeze) ----

  bool frozen() const { return frozen_; }
  State initial_state() const;

  /// All enabled transitions from `s`: the maximal-priority discrete
  /// transitions (respecting committed-location semantics) plus the tick
  /// if delay is allowed.
  ///
  /// Compatibility wrapper over for_each_successor: materializes every
  /// successor into a fresh vector. Hot paths (explorer, NDFS, LTS
  /// extraction) use for_each_successor directly to stay allocation-free.
  std::vector<Transition> successors(const State& s) const;

  /// Streams the enabled transitions of `s` (same set and order as
  /// successors()) into `f` without allocating: candidate targets are
  /// built in `scratch`, which is reused across calls. `f` receives a
  /// SuccessorView valid only during the call; if `f` returns bool,
  /// returning false stops the enumeration early.
  template <typename F>
  void for_each_successor(const State& s, SuccessorScratch& scratch,
                          F&& f) const {
    for_each_successor_dispatch(s, scratch, /*reduced=*/false,
                                std::forward<F>(f));
  }

  /// Like for_each_successor, but applies the ample-set partial-order
  /// reduction at committed states: when one committed automaton's
  /// enabled records are all invisible and share no automaton with the
  /// other enabled records, only that automaton's records are emitted.
  /// Sound for any property over the declared-visible state because the
  /// pruned interleavings reach the same set of visible states (the
  /// caller's cycle proviso — committed chains are expanded with a
  /// bounded depth, see mc::Explorer — keeps repeated-state reasoning
  /// sound). At non-committed states this is exactly
  /// for_each_successor.
  template <typename F>
  void for_each_successor_reduced(const State& s, SuccessorScratch& scratch,
                                  F&& f) const {
    for_each_successor_dispatch(s, scratch, /*reduced=*/true,
                                std::forward<F>(f));
  }

  /// True iff `s` has at least one successor. Early-exits on the first
  /// applicable discrete edge instead of materializing the full
  /// successor vector (the emptiness test is the deadlock check, which
  /// runs once per explored state).
  bool has_successor(const State& s) const;
  bool has_successor(const State& s, SuccessorScratch& scratch) const;

  /// Label of some transition from `from` to the state with slots `to`,
  /// or "<unknown>" if none connects them. Used when rebuilding
  /// counterexample traces, where labels are re-derived instead of being
  /// stored per state.
  std::string action_between(const State& from, std::span<const Slot> to,
                             SuccessorScratch& scratch) const;

  /// True iff the unit delay step is enabled in `s`.
  bool tick_enabled(const State& s) const;

  /// True iff every location invariant holds in `s`.
  bool invariants_hold(const State& s) const;

  /// True iff some automaton occupies a committed location in `s`.
  /// Committed states are transient (time is frozen and only
  /// committed-source edges may fire); the explorer's committed-chain
  /// fusion expands through them without interning.
  bool committed_location_active(const State& s) const;

  // ---- introspection ----

  std::size_t automaton_count() const { return automata_.size(); }
  std::size_t var_count() const { return vars_.size(); }
  std::size_t clock_count() const { return clocks_.size(); }
  std::size_t slot_count() const { return slot_count_; }

  /// Compressed-state codec derived from the layout at freeze() time.
  const StateCodec& codec() const { return codec_; }

  const std::string& automaton_name(AutomatonId a) const;
  const std::string& location_name(AutomatonId a, int loc_index) const;
  const std::string& var_name(VarId v) const;
  const std::string& clock_name(ClockId c) const;
  LocKind location_kind(AutomatonId a, int loc_index) const;

  /// Human-readable action label of a transition ("tick",
  /// "p0.send_beat -> ch.recv_beat", ...).
  std::string label_of(const Transition& t) const;
  std::string label_of(const SuccessorView& v) const;

  /// Multi-line dump of a state (locations, variables, clocks).
  std::string describe(const State& s) const;

  /// Single-line dump of a state.
  std::string describe_brief(const State& s) const;

 private:
  friend class StateView;
  friend class StateMut;

  struct Location {
    std::string name;
    LocKind kind = LocKind::Normal;
    Guard invariant;
  };

  struct Automaton {
    std::string name;
    std::vector<Location> locations;
    std::vector<Edge> edges;
    int initial = 0;
  };

  struct VarDecl {
    std::string name;
    Slot init = 0;
    Slot min = std::numeric_limits<Slot>::min();
    Slot max = std::numeric_limits<Slot>::max();
    int owner = -1;  ///< owning automaton for COLLAPSE, -1 = shared
  };

  struct ClockDecl {
    std::string name;
    Slot cap = 0;
  };

  struct ChanDecl {
    std::string name;
    ChanKind kind = ChanKind::Handshake;
  };

  // Slot layout helpers (valid after freeze).
  std::size_t loc_slot(int automaton) const {
    return static_cast<std::size_t>(automaton);
  }
  std::size_t var_slot(int var) const {
    return automata_.size() + static_cast<std::size_t>(var);
  }
  std::size_t clock_slot(int clock) const {
    return automata_.size() + vars_.size() + static_cast<std::size_t>(clock);
  }

  bool edge_guard_holds(const StateView& v, int automaton,
                        const Edge& e) const;

  /// Applies a discrete transition (effects in `parts` order, then
  /// location moves) on top of `s` into the reusable buffer `out`;
  /// returns false (leaving `out` unspecified) when an invariant rejects
  /// the result.
  bool apply_discrete_into(const State& s,
                           std::span<const Transition::Part> parts,
                           State& out) const;

  /// Non-template core of for_each_successor. With `reduced`, the
  /// ample-set filter runs after priority filtering (see
  /// for_each_successor_reduced).
  void for_each_successor_impl(const State& s, SuccessorScratch& scratch,
                               bool (*f)(void*, const SuccessorView&),
                               void* ctx, bool reduced) const;

  template <typename F>
  void for_each_successor_dispatch(const State& s, SuccessorScratch& scratch,
                                   bool reduced, F&& f) const {
    for_each_successor_impl(
        s, scratch,
        [](void* ctx, const SuccessorView& v) -> bool {
          auto& fn =
              *static_cast<std::remove_const_t<std::remove_reference_t<F>>*>(
                  ctx);
          if constexpr (std::is_void_v<decltype(fn(v))>) {
            fn(v);
            return true;
          } else {
            return fn(v);
          }
        },
        const_cast<std::remove_const_t<std::remove_reference_t<F>>*>(
            std::addressof(f)),
        reduced);
  }

  /// Ample-set selection over the priority-surviving records: returns
  /// the chosen automaton id, or -1 when no sound ample subset exists
  /// (full expansion). `max_priority`/`have_nonzero` replicate the
  /// emission filter.
  int select_ample(const SuccessorScratch& scratch, int max_priority,
                   bool have_nonzero) const;

  /// Generates discrete candidates of `s` into scratch.records (priority
  /// filtering happens at emission time). With `first_only` it stops at
  /// the first applicable candidate. Returns whether any was recorded.
  bool collect_discrete_into(const State& s, bool committed_active,
                             SuccessorScratch& scratch,
                             bool first_only) const;

  struct DeadDecl {
    std::uint32_t loc_slot = 0;
    Slot loc_value = 0;
    std::uint32_t target_slot = 0;
    Slot value = 0;
  };

  std::vector<Automaton> automata_;
  std::vector<VarDecl> vars_;
  std::vector<ClockDecl> clocks_;
  std::vector<ChanDecl> chans_;
  std::vector<SymmetryMember> symmetry_blocks_;  ///< pending until freeze
  std::vector<DeadDecl> dead_decls_;             ///< pending until freeze
  StateCodec codec_;
  std::size_t slot_count_ = 0;
  bool frozen_ = false;
};

// ---- inline accessors ----

inline Slot StateView::loc(AutomatonId a) const {
  return (*state_)[net_->loc_slot(a.value)];
}
inline Slot StateView::var(VarId v) const {
  return (*state_)[net_->var_slot(v.value)];
}
inline Slot StateView::clk(ClockId c) const {
  return (*state_)[net_->clock_slot(c.value)];
}

inline Slot StateMut::var(VarId v) const {
  return (*state_)[net_->var_slot(v.value)];
}
inline Slot StateMut::clk(ClockId c) const {
  return (*state_)[net_->clock_slot(c.value)];
}
inline Slot StateMut::loc(AutomatonId a) const {
  return (*state_)[net_->loc_slot(a.value)];
}
inline void StateMut::set(VarId v, int value) {
  (*state_)[net_->var_slot(v.value)] = static_cast<Slot>(value);
}
inline void StateMut::reset(ClockId c) {
  (*state_)[net_->clock_slot(c.value)] = 0;
}

}  // namespace ahb::ta
