#include "ta/codec.hpp"

#include <bit>
#include <cstring>

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace ahb::ta {

// The bit windows below memcpy through std::uint64_t and rely on byte 0
// being the least significant one.
static_assert(std::endian::native == std::endian::little,
              "StateCodec bit windows assume a little-endian target");

namespace {

/// Widest bit-field the codec emits: component indices are capped here,
/// and unannotated variables (full Slot range) need 16 < 32 bits.
constexpr unsigned kMaxFieldBits = 32;

/// ORs `width` bits of `value` into `buf` at bit offset `bit`. The
/// destination bits must be zero (buffers are zero-filled before
/// packing). width <= 32, so the shifted value fits a 64-bit window.
inline void put_bits(std::byte* buf, std::size_t bit, unsigned width,
                     std::uint64_t value) {
  if (width == 0) return;
  const std::size_t byte = bit >> 3;
  const unsigned shift = static_cast<unsigned>(bit & 7);
  const unsigned nbytes = (shift + width + 7) / 8;
  std::uint64_t window = 0;
  std::memcpy(&window, buf + byte, nbytes);
  window |= value << shift;
  std::memcpy(buf + byte, &window, nbytes);
}

inline std::uint64_t get_bits(const std::byte* buf, std::size_t bit,
                              unsigned width) {
  if (width == 0) return 0;
  const std::size_t byte = bit >> 3;
  const unsigned shift = static_cast<unsigned>(bit & 7);
  const unsigned nbytes = (shift + width + 7) / 8;
  std::uint64_t window = 0;
  std::memcpy(&window, buf + byte, nbytes);
  return (window >> shift) & ((std::uint64_t{1} << width) - 1);
}

/// Bits needed to encode the range [min, max] as value-min.
inline std::uint8_t range_width(Slot min, Slot max) {
  const auto span = static_cast<std::uint32_t>(static_cast<std::int32_t>(max) -
                                               static_cast<std::int32_t>(min));
  return static_cast<std::uint8_t>(std::bit_width(span));
}

}  // namespace

const char* to_string(Compression mode) {
  switch (mode) {
    case Compression::None:
      return "none";
    case Compression::Pack:
      return "pack";
    case Compression::Collapse:
      return "collapse";
  }
  return "?";
}

const char* to_string(Symmetry mode) {
  switch (mode) {
    case Symmetry::None:
      return "none";
    case Symmetry::Participants:
      return "participants";
  }
  return "?";
}

// ---- Builder ----

void StateCodec::Builder::add_location_slot(int location_count) {
  AHB_EXPECTS(!vars_started_);  // locations come first in the layout
  AHB_EXPECTS(location_count >= 1);
  decls_.push_back(SlotDecl{0, static_cast<Slot>(location_count - 1),
                            static_cast<int>(location_slots_)});
  ++location_slots_;
}

void StateCodec::Builder::add_var_slot(int min, int max, int owner) {
  AHB_EXPECTS(min <= max);
  AHB_EXPECTS(owner < static_cast<int>(location_slots_));
  vars_started_ = true;
  decls_.push_back(SlotDecl{static_cast<Slot>(min), static_cast<Slot>(max),
                            owner < 0 ? -1 : owner});
}

void StateCodec::Builder::add_clock_slot(int cap) {
  AHB_EXPECTS(cap > 0);
  decls_.push_back(SlotDecl{0, static_cast<Slot>(cap), -1});
}

StateCodec StateCodec::Builder::build() && {
  StateCodec codec;
  codec.fields_.reserve(decls_.size());
  codec.components_.resize(location_slots_);
  for (std::size_t slot = 0; slot < decls_.size(); ++slot) {
    const auto& d = decls_[slot];
    codec.fields_.push_back(Field{d.min, range_width(d.min, d.max)});
    codec.packed_bits_ += codec.fields_.back().width;
    if (d.owner >= 0) {
      codec.components_[static_cast<std::size_t>(d.owner)].slots.push_back(
          static_cast<std::uint32_t>(slot));
    } else if (slot >= location_slots_) {
      codec.residue_slots_.push_back(static_cast<std::uint32_t>(slot));
    }
  }
  codec.packed_bytes_ = (codec.packed_bits_ + 7) / 8;

  for (auto& comp : codec.components_) {
    std::size_t key_bits = 0;
    // Saturating product of the member range sizes: the true number of
    // distinct member tuples when it fits, else the 2^32 cap (the store
    // index space bounds real counts well below that).
    std::uint64_t product = 1;
    for (const auto slot : comp.slots) {
      key_bits += codec.fields_[slot].width;
      if (product <= (std::uint64_t{1} << kMaxFieldBits)) {
        const auto& d = decls_[slot];
        product *= static_cast<std::uint64_t>(d.max - d.min) + 1;
      }
    }
    comp.key_bytes = (key_bits + 7) / 8;
    comp.key_bits = key_bits;
    if (product > 1) {
      product = std::min(product, std::uint64_t{1} << kMaxFieldBits);
      comp.index_bits = static_cast<std::uint8_t>(
          std::min<unsigned>(std::bit_width(product - 1), kMaxFieldBits));
    }
    codec.root_bits_ += comp.index_bits;
  }
  for (const auto slot : codec.residue_slots_) {
    codec.root_bits_ += codec.fields_[slot].width;
  }
  codec.root_bytes_ = (codec.root_bits_ + 7) / 8;
  return codec;
}

// ---- full-state packing ----

void StateCodec::pack(std::span<const Slot> slots, std::byte* out) const {
  AHB_EXPECTS(slots.size() == fields_.size());
  std::memset(out, 0, packed_bytes_);
  std::size_t bit = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Field& f = fields_[i];
    AHB_ASSERT(slots[i] >= f.base);
    const auto value =
        static_cast<std::uint64_t>(static_cast<std::int32_t>(slots[i]) -
                                   static_cast<std::int32_t>(f.base));
    AHB_ASSERT(f.width == kMaxFieldBits ||
               value < (std::uint64_t{1} << f.width));
    put_bits(out, bit, f.width, value);
    bit += f.width;
  }
}

void StateCodec::unpack(const std::byte* in, std::span<Slot> out) const {
  AHB_EXPECTS(out.size() == fields_.size());
  std::size_t bit = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Field& f = fields_[i];
    out[i] = static_cast<Slot>(static_cast<std::int32_t>(f.base) +
                               static_cast<std::int32_t>(
                                   get_bits(in, bit, f.width)));
    bit += f.width;
  }
}

std::uint64_t StateCodec::packed_hash(std::span<const Slot> slots,
                                      std::span<std::byte> scratch) const {
  AHB_EXPECTS(scratch.size() >= packed_bytes_);
  pack(slots, scratch.data());
  return hash_bytes(scratch.subspan(0, packed_bytes_));
}

// ---- components ----

void StateCodec::pack_component(std::size_t c, std::span<const Slot> state,
                                std::byte* out) const {
  const Component& comp = components_[c];
  std::memset(out, 0, comp.key_bytes);
  std::size_t bit = 0;
  for (const auto slot : comp.slots) {
    const Field& f = fields_[slot];
    AHB_ASSERT(state[slot] >= f.base);
    put_bits(out, bit, f.width,
             static_cast<std::uint64_t>(
                 static_cast<std::int32_t>(state[slot]) -
                 static_cast<std::int32_t>(f.base)));
    bit += f.width;
  }
}

void StateCodec::unpack_component(std::size_t c, const std::byte* in,
                                  std::span<Slot> state) const {
  const Component& comp = components_[c];
  std::size_t bit = 0;
  for (const auto slot : comp.slots) {
    const Field& f = fields_[slot];
    state[slot] = static_cast<Slot>(static_cast<std::int32_t>(f.base) +
                                    static_cast<std::int32_t>(
                                        get_bits(in, bit, f.width)));
    bit += f.width;
  }
}

std::uint64_t StateCodec::pack_component_key(
    std::size_t c, std::span<const Slot> state) const {
  const Component& comp = components_[c];
  AHB_ASSERT(comp.key_bits <= 64);
  std::uint64_t key = 0;
  unsigned bit = 0;
  for (const auto slot : comp.slots) {
    const Field& f = fields_[slot];
    AHB_ASSERT(state[slot] >= f.base);
    key |= static_cast<std::uint64_t>(static_cast<std::int32_t>(state[slot]) -
                                      static_cast<std::int32_t>(f.base))
           << bit;
    bit += f.width;
  }
  return key;
}

void StateCodec::unpack_component_key(std::size_t c, std::uint64_t key,
                                      std::span<Slot> state) const {
  const Component& comp = components_[c];
  unsigned bit = 0;
  for (const auto slot : comp.slots) {
    const Field& f = fields_[slot];
    const std::uint64_t value =
        f.width == 0 ? 0
                     : (key >> bit) & ((std::uint64_t{1} << f.width) - 1);
    state[slot] = static_cast<Slot>(static_cast<std::int32_t>(f.base) +
                                    static_cast<std::int32_t>(value));
    bit += f.width;
  }
}

// ---- orbit canonicalization ----

void StateCodec::set_symmetry(std::size_t stride,
                              std::vector<std::uint32_t> block_slots) {
  AHB_EXPECTS(stride > 0);
  AHB_EXPECTS(block_slots.size() % stride == 0);
  // Congruence: corresponding slots of every block share base and width,
  // otherwise swapping block values could leave a slot out of range.
  for (std::size_t b = 1; b * stride < block_slots.size(); ++b) {
    for (std::size_t k = 0; k < stride; ++k) {
      const Field& ref = fields_[block_slots[k]];
      const Field& f = fields_[block_slots[b * stride + k]];
      AHB_EXPECTS(ref.base == f.base && ref.width == f.width);
    }
  }
  sym_stride_ = stride;
  sym_slots_ = std::move(block_slots);
}

void StateCodec::add_dead_rule(std::uint32_t loc_slot, Slot loc_value,
                               std::uint32_t target_slot, Slot value) {
  AHB_EXPECTS(loc_slot < fields_.size());
  AHB_EXPECTS(target_slot < fields_.size());
  AHB_EXPECTS(loc_value >= 0);
  const Field& f = fields_[target_slot];
  AHB_EXPECTS(value >= f.base);
  AHB_EXPECTS(f.width == kMaxFieldBits ||
              static_cast<std::uint64_t>(value - f.base) <
                  (std::uint64_t{1} << f.width));
  if (dead_rules_.size() <= loc_slot) dead_rules_.resize(loc_slot + 1);
  auto& by_loc = dead_rules_[loc_slot];
  const auto loc = static_cast<std::size_t>(loc_value);
  if (by_loc.size() <= loc) by_loc.resize(loc + 1);
  by_loc[loc].push_back(DeadAction{target_slot, value});
}

void StateCodec::canonicalize(std::span<Slot> state) const {
  // Dead-slot reset first: dead values travel with their block, so each
  // block is normalized against its own location before blocks compare.
  for (std::size_t a = 0; a < dead_rules_.size(); ++a) {
    const auto& by_loc = dead_rules_[a];
    const auto loc = static_cast<std::size_t>(state[a]);
    if (loc >= by_loc.size()) continue;
    for (const auto& act : by_loc[loc]) state[act.slot] = act.value;
  }
  if (sym_stride_ == 0) return;

  const std::size_t blocks = sym_slots_.size() / sym_stride_;
  const auto block_less = [&](std::size_t x, std::size_t y) {
    const std::uint32_t* xs = sym_slots_.data() + x * sym_stride_;
    const std::uint32_t* ys = sym_slots_.data() + y * sym_stride_;
    for (std::size_t k = 0; k < sym_stride_; ++k) {
      if (state[xs[k]] != state[ys[k]]) return state[xs[k]] < state[ys[k]];
    }
    return false;
  };
  const auto block_swap = [&](std::size_t x, std::size_t y) {
    const std::uint32_t* xs = sym_slots_.data() + x * sym_stride_;
    const std::uint32_t* ys = sym_slots_.data() + y * sym_stride_;
    for (std::size_t k = 0; k < sym_stride_; ++k) {
      std::swap(state[xs[k]], state[ys[k]]);
    }
  };
  // Insertion sort: block counts are tiny (the participant count).
  for (std::size_t i = 1; i < blocks; ++i) {
    for (std::size_t j = i; j > 0 && block_less(j, j - 1); --j) {
      block_swap(j, j - 1);
    }
  }
}

// ---- collapse root ----

void StateCodec::pack_root(std::span<const std::uint32_t> indices,
                           std::span<const Slot> state, std::byte* out) const {
  AHB_EXPECTS(indices.size() == components_.size());
  std::memset(out, 0, root_bytes_);
  std::size_t bit = 0;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const auto width = components_[c].index_bits;
    AHB_ASSERT(width == kMaxFieldBits ||
               indices[c] < (std::uint64_t{1} << width));
    put_bits(out, bit, width, indices[c]);
    bit += width;
  }
  for (const auto slot : residue_slots_) {
    const Field& f = fields_[slot];
    AHB_ASSERT(state[slot] >= f.base);
    put_bits(out, bit, f.width,
             static_cast<std::uint64_t>(
                 static_cast<std::int32_t>(state[slot]) -
                 static_cast<std::int32_t>(f.base)));
    bit += f.width;
  }
}

std::uint64_t StateCodec::pack_root_key(
    std::span<const std::uint32_t> indices, std::span<const Slot> state) const {
  AHB_ASSERT(root_bits_ <= 64);
  std::uint64_t key = 0;
  unsigned bit = 0;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const auto width = components_[c].index_bits;
    AHB_ASSERT(width == kMaxFieldBits ||
               indices[c] < (std::uint64_t{1} << width));
    key |= static_cast<std::uint64_t>(indices[c]) << bit;
    bit += width;
  }
  for (const auto slot : residue_slots_) {
    const Field& f = fields_[slot];
    AHB_ASSERT(state[slot] >= f.base);
    key |= static_cast<std::uint64_t>(static_cast<std::int32_t>(state[slot]) -
                                      static_cast<std::int32_t>(f.base))
           << bit;
    bit += f.width;
  }
  return key;
}

void StateCodec::unpack_root_key(std::uint64_t key,
                                 std::span<std::uint32_t> indices,
                                 std::span<Slot> state) const {
  unsigned bit = 0;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const auto width = components_[c].index_bits;
    indices[c] =
        width == 0 ? 0
                   : static_cast<std::uint32_t>(
                         (key >> bit) & ((std::uint64_t{1} << width) - 1));
    bit += width;
  }
  for (const auto slot : residue_slots_) {
    const Field& f = fields_[slot];
    const std::uint64_t value =
        f.width == 0 ? 0
                     : (key >> bit) & ((std::uint64_t{1} << f.width) - 1);
    state[slot] = static_cast<Slot>(static_cast<std::int32_t>(f.base) +
                                    static_cast<std::int32_t>(value));
    bit += f.width;
  }
}

void StateCodec::unpack_root(const std::byte* in,
                             std::span<std::uint32_t> indices,
                             std::span<Slot> state) const {
  AHB_EXPECTS(indices.size() == components_.size());
  std::size_t bit = 0;
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const auto width = components_[c].index_bits;
    indices[c] = static_cast<std::uint32_t>(get_bits(in, bit, width));
    bit += width;
  }
  for (const auto slot : residue_slots_) {
    const Field& f = fields_[slot];
    state[slot] = static_cast<Slot>(static_cast<std::int32_t>(f.base) +
                                    static_cast<std::int32_t>(
                                        get_bits(in, bit, f.width)));
    bit += f.width;
  }
}

}  // namespace ahb::ta
