// Strongly-typed handles for the timed-automata formalism.
//
// Networks hand out these ids during construction; guards and effects
// capture them by value. Distinct wrapper types prevent mixing up a
// variable index with a clock index at compile time.
#pragma once

#include <cstdint>

namespace ahb::ta {

/// Value type of every state slot (location indices, variables, clocks).
/// All models in this repository stay far below the int16 range; the
/// model checker packs slots directly when hashing.
using Slot = std::int16_t;

struct AutomatonId {
  int value = -1;
  friend bool operator==(AutomatonId, AutomatonId) = default;
};

struct VarId {
  int value = -1;
  friend bool operator==(VarId, VarId) = default;
};

struct ClockId {
  int value = -1;
  friend bool operator==(ClockId, ClockId) = default;
};

struct ChanId {
  int value = -1;
  friend bool operator==(ChanId, ChanId) = default;
};

/// UPPAAL-style location kinds.
///  - Normal:    time may pass subject to the invariant.
///  - Urgent:    time may not pass while any automaton is here.
///  - Committed: time may not pass AND the next discrete transition must
///               involve an edge leaving a committed location.
enum class LocKind : std::uint8_t { Normal, Urgent, Committed };

/// Handshake channels pair exactly one sender with one receiver and
/// block until both are ready; broadcast channels never block the
/// sender and are received by every automaton with an enabled
/// receive edge.
enum class ChanKind : std::uint8_t { Handshake, Broadcast };

enum class SyncDir : std::uint8_t { None, Send, Recv };

}  // namespace ahb::ta
