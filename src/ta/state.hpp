// Global state of a timed-automata network.
//
// A state is a flat vector of slots laid out by the owning Network as
// [locations..., variables..., clocks...]. The layout is fixed once the
// network is frozen, so states are plain hashable data and guards are
// code — the model checker only ever stores and compares slot vectors.
#pragma once

#include <span>
#include <vector>

#include "ta/ids.hpp"
#include "util/hash.hpp"

namespace ahb::ta {

class State {
 public:
  State() = default;
  explicit State(std::size_t slot_count) : slots_(slot_count, 0) {}
  explicit State(std::span<const Slot> slots)
      : slots_(slots.begin(), slots.end()) {}

  /// Overwrites this state with `slots`. Reuses the existing buffer when
  /// the size matches, which keeps hot loops allocation-free.
  void assign(std::span<const Slot> slots) {
    slots_.assign(slots.begin(), slots.end());
  }

  Slot operator[](std::size_t i) const { return slots_[i]; }
  Slot& operator[](std::size_t i) { return slots_[i]; }

  std::size_t size() const { return slots_.size(); }
  std::span<const Slot> slots() const { return slots_; }
  std::span<Slot> slots_mut() { return slots_; }

  std::uint64_t hash() const {
    return hash_span(std::span<const Slot>{slots_});
  }

  friend bool operator==(const State&, const State&) = default;

 private:
  std::vector<Slot> slots_;
};

}  // namespace ahb::ta
