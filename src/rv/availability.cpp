#include "rv/availability.hpp"

#include <algorithm>
#include <bit>

#include "hb/types.hpp"
#include "util/contracts.hpp"

namespace ahb::rv {

AvailabilitySummary& AvailabilitySummary::operator+=(
    const AvailabilitySummary& other) {
  up_time += other.up_time;
  down_time += other.down_time;
  recoveries += other.recoveries;
  detections += other.detections;
  detection_total += other.detection_total;
  detection_max = std::max(detection_max, other.detection_max);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    detection_hist[b] += other.detection_hist[b];
  }
  return *this;
}

double AvailabilitySummary::up_fraction() const {
  const Time total = up_time + down_time;
  if (total <= 0) return 1.0;
  return static_cast<double>(up_time) / static_cast<double>(total);
}

double AvailabilitySummary::detection_mean() const {
  if (detections == 0) return 0.0;
  return static_cast<double>(detection_total) /
         static_cast<double>(detections);
}

AvailabilityStats::AvailabilityStats(int participants)
    : participants_(participants) {
  AHB_EXPECTS(participants >= 1);
  const auto slots = static_cast<std::size_t>(participants) + 1;
  up_since_.assign(slots, 0);  // every node is up from the start
  down_since_.assign(slots, hb::kNever);
  up_acc_.assign(slots, 0);
  down_acc_.assign(slots, 0);
  recoveries_.assign(slots, 0);
}

std::uint32_t AvailabilityStats::protocol_interest() const {
  using Kind = hb::ProtocolEvent::Kind;
  return protocol_bit(Kind::CoordinatorInactivated) |
         protocol_bit(Kind::CoordinatorCrashed) |
         protocol_bit(Kind::CoordinatorReceivedLeave) |
         protocol_bit(Kind::ParticipantInactivated) |
         protocol_bit(Kind::ParticipantCrashed) |
         protocol_bit(Kind::ParticipantLeft) |
         protocol_bit(Kind::ParticipantRejoined);
}

void AvailabilityStats::on_protocol_event(const hb::ProtocolEvent& event) {
  ++events_seen_;
  const Time at = event.at;
  const auto idx = static_cast<std::size_t>(event.node);
  using Kind = hb::ProtocolEvent::Kind;
  switch (event.kind) {
    case Kind::CoordinatorInactivated:
      // The coordinator acting on total silence: one latency sample per
      // participant it was still to account for.
      for (int i = 1; i <= participants_; ++i) {
        const Time since = down_since_[static_cast<std::size_t>(i)];
        if (since != hb::kNever) sample_detection(at - since);
      }
      node_down(0, at);
      break;
    case Kind::CoordinatorCrashed:
      node_down(0, at);
      break;
    case Kind::CoordinatorReceivedLeave:
      // The leave beat landing is the coordinator noticing the
      // departure.
      if (down_since_[idx] != hb::kNever) {
        sample_detection(at - down_since_[idx]);
      }
      break;
    case Kind::ParticipantInactivated:
    case Kind::ParticipantCrashed:
    case Kind::ParticipantLeft:
      node_down(event.node, at);
      break;
    case Kind::ParticipantRejoined:
      node_up(event.node, at);
      break;
    default:
      break;
  }
}

void AvailabilityStats::node_down(int node, Time at) {
  const auto idx = static_cast<std::size_t>(node);
  if (up_since_[idx] == hb::kNever) return;  // already down
  up_acc_[idx] += at - up_since_[idx];
  up_since_[idx] = hb::kNever;
  down_since_[idx] = at;
}

void AvailabilityStats::node_up(int node, Time at) {
  const auto idx = static_cast<std::size_t>(node);
  if (down_since_[idx] == hb::kNever) return;  // already up
  down_acc_[idx] += at - down_since_[idx];
  down_since_[idx] = hb::kNever;
  up_since_[idx] = at;
  ++recoveries_[idx];
}

void AvailabilityStats::sample_detection(Time latency) {
  if (latency < 0) latency = 0;
  ++summary_.detections;
  summary_.detection_total += latency;
  summary_.detection_max = std::max(summary_.detection_max, latency);
  const auto bucket = std::min<std::size_t>(
      static_cast<std::size_t>(
          std::bit_width(static_cast<std::uint64_t>(latency))),
      AvailabilitySummary::kBuckets - 1);
  ++summary_.detection_hist[bucket];
}

void AvailabilityStats::finish(Time horizon) {
  if (finished_) return;
  finished_ = true;
  for (int node = 0; node <= participants_; ++node) {
    const auto idx = static_cast<std::size_t>(node);
    if (up_since_[idx] != hb::kNever && horizon > up_since_[idx]) {
      up_acc_[idx] += horizon - up_since_[idx];
      up_since_[idx] = horizon;
    }
    if (down_since_[idx] != hb::kNever && horizon > down_since_[idx]) {
      down_acc_[idx] += horizon - down_since_[idx];
      down_since_[idx] = horizon;
    }
    summary_.up_time += up_acc_[idx];
    summary_.down_time += down_acc_[idx];
    summary_.recoveries += recoveries_[idx];
  }
}

Time AvailabilityStats::up_time(int node) const {
  AHB_EXPECTS(node >= 0 && node <= participants_);
  return up_acc_[static_cast<std::size_t>(node)];
}

Time AvailabilityStats::down_time(int node) const {
  AHB_EXPECTS(node >= 0 && node <= participants_);
  return down_acc_[static_cast<std::size_t>(node)];
}

std::uint64_t AvailabilityStats::recoveries(int node) const {
  AHB_EXPECTS(node >= 0 && node <= participants_);
  return recoveries_[static_cast<std::size_t>(node)];
}

}  // namespace ahb::rv
