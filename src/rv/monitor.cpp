#include "rv/monitor.hpp"

#include <cinttypes>
#include <cstdio>
#include <limits>

#include "hb/cluster.hpp"
#include "hb/cluster_scale.hpp"
#include "hb/types.hpp"
#include "util/contracts.hpp"

namespace ahb::rv {

namespace {

// Far enough in the past that `at - last_explanation_ > window` holds
// for every reachable time without overflowing the subtraction.
constexpr Time kLongAgo = std::numeric_limits<Time>::min() / 4;

std::string describe(const char* what, Time deadline) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s (deadline %" PRId64 ")", what, deadline);
  return buf;
}

}  // namespace

MonitorBounds MonitorBounds::defaults(const proto::Timing& timing,
                                      proto::Variant variant,
                                      bool fixed_bounds,
                                      int suspect_after_misses) {
  return MonitorBounds{
      proto::r1_detection_slack(timing, variant),
      proto::r2_explanation_window(timing, variant, fixed_bounds),
      proto::r3_detection_slack(timing, variant, fixed_bounds),
      timing.tmin,
      proto::suspicion_detection_bound(timing, suspect_after_misses),
  };
}

std::string Violation::key() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "R%d/node%d@%" PRId64, requirement, node,
                deadline);
  return buf;
}

RequirementMonitor::RequirementMonitor(const Config& config,
                                       const MonitorBounds& bounds)
    : config_(config),
      bounds_(bounds),
      coordinator_stopped_at_(hb::kNever),
      r1_deadline_(hb::kNever),
      last_explanation_(kLongAgo),
      earliest_deadline_(hb::kNever) {
  AHB_EXPECTS(config.participants >= 1);
  AHB_EXPECTS(config.timing.valid());
  const auto n = static_cast<std::size_t>(config.participants);
  stopped_at_.assign(n + 1, hb::kNever);  // index by node id, [0] unused
  r3_deadline_.assign(n + 1, hb::kNever);
  // Non-join variants register every participant a priori; join-phase
  // variants register on the first delivered join beat.
  registered_.assign(n + 1, !proto::variant_joins(config.variant));
  registered_[0] = false;
  live_count_ = config.participants;
  registered_count_ =
      proto::variant_joins(config.variant) ? 0 : config.participants;
}

void RequirementMonitor::attach(hb::Cluster& cluster) {
  cluster.add_sink(this);
}

void RequirementMonitor::attach(hb::ScaleCluster& cluster) {
  cluster.add_sink(this);
}

bool RequirementMonitor::coordinator_live() const {
  return coordinator_stopped_at_ == hb::kNever;
}

std::uint32_t RequirementMonitor::protocol_interest() const {
  // Steady-state traffic (beats, replies, join beats, deliveries to
  // participants) carries no R1–R3 information: obligations are armed
  // and discharged only by membership transitions and stops, so those
  // are the only kinds worth paying for at line rate. Filtering the hot
  // kinds can only delay the *detection* instant of a missed deadline
  // (the `at` of a violation), never its existence, deadline, node or
  // order — the key() identity shrinking relies on is unchanged.
  using Kind = hb::ProtocolEvent::Kind;
  return protocol_bit(Kind::CoordinatorReceivedBeat) |
         protocol_bit(Kind::CoordinatorReceivedLeave) |
         protocol_bit(Kind::CoordinatorInactivated) |
         protocol_bit(Kind::CoordinatorCrashed) |
         protocol_bit(Kind::ParticipantInactivated) |
         protocol_bit(Kind::ParticipantCrashed) |
         protocol_bit(Kind::ParticipantLeft) |
         protocol_bit(Kind::ParticipantRejoined);
}

std::uint32_t RequirementMonitor::channel_interest() const {
  return channel_bit(sim::ChannelEvent::Kind::Lost) |
         channel_bit(sim::ChannelEvent::Kind::Blocked) |
         channel_bit(sim::ChannelEvent::Kind::Rejected);
}

void RequirementMonitor::on_channel_event(const sim::ChannelEvent& event) {
  ++events_seen_;
  switch (event.kind) {
    case sim::ChannelEvent::Kind::Lost:
    case sim::ChannelEvent::Kind::Blocked:
    case sim::ChannelEvent::Kind::Rejected:
      // A message the channel destroyed can explain any inactivation
      // that follows within the window (R2's notion of "a fault
      // happened nearby"). A boundary rejection of a corrupted payload
      // is the same fault class: the message was destroyed in flight,
      // the receiver just proved it instead of the channel dropping it.
      check_deadlines(event.at);
      last_explanation_ = event.at;
      break;
    default:
      break;
  }
}

void RequirementMonitor::on_protocol_event(const hb::ProtocolEvent& event) {
  ++events_seen_;
  // Missed deadlines are detected by the first event after them, so the
  // check precedes the event's own effect: a discharge arriving *past*
  // its deadline is a (late-detection) violation, not a discharge.
  check_deadlines(event.at);

  const Time at = event.at;
  const int node = event.node;
  using Kind = hb::ProtocolEvent::Kind;
  switch (event.kind) {
    case Kind::CoordinatorReceivedBeat:
      if (!registered_[static_cast<std::size_t>(node)]) {
        registered_[static_cast<std::size_t>(node)] = true;
        ++registered_count_;
      }
      update_r1(at);
      break;
    case Kind::CoordinatorReceivedLeave:
      if (registered_[static_cast<std::size_t>(node)]) {
        registered_[static_cast<std::size_t>(node)] = false;
        --registered_count_;
      }
      update_r1(at);
      break;
    case Kind::CoordinatorInactivated:
      if (at - last_explanation_ > bounds_.r2_window) {
        violations_.push_back(Violation{
            2, 0, at, at,
            "coordinator NV-inactivated with no fault in the window"});
      }
      r1_deadline_ = hb::kNever;  // obligation discharged
      coordinator_stopped_at_ = at;
      for (int i = 1; i <= config_.participants; ++i) {
        if (stopped_at_[static_cast<std::size_t>(i)] == hb::kNever) {
          r3_deadline_[static_cast<std::size_t>(i)] = at + bounds_.r3_slack;
          arm(at + bounds_.r3_slack);
        }
      }
      last_explanation_ = at;
      break;
    case Kind::CoordinatorCrashed:
      r1_deadline_ = hb::kNever;  // a crashed node owes no detection
      coordinator_stopped_at_ = at;
      for (int i = 1; i <= config_.participants; ++i) {
        if (stopped_at_[static_cast<std::size_t>(i)] == hb::kNever) {
          r3_deadline_[static_cast<std::size_t>(i)] = at + bounds_.r3_slack;
          arm(at + bounds_.r3_slack);
        }
      }
      last_explanation_ = at;
      break;
    case Kind::ParticipantInactivated:
      if (at - last_explanation_ > bounds_.r2_window) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "participant %d NV-inactivated with no fault in the "
                      "window",
                      node);
        violations_.push_back(Violation{2, node, at, at, buf});
      }
      stop_participant(node, at);
      break;
    case Kind::ParticipantCrashed:
    case Kind::ParticipantLeft:
      stop_participant(node, at);
      break;
    case Kind::ParticipantRejoined:
      if (stopped_at_[static_cast<std::size_t>(node)] != hb::kNever) {
        stopped_at_[static_cast<std::size_t>(node)] = hb::kNever;
        ++live_count_;
      }
      // A reincarnation starts a fresh join phase; if the coordinator
      // is already gone it must give up within the join slack.
      if (coordinator_live()) {
        r3_deadline_[static_cast<std::size_t>(node)] = hb::kNever;
      } else {
        r3_deadline_[static_cast<std::size_t>(node)] = at + bounds_.r3_slack;
        arm(at + bounds_.r3_slack);
      }
      update_r1(at);
      break;
    default:
      break;
  }
}

void RequirementMonitor::stop_participant(int id, Time at) {
  if (stopped_at_[static_cast<std::size_t>(id)] == hb::kNever) {
    --live_count_;
  }
  stopped_at_[static_cast<std::size_t>(id)] = at;
  r3_deadline_[static_cast<std::size_t>(id)] = hb::kNever;
  last_explanation_ = at;
  update_r1(at);
}

void RequirementMonitor::update_r1(Time now) {
  // The obligation: the coordinator is live, at least one member is
  // still registered on its side, and every participant has stopped —
  // nobody is left to reply or join, so the acceleration ladder must
  // run dry within the slack. Any live participant (even an
  // unregistered joiner, whose next join beat would re-register it)
  // legitimately keeps the coordinator alive; a leave delivered after
  // the last stop can empty the registered set and void the obligation.
  const bool obliged =
      coordinator_live() && registered_count_ > 0 && live_count_ == 0;
  if (!obliged) {
    r1_deadline_ = hb::kNever;
  } else if (r1_deadline_ == hb::kNever && !r1_fired_) {
    r1_deadline_ = now + bounds_.r1_slack;
    arm(r1_deadline_);
  }
}

void RequirementMonitor::arm(Time deadline) {
  if (deadline < earliest_deadline_) earliest_deadline_ = deadline;
}

void RequirementMonitor::check_deadlines(Time now) {
  // The watermark is a lower bound on every armed deadline (discharges
  // leave it stale), so `now` at or below it proves nothing has fired.
  if (now <= earliest_deadline_) return;
  Time earliest = hb::kNever;
  if (r1_deadline_ != hb::kNever) {
    if (now > r1_deadline_) {
      violations_.push_back(Violation{
          1, 0, now, r1_deadline_,
          describe("coordinator failed to detect total silence",
                   r1_deadline_)});
      r1_deadline_ = hb::kNever;
      r1_fired_ = true;
    } else {
      earliest = r1_deadline_;
    }
  }
  for (int i = 1; i <= config_.participants; ++i) {
    Time& deadline = r3_deadline_[static_cast<std::size_t>(i)];
    if (deadline == hb::kNever) continue;
    if (now > deadline) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "participant %d failed to detect the coordinator stop", i);
      violations_.push_back(
          Violation{3, i, now, deadline, describe(buf, deadline)});
      deadline = hb::kNever;
    } else if (deadline < earliest) {
      earliest = deadline;
    }
  }
  earliest_deadline_ = earliest;
}

void RequirementMonitor::finish(Time horizon) {
  // The run ends at `horizon`: a deadline at or after it is
  // undetermined, one strictly before it was missed.
  check_deadlines(horizon);
}

}  // namespace ahb::rv
