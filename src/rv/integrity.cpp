#include "rv/integrity.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "hb/cluster.hpp"
#include "hb/cluster_scale.hpp"

namespace ahb::rv {

IntegrityMonitor::IntegrityMonitor(const Config& config) : config_(config) {}

void IntegrityMonitor::attach(hb::Cluster& cluster) {
  cluster.add_sink(this);
}

void IntegrityMonitor::attach(hb::ScaleCluster& cluster) {
  cluster.add_sink(this);
}

std::uint32_t IntegrityMonitor::protocol_interest() const {
  // The receive events are the only protocol kinds that prove the
  // engine *acted on* a delivered payload; everything else is noise
  // here.
  using Kind = hb::ProtocolEvent::Kind;
  return protocol_bit(Kind::CoordinatorReceivedBeat) |
         protocol_bit(Kind::CoordinatorReceivedLeave) |
         protocol_bit(Kind::ParticipantReceivedBeat);
}

std::uint32_t IntegrityMonitor::channel_interest() const {
  using Kind = sim::ChannelEvent::Kind;
  return channel_bit(Kind::Corrupted) | channel_bit(Kind::Delivered) |
         channel_bit(Kind::Rejected);
}

bool IntegrityMonitor::is_corrupted(std::uint64_t id) const {
  // Ids are assigned monotonically at send time and corruption happens
  // at send time, so the FIFO is sorted by id.
  auto it = std::lower_bound(
      corrupted_ids_.begin(), corrupted_ids_.end(), id,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  return it != corrupted_ids_.end() && it->first == id;
}

void IntegrityMonitor::prune(Time now) {
  if (config_.prune_window <= 0) return;
  while (!corrupted_ids_.empty() &&
         corrupted_ids_.front().second + config_.prune_window < now) {
    corrupted_ids_.pop_front();
  }
}

void IntegrityMonitor::record(int node, Time at, const char* what) {
  ++summary_.violations;
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back(Violation{5, node, at, at, what});
  }
}

void IntegrityMonitor::on_channel_event(const sim::ChannelEvent& event) {
  ++events_seen_;
  using Kind = sim::ChannelEvent::Kind;
  switch (event.kind) {
    case Kind::Corrupted:
      prune(event.at);
      ++summary_.corrupted;
      corrupted_ids_.emplace_back(event.id, event.at);
      max_tracked_ = std::max(max_tracked_, corrupted_ids_.size());
      break;
    case Kind::Delivered:
      if (is_corrupted(event.id)) ++summary_.corrupted_delivered;
      break;
    case Kind::Rejected:
      if (is_corrupted(event.id)) {
        ++summary_.rejected_corrupted;
      } else {
        // Validation must never destroy clean traffic: a rejection of
        // an id we never saw corrupted is itself out of spec. (A
        // too-small prune window shows up here — keep it generous.)
        ++summary_.spurious_rejections;
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "boundary rejected clean message %" PRIu64, event.id);
        record(event.to, event.at, buf);
      }
      break;
    default:
      break;
  }
}

void IntegrityMonitor::on_protocol_event(const hb::ProtocolEvent& event) {
  ++events_seen_;
  if (event.msg_id == 0 || !is_corrupted(event.msg_id)) return;
  ++summary_.accepted;
  char buf[96];
  std::snprintf(buf, sizeof buf, "corrupted message %" PRIu64 " was accepted",
                event.msg_id);
  record(event.node, event.at, buf);
}

void IntegrityMonitor::finish(Time /*horizon*/) {
  // Every corrupted delivery must have produced a boundary rejection;
  // anything else means a corrupted payload crossed into the engine.
  if (summary_.corrupted_delivered == summary_.rejected_corrupted) return;
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "%" PRIu64 " corrupted deliveries but %" PRIu64
                " boundary rejections",
                summary_.corrupted_delivered, summary_.rejected_corrupted);
  record(0, 0, buf);
}

IntegritySummary& IntegritySummary::operator+=(const IntegritySummary& other) {
  corrupted += other.corrupted;
  corrupted_delivered += other.corrupted_delivered;
  rejected_corrupted += other.rejected_corrupted;
  spurious_rejections += other.spurious_rejections;
  accepted += other.accepted;
  violations += other.violations;
  return *this;
}

}  // namespace ahb::rv
