// IntegrityMonitor: the fail-safe obligation of payload corruption.
//
// The chaos layer's CorruptPayload fault flips bits on in-flight wire
// images; the engines' boundary validation (hb/wire.hpp) must reject
// every corrupted delivery before the protocol acts on it. This sink
// checks that obligation online, requirement "R5" in the violation
// records:
//
//   - a corrupted payload is never *accepted*: no coordinator/
//     participant receive event may carry the message id of a
//     corrupted send;
//   - every corrupted delivery is rejected at the boundary: at the end
//     of the run, corrupted_delivered == rejected_corrupted;
//   - validation never destroys clean traffic: a Rejected event whose
//     id was never corrupted is a spurious rejection.
//
// Memory is bounded for arbitrarily long missions: corrupted ids are
// kept in a time-pruned FIFO (ids are monotone, so membership is a
// binary search), and only the first `max_recorded` violations are
// stored verbatim — the rest are counted. The high-water mark of the
// tracked set is exposed so missions can assert boundedness.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "rv/event_sink.hpp"
#include "rv/monitor.hpp"

namespace ahb::hb {
class Cluster;
class ScaleCluster;
}  // namespace ahb::hb

namespace ahb::rv {

/// Aggregate integrity counters of one run (campaigns sum them).
struct IntegritySummary {
  std::uint64_t corrupted = 0;            ///< Corrupted channel events
  std::uint64_t corrupted_delivered = 0;  ///< deliveries of corrupted ids
  std::uint64_t rejected_corrupted = 0;   ///< boundary rejections of those
  std::uint64_t spurious_rejections = 0;  ///< rejections of clean ids
  std::uint64_t accepted = 0;             ///< corrupted ids the engine acted on
  std::uint64_t violations = 0;           ///< total (recorded + counted)

  IntegritySummary& operator+=(const IntegritySummary& other);
  /// The hard fail-safe check: nothing accepted, nothing unrejected,
  /// nothing clean destroyed.
  bool fail_safe() const {
    return accepted == 0 && spurious_rejections == 0 &&
           corrupted_delivered == rejected_corrupted;
  }
};

class IntegrityMonitor final : public EventSink {
 public:
  struct Config {
    /// Corrupted ids older than this are pruned (their deliveries are
    /// settled; duplicates of a corrupted send repeat its id within the
    /// delay bound, so any generous multiple of tmax is safe). 0 keeps
    /// every id for the whole run.
    Time prune_window = 0;
    /// Violations stored verbatim; the rest only count.
    std::size_t max_recorded = 16;
  };

  IntegrityMonitor() : IntegrityMonitor(Config{}) {}
  explicit IntegrityMonitor(const Config& config);

  void attach(hb::Cluster& cluster);
  void attach(hb::ScaleCluster& cluster);

  std::uint32_t protocol_interest() const override;
  std::uint32_t channel_interest() const override;
  void on_protocol_event(const hb::ProtocolEvent& event) override;
  void on_channel_event(const sim::ChannelEvent& event) override;
  void finish(Time horizon) override;

  const IntegritySummary& summary() const { return summary_; }
  const std::vector<Violation>& violations() const { return violations_; }
  /// High-water mark of the tracked corrupted-id set (bounded-memory
  /// assertion of long missions).
  std::size_t max_tracked() const { return max_tracked_; }
  std::uint64_t events_seen() const { return events_seen_; }

 private:
  bool is_corrupted(std::uint64_t id) const;
  void prune(Time now);
  void record(int node, Time at, const char* what);

  Config config_;
  /// (id, corrupted-at), id-monotone — pushed at send, pruned by time.
  std::deque<std::pair<std::uint64_t, Time>> corrupted_ids_;
  std::size_t max_tracked_ = 0;
  std::uint64_t events_seen_ = 0;
  IntegritySummary summary_;
  std::vector<Violation> violations_;
};

}  // namespace ahb::rv
