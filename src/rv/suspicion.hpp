// SuspicionMonitor: online checks of the failure-detector suspicion
// ladder (hb/failure_detector.hpp) against the coordinator's round
// discipline, stated as three obligations over the protocol-event
// stream:
//
//   S1  pacing / earliest detection — while the coordinator is active,
//       consecutive round closes are at least tmin apart, so a member's
//       suspicion level k (k consecutive missed rounds) cannot be
//       reached earlier than suspicion_earliest_slack(k) = k * tmin
//       after its last registered beat. A faster escalation means the
//       rounds themselves ran too fast (a drifting coordinator clock).
//   S2  mandatory suspicion — once a member stops beating (crash,
//       leave, NV-inactivation) at S, the coordinator must either reach
//       the suspicion threshold for it or stop itself by S +
//       suspicion_detection_bound(threshold). The obligation is armed
//       at the stop (or at the first post-stop registration of a
//       joiner) and is deliberately *not* refreshed by later beat
//       deliveries: in-spec, everything the stopped member had in
//       flight drains within tmin, which the bound already budgets —
//       and refreshing would let fabricated beats defer detection
//       forever.
//   S3  monotone escalation — an external detector's published level
//       (note_level) may only decrease after a fresh registered beat.
//
// The monitor mirrors the coordinator-side membership exactly as
// RequirementMonitor does: a-priori members for non-join variants
// (first round granted, like the engines), registration on delivered
// beats, deregistration on delivered leaves. Suspicion violations carry
// requirement number 4, so campaign tooling that filters R1–R3 by
// number keeps working unchanged.
#pragma once

#include <vector>

#include "rv/monitor.hpp"

namespace ahb::rv {

class SuspicionMonitor final : public EventSink {
 public:
  struct Config {
    proto::Variant variant = proto::Variant::Binary;
    proto::Timing timing;
    int participants = 1;
    /// Level at which a member counts as suspected (the
    /// FailureDetector's suspect_after_misses).
    int suspect_after_misses = 2;
  };

  /// Uses bounds.suspicion_min_round for S1 and bounds.suspicion_slack
  /// for S2; either being zero disables that check (hand-built bounds
  /// predating the suspicion laws stay safe).
  SuspicionMonitor(const Config& config, const MonitorBounds& bounds);

  void attach(hb::Cluster& cluster);
  void attach(hb::ScaleCluster& cluster);

  std::uint32_t protocol_interest() const override;
  void on_protocol_event(const hb::ProtocolEvent& event) override;
  void finish(Time horizon) override;

  /// Cross-check hook for an external hb::FailureDetector: report the
  /// level it currently publishes for `node`. Monotone-escalation
  /// violations (a level drop without an intervening registered beat)
  /// are recorded like any other.
  void note_level(int node, int level, Time at);

  /// The ladder level the monitor itself derives for `node`.
  int level(int node) const;

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t events_seen() const { return events_seen_; }

 private:
  void close_round(Time now);
  void arm_obligation(int node, Time at);
  void check_obligations(Time now);
  void discharge(int node);

  Config config_;
  MonitorBounds bounds_;
  bool coordinator_live_ = true;
  Time last_close_;               ///< previous CoordinatorBeat; kNever = none
  std::vector<int> level_;        ///< consecutive missed rounds per member
  std::vector<char> member_;      ///< mirrors the coordinator's joined set
  std::vector<char> rcvd_;        ///< beat registered in the current round
  std::vector<char> stopped_;     ///< the participant stopped beating
  std::vector<Time> last_beat_;   ///< last registered beat (S1 anchor)
  std::vector<Time> deadline_;    ///< S2 obligation; kNever = none
  std::vector<int> noted_level_;  ///< last externally reported level
  std::vector<char> beat_since_note_;
  std::vector<char> s1_fired_;    ///< one-shot per node ([0] = pacing)
  Time earliest_deadline_;        ///< watermark, as in RequirementMonitor
  std::uint64_t events_seen_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace ahb::rv
