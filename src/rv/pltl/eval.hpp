// Backend 1: compile a past-time-LTL formula to a streaming monitor.
//
// The compiled form is a postorder instruction array, one instruction
// per subformula (quantifiers are expanded over the participant ids,
// bound expressions are resolved to concrete tick counts). Evaluation
// is one pass over the array per trace position — O(subformulas) time
// and O(subformulas) state, independent of the trace length, so a
// formula monitor is safe at any mission horizon.
//
// Two-pass discipline, matching the hand-written monitors' check-then-
// update order ("missed deadlines are detected by the first event
// after them, so the check precedes the event's own effect"): each
// incoming event first drives a *check* pass at the event's timestamp
// — event atoms all false, fluents still pre-event, temporal state
// read but not committed — and then, after the fluent tracker applies
// the event, a *step* pass that sees the event's atoms, the updated
// fluents, and commits temporal state. `finish(horizon)` is one final
// check pass. Temporal operators are therefore defined over the
// *committed* positions: the initial position at time 0 plus one
// position per event; check passes are phantom evaluations.
//
// A violation is recorded whenever the formula's value falls from true
// to false (edge-triggered, so a standing violation is counted once
// until the formula recovers); recorded violations are capped, the
// total is always counted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hb/protocol_event.hpp"
#include "hb/types.hpp"
#include "proto/rules.hpp"
#include "proto/timing.hpp"
#include "rv/event_sink.hpp"
#include "rv/monitor.hpp"
#include "rv/pltl/pltl.hpp"
#include "sim/network.hpp"

namespace ahb::rv::pltl {

/// Everything a formula's named parameters resolve against. The
/// derived slacks follow MonitorBounds::defaults so a formula and the
/// hand-written monitor it restates see identical deadlines.
struct BindParams {
  proto::Variant variant = proto::Variant::Binary;
  proto::Timing timing{};
  bool fixed_bounds = true;
  int participants = 1;
  int suspect_after_misses = 2;

  /// Value of a named bound parameter (tmin, r1_slack, ...).
  /// Precondition: is_bound_param(name).
  Time param(std::string_view name) const;
};

/// Derived cluster-state predicates, updated from the same protocol
/// events the hand-written monitors subscribe to.
enum class Fluent : std::uint8_t {
  CoordLive,      ///< coordinator has not inactivated or crashed
  CoordStopped,   ///< !CoordLive
  Stopped,        ///< participant `node` crashed, left, or inactivated
  Alive,          ///< !Stopped
  Member,         ///< participant `node` registered at the coordinator
  AllStopped,     ///< every participant is stopped
  AnyRegistered,  ///< the coordinator has at least one registered member
};

/// One compiled subformula. `a`/`b` index earlier instructions in the
/// postorder array.
struct Instr {
  Node::Kind op = Node::Kind::True;
  int a = -1;
  int b = -1;
  /// Event atoms: the protocol- or channel-kind bit this atom matches
  /// (exactly one bit set in exactly one of the two masks).
  std::uint32_t protocol_bits = 0;
  std::uint32_t channel_bits = 0;
  int node = -1;       ///< event/fluent participant filter; -1 = any
  Fluent fluent{};     ///< Node::Kind::Fluent only
  Time bound = 0;      ///< resolved Once/Before/Holds bound
  Cmp cmp = Cmp::Le;
};

/// Membership/liveness state shared by the fluent atoms; mirrors the
/// update rules of RequirementMonitor (registration) and
/// SuspicionMonitor (stops).
class FluentTracker {
 public:
  FluentTracker() = default;
  FluentTracker(proto::Variant variant, int participants);

  void apply(const hb::ProtocolEvent& event);

  bool coordinator_live() const { return coordinator_live_; }
  bool stopped(int node) const;
  bool member(int node) const;
  bool all_stopped() const { return live_count_ == 0; }
  bool any_registered() const { return member_count_ > 0; }

 private:
  int participants_ = 0;
  std::vector<std::uint8_t> stopped_;
  std::vector<std::uint8_t> member_;
  int live_count_ = 0;
  int member_count_ = 0;
  bool coordinator_live_ = true;
};

/// A formula lowered to the postorder instruction array plus the
/// interest masks of the events it can react to.
struct Compiled {
  std::vector<Instr> instrs;  ///< postorder; root is the last entry
  std::uint32_t protocol_mask = 0;
  std::uint32_t channel_mask = 0;
  bool uses_fluents = false;
  int participants = 0;
};

struct CompileResult {
  Compiled compiled;
  std::string error;  ///< empty on success
  bool ok() const { return error.empty(); }
};

/// Expand quantifiers over participant ids 1..params.participants,
/// resolve bound expressions, and flatten to postorder. Fails on
/// unbound variables, out-of-range participant ids, arguments on
/// channel atoms, or negative resolved bounds.
CompileResult compile(const Node& formula, const BindParams& params);

/// A named requirement stated as a formula; `requirement` keys the
/// emitted violations (R1–R3 use 1–3, the suspicion ladder uses 4,
/// ad-hoc formulas are free to pick higher numbers).
struct FormulaSpec {
  std::string name;
  std::string text;
  int requirement = 0;
};

/// The streaming evaluator: an EventSink over a compiled formula.
class FormulaMonitor final : public EventSink {
 public:
  FormulaMonitor(Compiled compiled, const BindParams& params,
                 std::string name, int requirement);

  std::uint32_t protocol_interest() const override { return protocol_mask_; }
  std::uint32_t channel_interest() const override { return channel_mask_; }
  void on_protocol_event(const hb::ProtocolEvent& event) override;
  void on_channel_event(const sim::ChannelEvent& event) override;
  void finish(Time horizon) override;

  const std::string& name() const { return name_; }
  int requirement() const { return requirement_; }

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t violations_total() const { return violations_total_; }
  /// Cap on *recorded* violations (the total is always counted).
  void set_max_recorded(std::size_t cap) { max_recorded_ = cap; }

  /// Root value at the last committed position (test hook).
  bool value() const { return committed_.empty() ? true : committed_.back() != 0; }
  /// Per-subformula committed value, postorder index (test hook).
  bool value_at(std::size_t i) const { return committed_[i] != 0; }
  std::size_t size() const { return committed_.size(); }

  std::uint64_t events_seen() const { return events_seen_; }

 private:
  struct State {
    std::uint8_t b = 0;  ///< Previously/Once/Historically/Since memory
    Time t = 0;          ///< Once/Before last-true time, Holds anchor
  };

  /// One evaluation pass at time `now`. Exactly one of the event
  /// pointers may be non-null (the step pass); both null for check
  /// passes and the initial position.
  bool eval(Time now, const hb::ProtocolEvent* pe, const sim::ChannelEvent* ce,
            bool commit, bool init);
  void observe(Time now, bool root_value);
  void handle(Time at, const hb::ProtocolEvent* pe, const sim::ChannelEvent* ce);

  std::vector<Instr> instrs_;
  std::vector<State> state_;
  std::vector<std::uint8_t> scratch_;
  std::vector<std::uint8_t> committed_;
  FluentTracker tracker_;
  std::uint32_t protocol_mask_ = 0;
  std::uint32_t channel_mask_ = 0;
  std::string name_;
  int requirement_ = 0;
  bool last_value_ = true;
  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;
  std::size_t max_recorded_ = 32;
  std::uint64_t events_seen_ = 0;
};

/// Parse + compile + wrap: the one-call path from a FormulaSpec to a
/// ready-to-attach sink. `error` explains a parse or compile failure.
struct MonitorResult {
  std::unique_ptr<FormulaMonitor> monitor;
  std::string error;
  bool ok() const { return monitor != nullptr; }
};

MonitorResult make_monitor(const FormulaSpec& spec, const BindParams& params);

}  // namespace ahb::rv::pltl
