// Build-time validation of the shipped formula files: every embedded
// formula must parse, round-trip through the printer, and compile
// against a spread of timing points, so a grammar or vocabulary
// regression fails the build instead of the first campaign that
// attaches the formulas. Run automatically as a POST_BUILD step of the
// pltl_check target.
#include <cstdio>

#include "rv/pltl/eval.hpp"
#include "rv/pltl/formulas.hpp"

namespace pltl = ahb::rv::pltl;

int main() {
  const pltl::BindParams points[] = {
      {ahb::proto::Variant::Binary, {2, 10}, true, 1, 2},
      {ahb::proto::Variant::Binary, {6, 10}, true, 3, 2},
      {ahb::proto::Variant::Static, {4, 20}, false, 2, 2},
      {ahb::proto::Variant::Dynamic, {4, 20}, true, 4, 3},
  };
  int failures = 0;
  for (const auto& formula : pltl::shipped_formulas()) {
    const pltl::ParseResult parsed = pltl::parse(formula.text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "pltl_check: %.*s: parse error at offset %zu: %s\n",
                   static_cast<int>(formula.name.size()), formula.name.data(),
                   parsed.error_at, parsed.error.c_str());
      ++failures;
      continue;
    }
    const pltl::ParseResult reparsed = pltl::parse(pltl::print(*parsed.formula));
    if (!reparsed.ok() || !pltl::equal(*parsed.formula, *reparsed.formula)) {
      std::fprintf(stderr, "pltl_check: %.*s: print/parse round-trip failed\n",
                   static_cast<int>(formula.name.size()), formula.name.data());
      ++failures;
      continue;
    }
    for (const auto& params : points) {
      const pltl::CompileResult compiled =
          pltl::compile(*parsed.formula, params);
      if (!compiled.ok()) {
        std::fprintf(stderr, "pltl_check: %.*s: compile error: %s\n",
                     static_cast<int>(formula.name.size()), formula.name.data(),
                     compiled.error.c_str());
        ++failures;
        break;
      }
    }
  }
  if (failures == 0) {
    std::printf("pltl_check: %zu shipped formulas ok\n",
                pltl::shipped_formulas().size());
  }
  return failures == 0 ? 0 : 1;
}
