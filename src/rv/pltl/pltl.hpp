// Past-time LTL over heartbeat protocol traces: the AST, a
// recursive-descent parser, a printer, and structural equality.
//
// A formula states a safety requirement that must hold at every
// position of a timed event trace (and at the mission horizon). Atoms
// name protocol/channel events ("beat", "lost", "c_recv_beat(x)") or
// derived cluster fluents ("coord_live", "stopped(x)"); the past
// operators look backwards only, so a formula compiles to a streaming
// monitor with one state record per temporal subformula (eval.hpp) or
// lowers to observer automata for the mc explorer (models/
// formula_check.hpp).
//
// Grammar (lowest precedence first; comments run `#` to end of line):
//
//   formula  := quantified
//   quantified := ("forall" | "exists") ident ":" quantified | iff
//   iff      := impl ("<->" impl)*                        (left)
//   impl     := or "->" impl | or                         (right)
//   or       := and ("||" and | "or" and)*
//   and      := since ("&&" since | "and" since)*
//   since    := unary ("since" unary)*                    (left)
//   unary    := "!" unary | "not" unary
//             | "previously" unary | "historically" unary
//             | "once" bound? unary | "within" bound unary
//             | "before" bound unary | "holds" bound unary
//             | primary
//   primary  := "(" formula ")" | "true" | "false" | "init"
//             | ident ( "(" arg ")" )?
//   bound    := "[" cmp bexpr "]"   cmp in {"<=","<"} ("holds": {">",">="})
//   bexpr    := bterm (("+"|"-") bterm)* ; bterm := bfact ("*" bfact)*
//   bfact    := integer | param | "(" bexpr ")"
//   arg      := ident | integer
//
// `within` is `once` with a mandatory bound ("some time in the last k
// ticks"). Bound expressions are integer arithmetic over the named
// timing parameters resolved at compile time (eval.hpp): tmin, tmax,
// r1_slack, r2_window, r3_slack, r1_bound, suspicion_min_round,
// suspicion_slack.
//
// Parsing never throws: errors come back in ParseResult with a byte
// offset and message.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace ahb::rv::pltl {

// ---------------------------------------------------------------------------
// Bound expressions: integer arithmetic over named timing parameters.

struct BoundExpr {
  enum class Kind { Num, Param, Add, Sub, Mul };
  Kind kind = Kind::Num;
  std::int64_t num = 0;      ///< Kind::Num
  std::string param;         ///< Kind::Param
  std::unique_ptr<BoundExpr> lhs, rhs;
};

/// Comparison attached to a bounded operator: once/within/before use
/// Le/Lt ("no older than k"), holds uses Gt/Ge ("for more than k").
enum class Cmp { Le, Lt, Gt, Ge };

struct Bound {
  Cmp cmp = Cmp::Le;
  std::unique_ptr<BoundExpr> expr;
};

// ---------------------------------------------------------------------------
// Formula AST.

struct Node {
  enum class Kind {
    True,
    False,
    Init,          ///< true exactly at trace position 0 (time 0, pre-events)
    Event,         ///< named protocol/channel event atom, optional arg
    Fluent,        ///< derived cluster-state predicate, optional arg
    Not,
    And,
    Or,
    Implies,
    Iff,
    Previously,    ///< value of the operand at the previous position
    Once,          ///< operand held at some past-or-present position
    Historically,  ///< operand held at every position so far
    Since,         ///< lhs since rhs
    Before,        ///< operand held at a strictly earlier position, bounded
    Holds,         ///< operand has held continuously for {cmp} bound ticks
    Forall,        ///< forall var: body — conjunction over participant ids
    Exists,        ///< exists var: body — disjunction over participant ids
  };

  enum class Arg { None, Var, Num };

  Kind kind = Kind::True;
  std::unique_ptr<Node> lhs, rhs;  ///< rhs only for binary connectives
  std::string name;                ///< atom name / quantifier variable
  Arg arg = Arg::None;             ///< atom argument form
  std::string arg_var;             ///< Arg::Var
  std::int64_t arg_num = 0;        ///< Arg::Num
  std::unique_ptr<Bound> bound;    ///< Once/Before/Holds
};

using NodePtr = std::unique_ptr<Node>;

struct ParseResult {
  NodePtr formula;          ///< null on error
  std::string error;        ///< empty on success
  std::size_t error_at = 0; ///< byte offset of the error in the input
  bool ok() const { return formula != nullptr; }
};

/// Parse a formula. Never throws; returns an error message and offset
/// on malformed input.
ParseResult parse(std::string_view text);

/// Render a formula back to concrete syntax. The output reparses to a
/// structurally equal AST: parse(print(f)).formula equals f.
std::string print(const Node& formula);

/// Structural equality (names, args, bounds, operator kinds).
bool equal(const Node& a, const Node& b);

/// Deep copy.
NodePtr clone(const Node& formula);

/// True if `name` is a recognised bound parameter (tmin, tmax, ...).
bool is_bound_param(std::string_view name);

}  // namespace ahb::rv::pltl
