#include "rv/pltl/pltl.hpp"

#include <array>
#include <cctype>
#include <sstream>

namespace ahb::rv::pltl {
namespace {

constexpr std::array<std::string_view, 8> kBoundParams = {
    "tmin",         "tmax",     "r1_slack",           "r2_window",
    "r3_slack",     "r1_bound", "suspicion_min_round", "suspicion_slack",
};

// ---------------------------------------------------------------------------
// Lexer.

enum class Tok {
  End,
  Ident,     // bare word, including keywords — classified by the parser
  Int,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Colon,
  Bang,       // !
  AndAnd,     // &&
  OrOr,       // ||
  Arrow,      // ->
  DArrow,     // <->
  Le,         // <=
  Lt,         // <
  Ge,         // >=
  Gt,         // >
  Plus,
  Minus,
  Star,
  Error,
};

struct Lexer {
  std::string_view text;
  std::size_t pos = 0;

  Tok tok = Tok::End;
  std::size_t tok_at = 0;       ///< byte offset of the current token
  std::string_view tok_text;    ///< Ident spelling
  std::int64_t tok_num = 0;     ///< Int value
  std::string error;

  explicit Lexer(std::string_view t) : text(t) { next(); }

  void skip_space() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '#') {  // comment to end of line
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else {
        break;
      }
    }
  }

  void next() {
    skip_space();
    tok_at = pos;
    if (pos >= text.size()) {
      tok = Tok::End;
      return;
    }
    const char c = text[pos];
    auto two = [&](char second) {
      return pos + 1 < text.size() && text[pos + 1] == second;
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_')) {
        ++pos;
      }
      tok = Tok::Ident;
      tok_text = text.substr(start, pos - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = 0;
      std::size_t start = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        value = value * 10 + (text[pos] - '0');
        if (value > (std::int64_t{1} << 56)) {
          tok = Tok::Error;
          error = "integer literal too large";
          return;
        }
        ++pos;
      }
      (void)start;
      tok = Tok::Int;
      tok_num = value;
      return;
    }
    switch (c) {
      case '(': ++pos; tok = Tok::LParen; return;
      case ')': ++pos; tok = Tok::RParen; return;
      case '[': ++pos; tok = Tok::LBracket; return;
      case ']': ++pos; tok = Tok::RBracket; return;
      case ':': ++pos; tok = Tok::Colon; return;
      case '!': ++pos; tok = Tok::Bang; return;
      case '+': ++pos; tok = Tok::Plus; return;
      case '*': ++pos; tok = Tok::Star; return;
      case '&':
        if (two('&')) { pos += 2; tok = Tok::AndAnd; return; }
        break;
      case '|':
        if (two('|')) { pos += 2; tok = Tok::OrOr; return; }
        break;
      case '-':
        if (two('>')) { pos += 2; tok = Tok::Arrow; return; }
        ++pos; tok = Tok::Minus; return;
      case '<':
        if (two('-') && pos + 2 < text.size() && text[pos + 2] == '>') {
          pos += 3; tok = Tok::DArrow; return;
        }
        if (two('=')) { pos += 2; tok = Tok::Le; return; }
        ++pos; tok = Tok::Lt; return;
      case '>':
        if (two('=')) { pos += 2; tok = Tok::Ge; return; }
        ++pos; tok = Tok::Gt; return;
      default: break;
    }
    tok = Tok::Error;
    error = std::string{"unexpected character '"} + c + "'";
  }

  bool is_word(std::string_view word) const {
    return tok == Tok::Ident && tok_text == word;
  }
};

// ---------------------------------------------------------------------------
// Parser.

struct Parser {
  Lexer lex;
  std::string error;
  std::size_t error_at = 0;

  explicit Parser(std::string_view text) : lex(text) {}

  NodePtr fail(std::string message) {
    if (error.empty()) {
      error = std::move(message);
      error_at = lex.tok_at;
      if (lex.tok == Tok::Error && !lex.error.empty()) {
        error += ": " + lex.error;
      }
    }
    return nullptr;
  }

  bool eat_word(std::string_view word) {
    if (!lex.is_word(word)) return false;
    lex.next();
    return true;
  }

  bool eat(Tok t) {
    if (lex.tok != t) return false;
    lex.next();
    return true;
  }

  static NodePtr make(Node::Kind kind, NodePtr lhs = nullptr,
                      NodePtr rhs = nullptr) {
    auto node = std::make_unique<Node>();
    node->kind = kind;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  NodePtr parse_formula() { return parse_quantified(); }

  NodePtr parse_quantified() {
    const bool forall = lex.is_word("forall");
    const bool exists = lex.is_word("exists");
    if (forall || exists) {
      lex.next();
      if (lex.tok != Tok::Ident) return fail("expected quantifier variable");
      std::string var{lex.tok_text};
      if (is_bound_param(var) || var == "true" || var == "false" ||
          var == "init") {
        return fail("'" + var + "' cannot be a quantifier variable");
      }
      lex.next();
      if (!eat(Tok::Colon)) return fail("expected ':' after quantifier variable");
      NodePtr body = parse_quantified();
      if (!body) return nullptr;
      NodePtr node = make(forall ? Node::Kind::Forall : Node::Kind::Exists,
                          std::move(body));
      node->name = std::move(var);
      return node;
    }
    return parse_iff();
  }

  NodePtr parse_iff() {
    NodePtr lhs = parse_impl();
    if (!lhs) return nullptr;
    while (eat(Tok::DArrow)) {
      NodePtr rhs = parse_impl();
      if (!rhs) return nullptr;
      lhs = make(Node::Kind::Iff, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  NodePtr parse_impl() {
    NodePtr lhs = parse_or();
    if (!lhs) return nullptr;
    if (eat(Tok::Arrow)) {
      NodePtr rhs = parse_impl();  // right-associative
      if (!rhs) return nullptr;
      return make(Node::Kind::Implies, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  NodePtr parse_or() {
    NodePtr lhs = parse_and();
    if (!lhs) return nullptr;
    while (lex.tok == Tok::OrOr || lex.is_word("or")) {
      lex.next();
      NodePtr rhs = parse_and();
      if (!rhs) return nullptr;
      lhs = make(Node::Kind::Or, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  NodePtr parse_and() {
    NodePtr lhs = parse_since();
    if (!lhs) return nullptr;
    while (lex.tok == Tok::AndAnd || lex.is_word("and")) {
      lex.next();
      NodePtr rhs = parse_since();
      if (!rhs) return nullptr;
      lhs = make(Node::Kind::And, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  NodePtr parse_since() {
    NodePtr lhs = parse_unary();
    if (!lhs) return nullptr;
    while (eat_word("since")) {
      NodePtr rhs = parse_unary();
      if (!rhs) return nullptr;
      lhs = make(Node::Kind::Since, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  std::unique_ptr<Bound> parse_bound(bool lower_bound) {
    // lower_bound: holds[> k] / holds[>= k]; otherwise [<= k] / [< k].
    if (!eat(Tok::LBracket)) {
      fail(lower_bound ? "expected '[> ...]' bound"
                       : "expected '[<= ...]' bound");
      return nullptr;
    }
    auto bound = std::make_unique<Bound>();
    switch (lex.tok) {
      case Tok::Le: bound->cmp = Cmp::Le; break;
      case Tok::Lt: bound->cmp = Cmp::Lt; break;
      case Tok::Gt: bound->cmp = Cmp::Gt; break;
      case Tok::Ge: bound->cmp = Cmp::Ge; break;
      default:
        fail("expected comparison in bound");
        return nullptr;
    }
    const bool is_lower = bound->cmp == Cmp::Gt || bound->cmp == Cmp::Ge;
    if (is_lower != lower_bound) {
      fail(lower_bound ? "'holds' takes a lower bound ('>' or '>=')"
                       : "this operator takes an upper bound ('<=' or '<')");
      return nullptr;
    }
    lex.next();
    bound->expr = parse_bexpr();
    if (!bound->expr) return nullptr;
    if (!eat(Tok::RBracket)) {
      fail("expected ']' after bound expression");
      return nullptr;
    }
    return bound;
  }

  std::unique_ptr<BoundExpr> parse_bexpr() {
    auto lhs = parse_bterm();
    if (!lhs) return nullptr;
    while (lex.tok == Tok::Plus || lex.tok == Tok::Minus) {
      const bool add = lex.tok == Tok::Plus;
      lex.next();
      auto rhs = parse_bterm();
      if (!rhs) return nullptr;
      auto node = std::make_unique<BoundExpr>();
      node->kind = add ? BoundExpr::Kind::Add : BoundExpr::Kind::Sub;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<BoundExpr> parse_bterm() {
    auto lhs = parse_bfact();
    if (!lhs) return nullptr;
    while (lex.tok == Tok::Star) {
      lex.next();
      auto rhs = parse_bfact();
      if (!rhs) return nullptr;
      auto node = std::make_unique<BoundExpr>();
      node->kind = BoundExpr::Kind::Mul;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<BoundExpr> parse_bfact() {
    if (lex.tok == Tok::Int) {
      auto node = std::make_unique<BoundExpr>();
      node->kind = BoundExpr::Kind::Num;
      node->num = lex.tok_num;
      lex.next();
      return node;
    }
    if (lex.tok == Tok::Ident) {
      if (!is_bound_param(lex.tok_text)) {
        fail("unknown bound parameter '" + std::string{lex.tok_text} + "'");
        return nullptr;
      }
      auto node = std::make_unique<BoundExpr>();
      node->kind = BoundExpr::Kind::Param;
      node->param = std::string{lex.tok_text};
      lex.next();
      return node;
    }
    if (eat(Tok::LParen)) {
      auto inner = parse_bexpr();
      if (!inner) return nullptr;
      if (!eat(Tok::RParen)) {
        fail("expected ')' in bound expression");
        return nullptr;
      }
      return inner;
    }
    fail("expected integer, parameter, or '(' in bound expression");
    return nullptr;
  }

  NodePtr parse_unary() {
    if (lex.tok == Tok::Bang || lex.is_word("not")) {
      lex.next();
      NodePtr operand = parse_unary();
      if (!operand) return nullptr;
      return make(Node::Kind::Not, std::move(operand));
    }
    if (eat_word("previously")) {
      NodePtr operand = parse_unary();
      if (!operand) return nullptr;
      return make(Node::Kind::Previously, std::move(operand));
    }
    if (eat_word("historically")) {
      NodePtr operand = parse_unary();
      if (!operand) return nullptr;
      return make(Node::Kind::Historically, std::move(operand));
    }
    if (lex.is_word("once") || lex.is_word("within")) {
      const bool require_bound = lex.tok_text == "within";
      lex.next();
      std::unique_ptr<Bound> bound;
      if (lex.tok == Tok::LBracket || require_bound) {
        bound = parse_bound(/*lower_bound=*/false);
        if (!bound) return nullptr;
      }
      NodePtr operand = parse_unary();
      if (!operand) return nullptr;
      NodePtr node = make(Node::Kind::Once, std::move(operand));
      node->bound = std::move(bound);
      // `within` is a parser alias of bounded `once`; the printer emits
      // `once[...]`, which reparses to the same AST.
      return node;
    }
    if (eat_word("before")) {
      auto bound = parse_bound(/*lower_bound=*/false);
      if (!bound) return nullptr;
      NodePtr operand = parse_unary();
      if (!operand) return nullptr;
      NodePtr node = make(Node::Kind::Before, std::move(operand));
      node->bound = std::move(bound);
      return node;
    }
    if (eat_word("holds")) {
      auto bound = parse_bound(/*lower_bound=*/true);
      if (!bound) return nullptr;
      NodePtr operand = parse_unary();
      if (!operand) return nullptr;
      NodePtr node = make(Node::Kind::Holds, std::move(operand));
      node->bound = std::move(bound);
      return node;
    }
    return parse_primary();
  }

  // Atom vocabulary. Events are trace-event atoms (true exactly at a
  // matching event's position); fluents are derived cluster state
  // (piecewise-constant between events).
  static bool is_event_name(std::string_view name) {
    return name == "beat" || name == "c_recv_beat" || name == "c_recv_leave" ||
           name == "c_inactive" || name == "c_crash" || name == "p_recv_beat" ||
           name == "reply" || name == "join_beat" || name == "leave" ||
           name == "p_inactive" || name == "p_crash" || name == "rejoin" ||
           name == "sent" || name == "delivered" || name == "lost" ||
           name == "blocked" || name == "duplicated" || name == "corrupted" ||
           name == "rejected";
  }

  static bool is_fluent_name(std::string_view name) {
    return name == "coord_live" || name == "coord_stopped" ||
           name == "stopped" || name == "alive" || name == "member" ||
           name == "registered" || name == "all_stopped" ||
           name == "any_registered";
  }

  static bool fluent_requires_arg(std::string_view name) {
    return name == "stopped" || name == "alive" || name == "member" ||
           name == "registered";
  }

  NodePtr parse_primary() {
    if (eat(Tok::LParen)) {
      NodePtr inner = parse_formula();
      if (!inner) return nullptr;
      if (!eat(Tok::RParen)) return fail("expected ')'");
      return inner;
    }
    if (lex.tok != Tok::Ident) return fail("expected formula");
    const std::string name{lex.tok_text};
    if (name == "true") { lex.next(); return make(Node::Kind::True); }
    if (name == "false") { lex.next(); return make(Node::Kind::False); }
    if (name == "init") { lex.next(); return make(Node::Kind::Init); }
    const bool event = is_event_name(name);
    const bool fluent = is_fluent_name(name);
    if (!event && !fluent) {
      return fail("unknown atom '" + name +
                  "' (not an event, fluent, or keyword)");
    }
    lex.next();
    NodePtr node = make(event ? Node::Kind::Event : Node::Kind::Fluent);
    node->name = name;
    if (eat(Tok::LParen)) {
      if (lex.tok == Tok::Int) {
        node->arg = Node::Arg::Num;
        node->arg_num = lex.tok_num;
        lex.next();
      } else if (lex.tok == Tok::Ident) {
        node->arg = Node::Arg::Var;
        node->arg_var = std::string{lex.tok_text};
        lex.next();
      } else {
        return fail("expected participant id or variable in '" + name + "(..)'");
      }
      if (!eat(Tok::RParen)) return fail("expected ')' after atom argument");
    }
    if (fluent && fluent_requires_arg(name) && node->arg == Node::Arg::None) {
      return fail("fluent '" + name + "' requires a participant argument");
    }
    if (fluent && !fluent_requires_arg(name) && node->arg != Node::Arg::None) {
      return fail("fluent '" + name + "' does not take an argument");
    }
    return node;
  }
};

// ---------------------------------------------------------------------------
// Printer. Emits parentheses from precedence so parse(print(f)) == f.

int precedence(Node::Kind kind) {
  switch (kind) {
    case Node::Kind::Forall:
    case Node::Kind::Exists: return 0;
    case Node::Kind::Iff: return 1;
    case Node::Kind::Implies: return 2;
    case Node::Kind::Or: return 3;
    case Node::Kind::And: return 4;
    case Node::Kind::Since: return 5;
    case Node::Kind::Not:
    case Node::Kind::Previously:
    case Node::Kind::Once:
    case Node::Kind::Historically:
    case Node::Kind::Before:
    case Node::Kind::Holds: return 6;
    default: return 7;
  }
}

void print_bexpr(std::ostream& out, const BoundExpr& expr, int parent_prec) {
  switch (expr.kind) {
    case BoundExpr::Kind::Num: out << expr.num; return;
    case BoundExpr::Kind::Param: out << expr.param; return;
    case BoundExpr::Kind::Add:
    case BoundExpr::Kind::Sub: {
      const bool parens = parent_prec > 1;
      if (parens) out << '(';
      print_bexpr(out, *expr.lhs, 1);
      out << (expr.kind == BoundExpr::Kind::Add ? " + " : " - ");
      // '-' is left-associative: parenthesise a +/- on the right.
      print_bexpr(out, *expr.rhs, 2);
      if (parens) out << ')';
      return;
    }
    case BoundExpr::Kind::Mul: {
      const bool parens = parent_prec > 2;  // right operand of another '*'
      if (parens) out << '(';
      print_bexpr(out, *expr.lhs, 2);
      out << " * ";
      print_bexpr(out, *expr.rhs, 3);
      if (parens) out << ')';
      return;
    }
  }
}

void print_bound(std::ostream& out, const Bound& bound) {
  out << '[';
  switch (bound.cmp) {
    case Cmp::Le: out << "<= "; break;
    case Cmp::Lt: out << "< "; break;
    case Cmp::Gt: out << "> "; break;
    case Cmp::Ge: out << ">= "; break;
  }
  print_bexpr(out, *bound.expr, 0);
  out << ']';
}

void print_node(std::ostream& out, const Node& node, int parent_prec) {
  const int prec = precedence(node.kind);
  // Right-associative / non-associative operators reparse correctly
  // only if a same-precedence child on the wrong side is wrapped; the
  // callers below pass prec+1 where needed, so `<=` suffices here.
  const bool parens = prec < parent_prec;
  if (parens) out << '(';
  switch (node.kind) {
    case Node::Kind::True: out << "true"; break;
    case Node::Kind::False: out << "false"; break;
    case Node::Kind::Init: out << "init"; break;
    case Node::Kind::Event:
    case Node::Kind::Fluent:
      out << node.name;
      if (node.arg == Node::Arg::Var) out << '(' << node.arg_var << ')';
      if (node.arg == Node::Arg::Num) out << '(' << node.arg_num << ')';
      break;
    case Node::Kind::Not:
      out << '!';
      print_node(out, *node.lhs, prec + 1);
      break;
    case Node::Kind::Previously:
      out << "previously ";
      print_node(out, *node.lhs, prec);
      break;
    case Node::Kind::Historically:
      out << "historically ";
      print_node(out, *node.lhs, prec);
      break;
    case Node::Kind::Once:
      out << "once";
      if (node.bound) print_bound(out, *node.bound);
      out << ' ';
      print_node(out, *node.lhs, prec);
      break;
    case Node::Kind::Before:
      out << "before";
      print_bound(out, *node.bound);
      out << ' ';
      print_node(out, *node.lhs, prec);
      break;
    case Node::Kind::Holds:
      out << "holds";
      print_bound(out, *node.bound);
      out << ' ';
      print_node(out, *node.lhs, prec);
      break;
    case Node::Kind::And:
      print_node(out, *node.lhs, prec);
      out << " && ";
      print_node(out, *node.rhs, prec + 1);
      break;
    case Node::Kind::Or:
      print_node(out, *node.lhs, prec);
      out << " || ";
      print_node(out, *node.rhs, prec + 1);
      break;
    case Node::Kind::Implies:
      print_node(out, *node.lhs, prec + 1);  // right-associative
      out << " -> ";
      print_node(out, *node.rhs, prec);
      break;
    case Node::Kind::Iff:
      print_node(out, *node.lhs, prec);
      out << " <-> ";
      print_node(out, *node.rhs, prec + 1);
      break;
    case Node::Kind::Since:
      print_node(out, *node.lhs, prec);
      out << " since ";
      print_node(out, *node.rhs, prec + 1);
      break;
    case Node::Kind::Forall:
    case Node::Kind::Exists:
      out << (node.kind == Node::Kind::Forall ? "forall " : "exists ")
          << node.name << ": ";
      print_node(out, *node.lhs, prec);
      break;
  }
  if (parens) out << ')';
}

bool bexpr_equal(const BoundExpr& a, const BoundExpr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case BoundExpr::Kind::Num: return a.num == b.num;
    case BoundExpr::Kind::Param: return a.param == b.param;
    default:
      return bexpr_equal(*a.lhs, *b.lhs) && bexpr_equal(*a.rhs, *b.rhs);
  }
}

std::unique_ptr<BoundExpr> clone_bexpr(const BoundExpr& expr) {
  auto out = std::make_unique<BoundExpr>();
  out->kind = expr.kind;
  out->num = expr.num;
  out->param = expr.param;
  if (expr.lhs) out->lhs = clone_bexpr(*expr.lhs);
  if (expr.rhs) out->rhs = clone_bexpr(*expr.rhs);
  return out;
}

}  // namespace

bool is_bound_param(std::string_view name) {
  for (const auto param : kBoundParams) {
    if (name == param) return true;
  }
  return false;
}

ParseResult parse(std::string_view text) {
  Parser parser{text};
  ParseResult result;
  result.formula = parser.parse_formula();
  if (result.formula && parser.lex.tok != Tok::End) {
    parser.error = "trailing input after formula";
    parser.error_at = parser.lex.tok_at;
    result.formula = nullptr;
  }
  if (!result.formula) {
    result.error = parser.error.empty() ? "parse error" : parser.error;
    result.error_at = parser.error_at;
  }
  return result;
}

std::string print(const Node& formula) {
  std::ostringstream out;
  print_node(out, formula, 0);
  return out.str();
}

bool equal(const Node& a, const Node& b) {
  if (a.kind != b.kind || a.name != b.name || a.arg != b.arg) return false;
  if (a.arg == Node::Arg::Var && a.arg_var != b.arg_var) return false;
  if (a.arg == Node::Arg::Num && a.arg_num != b.arg_num) return false;
  if (static_cast<bool>(a.bound) != static_cast<bool>(b.bound)) return false;
  if (a.bound &&
      (a.bound->cmp != b.bound->cmp ||
       !bexpr_equal(*a.bound->expr, *b.bound->expr))) {
    return false;
  }
  if (static_cast<bool>(a.lhs) != static_cast<bool>(b.lhs)) return false;
  if (static_cast<bool>(a.rhs) != static_cast<bool>(b.rhs)) return false;
  if (a.lhs && !equal(*a.lhs, *b.lhs)) return false;
  if (a.rhs && !equal(*a.rhs, *b.rhs)) return false;
  return true;
}

NodePtr clone(const Node& formula) {
  auto out = std::make_unique<Node>();
  out->kind = formula.kind;
  out->name = formula.name;
  out->arg = formula.arg;
  out->arg_var = formula.arg_var;
  out->arg_num = formula.arg_num;
  if (formula.bound) {
    out->bound = std::make_unique<Bound>();
    out->bound->cmp = formula.bound->cmp;
    out->bound->expr = clone_bexpr(*formula.bound->expr);
  }
  if (formula.lhs) out->lhs = clone(*formula.lhs);
  if (formula.rhs) out->rhs = clone(*formula.rhs);
  return out;
}

}  // namespace ahb::rv::pltl
