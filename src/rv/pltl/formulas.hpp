// The shipped formula registry: every formulas/*.pltl file is embedded
// into the library at build time (cmake/embed_pltl.cmake), so the
// requirements R1–R3 and S2 exist as exactly one text each, consumed
// by the streaming monitor (eval.hpp), the model-checking lowering
// (models/formula_check.hpp), and the chaos/mission stack. A build-
// time parse check (pltl_check) fails the build on a grammar or
// vocabulary regression in any shipped file.
#pragma once

#include <string_view>
#include <vector>

#include "rv/pltl/eval.hpp"

namespace ahb::rv::pltl {

struct ShippedFormula {
  std::string_view name;  ///< file stem: "r1", "r2", "r3", "s2", ...
  std::string_view text;  ///< full file contents (comments included)
};

/// All embedded formula files, sorted by name.
const std::vector<ShippedFormula>& shipped_formulas();

/// Lookup by name; nullptr if absent.
const ShippedFormula* find_shipped(std::string_view name);

/// The requirement number a shipped formula's violations carry
/// (r1/r1_watchdog -> 1, r2 -> 2, r3 -> 3, s2 -> 4); 0 for names
/// without a conventional number.
int shipped_requirement(std::string_view name);

/// The specs a campaign/mission attaches next to the hand-written
/// monitors: r1, r2, r3, and s2 (r1_watchdog is the model-checking
/// variant and is not part of the runtime set).
std::vector<FormulaSpec> shipped_monitor_specs();

}  // namespace ahb::rv::pltl
