#include "rv/pltl/formulas.hpp"

namespace ahb::rv::pltl {
namespace {

constexpr ShippedFormula kShipped[] = {
#include "pltl_formulas_embed.inc"
};

}  // namespace

const std::vector<ShippedFormula>& shipped_formulas() {
  static const std::vector<ShippedFormula> all(std::begin(kShipped),
                                               std::end(kShipped));
  return all;
}

const ShippedFormula* find_shipped(std::string_view name) {
  for (const auto& formula : shipped_formulas()) {
    if (formula.name == name) return &formula;
  }
  return nullptr;
}

int shipped_requirement(std::string_view name) {
  if (name == "r1" || name == "r1_watchdog") return 1;
  if (name == "r2") return 2;
  if (name == "r3") return 3;
  if (name == "s2") return 4;
  return 0;
}

std::vector<FormulaSpec> shipped_monitor_specs() {
  std::vector<FormulaSpec> specs;
  for (const std::string_view name : {"r1", "r2", "r3", "s2"}) {
    const ShippedFormula* formula = find_shipped(name);
    if (formula == nullptr) continue;  // pltl_check guarantees presence
    specs.push_back(FormulaSpec{std::string{formula->name},
                                std::string{formula->text},
                                shipped_requirement(name)});
  }
  return specs;
}

}  // namespace ahb::rv::pltl
