#include "rv/pltl/eval.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace ahb::rv::pltl {
namespace {

using hb::kNever;
using PKind = hb::ProtocolEvent::Kind;
using CKind = sim::ChannelEvent::Kind;

constexpr std::size_t kMaxInstrs = 1u << 20;

struct EventAtom {
  std::string_view name;
  bool protocol;
  int kind;  ///< PKind / CKind enumerator value
};

constexpr EventAtom kEventAtoms[] = {
    {"beat", true, static_cast<int>(PKind::CoordinatorBeat)},
    {"c_recv_beat", true, static_cast<int>(PKind::CoordinatorReceivedBeat)},
    {"c_recv_leave", true, static_cast<int>(PKind::CoordinatorReceivedLeave)},
    {"c_inactive", true, static_cast<int>(PKind::CoordinatorInactivated)},
    {"c_crash", true, static_cast<int>(PKind::CoordinatorCrashed)},
    {"p_recv_beat", true, static_cast<int>(PKind::ParticipantReceivedBeat)},
    {"reply", true, static_cast<int>(PKind::ParticipantReplied)},
    {"join_beat", true, static_cast<int>(PKind::ParticipantJoinBeat)},
    {"leave", true, static_cast<int>(PKind::ParticipantLeft)},
    {"p_inactive", true, static_cast<int>(PKind::ParticipantInactivated)},
    {"p_crash", true, static_cast<int>(PKind::ParticipantCrashed)},
    {"rejoin", true, static_cast<int>(PKind::ParticipantRejoined)},
    {"sent", false, static_cast<int>(CKind::Sent)},
    {"delivered", false, static_cast<int>(CKind::Delivered)},
    {"lost", false, static_cast<int>(CKind::Lost)},
    {"blocked", false, static_cast<int>(CKind::Blocked)},
    {"duplicated", false, static_cast<int>(CKind::Duplicated)},
    {"corrupted", false, static_cast<int>(CKind::Corrupted)},
    {"rejected", false, static_cast<int>(CKind::Rejected)},
};

const EventAtom* find_event_atom(std::string_view name) {
  for (const auto& atom : kEventAtoms) {
    if (atom.name == name) return &atom;
  }
  return nullptr;
}

/// The protocol events that change any fluent: a formula with fluent
/// atoms must see these regardless of its event atoms, or its derived
/// state would silently diverge from the monitors'.
constexpr std::uint32_t fluent_driver_mask() {
  return protocol_bit(PKind::CoordinatorReceivedBeat) |
         protocol_bit(PKind::CoordinatorReceivedLeave) |
         protocol_bit(PKind::CoordinatorInactivated) |
         protocol_bit(PKind::CoordinatorCrashed) |
         protocol_bit(PKind::ParticipantInactivated) |
         protocol_bit(PKind::ParticipantCrashed) |
         protocol_bit(PKind::ParticipantLeft) |
         protocol_bit(PKind::ParticipantRejoined);
}

// ---------------------------------------------------------------------------
// Quantifier expansion: forall/exists become And/Or folds over the
// participant ids 1..n, substituting the bound variable into atom
// arguments. Inner bindings shadow outer ones.

NodePtr substitute(const Node& node, const std::string& var, std::int64_t id) {
  if ((node.kind == Node::Kind::Forall || node.kind == Node::Kind::Exists) &&
      node.name == var) {
    return clone(node);  // shadowed: leave the inner binder untouched
  }
  NodePtr out = std::make_unique<Node>();
  out->kind = node.kind;
  out->name = node.name;
  out->arg = node.arg;
  out->arg_var = node.arg_var;
  out->arg_num = node.arg_num;
  if (node.arg == Node::Arg::Var && node.arg_var == var) {
    out->arg = Node::Arg::Num;
    out->arg_var.clear();
    out->arg_num = id;
  }
  if (node.bound) {
    auto copy = clone(node);  // reuse clone for the bound subtree
    out->bound = std::move(copy->bound);
  }
  if (node.lhs) out->lhs = substitute(*node.lhs, var, id);
  if (node.rhs) out->rhs = substitute(*node.rhs, var, id);
  return out;
}

// ---------------------------------------------------------------------------
// Bound resolution.

bool eval_bexpr(const BoundExpr& expr, const BindParams& params, Time* out,
                std::string* error) {
  switch (expr.kind) {
    case BoundExpr::Kind::Num:
      *out = expr.num;
      return true;
    case BoundExpr::Kind::Param:
      if (!is_bound_param(expr.param)) {
        *error = "unknown bound parameter '" + expr.param + "'";
        return false;
      }
      *out = params.param(expr.param);
      return true;
    default: {
      Time lhs = 0;
      Time rhs = 0;
      if (!eval_bexpr(*expr.lhs, params, &lhs, error) ||
          !eval_bexpr(*expr.rhs, params, &rhs, error)) {
        return false;
      }
      switch (expr.kind) {
        case BoundExpr::Kind::Add: *out = lhs + rhs; break;
        case BoundExpr::Kind::Sub: *out = lhs - rhs; break;
        default: *out = lhs * rhs; break;
      }
      if (*out > (Time{1} << 60) || *out < -(Time{1} << 60)) {
        *error = "bound expression overflows";
        return false;
      }
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// Flattening.

struct Flattener {
  const BindParams& params;
  Compiled out;
  std::string error;

  bool fail(std::string message) {
    if (error.empty()) error = std::move(message);
    return false;
  }

  /// Appends the instruction(s) for `node` and stores the index of its
  /// value in *idx.
  bool flatten(const Node& node, int* idx) {
    if (out.instrs.size() >= kMaxInstrs) {
      return fail("formula too large after quantifier expansion");
    }
    Instr instr;
    instr.op = node.kind;
    switch (node.kind) {
      case Node::Kind::True:
      case Node::Kind::False:
      case Node::Kind::Init:
        break;
      case Node::Kind::Event: {
        const EventAtom* atom = find_event_atom(node.name);
        if (atom == nullptr) return fail("unknown event '" + node.name + "'");
        if (atom->protocol) {
          instr.protocol_bits = 1u << atom->kind;
        } else {
          instr.channel_bits = 1u << atom->kind;
          if (node.arg != Node::Arg::None) {
            return fail("channel atom '" + node.name +
                        "' does not take an argument");
          }
        }
        if (node.arg == Node::Arg::Var) {
          return fail("unbound variable '" + node.arg_var + "' in '" +
                      node.name + "'");
        }
        if (node.arg == Node::Arg::Num) {
          if (node.arg_num < 0 || node.arg_num > params.participants) {
            return fail("participant id out of range in '" + node.name + "'");
          }
          instr.node = static_cast<int>(node.arg_num);
        }
        out.protocol_mask |= instr.protocol_bits;
        out.channel_mask |= instr.channel_bits;
        break;
      }
      case Node::Kind::Fluent: {
        if (node.arg == Node::Arg::Var) {
          return fail("unbound variable '" + node.arg_var + "' in '" +
                      node.name + "'");
        }
        if (node.name == "coord_live") {
          instr.fluent = Fluent::CoordLive;
        } else if (node.name == "coord_stopped") {
          instr.fluent = Fluent::CoordStopped;
        } else if (node.name == "stopped") {
          instr.fluent = Fluent::Stopped;
        } else if (node.name == "alive") {
          instr.fluent = Fluent::Alive;
        } else if (node.name == "member" || node.name == "registered") {
          instr.fluent = Fluent::Member;
        } else if (node.name == "all_stopped") {
          instr.fluent = Fluent::AllStopped;
        } else if (node.name == "any_registered") {
          instr.fluent = Fluent::AnyRegistered;
        } else {
          return fail("unknown fluent '" + node.name + "'");
        }
        if (node.arg == Node::Arg::Num) {
          if (node.arg_num < 1 || node.arg_num > params.participants) {
            return fail("participant id out of range in '" + node.name + "'");
          }
          instr.node = static_cast<int>(node.arg_num);
        }
        out.uses_fluents = true;
        break;
      }
      case Node::Kind::Not:
      case Node::Kind::Previously:
      case Node::Kind::Historically:
        if (!flatten(*node.lhs, &instr.a)) return false;
        break;
      case Node::Kind::Once:
      case Node::Kind::Before:
      case Node::Kind::Holds: {
        if (!flatten(*node.lhs, &instr.a)) return false;
        if (node.bound) {
          instr.cmp = node.bound->cmp;
          if (!eval_bexpr(*node.bound->expr, params, &instr.bound, &error)) {
            return false;
          }
          if (instr.bound < 0) return fail("bound resolves negative");
        } else {
          AHB_ASSERT(node.kind == Node::Kind::Once);
          instr.bound = kNever;  // unbounded `once`
        }
        break;
      }
      case Node::Kind::And:
      case Node::Kind::Or:
      case Node::Kind::Implies:
      case Node::Kind::Iff:
      case Node::Kind::Since:
        if (!flatten(*node.lhs, &instr.a)) return false;
        if (!flatten(*node.rhs, &instr.b)) return false;
        break;
      case Node::Kind::Forall:
      case Node::Kind::Exists: {
        // Expand here, one substituted copy per participant id.
        const bool conj = node.kind == Node::Kind::Forall;
        int acc = -1;
        for (int id = 1; id <= params.participants; ++id) {
          NodePtr body = substitute(*node.lhs, node.name, id);
          int b = -1;
          if (!flatten(*body, &b)) return false;
          if (acc < 0) {
            acc = b;
          } else {
            Instr join;
            join.op = conj ? Node::Kind::And : Node::Kind::Or;
            join.a = acc;
            join.b = b;
            out.instrs.push_back(join);
            acc = static_cast<int>(out.instrs.size()) - 1;
          }
        }
        if (acc < 0) {
          // No participants: forall is vacuously true, exists false.
          Instr empty;
          empty.op = conj ? Node::Kind::True : Node::Kind::False;
          out.instrs.push_back(empty);
          acc = static_cast<int>(out.instrs.size()) - 1;
        }
        *idx = acc;
        return true;
      }
    }
    out.instrs.push_back(std::move(instr));
    *idx = static_cast<int>(out.instrs.size()) - 1;
    return true;
  }
};

bool time_cmp(Time lhs, Cmp cmp, Time rhs) {
  switch (cmp) {
    case Cmp::Le: return lhs <= rhs;
    case Cmp::Lt: return lhs < rhs;
    case Cmp::Gt: return lhs > rhs;
    case Cmp::Ge: return lhs >= rhs;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// BindParams.

Time BindParams::param(std::string_view name) const {
  if (name == "tmin") return timing.tmin;
  if (name == "tmax") return timing.tmax;
  if (name == "r1_slack") return proto::r1_detection_slack(timing, variant);
  if (name == "r2_window") {
    return proto::r2_explanation_window(timing, variant, fixed_bounds);
  }
  if (name == "r3_slack") {
    return proto::r3_detection_slack(timing, variant, fixed_bounds);
  }
  if (name == "r1_bound") return proto::r1_bound(timing, fixed_bounds);
  if (name == "suspicion_min_round") return timing.tmin;
  if (name == "suspicion_slack") {
    return proto::suspicion_detection_bound(timing, suspect_after_misses);
  }
  AHB_UNREACHABLE("unknown bound parameter");
}

// ---------------------------------------------------------------------------
// FluentTracker.

FluentTracker::FluentTracker(proto::Variant variant, int participants)
    : participants_(participants) {
  AHB_EXPECTS(participants >= 0);
  const auto slots = static_cast<std::size_t>(participants) + 1;
  stopped_.assign(slots, 0);
  const bool joins = proto::variant_joins(variant);
  member_.assign(slots, joins ? 0 : 1);
  member_[0] = 0;
  live_count_ = participants;
  member_count_ = joins ? 0 : participants;
}

bool FluentTracker::stopped(int node) const {
  AHB_EXPECTS(node >= 1 && node <= participants_);
  return stopped_[static_cast<std::size_t>(node)] != 0;
}

bool FluentTracker::member(int node) const {
  AHB_EXPECTS(node >= 1 && node <= participants_);
  return member_[static_cast<std::size_t>(node)] != 0;
}

void FluentTracker::apply(const hb::ProtocolEvent& event) {
  const int node = event.node;
  const bool known = node >= 1 && node <= participants_;
  const auto idx = static_cast<std::size_t>(node);
  switch (event.kind) {
    case PKind::CoordinatorReceivedBeat:
      if (known && !member_[idx]) {
        member_[idx] = 1;
        ++member_count_;
      }
      break;
    case PKind::CoordinatorReceivedLeave:
      if (known && member_[idx]) {
        member_[idx] = 0;
        --member_count_;
      }
      break;
    case PKind::CoordinatorInactivated:
    case PKind::CoordinatorCrashed:
      coordinator_live_ = false;
      break;
    case PKind::ParticipantInactivated:
    case PKind::ParticipantCrashed:
    case PKind::ParticipantLeft:
      if (known && !stopped_[idx]) {
        stopped_[idx] = 1;
        --live_count_;
      }
      break;
    case PKind::ParticipantRejoined:
      if (known && stopped_[idx]) {
        stopped_[idx] = 0;
        ++live_count_;
      }
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// compile.

CompileResult compile(const Node& formula, const BindParams& params) {
  CompileResult result;
  if (params.participants < 0) {
    result.error = "participants must be non-negative";
    return result;
  }
  Flattener flattener{params, Compiled{}, {}};
  flattener.out.participants = params.participants;
  int root = -1;
  if (!flattener.flatten(formula, &root)) {
    result.error =
        flattener.error.empty() ? "compile error" : flattener.error;
    return result;
  }
  AHB_ASSERT(root == static_cast<int>(flattener.out.instrs.size()) - 1);
  if (flattener.out.uses_fluents) {
    flattener.out.protocol_mask |= fluent_driver_mask();
  }
  result.compiled = std::move(flattener.out);
  return result;
}

// ---------------------------------------------------------------------------
// FormulaMonitor.

FormulaMonitor::FormulaMonitor(Compiled compiled, const BindParams& params,
                               std::string name, int requirement)
    : instrs_(std::move(compiled.instrs)),
      tracker_(params.variant, params.participants),
      protocol_mask_(compiled.protocol_mask),
      channel_mask_(compiled.channel_mask),
      name_(std::move(name)),
      requirement_(requirement) {
  AHB_EXPECTS(!instrs_.empty());
  state_.resize(instrs_.size());
  for (std::size_t i = 0; i < instrs_.size(); ++i) {
    state_[i].t = kNever;
    state_[i].b = instrs_[i].op == Node::Kind::Historically ? 1 : 0;
  }
  scratch_.assign(instrs_.size(), 0);
  committed_.assign(instrs_.size(), 0);
  // Commit the initial position: time 0, no event, `init` true.
  const bool root = eval(0, nullptr, nullptr, /*commit=*/true, /*init=*/true);
  observe(0, root);
}

bool FormulaMonitor::eval(Time now, const hb::ProtocolEvent* pe,
                          const sim::ChannelEvent* ce, bool commit, bool init) {
  auto* vals = scratch_.data();
  for (std::size_t i = 0; i < instrs_.size(); ++i) {
    const Instr& ins = instrs_[i];
    State& st = state_[i];
    bool v = false;
    switch (ins.op) {
      case Node::Kind::True: v = true; break;
      case Node::Kind::False: v = false; break;
      case Node::Kind::Init: v = init; break;
      case Node::Kind::Event:
        if (pe != nullptr && ins.protocol_bits != 0) {
          v = (protocol_bit(pe->kind) & ins.protocol_bits) != 0 &&
              (ins.node < 0 || pe->node == ins.node);
        } else if (ce != nullptr && ins.channel_bits != 0) {
          v = (channel_bit(ce->kind) & ins.channel_bits) != 0;
        }
        break;
      case Node::Kind::Fluent:
        switch (ins.fluent) {
          case Fluent::CoordLive: v = tracker_.coordinator_live(); break;
          case Fluent::CoordStopped: v = !tracker_.coordinator_live(); break;
          case Fluent::Stopped: v = tracker_.stopped(ins.node); break;
          case Fluent::Alive: v = !tracker_.stopped(ins.node); break;
          case Fluent::Member: v = tracker_.member(ins.node); break;
          case Fluent::AllStopped: v = tracker_.all_stopped(); break;
          case Fluent::AnyRegistered: v = tracker_.any_registered(); break;
        }
        break;
      case Node::Kind::Not: v = !vals[ins.a]; break;
      case Node::Kind::And: v = vals[ins.a] && vals[ins.b]; break;
      case Node::Kind::Or: v = vals[ins.a] || vals[ins.b]; break;
      case Node::Kind::Implies: v = !vals[ins.a] || vals[ins.b]; break;
      case Node::Kind::Iff: v = vals[ins.a] == vals[ins.b]; break;
      case Node::Kind::Previously:
        v = st.b != 0;
        if (commit) st.b = vals[ins.a];
        break;
      case Node::Kind::Historically:
        v = st.b != 0 && vals[ins.a] != 0;
        if (commit) st.b = v ? 1 : 0;
        break;
      case Node::Kind::Since:
        v = vals[ins.b] != 0 || (vals[ins.a] != 0 && st.b != 0);
        if (commit) st.b = v ? 1 : 0;
        break;
      case Node::Kind::Once:
        if (ins.bound == kNever) {
          v = vals[ins.a] != 0 || st.b != 0;
          if (commit) st.b = v ? 1 : 0;
        } else {
          v = vals[ins.a] != 0 ||
              (st.t != kNever && time_cmp(now - st.t, ins.cmp, ins.bound));
          if (commit && vals[ins.a] != 0) st.t = now;
        }
        break;
      case Node::Kind::Before:
        // Position-strict: the witness is at an earlier position (its
        // timestamp may equal `now`).
        v = st.t != kNever && time_cmp(now - st.t, ins.cmp, ins.bound);
        if (commit && vals[ins.a] != 0) st.t = now;
        break;
      case Node::Kind::Holds: {
        // Anchored continuous truth: the anchor is the committed start
        // of the current true stretch of the operand.
        const Time anchor = st.t != kNever ? st.t : now;
        v = vals[ins.a] != 0 && time_cmp(now - anchor, ins.cmp, ins.bound);
        if (commit) {
          st.t = vals[ins.a] != 0 ? (st.t != kNever ? st.t : now) : kNever;
        }
        break;
      }
      case Node::Kind::Forall:
      case Node::Kind::Exists:
        AHB_UNREACHABLE("quantifiers are expanded at compile time");
    }
    vals[i] = v ? 1 : 0;
  }
  if (commit) committed_ = scratch_;
  return vals[instrs_.size() - 1] != 0;
}

void FormulaMonitor::observe(Time now, bool root_value) {
  if (last_value_ && !root_value) {
    ++violations_total_;
    if (violations_.size() < max_recorded_) {
      violations_.push_back(Violation{requirement_, 0, now, now,
                                      "formula '" + name_ + "' violated"});
    }
  }
  last_value_ = root_value;
}

void FormulaMonitor::handle(Time at, const hb::ProtocolEvent* pe,
                            const sim::ChannelEvent* ce) {
  ++events_seen_;
  // Check pass: the instant `at` has been reached but the event has
  // not happened yet — deadlines that expired strictly before the
  // event are caught with pre-event state.
  observe(at, eval(at, nullptr, nullptr, /*commit=*/false, /*init=*/false));
  if (pe != nullptr) tracker_.apply(*pe);
  // Step pass: the event's own position, committed.
  observe(at, eval(at, pe, ce, /*commit=*/true, /*init=*/false));
}

void FormulaMonitor::on_protocol_event(const hb::ProtocolEvent& event) {
  handle(event.at, &event, nullptr);
}

void FormulaMonitor::on_channel_event(const sim::ChannelEvent& event) {
  handle(event.at, nullptr, &event);
}

void FormulaMonitor::finish(Time horizon) {
  observe(horizon,
          eval(horizon, nullptr, nullptr, /*commit=*/false, /*init=*/false));
}

MonitorResult make_monitor(const FormulaSpec& spec, const BindParams& params) {
  MonitorResult result;
  ParseResult parsed = parse(spec.text);
  if (!parsed.ok()) {
    result.error = "parse error in formula '" + spec.name + "' at offset " +
                   std::to_string(parsed.error_at) + ": " + parsed.error;
    return result;
  }
  CompileResult compiled = compile(*parsed.formula, params);
  if (!compiled.ok()) {
    result.error =
        "compile error in formula '" + spec.name + "': " + compiled.error;
    return result;
  }
  result.monitor = std::make_unique<FormulaMonitor>(
      std::move(compiled.compiled), params, spec.name, spec.requirement);
  return result;
}

}  // namespace ahb::rv::pltl
