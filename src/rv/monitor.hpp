// Runtime requirement monitor: R1–R3 checked online over one execution.
//
// The model-checking layer proves R1–R3 over *all* executions of the
// timed-automata models; this monitor checks the *executable* hb
// engines against the same requirements on one live execution, fed by
// the protocol-event stream and the channel-event stream of either
// engine through the rv::EventSink interface. The deadlines come from
// the closed-form slack laws in proto/timing.hpp, which are sound for
// any fault sequence inside the channel/clock assumptions — so under
// in-spec faults every violation is a genuine protocol bug, while
// out-of-spec faults (delays breaking the tmin round trip, drifting
// clocks) are expected to trip the monitor and serve as its negative
// control.
//
// The three obligations, in monitor form:
//   R1  once every participant has stopped (crashed, left, or
//       inactivated) while the coordinator still has a registered
//       member, the coordinator must NV-inactivate within
//       r1_detection_slack.
//   R2  every NV-inactivation must be *explained* by a fault — a
//       channel loss/block, a crash, a leave, or an earlier
//       NV-inactivation — within the preceding r2_explanation_window;
//       an unexplained one is a premature detection.
//   R3  once the coordinator stops, every live participant must stop
//       within r3_detection_slack (re-anchored if it rejoins later).
//
// Line-rate discipline: steady-state traffic (beats, replies,
// deliveries) is filtered out by the interest mask — the monitor only
// subscribes to membership transitions, stops, and destroyed messages,
// all of which are rare. Armed deadlines are tracked through a
// conservative earliest-deadline watermark so the per-event check is
// one comparison; the O(participants) scan runs only when a deadline
// could actually have passed. No allocation happens after construction
// except to record a violation.
#pragma once

#include <string>
#include <vector>

#include "proto/rules.hpp"
#include "proto/timing.hpp"
#include "rv/event_sink.hpp"

namespace ahb::hb {
class Cluster;
class ScaleCluster;
}  // namespace ahb::hb

namespace ahb::rv {

/// The monitor deadlines. Defaults come from proto/timing.hpp; tests
/// loosen individual bounds to prove the monitors actually bite (the
/// mutation canary: a loosened bound must silence the negative
/// control).
struct MonitorBounds {
  Time r1_slack = 0;
  Time r2_window = 0;
  Time r3_slack = 0;
  /// Suspicion-ladder bounds (rv::SuspicionMonitor; zero disables the
  /// corresponding check): minimum spacing of coordinator round closes,
  /// and the stop -> threshold-suspicion detection slack.
  Time suspicion_min_round = 0;
  Time suspicion_slack = 0;

  static MonitorBounds defaults(const proto::Timing& timing,
                                proto::Variant variant, bool fixed_bounds,
                                int suspect_after_misses = 2);
};

struct Violation {
  int requirement = 0;  ///< 1, 2, 3, or 4 (= suspicion ladder)
  int node = 0;         ///< 0 = coordinator
  Time at = 0;          ///< when the violation was established
  Time deadline = 0;    ///< the missed deadline (R1/R3) or the premature
                        ///< inactivation instant (R2)
  std::string detail;

  /// Stable identity for shrinking: two runs reproduce "the same"
  /// violation when requirement, node and deadline all match.
  std::string key() const;
};

class RequirementMonitor final : public EventSink {
 public:
  struct Config {
    proto::Variant variant = proto::Variant::Binary;
    proto::Timing timing;
    bool fixed_bounds = true;
    int participants = 1;
  };

  RequirementMonitor(const Config& config, const MonitorBounds& bounds);

  /// Convenience: registers this monitor as a sink of the cluster.
  void attach(hb::Cluster& cluster);
  void attach(hb::ScaleCluster& cluster);

  std::uint32_t protocol_interest() const override;
  std::uint32_t channel_interest() const override;
  void on_protocol_event(const hb::ProtocolEvent& event) override;
  void on_channel_event(const sim::ChannelEvent& event) override;

  /// Settles pending deadlines at the end of a run: obligations whose
  /// deadline lies strictly before `horizon` and were never discharged
  /// become violations; later deadlines are undetermined (campaigns
  /// leave a settle margin before the horizon so this stays empty).
  void finish(Time horizon) override;

  const std::vector<Violation>& violations() const { return violations_; }
  /// Events this sink was handed (protocol + channel) — the denominator
  /// of the benches' monitor_ns_per_event.
  std::uint64_t events_seen() const { return events_seen_; }

 private:
  void check_deadlines(Time now);
  void update_r1(Time now);
  bool coordinator_live() const;
  void stop_participant(int id, Time at);
  void arm(Time deadline);

  Config config_;
  MonitorBounds bounds_;
  Time coordinator_stopped_at_;
  std::vector<Time> stopped_at_;    ///< per participant; kNever = live
  std::vector<bool> registered_;    ///< coordinator-side membership estimate
  std::vector<Time> r3_deadline_;   ///< per participant; kNever = no obligation
  Time r1_deadline_;
  bool r1_fired_ = false;
  Time last_explanation_;
  /// Conservative lower bound on the earliest armed deadline: tightened
  /// on arm, left stale on discharge, recomputed by the scan — so
  /// `now <= earliest_deadline_` proves no deadline has passed.
  Time earliest_deadline_;
  int live_count_;        ///< participants not stopped
  int registered_count_;  ///< participants currently registered
  std::uint64_t events_seen_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace ahb::rv
