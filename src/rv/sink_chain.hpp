// SinkChain: the engines' fan-out point for runtime-verification sinks,
// plus the CallbackSink adapter that keeps the legacy std::function
// observer API alive on top of it.
//
// The chain caches each sink's interest masks at registration and the
// OR of all of them, so an engine's emit path is
//
//   if (sinks_.wants(kind)) sinks_.emit(Event{...});
//
// — one AND per emitted kind when nothing is listening, one extra
// cached-mask AND per registered sink when something is. Registration
// is not thread-safe and must happen before the run starts; delivery is
// single-threaded (the simulator's callback discipline).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "rv/event_sink.hpp"
#include "util/contracts.hpp"

namespace ahb::rv {

class SinkChain {
 public:
  /// Registers `sink` (not owned; must outlive the chain or be removed
  /// by destroying the chain first). Delivery order is registration
  /// order.
  void add(EventSink* sink) {
    AHB_EXPECTS(sink != nullptr);
    entries_.push_back(Entry{sink, 0, 0});
    refresh();
  }

  /// Deregisters `sink` so it can be destroyed while the engine lives
  /// on; a sink that was never registered is a no-op. Like add(), not
  /// safe while an emit is in flight.
  void remove(EventSink* sink) {
    std::erase_if(entries_,
                  [sink](const Entry& entry) { return entry.sink == sink; });
    refresh();
  }

  /// Re-caches every sink's interest masks. Call after a sink's
  /// interests change (e.g. a callback adapter gained a callback).
  void refresh() {
    protocol_mask_ = 0;
    channel_mask_ = 0;
    for (Entry& entry : entries_) {
      entry.protocol_mask = entry.sink->protocol_interest();
      entry.channel_mask = entry.sink->channel_interest();
      protocol_mask_ |= entry.protocol_mask;
      channel_mask_ |= entry.channel_mask;
    }
  }

  bool wants(hb::ProtocolEvent::Kind kind) const {
    return (protocol_mask_ & protocol_bit(kind)) != 0;
  }
  bool wants(sim::ChannelEvent::Kind kind) const {
    return (channel_mask_ & channel_bit(kind)) != 0;
  }
  std::uint32_t protocol_mask() const { return protocol_mask_; }
  std::uint32_t channel_mask() const { return channel_mask_; }
  bool empty() const { return entries_.empty(); }

  void emit(const hb::ProtocolEvent& event) {
    const std::uint32_t bit = protocol_bit(event.kind);
    for (Entry& entry : entries_) {
      if ((entry.protocol_mask & bit) != 0) entry.sink->on_protocol_event(event);
    }
  }

  void emit(const sim::ChannelEvent& event) {
    const std::uint32_t bit = channel_bit(event.kind);
    for (Entry& entry : entries_) {
      if ((entry.channel_mask & bit) != 0) entry.sink->on_channel_event(event);
    }
  }

  void finish(Time horizon) {
    for (Entry& entry : entries_) entry.sink->finish(horizon);
  }

 private:
  struct Entry {
    EventSink* sink;
    std::uint32_t protocol_mask;
    std::uint32_t channel_mask;
  };

  std::vector<Entry> entries_;
  std::uint32_t protocol_mask_ = 0;
  std::uint32_t channel_mask_ = 0;
};

/// Adapter sink behind the engines' legacy lambda observers
/// (on_protocol_event / on_inactivation / on_channel_event). Its
/// interest masks are exactly what the installed callbacks need, so a
/// cluster with no observers keeps a zero mask and the hot path skips
/// event construction entirely — the pre-refactor behaviour of the
/// `if (event_cb_)` gate.
class CallbackSink final : public EventSink {
 public:
  void set_protocol(std::function<void(const hb::ProtocolEvent&)> fn) {
    protocol_fn_ = std::move(fn);
  }
  void set_channel(std::function<void(const sim::ChannelEvent&)> fn) {
    channel_fn_ = std::move(fn);
  }
  void set_inactivation(std::function<void(int, Time)> fn) {
    inactivation_fn_ = std::move(fn);
  }

  std::uint32_t protocol_interest() const override {
    std::uint32_t mask = protocol_fn_ ? kAllProtocolEvents : 0;
    if (inactivation_fn_) {
      mask |= protocol_bit(hb::ProtocolEvent::Kind::CoordinatorInactivated) |
              protocol_bit(hb::ProtocolEvent::Kind::ParticipantInactivated);
    }
    return mask;
  }
  std::uint32_t channel_interest() const override {
    return channel_fn_ ? kAllChannelEvents : 0;
  }

  void on_protocol_event(const hb::ProtocolEvent& event) override {
    if (protocol_fn_) protocol_fn_(event);
    if (inactivation_fn_ &&
        (event.kind == hb::ProtocolEvent::Kind::CoordinatorInactivated ||
         event.kind == hb::ProtocolEvent::Kind::ParticipantInactivated)) {
      inactivation_fn_(event.node, event.at);
    }
  }
  void on_channel_event(const sim::ChannelEvent& event) override {
    if (channel_fn_) channel_fn_(event);
  }

 private:
  std::function<void(const hb::ProtocolEvent&)> protocol_fn_;
  std::function<void(const sim::ChannelEvent&)> channel_fn_;
  std::function<void(int, Time)> inactivation_fn_;
};

}  // namespace ahb::rv
