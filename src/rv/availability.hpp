// AvailabilityStats: a scoring sink for long campaigns.
//
// Where RequirementMonitor and SuspicionMonitor answer pass/fail,
// this sink accumulates *how well* a run went: per-node up/down
// intervals (a node is up from start until it crashes, leaves or
// NV-inactivates, and up again from a rejoin), recovery counts, and a
// power-of-two histogram of detection latencies — the gap between a
// participant stopping and the coordinator acting on it (NV-
// inactivating, or registering the leave beat). Campaigns sum the
// summaries across runs; the benches surface them as JSON.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "rv/event_sink.hpp"

namespace ahb::rv {

struct AvailabilitySummary {
  static constexpr std::size_t kBuckets = 20;

  Time up_time = 0;    ///< summed over nodes (coordinator included)
  Time down_time = 0;
  std::uint64_t recoveries = 0;  ///< rejoins observed
  std::uint64_t detections = 0;  ///< detection-latency samples
  Time detection_total = 0;      ///< sum of sampled latencies
  Time detection_max = 0;
  /// detection_hist[b] counts samples with bit_width(latency) == b,
  /// i.e. latency in [2^(b-1), 2^b); bucket 0 is latency 0; the last
  /// bucket absorbs everything larger.
  std::array<std::uint64_t, kBuckets> detection_hist{};

  AvailabilitySummary& operator+=(const AvailabilitySummary& other);
  /// Fraction of node-time spent up; 1.0 for an empty summary.
  double up_fraction() const;
  /// Mean sampled detection latency; 0.0 when nothing was sampled, so
  /// the value is always finite (the benches emit it as JSON, and NaN
  /// is not valid JSON).
  double detection_mean() const;
};

class AvailabilityStats final : public EventSink {
 public:
  explicit AvailabilityStats(int participants);

  std::uint32_t protocol_interest() const override;
  void on_protocol_event(const hb::ProtocolEvent& event) override;
  /// Closes every open up/down interval at `horizon` and freezes the
  /// summary.
  void finish(Time horizon) override;

  const AvailabilitySummary& summary() const { return summary_; }
  std::uint64_t events_seen() const { return events_seen_; }

  // Per-node views (valid after finish), for tests and reports.
  Time up_time(int node) const;
  Time down_time(int node) const;
  std::uint64_t recoveries(int node) const;

 private:
  void node_down(int node, Time at);
  void node_up(int node, Time at);
  void sample_detection(Time latency);

  int participants_;
  std::vector<Time> up_since_;    ///< kNever = currently down
  std::vector<Time> down_since_;  ///< kNever = currently up
  std::vector<Time> up_acc_;
  std::vector<Time> down_acc_;
  std::vector<std::uint64_t> recoveries_;
  AvailabilitySummary summary_;
  std::uint64_t events_seen_ = 0;
  bool finished_ = false;
};

}  // namespace ahb::rv
