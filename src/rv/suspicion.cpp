#include "rv/suspicion.hpp"

#include <cinttypes>
#include <cstdio>

#include "hb/cluster.hpp"
#include "hb/cluster_scale.hpp"
#include "hb/types.hpp"
#include "util/contracts.hpp"

namespace ahb::rv {

SuspicionMonitor::SuspicionMonitor(const Config& config,
                                   const MonitorBounds& bounds)
    : config_(config),
      bounds_(bounds),
      last_close_(hb::kNever),
      earliest_deadline_(hb::kNever) {
  AHB_EXPECTS(config.participants >= 1);
  AHB_EXPECTS(config.timing.valid());
  AHB_EXPECTS(config.suspect_after_misses >= 1);
  const auto slots = static_cast<std::size_t>(config.participants) + 1;
  level_.assign(slots, 0);
  member_.assign(slots, 0);
  rcvd_.assign(slots, 0);
  stopped_.assign(slots, 0);
  last_beat_.assign(slots, 0);
  deadline_.assign(slots, hb::kNever);
  noted_level_.assign(slots, 0);
  beat_since_note_.assign(slots, 0);
  s1_fired_.assign(slots, 0);
  // Non-join variants start every participant as a member with the
  // first round granted, exactly like the engines' coordinator — so
  // the initial beat of a revised-binary run counts no misses.
  if (!proto::variant_joins(config.variant)) {
    for (std::size_t i = 1; i < slots; ++i) {
      member_[i] = 1;
      rcvd_[i] = 1;
    }
  }
}

void SuspicionMonitor::attach(hb::Cluster& cluster) { cluster.add_sink(this); }

void SuspicionMonitor::attach(hb::ScaleCluster& cluster) {
  cluster.add_sink(this);
}

std::uint32_t SuspicionMonitor::protocol_interest() const {
  using Kind = hb::ProtocolEvent::Kind;
  return protocol_bit(Kind::CoordinatorBeat) |
         protocol_bit(Kind::CoordinatorReceivedBeat) |
         protocol_bit(Kind::CoordinatorReceivedLeave) |
         protocol_bit(Kind::CoordinatorInactivated) |
         protocol_bit(Kind::CoordinatorCrashed) |
         protocol_bit(Kind::ParticipantInactivated) |
         protocol_bit(Kind::ParticipantCrashed) |
         protocol_bit(Kind::ParticipantLeft) |
         protocol_bit(Kind::ParticipantRejoined);
}

int SuspicionMonitor::level(int node) const {
  AHB_EXPECTS(node >= 1 && node <= config_.participants);
  return level_[static_cast<std::size_t>(node)];
}

void SuspicionMonitor::on_protocol_event(const hb::ProtocolEvent& event) {
  ++events_seen_;
  check_obligations(event.at);

  const Time at = event.at;
  const auto idx = static_cast<std::size_t>(event.node);
  using Kind = hb::ProtocolEvent::Kind;
  switch (event.kind) {
    case Kind::CoordinatorBeat:
      close_round(at);
      break;
    case Kind::CoordinatorReceivedBeat:
      member_[idx] = 1;
      rcvd_[idx] = 1;
      last_beat_[idx] = at;
      beat_since_note_[idx] = 1;
      // A stale join beat can register a member that already stopped;
      // from that instant the ladder tracks it, so mandatory suspicion
      // applies from here (the stop itself predates membership).
      if (stopped_[idx]) arm_obligation(event.node, at);
      break;
    case Kind::CoordinatorReceivedLeave:
      if (member_[idx]) {
        member_[idx] = 0;
        rcvd_[idx] = 0;
        level_[idx] = 0;
      }
      discharge(event.node);
      break;
    case Kind::CoordinatorInactivated:
    case Kind::CoordinatorCrashed:
      // A stopped coordinator owes no further detection: every pending
      // obligation is discharged (the check above already fired any
      // deadline that had genuinely passed).
      coordinator_live_ = false;
      for (int i = 1; i <= config_.participants; ++i) {
        deadline_[static_cast<std::size_t>(i)] = hb::kNever;
      }
      earliest_deadline_ = hb::kNever;
      break;
    case Kind::ParticipantInactivated:
    case Kind::ParticipantCrashed:
    case Kind::ParticipantLeft:
      stopped_[idx] = 1;
      if (member_[idx]) arm_obligation(event.node, at);
      break;
    case Kind::ParticipantRejoined:
      stopped_[idx] = 0;
      discharge(event.node);
      break;
    default:
      break;
  }
}

void SuspicionMonitor::close_round(Time now) {
  // S1, round pacing: an active coordinator never arms a round shorter
  // than tmin, so two closes less than tmin apart are impossible
  // in-spec (the drift negative control).
  if (bounds_.suspicion_min_round > 0 && last_close_ != hb::kNever &&
      !s1_fired_[0] && now - last_close_ < bounds_.suspicion_min_round) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "rounds closed %" PRId64 " apart, below the tmin pacing "
                  "bound %" PRId64,
                  now - last_close_, bounds_.suspicion_min_round);
    violations_.push_back(Violation{4, 0, now, now, buf});
    s1_fired_[0] = 1;
  }
  last_close_ = now;

  for (int i = 1; i <= config_.participants; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!member_[idx]) continue;
    if (rcvd_[idx]) {
      level_[idx] = 0;
      rcvd_[idx] = 0;
      continue;
    }
    ++level_[idx];
    // S1, earliest detection: level k is k consecutive missed rounds,
    // each at least tmin long, anchored at the last registered beat.
    if (bounds_.suspicion_min_round > 0 && !s1_fired_[idx] &&
        now < last_beat_[idx] +
                  static_cast<Time>(level_[idx]) *
                      bounds_.suspicion_min_round) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "participant %d reached suspicion level %d before the "
                    "earliest-detection slack",
                    i, level_[idx]);
      violations_.push_back(Violation{4, i, now, now, buf});
      s1_fired_[idx] = 1;
    }
    if (level_[idx] >= config_.suspect_after_misses) discharge(i);
  }
}

void SuspicionMonitor::arm_obligation(int node, Time at) {
  const auto idx = static_cast<std::size_t>(node);
  if (bounds_.suspicion_slack <= 0) return;
  if (!coordinator_live_) return;
  if (deadline_[idx] != hb::kNever) return;
  if (level_[idx] >= config_.suspect_after_misses) return;
  deadline_[idx] = at + bounds_.suspicion_slack;
  if (deadline_[idx] < earliest_deadline_) earliest_deadline_ = deadline_[idx];
}

void SuspicionMonitor::discharge(int node) {
  deadline_[static_cast<std::size_t>(node)] = hb::kNever;
}

void SuspicionMonitor::check_obligations(Time now) {
  if (now <= earliest_deadline_) return;
  Time earliest = hb::kNever;
  for (int i = 1; i <= config_.participants; ++i) {
    Time& deadline = deadline_[static_cast<std::size_t>(i)];
    if (deadline == hb::kNever) continue;
    if (now > deadline) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "coordinator never reached suspicion threshold %d for "
                    "silent participant %d (level %d)",
                    config_.suspect_after_misses, i,
                    level_[static_cast<std::size_t>(i)]);
      violations_.push_back(Violation{4, i, now, deadline, buf});
      deadline = hb::kNever;
    } else if (deadline < earliest) {
      earliest = deadline;
    }
  }
  earliest_deadline_ = earliest;
}

void SuspicionMonitor::note_level(int node, int level, Time at) {
  AHB_EXPECTS(node >= 1 && node <= config_.participants);
  const auto idx = static_cast<std::size_t>(node);
  if (level < noted_level_[idx]) {
    // S3: a published suspicion level may only drop after a fresh
    // registered beat (the one event that resets the ladder).
    if (!beat_since_note_[idx]) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "suspicion level for participant %d regressed %d -> %d "
                    "without a registered beat",
                    node, noted_level_[idx], level);
      violations_.push_back(Violation{4, node, at, at, buf});
    }
    beat_since_note_[idx] = 0;
  }
  noted_level_[idx] = level;
}

void SuspicionMonitor::finish(Time horizon) { check_obligations(horizon); }

}  // namespace ahb::rv
