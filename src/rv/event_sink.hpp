// The runtime-verification event-sink interface.
//
// A sink is a passive observer of one cluster execution: it receives
// the protocol-event stream (hb/protocol_event.hpp), optionally the
// channel-event stream (sim/network.hpp), and a final finish(horizon)
// when the run ends. Both heartbeat engines fan events out through an
// rv::SinkChain (sink_chain.hpp), so a monitor written once attaches
// unchanged to hb::Cluster and hb::ScaleCluster — including the
// 100k-node engine at millions of events/sec.
//
// The line-rate contract: a sink declares the event kinds it wants via
// the interest masks, and the chain caches those masks at registration
// — the engine hot path pays one mask test per event kind and never
// constructs an event nobody subscribed to. Interest masks must be
// stable while registered; re-cache changed masks with
// SinkChain::refresh().
#pragma once

#include <cstdint>

#include "hb/protocol_event.hpp"
#include "sim/network.hpp"

namespace ahb::rv {

using Time = sim::Time;

/// Bit positions of the per-kind interest masks.
constexpr std::uint32_t protocol_bit(hb::ProtocolEvent::Kind kind) {
  return 1u << static_cast<int>(kind);
}
constexpr std::uint32_t channel_bit(sim::ChannelEvent::Kind kind) {
  return 1u << static_cast<int>(kind);
}

inline constexpr std::uint32_t kAllProtocolEvents =
    (1u << hb::ProtocolEvent::kKindCount) - 1;
inline constexpr std::uint32_t kAllChannelEvents =
    (1u << (static_cast<int>(sim::ChannelEvent::Kind::Rejected) + 1)) - 1;

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Bitmask over hb::ProtocolEvent::Kind (see protocol_bit) of the
  /// protocol events this sink wants delivered.
  virtual std::uint32_t protocol_interest() const { return kAllProtocolEvents; }
  /// Bitmask over sim::ChannelEvent::Kind (see channel_bit).
  virtual std::uint32_t channel_interest() const { return 0; }

  /// Events arrive in nondecreasing time order (the simulator's
  /// synchronous callbacks guarantee this).
  virtual void on_protocol_event(const hb::ProtocolEvent& event) {
    (void)event;
  }
  virtual void on_channel_event(const sim::ChannelEvent& event) {
    (void)event;
  }

  /// The run ended at `horizon`: settle pending obligations. A deadline
  /// at or after the horizon is undetermined, one strictly before it
  /// was missed.
  virtual void finish(Time horizon) { (void)horizon; }
};

}  // namespace ahb::rv
