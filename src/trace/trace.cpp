#include "trace/trace.hpp"

#include "util/strings.hpp"

namespace ahb::trace {

std::string render_full(const ta::Network& net,
                        const std::vector<mc::TraceStep>& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& step = trace[i];
    if (i == 0) {
      out += "=== initial state ===\n";
    } else {
      out += strprintf("=== step %zu: %s ===\n", i, step.action.c_str());
    }
    out += net.describe(step.state);
    out += "\n";
  }
  return out;
}

std::string render_timeline(const ta::Network& net,
                            const std::vector<mc::TraceStep>& trace) {
  std::string out;
  int time = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto& step = trace[i];
    if (step.action == "tick") {
      ++time;
      continue;
    }
    out += strprintf("t=%-4d %s\n", time, step.action.c_str());
  }
  if (!trace.empty()) {
    out += strprintf("final: %s\n", net.describe_brief(trace.back().state).c_str());
  }
  return out;
}

std::string render_timeline_filtered(const ta::Network& net,
                                     const std::vector<mc::TraceStep>& trace,
                                     const std::vector<std::string>& keep) {
  std::string out;
  int time = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto& step = trace[i];
    if (step.action == "tick") {
      ++time;
      continue;
    }
    const bool kept =
        keep.empty() ||
        std::any_of(keep.begin(), keep.end(), [&](const std::string& k) {
          return step.action.find(k) != std::string::npos;
        });
    if (kept) out += strprintf("t=%-4d %s\n", time, step.action.c_str());
  }
  if (!trace.empty()) {
    out += strprintf("final: %s\n", net.describe_brief(trace.back().state).c_str());
  }
  return out;
}

std::string to_dot(const mc::Lts& lts) {
  std::string out = "digraph lts {\n  rankdir=LR;\n";
  out += strprintf("  init [shape=point];\n  init -> s%d;\n", lts.initial);
  for (int s = 0; s < lts.state_count; ++s) {
    out += strprintf("  s%d [shape=circle,label=\"%d\"];\n", s, s);
  }
  for (const auto& e : lts.edges) {
    out += strprintf("  s%d -> s%d [label=\"%s\"];\n", e.src, e.dst,
                     lts.alphabet[static_cast<std::size_t>(e.label)].c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace ahb::trace
