// Counterexample rendering: turns model-checker traces into the textual
// equivalents of the sequence diagrams in the source analysis
// (Figures 10-13), plus generic state-by-state dumps and DOT export.
#pragma once

#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/lts.hpp"
#include "ta/network.hpp"

namespace ahb::trace {

/// Full dump: one block per step with the action and the resulting
/// state (locations, variables, clocks).
std::string render_full(const ta::Network& net,
                        const std::vector<mc::TraceStep>& trace);

/// Compact event timeline: one line per *discrete* action, prefixed with
/// the accumulated model time (number of ticks so far). Tick steps are
/// folded into the time column, which matches how the paper's sequence
/// diagrams present counterexamples.
std::string render_timeline(const ta::Network& net,
                            const std::vector<mc::TraceStep>& trace);

/// Like render_timeline but keeps only actions whose label contains one
/// of `keep` (e.g. {"beat", "timeout", "inactivate"}), for compact
/// figure-style output.
std::string render_timeline_filtered(const ta::Network& net,
                                     const std::vector<mc::TraceStep>& trace,
                                     const std::vector<std::string>& keep);

/// Graphviz DOT rendering of an extracted LTS.
std::string to_dot(const mc::Lts& lts);

}  // namespace ahb::trace
