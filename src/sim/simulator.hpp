// Deterministic discrete-event simulator.
//
// Time is integral and in the same units as the protocol constants tmin
// and tmax. Events scheduled for the same instant fire in FIFO order of
// scheduling, which keeps runs reproducible for a fixed seed and lets
// hosts encode delivery-vs-timeout priorities by scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace ahb::sim {

using Time = std::int64_t;

class Simulator {
 public:
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` at absolute time `when` (>= now). Returns an id that
  /// can be passed to cancel(). Among events at the same instant, lower
  /// `priority` fires first; ties fall back to FIFO scheduling order.
  /// This is how hosts implement the "receives precede timeouts" rule of
  /// the protocol analysis: message deliveries at priority 0, timers at
  /// priority 1.
  EventId at(Time when, std::function<void()> fn, int priority = 0);

  /// Schedules `fn` after `delay` time units.
  EventId after(Time delay, std::function<void()> fn, int priority = 0) {
    return at(now_ + delay, std::move(fn), priority);
  }

  /// Cancels a pending event. Cancelling an already-fired or invalid id
  /// is a no-op (lazily discarded when popped).
  void cancel(EventId id);

  /// Runs events until the queue is empty or the next event is later
  /// than `horizon`. Returns the number of events executed.
  std::size_t run_until(Time horizon);

  /// Runs exactly one event if one is pending within the horizon.
  bool step(Time horizon);

  std::size_t pending() const { return queue_.size() - cancelled_pending_; }
  std::size_t executed() const { return executed_; }

 private:
  struct Event {
    Time when;
    int priority;
    EventId id;  ///< also the tiebreaker: ids increase in schedule order
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id > b.id;
    }
  };

  bool pop_one(Time horizon, Event& out);

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;  // small set, linear scan on pop
  std::size_t cancelled_pending_ = 0;
  std::size_t executed_ = 0;
  Rng rng_;
};

}  // namespace ahb::sim
