// Lossy, bounded-delay message transport for simulation experiments.
//
// Matches the channel assumptions of the protocol: a message is either
// lost or delivered within a bounded delay; delivery order between
// distinct messages is not guaranteed. Per-link loss probability and
// delay range are configurable, and faults (link down, node crash) can
// be injected at runtime.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "sim/simulator.hpp"

namespace ahb::sim {

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;      ///< dropped by random loss
  std::uint64_t blocked = 0;   ///< dropped because the link was down
};

template <typename MessageT>
class Network {
 public:
  using Handler = std::function<void(int from, const MessageT&)>;

  struct LinkParams {
    double loss_probability = 0.0;
    Time min_delay = 0;
    Time max_delay = 1;  ///< inclusive; one-way delay bound
  };

  explicit Network(Simulator& sim, LinkParams defaults = {})
      : sim_(&sim), defaults_(defaults) {}

  /// Registers the message handler of node `id`.
  void attach(int id, Handler handler) {
    AHB_EXPECTS(handler != nullptr);
    handlers_[id] = std::move(handler);
  }

  /// Overrides parameters for the directed link from -> to.
  void set_link(int from, int to, LinkParams params) {
    links_[{from, to}] = params;
  }

  /// Takes the directed link down (messages silently dropped) or up.
  void set_link_up(int from, int to, bool up) {
    if (up) {
      down_.erase({from, to});
    } else {
      down_.insert({from, to});
    }
  }

  /// Disconnects a node entirely (crash): all its incident messages are
  /// dropped from now on.
  void isolate(int id) { isolated_.push_back(id); }

  void send(int from, int to, MessageT message) {
    ++stats_.sent;
    if (is_isolated(from) || is_isolated(to) || down_.contains({from, to})) {
      ++stats_.blocked;
      return;
    }
    const LinkParams params = link(from, to);
    if (sim_->rng().chance(params.loss_probability)) {
      ++stats_.lost;
      return;
    }
    const Time delay =
        params.min_delay +
        static_cast<Time>(sim_->rng().below(
            static_cast<std::uint64_t>(params.max_delay - params.min_delay) +
            1));
    sim_->after(delay, [this, from, to, msg = std::move(message)]() {
      if (is_isolated(to)) {
        ++stats_.blocked;
        return;
      }
      const auto it = handlers_.find(to);
      if (it == handlers_.end()) return;  // crashed nodes receive silently
      ++stats_.delivered;
      it->second(from, msg);
    });
  }

  const NetworkStats& stats() const { return stats_; }

 private:
  struct LinkKey {
    int from;
    int to;
    friend auto operator<=>(const LinkKey&, const LinkKey&) = default;
  };

  LinkParams link(int from, int to) const {
    const auto it = links_.find({from, to});
    return it == links_.end() ? defaults_ : it->second;
  }

  bool is_isolated(int id) const {
    return std::find(isolated_.begin(), isolated_.end(), id) !=
           isolated_.end();
  }

  Simulator* sim_;
  LinkParams defaults_;
  std::map<LinkKey, LinkParams> links_;
  std::set<LinkKey> down_;
  std::map<int, Handler> handlers_;
  std::vector<int> isolated_;
  NetworkStats stats_;
};

}  // namespace ahb::sim
